package main

import (
	"os"
	"paragonio/internal/cliflags"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run("table99", 1, true, "", 1, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSingleExperimentToDir(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full-size workload")
	}
	dir := t.TempDir()
	// table4 is cheap: PRISM mode tables need no simulation runs beyond
	// configuration rendering... it still renders from static configs.
	if err := run("table4", 1, true, dir, 1, 1); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(filepath.Join(dir, "table4.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "M_GLOBAL") {
		t.Fatalf("artifact content unexpected:\n%s", body)
	}
}

// TestRunParallelArtifactsIdentical regenerates the same artifacts with
// one worker and with several and requires identical files on disk —
// the -j flag must never change output.
func TestRunParallelArtifactsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full-size workloads")
	}
	serialDir, parDir := t.TempDir(), t.TempDir()
	const only = "table4,table5,figure9"
	if err := run(only, 1, true, serialDir, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := run(only, 1, true, parDir, 4, 1); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table4", "table5", "figure9"} {
		a, err := os.ReadFile(filepath.Join(serialDir, id+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(parDir, id+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s differs between -j 1 and -j 4", id)
		}
	}
}

// TestRunShardedArtifactsIdentical regenerates the same artifacts on the
// single-threaded kernel and on sharded kernels, crossed with serial and
// parallel workers, and requires byte-identical files on disk — the
// -shards flag, like -j, must never change output.
func TestRunShardedArtifactsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full-size workloads")
	}
	const only = "table5,figure6,figure9"
	ids := []string{"table5", "figure6", "figure9"}
	baseDir := t.TempDir()
	if err := run(only, 1, true, baseDir, 1, 1); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []struct{ jobs, shards int }{{1, 2}, {4, 4}, {2, 16}} {
		dir := t.TempDir()
		if err := run(only, 1, true, dir, cfg.jobs, cfg.shards); err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			a, err := os.ReadFile(filepath.Join(baseDir, id+".txt"))
			if err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(filepath.Join(dir, id+".txt"))
			if err != nil {
				t.Fatal(err)
			}
			if string(a) != string(b) {
				t.Errorf("%s differs between -shards 1 and -j %d -shards %d", id, cfg.jobs, cfg.shards)
			}
		}
	}
}

// TestParseShards pins the -shards flag grammar, now shared through
// internal/cliflags (its own tests pin the exact error text).
func TestParseShards(t *testing.T) {
	if n, err := cliflags.ParseShards("4"); err != nil || n != 4 {
		t.Fatalf("ParseShards(4) = %d, %v", n, err)
	}
	if n, err := cliflags.ParseShards("auto"); err != nil || n < 1 {
		t.Fatalf("ParseShards(auto) = %d, %v", n, err)
	}
	for _, bad := range []string{"0", "-2", "many", ""} {
		if _, err := cliflags.ParseShards(bad); err == nil {
			t.Errorf("ParseShards(%q) accepted", bad)
		}
	}
}
