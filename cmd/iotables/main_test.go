package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run("table99", 1, true, ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSingleExperimentToDir(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full-size workload")
	}
	dir := t.TempDir()
	// table4 is cheap: PRISM mode tables need no simulation runs beyond
	// configuration rendering... it still renders from static configs.
	if err := run("table4", 1, true, dir); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(filepath.Join(dir, "table4.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "M_GLOBAL") {
		t.Fatalf("artifact content unexpected:\n%s", body)
	}
}
