package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run("table99", 1, true, "", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSingleExperimentToDir(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full-size workload")
	}
	dir := t.TempDir()
	// table4 is cheap: PRISM mode tables need no simulation runs beyond
	// configuration rendering... it still renders from static configs.
	if err := run("table4", 1, true, dir, 1); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(filepath.Join(dir, "table4.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "M_GLOBAL") {
		t.Fatalf("artifact content unexpected:\n%s", body)
	}
}

// TestRunParallelArtifactsIdentical regenerates the same artifacts with
// one worker and with several and requires identical files on disk —
// the -j flag must never change output.
func TestRunParallelArtifactsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full-size workloads")
	}
	serialDir, parDir := t.TempDir(), t.TempDir()
	const only = "table4,table5,figure9"
	if err := run(only, 1, true, serialDir, 1); err != nil {
		t.Fatal(err)
	}
	if err := run(only, 1, true, parDir, 4); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table4", "table5", "figure9"} {
		a, err := os.ReadFile(filepath.Join(serialDir, id+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(parDir, id+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s differs between -j 1 and -j 4", id)
		}
	}
}
