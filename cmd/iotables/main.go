// Command iotables regenerates every table and figure of the paper's
// evaluation from fresh simulated runs and prints each artifact with a
// paper-vs-measured comparison.
//
// Usage:
//
//	iotables                  # all of tables 1-5 and figures 1-9
//	iotables -only table2,figure5
//	iotables -seed 7 -summary
//	iotables -j 8             # regenerate with 8 parallel workers
//	iotables -shards auto     # shard each simulation across all cores
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"paragonio/internal/cliflags"
	"paragonio/internal/core"
	"paragonio/internal/experiments"
)

func main() {
	var (
		only    = flag.String("only", "", "comma-separated experiment ids (e.g. table2,figure5)")
		seed    = flag.Int64("seed", 1, "workload random seed")
		summary = flag.Bool("summary", false, "print only the per-experiment metric comparisons")
		outDir  = flag.String("out", "", "also write each artifact to <dir>/<id>.txt")
		jobs    = flag.String("j", "auto",
			"experiments regenerated in parallel: a count or auto = GOMAXPROCS (sims are deterministic; output is identical for any -j)")
		shards = flag.String("shards", "1",
			"kernel shards per simulation: 1 = single-threaded, N >= 2 = I/O + compute lanes, auto = GOMAXPROCS (output is identical for any value)")
	)
	flag.Parse()
	n, err := cliflags.ParseShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iotables:", err)
		os.Exit(1)
	}
	j, err := cliflags.ParseJobs(*jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iotables:", err)
		os.Exit(1)
	}
	// The suite runs the paper machine (16 I/O nodes); its smallest
	// workload is 64-node PRISM, so shard requests beyond 80 lanes clamp
	// on at least one run.
	if notice := core.ShardNotice(n, 16, 64); notice != "" {
		fmt.Fprintln(os.Stderr, "iotables:", notice)
	}
	if err := run(*only, *seed, *summary, *outDir, j, n); err != nil {
		fmt.Fprintln(os.Stderr, "iotables:", err)
		os.Exit(1)
	}
}

func run(only string, seed int64, summary bool, outDir string, jobs, shards int) error {
	exps := experiments.All()
	valid := make([]string, 0, len(exps))
	for _, e := range exps {
		valid = append(valid, e.ID)
	}
	wanted, err := cliflags.Only(only, "experiment", valid)
	if err != nil {
		return err
	}
	if wanted != nil {
		kept := exps[:0]
		for _, e := range exps {
			if wanted[e.ID] {
				kept = append(kept, e)
			}
		}
		exps = kept
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	suite := experiments.NewSuite(seed)
	suite.Shards = shards
	arts, err := experiments.RunAll(suite, exps, jobs)
	if err != nil {
		return err
	}
	for i, art := range arts {
		fmt.Printf("################ %s — %s ################\n\n", art.ID, exps[i].Title)
		if summary {
			for _, k := range art.MetricKeys() {
				fmt.Printf("  %-32s paper %10.2f   measured %10.2f\n",
					k, art.Paper[k], art.Measured[k])
			}
		} else {
			fmt.Println(art.Text)
		}
		if art.Notes != "" {
			fmt.Printf("notes: %s\n", art.Notes)
		}
		fmt.Println()
		if outDir != "" {
			body := art.Title + "\n\n" + art.Text
			if art.Notes != "" {
				body += "\nnotes: " + art.Notes + "\n"
			}
			path := filepath.Join(outDir, art.ID+".txt")
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
