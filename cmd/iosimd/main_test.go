package main

import (
	"bufio"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-addr", "nope"}, "invalid -addr"},
		{[]string{"-timeout", "-3s"}, "invalid -timeout"},
		{[]string{"-slots", "zero"}, "invalid -slots"},
		{[]string{"-queue", "-1"}, "invalid -queue"},
		{[]string{"-cache-mb", "0"}, "invalid -cache-mb"},
	} {
		err := run(tc.args, io.Discard)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want error mentioning %q", tc.args, err, tc.want)
		}
	}
}

// TestRunServesAndDrains boots the daemon on an ephemeral port, reads
// the advertised address from stdout, exercises the health and metrics
// endpoints plus a request-validation failure, and shuts down on
// SIGTERM.
func TestRunServesAndDrains(t *testing.T) {
	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	go func() { errc <- run([]string{"-addr", "127.0.0.1:0"}, pw) }()

	line, err := bufio.NewReader(pr).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	go io.Copy(io.Discard, pr) // drain the shutdown line
	const prefix = "iosimd: listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected startup line %q", line)
	}
	base := "http://" + strings.TrimSpace(strings.TrimPrefix(line, prefix))

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "iosimd_requests_total") {
		t.Error("metrics scrape missing iosimd_requests_total")
	}

	resp, err = http.Post(base+"/v1/simulate", "application/json",
		strings.NewReader(`{"app":"nope","version":"C"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad simulate status %d, want 400", resp.StatusCode)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Errorf("run returned %v after SIGTERM", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
}
