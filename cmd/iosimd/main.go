// Command iosimd is the what-if simulation daemon: a long-running HTTP
// service that answers concurrent simulation and advisor requests
// against the simulated Paragon XP/S, with content-addressed result
// caching, admission control, and Prometheus metrics.
//
// Usage:
//
//	iosimd [-addr :8080] [-timeout 5m] [-slots auto] [-queue N]
//	       [-cache-mb 64] [-spill DIR] [-sweep-points N]
//
// Endpoints: POST /v1/simulate, POST /v1/sweep, POST /v1/advise,
// GET /v1/experiments, GET /v1/results/{hash}, GET /healthz,
// GET /metrics. See docs/SERVICE.md for the API reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paragonio/internal/cliflags"
	"paragonio/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "iosimd:", err)
		os.Exit(1)
	}
}

// run parses args, boots the daemon, and serves until SIGINT/SIGTERM.
// The listening address is printed to stdout once the socket is bound,
// so scripts that start with -addr :0 can read the real port.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("iosimd", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address (host:port)")
		timeout = fs.String("timeout", "5m", "per-request simulation deadline")
		slots   = fs.String("slots", "auto", "admission slot pool (auto = GOMAXPROCS)")
		queue   = fs.Int("queue", 0, "admission queue bound (0 = 4x slots)")
		cacheMB = fs.Int64("cache-mb", 64, "in-memory result cache budget, MB")
		spill   = fs.String("spill", "", "write-through result artifacts to this directory (warm-start index on boot)")
		sweepPt = fs.Int("sweep-points", 0, "max grid points one /v1/sweep may expand to (0 = 256)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	listenAddr, err := cliflags.ParseAddr(*addr)
	if err != nil {
		return err
	}
	runTimeout, err := cliflags.ParseTimeout(*timeout)
	if err != nil {
		return err
	}
	nslots, err := cliflags.ParseJobs(*slots)
	if err != nil {
		return fmt.Errorf("invalid -slots %q (want a positive integer or auto)", *slots)
	}
	if *queue < 0 {
		return fmt.Errorf("invalid -queue %d (want a non-negative integer)", *queue)
	}
	if *cacheMB < 1 {
		return fmt.Errorf("invalid -cache-mb %d (want a positive integer)", *cacheMB)
	}
	if *sweepPt < 0 {
		return fmt.Errorf("invalid -sweep-points %d (want a non-negative integer)", *sweepPt)
	}

	s, err := server.New(server.Config{
		Timeout:        runTimeout,
		Slots:          nslots,
		MaxQueue:       *queue,
		CacheBytes:     *cacheMB << 20,
		SpillDir:       *spill,
		MaxSweepPoints: *sweepPt,
	})
	if err != nil {
		return err
	}
	if n := s.WarmEntries(); n > 0 {
		fmt.Fprintf(stdout, "iosimd: warm start: %d result artifacts indexed from %s\n", n, *spill)
	}

	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "iosimd: listening on %s\n", ln.Addr())

	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case got := <-sig:
		fmt.Fprintf(stdout, "iosimd: %s, draining\n", got)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(ctx)
	}
}
