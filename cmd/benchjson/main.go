// Command benchjson converts `go test -bench` output into a
// machine-readable JSON benchmark record — the format behind the
// repository's BENCH_<date>.json perf-trajectory files (see `make
// bench-json` and docs/PERFORMANCE.md).
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem -benchtime=1x ./... > bench.out
//	go run ./cmd/benchjson -o BENCH_2026-08-05.json < bench.out
//	go run ./cmd/benchjson -only BenchmarkClientTierHit,BenchmarkKernel < bench.out
//	go run ./cmd/benchjson -diff BENCH_2026-08-05.json BENCH_2026-08-08.json
//	go run ./cmd/benchjson -diff -threshold 0.5 old.json new.json
//
// Besides ns/op, B/op and allocs/op it keeps every custom metric the
// benchmarks report (the artifact benchmarks attach their headline
// measured quantities), and records each package's wall-clock "ok"
// time, whose sum is the suite wall clock.
//
// -diff compares two recorded reports benchmark-by-benchmark on ns/op
// and exits nonzero when any benchmark regressed beyond -threshold —
// the perf-trajectory gate CI runs (non-blocking there: -benchtime=1x
// numbers are single-iteration samples and carry real noise).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"paragonio/internal/cliflags"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with its -GOMAXPROCS suffix intact
	// (two records with different suffixes are different measurements).
	Name       string  `json:"name"`
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BPerOp / AllocsPerOp are present only under -benchmem.
	BPerOp      *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every other reported unit (custom b.ReportMetric
	// values such as the artifact benchmarks' measured quantities).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// PackageTime is one package's wall-clock "ok" line.
type PackageTime struct {
	Package string  `json:"package"`
	Seconds float64 `json:"seconds"`
}

// Report is the BENCH_<date>.json document.
type Report struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos,omitempty"`
	GOARCH     string `json:"goarch,omitempty"`
	CPU        string `json:"cpu,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// SuiteSeconds is the summed wall clock of every "ok <pkg> <t>s"
	// line — the end-to-end cost of the benchmark suite.
	SuiteSeconds float64       `json:"suite_seconds"`
	Packages     []PackageTime `json:"packages,omitempty"`
	Benchmarks   []Benchmark   `json:"benchmarks"`
}

// parse reads `go test -bench` output and builds the report skeleton
// (everything except the run date, which the caller stamps).
func parse(r io.Reader) (*Report, error) {
	rep := &Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "ok "):
			f := strings.Fields(line)
			if len(f) >= 3 && strings.HasSuffix(f[2], "s") {
				secs, err := strconv.ParseFloat(strings.TrimSuffix(f[2], "s"), 64)
				if err == nil {
					rep.Packages = append(rep.Packages, PackageTime{Package: f[1], Seconds: secs})
					rep.SuiteSeconds += secs
				}
			}
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBenchLine(line, pkg)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %v (line %q)", err, line)
			}
			if b != nil {
				rep.Benchmarks = append(rep.Benchmarks, *b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchLine parses one result line: name, iteration count, then
// (value, unit) pairs. Lines without an iteration count (e.g. a bare
// "BenchmarkFoo" printed under -v before the result) are skipped.
func parseBenchLine(line, pkg string) (*Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 3 {
		return nil, nil
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return nil, nil
	}
	b := &Benchmark{Name: f[0], Package: pkg, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", f[i])
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			v := val
			b.BPerOp = &v
		case "allocs/op":
			v := val
			b.AllocsPerOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = val
		}
	}
	return b, nil
}

func run(in io.Reader, out io.Writer, date, only string) error {
	rep, err := parse(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmark result lines on stdin")
	}
	if err := filterOnly(rep, only); err != nil {
		return err
	}
	rep.Date = date
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// filterOnly applies the -only selection to the parsed report. Names
// match the benchmark base name (the -GOMAXPROCS suffix stripped), and
// unknown names are rejected with the valid list, like iotables -only.
func filterOnly(rep *Report, only string) error {
	if only == "" {
		return nil
	}
	base := func(name string) string {
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				return name[:i]
			}
		}
		return name
	}
	valid := make([]string, 0, len(rep.Benchmarks))
	seen := map[string]bool{}
	for _, b := range rep.Benchmarks {
		if n := base(b.Name); !seen[n] {
			seen[n] = true
			valid = append(valid, n)
		}
	}
	wanted, err := cliflags.Only(only, "benchmark", valid)
	if err != nil {
		return err
	}
	kept := rep.Benchmarks[:0]
	for _, b := range rep.Benchmarks {
		if wanted[base(b.Name)] {
			kept = append(kept, b)
		}
	}
	rep.Benchmarks = kept
	return nil
}

// loadReport reads one BENCH_<date>.json document.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %v", path, err)
	}
	return &rep, nil
}

// diffReports prints the old-vs-new ns/op delta for every benchmark the
// two reports share (plus additions and removals) and returns the names
// that regressed beyond threshold (a fraction: 0.2 = 20% slower).
// Benchmarks whose baseline ns/op is below floor are reported but never
// flagged: a -benchtime=1x sample of a microsecond-scale benchmark is a
// single timer read, and its run-to-run swing exceeds any threshold a
// gate could hold.
func diffReports(w io.Writer, oldRep, newRep *Report, threshold, floor float64) []string {
	key := func(b Benchmark) string { return b.Package + "." + b.Name }
	oldBy := make(map[string]Benchmark, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[key(b)] = b
	}
	var regressed []string
	matched := make(map[string]bool)
	fmt.Fprintf(w, "%-58s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, nb := range newRep.Benchmarks {
		ob, ok := oldBy[key(nb)]
		if !ok {
			fmt.Fprintf(w, "%-58s %14s %14.1f %9s\n", nb.Name, "-", nb.NsPerOp, "new")
			continue
		}
		matched[key(nb)] = true
		if ob.NsPerOp <= 0 {
			fmt.Fprintf(w, "%-58s %14.1f %14.1f %9s\n", nb.Name, ob.NsPerOp, nb.NsPerOp, "n/a")
			continue
		}
		delta := nb.NsPerOp/ob.NsPerOp - 1
		mark := ""
		if ob.NsPerOp < floor {
			if delta > threshold {
				mark = "  (noise floor)"
			}
		} else if delta > threshold {
			mark = "  REGRESSED"
			regressed = append(regressed, nb.Name)
		}
		fmt.Fprintf(w, "%-58s %14.1f %14.1f %+8.1f%%%s\n", nb.Name, ob.NsPerOp, nb.NsPerOp, delta*100, mark)
	}
	for _, ob := range oldRep.Benchmarks {
		if !matched[key(ob)] {
			fmt.Fprintf(w, "%-58s %14.1f %14s %9s\n", ob.Name, ob.NsPerOp, "-", "removed")
		}
	}
	if oldRep.SuiteSeconds > 0 && newRep.SuiteSeconds > 0 {
		fmt.Fprintf(w, "suite wall clock: %.1fs -> %.1fs (%+.1f%%)\n",
			oldRep.SuiteSeconds, newRep.SuiteSeconds,
			100*(newRep.SuiteSeconds/oldRep.SuiteSeconds-1))
	}
	if len(regressed) > 0 {
		fmt.Fprintf(w, "%d benchmark(s) regressed beyond +%.0f%%\n",
			len(regressed), threshold*100)
	}
	return regressed
}

func main() {
	outPath := flag.String("o", "", "output file (default stdout)")
	date := flag.String("date", time.Now().Format("2006-01-02"), "run date stamped into the report")
	only := flag.String("only", "", "comma-separated benchmark base names to keep (e.g. BenchmarkKernel,BenchmarkClientTierHit)")
	diff := flag.Bool("diff", false, "compare two recorded reports: benchjson -diff old.json new.json")
	threshold := flag.Float64("threshold", 0.2, "with -diff: exit nonzero when any benchmark's ns/op grew by more than this fraction")
	floor := flag.Float64("floor", 0, "with -diff: ignore benchmarks whose baseline ns/op is below this (1x samples of micro-benchmarks are timer noise)")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff wants exactly two files: old.json new.json")
			os.Exit(2)
		}
		oldRep, err := loadReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		newRep, err := loadReport(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if regressed := diffReports(os.Stdout, oldRep, newRep, *threshold, *floor); len(regressed) > 0 {
			os.Exit(1)
		}
		return
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := run(os.Stdin, out, *date, *only); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *outPath != "" {
		fmt.Printf("wrote %s\n", *outPath)
	}
}
