package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: paragonio
cpu: Intel(R) Xeon(R) CPU
BenchmarkTable1ESCATModes-8   	       1	 142000000 ns/op	        12.30 eth.open_cnt	  512 B/op	       9 allocs/op
BenchmarkKernelEventDispatch-8	 5204425	       230.5 ns/op	      48 B/op	       1 allocs/op
BenchmarkShardedCarbonMonoxide/shards=1-8         	       1	1400000000 ns/op
PASS
ok  	paragonio	12.345s
pkg: paragonio/internal/sim
BenchmarkHeapPush	 1000000	      55.0 ns/op
PASS
ok  	paragonio/internal/sim	1.655s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.CPU != "Intel(R) Xeon(R) CPU" {
		t.Fatalf("host fields wrong: %+v", rep)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}

	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkTable1ESCATModes-8" || b.Package != "paragonio" {
		t.Fatalf("first benchmark: %+v", b)
	}
	if b.Iterations != 1 || b.NsPerOp != 142000000 {
		t.Fatalf("first benchmark numbers: %+v", b)
	}
	if b.BPerOp == nil || *b.BPerOp != 512 || b.AllocsPerOp == nil || *b.AllocsPerOp != 9 {
		t.Fatalf("first benchmark memstats: %+v", b)
	}
	if got := b.Metrics["eth.open_cnt"]; got != 12.30 {
		t.Fatalf("custom metric = %v, want 12.30", got)
	}

	if b := rep.Benchmarks[1]; b.NsPerOp != 230.5 || b.Iterations != 5204425 {
		t.Fatalf("second benchmark: %+v", b)
	}
	if b := rep.Benchmarks[2]; !strings.Contains(b.Name, "shards=1") || b.NsPerOp != 1.4e9 {
		t.Fatalf("sub-benchmark: %+v", b)
	}
	if b := rep.Benchmarks[3]; b.Package != "paragonio/internal/sim" || b.BPerOp != nil {
		t.Fatalf("cross-package benchmark: %+v", b)
	}

	if rep.SuiteSeconds != 14.0 {
		t.Fatalf("suite wall clock = %v, want 14.0", rep.SuiteSeconds)
	}
	if len(rep.Packages) != 2 || rep.Packages[1].Seconds != 1.655 {
		t.Fatalf("package times: %+v", rep.Packages)
	}
}

func TestRunEmitsJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleOutput), &out, "2026-08-05", ""); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Date != "2026-08-05" {
		t.Fatalf("date = %q", rep.Date)
	}
	if len(rep.Benchmarks) != 4 || rep.SuiteSeconds != 14.0 {
		t.Fatalf("round-trip lost data: %+v", rep)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("no benchmarks here\n"), &out, "2026-08-05", ""); err == nil {
		t.Fatal("empty input accepted")
	}
}

// TestRunOnlyFilter pins the -only selection: kept names survive with
// the -GOMAXPROCS suffix intact, and a typo is rejected with the valid
// base-name list, in the same shape as iotables -only.
func TestRunOnlyFilter(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleOutput), &out, "2026-08-05", "BenchmarkKernelEventDispatch"); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		t.Fatal("-only filtered everything out")
	}
	for _, b := range rep.Benchmarks {
		if !strings.HasPrefix(b.Name, "BenchmarkKernelEventDispatch") {
			t.Errorf("unexpected benchmark %q survived the filter", b.Name)
		}
	}
	out.Reset()
	err := run(strings.NewReader(sampleOutput), &out, "2026-08-05", "BenchmarkTypo")
	if err == nil || !strings.Contains(err.Error(), `unknown benchmark "BenchmarkTypo" (valid: `) {
		t.Fatalf("typo error = %v", err)
	}
}

// TestDiffReports pins the -diff semantics: shared benchmarks get a
// delta row, additions/removals are labeled, and only regressions past
// the threshold are returned.
func TestDiffReports(t *testing.T) {
	f := func(v float64) *float64 { return &v }
	oldRep := &Report{
		SuiteSeconds: 10,
		Benchmarks: []Benchmark{
			{Name: "BenchmarkA-8", Package: "p", NsPerOp: 100, AllocsPerOp: f(1)},
			{Name: "BenchmarkB-8", Package: "p", NsPerOp: 200},
			{Name: "BenchmarkGone-8", Package: "p", NsPerOp: 50},
		},
	}
	newRep := &Report{
		SuiteSeconds: 11,
		Benchmarks: []Benchmark{
			{Name: "BenchmarkA-8", Package: "p", NsPerOp: 105}, // +5%: fine
			{Name: "BenchmarkB-8", Package: "p", NsPerOp: 300}, // +50%: regressed
			{Name: "BenchmarkNew-8", Package: "p", NsPerOp: 70},
		},
	}
	var out bytes.Buffer
	regressed := diffReports(&out, oldRep, newRep, 0.2, 0)
	if len(regressed) != 1 || regressed[0] != "BenchmarkB-8" {
		t.Fatalf("regressed = %v, want [BenchmarkB-8]", regressed)
	}
	text := out.String()
	for _, want := range []string{"REGRESSED", "new", "removed", "suite wall clock"} {
		if !strings.Contains(text, want) {
			t.Errorf("diff output missing %q:\n%s", want, text)
		}
	}
	// A looser threshold clears the exit condition.
	if regressed := diffReports(&bytes.Buffer{}, oldRep, newRep, 0.6, 0); len(regressed) != 0 {
		t.Fatalf("threshold 0.6 still flags %v", regressed)
	}
	// A noise floor above the regressed benchmark's baseline mutes it.
	var muted bytes.Buffer
	if regressed := diffReports(&muted, oldRep, newRep, 0.2, 250); len(regressed) != 0 {
		t.Fatalf("floor 250 still flags %v", regressed)
	}
	if !strings.Contains(muted.String(), "(noise floor)") {
		t.Errorf("muted diff output missing the noise-floor mark:\n%s", muted.String())
	}
}

// TestDiffSameReportIsClean pins that a report diffed against itself
// reports no regressions at any threshold.
func TestDiffSameReportIsClean(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if regressed := diffReports(&bytes.Buffer{}, rep, rep, 0, 0); len(regressed) != 0 {
		t.Fatalf("self-diff flags %v", regressed)
	}
}
