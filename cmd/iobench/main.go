// Command iobench runs the derived parallel-I/O benchmark suite — the
// paper's stated future work — sweeping canonical access-pattern
// kernels across PFS modes, request sizes, and machine configurations.
//
// Usage:
//
//	iobench                       # all kernels x all modes (default sizes)
//	iobench -kernel strided-reload -sweep modes
//	iobench -kernel staging-write  -sweep request -mode M_ASYNC
//	iobench -kernel compulsory-read -sweep ionodes -mode M_GLOBAL
//	iobench -kernel checkpoint     -sweep cache   -mode M_ASYNC
//	iobench -kernel strided-reload -sweep clientcache
//	iobench -kernel checkpoint     -sweep faults  -mode M_ASYNC
//	iobench -kernel checkpoint     -sweep logtier -mode M_ASYNC
//	iobench -nodes 64 -volume 67108864 -request 131072
//	iobench -shards auto           # shard each simulation across all cores
package main

import (
	"flag"
	"fmt"
	"os"

	"paragonio/internal/cliflags"
	"paragonio/internal/core"
	"paragonio/internal/iobench"
	"paragonio/internal/pfs"
)

func main() {
	var (
		kernel  = flag.String("kernel", "", "kernel slug (empty = all)")
		sweep   = flag.String("sweep", "modes", "sweep dimension: modes, request, ionodes, cache, clientcache, advisor, flush, faults, logtier")
		mode    = flag.String("mode", "M_ASYNC", "access mode for request/ionodes sweeps")
		nodes   = flag.Int("nodes", 32, "compute nodes")
		request = flag.Int64("request", 128<<10, "request size (bytes)")
		volume  = flag.Int64("volume", 32<<20, "total bytes per kernel")
		seed    = flag.Int64("seed", 1, "workload seed")
		shards  = flag.String("shards", "1",
			"kernel shards per simulation: 1 = single-threaded, N >= 2 = I/O + compute lanes, auto = GOMAXPROCS (results are identical for any value)")
	)
	flag.Parse()
	ns, err := cliflags.ParseShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iobench:", err)
		os.Exit(1)
	}
	// The benchmark machine keeps the paper's 16 I/O nodes (the -sweep
	// ionodes dimension varies it per run, but the notice is about the
	// base topology).
	if notice := core.ShardNotice(ns, 16, *nodes); notice != "" {
		fmt.Fprintln(os.Stderr, "iobench:", notice)
	}
	if err := run(*kernel, *sweep, *mode, *nodes, *request, *volume, *seed, ns); err != nil {
		fmt.Fprintln(os.Stderr, "iobench:", err)
		os.Exit(1)
	}
}

func run(kernel, sweep, modeName string, nodes int, request, volume, seed int64, shards int) error {
	var kernels []iobench.Kernel
	if kernel == "" {
		kernels = iobench.Kernels()
	} else {
		var found bool
		for _, k := range iobench.Kernels() {
			if k.String() == kernel {
				kernels = append(kernels, k)
				found = true
			}
		}
		if !found {
			return fmt.Errorf("unknown kernel %q (try strided-reload, staging-write, ...)", kernel)
		}
	}
	mode, err := pfs.ParseMode(modeName)
	if err != nil {
		return err
	}
	for _, k := range kernels {
		base := iobench.Params{
			Kernel: k, Mode: mode, Nodes: nodes,
			Request: request, Volume: volume, Seed: seed,
			Shards: shards,
		}
		var results []*iobench.Result
		var label func(*iobench.Result) string
		switch sweep {
		case "modes":
			results, err = iobench.SweepModes(base)
			label = func(r *iobench.Result) string { return r.Params.Mode.String() }
		case "request":
			results, err = iobench.SweepRequestSizes(base,
				[]int64{4 << 10, 16 << 10, 64 << 10, 128 << 10, 512 << 10})
			label = func(r *iobench.Result) string {
				return fmt.Sprintf("%d KB", r.Params.Request>>10)
			}
		case "ionodes":
			results, err = iobench.SweepIONodes(base, []int{2, 4, 8, 16, 32})
			label = func(r *iobench.Result) string {
				return fmt.Sprintf("%d io nodes", r.Params.IONodes)
			}
		case "cache":
			results, err = iobench.SweepCache(base)
			label = func(r *iobench.Result) string { return r.CacheLabel }
		case "clientcache":
			results, err = iobench.SweepClientCache(base)
			label = func(r *iobench.Result) string { return r.CacheLabel }
		case "advisor":
			results, err = iobench.SweepAdvisor(base)
			label = func(r *iobench.Result) string { return r.CacheLabel }
		case "flush":
			results, err = iobench.SweepFlush(base)
		case "faults":
			results, err = iobench.SweepFaults(base)
		case "logtier":
			results, err = iobench.SweepLogTier(base)
		default:
			return cliflags.Sweep(sweep,
				[]string{"modes", "request", "ionodes", "cache", "clientcache", "advisor", "flush", "faults", "logtier"})
		}
		if err != nil {
			return err
		}
		title := fmt.Sprintf("%s: %d nodes, %d KB requests, %d MB volume (sweep: %s)",
			k, nodes, request>>10, volume>>20, sweep)
		switch sweep {
		case "flush":
			err = iobench.WriteFlushTable(os.Stdout, title, results)
		case "faults":
			err = iobench.WriteFaultTable(os.Stdout, title, results)
		case "logtier":
			err = iobench.WriteLogTierTable(os.Stdout, title, results)
		default:
			err = iobench.WriteTable(os.Stdout, title, results, label)
		}
		if err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
