package main

import "testing"

func TestRunValidation(t *testing.T) {
	if err := run("nosuch", "modes", "M_ASYNC", 8, 65536, 1<<20, 1, 1); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if err := run("strided-reload", "nosuch", "M_ASYNC", 8, 65536, 1<<20, 1, 1); err == nil {
		t.Fatal("unknown sweep accepted")
	}
	if err := run("strided-reload", "modes", "M_BOGUS", 8, 65536, 1<<20, 1, 1); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestRunSmallSweep(t *testing.T) {
	if err := run("staging-write", "ionodes", "M_ASYNC", 8, 65536, 1<<20, 1, 1); err != nil {
		t.Fatal(err)
	}
}
