package main

import "testing"

func TestRunValidation(t *testing.T) {
	if err := run("nosuch", "modes", "M_ASYNC", 8, 65536, 1<<20, 1, 1); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	err := run("strided-reload", "nosuch", "M_ASYNC", 8, 65536, 1<<20, 1, 1)
	if err == nil {
		t.Fatal("unknown sweep accepted")
	}
	// The unknown-sweep error enumerates every sweep id, so a new sweep
	// that forgets to list itself fails here.
	want := `unknown sweep "nosuch" (valid: modes, request, ionodes, cache, clientcache, advisor, flush, faults, logtier)`
	if err.Error() != want {
		t.Fatalf("unknown-sweep error = %q, want %q", err, want)
	}
	if err := run("strided-reload", "modes", "M_BOGUS", 8, 65536, 1<<20, 1, 1); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestRunSmallSweep(t *testing.T) {
	if err := run("staging-write", "ionodes", "M_ASYNC", 8, 65536, 1<<20, 1, 1); err != nil {
		t.Fatal(err)
	}
}
