// Command iotrace analyzes SDDF trace files produced by iosim -trace,
// playing the role of Pablo's offline analysis graphs: statistical
// summaries, per-operation tables, request-size CDFs, timeline plots,
// access-pattern advice, and CSV export.
//
// Usage:
//
//	iotrace summary  trace.sddf              # aggregate + per-file lifetimes
//	iotrace cdf      trace.sddf [-op read]   # request-size CDF plot
//	iotrace timeline trace.sddf [-op seek]   # size/duration scatter over time
//	iotrace timeline trace.sddf -op cache-dirty      # tag-2 dirty-queue depth
//	iotrace cdf      trace.sddf -op cache-hit-ratio  # tag-2 hit-ratio CDF
//	iotrace windows  trace.sddf [-width 10s] # time-window summaries
//	iotrace regions  trace.sddf -file f [-rwidth 65536]  # file-region summaries
//	iotrace taxonomy trace.sddf              # Miller-Katz I/O classification
//	iotrace advise   trace.sddf              # file-system policy advice
//	iotrace replay   trace.sddf [-ionodes 32] [-gaps]    # replay on another machine
//	iotrace csv      trace.sddf              # events as CSV
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"paragonio/internal/analysis"
	"paragonio/internal/core"
	"paragonio/internal/pablo"
	"paragonio/internal/policy"
	"paragonio/internal/replay"
	"paragonio/internal/report"
	"paragonio/internal/sddf"
)

func main() {
	if len(os.Args) < 3 {
		usage()
		os.Exit(2)
	}
	cmd, path := os.Args[1], os.Args[2]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	opName := fs.String("op", "read", "operation type for cdf/timeline")
	width := fs.Duration("width", 10*time.Second, "window width for windows")
	file := fs.String("file", "", "file name for regions")
	rwidth := fs.Int64("rwidth", 65536, "region width in bytes for regions")
	ionodes := fs.Int("ionodes", 0, "replay: target I/O node count (0 = paper's 16)")
	stripe := fs.Int64("stripe", 0, "replay: target stripe unit (0 = 64 KB)")
	gaps := fs.Bool("gaps", false, "replay: preserve inter-operation think time")
	fs.Parse(os.Args[3:])

	tr, samples, err := load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iotrace:", err)
		os.Exit(1)
	}
	switch cmd {
	case "summary":
		err = summary(tr)
	case "cdf":
		if isCacheOp(*opName) {
			err = cacheCDF(os.Stdout, samples, *opName)
		} else {
			err = cdf(tr, *opName)
		}
	case "timeline":
		if isCacheOp(*opName) {
			err = cacheTimeline(os.Stdout, samples, *opName)
		} else {
			err = timeline(tr, *opName)
		}
	case "windows":
		err = windows(tr, *width)
	case "regions":
		err = regions(tr, *file, *rwidth)
	case "taxonomy":
		err = taxonomy(tr)
	case "advise":
		err = advise(tr)
	case "replay":
		err = replayCmd(tr, *ionodes, *stripe, *gaps)
	case "csv":
		err = csv(tr)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "iotrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr,
		"usage: iotrace <summary|cdf|timeline|windows|regions|taxonomy|advise|replay|csv> <trace.sddf> [flags]")
}

// load reads a trace in any of the three supported encodings, detected
// by magic: the SDDF text format, the compact binary format, or the
// generic self-describing stream. From a generic stream the tag-2
// cache-sample records ride along for the cache-* plot ops; other
// foreign records are ignored, and the single-stream formats carry no
// samples.
func load(path string) (*pablo.Trace, []pablo.CacheSample, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	switch {
	case bytes.HasPrefix(data, []byte("PIOB")):
		tr, err := pablo.ReadTraceBinary(bytes.NewReader(data))
		return tr, nil, err
	case bytes.HasPrefix(data, []byte("#SDDF-G")):
		tr, others, err := pablo.ReadSDDF(sddf.NewReader(bytes.NewReader(data)))
		if err != nil {
			return nil, nil, err
		}
		var samples []pablo.CacheSample
		for _, rec := range others {
			if rec.Desc == nil || rec.Desc.Name != "cache-sample" {
				continue
			}
			s, err := pablo.CacheSampleFromRecord(rec)
			if err != nil {
				return nil, nil, err
			}
			samples = append(samples, s)
		}
		return tr, samples, nil
	default:
		tr, err := pablo.ReadTrace(bytes.NewReader(data))
		return tr, nil, err
	}
}

// isCacheOp reports whether the -op value names a tag-2 cache series
// rather than an io-event operation.
func isCacheOp(op string) bool {
	return op == "cache-dirty" || op == "cache-hit-ratio"
}

// instant is one sampling instant aggregated across I/O nodes.
type instant struct {
	t          time.Duration
	dirty      float64
	hits       float64 // cumulative, summed over I/O nodes
	misses     float64
	cliHits    float64 // tier-wide (identical on every record of the instant)
	cliMisses  float64
	haveClient bool
}

// instants folds the per-I/O-node cache-sample records into one point
// per sampling instant, in time order (the records arrive time-ordered).
func instants(samples []pablo.CacheSample) []instant {
	var out []instant
	for _, s := range samples {
		if len(out) == 0 || out[len(out)-1].t != s.T {
			out = append(out, instant{t: s.T})
		}
		in := &out[len(out)-1]
		in.dirty += float64(s.Dirty)
		in.hits += float64(s.Hits)
		in.misses += float64(s.Misses)
		// The client-tier fields are tier-wide, so take one record's.
		in.cliHits = float64(s.ClientHits)
		in.cliMisses = float64(s.ClientMisses)
		if s.ClientHits != 0 || s.ClientMisses != 0 {
			in.haveClient = true
		}
	}
	return out
}

func ratio(h, m float64) float64 {
	if h+m == 0 {
		return 0
	}
	return h / (h + m)
}

// cacheTimeline plots a tag-2 series over execution time: the aggregate
// dirty-queue depth, or the cumulative hit ratio (with a second series
// for the client tier when the stream carries it).
func cacheTimeline(w io.Writer, samples []pablo.CacheSample, op string) error {
	ins := instants(samples)
	if len(ins) == 0 {
		return fmt.Errorf("no cache-sample records in the stream (need a generic SDDF stream with tag-2 records)")
	}
	var series []report.Series
	plot := report.Plot{XLabel: "execution time (s)", Width: 72, Height: 16}
	switch op {
	case "cache-dirty":
		plot.Title = "dirty-queue depth over execution time"
		plot.YLabel = "dirty blocks (all I/O nodes)"
		s := report.Series{Name: "dirty", Glyph: '*', Line: true}
		for _, in := range ins {
			s.Points = append(s.Points, report.Point{X: in.t.Seconds(), Y: in.dirty})
		}
		series = append(series, s)
	default: // cache-hit-ratio
		plot.Title = "cache hit ratio over execution time"
		plot.YLabel = "cumulative hit ratio"
		ion := report.Series{Name: "io-node tier", Glyph: 'i', Line: true}
		cli := report.Series{Name: "client tier", Glyph: 'c', Line: true}
		haveClient := false
		for _, in := range ins {
			ion.Points = append(ion.Points, report.Point{X: in.t.Seconds(), Y: ratio(in.hits, in.misses)})
			cli.Points = append(cli.Points, report.Point{X: in.t.Seconds(), Y: ratio(in.cliHits, in.cliMisses)})
			haveClient = haveClient || in.haveClient
		}
		series = append(series, ion)
		if haveClient {
			series = append(series, cli)
		}
	}
	return plot.Render(w, series)
}

// cacheCDF plots the distribution of a tag-2 series across sampling
// instants: what fraction of the run sat at or below a given depth or
// ratio.
func cacheCDF(w io.Writer, samples []pablo.CacheSample, op string) error {
	ins := instants(samples)
	if len(ins) == 0 {
		return fmt.Errorf("no cache-sample records in the stream (need a generic SDDF stream with tag-2 records)")
	}
	vals := make([]float64, len(ins))
	plot := report.Plot{YLabel: "CDF", Width: 72, Height: 18}
	if op == "cache-dirty" {
		plot.Title = "CDF of dirty-queue depth across sampling instants"
		plot.XLabel = "dirty blocks (all I/O nodes)"
		for i, in := range ins {
			vals[i] = in.dirty
		}
	} else {
		plot.Title = "CDF of io-node hit ratio across sampling instants"
		plot.XLabel = "cumulative hit ratio"
		for i, in := range ins {
			vals[i] = ratio(in.hits, in.misses)
		}
	}
	sort.Float64s(vals)
	s := report.Series{Name: op, Glyph: '*', Line: true}
	for i, v := range vals {
		s.Points = append(s.Points, report.Point{X: v, Y: float64(i+1) / float64(len(vals))})
	}
	return plot.Render(w, []report.Series{s})
}

func summary(tr *pablo.Trace) error {
	start, end := tr.Span()
	fmt.Printf("%d events over %.1f s of virtual time; %d nodes active; total I/O time %.1f s\n\n",
		tr.Len(), (end - start).Seconds(), len(pablo.NodesActive(tr)), tr.TotalIOTime().Seconds())
	var rows [][]string
	for _, s := range analysis.IOTimeShares(tr) {
		rows = append(rows, []string{
			s.Op.String(), fmt.Sprintf("%.2f", s.Percent),
			fmt.Sprintf("%d", s.Count), fmt.Sprintf("%.2f", s.Total.Seconds()),
		})
	}
	if err := report.Table(os.Stdout, "Aggregate I/O time by operation",
		[]string{"Operation", "%", "count", "total (s)"}, rows); err != nil {
		return err
	}
	fmt.Println()
	life := pablo.FileLifetimes(tr)
	rows = rows[:0]
	for _, name := range report.SortedKeys(life) {
		s := life[name]
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", s.Count[pablo.OpRead]),
			fmt.Sprintf("%.1f MB", float64(s.BytesRead)/1e6),
			fmt.Sprintf("%d", s.Count[pablo.OpWrite]),
			fmt.Sprintf("%.1f MB", float64(s.BytesWritten)/1e6),
			fmt.Sprintf("%.1f", s.OpenTime.Seconds()),
		})
	}
	return report.Table(os.Stdout, "File lifetime summaries",
		[]string{"File", "reads", "read", "writes", "written", "open (s)"}, rows)
}

func cdf(tr *pablo.Trace, opName string) error {
	op, err := pablo.ParseOp(opName)
	if err != nil {
		return err
	}
	c := analysis.SizeCDFOf(tr, op)
	if c.Ops.Empty() {
		return fmt.Errorf("no %s events with data", op)
	}
	toSeries := func(name string, glyph rune, pts []struct{ X, F float64 }) report.Series {
		s := report.Series{Name: name, Glyph: glyph, Line: true}
		for _, p := range pts {
			s.Points = append(s.Points, report.Point{X: p.X, Y: p.F})
		}
		return s
	}
	var opsPts, dataPts []struct{ X, F float64 }
	for _, p := range c.Ops.Points() {
		opsPts = append(opsPts, struct{ X, F float64 }{p.X, p.F})
	}
	for _, p := range c.Data.Points() {
		dataPts = append(dataPts, struct{ X, F float64 }{p.X, p.F})
	}
	plot := report.Plot{
		Title:  fmt.Sprintf("CDF of %s request sizes", op),
		XLabel: "bytes", YLabel: "CDF", XLog: true, Width: 72, Height: 18,
	}
	return plot.Render(os.Stdout, []report.Series{
		toSeries("fraction of requests", 'r', opsPts),
		toSeries("fraction of data", 'd', dataPts),
	})
}

func timeline(tr *pablo.Trace, opName string) error {
	op, err := pablo.ParseOp(opName)
	if err != nil {
		return err
	}
	var pts []analysis.TimelinePoint
	yLabel := "bytes"
	if op == pablo.OpRead || op == pablo.OpWrite {
		pts = analysis.SizeTimeline(tr, op)
	} else {
		pts = analysis.DurationTimeline(tr, op)
		yLabel = "seconds"
	}
	if len(pts) == 0 {
		return fmt.Errorf("no %s events", op)
	}
	s := report.Series{Name: op.String(), Glyph: '*'}
	for _, p := range pts {
		s.Points = append(s.Points, report.Point{X: p.T.Seconds(), Y: p.V})
	}
	plot := report.Plot{
		Title:  fmt.Sprintf("%s over execution time", op),
		XLabel: "execution time (s)", YLabel: yLabel, YLog: yLabel == "bytes",
		Width: 72, Height: 16,
	}
	return plot.Render(os.Stdout, []report.Series{s})
}

func windows(tr *pablo.Trace, width time.Duration) error {
	if width <= 0 {
		return fmt.Errorf("window width must be positive")
	}
	ws := pablo.TimeWindows(tr, width)
	var rows [][]string
	for _, w := range ws {
		if w.TotalCount() == 0 {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f-%.0f", w.Start.Seconds(), w.End.Seconds()),
			fmt.Sprintf("%d", w.TotalCount()),
			fmt.Sprintf("%.2f", w.TotalDuration().Seconds()),
			fmt.Sprintf("%.2f MB", float64(w.BytesRead)/1e6),
			fmt.Sprintf("%.2f MB", float64(w.BytesWritten)/1e6),
		})
	}
	return report.Table(os.Stdout, fmt.Sprintf("Time-window summaries (%v windows)", width),
		[]string{"Window (s)", "ops", "I/O time (s)", "read", "written"}, rows)
}

func taxonomy(tr *pablo.Trace) error {
	_, end := tr.Span()
	classes := analysis.ClassifyTaxonomy(tr, end)
	var rows [][]string
	for _, fc := range classes {
		rows = append(rows, []string{
			fc.File, fc.Category.String(),
			fmt.Sprintf("%.2f MB", float64(fc.BytesRead)/1e6),
			fmt.Sprintf("%.2f MB", float64(fc.BytesWritten)/1e6),
			fmt.Sprintf("%.1f s", fc.IOTime.Seconds()),
			fc.Why,
		})
	}
	if err := report.Table(os.Stdout, "High-level I/O classification (Miller & Katz taxonomy)",
		[]string{"File", "class", "read", "written", "I/O time", "evidence"}, rows); err != nil {
		return err
	}
	fmt.Println()
	totals := analysis.TaxonomyTotals(classes)
	rows = rows[:0]
	for _, cat := range []analysis.Category{analysis.CompulsoryInput, analysis.DataStaging,
		analysis.Checkpointing, analysis.PeriodicOutput, analysis.ResultOutput, analysis.Other} {
		tc, ok := totals[cat]
		if !ok {
			continue
		}
		rows = append(rows, []string{
			cat.String(),
			fmt.Sprintf("%.2f MB", float64(tc.BytesRead+tc.BytesWritten)/1e6),
			fmt.Sprintf("%.1f s", tc.IOTime.Seconds()),
		})
	}
	return report.Table(os.Stdout, "Per-class totals",
		[]string{"class", "bytes", "I/O time"}, rows)
}

func advise(tr *pablo.Trace) error {
	return policy.WriteAdvice(os.Stdout, policy.Classify(tr), policy.Options{}, policy.CacheOptions{})
}

func regions(tr *pablo.Trace, file string, width int64) error {
	if file == "" {
		return fmt.Errorf("regions: -file is required (one of %v)", tr.Files())
	}
	if width <= 0 {
		return fmt.Errorf("regions: -rwidth must be positive")
	}
	rs := pablo.FileRegions(tr, file, width)
	if rs == nil {
		return fmt.Errorf("regions: no spatial activity on %q", file)
	}
	var rows [][]string
	for _, r := range rs {
		if r.TotalCount() == 0 {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d-%d", r.Lo, r.Hi),
			fmt.Sprintf("%d", r.Count[pablo.OpRead]),
			fmt.Sprintf("%.2f MB", float64(r.BytesRead)/1e6),
			fmt.Sprintf("%d", r.Count[pablo.OpWrite]),
			fmt.Sprintf("%.2f MB", float64(r.BytesWritten)/1e6),
			fmt.Sprintf("%d", r.Count[pablo.OpSeek]),
		})
	}
	return report.Table(os.Stdout,
		fmt.Sprintf("File-region summaries for %s (%d-byte regions)", file, width),
		[]string{"Region (bytes)", "reads", "read", "writes", "written", "seeks"}, rows)
}

func replayCmd(tr *pablo.Trace, ionodes int, stripe int64, gaps bool) error {
	out, err := replay.Replay(tr, replay.Config{
		Platform:     core.Config{IONodes: ionodes, StripeUnit: stripe},
		PreserveGaps: gaps,
	})
	if err != nil {
		return err
	}
	target := "the paper's machine (16 I/O nodes, 64 KB stripes)"
	if ionodes != 0 || stripe != 0 {
		target = fmt.Sprintf("%d I/O nodes, %d KB stripes",
			pick(ionodes, 16), pick64(stripe, 65536)>>10)
	}
	fmt.Printf("replayed %d reads + %d writes on %s\n\n", out.Reads, out.Writes, target)
	rows := [][]string{
		{"data-operation time", fmtSec(out.OriginalDataTime), fmtSec(out.ReplayDataTime)},
		{"span", fmtSec(out.OriginalSpan), fmtSec(out.ReplaySpan)},
	}
	if err := report.Table(os.Stdout, "original vs replay",
		[]string{"quantity", "original", "replay"}, rows); err != nil {
		return err
	}
	fmt.Printf("\ndata-path speedup on the target machine: %.2fx\n", out.Speedup())
	return nil
}

func pick(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func pick64(v, def int64) int64 {
	if v == 0 {
		return def
	}
	return v
}

func fmtSec(d time.Duration) string { return fmt.Sprintf("%.2f s", d.Seconds()) }

func csv(tr *pablo.Trace) error {
	rows := make([][]string, 0, tr.Len())
	for _, ev := range tr.Events() {
		rows = append(rows, []string{
			fmt.Sprintf("%d", ev.Node), ev.Op.String(), ev.File,
			fmt.Sprintf("%d", ev.Offset), fmt.Sprintf("%d", ev.Size),
			fmt.Sprintf("%d", int64(ev.Start)), fmt.Sprintf("%d", int64(ev.Duration)),
			ev.Mode,
		})
	}
	return report.CSV(os.Stdout, []string{"node", "op", "file", "offset", "size", "start_ns", "dur_ns", "mode"}, rows)
}
