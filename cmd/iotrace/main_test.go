package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"paragonio/internal/pablo"
	"paragonio/internal/sddf"
)

// writeTestTrace builds a small on-disk SDDF trace.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	tr := pablo.NewTrace()
	tr.Record(pablo.Event{Node: 0, Op: pablo.OpOpen, File: "f",
		Duration: time.Millisecond, Mode: "M_UNIX"})
	for i := 0; i < 20; i++ {
		tr.Record(pablo.Event{Node: i % 4, Op: pablo.OpRead, File: "f",
			Offset: int64(i) * 512, Size: 512,
			Start: time.Duration(i) * time.Second, Duration: 2 * time.Millisecond,
			Mode: "M_UNIX"})
	}
	tr.Record(pablo.Event{Node: 0, Op: pablo.OpWrite, File: "g",
		Offset: 0, Size: 1 << 20, Start: time.Minute, Duration: time.Second,
		Mode: "M_ASYNC"})
	path := filepath.Join(t.TempDir(), "t.sddf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := pablo.WriteTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadRoundTrip(t *testing.T) {
	path := writeTestTrace(t)
	tr, _, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 22 {
		t.Fatalf("loaded %d events", tr.Len())
	}
	if _, _, err := load(filepath.Join(t.TempDir(), "missing.sddf")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSubcommandsRun(t *testing.T) {
	path := writeTestTrace(t)
	tr, _, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := summary(tr); err != nil {
		t.Fatalf("summary: %v", err)
	}
	if err := cdf(tr, "read"); err != nil {
		t.Fatalf("cdf: %v", err)
	}
	if err := cdf(tr, "bogus"); err == nil {
		t.Fatal("cdf accepted bogus op")
	}
	if err := timeline(tr, "read"); err != nil {
		t.Fatalf("timeline: %v", err)
	}
	if err := timeline(tr, "seek"); err == nil {
		t.Fatal("timeline with no events should error")
	}
	if err := windows(tr, 10*time.Second); err != nil {
		t.Fatalf("windows: %v", err)
	}
	if err := windows(tr, 0); err == nil {
		t.Fatal("windows accepted zero width")
	}
	if err := regions(tr, "f", 1024); err != nil {
		t.Fatalf("regions: %v", err)
	}
	if err := regions(tr, "", 1024); err == nil {
		t.Fatal("regions without file accepted")
	}
	if err := regions(tr, "nosuch", 1024); err == nil {
		t.Fatal("regions accepted unknown file")
	}
	if err := advise(tr); err != nil {
		t.Fatalf("advise: %v", err)
	}
	if err := csv(tr); err != nil {
		t.Fatalf("csv: %v", err)
	}
	if err := replayCmd(tr, 4, 0, false); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

func TestTaxonomySubcommand(t *testing.T) {
	path := writeTestTrace(t)
	tr, _, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := taxonomy(tr); err != nil {
		t.Fatalf("taxonomy: %v", err)
	}
}

func TestLoadAutoDetectsFormats(t *testing.T) {
	tr := pablo.NewTrace()
	tr.Record(pablo.Event{Node: 1, Op: pablo.OpRead, File: "f", Size: 100,
		Start: time.Second, Duration: time.Millisecond, Mode: "M_UNIX"})
	dir := t.TempDir()

	// Binary format.
	binPath := filepath.Join(dir, "t.bin")
	fb, _ := os.Create(binPath)
	if err := pablo.WriteTraceBinary(fb, tr); err != nil {
		t.Fatal(err)
	}
	fb.Close()

	// Generic self-describing format.
	genPath := filepath.Join(dir, "t.gsddf")
	fg, _ := os.Create(genPath)
	w := sddf.NewWriter(fg)
	if err := pablo.WriteSDDF(w, tr); err != nil {
		t.Fatal(err)
	}
	fg.Close()

	for _, path := range []string{binPath, genPath} {
		got, _, err := load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got.Len() != 1 || got.Events()[0] != tr.Events()[0] {
			t.Fatalf("%s: wrong content", path)
		}
	}
}

// writeCacheStream builds a generic SDDF stream carrying both record
// types: tag-1 io-events and tag-2 cache-samples (two I/O nodes over
// four sampling instants, with the client tier active).
func writeCacheStream(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cache.gsddf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := sddf.NewWriter(f)
	tr := pablo.NewTrace()
	tr.Record(pablo.Event{Node: 0, Op: pablo.OpWrite, File: "chk", Size: 4096,
		Start: time.Second, Duration: 3 * time.Millisecond, Mode: "M_ASYNC"})
	if err := pablo.WriteSDDF(w, tr); err != nil {
		t.Fatal(err)
	}
	desc := pablo.CacheSampleDescriptor()
	if err := w.Define(desc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for io := 0; io < 2; io++ {
			rec, err := pablo.CacheSampleRecord(desc, pablo.CacheSample{
				T: time.Duration(i+1) * 10 * time.Second, IONode: io,
				Hits: int64(8 * (i + 1)), Misses: int64(4 * (4 - i)),
				Dirty:      int64((i + 1) * (io + 3)),
				ClientHits: int64(20 * (i + 1)), ClientMisses: 10,
				Recalls: int64(i), StaleAverted: int64(i / 2),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCachePlotsGolden pins the rendered tag-2 plots against golden
// files: the second record stream must stay analyzable end to end.
func TestCachePlotsGolden(t *testing.T) {
	path := writeCacheStream(t)
	tr, samples, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("io-events: %d, want 1", tr.Len())
	}
	if len(samples) != 8 {
		t.Fatalf("cache-samples: %d, want 8", len(samples))
	}
	cases := []struct {
		golden string
		render func(w *strings.Builder) error
	}{
		{"cache_dirty_timeline.golden", func(w *strings.Builder) error {
			return cacheTimeline(w, samples, "cache-dirty")
		}},
		{"cache_hit_ratio_timeline.golden", func(w *strings.Builder) error {
			return cacheTimeline(w, samples, "cache-hit-ratio")
		}},
		{"cache_dirty_cdf.golden", func(w *strings.Builder) error {
			return cacheCDF(w, samples, "cache-dirty")
		}},
		{"cache_hit_ratio_cdf.golden", func(w *strings.Builder) error {
			return cacheCDF(w, samples, "cache-hit-ratio")
		}},
	}
	for _, c := range cases {
		var b strings.Builder
		if err := c.render(&b); err != nil {
			t.Fatalf("%s: %v", c.golden, err)
		}
		gp := filepath.Join("testdata", c.golden)
		if os.Getenv("UPDATE_GOLDEN") != "" {
			if err := os.WriteFile(gp, []byte(b.String()), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(gp)
		if err != nil {
			t.Fatal(err)
		}
		if b.String() != string(want) {
			t.Errorf("%s: rendered plot differs from golden\ngot:\n%s", c.golden, b.String())
		}
	}

	// No tag-2 records → a clear error, not an empty plot.
	if err := cacheTimeline(&strings.Builder{}, nil, "cache-dirty"); err == nil {
		t.Error("cacheTimeline with no samples did not error")
	}
	if err := cacheCDF(&strings.Builder{}, nil, "cache-hit-ratio"); err == nil {
		t.Error("cacheCDF with no samples did not error")
	}
}
