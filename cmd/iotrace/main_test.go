package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"paragonio/internal/pablo"
	"paragonio/internal/sddf"
)

// writeTestTrace builds a small on-disk SDDF trace.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	tr := pablo.NewTrace()
	tr.Record(pablo.Event{Node: 0, Op: pablo.OpOpen, File: "f",
		Duration: time.Millisecond, Mode: "M_UNIX"})
	for i := 0; i < 20; i++ {
		tr.Record(pablo.Event{Node: i % 4, Op: pablo.OpRead, File: "f",
			Offset: int64(i) * 512, Size: 512,
			Start: time.Duration(i) * time.Second, Duration: 2 * time.Millisecond,
			Mode: "M_UNIX"})
	}
	tr.Record(pablo.Event{Node: 0, Op: pablo.OpWrite, File: "g",
		Offset: 0, Size: 1 << 20, Start: time.Minute, Duration: time.Second,
		Mode: "M_ASYNC"})
	path := filepath.Join(t.TempDir(), "t.sddf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := pablo.WriteTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadRoundTrip(t *testing.T) {
	path := writeTestTrace(t)
	tr, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 22 {
		t.Fatalf("loaded %d events", tr.Len())
	}
	if _, err := load(filepath.Join(t.TempDir(), "missing.sddf")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSubcommandsRun(t *testing.T) {
	path := writeTestTrace(t)
	tr, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := summary(tr); err != nil {
		t.Fatalf("summary: %v", err)
	}
	if err := cdf(tr, "read"); err != nil {
		t.Fatalf("cdf: %v", err)
	}
	if err := cdf(tr, "bogus"); err == nil {
		t.Fatal("cdf accepted bogus op")
	}
	if err := timeline(tr, "read"); err != nil {
		t.Fatalf("timeline: %v", err)
	}
	if err := timeline(tr, "seek"); err == nil {
		t.Fatal("timeline with no events should error")
	}
	if err := windows(tr, 10*time.Second); err != nil {
		t.Fatalf("windows: %v", err)
	}
	if err := windows(tr, 0); err == nil {
		t.Fatal("windows accepted zero width")
	}
	if err := regions(tr, "f", 1024); err != nil {
		t.Fatalf("regions: %v", err)
	}
	if err := regions(tr, "", 1024); err == nil {
		t.Fatal("regions without file accepted")
	}
	if err := regions(tr, "nosuch", 1024); err == nil {
		t.Fatal("regions accepted unknown file")
	}
	if err := advise(tr); err != nil {
		t.Fatalf("advise: %v", err)
	}
	if err := csv(tr); err != nil {
		t.Fatalf("csv: %v", err)
	}
	if err := replayCmd(tr, 4, 0, false); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

func TestTaxonomySubcommand(t *testing.T) {
	path := writeTestTrace(t)
	tr, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := taxonomy(tr); err != nil {
		t.Fatalf("taxonomy: %v", err)
	}
}

func TestLoadAutoDetectsFormats(t *testing.T) {
	tr := pablo.NewTrace()
	tr.Record(pablo.Event{Node: 1, Op: pablo.OpRead, File: "f", Size: 100,
		Start: time.Second, Duration: time.Millisecond, Mode: "M_UNIX"})
	dir := t.TempDir()

	// Binary format.
	binPath := filepath.Join(dir, "t.bin")
	fb, _ := os.Create(binPath)
	if err := pablo.WriteTraceBinary(fb, tr); err != nil {
		t.Fatal(err)
	}
	fb.Close()

	// Generic self-describing format.
	genPath := filepath.Join(dir, "t.gsddf")
	fg, _ := os.Create(genPath)
	w := sddf.NewWriter(fg)
	if err := pablo.WriteSDDF(w, tr); err != nil {
		t.Fatal(err)
	}
	fg.Close()

	for _, path := range []string{binPath, genPath} {
		got, err := load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got.Len() != 1 || got.Events()[0] != tr.Events()[0] {
			t.Fatalf("%s: wrong content", path)
		}
	}
}
