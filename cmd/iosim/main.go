// Command iosim runs one application version on the simulated Paragon
// XP/S and prints its I/O characterization: execution time, aggregate
// per-operation shares (the paper's Tables 2/3/5 accounting), request-
// size distributions, and per-phase activity.
//
// Usage:
//
//	iosim -app escat -dataset ethylene -version C [-seed 1] [-trace out.sddf]
//	iosim -app prism -version A
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"paragonio/internal/analysis"
	"paragonio/internal/apps/escat"
	"paragonio/internal/apps/prism"
	"paragonio/internal/core"
	"paragonio/internal/pablo"
	"paragonio/internal/policy"
	"paragonio/internal/report"
)

func main() {
	var (
		app     = flag.String("app", "escat", "application: escat or prism")
		dataset = flag.String("dataset", "ethylene", "escat dataset: ethylene or co")
		version = flag.String("version", "C", "code version (escat: A A2 B1 B2 B3 B C; prism: A B C)")
		seed    = flag.Int64("seed", 1, "workload random seed")
		traceTo = flag.String("trace", "", "write the SDDF event trace to this file")
		advise  = flag.Bool("advise", false, "run the access-pattern advisor on the trace")
	)
	flag.Parse()
	if err := run(*app, *dataset, *version, *seed, *traceTo, *advise); err != nil {
		fmt.Fprintln(os.Stderr, "iosim:", err)
		os.Exit(1)
	}
}

func run(app, dataset, version string, seed int64, traceTo string, advise bool) error {
	var res *core.Result
	var err error
	switch strings.ToLower(app) {
	case "escat":
		var ds escat.Dataset
		switch strings.ToLower(dataset) {
		case "ethylene":
			ds = escat.Ethylene()
		case "co", "carbon-monoxide":
			ds = escat.CarbonMonoxide()
		default:
			return fmt.Errorf("unknown escat dataset %q", dataset)
		}
		v, ok := escatVersion(version, dataset)
		if !ok {
			return fmt.Errorf("unknown escat version %q", version)
		}
		res, err = escat.Run(ds, v, seed)
	case "prism":
		v, ok := prismVersion(version)
		if !ok {
			return fmt.Errorf("unknown prism version %q", version)
		}
		res, err = prism.Run(prism.TestProblem(), v, seed)
	default:
		return fmt.Errorf("unknown app %q", app)
	}
	if err != nil {
		return err
	}
	printResult(res)
	if advise {
		fmt.Println()
		if err := policy.WriteAdvice(os.Stdout, policy.Classify(res.Trace),
			policy.Options{}, policy.CacheOptions{}); err != nil {
			return err
		}
	}
	if traceTo != "" {
		f, err := os.Create(traceTo)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pablo.WriteTrace(f, res.Trace); err != nil {
			return err
		}
		fmt.Printf("\ntrace: %d events written to %s\n", res.Trace.Len(), traceTo)
	}
	return nil
}

func escatVersion(id, dataset string) (escat.Version, bool) {
	if strings.EqualFold(dataset, "co") || strings.EqualFold(dataset, "carbon-monoxide") {
		if strings.EqualFold(id, "C") {
			return escat.VersionCCarbonMonoxide(), true
		}
	}
	for _, v := range escat.Progressions() {
		if strings.EqualFold(v.ID, id) {
			return v, true
		}
	}
	switch strings.ToUpper(id) {
	case "B":
		return escat.VersionB(), true
	case "C":
		return escat.VersionC(), true
	}
	return escat.Version{}, false
}

func prismVersion(id string) (prism.Version, bool) {
	for _, v := range prism.PaperVersions() {
		if strings.EqualFold(v.ID, id) {
			return v, true
		}
	}
	return prism.Version{}, false
}

func printResult(res *core.Result) {
	fmt.Printf("%s version %s on %d nodes\n", res.App, res.Version, res.Nodes)
	fmt.Printf("execution time: %.1f s (virtual)\n", res.Exec.Seconds())
	fmt.Printf("summed I/O time: %.1f s across nodes (%.2f%% of node-time)\n\n",
		res.IOTime().Seconds(), res.IOPercent())

	rows := [][]string{}
	for _, s := range analysis.IOTimeShares(res.Trace) {
		rows = append(rows, []string{
			s.Op.String(),
			fmt.Sprintf("%.2f", s.Percent),
			fmt.Sprintf("%d", s.Count),
			fmt.Sprintf("%.1f", s.Total.Seconds()),
		})
	}
	report.Table(os.Stdout, "Aggregate I/O time by operation",
		[]string{"Operation", "% of I/O time", "count", "total (s)"}, rows)

	fmt.Println()
	reads := analysis.SizeCDFOf(res.Trace, pablo.OpRead)
	writes := analysis.SizeCDFOf(res.Trace, pablo.OpWrite)
	fmt.Printf("reads  <= 2KB: %5.1f%% of requests, %5.1f%% of data\n",
		100*reads.FracOpsBelow(2048), 100*reads.FracDataBelow(2048))
	fmt.Printf("writes <= 2KB: %5.1f%% of requests, %5.1f%% of data\n",
		100*writes.FracOpsBelow(2048), 100*writes.FracDataBelow(2048))

	fmt.Println()
	rows = rows[:0]
	for _, ph := range res.Phases {
		sub := analysis.SliceByPhase(res.Trace, ph)
		agg := pablo.AggregateByOp(sub)
		rows = append(rows, []string{
			ph.Name,
			fmt.Sprintf("%.0f-%.0f s", ph.Start.Seconds(), ph.End.Seconds()),
			fmt.Sprintf("%d", agg.TotalCount()),
			fmt.Sprintf("%.1f", agg.TotalDuration().Seconds()),
			fmt.Sprintf("%.1f MB", float64(agg.BytesRead)/1e6),
			fmt.Sprintf("%.1f MB", float64(agg.BytesWritten)/1e6),
		})
	}
	report.Table(os.Stdout, "Per-phase I/O",
		[]string{"Phase", "window", "ops", "I/O time (s)", "read", "written"}, rows)

	b := analysis.IONodeBalance(res.IONodes)
	fmt.Printf("\nI/O node balance: %d nodes, %.1f MB moved, hot-spot factor %.2f, bytes CV %.2f, %d idle\n\n",
		b.IONodes, float64(b.TotalBytes)/1e6, b.MaxOverMean, b.BytesCV, b.Idle)
	labels := make([]string, len(res.IONodes))
	values := make([]float64, len(res.IONodes))
	for i, s := range res.IONodes {
		labels[i] = fmt.Sprintf("io%02d", i)
		values[i] = float64(s.BytesMoved) / 1e6
	}
	report.HBar(os.Stdout, "Per-I/O-node data moved (MB)", labels, values, 40)
}
