package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestEscatVersionLookup(t *testing.T) {
	cases := []struct {
		id, dataset string
		ok          bool
	}{
		{"A", "ethylene", true},
		{"a2", "ethylene", true},
		{"B1", "ethylene", true},
		{"b", "ethylene", true},
		{"C", "ethylene", true},
		{"C", "co", true},
		{"Z", "ethylene", false},
	}
	for _, tc := range cases {
		v, ok := escatVersion(tc.id, tc.dataset)
		if ok != tc.ok {
			t.Fatalf("escatVersion(%q, %q) ok = %v", tc.id, tc.dataset, ok)
		}
		if ok && tc.dataset == "co" && !v.RestartStaged {
			t.Fatal("carbon-monoxide C should be the staged-restart build")
		}
	}
}

func TestPrismVersionLookup(t *testing.T) {
	for _, id := range []string{"A", "b", "C"} {
		if _, ok := prismVersion(id); !ok {
			t.Fatalf("prismVersion(%q) not found", id)
		}
	}
	if _, ok := prismVersion("D"); ok {
		t.Fatal("prismVersion accepted junk")
	}
}

func TestRunRejectsUnknownInputs(t *testing.T) {
	if err := run("nosuch", "ethylene", "A", 1, "", false); err == nil {
		t.Fatal("unknown app accepted")
	}
	if err := run("escat", "nosuch", "A", 1, "", false); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := run("escat", "ethylene", "Q", 1, "", false); err == nil {
		t.Fatal("unknown version accepted")
	}
	if err := run("prism", "", "Q", 1, "", false); err == nil {
		t.Fatal("unknown prism version accepted")
	}
}

func TestRunEndToEndWritesTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size workload")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.sddf")
	if err := run("prism", "", "A", 1, out, true); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("empty trace file")
	}
}
