# paragonio — reproduction of Smirni et al., HPDC 1996.
GO ?= go

.PHONY: all build test test-short vet vet-race vet-race-clientcache vet-race-scaled vet-race-faults vet-race-logtier fmt bench bench-smoke bench-json bench-diff tables experiments docs-verify service-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# Race-check the concurrent pieces: the sharded kernel (the randomized
# sharded-vs-oracle property test and the sharded golden digests both
# live in these packages), the parallel suite runner, the kernel
# primitives they drive, and the iosimd daemon (fair-share admission,
# sweep fan-out, flight coalescing, warm-start cache).
vet-race:
	$(GO) vet ./...
	$(GO) test -race ./internal/experiments/ ./internal/sim/ ./internal/server/

# Race-check the client cache tier: the lease-coherence property test
# (randomized sharing schedules against the version oracle), the
# client-tier unit tests, and the client-on golden digests at
# 1/4/16 shards.
vet-race-clientcache:
	$(GO) vet ./...
	$(GO) test -race ./internal/cache/ ./internal/pfs/
	$(GO) test -race -run 'ClientCache|ClientVariants' ./internal/experiments/

# Race-check the fault plane: the per-kind degraded golden digests at
# 1/4/16 shards, the empty-plan healthy-equivalence property, and the
# pfs fault-injection behavior tests — faults arm events across the
# sharded kernel's lanes, so they run under the race detector.
vet-race-faults:
	$(GO) vet ./...
	$(GO) test -race ./internal/faults/
	$(GO) test -race -run Fault ./internal/pfs/ ./internal/experiments/ ./internal/server/

# Race-check the log tier: the crash-replay property test (randomized
# writer/drain/crash schedules against the observer-built consistent-cut
# oracle), the log-tier unit tests, and the log-on healthy + degraded
# golden digests at 1/4/16 shards.
vet-race-logtier:
	$(GO) vet ./...
	$(GO) test -race ./internal/cache/
	$(GO) test -race -run 'LogTier|LogVariants' ./internal/experiments/

# Race-check the window protocol on a scaled machine: a 32x32 mesh with
# 64 I/O lanes — four times the paper topology — at auto/wide/narrow
# shard settings must stay bit-identical under the race detector.
vet-race-scaled:
	$(GO) vet ./...
	$(GO) test -race -run TestScaledMeshShardedDigest .

fmt:
	gofmt -l .

# One regeneration of every paper artifact benchmark and ablation.
bench:
	$(GO) test -run NONE -bench=. -benchmem -benchtime=1x .

# Single-iteration pass over every benchmark — a fast compile-and-run
# sanity check that the benchmark harness itself still works.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Machine-readable perf trajectory: run the kernel/PFS/suite benchmarks
# once and emit BENCH_<date>.json (ns/op, allocs/op, custom metrics,
# suite wall clock). Compare files across commits to track the trend.
bench-json:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=1x ./... | tee bench.out
	$(GO) run ./cmd/benchjson -o BENCH_$$(date +%Y-%m-%d).json < bench.out
	@rm -f bench.out

# Compare a fresh single-iteration benchmark pass against the newest
# committed BENCH_<date>.json. Exits nonzero past the regression
# threshold; -benchtime=1x samples are noisy, so CI gates with a
# generous -threshold 1.0 -floor 100000 (fail only when a ≥100µs
# benchmark doubles; µs-scale 1x samples are timer noise).
bench-diff:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=1x ./... | $(GO) run ./cmd/benchjson -o bench-new.json
	$(GO) run ./cmd/benchjson -diff $$(ls BENCH_*.json | sort | tail -1) bench-new.json
	@rm -f bench-new.json

# Regenerate the paper's tables and figures to stdout (and artifacts/).
tables:
	$(GO) run ./cmd/iotables -out artifacts

experiments:
	$(GO) run ./cmd/iotables -summary

# Run every shell command documented in README.md, docs/ADVISOR.md,
# docs/SERVICE.md, and docs/TIERS.md code fences, so the quickstarts
# cannot rot.
docs-verify:
	bash scripts/docs-verify.sh

# Build the iosimd daemon, boot it on an ephemeral port, and walk the
# service contract end to end: health, simulate (pinned to the golden
# digest), cache-hit re-request, batched sweep (repeated grid dedups
# fully), fault-injected and log-tier runs (pinned to their own golden
# digests), kill-and-restart warm start, metrics scrape.
service-smoke:
	bash scripts/service-smoke.sh

clean:
	rm -rf artifacts
