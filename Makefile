# paragonio — reproduction of Smirni et al., HPDC 1996.
GO ?= go

.PHONY: all build test test-short vet fmt bench tables experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# One regeneration of every paper artifact benchmark and ablation.
bench:
	$(GO) test -run NONE -bench=. -benchmem -benchtime=1x .

# Regenerate the paper's tables and figures to stdout (and artifacts/).
tables:
	$(GO) run ./cmd/iotables -out artifacts

experiments:
	$(GO) run ./cmd/iotables -summary

clean:
	rm -rf artifacts
