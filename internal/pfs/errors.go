package pfs

import "errors"

// Error values returned by file system operations.
var (
	// ErrClosed reports an operation on a closed handle.
	ErrClosed = errors.New("pfs: handle is closed")
	// ErrNotExist reports an open of a file that does not exist when
	// opened read-only semantics are expected (the simulator creates
	// files on any open for writing; apps preload inputs).
	ErrNotExist = errors.New("pfs: file does not exist")
	// ErrBadSize reports a non-positive request size.
	ErrBadSize = errors.New("pfs: request size must be positive")
	// ErrBadOffset reports a negative seek target.
	ErrBadOffset = errors.New("pfs: offset must be non-negative")
	// ErrRecordSize reports an M_RECORD request whose size differs from
	// the file's established record size.
	ErrRecordSize = errors.New("pfs: M_RECORD request size must match the record size")
	// ErrNotCollective reports a collective-mode operation on a handle
	// that was not opened by a group (gopen).
	ErrNotCollective = errors.New("pfs: collective mode requires a group open")
	// ErrCollectiveMismatch reports group members disagreeing on the
	// parameters of a collective operation.
	ErrCollectiveMismatch = errors.New("pfs: collective operation parameters differ across nodes")
	// ErrSeekCollective reports a seek on a shared-pointer collective
	// handle, which PFS does not support.
	ErrSeekCollective = errors.New("pfs: cannot seek a shared-pointer collective file")
	// ErrNotMember reports a node operating on a group it is not part of.
	ErrNotMember = errors.New("pfs: node is not a member of the group")
)
