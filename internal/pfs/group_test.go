package pfs

import (
	"testing"

	"paragonio/internal/pablo"
	"paragonio/internal/sim"
)

func TestNewGroupValidation(t *testing.T) {
	r := newRig(t)
	if _, err := r.fs.NewGroup(nil); err == nil {
		t.Fatal("empty group accepted")
	}
	if _, err := r.fs.NewGroup([]int{1, 2, 1}); err == nil {
		t.Fatal("duplicate node accepted")
	}
	g, err := r.fs.NewGroup([]int{5, 3, 9})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 {
		t.Fatalf("N = %d", g.N())
	}
	nodes := g.Nodes()
	if nodes[0] != 3 || nodes[1] != 5 || nodes[2] != 9 {
		t.Fatalf("Nodes = %v, want sorted", nodes)
	}
	if g.Rank(5) != 1 || g.Rank(3) != 0 || g.Rank(9) != 2 {
		t.Fatal("ranks wrong")
	}
	if g.Rank(42) != -1 {
		t.Fatal("non-member rank should be -1")
	}
}

// spawnGroup runs body once per member node, as separate processes.
func spawnGroup(r *testRig, g *Group, body func(p *sim.Proc, node int)) {
	for _, node := range g.Nodes() {
		node := node
		r.k.Spawn("node", func(p *sim.Proc) { body(p, node) })
	}
}

func TestGopenPaysMetadataOnce(t *testing.T) {
	r := newRig(t)
	g, _ := r.fs.NewGroup([]int{0, 1, 2, 3})
	spawnGroup(r, g, func(p *sim.Proc, node int) {
		h, err := g.Gopen(p, node, "f", MGlobal)
		if err != nil {
			t.Error(err)
			return
		}
		if h.Mode() != MGlobal {
			t.Errorf("mode = %v", h.Mode())
		}
	})
	r.run(t)
	if got := r.fs.MetadataStats().Acquisitions; got != 1 {
		t.Fatalf("metadata ops = %d, want 1 (collective)", got)
	}
	if got := len(r.tr.ByOp(pablo.OpGopen)); got != 4 {
		t.Fatalf("gopen events = %d, want 4 (one per node)", got)
	}
}

func TestGopenNonMemberRejected(t *testing.T) {
	r := newRig(t)
	g, _ := r.fs.NewGroup([]int{0, 1})
	var err error
	r.k.Spawn("outsider", func(p *sim.Proc) {
		_, err = g.Gopen(p, 7, "f", MGlobal)
	})
	spawnGroup(r, g, func(p *sim.Proc, node int) {
		g.Gopen(p, node, "f", MGlobal)
	})
	r.run(t)
	if err != ErrNotMember {
		t.Fatalf("outsider err = %v", err)
	}
}

func TestMGlobalSingleDiskIO(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("init", 1<<20)
	got := make([]int64, 8)
	g, _ := r.fs.NewGroup([]int{0, 1, 2, 3, 4, 5, 6, 7})
	spawnGroup(r, g, func(p *sim.Proc, node int) {
		h, _ := g.Gopen(p, node, "init", MGlobal)
		h.SetBuffering(false)
		n, err := h.Read(p, 4096)
		if err != nil {
			t.Error(err)
		}
		got[node] = n
	})
	r.run(t)
	for node, n := range got {
		if n != 4096 {
			t.Fatalf("node %d read %d", node, n)
		}
	}
	var reqs uint64
	for _, s := range r.fs.IONodeStats() {
		reqs += s.Requests
	}
	if reqs != 1 {
		t.Fatalf("disk requests = %d, want 1 (data read once)", reqs)
	}
	reads := r.tr.ByOp(pablo.OpRead)
	if len(reads) != 8 {
		t.Fatalf("read events = %d, want 8", len(reads))
	}
	for _, ev := range reads {
		if ev.Offset != 0 || ev.Size != 4096 || ev.Mode != "M_GLOBAL" {
			t.Fatalf("bad global read event %+v", ev)
		}
	}
}

func TestMGlobalSharedPointerAdvancesOnce(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("init", 1<<20)
	offsets := make(map[int64]bool)
	g, _ := r.fs.NewGroup([]int{0, 1, 2})
	spawnGroup(r, g, func(p *sim.Proc, node int) {
		h, _ := g.Gopen(p, node, "init", MGlobal)
		for i := 0; i < 3; i++ {
			h.Read(p, 100)
		}
	})
	r.run(t)
	for _, ev := range r.tr.ByOp(pablo.OpRead) {
		offsets[ev.Offset] = true
	}
	// Three rounds: offsets 0, 100, 200 — each seen by all nodes.
	if len(offsets) != 3 || !offsets[0] || !offsets[100] || !offsets[200] {
		t.Fatalf("global read offsets = %v", offsets)
	}
}

func TestMGlobalSizeMismatchRejected(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("init", 1<<20)
	errs := make(map[int]error)
	g, _ := r.fs.NewGroup([]int{0, 1})
	spawnGroup(r, g, func(p *sim.Proc, node int) {
		h, _ := g.Gopen(p, node, "init", MGlobal)
		_, err := h.Read(p, int64(100+node)) // sizes differ
		errs[node] = err
	})
	r.run(t)
	for node, err := range errs {
		if err != ErrCollectiveMismatch {
			t.Fatalf("node %d err = %v", node, err)
		}
	}
}

func TestMRecordDisjointNodeOrder(t *testing.T) {
	r := newRig(t)
	const rec = 65536
	r.fs.CreateFile("quad", int64(rec)*8)
	g, _ := r.fs.NewGroup([]int{0, 1, 2, 3})
	spawnGroup(r, g, func(p *sim.Proc, node int) {
		h, _ := g.Gopen(p, node, "quad", MRecord)
		h.SetBuffering(false)
		for round := 0; round < 2; round++ {
			n, err := h.Read(p, rec)
			if err != nil {
				t.Error(err)
			}
			if n != rec {
				t.Errorf("node %d round %d read %d", node, round, n)
			}
		}
	})
	r.run(t)
	// Offsets must tile the file: node i round k at (k*4+i)*rec.
	seen := make(map[int64]int)
	for _, ev := range r.tr.ByOp(pablo.OpRead) {
		seen[ev.Offset]++
		if ev.Offset%rec != 0 {
			t.Fatalf("unaligned record offset %d", ev.Offset)
		}
	}
	if len(seen) != 8 {
		t.Fatalf("distinct record offsets = %d, want 8", len(seen))
	}
	for off, count := range seen {
		if count != 1 {
			t.Fatalf("offset %d accessed %d times", off, count)
		}
	}
}

func TestMRecordSizeMismatchRejected(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("quad", 1<<20)
	errs := make(map[int]error)
	g, _ := r.fs.NewGroup([]int{0, 1})
	spawnGroup(r, g, func(p *sim.Proc, node int) {
		h, _ := g.Gopen(p, node, "quad", MRecord)
		if _, err := h.Read(p, 1024); err != nil {
			t.Error(err)
		}
		_, err := h.Read(p, int64(1024*(node+1))) // node 1 changes size
		errs[node] = err
	})
	r.run(t)
	if errs[0] != ErrCollectiveMismatch && errs[0] != ErrRecordSize {
		t.Fatalf("node 0 err = %v", errs[0])
	}
	if errs[1] != ErrCollectiveMismatch && errs[1] != ErrRecordSize {
		t.Fatalf("node 1 err = %v", errs[1])
	}
}

func TestMRecordWriteExtendsFile(t *testing.T) {
	r := newRig(t)
	const rec = 4096
	g, _ := r.fs.NewGroup([]int{0, 1, 2, 3})
	spawnGroup(r, g, func(p *sim.Proc, node int) {
		h, _ := g.Gopen(p, node, "out", MRecord)
		for round := 0; round < 3; round++ {
			if _, err := h.Write(p, rec); err != nil {
				t.Error(err)
			}
		}
	})
	r.run(t)
	if got := r.fs.FileSize("out"); got != rec*12 {
		t.Fatalf("file size = %d, want %d", got, rec*12)
	}
}

func TestMSyncVariableSizesPrefixOffsets(t *testing.T) {
	r := newRig(t)
	g, _ := r.fs.NewGroup([]int{0, 1, 2})
	sizes := []int64{100, 250, 50}
	spawnGroup(r, g, func(p *sim.Proc, node int) {
		h, _ := g.Gopen(p, node, "out", MSync)
		if _, err := h.Write(p, sizes[node]); err != nil {
			t.Error(err)
		}
		if _, err := h.Write(p, sizes[node]); err != nil {
			t.Error(err)
		}
	})
	r.run(t)
	writes := r.tr.ByOp(pablo.OpWrite)
	if len(writes) != 6 {
		t.Fatalf("write events = %d", len(writes))
	}
	offByNodeRound := map[[2]int]int64{}
	roundOf := map[int]int{}
	for _, ev := range writes {
		offByNodeRound[[2]int{ev.Node, roundOf[ev.Node]}] = ev.Offset
		roundOf[ev.Node]++
	}
	// Round 0: offsets 0, 100, 350; round 1: 400, 500, 750.
	want := map[[2]int]int64{
		{0, 0}: 0, {1, 0}: 100, {2, 0}: 350,
		{0, 1}: 400, {1, 1}: 500, {2, 1}: 750,
	}
	for k, w := range want {
		if offByNodeRound[k] != w {
			t.Fatalf("node %d round %d offset = %d, want %d (all: %v)",
				k[0], k[1], offByNodeRound[k], w, offByNodeRound)
		}
	}
	if got := r.fs.FileSize("out"); got != 800 {
		t.Fatalf("file size = %d, want 800", got)
	}
}

func TestCollectiveSetIOModeBindsGroup(t *testing.T) {
	// The PRISM version B pattern: plain open by all nodes, then a
	// collective setiomode to M_GLOBAL.
	r := newRig(t)
	r.fs.CreateFile("params", 1<<20)
	g, _ := r.fs.NewGroup([]int{0, 1, 2, 3})
	reads := make([]int64, 4)
	spawnGroup(r, g, func(p *sim.Proc, node int) {
		h, err := r.fs.Open(p, node, "params", MUnix)
		if err != nil {
			t.Error(err)
			return
		}
		if err := g.SetIOMode(p, h, MGlobal); err != nil {
			t.Error(err)
			return
		}
		n, err := h.Read(p, 512)
		if err != nil {
			t.Error(err)
		}
		reads[node] = n
	})
	r.run(t)
	for node, n := range reads {
		if n != 512 {
			t.Fatalf("node %d read %d after collective iomode", node, n)
		}
	}
	if got := len(r.tr.ByOp(pablo.OpIOMode)); got != 4 {
		t.Fatalf("iomode events = %d, want 4", got)
	}
	// open x4 + one leader-paid setiomode = 5 metadata ops.
	if got := r.fs.MetadataStats().Acquisitions; got != 5 {
		t.Fatalf("metadata ops = %d, want 5", got)
	}
}

func TestGopenDurationIncludesSkew(t *testing.T) {
	// A straggler arriving 1s late must inflate everyone's gopen
	// duration — collective operations charge synchronization time,
	// which is how gopen/iomode become visible in the optimized tables.
	r := newRig(t)
	g, _ := r.fs.NewGroup([]int{0, 1})
	for _, node := range g.Nodes() {
		node := node
		r.k.Spawn("node", func(p *sim.Proc) {
			if node == 1 {
				p.Wait(1e9) // 1 s straggler
			}
			g.Gopen(p, node, "f", MGlobal)
		})
	}
	r.run(t)
	for _, ev := range r.tr.ByOp(pablo.OpGopen) {
		if ev.Node == 0 && ev.Duration < 1e9 {
			t.Fatalf("node 0 gopen duration %v does not include skew", ev.Duration)
		}
	}
}
