package pfs

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"paragonio/internal/cache"
	"paragonio/internal/disk"
	"paragonio/internal/faults"
	"paragonio/internal/mesh"
	"paragonio/internal/pablo"
	"paragonio/internal/sim"
)

// DefaultStripeUnit is the PFS default stripe unit (64 KB), the value the
// Caltech machine used for all the paper's experiments.
const DefaultStripeUnit int64 = 64 * 1024

// Config describes a file system instance.
type Config struct {
	StripeUnit int64       // bytes per stripe unit (default 64 KB)
	IONodes    int         // number of I/O nodes (default 16)
	Disk       disk.Params // per-I/O-node RAID-3 array
	Costs      Costs       // software-path costs
	Mesh       *mesh.Mesh  // interconnect model (required)
	BufSize    int64       // client read-buffer size (default = StripeUnit)
	// Tiers configures the what-if storage hierarchy: Tiers.IONode
	// installs a buffer cache on every I/O node, Tiers.Client a
	// lease-coherent cache on every compute node, and Tiers.Log a
	// per-compute-node log-structured write buffer that drains to the
	// PFS in the background. Every tier defaults to nil — Intel PFS had
	// none of them, so all canonical paper runs leave them off. Zero
	// fields are defaulted at New; see cache.Tiers.WithDefaults.
	Tiers cache.Tiers
	// Faults is the injected fault plan: degraded arrays, node crashes,
	// stragglers, flapping clients, armed as scheduled DES events before
	// the run starts. The zero value is the healthy machine.
	Faults faults.Plan
}

// DefaultConfig returns the paper's machine: 16 I/O nodes, 64 KB stripe
// unit, default RAID-3 arrays, default costs, over the given mesh.
func DefaultConfig(m *mesh.Mesh) Config {
	return Config{
		StripeUnit: DefaultStripeUnit,
		IONodes:    16,
		Disk:       disk.DefaultParams(),
		Costs:      DefaultCosts(),
		Mesh:       m,
	}
}

// ioNode is one I/O service node: a FIFO server fronting a RAID-3 array,
// optionally through a buffer cache. Each I/O node is pinned to a shard
// lane (sh): its service events — mesh arrival, FIFO grant, disk pricing,
// cache flushes — are scheduled through that lane, so on a sharded kernel
// distinct I/O nodes' same-instant events execute in parallel.
type ioNode struct {
	idx   int
	sh    *sim.Shard
	res   *sim.Resource
	park  string // precomputed Suspend reason (avoids a concat per request)
	array *disk.Array
	cache *cache.Cache // nil when caching is disabled
}

// service prices chunk service at the array — or through the cache when
// one is installed. Must run while res is held (process hold or UseFn
// grant), so cache side effects (miss fills, forced flushes) extend the
// current hold exactly like uncached head movement.
func (n *ioNode) service(name string, c chunk, write bool) time.Duration {
	if n.cache != nil {
		return n.cache.Access(name, c.off, c.size, write)
	}
	return n.array.Service(name, c.off, c.size)
}

// file is the server-side state of one PFS file.
type file struct {
	name     string
	size     int64
	base     int           // first stripe's I/O node (round-robin by name hash)
	token    *sim.Resource // atomicity token
	shared   int64         // shared file pointer (M_GLOBAL/M_SYNC/M_LOG)
	mode     Mode          // current file access mode
	recSize  int64         // established M_RECORD record size (0 = unset)
	refcount int
}

// FileSystem simulates one PFS instance. All methods taking a *sim.Proc
// must be called from process context; the simulation kernel's handoff
// protocol makes the file system effectively single-threaded, so no
// internal locking is needed.
type FileSystem struct {
	k      *sim.Kernel
	cfg    Config
	meta   *sim.Resource
	ios    []*ioNode
	client *cache.ClientTier // nil when the client tier is disabled
	log    *cache.LogTier    // nil when the log tier is disabled
	files  map[string]*file
	tracer pablo.Tracer

	// Fault-plane routing state, owned by the sequential plane (request
	// issue and mesh pricing both happen in process context, never on an
	// I/O lane). dead marks crashed I/O nodes; routeTo walks the ring to
	// the next survivor. meshSlow multiplies mesh transfers addressed to
	// a straggler node (>= 1, so cross-LP delays stay >= the lookahead).
	// Both are mutated only by lane-0 fault events.
	dead     []bool
	meshSlow []float64
	rerouted uint64 // requests redirected away from a crashed node
}

// New creates a file system on the given kernel. tracer receives one
// event per I/O operation; use pablo.Discard for untraced runs.
func New(k *sim.Kernel, cfg Config, tracer pablo.Tracer) (*FileSystem, error) {
	if cfg.StripeUnit == 0 {
		cfg.StripeUnit = DefaultStripeUnit
	}
	if cfg.StripeUnit < 0 {
		return nil, fmt.Errorf("pfs: negative stripe unit %d", cfg.StripeUnit)
	}
	if cfg.IONodes <= 0 {
		return nil, fmt.Errorf("pfs: need at least one I/O node, got %d", cfg.IONodes)
	}
	if cfg.Mesh == nil {
		return nil, fmt.Errorf("pfs: mesh model is required")
	}
	if err := cfg.Costs.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Disk.Validate(); err != nil {
		return nil, err
	}
	if cfg.BufSize == 0 {
		cfg.BufSize = cfg.StripeUnit
	}
	if cfg.BufSize < 0 {
		return nil, fmt.Errorf("pfs: negative buffer size %d", cfg.BufSize)
	}
	if err := cfg.Faults.Validate(cfg.IONodes); err != nil {
		return nil, err
	}
	tiers, err := cfg.Tiers.WithDefaults(cfg.StripeUnit, cfg.Disk)
	if err != nil {
		return nil, err
	}
	cfg.Tiers = tiers
	if tracer == nil {
		tracer = pablo.Discard
	}
	fs := &FileSystem{
		k:      k,
		cfg:    cfg,
		meta:   sim.NewResource(k, "pfs-metadata", 1),
		files:  make(map[string]*file),
		tracer: tracer,
	}
	for i := 0; i < cfg.IONodes; i++ {
		sh := k.IOLane(i)
		n := &ioNode{
			idx:   i,
			sh:    sh,
			res:   sim.NewResourceOn(sh, fmt.Sprintf("ionode-%d", i), 1),
			array: disk.MustNewArray(cfg.Disk),
		}
		n.park = "pfs: i/o node " + n.res.Name()
		if cfg.Tiers.IONode != nil {
			c, err := cache.New(k, n.res, n.array, *cfg.Tiers.IONode)
			if err != nil {
				return nil, err
			}
			n.cache = c
		}
		fs.ios = append(fs.ios, n)
	}
	if cfg.Tiers.Client != nil {
		ct, err := cache.NewClientTier(k, cfg.Mesh, *cfg.Tiers.Client)
		if err != nil {
			return nil, err
		}
		fs.client = ct
	}
	if cfg.Tiers.Log != nil {
		lt, err := cache.NewLogTier(k, *cfg.Tiers.Log)
		if err != nil {
			return nil, err
		}
		lt.SetDrainer(fs.drainLog)
		fs.log = lt
	}
	fs.dead = make([]bool, cfg.IONodes)
	fs.meshSlow = make([]float64, cfg.IONodes)
	for i := range fs.meshSlow {
		fs.meshSlow[i] = 1
	}
	if err := fs.armFaults(); err != nil {
		return nil, err
	}
	return fs, nil
}

// armFaults turns the configured fault plan into scheduled kernel events.
// It runs before any workload process is spawned and walks the plan in
// order, so the events' sequence numbers are allocated identically at
// every shard count. Lane ownership decides where each event is armed:
// array state (degraded mode, disk slow factor) is flipped by events on
// the owning I/O node's lane; routing tables, mesh multipliers, and
// client-tier recalls are flipped by lane-0 events, because they are read
// in process context on the sequential plane. Fault events mutate state
// only — they emit no trace events — so an empty plan leaves the event
// stream, and hence the golden digest, bit-identical to a healthy run.
func (fs *FileSystem) armFaults() error {
	for _, f := range fs.cfg.Faults.Faults {
		f := f
		switch f.Kind {
		case faults.DiskFail:
			n := fs.ios[f.IONode]
			n.sh.After(sim.Time(f.At), func() { n.array.SetDegraded(true) })
			if f.Until != 0 {
				n.sh.After(sim.Time(f.Until), func() { n.array.SetDegraded(false) })
			}
		case faults.NodeCrash:
			io := f.IONode
			fs.k.After(sim.Time(f.At), func() { fs.dead[io] = true })
			if f.Until != 0 {
				fs.k.After(sim.Time(f.Until), func() { fs.dead[io] = false })
			}
		case faults.Straggler:
			n := fs.ios[f.IONode]
			io, factor := f.IONode, f.Factor
			n.sh.After(sim.Time(f.At), func() { n.array.SetSlow(factor) })
			fs.k.After(sim.Time(f.At), func() { fs.meshSlow[io] = factor })
			if f.Until != 0 {
				n.sh.After(sim.Time(f.Until), func() { n.array.SetSlow(1) })
				fs.k.After(sim.Time(f.Until), func() { fs.meshSlow[io] = 1 })
			}
		case faults.ClientFlap:
			if fs.client == nil {
				return fmt.Errorf("pfs: client-flap fault requires the client cache tier (Tiers.Client)")
			}
			node := f.Node
			for j := 0; j < f.FlapCount(); j++ {
				fs.k.After(sim.Time(f.At)+sim.Time(j)*sim.Time(f.Period), func() { fs.client.Flap(node) })
			}
		}
	}
	return nil
}

// routeTo resolves a logical I/O node to the physical node serving its
// stripes right now: the node itself while alive, else the next survivor
// clockwise on the ring (the failover protocol). Plan validation
// guarantees a survivor exists. Called in process context only.
func (fs *FileSystem) routeTo(io int) int {
	if !fs.dead[io] {
		return io
	}
	fs.rerouted++
	for d := 1; d < len(fs.ios); d++ {
		t := (io + d) % len(fs.ios)
		if !fs.dead[t] {
			return t
		}
	}
	panic("pfs: no surviving I/O node (plan validation should prevent this)")
}

// meshCost prices the payload transfer from a compute node to a physical
// I/O node, stretched by the straggler multiplier when one is active.
// Factors are >= 1, so the stretched delay still satisfies the window
// protocol's cross-LP lookahead bound. Called in process context only.
func (fs *FileSystem) meshCost(node, io int, bytes int64) time.Duration {
	d := fs.cfg.Mesh.TransferToIONode(node, io, bytes)
	if s := fs.meshSlow[io]; s > 1 {
		d = time.Duration(float64(d) * s)
	}
	return d
}

// Rerouted returns how many requests the failover path redirected away
// from a crashed I/O node.
func (fs *FileSystem) Rerouted() uint64 { return fs.rerouted }

// Config returns the file system's configuration.
func (fs *FileSystem) Config() Config { return fs.cfg }

// Kernel returns the kernel the file system runs on.
func (fs *FileSystem) Kernel() *sim.Kernel { return fs.k }

// CreateFile installs a file of the given size without generating events
// or consuming virtual time — used to preload application input files.
func (fs *FileSystem) CreateFile(name string, size int64) {
	f := fs.lookup(name, true)
	if size > f.size {
		f.size = size
	}
}

// Exists reports whether the named file exists.
func (fs *FileSystem) Exists(name string) bool {
	_, ok := fs.files[name]
	return ok
}

// FileSize returns the current size of the named file (0 if absent).
func (fs *FileSystem) FileSize(name string) int64 {
	if f, ok := fs.files[name]; ok {
		return f.size
	}
	return 0
}

// FileNames returns the names of all files, sorted.
func (fs *FileSystem) FileNames() []string {
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IONodeStats returns per-I/O-node array statistics, indexed by I/O node.
func (fs *FileSystem) IONodeStats() []disk.Stats {
	out := make([]disk.Stats, len(fs.ios))
	for i, io := range fs.ios {
		out[i] = io.array.Stats()
	}
	return out
}

// MetadataStats returns queueing statistics of the metadata service.
func (fs *FileSystem) MetadataStats() sim.ResourceStats { return fs.meta.Stats() }

// Caching reports whether the I/O-node buffer cache is enabled.
func (fs *FileSystem) Caching() bool { return fs.cfg.Tiers.IONode != nil }

// CacheStats returns per-I/O-node cache statistics, indexed by I/O node,
// or nil when caching is disabled.
func (fs *FileSystem) CacheStats() []cache.Stats {
	if fs.cfg.Tiers.IONode == nil {
		return nil
	}
	out := make([]cache.Stats, len(fs.ios))
	for i, io := range fs.ios {
		out[i] = io.cache.Stats()
	}
	return out
}

// ClientCaching reports whether the client cache tier is enabled.
func (fs *FileSystem) ClientCaching() bool { return fs.client != nil }

// ClientTier returns the client cache tier, or nil when disabled. Tests
// use it to install the coherence oracle's observer.
func (fs *FileSystem) ClientTier() *cache.ClientTier { return fs.client }

// ClientStats returns the client tier's aggregate statistics (the zero
// value when the tier is disabled).
func (fs *FileSystem) ClientStats() cache.ClientStats {
	if fs.client == nil {
		return cache.ClientStats{}
	}
	return fs.client.Stats()
}

// LogCaching reports whether the host-side log tier is enabled.
func (fs *FileSystem) LogCaching() bool { return fs.log != nil }

// LogTier returns the host-side log tier, or nil when disabled. Tests
// use it to install the replay oracle's observer and to force crashes.
func (fs *FileSystem) LogTier() *cache.LogTier { return fs.log }

// LogStats returns the log tier's aggregate statistics (the zero value
// when the tier is disabled).
func (fs *FileSystem) LogStats() cache.LogStats {
	if fs.log == nil {
		return cache.LogStats{}
	}
	return fs.log.Stats()
}

// drainLog is the log tier's drain sink: it writes one batch of logged
// records through the regular PFS data path — per-record chunking, mesh
// transfer, FIFO disk service, fault-plane routing (crashed-node
// failover, straggler stretch) — and calls done when the slowest record
// finishes. It runs from lane-0 events (drain timers), and each
// record's completion crosses back to the sequential plane through
// serveIONodeFn's Shard.Deferred, so the join counter is race-free.
func (fs *FileSystem) drainLog(batch []cache.LogRecord, done func()) {
	remaining := 0
	for _, r := range batch {
		f := fs.lookup(r.Stream, true)
		lists, ios := fs.chunksByIONode(f, r.Off, r.Size)
		for _, io := range ios {
			remaining++
			fs.serveIONodeFn(r.Node, f, io, lists[io], true, func() {
				remaining--
				if remaining == 0 {
					done()
				}
			})
		}
	}
	if remaining == 0 {
		done()
	}
}

// lookup returns the file record, creating it if requested.
func (fs *FileSystem) lookup(name string, create bool) *file {
	f, ok := fs.files[name]
	if !ok && create {
		h := fnv.New32a()
		h.Write([]byte(name))
		f = &file{
			name:  name,
			base:  int(h.Sum32()) % len(fs.ios),
			token: sim.NewResource(fs.k, "token:"+name, 1),
		}
		if f.base < 0 {
			f.base += len(fs.ios)
		}
		fs.files[name] = f
	}
	return f
}

// Open performs an individual (non-collective) open of name by node in
// the given mode, creating the file if absent. Each concurrent Open
// serializes through the metadata service — the behavior that dominated
// version A of both applications.
func (fs *FileSystem) Open(p *sim.Proc, node int, name string, mode Mode) (*Handle, error) {
	if mode < 0 || mode >= numModes {
		return nil, fmt.Errorf("pfs: invalid mode %d", int(mode))
	}
	start := fs.k.Now()
	fs.meta.Use(p, fs.cfg.Costs.Open)
	f := fs.lookup(name, true)
	f.mode = mode
	f.refcount++
	fs.trace(node, pablo.OpOpen, name, 0, 0, start, mode)
	return &Handle{fs: fs, f: f, node: node, mode: mode, buffered: true}, nil
}

// trace emits one event ending now.
func (fs *FileSystem) trace(node int, op pablo.Op, name string, off, size int64, start sim.Time, mode Mode) {
	fs.tracer.Record(pablo.Event{
		Node:     node,
		Op:       op,
		File:     name,
		Offset:   off,
		Size:     size,
		Start:    start,
		Duration: fs.k.Now() - start,
		Mode:     mode.String(),
	})
}

// chunk is a contiguous piece of a request living on one I/O node.
type chunk struct {
	off, size int64
}

// chunksByIONode splits [off, off+size) into per-I/O-node chunk lists,
// returned as a slice indexed by I/O node (nil entries are uninvolved)
// together with the involved I/O nodes in ascending order. Chunks on the
// same I/O node are coalesced per stripe unit but kept in ascending
// offset order (they are contiguous on the array only if the request
// spans a full stripe cycle).
func (fs *FileSystem) chunksByIONode(f *file, off, size int64) ([][]chunk, []int) {
	lists := make([][]chunk, len(fs.ios))
	involved := 0
	u := fs.cfg.StripeUnit
	for size > 0 {
		stripe := off / u
		io := (f.base + int(stripe%int64(len(fs.ios)))) % len(fs.ios)
		inStripe := off % u
		n := u - inStripe
		if n > size {
			n = size
		}
		if lists[io] == nil {
			involved++
		}
		lists[io] = append(lists[io], chunk{off: off, size: n})
		off += n
		size -= n
	}
	ios := make([]int, 0, involved)
	for io, l := range lists {
		if l != nil {
			ios = append(ios, io)
		}
	}
	return lists, ios
}

// xfer performs the data movement of one read or write request: client
// software overhead, network to each involved I/O node, FIFO disk
// service per node, with distinct I/O nodes proceeding in parallel.
// It blocks p until the slowest I/O node finishes.
func (fs *FileSystem) xfer(p *sim.Proc, node int, f *file, off, size int64, write bool) {
	if size <= 0 {
		return
	}
	p.Wait(fs.cfg.Costs.Request)
	u := fs.cfg.StripeUnit
	if off/u == (off+size-1)/u {
		// Single stripe unit → single I/O node, single chunk: skip the
		// per-node grouping entirely (the overwhelmingly common case for
		// the paper's small-request workloads).
		io := (f.base + int((off/u)%int64(len(fs.ios)))) % len(fs.ios)
		fs.serveIONode(p, node, f, io, []chunk{{off: off, size: size}}, write)
		return
	}
	lists, ios := fs.chunksByIONode(f, off, size)
	if len(ios) == 1 {
		fs.serveIONode(p, node, f, ios[0], lists[ios[0]], write)
		return
	}
	// Fan out one callback chain per additional I/O node; the request
	// completes when all involved nodes have served their chunks.
	done := sim.NewMailbox(fs.k, "xfer-join")
	for _, io := range ios[1:] {
		io := io
		fs.serveIONodeFn(node, f, io, lists[io], write, func() { done.Send(io) })
	}
	fs.serveIONode(p, node, f, ios[0], lists[ios[0]], write)
	for range ios[1:] {
		done.Recv(p)
	}
}

// serveIONode moves one request's chunks through a single I/O node —
// mesh transfer of the payload, then FIFO disk service — blocking p
// until the node finishes. The interaction runs on the I/O node's shard
// lane: the arrival event and the disk-service hold are lane events
// (parallelizable on a sharded kernel), and the client suspends until
// the release continuation wakes it inline. Pricing happens at grant
// time on the lane and the client continuation nests inside the release
// event's dispatch position, so every (at, seq) allocation — and hence
// the trace — is identical to the former process-shaped
// Acquire/Wait/Release sequence.
func (fs *FileSystem) serveIONode(p *sim.Proc, node int, f *file, io int, chunks []chunk, write bool) {
	var bytes int64
	for _, c := range chunks {
		bytes += c.size
	}
	io = fs.routeTo(io)
	n := fs.ios[io]
	n.sh.After(fs.meshCost(node, io, bytes), func() {
		n.res.UseFn(func() sim.Time {
			var d time.Duration
			for _, c := range chunks {
				d += n.service(f.name, c, write)
			}
			return d
		}, func() { n.sh.Wake(p) })
	})
	p.Suspend(n.park)
}

// serveIONodeFn is the callback-shaped variant of serveIONode used by the
// striped-transfer fan-out: the same event sequence with no helper
// goroutine, so fan-out requests cost zero goroutine spawns and channel
// handoffs. The initial zero-delay hop mirrors the start event a spawned
// helper process would get, and disk service is priced at grant time
// inside UseFn. The completion continuation crosses back to the compute
// side through Shard.Deferred (a Shard.Call at commit time on a sharded
// kernel, the bare callback otherwise) so it never runs concurrently
// with other lanes.
//
// The staging hop runs on the issuing node's compute LP, not the I/O
// lane: a zero-delay event on an I/O lane would land inside the open
// sync window (the window protocol only guarantees cross-LP delays of
// at least the lookahead), while compute-lane events dispatch on the
// sequential plane at any instant. The mesh transfer that follows is
// >= the lookahead by construction, so it crosses the LP boundary
// legally. The hop's (at, seq) allocation is unchanged by the routing,
// which keeps traces bit-identical to the previous I/O-lane hop.
func (fs *FileSystem) serveIONodeFn(node int, f *file, io int, chunks []chunk, write bool, then func()) {
	var bytes int64
	for _, c := range chunks {
		bytes += c.size
	}
	io = fs.routeTo(io)
	n := fs.ios[io]
	then = n.sh.Deferred(then)
	fs.k.ComputeLane(node).After(0, func() {
		n.sh.After(fs.meshCost(node, io, bytes), func() {
			n.res.UseFn(func() sim.Time {
				var d time.Duration
				for _, c := range chunks {
					d += n.service(f.name, c, write)
				}
				return d
			}, then)
		})
	})
}
