package pfs

import (
	"testing"
	"time"

	"paragonio/internal/sim"
)

// TestSamplerSeesTokenContention reproduces the mechanism behind the
// paper's Figure 5: concurrent M_UNIX seek/write cycles pile up on the
// file token, and the sampler observes the queue depth ramping into the
// double digits.
func TestSamplerSeesTokenContention(t *testing.T) {
	r := newRig(t)
	s := NewSampler(r.fs, 50*time.Millisecond)
	const nodes = 16
	bar := sim.NewBarrier(r.k, "cycle", nodes)
	for i := 0; i < nodes; i++ {
		i := i
		r.k.Spawn("n", func(p *sim.Proc) {
			h, _ := r.fs.Open(p, i, "quad", MUnix)
			for cyc := 0; cyc < 4; cyc++ {
				bar.Await(p)
				off := int64(cyc*nodes+i) * 2720
				h.Seek(p, off)
				h.Write(p, 2720)
			}
			h.Close(p)
		})
	}
	r.run(t)
	if got := s.MaxTokenQueue(); got < nodes/2 {
		t.Fatalf("max token queue = %d, want >= %d under %d-way contention",
			got, nodes/2, nodes)
	}
	if got := s.MaxMetaQueue(); got < nodes/2 {
		t.Fatalf("max metadata queue = %d during the open wave", got)
	}
}

func TestSamplerBusyMonotoneAndStops(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("f", 8<<20)
	s := NewSampler(r.fs, 10*time.Millisecond)
	r.k.Spawn("reader", func(p *sim.Proc) {
		h, _ := r.fs.Open(p, 0, "f", MAsync)
		h.SetBuffering(false)
		for i := 0; i < 40; i++ {
			h.Read(p, 128<<10)
		}
		h.Close(p)
	})
	r.run(t)
	samples := s.Samples()
	if len(samples) < 5 {
		t.Fatalf("only %d samples", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].T <= samples[i-1].T {
			t.Fatal("sample times not increasing")
		}
		for io := range samples[i].IONodeBusy {
			if samples[i].IONodeBusy[io] < samples[i-1].IONodeBusy[io] {
				t.Fatal("cumulative busy time decreased")
			}
		}
	}
	// The sampler must not extend the run by more than one interval
	// past the application's last event.
	last := samples[len(samples)-1].T
	if r.k.Now() > last+10*time.Millisecond {
		t.Fatalf("sampler extended the run: now=%v last sample=%v", r.k.Now(), last)
	}
}

func TestSamplerIntervalValidation(t *testing.T) {
	r := newRig(t)
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval accepted")
		}
	}()
	NewSampler(r.fs, 0)
}
