package pfs

import (
	"testing"
	"time"

	"paragonio/internal/sim"
)

// TestSamplerSeesTokenContention reproduces the mechanism behind the
// paper's Figure 5: concurrent M_UNIX seek/write cycles pile up on the
// file token, and the sampler observes the queue depth ramping into the
// double digits.
func TestSamplerSeesTokenContention(t *testing.T) {
	r := newRig(t)
	s := NewSampler(r.fs, 50*time.Millisecond)
	const nodes = 16
	bar := sim.NewBarrier(r.k, "cycle", nodes)
	for i := 0; i < nodes; i++ {
		i := i
		r.k.Spawn("n", func(p *sim.Proc) {
			h, _ := r.fs.Open(p, i, "quad", MUnix)
			for cyc := 0; cyc < 4; cyc++ {
				bar.Await(p)
				off := int64(cyc*nodes+i) * 2720
				h.Seek(p, off)
				h.Write(p, 2720)
			}
			h.Close(p)
		})
	}
	r.run(t)
	if got := s.MaxTokenQueue(); got < nodes/2 {
		t.Fatalf("max token queue = %d, want >= %d under %d-way contention",
			got, nodes/2, nodes)
	}
	if got := s.MaxMetaQueue(); got < nodes/2 {
		t.Fatalf("max metadata queue = %d during the open wave", got)
	}
}

func TestSamplerBusyMonotoneAndStops(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("f", 8<<20)
	s := NewSampler(r.fs, 10*time.Millisecond)
	r.k.Spawn("reader", func(p *sim.Proc) {
		h, _ := r.fs.Open(p, 0, "f", MAsync)
		h.SetBuffering(false)
		for i := 0; i < 40; i++ {
			h.Read(p, 128<<10)
		}
		h.Close(p)
	})
	r.run(t)
	samples := s.Samples()
	if len(samples) < 5 {
		t.Fatalf("only %d samples", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].T <= samples[i-1].T {
			t.Fatal("sample times not increasing")
		}
		for io := range samples[i].IONodeBusy {
			if samples[i].IONodeBusy[io] < samples[i-1].IONodeBusy[io] {
				t.Fatal("cumulative busy time decreased")
			}
		}
	}
	// The sampler must not extend the run by more than one interval
	// past the application's last event.
	last := samples[len(samples)-1].T
	if r.k.Now() > last+10*time.Millisecond {
		t.Fatalf("sampler extended the run: now=%v last sample=%v", r.k.Now(), last)
	}
}

// TestSamplerZeroIOSelfStops pins the edge case of a run with no
// application activity at all: the sampler is the only live process, so
// it must stop immediately instead of ticking forever (Kernel.Run would
// otherwise never return).
func TestSamplerZeroIOSelfStops(t *testing.T) {
	r := newRig(t)
	s := NewSampler(r.fs, 10*time.Millisecond)
	r.run(t)
	if now := r.k.Now(); now != 0 {
		t.Fatalf("sampler advanced an empty run to %v", now)
	}
	if n := len(s.Samples()); n != 0 {
		t.Fatalf("got %d samples from an empty run, want 0", n)
	}
}

// TestSamplerComputeOnlyApp covers an application that consumes virtual
// time but performs no I/O: the sampler must tick (all-zero samples) and
// still stop when the application ends.
func TestSamplerComputeOnlyApp(t *testing.T) {
	r := newRig(t)
	s := NewSampler(r.fs, 10*time.Millisecond)
	r.k.Spawn("compute", func(p *sim.Proc) {
		p.Wait(35 * time.Millisecond)
	})
	r.run(t)
	samples := s.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples from a compute-only run")
	}
	for _, sm := range samples {
		if sm.MetaQueue != 0 || sm.TokenQueue != 0 {
			t.Fatalf("phantom queue activity in sample %+v", sm)
		}
		if sm.CacheDirty != nil || sm.CacheHits != 0 || sm.CacheMisses != 0 {
			t.Fatalf("cache fields populated with caching disabled: %+v", sm)
		}
	}
	// One interval past the app's end at most.
	if r.k.Now() > 45*time.Millisecond {
		t.Fatalf("sampler extended the run to %v", r.k.Now())
	}
}

// TestSamplerAlignedRunEnd pins sampling when the application ends
// exactly on a sample boundary: the final sample lands precisely at run
// end and the sampler does not tick past it.
func TestSamplerAlignedRunEnd(t *testing.T) {
	r := newRig(t)
	const interval = 25 * time.Millisecond
	s := NewSampler(r.fs, interval)
	r.k.Spawn("compute", func(p *sim.Proc) {
		p.Wait(4 * interval) // ends exactly at the 4th sample instant
	})
	r.run(t)
	samples := s.Samples()
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want 4", len(samples))
	}
	if last := samples[len(samples)-1].T; last != 4*interval {
		t.Fatalf("last sample at %v, want exactly %v", last, 4*interval)
	}
	if r.k.Now() != 4*interval {
		t.Fatalf("run extended past aligned end: %v", r.k.Now())
	}
}

func TestSamplerIntervalValidation(t *testing.T) {
	r := newRig(t)
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval accepted")
		}
	}()
	NewSampler(r.fs, 0)
}
