package pfs

import (
	"fmt"
	"time"

	"paragonio/internal/pablo"
	"paragonio/internal/sim"
)

// Handle is one node's open file descriptor. All methods must be called
// from process context (the node's simulated process).
//
// The dispatch semantics follow the file's *current* access mode (which
// setiomode can change after open), exactly as on PFS.
type Handle struct {
	fs    *FileSystem
	f     *file
	node  int
	mode  Mode // mode at open / last setiomode (informational)
	group *Group
	rank  int

	ptr        int64
	recStarted bool  // M_RECORD pointer initialized
	recBase    int64 // base offset the record pattern started from

	buffered       bool
	bufOff, bufLen int64

	closed bool
}

// Node returns the compute node that owns the handle.
func (h *Handle) Node() int { return h.node }

// File returns the file's name.
func (h *Handle) File() string { return h.f.name }

// Mode returns the file's current access mode.
func (h *Handle) Mode() Mode { return h.f.mode }

// Ptr returns the handle's private file pointer. For shared-pointer
// modes it returns the shared pointer.
func (h *Handle) Ptr() int64 {
	if h.f.mode.SharedPointer() {
		return h.f.shared
	}
	return h.ptr
}

// Buffered reports whether client-side read buffering is enabled.
func (h *Handle) Buffered() bool { return h.buffered }

// SetBuffering enables or disables client-side read buffering — the
// "system I/O buffering" control PRISM's developer used in version C.
// Disabling drops the current buffer. The call itself is free (it is a
// local flag, not a file system operation).
func (h *Handle) SetBuffering(on bool) {
	h.buffered = on
	if !on {
		h.bufOff, h.bufLen = 0, 0
	}
}

func (h *Handle) copyTime(n int64) time.Duration {
	return time.Duration(float64(n) / h.fs.cfg.Costs.BufferCopyBW * float64(time.Second))
}

// readData moves n bytes at off to the client — through the coherent
// client cache tier when enabled, else through the legacy per-handle
// read buffer when enabled.
func (h *Handle) readData(p *sim.Proc, off, n int64) {
	if n <= 0 {
		return
	}
	if lg := h.fs.log; lg != nil {
		// Read-your-writes barrier: a read overlapping records still
		// sitting in the host-side log must wait for the drain to catch
		// up through them — the stall that makes the log tier a poor fit
		// for read-after-write-resident streams (restart reads).
		if seq := lg.ReadBarrier(h.f.name, off, n); seq > 0 {
			lg.Wait(p, h.node, seq, true)
		}
	}
	if ct := h.fs.client; ct != nil {
		// The client tier subsumes the legacy read buffer (which has no
		// invalidation protocol — the reason PRISM's version C turned it
		// off): while the tier is on, all reads go through it instead.
		if d, hit := ct.Read(h.node, h.f.name, off, n); hit {
			p.Wait(d)
			return
		}
		// Miss: fetch whole covering blocks through the PFS data path,
		// clamped to EOF, then install them under fresh leases and pay
		// the node-local copy of the requested bytes.
		bs := ct.BlockSize()
		lo := off / bs * bs
		hi := (off + n + bs - 1) / bs * bs
		if hi > h.f.size {
			hi = h.f.size
		}
		if hi < off+n {
			hi = off + n
		}
		h.fs.xfer(p, h.node, h.f, lo, hi-lo, false)
		ct.Install(h.node, h.f.name, lo, hi-lo)
		p.Wait(ct.CopyCost(n))
		return
	}
	if !h.buffered {
		h.fs.xfer(p, h.node, h.f, off, n, false)
		return
	}
	if off >= h.bufOff && off+n <= h.bufOff+h.bufLen {
		// Buffer hit: no disk traffic.
		p.Wait(h.fs.cfg.Costs.BufferHit + h.copyTime(n))
		return
	}
	// Miss: fetch a full buffer (read-ahead) or the request, whichever
	// is larger, then pay the extra copy — the penalty that makes
	// buffering a poor fit for large requests.
	fetch := n
	if fetch < h.fs.cfg.BufSize {
		fetch = h.fs.cfg.BufSize
	}
	if rest := h.f.size - off; fetch > rest {
		fetch = rest
	}
	if fetch < n {
		fetch = n
	}
	h.fs.xfer(p, h.node, h.f, off, fetch, false)
	p.Wait(h.copyTime(n))
	h.bufOff, h.bufLen = off, fetch
}

// writeData moves n bytes at off to disk (write-through) and extends the
// file. Any read buffer is dropped to keep it coherent. With the client
// tier enabled, the write first runs the coherence protocol: peers
// holding valid leases on the written blocks are recalled, and the
// writer waits out the invalidation round-trip before its data leaves
// the node.
func (h *Handle) writeData(p *sim.Proc, off, n int64) {
	if ct := h.fs.client; ct != nil {
		if d := ct.Write(h.node, h.f.name, off, n); d > 0 {
			p.Wait(d)
		}
	}
	if lg := h.fs.log; lg != nil {
		// Host-side log: absorb the write at memory speed and let the
		// background drain move it to the PFS. Backpressure blocks the
		// appender when the undrained backlog exceeds the tier's
		// capacity, so a burst larger than the buffer still pays.
		cost, stall := lg.Append(h.node, h.f.name, off, n)
		if stall > 0 {
			lg.Wait(p, h.node, stall, false)
		}
		p.Wait(cost)
		if off+n > h.f.size {
			h.f.size = off + n
		}
		h.bufOff, h.bufLen = 0, 0
		return
	}
	h.fs.xfer(p, h.node, h.f, off, n, true)
	if off+n > h.f.size {
		h.f.size = off + n
	}
	h.bufOff, h.bufLen = 0, 0
}

// clampRead returns how many of size bytes at off are readable.
func (h *Handle) clampRead(off, size int64) int64 {
	n := h.f.size - off
	if n < 0 {
		return 0
	}
	if n > size {
		n = size
	}
	return n
}

// Read transfers up to size bytes at the current pointer, honoring the
// file's access mode, and returns the number of bytes read (0 at EOF).
func (h *Handle) Read(p *sim.Proc, size int64) (int64, error) {
	if h.closed {
		return 0, ErrClosed
	}
	if size <= 0 {
		return 0, ErrBadSize
	}
	mode := h.f.mode
	if mode.Collective() {
		if h.group == nil {
			return 0, ErrNotCollective
		}
		return h.group.collectiveData(p, h, size, false)
	}
	start := p.Now()
	var n int64
	switch mode {
	case MUnix:
		h.f.token.Acquire(p)
		p.Wait(h.fs.cfg.Costs.Token)
		off := h.ptr
		n = h.clampRead(off, size)
		h.readData(p, off, n)
		h.ptr += n
		h.f.token.Release(p)
		h.fs.trace(h.node, pablo.OpRead, h.f.name, off, n, start, mode)
	case MAsync:
		off := h.ptr
		n = h.clampRead(off, size)
		h.readData(p, off, n)
		h.ptr += n
		h.fs.trace(h.node, pablo.OpRead, h.f.name, off, n, start, mode)
	case MLog:
		h.f.token.Acquire(p)
		p.Wait(h.fs.cfg.Costs.Token)
		off := h.f.shared
		n = h.clampRead(off, size)
		h.readData(p, off, n)
		h.f.shared += n
		h.f.token.Release(p)
		h.fs.trace(h.node, pablo.OpRead, h.f.name, off, n, start, mode)
	}
	return n, nil
}

// Write transfers size bytes at the current pointer, honoring the file's
// access mode, and returns the number written.
func (h *Handle) Write(p *sim.Proc, size int64) (int64, error) {
	if h.closed {
		return 0, ErrClosed
	}
	if size <= 0 {
		return 0, ErrBadSize
	}
	mode := h.f.mode
	if mode.Collective() {
		if h.group == nil {
			return 0, ErrNotCollective
		}
		return h.group.collectiveData(p, h, size, true)
	}
	start := p.Now()
	switch mode {
	case MUnix:
		h.f.token.Acquire(p)
		p.Wait(h.fs.cfg.Costs.Token)
		off := h.ptr
		h.writeData(p, off, size)
		h.ptr += size
		h.f.token.Release(p)
		h.fs.trace(h.node, pablo.OpWrite, h.f.name, off, size, start, mode)
	case MAsync:
		off := h.ptr
		h.writeData(p, off, size)
		h.ptr += size
		h.fs.trace(h.node, pablo.OpWrite, h.f.name, off, size, start, mode)
	case MLog:
		h.f.token.Acquire(p)
		p.Wait(h.fs.cfg.Costs.Token)
		off := h.f.shared
		h.writeData(p, off, size)
		h.f.shared += size
		h.f.token.Release(p)
		h.fs.trace(h.node, pablo.OpWrite, h.f.name, off, size, start, mode)
	}
	return size, nil
}

// Seek repositions the handle's pointer to off (absolute). In M_UNIX the
// seek updates shared atomicity/EOF bookkeeping through the file token —
// the serialization that made seeks dominate ESCAT version B — while
// M_ASYNC and M_RECORD seeks are purely local. Shared-pointer modes do
// not support seeking.
func (h *Handle) Seek(p *sim.Proc, off int64) error {
	if h.closed {
		return ErrClosed
	}
	if off < 0 {
		return ErrBadOffset
	}
	mode := h.f.mode
	start := p.Now()
	switch mode {
	case MUnix:
		h.f.token.Acquire(p)
		p.Wait(h.fs.cfg.Costs.SeekShared)
		h.f.token.Release(p)
	case MAsync, MRecord:
		p.Wait(h.fs.cfg.Costs.SeekLocal)
	default:
		return ErrSeekCollective
	}
	h.ptr = off
	h.recStarted = false
	h.recBase = off
	h.fs.trace(h.node, pablo.OpSeek, h.f.name, off, 0, start, mode)
	return nil
}

// SetIOMode changes the file's access mode via an individual metadata
// operation (the "iomode" rows of the paper's tables). Collective mode
// changes go through Group.SetIOMode.
func (h *Handle) SetIOMode(p *sim.Proc, mode Mode) error {
	if h.closed {
		return ErrClosed
	}
	if mode < 0 || mode >= numModes {
		return fmt.Errorf("pfs: invalid mode %d", int(mode))
	}
	start := p.Now()
	// Individual setiomode pays the same per-I/O-node renegotiation as
	// the collective form.
	h.fs.meta.Use(p, h.fs.cfg.Costs.SetIOMode*time.Duration(len(h.fs.ios)))
	if ct := h.fs.client; ct != nil {
		// Renegotiation recalls every node's leases on the file.
		if d := ct.RecallStream(h.node, h.f.name); d > 0 {
			p.Wait(d)
		}
	}
	h.f.mode = mode
	h.f.recSize = 0
	h.mode = mode
	h.fs.trace(h.node, pablo.OpIOMode, h.f.name, 0, 0, start, mode)
	return nil
}

// Flush forces out client-side state (drops the read buffer) — the
// "flush" row in PRISM version C's table.
func (h *Handle) Flush(p *sim.Proc) error {
	if h.closed {
		return ErrClosed
	}
	start := p.Now()
	p.Wait(h.fs.cfg.Costs.Request)
	h.bufOff, h.bufLen = 0, 0
	if ct := h.fs.client; ct != nil {
		ct.InvalidateLocal(h.node, h.f.name)
	}
	h.fs.trace(h.node, pablo.OpFlush, h.f.name, 0, 0, start, h.f.mode)
	return nil
}

// Close releases the handle. PFS closes are asynchronous from the
// client's perspective (a local teardown plus a deferred server
// notification), so they do not queue on the metadata service.
func (h *Handle) Close(p *sim.Proc) error {
	if h.closed {
		return ErrClosed
	}
	start := p.Now()
	p.Wait(h.fs.cfg.Costs.Close)
	h.f.refcount--
	h.closed = true
	h.fs.trace(h.node, pablo.OpClose, h.f.name, 0, 0, start, h.f.mode)
	return nil
}
