package pfs

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"paragonio/internal/cache"
	"paragonio/internal/mesh"
	"paragonio/internal/pablo"
	"paragonio/internal/sim"
)

// The coherence oracle: an independent record of each block's current
// version, fed only by the tier's write events. The property under test
// is that no read is ever served a block older than the last write —
// i.e. every ClientHit reports exactly the version the oracle expects.
// Versions exist in the tier purely for this check, so the oracle is
// not circular: the tier decides *whether* to serve locally from leases
// and recalls alone; the oracle checks that decision against the
// ground-truth write history.
type coherenceOracle struct {
	t        *testing.T
	versions map[string]map[int64]uint64
	hits     int
	writes   int
	recalls  int
	expired  int
	failed   bool
}

func newCoherenceOracle(t *testing.T) *coherenceOracle {
	return &coherenceOracle{t: t, versions: make(map[string]map[int64]uint64)}
}

func (o *coherenceOracle) observe(op cache.ClientOp) {
	if o.failed {
		return
	}
	cur := o.versions[op.Stream]
	if cur == nil {
		cur = make(map[int64]uint64)
		o.versions[op.Stream] = cur
	}
	switch op.Kind {
	case cache.ClientWrite:
		o.writes++
		if want := cur[op.Block] + 1; op.Version != want {
			o.failed = true
			o.t.Errorf("write to %s[%d] produced version %d, oracle expects %d",
				op.Stream, op.Block, op.Version, want)
		}
		cur[op.Block] = op.Version
	case cache.ClientHit:
		o.hits++
		if want := cur[op.Block]; op.Version != want {
			o.failed = true
			o.t.Errorf("STALE READ: node %d served %s[%d] at version %d, last write was %d",
				op.Node, op.Stream, op.Block, op.Version, want)
		}
	case cache.ClientRecall:
		o.recalls++
	case cache.ClientExpire:
		o.expired++
	}
}

// coherenceRig builds a platform with the client tier tuned so every
// interesting transition fires: a tiny per-node capacity (evictions), a
// short lease TTL against multi-millisecond compute gaps (expiries), and
// a small block size over a shared file (cross-node write sharing →
// recalls and raced fills).
func coherenceRig(t *testing.T, shards int, ttl time.Duration) (*sim.Kernel, *FileSystem) {
	t.Helper()
	k := sim.NewKernel()
	m := mesh.MustNew(mesh.DefaultConfig())
	if shards >= 2 {
		old := sim.DefaultStageMin
		sim.DefaultStageMin = 2
		t.Cleanup(func() { sim.DefaultStageMin = old })
		if err := k.ConfigureShards(shards, m.MinLatency()); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultConfig(m)
	cfg.Tiers.Client = &cache.ClientConfig{
		BlockSize:     4 * 1024,
		CapacityBytes: 64 * 1024, // 16 blocks: forces evictions
		LeaseTTL:      ttl,
	}
	fs, err := New(k, cfg, pablo.NewTrace())
	if err != nil {
		t.Fatal(err)
	}
	return k, fs
}

// TestCoherenceOracle runs randomized multi-handle read/write schedules
// over one shared file through every handle combination the protocol
// must cover — two individual opens on distinct nodes, two handles on
// one node, and a gopen group beside individual opens — and asserts no
// schedule exhibits a stale read. Runs single-threaded and sharded: the
// tier lives on lane 0, so the oracle must hold for every shard count.
func TestCoherenceOracle(t *testing.T) {
	const fileName = "shared.dat"
	const fileSize = 256 * 1024
	for _, shards := range []int{1, 4} {
		for seed := int64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				k, fs := coherenceRig(t, shards, 5*time.Millisecond)
				fs.CreateFile(fileName, fileSize)
				oracle := newCoherenceOracle(t)
				fs.ClientTier().SetObserver(oracle.observe)

				// Nodes 0 and 1: individual opens (node 0 holds two
				// handles on the same stream). Nodes 2 and 3: a gopen
				// group in the same (M_ASYNC) discipline.
				group, err := fs.NewGroup([]int{2, 3})
				if err != nil {
					t.Fatal(err)
				}
				for node := 0; node < 4; node++ {
					node := node
					rng := rand.New(rand.NewSource(seed*7919 + int64(node)))
					k.Spawn(fmt.Sprintf("node-%d", node), func(p *sim.Proc) {
						var handles []*Handle
						switch {
						case node < 2:
							h, err := fs.Open(p, node, fileName, MAsync)
							if err != nil {
								t.Error(err)
								return
							}
							handles = append(handles, h)
							if node == 0 {
								h2, err := fs.Open(p, node, fileName, MAsync)
								if err != nil {
									t.Error(err)
									return
								}
								handles = append(handles, h2)
							}
						default:
							h, err := group.Gopen(p, node, fileName, MAsync)
							if err != nil {
								t.Error(err)
								return
							}
							handles = append(handles, h)
						}
						for i := 0; i < 120; i++ {
							h := handles[rng.Intn(len(handles))]
							off := rng.Int63n(fileSize - 8*1024)
							size := 1 + rng.Int63n(8*1024)
							if err := h.Seek(p, off); err != nil {
								t.Error(err)
								return
							}
							if rng.Intn(10) < 7 {
								if _, err := h.Read(p, size); err != nil {
									t.Error(err)
									return
								}
							} else {
								if _, err := h.Write(p, size); err != nil {
									t.Error(err)
									return
								}
							}
							// Compute gaps longer than the lease TTL age
							// some leases out between touches.
							p.Wait(time.Duration(rng.Int63n(int64(6 * time.Millisecond))))
						}
					})
				}
				if err := k.Run(); err != nil {
					t.Fatal(err)
				}
				if oracle.failed {
					return // specifics already reported
				}
				// The schedule must actually exercise the protocol, or
				// the pass is vacuous.
				if oracle.hits == 0 || oracle.writes == 0 {
					t.Fatalf("vacuous schedule: hits=%d writes=%d", oracle.hits, oracle.writes)
				}
				if oracle.recalls == 0 {
					t.Fatalf("no lease recalls fired; schedule does not test invalidation")
				}
				if oracle.expired == 0 {
					t.Fatalf("no leases expired; schedule does not test expiry")
				}
				st := fs.ClientStats()
				if st.Evicted == 0 {
					t.Fatalf("no evictions; capacity pressure missing (stats: %+v)", st)
				}
				if st.StaleAverted == 0 {
					t.Fatalf("no stale reads averted; recalls never caught a resident copy")
				}
			})
		}
	}
}

// TestSetIOModeRecallsLeases pins the setiomode renegotiation path: a
// reader caches blocks, a peer's setiomode recalls them, and the next
// read misses instead of serving the (still resident-looking) copy.
func TestSetIOModeRecallsLeases(t *testing.T) {
	// A lease long enough to survive the metadata queueing in front of
	// the peer's setiomode — the recall must catch a *valid* lease.
	k, fs := coherenceRig(t, 1, 10*time.Second)
	fs.CreateFile("f.dat", 64*1024)
	var events []cache.ClientOp
	fs.ClientTier().SetObserver(func(op cache.ClientOp) { events = append(events, op) })

	k.Spawn("reader", func(p *sim.Proc) {
		h, err := fs.Open(p, 0, "f.dat", MAsync)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := h.Read(p, 4096); err != nil {
			t.Error(err)
			return
		}
		if err := h.Seek(p, 0); err != nil {
			t.Error(err)
			return
		}
		if _, err := h.Read(p, 4096); err != nil { // warm: local hit
			t.Error(err)
			return
		}
		p.Wait(5 * time.Second) // let the peer's setiomode land
		if err := h.Seek(p, 0); err != nil {
			t.Error(err)
			return
		}
		if _, err := h.Read(p, 4096); err != nil { // must miss again
			t.Error(err)
			return
		}
	})
	k.Spawn("renegotiator", func(p *sim.Proc) {
		h, err := fs.Open(p, 1, "f.dat", MAsync)
		if err != nil {
			t.Error(err)
			return
		}
		if err := h.SetIOMode(p, MAsync); err != nil {
			t.Error(err)
			return
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	var recalls, missesAfterRecall int
	sawRecall := false
	for _, op := range events {
		if op.Kind == cache.ClientRecall && op.Node == 0 {
			recalls++
			sawRecall = true
		}
		if sawRecall && op.Kind == cache.ClientMiss && op.Node == 0 {
			missesAfterRecall++
		}
	}
	if recalls == 0 {
		t.Fatalf("setiomode recalled no leases; events: %+v", events)
	}
	if missesAfterRecall == 0 {
		t.Fatalf("read after recall did not miss; events: %+v", events)
	}
	if st := fs.ClientStats(); st.FileRecalls != 1 {
		t.Fatalf("FileRecalls = %d, want 1", st.FileRecalls)
	}
}
