package pfs

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"paragonio/internal/mesh"
	"paragonio/internal/pablo"
	"paragonio/internal/sim"
)

// TestPropertyRandomOpSequences drives random single-node op sequences
// through every non-collective mode and checks the system invariants:
// virtual time is monotone, every operation is traced exactly once with
// a non-negative duration, file size never shrinks, and read clamping
// never returns more than requested or than the file holds.
func TestPropertyRandomOpSequences(t *testing.T) {
	f := func(seed int64, modeSel uint8, opsRaw []byte) bool {
		mode := []Mode{MUnix, MAsync, MLog}[int(modeSel)%3]
		rng := rand.New(rand.NewSource(seed))
		k := sim.NewKernel()
		m := mesh.MustNew(mesh.DefaultConfig())
		tr := pablo.NewTrace()
		fs, err := New(k, DefaultConfig(m), tr)
		if err != nil {
			return false
		}
		fs.CreateFile("f", 1<<20)
		ok := true
		k.Spawn("p", func(p *sim.Proc) {
			h, err := fs.Open(p, 0, "f", mode)
			if err != nil {
				ok = false
				return
			}
			lastNow := p.Now()
			lastSize := fs.FileSize("f")
			for _, b := range opsRaw {
				switch b % 4 {
				case 0:
					size := int64(rng.Intn(200000)) + 1
					n, err := h.Read(p, size)
					if err != nil || n < 0 || n > size {
						ok = false
						return
					}
				case 1:
					size := int64(rng.Intn(200000)) + 1
					if _, err := h.Write(p, size); err != nil {
						ok = false
						return
					}
				case 2:
					off := int64(rng.Intn(1 << 21))
					err := h.Seek(p, off)
					if mode.SharedPointer() {
						if err != ErrSeekCollective {
							ok = false
							return
						}
					} else if err != nil {
						ok = false
						return
					}
				case 3:
					if err := h.Flush(p); err != nil {
						ok = false
						return
					}
				}
				if p.Now() < lastNow {
					ok = false
					return
				}
				lastNow = p.Now()
				if fs.FileSize("f") < lastSize {
					ok = false
					return
				}
				lastSize = fs.FileSize("f")
			}
			if err := h.Close(p); err != nil {
				ok = false
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		if !ok {
			return false
		}
		for _, ev := range tr.Events() {
			if ev.Duration < 0 || ev.Size < 0 || ev.Offset < 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyStripingConservation: for random (offset, size) requests,
// the per-I/O-node chunks exactly tile the request.
func TestPropertyStripingConservation(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("f", 1<<40)
	f := r.fs.lookup("f", false)
	u := r.fs.cfg.StripeUnit
	prop := func(offRaw uint32, sizeRaw uint32) bool {
		off := int64(offRaw)
		size := int64(sizeRaw) + 1
		lists, _ := r.fs.chunksByIONode(f, off, size)
		covered := map[int64]int64{}
		var total int64
		for _, chunks := range lists {
			for _, c := range chunks {
				if c.size <= 0 || c.size > u {
					return false
				}
				if _, dup := covered[c.off]; dup {
					return false
				}
				covered[c.off] = c.size
				total += c.size
			}
		}
		if total != size {
			return false
		}
		next := off
		for next < off+size {
			n, ok := covered[next]
			if !ok {
				return false
			}
			next += n
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyStripeToIONodeStable: the same (file, offset) always maps
// to the same I/O node, and offsets within one stripe unit share it.
func TestPropertyStripeToIONodeStable(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("f", 1<<40)
	f := r.fs.lookup("f", false)
	u := r.fs.cfg.StripeUnit
	ioOf := func(off int64) int {
		_, ios := r.fs.chunksByIONode(f, off, 1)
		if len(ios) == 0 {
			return -1
		}
		return ios[0]
	}
	prop := func(offRaw uint32) bool {
		off := int64(offRaw)
		io1 := ioOf(off)
		io2 := ioOf(off)
		if io1 != io2 {
			return false
		}
		stripeStart := (off / u) * u
		return ioOf(stripeStart) == io1 && ioOf(stripeStart+u-1) == io1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMRecordTiling: for random group sizes and round counts,
// M_RECORD writes tile the file with no gaps or overlaps.
func TestPropertyMRecordTiling(t *testing.T) {
	prop := func(nRaw, roundsRaw uint8) bool {
		n := int(nRaw)%7 + 2           // 2..8 nodes
		rounds := int(roundsRaw)%4 + 1 // 1..4 rounds
		const rec = 8192
		k := sim.NewKernel()
		m := mesh.MustNew(mesh.DefaultConfig())
		tr := pablo.NewTrace()
		fs, err := New(k, DefaultConfig(m), tr)
		if err != nil {
			return false
		}
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		g, err := fs.NewGroup(ids)
		if err != nil {
			return false
		}
		for _, id := range ids {
			id := id
			k.Spawn("n", func(p *sim.Proc) {
				h, err := g.Gopen(p, id, "out", MRecord)
				if err != nil {
					panic(err)
				}
				for r := 0; r < rounds; r++ {
					if _, err := h.Write(p, rec); err != nil {
						panic(err)
					}
				}
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		if fs.FileSize("out") != int64(n*rounds*rec) {
			return false
		}
		seen := map[int64]bool{}
		for _, ev := range tr.ByOp(pablo.OpWrite) {
			if ev.Offset%rec != 0 || seen[ev.Offset] {
				return false
			}
			seen[ev.Offset] = true
		}
		return len(seen) == n*rounds
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// ---- failure injection ----

// TestCollectiveDesertionDeadlocks: a group member that never joins a
// collective leaves the rest parked; the kernel reports exactly which
// processes are blocked and why.
func TestCollectiveDesertionDeadlocks(t *testing.T) {
	r := newRig(t)
	g, _ := r.fs.NewGroup([]int{0, 1, 2})
	for _, id := range []int{0, 1, 2} {
		id := id
		r.k.Spawn("n", func(p *sim.Proc) {
			if id == 2 {
				return // deserts before the gopen
			}
			g.Gopen(p, id, "f", MGlobal)
		})
	}
	err := r.k.Run()
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 2 {
		t.Fatalf("blocked = %v", dl.Blocked)
	}
}

// TestCollectiveErrorPathReleasesEveryone: a collective parameter
// mismatch must not deadlock — every member gets the error and the run
// drains cleanly.
func TestCollectiveErrorPathReleasesEveryone(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("f", 1<<20)
	g, _ := r.fs.NewGroup([]int{0, 1, 2, 3})
	errs := make([]error, 4)
	finished := 0
	for _, id := range []int{0, 1, 2, 3} {
		id := id
		r.k.Spawn("n", func(p *sim.Proc) {
			h, err := g.Gopen(p, id, "f", MGlobal)
			if err != nil {
				t.Error(err)
				return
			}
			_, errs[id] = h.Read(p, int64(64+id)) // all sizes differ
			// The group must remain usable after the failed round.
			if _, err := h.Read(p, 64); err != nil {
				t.Errorf("node %d: post-error read failed: %v", id, err)
			}
			finished++
		})
	}
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != 4 {
		t.Fatalf("finished = %d", finished)
	}
	for id, err := range errs {
		if err != ErrCollectiveMismatch {
			t.Fatalf("node %d err = %v", id, err)
		}
	}
}

// TestInterleavedFilesKeepIndependentTokens: contention on one file must
// not slow another file's client.
func TestInterleavedFilesKeepIndependentTokens(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("hot", 1<<20)
	r.fs.CreateFile("cold", 1<<20)
	var coldLoop sim.Time
	for i := 0; i < 8; i++ {
		i := i
		r.k.Spawn("hot", func(p *sim.Proc) {
			h, _ := r.fs.Open(p, i, "hot", MUnix)
			for j := 0; j < 50; j++ {
				h.Read(p, 1024)
			}
			h.Close(p)
		})
	}
	r.k.Spawn("cold", func(p *sim.Proc) {
		h, _ := r.fs.Open(p, 9, "cold", MUnix)
		t0 := p.Now()
		for j := 0; j < 50; j++ {
			h.Read(p, 1024)
		}
		coldLoop = p.Now() - t0
		h.Close(p)
	})
	r.run(t)
	// The cold file's 50 buffered reads should cost ~50 x (token+hit),
	// far under a second, regardless of the hot file's token queue.
	if coldLoop > time.Second {
		t.Fatalf("cold-file reads slowed by hot-file contention: %v", coldLoop)
	}
}
