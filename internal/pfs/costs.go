package pfs

import (
	"fmt"
	"time"
)

// Costs collects every software-path tunable of the file system model.
// All calibration of the reproduction lives here (and in the disk and
// mesh parameter sets); the experiment harness documents measured-vs-
// paper shapes in EXPERIMENTS.md.
type Costs struct {
	// Metadata service times (served FIFO by the single metadata
	// manager, so concurrent opens from many nodes serialize — the
	// mechanism behind the huge open shares in ESCAT/PRISM version A).
	Open  time.Duration // one individual open
	Gopen time.Duration // one collective open (paid once per group)
	Close time.Duration // one close (asynchronous: no metadata queueing)
	// SetIOMode is the per-I/O-node cost of a mode change: the call
	// renegotiates striping/pointer state with every I/O node, so one
	// setiomode costs SetIOMode x IONodes at the metadata service.
	SetIOMode time.Duration

	// Pointer/seek service. M_UNIX-family seeks update shared EOF/
	// atomicity bookkeeping on the file's token server; M_ASYNC and
	// M_RECORD seeks touch only client state.
	SeekShared time.Duration
	SeekLocal  time.Duration

	// Token service: per-operation cost of acquiring/releasing the
	// atomicity token in modes that preserve atomicity.
	Token time.Duration

	// Request is the client-library software overhead per data request
	// (in addition to mesh transfer and disk service).
	Request time.Duration

	// Client read buffering (the "system I/O buffering" PRISM's
	// developer disabled in version C).
	BufferCopyBW float64       // bytes/second memory copy rate
	BufferHit    time.Duration // fixed cost of a buffer hit
}

// DefaultCosts returns the calibrated OSF/1 R1.x software costs used by
// the reproduction. Values are chosen to land the paper's qualitative
// shapes (see DESIGN.md section 3) with plausible mid-90s magnitudes.
func DefaultCosts() Costs {
	return Costs{
		// PFS opens touched every I/O node and the OSF/1 name server;
		// measured opens on the Caltech machine ran hundreds of
		// milliseconds before queueing.
		Open:         500 * time.Millisecond,
		Gopen:        60 * time.Millisecond,
		Close:        6 * time.Millisecond,
		SetIOMode:    70 * time.Millisecond,
		SeekShared:   8 * time.Millisecond,
		SeekLocal:    8 * time.Microsecond,
		Token:        5 * time.Millisecond,
		Request:      250 * time.Microsecond,
		BufferCopyBW: 25e6,
		BufferHit:    40 * time.Microsecond,
	}
}

// Validate reports whether the costs are usable.
func (c Costs) Validate() error {
	if c.Open < 0 || c.Gopen < 0 || c.Close < 0 || c.SetIOMode < 0 ||
		c.SeekShared < 0 || c.SeekLocal < 0 || c.Token < 0 || c.Request < 0 ||
		c.BufferHit < 0 {
		return fmt.Errorf("pfs: negative cost parameter")
	}
	if c.BufferCopyBW <= 0 {
		return fmt.Errorf("pfs: BufferCopyBW must be positive, got %g", c.BufferCopyBW)
	}
	return nil
}
