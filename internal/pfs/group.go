package pfs

import (
	"fmt"
	"sort"
	"time"

	"paragonio/internal/pablo"
	"paragonio/internal/sim"
)

// Group is a fixed set of compute nodes performing collective file
// operations (gopen, collective setiomode, and all data operations in
// M_RECORD / M_GLOBAL / M_SYNC). Every member must invoke the same
// collective calls in the same order; the group synchronizes them and
// charges the mesh synchronization costs, so stragglers inflate the
// measured duration of collective operations — exactly the effect behind
// the large gopen/iomode shares in the optimized code versions.
type Group struct {
	fs    *FileSystem
	nodes []int
	rank  map[int]int
	bar1  *sim.Barrier
	bar2  *sim.Barrier

	// per-round scratch, written by members before bar1 and by the
	// leader (rank 0) between bar1 and bar2
	sizes  []int64
	offs   []int64
	counts []int64
	err    error
	file   *file
}

// NewGroup creates a collective group over the given node ids.
func (fs *FileSystem) NewGroup(nodes []int) (*Group, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("pfs: empty group")
	}
	sorted := append([]int(nil), nodes...)
	sort.Ints(sorted)
	rank := make(map[int]int, len(sorted))
	for i, n := range sorted {
		if _, dup := rank[n]; dup {
			return nil, fmt.Errorf("pfs: duplicate node %d in group", n)
		}
		rank[n] = i
	}
	name := fmt.Sprintf("group[%d..%d]x%d", sorted[0], sorted[len(sorted)-1], len(sorted))
	return &Group{
		fs:     fs,
		nodes:  sorted,
		rank:   rank,
		bar1:   sim.NewBarrier(fs.k, name+"-gather", len(sorted)),
		bar2:   sim.NewBarrier(fs.k, name+"-release", len(sorted)),
		sizes:  make([]int64, len(sorted)),
		offs:   make([]int64, len(sorted)),
		counts: make([]int64, len(sorted)),
	}, nil
}

// Nodes returns the member node ids in rank order.
func (g *Group) Nodes() []int { return append([]int(nil), g.nodes...) }

// N returns the group size.
func (g *Group) N() int { return len(g.nodes) }

// Rank returns a node's rank within the group, or -1 if not a member.
func (g *Group) Rank(node int) int {
	r, ok := g.rank[node]
	if !ok {
		return -1
	}
	return r
}

// Gopen is the collective open: all members call it; the metadata
// operation is paid once (by the leader), which is what made gopen "an
// alternative to the more expensive open operation". The returned handle
// is bound to the group, and the mode is set as part of the open (so no
// separate iomode operation is needed).
func (g *Group) Gopen(p *sim.Proc, node int, name string, mode Mode) (*Handle, error) {
	rank, ok := g.rank[node]
	if !ok {
		return nil, ErrNotMember
	}
	if mode < 0 || mode >= numModes {
		return nil, fmt.Errorf("pfs: invalid mode %d", int(mode))
	}
	start := p.Now()
	g.bar1.Await(p)
	if rank == 0 {
		g.fs.meta.Use(p, g.fs.cfg.Costs.Gopen)
		f := g.fs.lookup(name, true)
		f.mode = mode
		f.recSize = 0
		f.refcount += len(g.nodes)
		g.file = f
		g.err = nil
	}
	g.bar2.Await(p)
	p.Wait(g.fs.cfg.Mesh.Barrier(len(g.nodes)))
	f := g.file
	g.fs.trace(node, pablo.OpGopen, name, 0, 0, start, mode)
	return &Handle{fs: g.fs, f: f, node: node, mode: mode, group: g, rank: rank, buffered: true}, nil
}

// SetIOMode is the collective mode change: all members call it with
// their handle for the same file and the same target mode. The metadata
// operation is paid once. It also binds the handles to the group, which
// is how files opened with plain open become usable in collective modes
// (the PRISM version B pattern: open, then setiomode to M_GLOBAL).
func (g *Group) SetIOMode(p *sim.Proc, h *Handle, mode Mode) error {
	rank, ok := g.rank[h.node]
	if !ok {
		return ErrNotMember
	}
	if h.closed {
		return ErrClosed
	}
	if mode < 0 || mode >= numModes {
		return fmt.Errorf("pfs: invalid mode %d", int(mode))
	}
	start := p.Now()
	g.bar1.Await(p)
	if rank == 0 {
		// Setiomode renegotiates the file's access discipline (mode,
		// pointers, buffered data) with every I/O node holding a stripe;
		// the leader pays that full negotiation while the group waits.
		g.fs.meta.Use(p, g.fs.cfg.Costs.SetIOMode*time.Duration(len(g.fs.ios)))
		if ct := g.fs.client; ct != nil {
			// Renegotiation recalls every node's leases on the file; the
			// leader absorbs the round-trip while the group waits at bar2.
			if d := ct.RecallStream(h.node, h.f.name); d > 0 {
				p.Wait(d)
			}
		}
		h.f.mode = mode
		h.f.recSize = 0
		g.err = nil
	}
	g.bar2.Await(p)
	p.Wait(g.fs.cfg.Mesh.Barrier(len(g.nodes)))
	h.group = g
	h.rank = rank
	h.mode = mode
	g.fs.trace(h.node, pablo.OpIOMode, h.f.name, 0, 0, start, mode)
	return nil
}

// collectiveData implements Read/Write for the three collective modes.
// Returns the bytes transferred by this member.
func (g *Group) collectiveData(p *sim.Proc, h *Handle, size int64, write bool) (int64, error) {
	rank, ok := g.rank[h.node]
	if !ok {
		return 0, ErrNotMember
	}
	switch h.f.mode {
	case MRecord:
		return g.recordOp(p, h, rank, size, write)
	case MGlobal:
		return g.globalOp(p, h, rank, size, write)
	case MSync:
		return g.syncOp(p, h, rank, size, write)
	}
	panic("pfs: collectiveData on non-collective mode")
}

// recordOp: fixed-size records, per-process pointers, synchronized
// rounds. Node r's k-th record sits at base + (k*N + r) * recSize, so
// the group sweeps disjoint areas in parallel — at full striping
// bandwidth when recSize is a multiple of the stripe unit.
func (g *Group) recordOp(p *sim.Proc, h *Handle, rank int, size int64, write bool) (int64, error) {
	start := p.Now()
	g.sizes[rank] = size
	g.bar1.Await(p)
	if rank == 0 {
		g.err = nil
		for _, s := range g.sizes {
			if s != g.sizes[0] {
				g.err = ErrCollectiveMismatch
				break
			}
		}
		if g.err == nil {
			if h.f.recSize == 0 {
				h.f.recSize = size
			} else if size != h.f.recSize {
				g.err = ErrRecordSize
			}
		}
	}
	g.bar2.Await(p)
	if g.err != nil {
		return 0, g.err
	}
	p.Wait(g.fs.cfg.Mesh.Barrier(len(g.nodes)))
	if !h.recStarted {
		h.ptr = h.recBase + int64(rank)*size
		h.recStarted = true
	}
	off := h.ptr
	var n int64
	if write {
		n = size
		h.writeData(p, off, n)
	} else {
		n = h.clampRead(off, size)
		h.readData(p, off, n)
	}
	h.ptr += int64(len(g.nodes)) * size
	op := pablo.OpRead
	if write {
		op = pablo.OpWrite
	}
	g.fs.trace(h.node, op, h.f.name, off, n, start, MRecord)
	return n, nil
}

// globalOp: shared pointer, identical request from every node, one disk
// I/O performed by the leader and broadcast to the group.
func (g *Group) globalOp(p *sim.Proc, h *Handle, rank int, size int64, write bool) (int64, error) {
	start := p.Now()
	g.sizes[rank] = size
	g.bar1.Await(p)
	if rank == 0 {
		g.err = nil
		for _, s := range g.sizes {
			if s != g.sizes[0] {
				g.err = ErrCollectiveMismatch
				break
			}
		}
		if g.err == nil {
			off := h.f.shared
			var n int64
			if write {
				n = size
				h.writeData(p, off, n)
			} else {
				n = h.clampRead(off, size)
				h.readData(p, off, n)
			}
			h.f.shared = off + n
			g.offs[0] = off
			g.counts[0] = n
		}
	}
	g.bar2.Await(p)
	if g.err != nil {
		return 0, g.err
	}
	// Result distribution (reads) or completion notification (writes).
	if !write {
		p.Wait(g.fs.cfg.Mesh.Broadcast(len(g.nodes), g.counts[0]))
	} else {
		p.Wait(g.fs.cfg.Mesh.Barrier(len(g.nodes)))
	}
	op := pablo.OpRead
	if write {
		op = pablo.OpWrite
	}
	g.fs.trace(h.node, op, h.f.name, g.offs[0], g.counts[0], start, MGlobal)
	return g.counts[0], nil
}

// syncOp: shared pointer, node-ordered, per-node sizes may vary. The
// leader assigns rank-prefix offsets; data operations then serialize
// through the file token in wake order (an approximation of strict node
// order with identical aggregate timing).
func (g *Group) syncOp(p *sim.Proc, h *Handle, rank int, size int64, write bool) (int64, error) {
	start := p.Now()
	g.sizes[rank] = size
	g.bar1.Await(p)
	if rank == 0 {
		g.err = nil
		off := h.f.shared
		for r, s := range g.sizes {
			g.offs[r] = off
			if write {
				g.counts[r] = s
			} else {
				g.counts[r] = h.clampRead(off, s)
			}
			off += g.counts[r]
		}
		h.f.shared = off
	}
	g.bar2.Await(p)
	if g.err != nil {
		return 0, g.err
	}
	off, n := g.offs[rank], g.counts[rank]
	h.f.token.Acquire(p)
	p.Wait(g.fs.cfg.Costs.Token)
	if write {
		h.writeData(p, off, n)
	} else {
		h.readData(p, off, n)
	}
	h.f.token.Release(p)
	op := pablo.OpRead
	if write {
		op = pablo.OpWrite
	}
	g.fs.trace(h.node, op, h.f.name, off, n, start, MSync)
	return n, nil
}
