package pfs

import (
	"testing"
	"time"

	"paragonio/internal/mesh"
	"paragonio/internal/pablo"
	"paragonio/internal/sim"
)

// testRig bundles a kernel, file system and trace for mode tests. It uses
// a small fast mesh so tests run instantly but all cost paths execute.
type testRig struct {
	k  *sim.Kernel
	fs *FileSystem
	tr *pablo.Trace
}

func newRig(t *testing.T) *testRig {
	t.Helper()
	k := sim.NewKernel()
	m := mesh.MustNew(mesh.DefaultConfig())
	tr := pablo.NewTrace()
	fs, err := New(k, DefaultConfig(m), tr)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{k: k, fs: fs, tr: tr}
}

// run drives the kernel and fails the test on deadlock.
func (r *testRig) run(t *testing.T) {
	t.Helper()
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestModeStringAndParse(t *testing.T) {
	for _, m := range Modes() {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("M_NOPE"); err == nil {
		t.Fatal("ParseMode accepted junk")
	}
}

func TestModePredicates(t *testing.T) {
	if !MUnix.Atomic() || MAsync.Atomic() {
		t.Fatal("atomicity predicates wrong")
	}
	if !MGlobal.SharedPointer() || !MSync.SharedPointer() || !MLog.SharedPointer() {
		t.Fatal("shared-pointer predicates wrong")
	}
	if MUnix.SharedPointer() || MRecord.SharedPointer() || MAsync.SharedPointer() {
		t.Fatal("per-process pointer modes misclassified")
	}
	if !MRecord.Collective() || !MGlobal.Collective() || !MSync.Collective() {
		t.Fatal("collective predicates wrong")
	}
	if MUnix.Collective() || MAsync.Collective() || MLog.Collective() {
		t.Fatal("non-collective modes misclassified")
	}
	if !MRecord.FixedRecord() || MUnix.FixedRecord() {
		t.Fatal("record predicates wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	m := mesh.MustNew(mesh.DefaultConfig())
	bad := []func(*Config){
		func(c *Config) { c.IONodes = 0 },
		func(c *Config) { c.Mesh = nil },
		func(c *Config) { c.StripeUnit = -1 },
		func(c *Config) { c.BufSize = -5 },
		func(c *Config) { c.Costs.Open = -time.Second },
		func(c *Config) { c.Disk.DataDisks = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig(m)
		mut(&cfg)
		if _, err := New(k, cfg, nil); err == nil {
			t.Fatalf("case %d: New accepted invalid config", i)
		}
	}
	cfg := DefaultConfig(m)
	cfg.StripeUnit = 0 // defaulted
	fs, err := New(k, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Config().StripeUnit != DefaultStripeUnit {
		t.Fatalf("StripeUnit defaulted to %d", fs.Config().StripeUnit)
	}
	if fs.Config().BufSize != DefaultStripeUnit {
		t.Fatalf("BufSize defaulted to %d", fs.Config().BufSize)
	}
}

func TestCreateFileAndNamespace(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("input", 1<<20)
	r.fs.CreateFile("input", 100) // shrink attempt: no-op
	if !r.fs.Exists("input") || r.fs.Exists("other") {
		t.Fatal("Exists wrong")
	}
	if r.fs.FileSize("input") != 1<<20 {
		t.Fatalf("FileSize = %d", r.fs.FileSize("input"))
	}
	if r.fs.FileSize("other") != 0 {
		t.Fatal("missing file size not 0")
	}
	r.fs.CreateFile("a", 1)
	names := r.fs.FileNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "input" {
		t.Fatalf("FileNames = %v", names)
	}
}

func TestChunksByIONodeCoverAndAlign(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("f", 10<<20)
	f := r.fs.lookup("f", false)
	u := r.fs.cfg.StripeUnit
	cases := []struct{ off, size int64 }{
		{0, 1},          // tiny at start
		{u - 1, 2},      // straddles one boundary
		{0, u},          // exactly one stripe
		{0, 2 * u},      // the paper's 128KB request
		{100, 155584},   // PRISM restart-body request
		{u / 2, 17 * u}, // spans the full I/O node cycle
	}
	for _, tc := range cases {
		lists, ios := r.fs.chunksByIONode(f, tc.off, tc.size)
		var total int64
		next := tc.off
		// Collect all chunks and verify they tile [off, off+size).
		all := map[int64]int64{}
		for _, io := range ios {
			if io < 0 || io >= r.fs.cfg.IONodes {
				t.Fatalf("chunk on invalid io node %d", io)
			}
			chunks := lists[io]
			for _, c := range chunks {
				if c.size <= 0 || c.size > u {
					t.Fatalf("chunk size %d out of range", c.size)
				}
				all[c.off] = c.size
				total += c.size
			}
		}
		if total != tc.size {
			t.Fatalf("off=%d size=%d: chunks cover %d bytes", tc.off, tc.size, total)
		}
		for next < tc.off+tc.size {
			sz, ok := all[next]
			if !ok {
				t.Fatalf("off=%d size=%d: gap at %d", tc.off, tc.size, next)
			}
			next += sz
		}
	}
}

func TestStripeMappingRoundRobin(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("f", 64<<20)
	f := r.fs.lookup("f", false)
	u := r.fs.cfg.StripeUnit
	// 16 consecutive stripes must land on 16 distinct I/O nodes.
	seen := map[int]bool{}
	for s := int64(0); s < 16; s++ {
		_, ios := r.fs.chunksByIONode(f, s*u, 1)
		for _, io := range ios {
			seen[io] = true
		}
	}
	if len(seen) != 16 {
		t.Fatalf("16 stripes hit %d io nodes, want 16", len(seen))
	}
}

func TestOpenReadWriteCloseMUnix(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("in", 4096)
	var readN int64
	r.k.Spawn("app", func(p *sim.Proc) {
		h, err := r.fs.Open(p, 0, "in", MUnix)
		if err != nil {
			t.Error(err)
			return
		}
		n, err := h.Read(p, 1000)
		if err != nil {
			t.Error(err)
		}
		readN = n
		if _, err := h.Write(p, 500); err != nil {
			t.Error(err)
		}
		if err := h.Close(p); err != nil {
			t.Error(err)
		}
	})
	r.run(t)
	if readN != 1000 {
		t.Fatalf("read %d bytes", readN)
	}
	// Write happened at ptr=1000, so size stays 4096... 1000+500 < 4096.
	if r.fs.FileSize("in") != 4096 {
		t.Fatalf("size = %d", r.fs.FileSize("in"))
	}
	ops := map[pablo.Op]int{}
	for _, ev := range r.tr.Events() {
		ops[ev.Op]++
		if ev.Duration <= 0 {
			t.Fatalf("event %+v has non-positive duration", ev)
		}
		if ev.Mode != "M_UNIX" {
			t.Fatalf("event mode %q", ev.Mode)
		}
	}
	if ops[pablo.OpOpen] != 1 || ops[pablo.OpRead] != 1 || ops[pablo.OpWrite] != 1 || ops[pablo.OpClose] != 1 {
		t.Fatalf("ops = %v", ops)
	}
}

func TestReadClampsAtEOF(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("in", 100)
	var ns []int64
	r.k.Spawn("app", func(p *sim.Proc) {
		h, _ := r.fs.Open(p, 0, "in", MAsync)
		n1, _ := h.Read(p, 80)
		n2, _ := h.Read(p, 80) // only 20 left
		n3, _ := h.Read(p, 80) // EOF
		ns = []int64{n1, n2, n3}
		h.Close(p)
	})
	r.run(t)
	if ns[0] != 80 || ns[1] != 20 || ns[2] != 0 {
		t.Fatalf("reads = %v, want [80 20 0]", ns)
	}
}

func TestWriteExtendsFile(t *testing.T) {
	r := newRig(t)
	r.k.Spawn("app", func(p *sim.Proc) {
		h, _ := r.fs.Open(p, 0, "new", MAsync)
		h.Seek(p, 1<<20)
		h.Write(p, 4096)
		h.Close(p)
	})
	r.run(t)
	if got := r.fs.FileSize("new"); got != 1<<20+4096 {
		t.Fatalf("size = %d", got)
	}
}

func TestHandleErrors(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("f", 100)
	r.k.Spawn("app", func(p *sim.Proc) {
		h, _ := r.fs.Open(p, 0, "f", MUnix)
		if _, err := h.Read(p, 0); err != ErrBadSize {
			t.Errorf("Read(0) err = %v", err)
		}
		if _, err := h.Write(p, -1); err != ErrBadSize {
			t.Errorf("Write(-1) err = %v", err)
		}
		if err := h.Seek(p, -1); err != ErrBadOffset {
			t.Errorf("Seek(-1) err = %v", err)
		}
		h.Close(p)
		if _, err := h.Read(p, 1); err != ErrClosed {
			t.Errorf("Read after close err = %v", err)
		}
		if err := h.Seek(p, 0); err != ErrClosed {
			t.Errorf("Seek after close err = %v", err)
		}
		if err := h.Close(p); err != ErrClosed {
			t.Errorf("double Close err = %v", err)
		}
		if err := h.Flush(p); err != ErrClosed {
			t.Errorf("Flush after close err = %v", err)
		}
		if _, err := r.fs.Open(p, 0, "f", Mode(99)); err == nil {
			t.Error("Open accepted invalid mode")
		}
	})
	r.run(t)
}

func TestCollectiveModeRequiresGroup(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("f", 1<<20)
	r.k.Spawn("app", func(p *sim.Proc) {
		h, _ := r.fs.Open(p, 0, "f", MRecord)
		if _, err := h.Read(p, 65536); err != ErrNotCollective {
			t.Errorf("collective read without group err = %v", err)
		}
	})
	r.run(t)
}

func TestSharedPointerSeekRejected(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("f", 1<<20)
	r.k.Spawn("app", func(p *sim.Proc) {
		h, _ := r.fs.Open(p, 0, "f", MLog)
		if err := h.Seek(p, 0); err != ErrSeekCollective {
			t.Errorf("M_LOG seek err = %v", err)
		}
	})
	r.run(t)
}

func TestMUnixConcurrentAccessSerializes(t *testing.T) {
	// Two nodes reading the same M_UNIX file must take roughly twice as
	// long as one, because atomicity serializes them; two nodes reading
	// two different files overlap.
	elapsed := func(files []string) sim.Time {
		k := sim.NewKernel()
		m := mesh.MustNew(mesh.DefaultConfig())
		fs, _ := New(k, DefaultConfig(m), nil)
		for _, f := range files {
			fs.CreateFile(f, 1<<20)
		}
		var last sim.Time
		bar := sim.NewBarrier(k, "openSync", 2)
		for i := 0; i < 2; i++ {
			i := i
			k.Spawn("n", func(p *sim.Proc) {
				h, _ := fs.Open(p, i, files[i%len(files)], MUnix)
				bar.Await(p) // start the read loops simultaneously
				t0 := p.Now()
				for j := 0; j < 20; j++ {
					h.Read(p, 65536)
				}
				if d := p.Now() - t0; d > last {
					last = d
				}
				h.Close(p)
			})
		}
		if err := k.Run(); err != nil {
			panic(err)
		}
		return last
	}
	shared := elapsed([]string{"same", "same"})
	separate := elapsed([]string{"a", "b"})
	if shared < separate*3/2 {
		t.Fatalf("shared-file run (%v) not clearly slower than separate files (%v)", shared, separate)
	}
}

func TestMAsyncAvoidsSerialization(t *testing.T) {
	// M_ASYNC on a shared file avoids the token, so concurrent access to
	// *disjoint regions spread across io nodes* is much faster than M_UNIX.
	elapsed := func(mode Mode) sim.Time {
		k := sim.NewKernel()
		m := mesh.MustNew(mesh.DefaultConfig())
		fs, _ := New(k, DefaultConfig(m), nil)
		fs.CreateFile("f", 64<<20)
		for i := 0; i < 8; i++ {
			i := i
			k.Spawn("n", func(p *sim.Proc) {
				h, _ := fs.Open(p, i, "f", mode)
				h.Seek(p, int64(i)*8<<20)
				for j := 0; j < 10; j++ {
					h.Read(p, 65536)
				}
				h.Close(p)
			})
		}
		if err := k.Run(); err != nil {
			panic(err)
		}
		return k.Now()
	}
	if a, u := elapsed(MAsync), elapsed(MUnix); a >= u {
		t.Fatalf("M_ASYNC (%v) not faster than M_UNIX (%v) under concurrency", a, u)
	}
}

func TestSeekCostsByMode(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("f", 1<<20)
	r.fs.CreateFile("g", 1<<20)
	var unixSeek, asyncSeek sim.Time
	r.k.Spawn("app", func(p *sim.Proc) {
		hu, _ := r.fs.Open(p, 0, "f", MUnix)
		t0 := p.Now()
		hu.Seek(p, 4096)
		unixSeek = p.Now() - t0
		ha, _ := r.fs.Open(p, 0, "g", MAsync)
		t0 = p.Now()
		ha.Seek(p, 4096)
		asyncSeek = p.Now() - t0
	})
	r.run(t)
	if unixSeek <= asyncSeek*10 {
		t.Fatalf("M_UNIX seek (%v) not >> M_ASYNC seek (%v)", unixSeek, asyncSeek)
	}
}

func TestLargeAlignedReadFasterPerByte(t *testing.T) {
	// The paper's core bandwidth observation: one 128KB (2-stripe) read
	// moves bytes far faster than 64 separate 2KB reads.
	elapsed := func(reqSize int64, count int) sim.Time {
		k := sim.NewKernel()
		m := mesh.MustNew(mesh.DefaultConfig())
		fs, _ := New(k, DefaultConfig(m), nil)
		fs.CreateFile("f", 128*1024)
		var loop sim.Time
		k.Spawn("n", func(p *sim.Proc) {
			h, _ := fs.Open(p, 0, "f", MUnix)
			h.SetBuffering(false)
			t0 := p.Now()
			for j := 0; j < count; j++ {
				h.Read(p, reqSize)
			}
			loop = p.Now() - t0
			h.Close(p)
		})
		if err := k.Run(); err != nil {
			panic(err)
		}
		return loop
	}
	small := elapsed(2048, 64)
	large := elapsed(131072, 1)
	if large*2 >= small {
		t.Fatalf("one 128KB read (%v) not much faster than 64x2KB (%v)", large, small)
	}
}

func TestIONodeStatsAndMetadataStats(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("f", 2<<20)
	r.k.Spawn("app", func(p *sim.Proc) {
		h, _ := r.fs.Open(p, 0, "f", MAsync)
		h.SetBuffering(false)
		h.Read(p, 2<<20) // spans all 16 io nodes
		h.Close(p)
	})
	r.run(t)
	stats := r.fs.IONodeStats()
	if len(stats) != 16 {
		t.Fatalf("%d io node stats", len(stats))
	}
	var total int64
	for _, s := range stats {
		total += s.BytesMoved
		if s.Requests == 0 {
			t.Fatal("an io node saw no requests for a 2MB read")
		}
	}
	if total != 2<<20 {
		t.Fatalf("io nodes moved %d bytes, want %d", total, 2<<20)
	}
	if r.fs.MetadataStats().Acquisitions != 1 { // open only; close is async
		t.Fatalf("metadata acquisitions = %d", r.fs.MetadataStats().Acquisitions)
	}
}

func TestTraceOffsetsAndSizes(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("f", 1<<20)
	r.k.Spawn("app", func(p *sim.Proc) {
		h, _ := r.fs.Open(p, 3, "f", MAsync)
		h.Read(p, 100)
		h.Read(p, 200)
		h.Seek(p, 5000)
		h.Write(p, 300)
		h.Close(p)
	})
	r.run(t)
	reads := r.tr.ByOp(pablo.OpRead)
	if len(reads) != 2 || reads[0].Offset != 0 || reads[1].Offset != 100 {
		t.Fatalf("read offsets: %+v", reads)
	}
	seeks := r.tr.ByOp(pablo.OpSeek)
	if len(seeks) != 1 || seeks[0].Offset != 5000 {
		t.Fatalf("seek events: %+v", seeks)
	}
	writes := r.tr.ByOp(pablo.OpWrite)
	if len(writes) != 1 || writes[0].Offset != 5000 || writes[0].Size != 300 {
		t.Fatalf("write events: %+v", writes)
	}
	for _, ev := range r.tr.Events() {
		if ev.Node != 3 {
			t.Fatalf("event node = %d", ev.Node)
		}
	}
}
