package pfs

import (
	"strings"
	"testing"
	"time"

	"paragonio/internal/cache"
	"paragonio/internal/faults"
	"paragonio/internal/mesh"
	"paragonio/internal/sim"
)

// faultRun executes count strided writes of size bytes against a 4-I/O-
// node file system under the given fault plan and returns the loop time
// plus the file system (for stats).
func faultRun(t *testing.T, plan faults.Plan, tiers cache.Tiers) (sim.Time, *FileSystem) {
	t.Helper()
	k := sim.NewKernel()
	m := mesh.MustNew(mesh.DefaultConfig())
	cfg := DefaultConfig(m)
	cfg.IONodes = 4
	cfg.Faults = plan
	cfg.Tiers = tiers
	fs, err := New(k, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var loop sim.Time
	k.Spawn("n", func(p *sim.Proc) {
		h, _ := fs.Open(p, 0, "f", MUnix)
		t0 := p.Now()
		for j := 0; j < 64; j++ {
			// One stripe unit per I/O node in turn, so every node serves.
			h.Seek(p, int64(j)*cfg.StripeUnit)
			h.Write(p, cfg.StripeUnit)
		}
		loop = p.Now() - t0
		h.Close(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return loop, fs
}

func planOf(fs ...faults.Fault) faults.Plan { return faults.Plan{Faults: fs} }

// TestFaultDiskFailDegradesService pins the RAID-3 reconstruction price:
// a failed data drive makes the same workload strictly slower, every
// post-failure request is counted degraded, and repair restores speed.
func TestFaultDiskFailDegradesService(t *testing.T) {
	healthy, _ := faultRun(t, faults.Plan{}, cache.Tiers{})
	degraded, fs := faultRun(t, planOf(faults.Fault{Kind: faults.DiskFail, At: 0, IONode: 1}), cache.Tiers{})
	if degraded <= healthy {
		t.Errorf("degraded run (%v) not slower than healthy (%v)", degraded, healthy)
	}
	st := fs.IONodeStats()[1]
	if st.Degraded == 0 || st.Degraded != st.Requests {
		t.Errorf("node 1 degraded count %d, want all %d requests", st.Degraded, st.Requests)
	}
	for i, s := range fs.IONodeStats() {
		if i != 1 && s.Degraded != 0 {
			t.Errorf("node %d counted %d degraded requests without a fault", i, s.Degraded)
		}
	}
}

// TestFaultNodeCrashReroutes pins failover: after the crash instant no
// request reaches the dead node and its stripes are absorbed by the
// ring successor, which serves its own load plus the failed-over load.
func TestFaultNodeCrashReroutes(t *testing.T) {
	_, hfs := faultRun(t, faults.Plan{}, cache.Tiers{})
	_, fs := faultRun(t, planOf(faults.Fault{Kind: faults.NodeCrash, At: 0, IONode: 2}), cache.Tiers{})
	if fs.Rerouted() == 0 {
		t.Fatal("crash of a serving node rerouted nothing")
	}
	if got := fs.IONodeStats()[2].Requests; got != 0 {
		t.Errorf("dead node served %d requests", got)
	}
	want := hfs.IONodeStats()[2].Requests + hfs.IONodeStats()[3].Requests
	if got := fs.IONodeStats()[3].Requests; got != want {
		t.Errorf("ring successor served %d requests, want %d (own + failed-over)", got, want)
	}
}

// TestFaultStragglerSlows pins the straggler multiplier: disk and mesh
// service addressed at the slow node stretch by the factor, and recovery
// at Until restores nominal pricing.
func TestFaultStragglerSlows(t *testing.T) {
	healthy, _ := faultRun(t, faults.Plan{}, cache.Tiers{})
	slow, _ := faultRun(t, planOf(faults.Fault{Kind: faults.Straggler, At: 0, IONode: 0, Factor: 8}), cache.Tiers{})
	if slow <= healthy {
		t.Fatalf("straggler run (%v) not slower than healthy (%v)", slow, healthy)
	}
	// A recovered straggler costs strictly less than a permanent one.
	recovered, _ := faultRun(t, planOf(faults.Fault{
		Kind: faults.Straggler, At: 0, Until: 100 * time.Millisecond, IONode: 0, Factor: 8}), cache.Tiers{})
	if recovered >= slow {
		t.Errorf("recovered straggler (%v) not faster than permanent (%v)", recovered, slow)
	}
}

// TestFaultClientFlapRequiresClientTier pins the configuration error: a
// client-flap fault without the lease-coherent client tier is rejected
// at New, not silently ignored.
func TestFaultClientFlapRequiresClientTier(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig(mesh.MustNew(mesh.DefaultConfig()))
	cfg.Faults = planOf(faults.Fault{Kind: faults.ClientFlap, At: time.Second, Node: 1})
	_, err := New(k, cfg, nil)
	if err == nil || !strings.Contains(err.Error(), "client-flap") {
		t.Fatalf("client-flap without Tiers.Client: err = %v, want client-flap config error", err)
	}
}

// TestFaultClientFlapFires pins that each scheduled flap reaches the
// client tier (the storm counter advances once per flap).
func TestFaultClientFlapFires(t *testing.T) {
	tiers := cache.Tiers{Client: &cache.ClientConfig{CapacityBytes: 8 << 20, LeaseTTL: 10 * time.Minute}}
	_, fs := faultRun(t, planOf(faults.Fault{
		Kind: faults.ClientFlap, At: time.Millisecond, Node: 0, Count: 3, Period: time.Millisecond}), tiers)
	if got := fs.ClientStats().Flaps; got != 3 {
		t.Errorf("flap count %d, want 3", got)
	}
}

// TestFaultPlanRejectedAtNew pins that an invalid plan is a construction
// error: an out-of-range target never reaches the scheduler.
func TestFaultPlanRejectedAtNew(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig(mesh.MustNew(mesh.DefaultConfig()))
	cfg.IONodes = 4
	cfg.Faults = planOf(faults.Fault{Kind: faults.DiskFail, At: 0, IONode: 9})
	if _, err := New(k, cfg, nil); err == nil {
		t.Fatal("out-of-range fault target accepted")
	}
}
