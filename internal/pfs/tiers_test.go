package pfs

import (
	"testing"

	"paragonio/internal/cache"
	"paragonio/internal/mesh"
	"paragonio/internal/pablo"
	"paragonio/internal/sim"
)

// TestTiersConfig pins the cache.Tiers configuration path: Tiers.IONode
// enables the buffer cache, zero fields are defaulted at New, and the
// resolved config is visible through Config().
func TestTiersConfig(t *testing.T) {
	cfg := DefaultConfig(mesh.MustNew(mesh.DefaultConfig()))
	cfg.Tiers.IONode = &cache.Config{WriteBehind: true}
	fs, err := New(sim.NewKernel(), cfg, pablo.NewTrace())
	if err != nil {
		t.Fatal(err)
	}
	if !fs.Caching() {
		t.Error("Tiers.IONode did not enable the I/O-node tier")
	}
	got := fs.Config()
	if got.Tiers.IONode == nil {
		t.Fatal("resolved Tiers.IONode not visible through Config()")
	}
	if got.Tiers.IONode.BlockSize == 0 {
		t.Error("resolved config not defaulted")
	}

	// Tiers off: no cache, and CacheStats reports nil.
	cfg = DefaultConfig(mesh.MustNew(mesh.DefaultConfig()))
	fs, err = New(sim.NewKernel(), cfg, pablo.NewTrace())
	if err != nil {
		t.Fatal(err)
	}
	if fs.Caching() || fs.CacheStats() != nil {
		t.Error("zero Tiers enabled a cache")
	}
}
