package pfs

import (
	"strings"
	"testing"

	"paragonio/internal/cache"
	"paragonio/internal/mesh"
	"paragonio/internal/pablo"
	"paragonio/internal/sim"
)

// TestDeprecatedCacheAlias pins the one-release deprecation contract of
// Config.Cache: alone it behaves exactly like Tiers.IONode, resolved
// configs stay visible through both fields, and setting the two to
// different values is a configuration error rather than a silent pick.
func TestDeprecatedCacheAlias(t *testing.T) {
	newFS := func(cfg Config) (*FileSystem, error) {
		return New(sim.NewKernel(), cfg, pablo.NewTrace())
	}

	// Deprecated field alone: resolved into Tiers.IONode, and readers of
	// either field see the same effective (defaulted) config.
	cfg := DefaultConfig(mesh.MustNew(mesh.DefaultConfig()))
	cfg.Cache = &cache.Config{WriteBehind: true}
	fs, err := newFS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !fs.Caching() {
		t.Error("deprecated Cache field did not enable the I/O-node tier")
	}
	got := fs.Config()
	if got.Tiers.IONode == nil || got.Cache != got.Tiers.IONode {
		t.Errorf("alias not resolved: Cache=%p Tiers.IONode=%p", got.Cache, got.Tiers.IONode)
	}
	if got.Tiers.IONode.BlockSize == 0 {
		t.Error("resolved config not defaulted")
	}

	// Same pointer in both fields is fine (callers migrating piecemeal).
	cfg = DefaultConfig(mesh.MustNew(mesh.DefaultConfig()))
	c := &cache.Config{WriteBehind: true}
	cfg.Cache = c
	cfg.Tiers.IONode = c
	if _, err := newFS(cfg); err != nil {
		t.Errorf("same config in both fields rejected: %v", err)
	}

	// Conflicting values must be rejected loudly.
	cfg = DefaultConfig(mesh.MustNew(mesh.DefaultConfig()))
	cfg.Cache = &cache.Config{WriteBehind: true}
	cfg.Tiers.IONode = &cache.Config{ReadAhead: 2}
	if _, err := newFS(cfg); err == nil || !strings.Contains(err.Error(), "deprecated") {
		t.Errorf("conflicting Cache/Tiers.IONode: err = %v, want deprecation conflict", err)
	}
}
