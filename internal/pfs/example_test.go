package pfs_test

import (
	"fmt"

	"paragonio/internal/mesh"
	"paragonio/internal/pablo"
	"paragonio/internal/pfs"
	"paragonio/internal/sim"
)

// Example shows the basic workflow: build a machine, open a striped file
// in an access mode, and move data under virtual time.
func Example() {
	k := sim.NewKernel()
	m := mesh.MustNew(mesh.DefaultConfig())
	tr := pablo.NewTrace()
	fs, err := pfs.New(k, pfs.DefaultConfig(m), tr)
	if err != nil {
		panic(err)
	}
	fs.CreateFile("data", 1<<20)

	k.Spawn("app", func(p *sim.Proc) {
		h, err := fs.Open(p, 0, "data", pfs.MAsync)
		if err != nil {
			panic(err)
		}
		n, _ := h.Read(p, 128<<10) // two stripe units
		fmt.Printf("read %d KB\n", n>>10)
		h.Close(p)
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("traced %d operations\n", tr.Len())
	// Output:
	// read 128 KB
	// traced 3 operations
}

// ExampleGroup_Gopen demonstrates a collective open and an M_GLOBAL read:
// four nodes receive the same data from a single disk I/O.
func ExampleGroup_Gopen() {
	k := sim.NewKernel()
	m := mesh.MustNew(mesh.DefaultConfig())
	fs, _ := pfs.New(k, pfs.DefaultConfig(m), nil)
	fs.CreateFile("input", 1<<20)
	g, _ := fs.NewGroup([]int{0, 1, 2, 3})
	for _, id := range g.Nodes() {
		id := id
		k.Spawn("node", func(p *sim.Proc) {
			h, err := g.Gopen(p, id, "input", pfs.MGlobal)
			if err != nil {
				panic(err)
			}
			h.Read(p, 4096)
			h.Close(p)
		})
	}
	if err := k.Run(); err != nil {
		panic(err)
	}
	var reqs uint64
	for _, s := range fs.IONodeStats() {
		reqs += s.Requests
	}
	fmt.Printf("4 nodes read the same block with %d disk request(s)\n", reqs)
	// Output:
	// 4 nodes read the same block with 1 disk request(s)
}
