package pfs

import (
	"testing"

	"paragonio/internal/mesh"
	"paragonio/internal/sim"
)

// smallReadRun measures total time for `count` sequential reads of
// `size` bytes with buffering on or off.
func smallReadRun(t *testing.T, size int64, count int, buffered bool) sim.Time {
	t.Helper()
	k := sim.NewKernel()
	m := mesh.MustNew(mesh.DefaultConfig())
	fs, err := New(k, DefaultConfig(m), nil)
	if err != nil {
		t.Fatal(err)
	}
	fs.CreateFile("f", size*int64(count)+1<<20)
	var loop sim.Time
	k.Spawn("n", func(p *sim.Proc) {
		h, _ := fs.Open(p, 0, "f", MAsync)
		h.SetBuffering(buffered)
		t0 := p.Now()
		for j := 0; j < count; j++ {
			h.Read(p, size)
		}
		loop = p.Now() - t0
		h.Close(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return loop
}

func TestBufferingAcceleratesSmallSequentialReads(t *testing.T) {
	// The PRISM version C effect, inverted: with buffering on, a run of
	// 40-byte header reads is cheap; with buffering off each one is a
	// full disk round trip.
	on := smallReadRun(t, 40, 500, true)
	off := smallReadRun(t, 40, 500, false)
	if off < on*10 {
		t.Fatalf("unbuffered small reads (%v) not >> buffered (%v)", off, on)
	}
}

func TestBufferingPenalizesLargeReads(t *testing.T) {
	// For requests much larger than the buffer, buffering adds a copy
	// penalty — why PRISM's developer disabled it for the restart body.
	on := smallReadRun(t, 155584, 10, true)
	off := smallReadRun(t, 155584, 10, false)
	if on <= off {
		t.Fatalf("buffered large reads (%v) not slower than unbuffered (%v)", on, off)
	}
}

func TestBufferInvalidatedByWrite(t *testing.T) {
	k := sim.NewKernel()
	m := mesh.MustNew(mesh.DefaultConfig())
	fs, _ := New(k, DefaultConfig(m), nil)
	fs.CreateFile("f", 1<<20)
	var hit, postWrite sim.Time
	k.Spawn("n", func(p *sim.Proc) {
		h, _ := fs.Open(p, 0, "f", MAsync)
		h.Read(p, 100) // fills buffer
		h.Seek(p, 0)
		t0 := p.Now()
		h.Read(p, 100) // buffer hit
		hit = p.Now() - t0
		h.Seek(p, 0)
		h.Write(p, 10) // invalidates
		h.Seek(p, 0)
		t0 = p.Now()
		h.Read(p, 100) // must go to disk again
		postWrite = p.Now() - t0
		h.Close(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if postWrite <= hit*10 {
		t.Fatalf("read after write (%v) not a miss (hit was %v)", postWrite, hit)
	}
}

func TestSeekPreservesBuffer(t *testing.T) {
	// A seek repositions the pointer but does not discard cached data:
	// seek back + reread within the buffered range stays a hit.
	k := sim.NewKernel()
	m := mesh.MustNew(mesh.DefaultConfig())
	fs, _ := New(k, DefaultConfig(m), nil)
	fs.CreateFile("f", 1<<20)
	k.Spawn("n", func(p *sim.Proc) {
		h, _ := fs.Open(p, 0, "f", MAsync)
		h.Read(p, 100)
		h.Seek(p, 0)
		h.Read(p, 100)
		h.Close(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var reqs uint64
	for _, s := range fs.IONodeStats() {
		reqs += s.Requests
	}
	if reqs != 1 {
		t.Fatalf("disk requests = %d, want 1 (seek must not drop buffer)", reqs)
	}
}

func TestBufferInvalidatedByFlush(t *testing.T) {
	k := sim.NewKernel()
	m := mesh.MustNew(mesh.DefaultConfig())
	fs, _ := New(k, DefaultConfig(m), nil)
	fs.CreateFile("f", 1<<20)
	var afterFlush, hit sim.Time
	k.Spawn("n", func(p *sim.Proc) {
		h, _ := fs.Open(p, 0, "f", MAsync)
		h.Read(p, 100)
		h.Seek(p, 0)
		t0 := p.Now()
		h.Read(p, 100)
		hit = p.Now() - t0
		h.Flush(p)
		h.Seek(p, 0)
		t0 = p.Now()
		h.Read(p, 100)
		afterFlush = p.Now() - t0
		h.Close(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if afterFlush <= hit*10 {
		t.Fatalf("read after flush (%v) should miss (hit %v)", afterFlush, hit)
	}
}

func TestSetBufferingOffDropsBuffer(t *testing.T) {
	k := sim.NewKernel()
	m := mesh.MustNew(mesh.DefaultConfig())
	fs, _ := New(k, DefaultConfig(m), nil)
	fs.CreateFile("f", 1<<20)
	k.Spawn("n", func(p *sim.Proc) {
		h, _ := fs.Open(p, 0, "f", MAsync)
		if !h.Buffered() {
			t.Error("buffering should default on")
		}
		h.Read(p, 100)
		h.SetBuffering(false)
		if h.Buffered() || h.bufLen != 0 {
			t.Error("SetBuffering(false) did not drop buffer")
		}
		h.SetBuffering(true)
		h.Close(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferReadAheadServesFollowingReads(t *testing.T) {
	// Sequential 1KB reads: the first fills a 64KB buffer; the next 63
	// must be hits (no disk requests).
	k := sim.NewKernel()
	m := mesh.MustNew(mesh.DefaultConfig())
	fs, _ := New(k, DefaultConfig(m), nil)
	fs.CreateFile("f", 1<<20)
	k.Spawn("n", func(p *sim.Proc) {
		h, _ := fs.Open(p, 0, "f", MAsync)
		for i := 0; i < 64; i++ {
			h.Read(p, 1024)
		}
		h.Close(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var reqs uint64
	for _, s := range fs.IONodeStats() {
		reqs += s.Requests
	}
	if reqs != 1 {
		t.Fatalf("disk requests = %d, want 1 (read-ahead)", reqs)
	}
}
