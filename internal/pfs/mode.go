// Package pfs simulates the Intel Paragon XP/S Parallel File System (PFS)
// as described in section 3.2 of the paper: files striped in 64 KB units
// across 16 I/O nodes (each a RAID-3 array), a metadata service, and the
// six file access modes with their distinct pointer-sharing, atomicity,
// and synchronization semantics:
//
//	M_UNIX   — default; per-process pointers, UNIX sharing semantics,
//	           request atomicity preserved by a per-file token, so
//	           concurrent access serializes (and shared-state seeks are
//	           expensive under contention).
//	M_RECORD — per-process pointers, fixed-size records, node-ordered
//	           synchronized rounds; record r of round k belongs to node
//	           r, so nodes sweep disjoint file areas in parallel.
//	M_ASYNC  — per-process pointers, variable sizes, no atomicity and no
//	           synchronization; seeks are purely local.
//	M_GLOBAL — shared pointer, all nodes access the same data in a
//	           synchronized fashion; the file system performs one disk
//	           I/O and broadcasts the result.
//	M_SYNC   — shared pointer, node-ordered synchronized rounds,
//	           per-node request sizes may vary.
//	M_LOG    — shared pointer, first-come-first-served, unsynchronized;
//	           the mode used for stdout-style log files.
//
// Every operation is traced through a pablo.Tracer, with durations that
// include queueing and synchronization delay — exactly what the Pablo
// instrumentation measured on the real machine.
package pfs

import "fmt"

// Mode is a PFS file access mode.
type Mode int

const (
	MUnix Mode = iota
	MLog
	MSync
	MRecord
	MGlobal
	MAsync
	numModes
)

var modeNames = [...]string{
	MUnix:   "M_UNIX",
	MLog:    "M_LOG",
	MSync:   "M_SYNC",
	MRecord: "M_RECORD",
	MGlobal: "M_GLOBAL",
	MAsync:  "M_ASYNC",
}

// String returns the PFS constant name, e.g. "M_UNIX".
func (m Mode) String() string {
	if m < 0 || int(m) >= len(modeNames) {
		return fmt.Sprintf("mode(%d)", int(m))
	}
	return modeNames[m]
}

// ParseMode converts a PFS constant name back to a Mode.
func ParseMode(s string) (Mode, error) {
	for i, n := range modeNames {
		if n == s {
			return Mode(i), nil
		}
	}
	return 0, fmt.Errorf("pfs: unknown access mode %q", s)
}

// Modes lists all access modes.
func Modes() []Mode {
	out := make([]Mode, numModes)
	for i := range out {
		out[i] = Mode(i)
	}
	return out
}

// Collective reports whether the mode's data operations are collective:
// every member of the opening group must participate in each operation.
func (m Mode) Collective() bool {
	switch m {
	case MRecord, MGlobal, MSync:
		return true
	}
	return false
}

// SharedPointer reports whether all processes share a single file pointer.
func (m Mode) SharedPointer() bool {
	switch m {
	case MGlobal, MSync, MLog:
		return true
	}
	return false
}

// Atomic reports whether PFS preserves request atomicity in this mode
// (requiring token serialization on concurrent access).
func (m Mode) Atomic() bool {
	switch m {
	case MUnix, MLog, MSync, MGlobal:
		return true
	}
	return false
}

// FixedRecord reports whether requests must be fixed-size records.
func (m Mode) FixedRecord() bool { return m == MRecord }
