package pfs

import (
	"sort"
	"time"

	"paragonio/internal/sim"
)

// UtilSample is one periodic snapshot of the file system's servers — the
// second record stream Pablo-style instrumentation carries beside I/O
// events. It exposes the mechanisms the paper's results hinge on: token
// queue depth (the M_UNIX serialization of version B's seeks) and I/O
// node busy time.
type UtilSample struct {
	T time.Duration
	// IONodeBusy is each array's cumulative busy time at the sample.
	IONodeBusy []time.Duration
	// IONodeQueue is each I/O node's instantaneous request queue length.
	IONodeQueue []int
	// MetaQueue is the metadata service's instantaneous queue length.
	MetaQueue int
	// TokenQueue is the summed instantaneous queue length across all
	// file atomicity tokens.
	TokenQueue int
	// CacheDirty is each I/O node's instantaneous dirty-block count (the
	// write-behind queue depth). Nil when caching is disabled.
	CacheDirty []int
	// CacheHits and CacheMisses are the cumulative block-lookup totals
	// summed across all I/O-node caches at the sample (0 when caching is
	// disabled).
	CacheHits, CacheMisses uint64
	// ClientHits and ClientMisses are the client tier's cumulative
	// block-lookup totals at the sample (0 when the tier is disabled).
	ClientHits, ClientMisses uint64
	// ClientRecalls and ClientStaleAverted are the client tier's
	// cumulative coherence counters at the sample: lease recalls
	// delivered, and recalled blocks that were actually resident (stale
	// reads averted).
	ClientRecalls, ClientStaleAverted uint64
}

// Sampler periodically snapshots a file system from inside the
// simulation. It stops itself when it is the only live process left, so
// it extends the run by at most one interval past the application's end.
type Sampler struct {
	fs       *FileSystem
	interval time.Duration
	samples  []UtilSample
}

// NewSampler installs a sampling process on the file system's kernel.
// interval must be positive. Call before Kernel.Run.
func NewSampler(fs *FileSystem, interval time.Duration) *Sampler {
	if interval <= 0 {
		panic("pfs: sampler interval must be positive")
	}
	s := &Sampler{fs: fs, interval: interval}
	// Samples read state across every I/O lane (array busy time, queue
	// lengths, cache dirty counts). Registering the interval as a fence
	// makes each sampling instant dispatch sequentially, outside any sync
	// window, so the snapshot observes exactly the state a sequential
	// kernel would show.
	fs.k.FenceEvery(interval)
	fs.k.Spawn("pfs-sampler", func(p *sim.Proc) {
		for {
			// Last one standing: the application is done.
			if fs.k.LiveProcs() <= 1 {
				return
			}
			p.Wait(interval)
			s.take(p.Now())
		}
	})
	return s
}

// take records one snapshot.
func (s *Sampler) take(now time.Duration) {
	sample := UtilSample{
		T:           now,
		IONodeBusy:  make([]time.Duration, len(s.fs.ios)),
		IONodeQueue: make([]int, len(s.fs.ios)),
		MetaQueue:   s.fs.meta.QueueLen(),
	}
	if s.fs.Caching() {
		sample.CacheDirty = make([]int, len(s.fs.ios))
	}
	for i, io := range s.fs.ios {
		sample.IONodeBusy[i] = io.array.Stats().Busy
		sample.IONodeQueue[i] = io.res.QueueLen()
		if io.cache != nil {
			cs := io.cache.Stats()
			sample.CacheDirty[i] = cs.Dirty
			sample.CacheHits += cs.Hits
			sample.CacheMisses += cs.Misses
		}
	}
	if s.fs.client != nil {
		cs := s.fs.client.Stats()
		sample.ClientHits = cs.Hits
		sample.ClientMisses = cs.Misses
		sample.ClientRecalls = cs.Recalls
		sample.ClientStaleAverted = cs.StaleAverted
	}
	// Deterministic iteration for reproducible traces: sum over sorted
	// file names.
	names := make([]string, 0, len(s.fs.files))
	for name := range s.fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sample.TokenQueue += s.fs.files[name].token.QueueLen()
	}
	s.samples = append(s.samples, sample)
}

// Samples returns the collected snapshots in time order.
func (s *Sampler) Samples() []UtilSample {
	return append([]UtilSample(nil), s.samples...)
}

// MaxTokenQueue returns the deepest token queue observed.
func (s *Sampler) MaxTokenQueue() int {
	var m int
	for _, sm := range s.samples {
		if sm.TokenQueue > m {
			m = sm.TokenQueue
		}
	}
	return m
}

// MaxMetaQueue returns the deepest metadata queue observed.
func (s *Sampler) MaxMetaQueue() int {
	var m int
	for _, sm := range s.samples {
		if sm.MetaQueue > m {
			m = sm.MetaQueue
		}
	}
	return m
}

// MaxCacheDirty returns the deepest per-I/O-node dirty-block queue
// observed across all samples (0 when caching is disabled).
func (s *Sampler) MaxCacheDirty() int {
	var m int
	for _, sm := range s.samples {
		for _, d := range sm.CacheDirty {
			if d > m {
				m = d
			}
		}
	}
	return m
}
