package core

import (
	"strings"
	"testing"
	"time"

	"paragonio/internal/disk"
	"paragonio/internal/mesh"
	"paragonio/internal/pablo"
	"paragonio/internal/pfs"
	"paragonio/internal/workload"
)

func TestNewPlatformDefaults(t *testing.T) {
	p, err := NewPlatform(Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.Machine.Nodes != 4 {
		t.Fatalf("nodes = %d", p.Machine.Nodes)
	}
	cfg := p.Machine.FS.Config()
	if cfg.IONodes != 16 || cfg.StripeUnit != 64*1024 {
		t.Fatalf("default PFS config: %+v", cfg)
	}
	if p.Machine.Mesh.Nodes() != 512 {
		t.Fatalf("default mesh nodes = %d", p.Machine.Mesh.Nodes())
	}
}

func TestNewPlatformValidation(t *testing.T) {
	if _, err := NewPlatform(Config{Nodes: 0}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	badMesh := mesh.Config{Rows: 0}
	if _, err := NewPlatform(Config{Nodes: 1, Mesh: &badMesh}); err == nil {
		t.Fatal("bad mesh accepted")
	}
	badDisk := disk.DefaultParams()
	badDisk.DataDisks = 0
	if _, err := NewPlatform(Config{Nodes: 1, Disk: &badDisk}); err == nil {
		t.Fatal("bad disk accepted")
	}
	badCosts := pfs.DefaultCosts()
	badCosts.Open = -time.Second
	if _, err := NewPlatform(Config{Nodes: 1, Costs: &badCosts}); err == nil {
		t.Fatal("bad costs accepted")
	}
}

func TestNewPlatformOverrides(t *testing.T) {
	p, err := NewPlatform(Config{Nodes: 2, IONodes: 4, StripeUnit: 1024})
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Machine.FS.Config()
	if cfg.IONodes != 4 || cfg.StripeUnit != 1024 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
}

func TestRunCapturesResult(t *testing.T) {
	res, err := Run(Config{Nodes: 2, Seed: 1}, "demo", "v1",
		func(m *workload.Machine, seed int64) error {
			m.FS.CreateFile("in", 1<<20)
			m.SpawnNodes(seed, func(n *workload.Node) {
				if n.ID == 0 {
					m.BeginPhase("only")
				}
				h, err := m.FS.Open(n.P, n.ID, "in", pfs.MUnix)
				if err != nil {
					t.Error(err)
					return
				}
				h.Read(n.P, 4096)
				h.Close(n.P)
			})
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "demo" || res.Version != "v1" || res.Nodes != 2 {
		t.Fatalf("metadata: %+v", res)
	}
	if res.Exec <= 0 {
		t.Fatal("no virtual time")
	}
	if res.Trace.Len() != 6 { // 2 x (open, read, close)
		t.Fatalf("trace has %d events", res.Trace.Len())
	}
	if len(res.IONodes) != 16 {
		t.Fatalf("io node stats = %d", len(res.IONodes))
	}
	if len(res.Phases) != 1 {
		t.Fatalf("phases = %d", len(res.Phases))
	}
	if res.IOTime() <= 0 {
		t.Fatal("IOTime not positive")
	}
	if res.IOPercent() <= 0 || res.IOPercent() > 100 {
		t.Fatalf("IOPercent = %g", res.IOPercent())
	}
}

func TestRunPropagatesScriptError(t *testing.T) {
	_, err := Run(Config{Nodes: 1}, "demo", "v1",
		func(m *workload.Machine, seed int64) error {
			return pfs.ErrBadSize
		})
	if err == nil {
		t.Fatal("script error swallowed")
	}
}

func TestRunReportsDeadlock(t *testing.T) {
	_, err := Run(Config{Nodes: 2}, "demo", "v1",
		func(m *workload.Machine, seed int64) error {
			c := m.NewCollective("half", 2)
			m.SpawnNodes(seed, func(n *workload.Node) {
				if n.ID == 0 {
					c.Barrier(n) // node 1 never arrives
				}
			})
			return nil
		})
	if err == nil {
		t.Fatal("deadlock not reported")
	}
}

func TestIOPercentZeroGuards(t *testing.T) {
	r := &Result{Exec: 0, Nodes: 0, Trace: pablo.NewTrace()}
	if r.IOPercent() != 0 {
		t.Fatal("IOPercent on empty result")
	}
}

func TestRunWithSampler(t *testing.T) {
	res, err := Run(Config{Nodes: 4, Seed: 1, SampleInterval: 100 * time.Millisecond},
		"demo", "v1", func(m *workload.Machine, seed int64) error {
			m.FS.CreateFile("f", 4<<20)
			m.SpawnNodes(seed, func(n *workload.Node) {
				h, _ := m.FS.Open(n.P, n.ID, "f", pfs.MUnix)
				for i := 0; i < 10; i++ {
					h.Read(n.P, 65536)
				}
				h.Close(n.P)
			})
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no utilization samples collected")
	}
	if res.Samples[0].T <= 0 {
		t.Fatal("first sample at non-positive time")
	}
}

// TestLaneSplit pins how a requested shard count maps onto a topology:
// I/O lanes first (one per I/O node), surplus to compute lanes (one per
// compute node), the rest clamped.
func TestLaneSplit(t *testing.T) {
	cases := []struct {
		shards, ioNodes, nodes int
		wantIO, wantCompute    int
	}{
		{0, 16, 128, 0, 0},
		{1, 16, 128, 0, 0},
		{2, 16, 128, 2, 0},
		{16, 16, 128, 16, 0},
		{20, 16, 128, 16, 4},
		{200, 16, 128, 16, 128},
		{3, 1, 128, 1, 2},
		{300, 256, 256, 256, 44},
	}
	for _, tc := range cases {
		io, compute := LaneSplit(tc.shards, tc.ioNodes, tc.nodes)
		if io != tc.wantIO || compute != tc.wantCompute {
			t.Errorf("LaneSplit(%d, %d, %d) = (%d, %d), want (%d, %d)",
				tc.shards, tc.ioNodes, tc.nodes, io, compute, tc.wantIO, tc.wantCompute)
		}
	}
}

// TestShardNotice pins that clamps are surfaced and fits are silent.
func TestShardNotice(t *testing.T) {
	if n := ShardNotice(16, 16, 128); n != "" {
		t.Errorf("in-range request noticed: %q", n)
	}
	if n := ShardNotice(144, 16, 128); n != "" {
		t.Errorf("exact-fit request noticed: %q", n)
	}
	n := ShardNotice(200, 16, 128)
	if n == "" {
		t.Fatal("clamped request produced no notice")
	}
	for _, want := range []string{"200", "144", "16 I/O lanes", "128 compute lanes"} {
		if !strings.Contains(n, want) {
			t.Errorf("notice %q missing %q", n, want)
		}
	}
}
