// Package core is the public façade of the reproduction: it assembles
// the simulated platform (kernel + mesh + PFS) with Pablo tracing, runs
// an application script on it, and returns the captured trace together
// with run metadata — the exact workflow of the paper's methodology
// (instrument, execute, analyze).
package core

import (
	"context"
	"fmt"
	"time"

	"paragonio/internal/analysis"
	"paragonio/internal/cache"
	"paragonio/internal/disk"
	"paragonio/internal/faults"
	"paragonio/internal/mesh"
	"paragonio/internal/pablo"
	"paragonio/internal/pfs"
	"paragonio/internal/sim"
	"paragonio/internal/workload"
)

// Config selects the platform configuration for a run. The zero value of
// each field means "the paper's machine" (Caltech 512-node Paragon,
// 16 I/O nodes, 64 KB stripes, default costs).
type Config struct {
	Nodes int          // compute nodes the application uses (required)
	Mesh  *mesh.Config // interconnect override
	Disk  *disk.Params // RAID-3 array override
	Costs *pfs.Costs   // file system software cost override
	// IONodes overrides the number of I/O nodes (default 16).
	IONodes int
	// StripeUnit overrides the PFS stripe unit (default 64 KB).
	StripeUnit int64
	// Seed drives all workload randomness; runs are bit-reproducible
	// for a given (Config, application) pair.
	Seed int64
	// SampleInterval, when positive, installs a utilization sampler
	// that snapshots the file system's queues and disk busy time at
	// this virtual period (Result.Samples).
	SampleInterval time.Duration
	// Tiers configures the what-if storage hierarchy (I/O-node buffer
	// cache, lease-coherent client tier, and/or host-side log tier; see
	// cache.Tiers). The paper's machine had none of them, so canonical
	// runs leave it zero and stay bit-identical to the golden digests.
	Tiers cache.Tiers
	// Faults is the injected fault plan (degraded RAID-3 arrays, I/O-node
	// crashes with failover, stragglers, flapping clients; see
	// internal/faults). Faults are scheduled DES events, so degraded runs
	// are exactly as deterministic as healthy ones; the zero value keeps
	// the machine healthy and the golden digests untouched.
	Faults faults.Plan
	// Shards, when >= 2, shards the simulation kernel into that many
	// conservative lanes: up to one I/O lane per I/O node executing sync
	// windows on parallel OS threads, with any surplus becoming compute
	// lanes that partition process wakeups off the shared event heap (see
	// LaneSplit). The merge is deterministic: traces are bit-identical
	// for every shard count and window width. 0 or 1 (the default) runs
	// today's single-threaded kernel.
	Shards int
	// Window overrides the sync-window width of a sharded kernel (see
	// sim.Kernel.SetWindow). 0, the default, uses the full lookahead;
	// widths above the lookahead are clamped to it. Results never depend
	// on it — it is a performance knob and a test surface.
	Window time.Duration
}

// LaneSplit resolves a requested shard count against a topology: I/O
// lanes are capped at one per I/O node, the surplus becomes compute
// lanes capped at one per compute node. A request larger than
// ioNodes+nodes clamps; callers that want to surface the clamp print
// ShardNotice.
func LaneSplit(shards, ioNodes, nodes int) (io, compute int) {
	if shards < 2 {
		return 0, 0
	}
	io = shards
	if io > ioNodes {
		io = ioNodes
	}
	compute = shards - io
	if compute > nodes {
		compute = nodes
	}
	return io, compute
}

// ShardNotice returns a one-line notice when the requested shard count
// exceeds the lanes the topology can use ("" when it fits). CLIs print
// it so a clamp is never silent.
func ShardNotice(requested, ioNodes, nodes int) string {
	io, compute := LaneSplit(requested, ioNodes, nodes)
	if requested < 2 || io+compute >= requested {
		return ""
	}
	return fmt.Sprintf("notice: -shards %d clamped to %d (%d I/O lanes for %d I/O nodes + %d compute lanes for %d nodes)",
		requested, io+compute, io, ioNodes, compute, nodes)
}

// Platform is an assembled simulated machine with tracing attached.
type Platform struct {
	Machine *workload.Machine
	Trace   *pablo.Trace
}

// NewPlatform builds a traced platform from cfg.
func NewPlatform(cfg Config) (*Platform, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("core: Config.Nodes must be positive, got %d", cfg.Nodes)
	}
	mcfg := mesh.DefaultConfig()
	if cfg.Mesh != nil {
		mcfg = *cfg.Mesh
	}
	m, err := mesh.New(mcfg)
	if err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	tr := pablo.NewTrace()
	fcfg := pfs.DefaultConfig(m)
	if cfg.Disk != nil {
		fcfg.Disk = *cfg.Disk
	}
	if cfg.Costs != nil {
		fcfg.Costs = *cfg.Costs
	}
	if cfg.IONodes != 0 {
		fcfg.IONodes = cfg.IONodes
	}
	if cfg.StripeUnit != 0 {
		fcfg.StripeUnit = cfg.StripeUnit
	}
	fcfg.Tiers = cfg.Tiers
	fcfg.Faults = cfg.Faults
	if io, compute := LaneSplit(cfg.Shards, fcfg.IONodes, cfg.Nodes); io+compute >= 2 {
		if la := m.MinLatency(); la > 0 {
			if err := k.ConfigureLanes(io, compute, la); err != nil {
				return nil, err
			}
			k.SetWindow(cfg.Window)
		}
	}
	fs, err := pfs.New(k, fcfg, tr)
	if err != nil {
		return nil, err
	}
	wm, err := workload.NewMachine(k, m, fs, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	return &Platform{Machine: wm, Trace: tr}, nil
}

// Result captures one application execution: wall-clock (virtual)
// execution time, the full Pablo trace, per-phase windows, and storage-
// layer statistics.
type Result struct {
	App     string
	Version string
	Nodes   int
	Exec    time.Duration
	Trace   *pablo.Trace
	Phases  []analysis.PhaseWindow
	IONodes []disk.Stats
	// Samples holds utilization snapshots when Config.SampleInterval
	// was set (nil otherwise).
	Samples []pfs.UtilSample
	// Cache holds per-I/O-node cache statistics when the I/O-node tier
	// was enabled (nil otherwise).
	Cache []cache.Stats
	// Client holds the client tier's aggregate statistics (the zero
	// value when the tier was disabled — Client.Nodes is 0 then).
	Client cache.ClientStats
	// Log holds the host-side log tier's aggregate statistics (the zero
	// value when the tier was disabled — Log.Appends is 0 then).
	Log cache.LogStats
	// Rerouted counts requests the fault plane's failover path redirected
	// away from a crashed I/O node (0 on a healthy run).
	Rerouted uint64
}

// CacheTotals aggregates the per-I/O-node cache statistics (zero when
// caching was disabled).
func (r *Result) CacheTotals() cache.Stats {
	var t cache.Stats
	for _, s := range r.Cache {
		t.Add(s)
	}
	return t
}

// IOTime returns the summed duration of all I/O operations across nodes.
func (r *Result) IOTime() time.Duration { return r.Trace.TotalIOTime() }

// IOPercent returns summed I/O time as a percentage of summed node time
// (Exec x Nodes) — the accounting behind the paper's Table 3.
func (r *Result) IOPercent() float64 {
	if r.Exec <= 0 || r.Nodes <= 0 {
		return 0
	}
	return 100 * float64(r.IOTime()) / (float64(r.Exec) * float64(r.Nodes))
}

// Run executes script on a freshly built platform and packages the
// Result. The script receives the machine and must spawn its node
// processes (typically via Machine.SpawnNodes); Run drives the kernel to
// completion and snapshots the outcome.
func Run(cfg Config, app, version string, script func(m *workload.Machine, seed int64) error) (*Result, error) {
	return RunContext(context.Background(), cfg, app, version, script)
}

// RunContext is Run with cancellation: the simulation kernel polls
// ctx.Err between dispatch batches and, when the context is cancelled or
// times out, unwinds every simulated process and returns the context's
// error (errors.Is-matchable against context.Canceled /
// context.DeadlineExceeded). A background context adds no polling, so
// canonical runs — and their golden trace digests — are untouched.
func RunContext(ctx context.Context, cfg Config, app, version string, script func(m *workload.Machine, seed int64) error) (*Result, error) {
	p, err := NewPlatform(cfg)
	if err != nil {
		return nil, err
	}
	if ctx != nil && ctx.Done() != nil {
		p.Machine.K.SetCancel(ctx.Err)
	}
	var sampler *pfs.Sampler
	if cfg.SampleInterval > 0 {
		sampler = pfs.NewSampler(p.Machine.FS, cfg.SampleInterval)
	}
	if err := script(p.Machine, cfg.Seed); err != nil {
		return nil, err
	}
	if err := p.Machine.K.Run(); err != nil {
		return nil, fmt.Errorf("core: %s/%s: %w", app, version, err)
	}
	p.Machine.EndPhases()
	res := &Result{
		App:      app,
		Version:  version,
		Nodes:    cfg.Nodes,
		Exec:     p.Machine.K.Now(),
		Trace:    p.Trace,
		Phases:   p.Machine.Phases(),
		IONodes:  p.Machine.FS.IONodeStats(),
		Cache:    p.Machine.FS.CacheStats(),
		Client:   p.Machine.FS.ClientStats(),
		Log:      p.Machine.FS.LogStats(),
		Rerouted: p.Machine.FS.Rerouted(),
	}
	if sampler != nil {
		res.Samples = sampler.Samples()
	}
	return res, nil
}
