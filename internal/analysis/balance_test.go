package analysis

import (
	"testing"
	"time"

	"paragonio/internal/disk"
)

func TestIONodeBalanceEmpty(t *testing.T) {
	b := IONodeBalance(nil)
	if b.IONodes != 0 || b.TotalBytes != 0 || b.MaxOverMean != 0 {
		t.Fatalf("empty balance = %+v", b)
	}
}

func TestIONodeBalancePerfect(t *testing.T) {
	s := make([]disk.Stats, 4)
	for i := range s {
		s[i] = disk.Stats{Requests: 10, BytesMoved: 1000, Busy: time.Second}
	}
	b := IONodeBalance(s)
	if b.IONodes != 4 || b.TotalBytes != 4000 || b.TotalBusy != 4*time.Second {
		t.Fatalf("totals: %+v", b)
	}
	if b.MaxOverMean != 1 {
		t.Fatalf("MaxOverMean = %g, want 1", b.MaxOverMean)
	}
	if b.BytesCV != 0 {
		t.Fatalf("BytesCV = %g, want 0", b.BytesCV)
	}
	if b.Idle != 0 {
		t.Fatalf("Idle = %d", b.Idle)
	}
}

func TestIONodeBalanceHotSpot(t *testing.T) {
	s := []disk.Stats{
		{Requests: 100, BytesMoved: 10000, Busy: 9 * time.Second},
		{Requests: 1, BytesMoved: 100, Busy: time.Second},
		{}, // idle
		{},
	}
	b := IONodeBalance(s)
	if b.Idle != 2 {
		t.Fatalf("Idle = %d, want 2", b.Idle)
	}
	// mean busy = 2.5s, max 9s -> 3.6.
	if b.MaxOverMean < 3.5 || b.MaxOverMean > 3.7 {
		t.Fatalf("MaxOverMean = %g", b.MaxOverMean)
	}
	if b.BytesCV <= 1 {
		t.Fatalf("BytesCV = %g, want > 1 for a hot spot", b.BytesCV)
	}
}
