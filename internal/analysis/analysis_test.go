package analysis

import (
	"math"
	"testing"
	"time"

	"paragonio/internal/pablo"
)

func mkEv(op pablo.Op, size int64, start, dur time.Duration) pablo.Event {
	return pablo.Event{Node: 0, Op: op, File: "f", Size: size, Start: start, Duration: dur}
}

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSizeCDFOf(t *testing.T) {
	tr := pablo.NewTrace()
	// 97 small reads of 1KB, 3 big reads of 128KB (paper's version A shape).
	for i := 0; i < 97; i++ {
		tr.Record(mkEv(pablo.OpRead, 1024, 0, time.Millisecond))
	}
	for i := 0; i < 3; i++ {
		tr.Record(mkEv(pablo.OpRead, 131072, 0, time.Millisecond))
	}
	tr.Record(mkEv(pablo.OpRead, 0, 0, time.Millisecond)) // EOF read excluded
	c := SizeCDFOf(tr, pablo.OpRead)
	if got := c.FracOpsBelow(2048); !near(got, 0.97) {
		t.Fatalf("FracOpsBelow(2K) = %g", got)
	}
	dataSmall := float64(97*1024) / float64(97*1024+3*131072)
	if got := c.FracDataBelow(2048); !near(got, dataSmall) {
		t.Fatalf("FracDataBelow(2K) = %g, want %g", got, dataSmall)
	}
	if got := c.FracDataBelow(131072); got != 1 {
		t.Fatalf("FracDataBelow(max) = %g", got)
	}
}

func TestSizeCDFEmptyOp(t *testing.T) {
	tr := pablo.NewTrace()
	tr.Record(mkEv(pablo.OpWrite, 100, 0, time.Millisecond))
	c := SizeCDFOf(tr, pablo.OpRead)
	if !c.Ops.Empty() || !c.Data.Empty() {
		t.Fatal("CDF of absent op should be empty")
	}
}

func TestSizeTimeline(t *testing.T) {
	tr := pablo.NewTrace()
	tr.Record(mkEv(pablo.OpRead, 100, time.Second, time.Millisecond))
	tr.Record(mkEv(pablo.OpRead, 0, 2*time.Second, time.Millisecond)) // skipped
	tr.Record(mkEv(pablo.OpRead, 300, 3*time.Second, time.Millisecond))
	pts := SizeTimeline(tr, pablo.OpRead)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].T != time.Second || pts[0].V != 100 {
		t.Fatalf("pts[0] = %+v", pts[0])
	}
	if pts[1].T != 3*time.Second || pts[1].V != 300 {
		t.Fatalf("pts[1] = %+v", pts[1])
	}
}

func TestDurationTimeline(t *testing.T) {
	tr := pablo.NewTrace()
	tr.Record(mkEv(pablo.OpSeek, 0, time.Second, 8*time.Second))
	pts := DurationTimeline(tr, pablo.OpSeek)
	if len(pts) != 1 || !near(pts[0].V, 8) {
		t.Fatalf("pts = %+v", pts)
	}
}

func TestIOTimeShares(t *testing.T) {
	tr := pablo.NewTrace()
	tr.Record(mkEv(pablo.OpOpen, 0, 0, 54*time.Second))
	tr.Record(mkEv(pablo.OpRead, 100, 0, 43*time.Second))
	tr.Record(mkEv(pablo.OpSeek, 0, 0, time.Second))
	tr.Record(mkEv(pablo.OpWrite, 10, 0, time.Second))
	tr.Record(mkEv(pablo.OpClose, 0, 0, time.Second))
	rows := IOTimeShares(tr)
	byOp := map[pablo.Op]OpShare{}
	var sum float64
	for _, r := range rows {
		byOp[r.Op] = r
		sum += r.Percent
	}
	if !near(sum, 100) {
		t.Fatalf("shares sum to %g", sum)
	}
	if !near(byOp[pablo.OpOpen].Percent, 54) || !near(byOp[pablo.OpRead].Percent, 43) {
		t.Fatalf("shares: open=%g read=%g", byOp[pablo.OpOpen].Percent, byOp[pablo.OpRead].Percent)
	}
	if byOp[pablo.OpGopen].Percent != 0 || byOp[pablo.OpGopen].Count != 0 {
		t.Fatalf("gopen row should be zero: %+v", byOp[pablo.OpGopen])
	}
	if len(rows) != len(pablo.Ops()) {
		t.Fatalf("rows = %d, want one per op", len(rows))
	}
}

func TestIOTimeSharesEmptyTrace(t *testing.T) {
	rows := IOTimeShares(pablo.NewTrace())
	for _, r := range rows {
		if r.Percent != 0 {
			t.Fatalf("empty trace row %+v", r)
		}
	}
}

func TestExecTimeShares(t *testing.T) {
	tr := pablo.NewTrace()
	tr.Record(mkEv(pablo.OpRead, 10, 0, 2*time.Second))
	tr.Record(mkEv(pablo.OpWrite, 10, 0, time.Second))
	rows, all := ExecTimeShares(tr, 100*time.Second)
	byOp := map[pablo.Op]OpShare{}
	for _, r := range rows {
		byOp[r.Op] = r
	}
	if !near(byOp[pablo.OpRead].Percent, 2) || !near(byOp[pablo.OpWrite].Percent, 1) {
		t.Fatalf("rows: %+v", byOp)
	}
	if !near(all, 3) {
		t.Fatalf("allIO = %g", all)
	}
}

func TestExecTimeSharesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExecTimeShares(pablo.NewTrace(), 0)
}

func TestSliceByPhase(t *testing.T) {
	tr := pablo.NewTrace()
	for i := 0; i < 10; i++ {
		tr.Record(mkEv(pablo.OpRead, 10, time.Duration(i)*time.Second, time.Millisecond))
	}
	w := PhaseWindow{Name: "mid", Start: 3 * time.Second, End: 6 * time.Second}
	sub := SliceByPhase(tr, w)
	if sub.Len() != 3 {
		t.Fatalf("phase slice has %d events", sub.Len())
	}
	for _, ev := range sub.Events() {
		if ev.Start < w.Start || ev.Start >= w.End {
			t.Fatalf("event at %v outside window", ev.Start)
		}
	}
}

func TestBytesByOpAndRequestSizes(t *testing.T) {
	tr := pablo.NewTrace()
	tr.Record(mkEv(pablo.OpWrite, 100, 0, 0))
	tr.Record(mkEv(pablo.OpWrite, 100, 0, 0))
	tr.Record(mkEv(pablo.OpWrite, 300, 0, 0))
	if got := BytesByOp(tr, pablo.OpWrite); got != 500 {
		t.Fatalf("BytesByOp = %d", got)
	}
	sizes := RequestSizes(tr, pablo.OpWrite)
	if sizes[100] != 2 || sizes[300] != 1 {
		t.Fatalf("RequestSizes = %v", sizes)
	}
	ds := DistinctSizes(tr, pablo.OpWrite)
	if len(ds) != 2 || ds[0] != 100 || ds[1] != 300 {
		t.Fatalf("DistinctSizes = %v", ds)
	}
}

func TestBurstiness(t *testing.T) {
	regular := pablo.NewTrace()
	for i := 0; i < 20; i++ {
		regular.Record(mkEv(pablo.OpWrite, 10, time.Duration(i)*time.Second, 0))
	}
	bursty := pablo.NewTrace()
	// Five checkpoints of 4 back-to-back writes, far apart.
	for cp := 0; cp < 5; cp++ {
		base := time.Duration(cp) * 100 * time.Second
		for j := 0; j < 4; j++ {
			bursty.Record(mkEv(pablo.OpWrite, 10, base+time.Duration(j)*time.Millisecond, 0))
		}
	}
	if b, r := Burstiness(bursty, pablo.OpWrite), Burstiness(regular, pablo.OpWrite); b <= r {
		t.Fatalf("bursty CV %g <= regular CV %g", b, r)
	}
	if got := Burstiness(pablo.NewTrace(), pablo.OpWrite); got != 0 {
		t.Fatalf("empty burstiness = %g", got)
	}
}

func TestPredictability(t *testing.T) {
	// A steady stream: near-perfect linear growth.
	steady := pablo.NewTrace()
	for i := 0; i < 100; i++ {
		steady.Record(mkEv(pablo.OpWrite, 100, time.Duration(i)*time.Second, time.Millisecond))
	}
	fit := Predictability(steady, pablo.OpWrite)
	if fit.R2 < 0.99 {
		t.Fatalf("steady stream R2 = %g, want ~1", fit.R2)
	}
	if fit.Slope < 99 || fit.Slope > 101 {
		t.Fatalf("steady slope = %g B/s, want ~100", fit.Slope)
	}
	// A bursty stream: everything moves in two spikes.
	bursty := pablo.NewTrace()
	for i := 0; i < 50; i++ {
		bursty.Record(mkEv(pablo.OpWrite, 100, time.Second, time.Millisecond))
	}
	for i := 0; i < 50; i++ {
		bursty.Record(mkEv(pablo.OpWrite, 100, 99*time.Second, time.Millisecond))
	}
	if b := Predictability(bursty, pablo.OpWrite); b.R2 >= fit.R2 {
		t.Fatalf("bursty R2 %g not below steady %g", b.R2, fit.R2)
	}
	// Degenerate inputs.
	if z := Predictability(pablo.NewTrace(), pablo.OpWrite); z.R2 != 0 || z.Slope != 0 {
		t.Fatalf("empty trace fit = %+v", z)
	}
}
