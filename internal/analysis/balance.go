package analysis

import (
	"time"

	"paragonio/internal/disk"
	"paragonio/internal/stats"
)

// Balance summarizes how evenly work spread across the I/O nodes — the
// quantity striping exists to maximize.
type Balance struct {
	IONodes    int
	TotalBytes int64
	TotalBusy  time.Duration
	// MaxOverMean is the hot-spot factor: busiest node's busy time over
	// the mean (1.0 = perfectly balanced).
	MaxOverMean float64
	// BytesCV is the coefficient of variation of per-node bytes moved.
	BytesCV float64
	// Idle is the number of I/O nodes that served no requests.
	Idle int
}

// IONodeBalance computes balance metrics from per-I/O-node disk stats
// (core.Result.IONodes). An empty slice yields the zero Balance.
func IONodeBalance(s []disk.Stats) Balance {
	b := Balance{IONodes: len(s)}
	if len(s) == 0 {
		return b
	}
	busy := make([]float64, len(s))
	bytes := make([]float64, len(s))
	var maxBusy float64
	for i, st := range s {
		busy[i] = st.Busy.Seconds()
		bytes[i] = float64(st.BytesMoved)
		b.TotalBytes += st.BytesMoved
		b.TotalBusy += st.Busy
		if busy[i] > maxBusy {
			maxBusy = busy[i]
		}
		if st.Requests == 0 {
			b.Idle++
		}
	}
	meanBusy := b.TotalBusy.Seconds() / float64(len(s))
	if meanBusy > 0 {
		b.MaxOverMean = maxBusy / meanBusy
	}
	b.BytesCV = stats.CV(bytes)
	return b
}
