package analysis

import (
	"fmt"
	"sort"
	"time"

	"paragonio/internal/pablo"
)

// Category is the Miller & Katz high-level I/O classification the paper
// builds on (section 2): compulsory, checkpoint, and data-staging I/O —
// extended with the periodic-output and result classes the two studied
// applications exhibit.
type Category int

const (
	// CompulsoryInput: read-only files consumed at the start of the run
	// (problem definitions, restart state).
	CompulsoryInput Category = iota
	// DataStaging: files written and then read back within the run —
	// ESCAT's out-of-core quadrature scratch files.
	DataStaging
	// Checkpointing: write-only files rewritten periodically (the same
	// region dumped again and again) — PRISM's checkpoint file.
	Checkpointing
	// PeriodicOutput: write-only append streams spread through the whole
	// run — measurement, history and statistics files.
	PeriodicOutput
	// ResultOutput: write-only files produced at the end of the run.
	ResultOutput
	// Other: activity matching none of the above.
	Other
)

var categoryNames = map[Category]string{
	CompulsoryInput: "compulsory-input",
	DataStaging:     "data-staging",
	Checkpointing:   "checkpointing",
	PeriodicOutput:  "periodic-output",
	ResultOutput:    "result-output",
	Other:           "other",
}

// String returns the category slug.
func (c Category) String() string { return categoryNames[c] }

// FileClass is one file's classification with its supporting evidence.
type FileClass struct {
	File         string
	Category     Category
	Why          string
	Reads        int
	Writes       int
	BytesRead    int64
	BytesWritten int64
	IOTime       time.Duration
}

// ClassifyTaxonomy assigns each file in the trace to a high-level I/O
// class, using the run's span for early/late judgments. Files are
// returned sorted by name.
func ClassifyTaxonomy(tr *pablo.Trace, exec time.Duration) []FileClass {
	if exec <= 0 {
		if _, end := tr.Span(); end > 0 {
			exec = end
		} else {
			exec = 1
		}
	}
	type acc struct {
		fc          FileClass
		readStarts  []time.Duration
		writeStarts []time.Duration
		writeOffs   map[int64]int
		overwrites  int
	}
	byFile := map[string]*acc{}
	for _, ev := range tr.Events() {
		if ev.File == "" {
			continue
		}
		a := byFile[ev.File]
		if a == nil {
			a = &acc{fc: FileClass{File: ev.File}, writeOffs: map[int64]int{}}
			byFile[ev.File] = a
		}
		a.fc.IOTime += ev.Duration
		switch ev.Op {
		case pablo.OpRead:
			if ev.Size > 0 {
				a.fc.Reads++
				a.fc.BytesRead += ev.Size
				a.readStarts = append(a.readStarts, ev.Start)
			}
		case pablo.OpWrite:
			if ev.Size > 0 {
				a.fc.Writes++
				a.fc.BytesWritten += ev.Size
				a.writeStarts = append(a.writeStarts, ev.Start)
				a.writeOffs[ev.Offset]++
				if a.writeOffs[ev.Offset] > 1 {
					a.overwrites++
				}
			}
		}
	}
	median := func(ts []time.Duration) time.Duration {
		if len(ts) == 0 {
			return 0
		}
		s := append([]time.Duration(nil), ts...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[len(s)/2]
	}
	span := func(ts []time.Duration) time.Duration {
		if len(ts) < 2 {
			return 0
		}
		s := append([]time.Duration(nil), ts...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[len(s)-1] - s[0]
	}
	var out []FileClass
	for _, a := range byFile {
		fc := a.fc
		switch {
		case fc.Reads > 0 && fc.Writes > 0:
			fc.Category = DataStaging
			fc.Why = fmt.Sprintf("written (%d ops) and read back (%d ops) within the run",
				fc.Writes, fc.Reads)
		case fc.Reads > 0:
			if median(a.readStarts) < exec*35/100 {
				fc.Category = CompulsoryInput
				fc.Why = "read-only, consumed in the first third of the run"
			} else {
				fc.Category = Other
				fc.Why = "read-only, but read late in the run"
			}
		case fc.Writes > 0:
			switch {
			case a.overwrites > 0:
				fc.Category = Checkpointing
				fc.Why = fmt.Sprintf("write-only with %d overwrites of earlier regions (periodic state dumps)",
					a.overwrites)
			case span(a.writeStarts) > exec/2:
				fc.Category = PeriodicOutput
				fc.Why = "write-only append stream spanning most of the run"
			case median(a.writeStarts) > exec/2:
				fc.Category = ResultOutput
				fc.Why = "write-only, produced in the second half of the run"
			default:
				fc.Category = Other
				fc.Why = "write-only early burst"
			}
		default:
			fc.Category = Other
			fc.Why = "metadata-only activity"
		}
		out = append(out, fc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].File < out[j].File })
	return out
}

// TaxonomyTotals aggregates bytes and I/O time per category.
func TaxonomyTotals(classes []FileClass) map[Category]FileClass {
	out := map[Category]FileClass{}
	for _, fc := range classes {
		t := out[fc.Category]
		t.Category = fc.Category
		t.Reads += fc.Reads
		t.Writes += fc.Writes
		t.BytesRead += fc.BytesRead
		t.BytesWritten += fc.BytesWritten
		t.IOTime += fc.IOTime
		out[fc.Category] = t
	}
	return out
}
