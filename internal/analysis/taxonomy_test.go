package analysis

import (
	"testing"
	"time"

	"paragonio/internal/pablo"
)

func taxEv(op pablo.Op, file string, off, size int64, start time.Duration) pablo.Event {
	return pablo.Event{Node: 0, Op: op, File: file, Offset: off, Size: size,
		Start: start, Duration: time.Millisecond}
}

func classOf(t *testing.T, classes []FileClass, file string) FileClass {
	t.Helper()
	for _, fc := range classes {
		if fc.File == file {
			return fc
		}
	}
	t.Fatalf("no class for %s", file)
	return FileClass{}
}

func TestClassifyTaxonomyCategories(t *testing.T) {
	const exec = 1000 * time.Second
	tr := pablo.NewTrace()
	// input: read-only, early.
	for i := 0; i < 10; i++ {
		tr.Record(taxEv(pablo.OpRead, "input", int64(i)*100, 100, time.Duration(i)*time.Second))
	}
	// scratch: written mid-run, read back late -> staging.
	for i := 0; i < 5; i++ {
		tr.Record(taxEv(pablo.OpWrite, "scratch", int64(i)*1000, 1000, 300*time.Second))
		tr.Record(taxEv(pablo.OpRead, "scratch", int64(i)*1000, 1000, 800*time.Second))
	}
	// chk: write-only, same offsets rewritten -> checkpointing.
	for cp := 0; cp < 4; cp++ {
		for r := 0; r < 3; r++ {
			tr.Record(taxEv(pablo.OpWrite, "chk", int64(r)*4096, 4096,
				time.Duration(200+cp*200)*time.Second))
		}
	}
	// log: write-only appends across the whole run -> periodic output.
	for i := 0; i < 20; i++ {
		tr.Record(taxEv(pablo.OpWrite, "log", int64(i)*64, 64, time.Duration(i)*50*time.Second))
	}
	// result: write-only at the end.
	for i := 0; i < 5; i++ {
		tr.Record(taxEv(pablo.OpWrite, "result", int64(i)*2048, 2048, 950*time.Second))
	}
	// lateread: read-only but late -> other.
	tr.Record(taxEv(pablo.OpRead, "lateread", 0, 10, 900*time.Second))
	// metaonly: opens only.
	tr.Record(taxEv(pablo.OpOpen, "metaonly", 0, 0, 0))

	classes := ClassifyTaxonomy(tr, exec)
	want := map[string]Category{
		"input":    CompulsoryInput,
		"scratch":  DataStaging,
		"chk":      Checkpointing,
		"log":      PeriodicOutput,
		"result":   ResultOutput,
		"lateread": Other,
		"metaonly": Other,
	}
	for file, cat := range want {
		if got := classOf(t, classes, file); got.Category != cat {
			t.Errorf("%s classified %s (%s), want %s", file, got.Category, got.Why, cat)
		}
	}
	// Totals conserve bytes.
	totals := TaxonomyTotals(classes)
	var bytes int64
	for _, tc := range totals {
		bytes += tc.BytesRead + tc.BytesWritten
	}
	var expect int64
	for _, ev := range tr.Events() {
		if ev.Op == pablo.OpRead || ev.Op == pablo.OpWrite {
			expect += ev.Size
		}
	}
	if bytes != expect {
		t.Fatalf("totals move %d bytes, want %d", bytes, expect)
	}
}

func TestClassifyTaxonomyZeroExecDerivesSpan(t *testing.T) {
	tr := pablo.NewTrace()
	tr.Record(taxEv(pablo.OpRead, "f", 0, 10, time.Second))
	classes := ClassifyTaxonomy(tr, 0)
	if len(classes) != 1 {
		t.Fatalf("classes = %d", len(classes))
	}
}

func TestClassifyTaxonomySortedByName(t *testing.T) {
	tr := pablo.NewTrace()
	tr.Record(taxEv(pablo.OpRead, "zzz", 0, 10, 0))
	tr.Record(taxEv(pablo.OpRead, "aaa", 0, 10, 0))
	classes := ClassifyTaxonomy(tr, time.Minute)
	if classes[0].File != "aaa" || classes[1].File != "zzz" {
		t.Fatalf("not sorted: %v", classes)
	}
}
