// Package analysis turns Pablo traces into the quantities the paper
// reports: request-size CDFs paired with data-volume CDFs (Figures 2 and
// 7), temporal size/duration series (Figures 3, 4, 5, 8, 9), aggregate
// per-operation I/O time shares (Tables 2 and 5), and percent-of-
// execution-time attributions (Table 3).
package analysis

import (
	"sort"
	"time"

	"paragonio/internal/pablo"
	"paragonio/internal/stats"
)

// SizeCDF pairs the two curves of the paper's CDF figures: the fraction
// of operations of size <= x, and the fraction of transferred data moved
// by operations of size <= x.
type SizeCDF struct {
	Ops  stats.CDF // fraction of requests
	Data stats.CDF // fraction of bytes
}

// SizeCDFOf builds the CDF pair for one operation type (reads or writes).
// Zero-byte operations (EOF reads) are excluded, as Pablo's size
// distributions were over actual transfers.
func SizeCDFOf(t *pablo.Trace, op pablo.Op) SizeCDF {
	var sizes []float64
	for _, ev := range t.ByOp(op) {
		if ev.Size > 0 {
			sizes = append(sizes, float64(ev.Size))
		}
	}
	return SizeCDF{
		Ops:  stats.NewCDF(sizes),
		Data: stats.NewWeightedCDF(sizes, sizes),
	}
}

// FracOpsBelow returns the fraction of operations with size <= s.
func (c SizeCDF) FracOpsBelow(s int64) float64 { return c.Ops.At(float64(s)) }

// FracDataBelow returns the fraction of data moved by operations with
// size <= s.
func (c SizeCDF) FracDataBelow(s int64) float64 { return c.Data.At(float64(s)) }

// TimelinePoint is one mark of a scatter timeline: the event's start
// time and a value (size in bytes, or duration in seconds).
type TimelinePoint struct {
	T    time.Duration
	V    float64
	Node int
}

// SizeTimeline returns (start time, request size) points for one
// operation type — the paper's "read/write size vs execution time"
// scatter plots. Zero-size events are skipped.
func SizeTimeline(t *pablo.Trace, op pablo.Op) []TimelinePoint {
	var out []TimelinePoint
	for _, ev := range t.ByOp(op) {
		if ev.Size > 0 {
			out = append(out, TimelinePoint{T: ev.Start, V: float64(ev.Size), Node: ev.Node})
		}
	}
	return out
}

// DurationTimeline returns (start time, duration in seconds) points for
// one operation type — the paper's "seek duration vs execution time"
// plots.
func DurationTimeline(t *pablo.Trace, op pablo.Op) []TimelinePoint {
	var out []TimelinePoint
	for _, ev := range t.ByOp(op) {
		out = append(out, TimelinePoint{T: ev.Start, V: ev.Duration.Seconds(), Node: ev.Node})
	}
	return out
}

// OpShare is one row of an aggregate table: an operation type's share of
// some time base.
type OpShare struct {
	Op      pablo.Op
	Percent float64
	Count   int
	Total   time.Duration
}

// IOTimeShares computes each operation type's percentage of total I/O
// time (the paper's Tables 2 and 5). Rows appear in the paper's order;
// operation types with no occurrences are included with zero share so
// tables align across versions.
func IOTimeShares(t *pablo.Trace) []OpShare {
	agg := pablo.AggregateByOp(t)
	total := agg.TotalDuration()
	out := make([]OpShare, 0, len(pablo.Ops()))
	for _, op := range pablo.Ops() {
		share := OpShare{Op: op, Count: agg.Count[op], Total: agg.Duration[op]}
		if total > 0 {
			share.Percent = 100 * float64(agg.Duration[op]) / float64(total)
		}
		out = append(out, share)
	}
	return out
}

// ExecTimeShares computes each operation type's percentage of total
// execution time (the paper's Table 3), plus an "All I/O" row encoded as
// the returned total. exec must be positive.
func ExecTimeShares(t *pablo.Trace, exec time.Duration) (rows []OpShare, allIO float64) {
	if exec <= 0 {
		panic("analysis: non-positive execution time")
	}
	agg := pablo.AggregateByOp(t)
	for _, op := range pablo.Ops() {
		rows = append(rows, OpShare{
			Op:      op,
			Count:   agg.Count[op],
			Total:   agg.Duration[op],
			Percent: 100 * float64(agg.Duration[op]) / float64(exec),
		})
	}
	return rows, 100 * float64(agg.TotalDuration()) / float64(exec)
}

// PhaseWindow is a named interval of a run, used to slice traces by
// application phase.
type PhaseWindow struct {
	Name       string
	Start, End time.Duration
}

// SliceByPhase returns the sub-trace of events starting within [Start,
// End) of the given window.
func SliceByPhase(t *pablo.Trace, w PhaseWindow) *pablo.Trace {
	return t.Filter(func(ev pablo.Event) bool {
		return ev.Start >= w.Start && ev.Start < w.End
	})
}

// BytesByOp returns total bytes moved by the given operation type.
func BytesByOp(t *pablo.Trace, op pablo.Op) int64 {
	var n int64
	for _, ev := range t.ByOp(op) {
		n += ev.Size
	}
	return n
}

// RequestSizes returns the sorted distinct request sizes of an operation
// type, with per-size counts — handy for checking populations like "all
// write requests are of the same size".
func RequestSizes(t *pablo.Trace, op pablo.Op) map[int64]int {
	out := make(map[int64]int)
	for _, ev := range t.ByOp(op) {
		if ev.Size > 0 {
			out[ev.Size]++
		}
	}
	return out
}

// DistinctSizes returns the keys of RequestSizes in ascending order.
func DistinctSizes(t *pablo.Trace, op pablo.Op) []int64 {
	m := RequestSizes(t, op)
	out := make([]int64, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Burstiness computes the coefficient of variation of inter-arrival
// times for one operation type — Miller & Katz's "bursty" criterion.
// Fewer than three events yield 0.
func Burstiness(t *pablo.Trace, op pablo.Op) float64 {
	evs := t.ByOp(op)
	if len(evs) < 3 {
		return 0
	}
	starts := make([]float64, len(evs))
	for i, ev := range evs {
		starts[i] = ev.Start.Seconds()
	}
	sort.Float64s(starts)
	gaps := make([]float64, len(starts)-1)
	for i := 1; i < len(starts); i++ {
		gaps[i-1] = starts[i] - starts[i-1]
	}
	return stats.CV(gaps)
}

// Predictability regresses cumulative transferred bytes against time for
// one operation type and returns the linear fit — the Pasquale & Polyzos
// methodology the paper's related-work section describes. Supercomputer
// workloads of the era were "recurrent and predictable" (R2 near 1);
// the paper's finding is that scalable-application I/O is burstier.
// Fewer than three events yield a zero fit.
func Predictability(t *pablo.Trace, op pablo.Op) stats.Linear {
	var xs, ys []float64
	var cum float64
	for _, ev := range t.ByOp(op) {
		if ev.Size <= 0 {
			continue
		}
		cum += float64(ev.Size)
		xs = append(xs, ev.Start.Seconds())
		ys = append(ys, cum)
	}
	if len(xs) < 3 {
		return stats.Linear{}
	}
	return stats.LinearRegression(xs, ys)
}
