package iobench

import (
	"fmt"
	"io"

	"paragonio/internal/pfs"
	"paragonio/internal/report"
)

// ModesFor returns the access modes meaningfully comparable for a
// kernel (single-writer kernels exclude collective modes).
func ModesFor(k Kernel) []pfs.Mode {
	switch k {
	case Checkpoint, ResultFunnel:
		return []pfs.Mode{pfs.MUnix, pfs.MAsync, pfs.MLog}
	default:
		return []pfs.Mode{pfs.MUnix, pfs.MAsync, pfs.MRecord, pfs.MGlobal, pfs.MSync, pfs.MLog}
	}
}

// SweepModes runs one kernel across all applicable access modes.
func SweepModes(base Params) ([]*Result, error) {
	var out []*Result
	for _, mode := range ModesFor(base.Kernel) {
		p := base
		p.Mode = mode
		r, err := Run(p)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", base.Kernel, mode, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// SweepRequestSizes runs one kernel/mode across request sizes.
func SweepRequestSizes(base Params, sizes []int64) ([]*Result, error) {
	var out []*Result
	for _, s := range sizes {
		p := base
		p.Request = s
		r, err := Run(p)
		if err != nil {
			return nil, fmt.Errorf("%s req=%d: %w", base.Kernel, s, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// SweepIONodes runs one kernel/mode across I/O node counts — the
// machine-configuration study of the paper's future work.
func SweepIONodes(base Params, counts []int) ([]*Result, error) {
	var out []*Result
	for _, c := range counts {
		p := base
		p.IONodes = c
		r, err := Run(p)
		if err != nil {
			return nil, fmt.Errorf("%s ionodes=%d: %w", base.Kernel, c, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// WriteTable renders sweep results as an aligned table. label extracts
// the swept dimension from each result.
func WriteTable(w io.Writer, title string, results []*Result, label func(*Result) string) error {
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{
			label(r),
			fmt.Sprintf("%.3f", r.Wall.Seconds()),
			fmt.Sprintf("%.2f", r.BandwidthMBs()),
			fmt.Sprintf("%d", r.Ops),
			fmt.Sprintf("%.2f", r.MeanOpMillis()),
			fmt.Sprintf("%.2f", r.P50Op.Seconds()*1000),
			fmt.Sprintf("%.2f", r.P95Op.Seconds()*1000),
		})
	}
	return report.Table(w, title,
		[]string{"config", "wall (s)", "MB/s", "ops", "mean op (ms)", "p50 (ms)", "p95 (ms)"}, rows)
}
