package iobench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"paragonio/internal/cache"
	"paragonio/internal/faults"
	"paragonio/internal/pfs"
	"paragonio/internal/policy"
	"paragonio/internal/report"
)

// ModesFor returns the access modes meaningfully comparable for a
// kernel (single-writer kernels exclude collective modes).
func ModesFor(k Kernel) []pfs.Mode {
	switch k {
	case Checkpoint, ResultFunnel:
		return []pfs.Mode{pfs.MUnix, pfs.MAsync, pfs.MLog}
	default:
		return []pfs.Mode{pfs.MUnix, pfs.MAsync, pfs.MRecord, pfs.MGlobal, pfs.MSync, pfs.MLog}
	}
}

// runSweep executes one Run per parameter set with a GOMAXPROCS-sized
// worker pool — each run builds its own single-threaded simulation, so
// sweep points are embarrassingly parallel — and returns results in
// input order. Results are deterministic in the parameters regardless of
// worker count; on error, the first failing sweep point (in input order)
// is reported via wrap.
func runSweep(params []Params, wrap func(i int, err error) error) ([]*Result, error) {
	out := make([]*Result, len(params))
	errs := make([]error, len(params))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(params) {
		workers = len(params)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = Run(params[i])
			}
		}()
	}
	for i := range params {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, wrap(i, err)
		}
	}
	return out, nil
}

// SweepModes runs one kernel across all applicable access modes.
func SweepModes(base Params) ([]*Result, error) {
	modes := ModesFor(base.Kernel)
	params := make([]Params, len(modes))
	for i, mode := range modes {
		params[i] = base
		params[i].Mode = mode
	}
	return runSweep(params, func(i int, err error) error {
		return fmt.Errorf("%s/%s: %w", base.Kernel, modes[i], err)
	})
}

// SweepRequestSizes runs one kernel/mode across request sizes.
func SweepRequestSizes(base Params, sizes []int64) ([]*Result, error) {
	params := make([]Params, len(sizes))
	for i, s := range sizes {
		params[i] = base
		params[i].Request = s
	}
	return runSweep(params, func(i int, err error) error {
		return fmt.Errorf("%s req=%d: %w", base.Kernel, sizes[i], err)
	})
}

// SweepIONodes runs one kernel/mode across I/O node counts — the
// machine-configuration study of the paper's future work.
func SweepIONodes(base Params, counts []int) ([]*Result, error) {
	params := make([]Params, len(counts))
	for i, c := range counts {
		params[i] = base
		params[i].IONodes = c
	}
	return runSweep(params, func(i int, err error) error {
		return fmt.Errorf("%s ionodes=%d: %w", base.Kernel, counts[i], err)
	})
}

// CacheConfigs returns the canonical what-if cache ladder for SweepCache:
// no cache, write-behind, and write-behind + read-ahead. Labels align
// with the cachewhatif experiment family.
func CacheConfigs() []struct {
	Label string
	Cfg   *cache.Config
} {
	return []struct {
		Label string
		Cfg   *cache.Config
	}{
		{"no-cache", nil},
		{"write-behind", &cache.Config{WriteBehind: true}},
		{"wb+read-ahead", &cache.Config{WriteBehind: true, ReadAhead: 4}},
	}
}

// SweepCache runs one kernel/mode across the I/O-node cache ladder — the
// what-if counterpart of the machine-configuration sweeps.
func SweepCache(base Params) ([]*Result, error) {
	ladder := CacheConfigs()
	params := make([]Params, len(ladder))
	for i, c := range ladder {
		params[i] = base
		params[i].Tiers.IONode = c.Cfg
	}
	results, err := runSweep(params, func(i int, err error) error {
		return fmt.Errorf("%s cache=%s: %w", base.Kernel, ladder[i].Label, err)
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		r.CacheLabel = ladder[i].Label
	}
	return results, nil
}

// ClientCacheConfigs returns the client-tier ladder for
// SweepClientCache: no cache, the lease-coherent client cache alone,
// and the client cache stacked on the I/O-node cache. The lease TTL is
// long because benchmark kernels re-reference within one run; the TTL
// axis itself is studied by the clientcache experiment family.
func ClientCacheConfigs() []struct {
	Label string
	Tiers cache.Tiers
} {
	client := func() *cache.ClientConfig {
		return &cache.ClientConfig{CapacityBytes: 8 << 20, LeaseTTL: 10 * time.Minute}
	}
	return []struct {
		Label string
		Tiers cache.Tiers
	}{
		{"no-cache", cache.Tiers{}},
		{"client", cache.Tiers{Client: client()}},
		{"client+ion", cache.Tiers{
			Client: client(),
			IONode: &cache.Config{WriteBehind: true, ReadAhead: 4},
		}},
	}
}

// SweepClientCache runs one kernel/mode across the client-tier ladder.
func SweepClientCache(base Params) ([]*Result, error) {
	ladder := ClientCacheConfigs()
	params := make([]Params, len(ladder))
	for i, c := range ladder {
		params[i] = base
		params[i].Tiers = c.Tiers
	}
	results, err := runSweep(params, func(i int, err error) error {
		return fmt.Errorf("%s clientcache=%s: %w", base.Kernel, ladder[i].Label, err)
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		r.CacheLabel = ladder[i].Label
	}
	return results, nil
}

// FlushConfigs returns the flush-policy ladder for SweepFlush: the
// legacy high-water + idle policy and the deadline policy across batch
// size, watermark, and deadline settings. Capacity is held at 2 MB so a
// checkpoint burst overruns it — the regime where the flush policy,
// not the cache size, decides how many writes stall.
func FlushConfigs() []struct {
	Label string
	Cfg   *cache.Config
} {
	mk := func(batch, hw int, deadline time.Duration) *cache.Config {
		return &cache.Config{
			WriteBehind:    true,
			CapacityBytes:  2 << 20,
			FlushBatch:     batch,
			DirtyHighWater: hw,
			FlushDeadline:  deadline,
		}
	}
	return []struct {
		Label string
		Cfg   *cache.Config
	}{
		{"hw-idle b=4 hw=25%", mk(4, 8, 0)},
		{"hw-idle b=4 hw=75%", mk(4, 24, 0)},
		{"hw-idle b=32 hw=25%", mk(32, 8, 0)},
		{"hw-idle b=32 hw=75%", mk(32, 24, 0)},
		{"deadline=50ms b=4 hw=25%", mk(4, 8, 50*time.Millisecond)},
		{"deadline=50ms b=4 hw=75%", mk(4, 24, 50*time.Millisecond)},
		{"deadline=50ms b=32 hw=25%", mk(32, 8, 50*time.Millisecond)},
		{"deadline=50ms b=32 hw=75%", mk(32, 24, 50*time.Millisecond)},
		{"deadline=1s b=4 hw=25%", mk(4, 8, time.Second)},
		{"deadline=1s b=4 hw=75%", mk(4, 24, time.Second)},
		{"deadline=1s b=32 hw=25%", mk(32, 8, time.Second)},
		{"deadline=1s b=32 hw=75%", mk(32, 24, time.Second)},
	}
}

// SweepFlush runs one kernel/mode across the flush-policy ladder.
func SweepFlush(base Params) ([]*Result, error) {
	ladder := FlushConfigs()
	params := make([]Params, len(ladder))
	for i, c := range ladder {
		params[i] = base
		params[i].Tiers = cache.Tiers{IONode: c.Cfg}
	}
	results, err := runSweep(params, func(i int, err error) error {
		return fmt.Errorf("%s flush=%s: %w", base.Kernel, ladder[i].Label, err)
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		r.CacheLabel = ladder[i].Label
	}
	return results, nil
}

// LogTierConfigs returns the burst-absorption ladder for SweepLogTier:
// no tier at all, write-behind through a deadline-flushed I/O-node cache
// (the server-side answer to bursts), the host-side log alone, and the
// log draining through the block cache. Capacity is held at 2 MB on the
// write-behind rung so a checkpoint burst overruns it — the regime the
// log tier is built for.
func LogTierConfigs() []struct {
	Label string
	Tiers cache.Tiers
} {
	wb := func() *cache.Config {
		return &cache.Config{
			WriteBehind:   true,
			CapacityBytes: 2 << 20,
			FlushDeadline: 50 * time.Millisecond,
		}
	}
	return []struct {
		Label string
		Tiers cache.Tiers
	}{
		{"no-cache", cache.Tiers{}},
		{"write-behind", cache.Tiers{IONode: wb()}},
		{"log-tier", cache.Tiers{Log: &cache.LogConfig{}}},
		{"log+ion", cache.Tiers{Log: &cache.LogConfig{}, IONode: wb()}},
	}
}

// SweepLogTier runs one kernel/mode across the log-tier ladder — the
// host-side burst buffer raced against server-side write-behind.
func SweepLogTier(base Params) ([]*Result, error) {
	ladder := LogTierConfigs()
	params := make([]Params, len(ladder))
	for i, c := range ladder {
		params[i] = base
		params[i].Tiers = c.Tiers
	}
	results, err := runSweep(params, func(i int, err error) error {
		return fmt.Errorf("%s logtier=%s: %w", base.Kernel, ladder[i].Label, err)
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		r.CacheLabel = ladder[i].Label
	}
	return results, nil
}

// WriteLogTierTable renders log-tier-sweep results with the tier's own
// counters: records appended, drain passes, and the two stall kinds
// (read barriers and capacity backpressure) with their summed wait.
func WriteLogTierTable(w io.Writer, title string, results []*Result) error {
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{
			r.CacheLabel,
			fmt.Sprintf("%.3f", r.Wall.Seconds()),
			fmt.Sprintf("%.2f", r.BandwidthMBs()),
			fmt.Sprintf("%.2f", r.P95Op.Seconds()*1000),
			fmt.Sprintf("%d", r.Log.Appends),
			fmt.Sprintf("%d", r.Log.Drains),
			fmt.Sprintf("%d", r.Log.ReadBackStalls),
			fmt.Sprintf("%d", r.Log.AppendStalls),
			fmt.Sprintf("%.3f", r.Log.StallWait.Seconds()),
		})
	}
	return report.Table(w, title,
		[]string{"config", "wall (s)", "MB/s", "p95 (ms)",
			"appends", "drains", "rd_stalls", "bp_stalls", "stall (s)"}, rows)
}

// FaultConfigs returns the degraded-mode ladder for SweepFaults: the
// healthy machine, then each fault kind injected alone. The client-flap
// rungs carry the lease-coherent client tier (the fault needs leases to
// storm), so they get their own healthy baseline for an apples-to-apples
// comparison. Injection times sit early in the run so most of the
// workload executes degraded.
func FaultConfigs() []struct {
	Label  string
	Plan   faults.Plan
	Client bool
} {
	at := 250 * time.Millisecond
	return []struct {
		Label  string
		Plan   faults.Plan
		Client bool
	}{
		{"healthy", faults.Plan{}, false},
		{"disk-fail", faults.Plan{Faults: []faults.Fault{
			{Kind: faults.DiskFail, At: at, IONode: 0}}}, false},
		{"node-crash", faults.Plan{Faults: []faults.Fault{
			{Kind: faults.NodeCrash, At: at, IONode: 0}}}, false},
		{"straggler x4", faults.Plan{Faults: []faults.Fault{
			{Kind: faults.Straggler, At: at, IONode: 0, Factor: 4}}}, false},
		{"client healthy", faults.Plan{}, true},
		{"client-flap x5", faults.Plan{Faults: []faults.Fault{
			{Kind: faults.ClientFlap, At: at, Node: 1, Count: 5, Period: 500 * time.Millisecond}}}, true},
	}
}

// SweepFaults runs one kernel/mode across the fault ladder. The base
// params' own Faults and Tiers.Client are overridden per rung.
func SweepFaults(base Params) ([]*Result, error) {
	ladder := FaultConfigs()
	params := make([]Params, len(ladder))
	for i, c := range ladder {
		params[i] = base
		params[i].Faults = c.Plan
		if c.Client {
			params[i].Tiers.Client = &cache.ClientConfig{
				CapacityBytes: 8 << 20, LeaseTTL: 10 * time.Minute}
		} else {
			params[i].Tiers.Client = nil
		}
	}
	results, err := runSweep(params, func(i int, err error) error {
		return fmt.Errorf("%s fault=%s: %w", base.Kernel, ladder[i].Label, err)
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		r.CacheLabel = ladder[i].Label
	}
	return results, nil
}

// WriteFaultTable renders fault-sweep results with the degraded-mode
// counters WriteTable omits: reconstruction-mode array requests,
// failover reroutes, and lease recalls delivered.
func WriteFaultTable(w io.Writer, title string, results []*Result) error {
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{
			r.CacheLabel,
			fmt.Sprintf("%.3f", r.Wall.Seconds()),
			fmt.Sprintf("%.2f", r.BandwidthMBs()),
			fmt.Sprintf("%.2f", r.P95Op.Seconds()*1000),
			fmt.Sprintf("%d", r.Degraded),
			fmt.Sprintf("%d", r.Rerouted),
			fmt.Sprintf("%d", r.Recalls),
		})
	}
	return report.Table(w, title,
		[]string{"config", "wall (s)", "MB/s", "p95 (ms)",
			"degraded", "rerouted", "recalls"}, rows)
}

// SweepAdvisor closes the advisor loop on one kernel: run it bare,
// classify the trace (policy.Classify), derive a cache configuration
// (policy.AdviseTiers), and re-run under the advised tiers. Two rows
// come back: the bare run and the advised run, labelled with the
// advised cache.Tiers.
func SweepAdvisor(base Params) ([]*Result, error) {
	bare := base
	bare.Tiers = cache.Tiers{}
	baseRes, err := Run(bare)
	if err != nil {
		return nil, err
	}
	ionodes := base.IONodes
	if ionodes == 0 {
		ionodes = 16
	}
	plan := policy.AdviseTiers(policy.Classify(baseRes.trace),
		policy.CacheOptions{IONodes: ionodes})
	advised := bare
	advised.Tiers = plan.Tiers
	advRes, err := Run(advised)
	if err != nil {
		return nil, err
	}
	baseRes.CacheLabel = "no-cache"
	advRes.CacheLabel = "advised: " + plan.Tiers.String()
	return []*Result{baseRes, advRes}, nil
}

// WriteFlushTable renders flush-sweep results with the policy counters
// WriteTable omits: forced-flush stalls, flusher passes, deadline-
// limited passes, and the dirty-queue high-water mark.
func WriteFlushTable(w io.Writer, title string, results []*Result) error {
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{
			r.CacheLabel,
			fmt.Sprintf("%.3f", r.Wall.Seconds()),
			fmt.Sprintf("%.3f", r.IOTime.Seconds()),
			fmt.Sprintf("%.2f", r.P95Op.Seconds()*1000),
			fmt.Sprintf("%d", r.Cache.ForcedFlushStalls),
			fmt.Sprintf("%d", r.Cache.Flushes),
			fmt.Sprintf("%d", r.Cache.DeadlineFlushes),
			fmt.Sprintf("%d", r.Cache.MaxDirty),
		})
	}
	return report.Table(w, title,
		[]string{"config", "wall (s)", "io (s)", "p95 (ms)",
			"stalls", "flushes", "deadline_flushes", "max_dirty"}, rows)
}

// WriteTable renders sweep results as an aligned table. label extracts
// the swept dimension from each result.
func WriteTable(w io.Writer, title string, results []*Result, label func(*Result) string) error {
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{
			label(r),
			fmt.Sprintf("%.3f", r.Wall.Seconds()),
			fmt.Sprintf("%.2f", r.BandwidthMBs()),
			fmt.Sprintf("%d", r.Ops),
			fmt.Sprintf("%.2f", r.MeanOpMillis()),
			fmt.Sprintf("%.2f", r.P50Op.Seconds()*1000),
			fmt.Sprintf("%.2f", r.P95Op.Seconds()*1000),
		})
	}
	return report.Table(w, title,
		[]string{"config", "wall (s)", "MB/s", "ops", "mean op (ms)", "p50 (ms)", "p95 (ms)"}, rows)
}
