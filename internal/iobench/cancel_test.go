package iobench

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"paragonio/internal/pfs"
)

// cancelParams is a benchmark big enough to guarantee the run is still
// in flight when a mid-run cancel lands.
func cancelParams() Params {
	return Params{
		Kernel:  StridedReload,
		Mode:    pfs.MUnix,
		Nodes:   64,
		Request: 4 << 10,
		Volume:  64 << 20,
	}
}

// settleGoroutines polls until the goroutine count drops back to the
// baseline (or the deadline passes), giving exited simulated processes
// time to be observed.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: %d live, baseline %d — simulated processes leaked",
		runtime.NumGoroutine(), baseline)
}

// TestRunContextPreCancelled pins the deterministic abort path: a
// context cancelled before the run starts aborts at the first poll, the
// error matches context.Canceled, and every spawned simulated process
// (none of which ever ran) exits its goroutine.
func TestRunContextPreCancelled(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, cancelParams())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext(cancelled) = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("RunContext(cancelled) returned a result: %+v", res)
	}
	settleGoroutines(t, baseline)
}

// TestRunContextCancelMidRun cancels while the engine is running and
// requires a prompt abort with no goroutine leak: the parked node
// processes and the PFS machinery all unwind.
func TestRunContextCancelMidRun(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunContext(ctx, cancelParams())
	elapsed := time.Since(start)
	if err == nil {
		// The run beat the cancel — make the workload bigger if this
		// ever happens in practice.
		t.Skip("run completed before cancel; nothing to assert")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("abort took %v — not prompt", elapsed)
	}
	settleGoroutines(t, baseline)
}

// TestRunContextTimeout exercises the deadline path end to end.
func TestRunContextTimeout(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := RunContext(ctx, cancelParams())
	if err == nil {
		t.Skip("run completed before the deadline; nothing to assert")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext = %v, want context.DeadlineExceeded", err)
	}
	settleGoroutines(t, baseline)
}
