package iobench

import (
	"strings"
	"testing"

	"paragonio/internal/pfs"
)

// small returns fast parameters exercising all paths.
func small(k Kernel, mode pfs.Mode) Params {
	return Params{
		Kernel:  k,
		Mode:    mode,
		Nodes:   8,
		Request: 64 << 10,
		Volume:  4 << 20,
		Cycles:  4,
	}
}

func TestKernelNames(t *testing.T) {
	if len(Kernels()) != 5 {
		t.Fatalf("kernels = %d", len(Kernels()))
	}
	for _, k := range Kernels() {
		if strings.Contains(k.String(), "kernel(") {
			t.Fatalf("kernel %d has no name", int(k))
		}
	}
	if Kernel(99).String() != "kernel(99)" {
		t.Fatal("out-of-range name")
	}
}

func TestParamValidation(t *testing.T) {
	bad := []Params{
		{Kernel: Kernel(99), Mode: pfs.MAsync, Nodes: 4, Request: 1, Volume: 1},
		{Kernel: StagingWrite, Mode: pfs.MAsync, Nodes: 0, Request: 1, Volume: 1},
		{Kernel: StagingWrite, Mode: pfs.MAsync, Nodes: 4, Request: 0, Volume: 1},
		{Kernel: StagingWrite, Mode: pfs.MAsync, Nodes: 4, Request: 1, Volume: 0},
		{Kernel: Checkpoint, Mode: pfs.MRecord, Nodes: 4, Request: 1, Volume: 1},
		{Kernel: ResultFunnel, Mode: pfs.MGlobal, Nodes: 4, Request: 1, Volume: 1},
	}
	for i, p := range bad {
		if _, err := Run(p); err == nil {
			t.Fatalf("case %d: bad params accepted", i)
		}
	}
}

func TestEveryKernelEveryModeRuns(t *testing.T) {
	for _, k := range Kernels() {
		for _, mode := range ModesFor(k) {
			r, err := Run(small(k, mode))
			if err != nil {
				t.Fatalf("%s/%s: %v", k, mode, err)
			}
			if r.Ops == 0 || r.Bytes == 0 {
				t.Fatalf("%s/%s: no data moved (%+v)", k, mode, r)
			}
			if r.Wall <= 0 || r.IOTime <= 0 {
				t.Fatalf("%s/%s: no time elapsed", k, mode)
			}
			if r.BandwidthMBs() <= 0 || r.MeanOpMillis() <= 0 {
				t.Fatalf("%s/%s: degenerate derived metrics", k, mode)
			}
		}
	}
}

func TestVolumeConservation(t *testing.T) {
	// Per-process-pointer staging/reload kernels move exactly Volume
	// bytes (rounded to whole requests per node).
	for _, k := range []Kernel{StagingWrite, StridedReload} {
		p := small(k, pfs.MAsync)
		r, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if k == StridedReload {
			if r.Bytes != p.Volume {
				t.Fatalf("%s moved %d bytes, want %d", k, r.Bytes, p.Volume)
			}
		} else if r.Bytes < p.Volume/2 || r.Bytes > p.Volume {
			t.Fatalf("%s moved %d bytes, want ~%d", k, r.Bytes, p.Volume)
		}
	}
}

func TestCompulsoryReadGlobalBeatsUnix(t *testing.T) {
	// The benchmark reproduces the paper's core lesson: for identical
	// compulsory reads, M_GLOBAL (one disk I/O + broadcast) beats
	// M_UNIX (token-serialized per-node reads) by a wide margin.
	unix, err := Run(small(CompulsoryRead, pfs.MUnix))
	if err != nil {
		t.Fatal(err)
	}
	global, err := Run(small(CompulsoryRead, pfs.MGlobal))
	if err != nil {
		t.Fatal(err)
	}
	if global.Wall*3 >= unix.Wall {
		t.Fatalf("M_GLOBAL (%v) not >> M_UNIX (%v)", global.Wall, unix.Wall)
	}
}

func TestStagingAsyncBeatsUnix(t *testing.T) {
	unix, err := Run(small(StagingWrite, pfs.MUnix))
	if err != nil {
		t.Fatal(err)
	}
	async, err := Run(small(StagingWrite, pfs.MAsync))
	if err != nil {
		t.Fatal(err)
	}
	if async.Wall >= unix.Wall {
		t.Fatalf("M_ASYNC staging (%v) not faster than M_UNIX (%v)", async.Wall, unix.Wall)
	}
}

func TestReloadRecordNearAsync(t *testing.T) {
	// M_RECORD should be within ~2x of M_ASYNC for stripe-aligned
	// strided reloads (it adds only synchronization).
	rec, err := Run(small(StridedReload, pfs.MRecord))
	if err != nil {
		t.Fatal(err)
	}
	async, err := Run(small(StridedReload, pfs.MAsync))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Wall > async.Wall*3 {
		t.Fatalf("M_RECORD reload (%v) too far above M_ASYNC (%v)", rec.Wall, async.Wall)
	}
}

func TestSweepModes(t *testing.T) {
	rs, err := SweepModes(small(StridedReload, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 6 {
		t.Fatalf("sweep returned %d results", len(rs))
	}
	seen := map[string]bool{}
	for _, r := range rs {
		seen[r.Params.Mode.String()] = true
	}
	if !seen["M_RECORD"] || !seen["M_LOG"] {
		t.Fatalf("modes covered: %v", seen)
	}
}

func TestSweepRequestSizesMonotoneBandwidth(t *testing.T) {
	base := small(StridedReload, pfs.MAsync)
	rs, err := SweepRequestSizes(base, []int64{4 << 10, 64 << 10, 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// Bigger stripe-aligned requests must not reduce bandwidth.
	for i := 1; i < len(rs); i++ {
		if rs[i].BandwidthMBs() < rs[i-1].BandwidthMBs() {
			t.Fatalf("bandwidth fell from %.1f to %.1f MB/s as request grew",
				rs[i-1].BandwidthMBs(), rs[i].BandwidthMBs())
		}
	}
}

func TestSweepIONodesImproves(t *testing.T) {
	base := small(StridedReload, pfs.MAsync)
	rs, err := SweepIONodes(base, []int{2, 16})
	if err != nil {
		t.Fatal(err)
	}
	if rs[1].Wall >= rs[0].Wall {
		t.Fatalf("16 I/O nodes (%v) not faster than 2 (%v)", rs[1].Wall, rs[0].Wall)
	}
}

func TestWriteTable(t *testing.T) {
	rs, err := SweepModes(small(StridedReload, 0))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteTable(&b, "reload", rs, func(r *Result) string {
		return r.Params.Mode.String()
	}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "M_ASYNC") || !strings.Contains(out, "MB/s") {
		t.Fatalf("table missing content:\n%s", out)
	}
}

func TestDeterministicResults(t *testing.T) {
	a, err := Run(small(StagingWrite, pfs.MUnix))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(small(StagingWrite, pfs.MUnix))
	if err != nil {
		t.Fatal(err)
	}
	if a.Wall != b.Wall || a.Ops != b.Ops || a.IOTime != b.IOTime {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}
