// Package iobench is the benchmark suite the paper's conclusion promises
// to derive from its characterizations: parameterized I/O kernels
// distilled from the observed application phases — compulsory
// initialization reads, staging writes, strided reloads, checkpoint
// bursts, and result funnels — each runnable across access modes, node
// counts, and machine configurations, reporting achieved bandwidth and
// operation latency.
//
// Where the characterization study asks "what do applications do?", the
// suite asks the follow-up the authors planned: "how does a given file
// system configuration serve each canonical pattern?"
package iobench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"paragonio/internal/cache"
	"paragonio/internal/core"
	"paragonio/internal/faults"
	"paragonio/internal/pablo"
	"paragonio/internal/pfs"
	"paragonio/internal/stats"
	"paragonio/internal/workload"
)

// Kernel identifies one canonical access pattern from the study.
type Kernel int

const (
	// CompulsoryRead: all nodes need the same initialization data
	// (ESCAT/PRISM phase one).
	CompulsoryRead Kernel = iota
	// StagingWrite: every node writes interleaved slots of a scratch
	// file in compute/write cycles (ESCAT phase two).
	StagingWrite
	// StridedReload: nodes read disjoint fixed-size records sweeping
	// the file (ESCAT phase three).
	StridedReload
	// Checkpoint: one node periodically dumps the global state
	// (PRISM phase two).
	Checkpoint
	// ResultFunnel: one node writes many small result records
	// (ESCAT phase four).
	ResultFunnel
	numKernels
)

var kernelNames = [...]string{
	CompulsoryRead: "compulsory-read",
	StagingWrite:   "staging-write",
	StridedReload:  "strided-reload",
	Checkpoint:     "checkpoint",
	ResultFunnel:   "result-funnel",
}

// String returns the kernel's slug.
func (k Kernel) String() string {
	if k < 0 || int(k) >= len(kernelNames) {
		return fmt.Sprintf("kernel(%d)", int(k))
	}
	return kernelNames[k]
}

// Kernels lists all kernels.
func Kernels() []Kernel {
	out := make([]Kernel, numKernels)
	for i := range out {
		out[i] = Kernel(i)
	}
	return out
}

// Params configures one benchmark run.
type Params struct {
	Kernel  Kernel
	Mode    pfs.Mode // access mode under test
	Nodes   int      // compute nodes
	Request int64    // request size in bytes
	Volume  int64    // total bytes the kernel moves
	// Cycles applies to StagingWrite and Checkpoint: how many rounds
	// the volume is split into (default 8).
	Cycles int
	// Compute is per-cycle computation between I/O rounds (default 0:
	// pure I/O benchmark).
	Compute time.Duration
	// Machine overrides (zero values = the paper's machine).
	IONodes    int
	StripeUnit int64
	Seed       int64
	// Tiers configures the what-if cache hierarchy (cache.Tiers):
	// Tiers.IONode the per-I/O-node buffer cache, Tiers.Client the
	// lease-coherent per-compute-node cache.
	Tiers cache.Tiers
	// Faults is the injected fault plan (see internal/faults); the zero
	// value runs the healthy machine.
	Faults faults.Plan
	// Shards, when >= 2, runs the simulation on a sharded kernel
	// (core.Config.Shards); results are bit-identical for every value.
	Shards int
}

// withDefaults validates and fills defaults.
func (p Params) withDefaults() (Params, error) {
	if p.Kernel < 0 || p.Kernel >= numKernels {
		return p, fmt.Errorf("iobench: invalid kernel %d", int(p.Kernel))
	}
	if p.Nodes <= 0 {
		return p, fmt.Errorf("iobench: Nodes = %d", p.Nodes)
	}
	if p.Request <= 0 {
		return p, fmt.Errorf("iobench: Request = %d", p.Request)
	}
	if p.Volume <= 0 {
		return p, fmt.Errorf("iobench: Volume = %d", p.Volume)
	}
	if (p.Kernel == Checkpoint || p.Kernel == ResultFunnel) && p.Mode.Collective() {
		return p, fmt.Errorf("iobench: %s is a single-writer kernel; collective mode %s does not apply",
			p.Kernel, p.Mode)
	}
	if p.Volume < p.Request {
		p.Volume = p.Request
	}
	if p.Cycles <= 0 {
		p.Cycles = 8
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p, nil
}

// Result is one benchmark outcome.
type Result struct {
	Params   Params
	Wall     time.Duration // virtual completion time
	IOTime   time.Duration // summed operation time across nodes
	Ops      int           // data operations issued
	Bytes    int64         // payload bytes moved
	TraceLen int
	// P50Op and P95Op are data-operation duration percentiles
	// (queueing included).
	P50Op, P95Op time.Duration
	// CacheLabel names the ladder rung for configuration sweeps —
	// SweepCache, SweepClientCache, SweepFlush, SweepFaults,
	// SweepLogTier — ("" for other sweeps).
	CacheLabel string
	// Cache aggregates the I/O-node cache tier's counters across all
	// I/O nodes (zero value when the tier is off) — the flush-policy
	// sweep reads stall and flush counts from here.
	Cache cache.Stats
	// Log holds the host-side log tier's counters (zero value when the
	// tier is off) — the log-tier sweep reads append, drain, and stall
	// counts from here.
	Log cache.LogStats
	// Fault-plane counters (all zero on a healthy run): Degraded is
	// array requests served in RAID-3 reconstruction mode, Rerouted is
	// requests redirected away from a crashed I/O node, Recalls is
	// lease recalls delivered (a flapping client inflates it).
	Degraded uint64
	Rerouted uint64
	Recalls  uint64

	// trace is the run's event trace, kept for the advisor sweep
	// (classification needs the events, not just the counts).
	trace *pablo.Trace
}

// BandwidthMBs returns achieved aggregate bandwidth in MB/s of virtual
// time.
func (r Result) BandwidthMBs() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.Wall.Seconds()
}

// MeanOpMillis returns the mean data-operation duration in milliseconds
// (queueing included).
func (r Result) MeanOpMillis() float64 {
	if r.Ops == 0 {
		return 0
	}
	return r.IOTime.Seconds() * 1000 / float64(r.Ops)
}

// Run executes the benchmark on a fresh platform.
func Run(p Params) (*Result, error) {
	return RunContext(context.Background(), p)
}

// RunContext is Run with cancellation: when ctx is cancelled or times
// out mid-run, the simulation aborts promptly (between event batches),
// all simulated-process goroutines exit, and the context's error is
// returned — so an abandoned caller stops burning shard workers.
func RunContext(ctx context.Context, p Params) (*Result, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Nodes:      p.Nodes,
		Seed:       p.Seed,
		IONodes:    p.IONodes,
		StripeUnit: p.StripeUnit,
		Tiers:      p.Tiers,
		Faults:     p.Faults,
		Shards:     p.Shards,
	}
	res, err := core.RunContext(ctx, cfg, "iobench", p.Kernel.String(),
		func(m *workload.Machine, seed int64) error {
			return install(m, p, seed)
		})
	if err != nil {
		return nil, err
	}
	out := &Result{Params: p, Wall: res.Exec, TraceLen: res.Trace.Len(),
		Cache: res.CacheTotals(), Log: res.Log, trace: res.Trace,
		Rerouted: res.Rerouted, Recalls: res.Client.Recalls}
	for _, ds := range res.IONodes {
		out.Degraded += ds.Degraded
	}
	var durs []float64
	for _, ev := range res.Trace.Events() {
		switch ev.Op {
		case pablo.OpRead, pablo.OpWrite:
			if ev.Size > 0 {
				out.Ops++
				out.Bytes += ev.Size
				out.IOTime += ev.Duration
				durs = append(durs, float64(ev.Duration))
			}
		}
	}
	if len(durs) > 0 {
		sort.Float64s(durs)
		out.P50Op = time.Duration(stats.Percentile(durs, 50))
		out.P95Op = time.Duration(stats.Percentile(durs, 95))
	}
	return out, nil
}

// install wires the kernel's script onto the machine.
func install(m *workload.Machine, p Params, seed int64) error {
	ids := make([]int, p.Nodes)
	for i := range ids {
		ids[i] = i
	}
	group, err := m.FS.NewGroup(ids)
	if err != nil {
		return err
	}
	all := m.NewCollective("iobench", p.Nodes)
	switch p.Kernel {
	case CompulsoryRead:
		m.FS.CreateFile("bench/input", p.Volume)
	case StridedReload:
		m.FS.CreateFile("bench/data", p.Volume)
	}
	m.SpawnNodes(seed, func(n *workload.Node) {
		switch p.Kernel {
		case CompulsoryRead:
			compulsoryRead(n, p, group)
		case StagingWrite:
			stagingWrite(n, p, group, all)
		case StridedReload:
			stridedReload(n, p, group)
		case Checkpoint:
			checkpoint(n, p, all)
		case ResultFunnel:
			resultFunnel(n, p, all)
		}
	})
	return nil
}

// open opens the kernel's file in the mode under test, collectively when
// the mode's data operations require it (and always via gopen, so the
// benchmark measures the data path rather than open serialization).
func open(n *workload.Node, g *pfs.Group, file string, mode pfs.Mode) *pfs.Handle {
	h, err := g.Gopen(n.P, n.ID, file, mode)
	if err != nil {
		panic(err)
	}
	return h
}

// compulsoryRead: every node consumes the whole input. Per-process-
// pointer modes read it independently; shared-pointer modes read it
// once collectively.
func compulsoryRead(n *workload.Node, p Params, g *pfs.Group) {
	h := open(n, g, "bench/input", p.Mode)
	h.SetBuffering(false)
	rounds := int(p.Volume / p.Request)
	for r := 0; r < rounds; r++ {
		if _, err := h.Read(n.P, p.Request); err != nil {
			panic(err)
		}
	}
	if err := h.Close(n.P); err != nil {
		panic(err)
	}
}

// stagingWrite: interleaved node-strided slot writes in synchronized
// cycles, ESCAT phase-two style. Collective modes write records instead.
func stagingWrite(n *workload.Node, p Params, g *pfs.Group, all *workload.Collective) {
	h := open(n, g, "bench/staging", p.Mode)
	perNode := p.Volume / int64(p.Nodes)
	writesPerCycle := perNode / p.Request / int64(p.Cycles)
	if writesPerCycle < 1 {
		writesPerCycle = 1
	}
	slot := 0
	for cyc := 0; cyc < p.Cycles; cyc++ {
		if p.Compute > 0 {
			n.ComputeJitter(p.Compute, p.Compute/4)
		}
		all.Barrier(n)
		for w := int64(0); w < writesPerCycle; w++ {
			if !p.Mode.Collective() && !p.Mode.SharedPointer() {
				off := (int64(slot)*int64(p.Nodes) + int64(n.ID)) * p.Request
				if err := h.Seek(n.P, off); err != nil {
					panic(err)
				}
			}
			if _, err := h.Write(n.P, p.Request); err != nil {
				panic(err)
			}
			slot++
		}
	}
	if err := h.Close(n.P); err != nil {
		panic(err)
	}
}

// stridedReload: the group sweeps the file in fixed-size records.
// Non-collective modes emulate the sweep with explicit seeks.
func stridedReload(n *workload.Node, p Params, g *pfs.Group) {
	h := open(n, g, "bench/data", p.Mode)
	h.SetBuffering(false)
	records := p.Volume / p.Request
	rounds := int((records + int64(p.Nodes) - 1) / int64(p.Nodes))
	for r := 0; r < rounds; r++ {
		if !p.Mode.Collective() && !p.Mode.SharedPointer() {
			rec := int64(r)*int64(p.Nodes) + int64(n.ID)
			if rec >= records {
				break
			}
			if err := h.Seek(n.P, rec*p.Request); err != nil {
				panic(err)
			}
		}
		if _, err := h.Read(n.P, p.Request); err != nil {
			panic(err)
		}
	}
	if err := h.Close(n.P); err != nil {
		panic(err)
	}
}

// checkpoint: all nodes compute; node zero periodically dumps the
// volume in request-sized records (PRISM phase two).
func checkpoint(n *workload.Node, p Params, all *workload.Collective) {
	var h *pfs.Handle
	if n.ID == 0 {
		var err error
		h, err = n.M.FS.Open(n.P, 0, "bench/chk", p.Mode)
		if err != nil {
			panic(err)
		}
	}
	perCheckpoint := p.Volume / int64(p.Cycles) / p.Request
	if perCheckpoint < 1 {
		perCheckpoint = 1
	}
	for cyc := 0; cyc < p.Cycles; cyc++ {
		if p.Compute > 0 {
			n.ComputeJitter(p.Compute, p.Compute/4)
		}
		all.Barrier(n)
		if n.ID != 0 {
			continue
		}
		// Shared-pointer modes (M_LOG) append; the others overwrite the
		// checkpoint region.
		if !p.Mode.SharedPointer() {
			if err := h.Seek(n.P, 0); err != nil {
				panic(err)
			}
		}
		for w := int64(0); w < perCheckpoint; w++ {
			if _, err := h.Write(n.P, p.Request); err != nil {
				panic(err)
			}
		}
	}
	if n.ID == 0 {
		if err := h.Close(n.P); err != nil {
			panic(err)
		}
	}
	all.Barrier(n)
}

// resultFunnel: node zero writes the whole volume in small records while
// the others wait (ESCAT phase four).
func resultFunnel(n *workload.Node, p Params, all *workload.Collective) {
	if n.ID == 0 {
		h, err := n.M.FS.Open(n.P, 0, "bench/out", p.Mode)
		if err != nil {
			panic(err)
		}
		writes := p.Volume / p.Request
		for w := int64(0); w < writes; w++ {
			if _, err := h.Write(n.P, p.Request); err != nil {
				panic(err)
			}
		}
		if err := h.Close(n.P); err != nil {
			panic(err)
		}
	}
	all.Barrier(n)
}
