// Package workload provides the building blocks for expressing
// application I/O scripts against the simulated machine: per-node
// processes with deterministic pseudo-randomness, compute delays,
// message-passing collectives (broadcast/gather/barrier) priced by the
// mesh model, phase tracking for per-phase analysis, and request-size
// distributions for synthetic workload generation.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"paragonio/internal/analysis"
	"paragonio/internal/mesh"
	"paragonio/internal/pfs"
	"paragonio/internal/sim"
)

// Machine bundles the simulated platform: kernel, interconnect and file
// system, plus the number of compute nodes the application uses.
type Machine struct {
	K     *sim.Kernel
	Mesh  *mesh.Mesh
	FS    *pfs.FileSystem
	Nodes int

	phases  []analysis.PhaseWindow
	current string
	started time.Duration
}

// NewMachine wires a machine over an existing kernel, mesh and file
// system. nodes must be positive.
func NewMachine(k *sim.Kernel, m *mesh.Mesh, fs *pfs.FileSystem, nodes int) (*Machine, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("workload: need at least one node, got %d", nodes)
	}
	return &Machine{K: k, Mesh: m, FS: fs, Nodes: nodes}, nil
}

// Node is the per-process context handed to node scripts.
type Node struct {
	M   *Machine
	P   *sim.Proc
	ID  int
	RNG *rand.Rand
}

// SpawnNodes starts one process per node running body. Each node gets a
// deterministic PRNG derived from seed and its id, and lives on its
// compute LP (round-robin over the kernel's compute lanes; lane 0 when
// there are none) so wake events queue on the lane's own heap instead of
// the shared one — a queue choice only, invisible to traces. Call before
// K.Run().
func (m *Machine) SpawnNodes(seed int64, body func(n *Node)) {
	for i := 0; i < m.Nodes; i++ {
		i := i
		m.K.SpawnOn(m.K.ComputeLane(i), fmt.Sprintf("node-%d", i), func(p *sim.Proc) {
			body(&Node{M: m, P: p, ID: i, RNG: rand.New(rand.NewSource(seed + int64(i)*7919))})
		})
	}
}

// BeginPhase marks (from node 0's perspective) the start of a named
// application phase; the previous phase, if any, is closed.
func (m *Machine) BeginPhase(name string) {
	now := m.K.Now()
	if m.current != "" {
		m.phases = append(m.phases, analysis.PhaseWindow{Name: m.current, Start: m.started, End: now})
	}
	m.current = name
	m.started = now
}

// EndPhases closes the open phase at the current time.
func (m *Machine) EndPhases() {
	if m.current != "" {
		m.phases = append(m.phases, analysis.PhaseWindow{Name: m.current, Start: m.started, End: m.K.Now()})
		m.current = ""
	}
}

// Phases returns the recorded phase windows.
func (m *Machine) Phases() []analysis.PhaseWindow {
	return append([]analysis.PhaseWindow(nil), m.phases...)
}

// Compute advances the node's virtual time by d — modeling computation
// between I/O calls.
func (n *Node) Compute(d time.Duration) { n.P.Wait(d) }

// ComputeJitter advances by d plus a uniformly random extra in
// [0, jitter) — the load imbalance that turns into synchronization skew
// at barriers and collective I/O.
func (n *Node) ComputeJitter(d, jitter time.Duration) {
	extra := time.Duration(0)
	if jitter > 0 {
		extra = time.Duration(n.RNG.Int63n(int64(jitter)))
	}
	n.P.Wait(d + extra)
}

// Collective is a message-passing synchronization domain over a fixed
// set of nodes (a communicator, in later MPI terms).
type Collective struct {
	m   *Machine
	n   int
	bar *sim.Barrier
}

// NewCollective creates a collective domain of size n.
func (m *Machine) NewCollective(name string, n int) *Collective {
	return &Collective{m: m, n: n, bar: sim.NewBarrier(m.K, name, n)}
}

// Size returns the number of participating nodes.
func (c *Collective) Size() int { return c.n }

// Barrier synchronizes all members and charges the mesh barrier cost.
func (c *Collective) Barrier(n *Node) {
	c.bar.Await(n.P)
	n.P.Wait(c.m.Mesh.Barrier(c.n))
}

// Broadcast synchronizes the members and distributes size bytes from
// root to all: every member pays the binomial-tree broadcast time.
// (The ESCAT versions B/C "node zero reads and broadcasts" pattern.)
func (c *Collective) Broadcast(n *Node, root int, size int64) {
	c.bar.Await(n.P)
	n.P.Wait(c.m.Mesh.Broadcast(c.n, size))
}

// AllReduce synchronizes the members and performs a combining reduction
// of size bytes (the per-step solver synchronization both applications'
// compute phases perform).
func (c *Collective) AllReduce(n *Node, size int64) {
	c.bar.Await(n.P)
	n.P.Wait(c.m.Mesh.AllReduce(c.n, size))
}

// Gather synchronizes the members and collects size bytes from each
// non-root member at the root: the root pays the full gather time,
// senders pay one transfer. (The ESCAT version A "node zero collects the
// quadrature data" pattern.)
func (c *Collective) Gather(n *Node, root int, size int64) {
	c.bar.Await(n.P)
	if n.ID == root {
		n.P.Wait(c.m.Mesh.Gather(c.n, size))
	} else {
		n.P.Wait(c.m.Mesh.Transfer(int64(n.ID), int64(root), size))
	}
}

// SizeDist draws request sizes for synthetic workload generation.
type SizeDist interface {
	Next(rng *rand.Rand) int64
}

// Fixed always yields the same size.
type Fixed int64

// Next implements SizeDist.
func (f Fixed) Next(*rand.Rand) int64 { return int64(f) }

// Uniform yields sizes uniformly in [Lo, Hi].
type Uniform struct{ Lo, Hi int64 }

// Next implements SizeDist.
func (u Uniform) Next(rng *rand.Rand) int64 {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + rng.Int63n(u.Hi-u.Lo+1)
}

// Choice yields one of a weighted set of sizes — the natural encoding of
// the paper's multi-modal request populations ("four different request
// sizes", "97% below 2 KB plus a few 128 KB").
type Choice struct {
	Sizes   []int64
	Weights []float64
}

// Next implements SizeDist. It panics if the choice is empty or
// malformed.
func (c Choice) Next(rng *rand.Rand) int64 {
	if len(c.Sizes) == 0 || len(c.Sizes) != len(c.Weights) {
		panic("workload: malformed Choice")
	}
	var total float64
	for _, w := range c.Weights {
		if w < 0 {
			panic("workload: negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("workload: zero total weight")
	}
	x := rng.Float64() * total
	for i, w := range c.Weights {
		x -= w
		if x < 0 {
			return c.Sizes[i]
		}
	}
	return c.Sizes[len(c.Sizes)-1]
}
