package workload

import (
	"math/rand"
	"testing"
	"time"

	"paragonio/internal/mesh"
	"paragonio/internal/pfs"
	"paragonio/internal/sim"
)

func newMachine(t *testing.T, nodes int) *Machine {
	t.Helper()
	k := sim.NewKernel()
	ms := mesh.MustNew(mesh.DefaultConfig())
	fs, err := pfs.New(k, pfs.DefaultConfig(ms), nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(k, ms, fs, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMachineValidation(t *testing.T) {
	k := sim.NewKernel()
	ms := mesh.MustNew(mesh.DefaultConfig())
	fs, _ := pfs.New(k, pfs.DefaultConfig(ms), nil)
	if _, err := NewMachine(k, ms, fs, 0); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestSpawnNodesRunsAll(t *testing.T) {
	m := newMachine(t, 16)
	ran := make([]bool, 16)
	m.SpawnNodes(1, func(n *Node) {
		ran[n.ID] = true
		n.Compute(time.Millisecond)
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	for id, ok := range ran {
		if !ok {
			t.Fatalf("node %d never ran", id)
		}
	}
}

func TestNodeRNGDeterministicAndDistinct(t *testing.T) {
	draw := func() []int64 {
		m := newMachine(t, 4)
		out := make([]int64, 4)
		m.SpawnNodes(42, func(n *Node) { out[n.ID] = n.RNG.Int63() })
		if err := m.K.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different draws")
		}
	}
	if a[0] == a[1] && a[1] == a[2] {
		t.Fatal("per-node streams not distinct")
	}
}

func TestComputeJitterBounded(t *testing.T) {
	m := newMachine(t, 8)
	finish := make([]time.Duration, 8)
	m.SpawnNodes(7, func(n *Node) {
		n.ComputeJitter(time.Second, 100*time.Millisecond)
		finish[n.ID] = n.P.Now()
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	var spread bool
	for _, f := range finish {
		if f < time.Second || f >= 1100*time.Millisecond {
			t.Fatalf("finish %v out of [1s, 1.1s)", f)
		}
		if f != finish[0] {
			spread = true
		}
	}
	if !spread {
		t.Fatal("jitter produced identical finishes")
	}
}

func TestPhaseTracking(t *testing.T) {
	m := newMachine(t, 1)
	m.SpawnNodes(1, func(n *Node) {
		m.BeginPhase("one")
		n.Compute(time.Second)
		m.BeginPhase("two")
		n.Compute(2 * time.Second)
		m.EndPhases()
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	ph := m.Phases()
	if len(ph) != 2 {
		t.Fatalf("phases = %+v", ph)
	}
	if ph[0].Name != "one" || ph[0].Start != 0 || ph[0].End != time.Second {
		t.Fatalf("phase one = %+v", ph[0])
	}
	if ph[1].Name != "two" || ph[1].Start != time.Second || ph[1].End != 3*time.Second {
		t.Fatalf("phase two = %+v", ph[1])
	}
}

func TestCollectiveBarrierSynchronizes(t *testing.T) {
	m := newMachine(t, 4)
	c := m.NewCollective("sync", 4)
	after := make([]time.Duration, 4)
	m.SpawnNodes(1, func(n *Node) {
		n.Compute(time.Duration(n.ID) * time.Second)
		c.Barrier(n)
		after[n.ID] = n.P.Now()
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	for _, at := range after {
		if at != after[0] {
			t.Fatalf("barrier exit times differ: %v", after)
		}
	}
	if after[0] < 3*time.Second {
		t.Fatalf("barrier released before slowest arrival: %v", after[0])
	}
}

func TestBroadcastChargesEveryone(t *testing.T) {
	m := newMachine(t, 8)
	c := m.NewCollective("bcast", 8)
	var exit time.Duration
	m.SpawnNodes(1, func(n *Node) {
		c.Broadcast(n, 0, 1<<20)
		if n.ID == 0 {
			exit = n.P.Now()
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	want := m.Mesh.Broadcast(8, 1<<20)
	if exit != want {
		t.Fatalf("broadcast exit = %v, want %v", exit, want)
	}
}

func TestGatherRootPaysMore(t *testing.T) {
	m := newMachine(t, 8)
	c := m.NewCollective("gather", 8)
	exits := make([]time.Duration, 8)
	m.SpawnNodes(1, func(n *Node) {
		c.Gather(n, 0, 1<<18)
		exits[n.ID] = n.P.Now()
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	if exits[0] <= exits[1] {
		t.Fatalf("root exit %v not later than sender %v", exits[0], exits[1])
	}
}

func TestSizeDists(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := (Fixed(4096)).Next(rng); got != 4096 {
		t.Fatalf("Fixed = %d", got)
	}
	u := Uniform{Lo: 10, Hi: 20}
	for i := 0; i < 100; i++ {
		v := u.Next(rng)
		if v < 10 || v > 20 {
			t.Fatalf("Uniform out of range: %d", v)
		}
	}
	if got := (Uniform{Lo: 7, Hi: 7}).Next(rng); got != 7 {
		t.Fatalf("degenerate Uniform = %d", got)
	}
	ch := Choice{Sizes: []int64{100, 131072}, Weights: []float64{97, 3}}
	var small, large int
	for i := 0; i < 10000; i++ {
		switch ch.Next(rng) {
		case 100:
			small++
		case 131072:
			large++
		default:
			t.Fatal("Choice returned unknown size")
		}
	}
	frac := float64(small) / 10000
	if frac < 0.95 || frac > 0.99 {
		t.Fatalf("small fraction = %g, want ~0.97", frac)
	}
	_ = large
}

func TestChoicePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []Choice{
		{},
		{Sizes: []int64{1}, Weights: []float64{1, 2}},
		{Sizes: []int64{1}, Weights: []float64{-1}},
		{Sizes: []int64{1}, Weights: []float64{0}},
	}
	for i, c := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			c.Next(rng)
		}()
	}
}

func TestAllReduceSynchronizesAndCharges(t *testing.T) {
	m := newMachine(t, 8)
	c := m.NewCollective("ar", 8)
	exits := make([]time.Duration, 8)
	m.SpawnNodes(1, func(n *Node) {
		n.Compute(time.Duration(n.ID) * time.Second)
		c.AllReduce(n, 64)
		exits[n.ID] = n.P.Now()
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	want := 7*time.Second + m.Mesh.AllReduce(8, 64)
	for id, at := range exits {
		if at != want {
			t.Fatalf("node %d exit %v, want %v", id, at, want)
		}
	}
}
