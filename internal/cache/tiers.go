package cache

import (
	"fmt"
	"strings"
	"time"

	"paragonio/internal/disk"
)

// Tiers is the unified configuration of the what-if storage hierarchy —
// the one struct pfs and core take whole, replacing the previous
// arrangement where each layer mirrored a bare *Config field (and would
// have had to grow one per tier as the hierarchy deepened).
//
// Every tier defaults to nil: the paper's machine had none of them, so
// canonical runs stay bit-identical to the golden digests.
type Tiers struct {
	// IONode, when non-nil, installs a buffer cache on every I/O node
	// (write-behind, read-ahead — the server-side tier).
	IONode *Config
	// Client, when non-nil, installs a lease-coherent cache on every
	// compute node in front of the PFS data path (the client tier).
	Client *ClientConfig
	// Log, when non-nil, installs a per-compute-node log-structured
	// write buffer: appends absorb write bursts at memory speed and a
	// background drain writes them through to the PFS (the host-side
	// burst-buffer tier; see LogTier).
	Log *LogConfig
}

// Enabled reports whether any tier is configured.
func (t Tiers) Enabled() bool { return t.IONode != nil || t.Client != nil || t.Log != nil }

// WithDefaults fills each configured tier's zero fields — the I/O-node
// tier against the PFS stripe unit and the backing array, the client
// tier against its own documented defaults — and validates the result.
func (t Tiers) WithDefaults(blockSize int64, d disk.Params) (Tiers, error) {
	if t.IONode != nil {
		cc, err := t.IONode.WithDefaults(blockSize, d)
		if err != nil {
			return Tiers{}, err
		}
		t.IONode = &cc
	}
	if t.Client != nil {
		cc, err := t.Client.WithDefaults()
		if err != nil {
			return Tiers{}, err
		}
		t.Client = &cc
	}
	if t.Log != nil {
		lc, err := t.Log.WithDefaults()
		if err != nil {
			return Tiers{}, err
		}
		t.Log = &lc
	}
	return t, nil
}

// Validate checks every configured tier. It expects defaults to have
// been applied (WithDefaults); nil tiers are valid (disabled).
func (t Tiers) Validate() error {
	if t.IONode != nil {
		if err := t.IONode.Validate(); err != nil {
			return err
		}
	}
	if t.Client != nil {
		if err := t.Client.Validate(); err != nil {
			return err
		}
	}
	if t.Log != nil {
		if err := t.Log.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// DefaultClientTTL is re-exported for callers building ladders of
// lease-lifetime variants around the default.
const DefaultClientTTL = 500 * time.Millisecond

// String renders the configured tiers compactly and deterministically —
// the form the advisor prints and docs/ADVISOR.md pins, e.g.
// "ionode{wb=on ra=off cap=4MB} + client{cap=8MB ttl=12m0s}" or
// "log{seg=1MB drain=50ms cap=8MB}".
func (t Tiers) String() string {
	if !t.Enabled() {
		return "none (paper default)"
	}
	var parts []string
	if c := t.IONode; c != nil {
		seg := fmt.Sprintf("ionode{wb=%s ra=%s", onOff(c.WriteBehind), depth(c.ReadAhead))
		if c.CapacityBytes > 0 {
			seg += " cap=" + FormatSize(c.CapacityBytes)
		}
		if c.FlushDeadline > 0 {
			seg += fmt.Sprintf(" deadline=%v", c.FlushDeadline)
		}
		parts = append(parts, seg+"}")
	}
	if c := t.Client; c != nil {
		seg := "client{"
		if c.CapacityBytes > 0 {
			seg += "cap=" + FormatSize(c.CapacityBytes) + " "
		}
		if c.LeaseTTL > 0 {
			seg += fmt.Sprintf("ttl=%v", c.LeaseTTL)
		} else {
			seg += fmt.Sprintf("ttl=%v (default)", DefaultClientTTL)
		}
		parts = append(parts, seg+"}")
	}
	if c := t.Log; c != nil {
		seg := "log{"
		if c.SegmentBytes > 0 {
			seg += "seg=" + FormatSize(c.SegmentBytes) + " "
		} else {
			seg += "seg=" + FormatSize(DefaultLogSegment) + " "
		}
		if c.DrainDeadline > 0 {
			seg += fmt.Sprintf("drain=%v", c.DrainDeadline)
		} else {
			seg += fmt.Sprintf("drain=%v", DefaultLogDrainDeadline)
		}
		if c.CapacityBytes > 0 {
			seg += " cap=" + FormatSize(c.CapacityBytes)
		}
		parts = append(parts, seg+"}")
	}
	return strings.Join(parts, " + ")
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

func depth(n int) string {
	if n <= 0 {
		return "off"
	}
	return fmt.Sprintf("%d", n)
}

// FormatSize renders a byte count in binary units — whole ("64KB",
// "4MB") when exact, one decimal otherwise ("10.2MB").
func FormatSize(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
