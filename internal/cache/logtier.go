package cache

// The log tier is the third rung of the what-if storage hierarchy: a
// per-compute-node log-structured write buffer (the ParaLog / burst-
// buffer design the checkpoint literature converged on). Writes append
// to the node's open segment at memory speed and are acknowledged
// immediately; a background drain walks the global append order and
// writes the records to the PFS sequentially, scheduled with the same
// armed-timer deadline machinery the I/O-node cache's flusher uses. The
// paper's machine had nothing like it — the tier exists to ask what one
// would have bought the checkpoint-dominated phases.
//
// Determinism follows the client tier's pattern: all LogTier state lives
// on the sequential plane (lane 0) and is mutated only from process
// context or lane-0 events — appends by the writing process, drain
// timers via Kernel.After, drain completions through the PFS fan-out's
// Shard.Deferred continuations. No I/O lane ever touches the tier, so
// log-tier runs are bit-identical at every shard count.
//
// Two stall paths keep the model honest. A read overlapping an
// undrained record blocks until the drain catches up through it (the
// consistent read-your-writes barrier) — which is exactly why a
// RAW-resident restart stream loses to the block cache, whose dirty
// blocks serve reads instantly. And when undrained bytes exceed
// CapacityBytes, the appender blocks until the head of the log drains
// (backpressure), so the tier cannot absorb an unbounded burst for
// free.
//
// Crash semantics: a record is committed once its segment seals (or
// once it drains); Replay returns the maximal prefix of the global
// append order in which every record is committed — the consistent cut
// across the per-node logs. Records in open segments at the crash, and
// any in-flight drain batch, are lost.

import (
	"fmt"
	"time"

	"paragonio/internal/sim"
)

// Log-tier defaults, re-exported for ladder builders and docs.
const (
	// DefaultLogCapacity bounds undrained bytes per machine before
	// appends feel backpressure.
	DefaultLogCapacity int64 = 8 << 20
	// DefaultLogSegment is the append-only segment size; a full segment
	// seals, committing its records for replay.
	DefaultLogSegment int64 = 1 << 20
	// DefaultLogAppendBW is the memory-speed append bandwidth
	// (bytes/sec) — 5x the block cache's copy bandwidth, the point of a
	// host-side log.
	DefaultLogAppendBW float64 = 400e6
	// DefaultLogAppendCost is the fixed software cost per appended
	// record.
	DefaultLogAppendCost = 5 * time.Microsecond
	// DefaultLogDrainBatch is how many records one drain pass writes.
	DefaultLogDrainBatch = 8
	// DefaultLogDrainDeadline bounds how long a record sits undrained
	// before a background pass starts (the flush-deadline analog).
	DefaultLogDrainDeadline = 50 * time.Millisecond
)

// LogConfig configures the per-compute-node log tier.
type LogConfig struct {
	// CapacityBytes bounds the undrained backlog; appends beyond it
	// block until the head of the log drains (default 8 MB).
	CapacityBytes int64
	// SegmentBytes is the append-only segment size; a record that does
	// not fit seals the open segment first (default 1 MB).
	SegmentBytes int64
	// AppendBW is the memory-copy bandwidth appends are priced at, in
	// bytes/sec (default 400e6).
	AppendBW float64
	// AppendCost is the fixed per-record software cost (default 5µs).
	AppendCost time.Duration
	// DrainBatch is the number of records one background drain pass
	// writes to the PFS (default 8).
	DrainBatch int
	// DrainDeadline bounds how long a record may sit undrained before a
	// drain pass starts (default 50ms).
	DrainDeadline time.Duration
}

// WithDefaults fills zero fields with the documented defaults and
// validates the result.
func (c LogConfig) WithDefaults() (LogConfig, error) {
	if c.CapacityBytes == 0 {
		c.CapacityBytes = DefaultLogCapacity
	}
	if c.SegmentBytes == 0 {
		c.SegmentBytes = DefaultLogSegment
	}
	if c.AppendBW == 0 {
		c.AppendBW = DefaultLogAppendBW
	}
	if c.AppendCost == 0 {
		c.AppendCost = DefaultLogAppendCost
	}
	if c.DrainBatch == 0 {
		c.DrainBatch = DefaultLogDrainBatch
	}
	if c.DrainDeadline == 0 {
		c.DrainDeadline = DefaultLogDrainDeadline
	}
	return c, c.Validate()
}

// Validate checks a fully defaulted configuration.
func (c LogConfig) Validate() error {
	if c.CapacityBytes <= 0 {
		return fmt.Errorf("cache: log tier CapacityBytes = %d", c.CapacityBytes)
	}
	if c.SegmentBytes <= 0 {
		return fmt.Errorf("cache: log tier SegmentBytes = %d", c.SegmentBytes)
	}
	if c.SegmentBytes > c.CapacityBytes {
		return fmt.Errorf("cache: log tier SegmentBytes %d exceeds CapacityBytes %d",
			c.SegmentBytes, c.CapacityBytes)
	}
	if c.AppendBW <= 0 {
		return fmt.Errorf("cache: log tier AppendBW = %g", c.AppendBW)
	}
	if c.AppendCost < 0 {
		return fmt.Errorf("cache: log tier AppendCost = %v", c.AppendCost)
	}
	if c.DrainBatch <= 0 {
		return fmt.Errorf("cache: log tier DrainBatch = %d", c.DrainBatch)
	}
	if c.DrainDeadline <= 0 {
		return fmt.Errorf("cache: log tier DrainDeadline = %v", c.DrainDeadline)
	}
	return nil
}

// LogStats aggregates the tier's counters across all compute nodes.
type LogStats struct {
	Appends       uint64 // records appended
	AppendedBytes int64  // payload bytes absorbed at memory speed

	SealedSegments uint64 // segments sealed (their records committed)

	Drains         uint64 // background drain passes started
	DrainedRecords uint64 // records written through to the PFS
	DrainedBytes   int64  // bytes written through to the PFS

	ReadBackStalls uint64 // reads that blocked on an undrained record
	AppendStalls   uint64 // appends that blocked on capacity backpressure
	// StallWait is the summed time processes spent blocked on the drain
	// (read barriers plus backpressure) — the tier's honest price.
	StallWait time.Duration

	Replayed uint64 // records returned by Replay after a crash

	PendingRecords  int   // undrained records right now
	PendingBytes    int64 // undrained bytes right now
	MaxPendingBytes int64 // undrained-bytes high-water mark
	Nodes           int   // compute nodes with an instantiated log
}

// LogRecord is one appended write, as seen by drains, Replay, and the
// observer. Seq is the global append sequence (1-based); Segment is the
// per-node segment index the record landed in.
type LogRecord struct {
	Seq     uint64
	Node    int
	Stream  string
	Off     int64
	Size    int64
	Segment uint64
}

// logRecord is the tier's internal record state.
type logRecord struct {
	LogRecord
	deadline sim.Time // append instant + DrainDeadline
	sealed   bool     // segment sealed (committed for replay)
	drained  bool     // written through to the PFS
}

// LogOpKind identifies one observer event.
type LogOpKind int

const (
	// LogAppend: a record was appended (Op.Record is set).
	LogAppend LogOpKind = iota
	// LogSeal: a node sealed its open segment (Op.Node, Op.Segment).
	LogSeal
	// LogDrain: a drain pass committed records (Op.Seqs, ascending).
	LogDrain
	// LogCrash: the tier crashed; no further state changes.
	LogCrash
)

// LogOp is one observer event. Tests subscribe via SetObserver to build
// an independent shadow of the commit protocol.
type LogOp struct {
	Kind    LogOpKind
	Record  LogRecord // LogAppend
	Node    int       // LogSeal
	Segment uint64    // LogSeal
	Seqs    []uint64  // LogDrain
}

// logNode is one compute node's segment state.
type logNode struct {
	idx     int
	segment uint64       // open segment index
	segFill int64        // bytes in the open segment
	open    []*logRecord // records in the open segment
}

// logWaiter is a process blocked until the drain watermark passes seq.
type logWaiter struct {
	seq   uint64
	node  int
	p     *sim.Proc
	start sim.Time
	read  bool // read barrier (vs append backpressure)
}

// LogTier is the per-compute-node log-structured write buffer. All
// methods must be called from the sequential plane (process context or
// lane-0 events); see the package comment for the ownership argument.
type LogTier struct {
	k   *sim.Kernel
	cfg LogConfig

	nodes     map[int]*logNode
	records   []*logRecord // every record, append order (Seq = index+1)
	pending   []*logRecord // undrained records, append order
	perStream map[string]int
	pendBytes int64
	drained   uint64 // highest contiguously drained Seq

	drainq   []sim.Time // armed drain timers, ascending
	draining bool       // a drain pass is in flight
	crashed  bool

	waiters  []logWaiter
	drainer  func(batch []LogRecord, done func())
	observer func(LogOp)

	stats LogStats
}

// NewLogTier creates the tier on the given kernel. The caller must
// install a drainer (SetDrainer) before the first append drains.
func NewLogTier(k *sim.Kernel, cfg LogConfig) (*LogTier, error) {
	cfg, err := cfg.WithDefaults()
	if err != nil {
		return nil, err
	}
	return &LogTier{
		k:         k,
		cfg:       cfg,
		nodes:     make(map[int]*logNode),
		perStream: make(map[string]int),
	}, nil
}

// Config returns the tier's (defaulted) configuration.
func (lt *LogTier) Config() LogConfig { return lt.cfg }

// SetDrainer installs the drain sink: the PFS hands it batches of
// records to write through the data path, calling done (from the
// sequential plane) when the whole batch has been served.
func (lt *LogTier) SetDrainer(fn func(batch []LogRecord, done func())) { lt.drainer = fn }

// SetObserver installs an observer receiving one LogOp per state
// change, for tests that shadow the commit protocol.
func (lt *LogTier) SetObserver(fn func(LogOp)) { lt.observer = fn }

// Stats returns the tier's aggregate counters.
func (lt *LogTier) Stats() LogStats {
	s := lt.stats
	s.PendingRecords = len(lt.pending)
	s.PendingBytes = lt.pendBytes
	s.Nodes = len(lt.nodes)
	return s
}

func (lt *LogTier) nodeFor(node int) *logNode {
	n, ok := lt.nodes[node]
	if !ok {
		n = &logNode{idx: node}
		lt.nodes[node] = n
	}
	return n
}

// seal closes a node's open segment, committing its records for replay.
func (lt *LogTier) seal(n *logNode) {
	if len(n.open) == 0 {
		return
	}
	for _, r := range n.open {
		r.sealed = true
	}
	n.open = n.open[:0]
	n.segFill = 0
	lt.stats.SealedSegments++
	if lt.observer != nil {
		lt.observer(LogOp{Kind: LogSeal, Node: n.idx, Segment: n.segment})
	}
	n.segment++
}

// Append absorbs one write into the node's log: the record lands in the
// open segment (sealing it first when full) and joins the global drain
// queue. It returns the append cost the writer must pay and, when the
// undrained backlog exceeds CapacityBytes, the sequence number the
// writer must Wait for before proceeding (0 = no backpressure).
func (lt *LogTier) Append(node int, stream string, off, size int64) (time.Duration, uint64) {
	n := lt.nodeFor(node)
	if n.segFill > 0 && n.segFill+size > lt.cfg.SegmentBytes {
		lt.seal(n)
	}
	rec := &logRecord{
		LogRecord: LogRecord{
			Seq:     uint64(len(lt.records)) + 1,
			Node:    node,
			Stream:  stream,
			Off:     off,
			Size:    size,
			Segment: n.segment,
		},
		deadline: lt.k.Now() + sim.Time(lt.cfg.DrainDeadline),
	}
	lt.records = append(lt.records, rec)
	lt.pending = append(lt.pending, rec)
	lt.perStream[stream]++
	lt.pendBytes += size
	n.segFill += size
	n.open = append(n.open, rec)
	lt.stats.Appends++
	lt.stats.AppendedBytes += size
	if lt.pendBytes > lt.stats.MaxPendingBytes {
		lt.stats.MaxPendingBytes = lt.pendBytes
	}
	// The record's own event precedes any seal it triggers, so an
	// observer always learns of a record before its commit.
	if lt.observer != nil {
		lt.observer(LogOp{Kind: LogAppend, Record: rec.LogRecord})
	}
	if n.segFill >= lt.cfg.SegmentBytes {
		lt.seal(n)
	}
	cost := lt.cfg.AppendCost +
		time.Duration(float64(size)/lt.cfg.AppendBW*float64(time.Second))
	var stall uint64
	if lt.pendBytes > lt.cfg.CapacityBytes {
		over := lt.pendBytes - lt.cfg.CapacityBytes
		var freed int64
		for _, r := range lt.pending {
			freed += r.Size
			stall = r.Seq
			if freed >= over {
				break
			}
		}
	}
	lt.scheduleDrain()
	return cost, stall
}

// ReadBarrier returns the highest undrained sequence number overlapping
// [off, off+size) of stream, or 0 when the range is fully drained — the
// read-your-writes barrier a reader must Wait for.
func (lt *LogTier) ReadBarrier(stream string, off, size int64) uint64 {
	if lt.perStream[stream] == 0 || size <= 0 {
		return 0
	}
	var seq uint64
	for _, r := range lt.pending {
		if r.Stream == stream && r.Off < off+size && off < r.Off+r.Size {
			seq = r.Seq
		}
	}
	return seq
}

// Wait blocks p until the drain watermark reaches seq, arming an
// immediate drain pass. read selects which stall counter the wait is
// charged to (read barrier vs append backpressure). It returns the time
// p spent blocked.
func (lt *LogTier) Wait(p *sim.Proc, node int, seq uint64, read bool) time.Duration {
	if seq == 0 || lt.drained >= seq || lt.crashed {
		return 0
	}
	if read {
		lt.stats.ReadBackStalls++
	} else {
		lt.stats.AppendStalls++
	}
	start := lt.k.Now()
	lt.waiters = append(lt.waiters,
		logWaiter{seq: seq, node: node, p: p, start: start, read: read})
	lt.scheduleDrain()
	p.Suspend("cache: log-tier drain")
	return lt.k.Now() - start
}

// scheduleDrain arms the background drain — the flush-deadline
// machinery transplanted from the I/O-node cache: one pass is due at
// the head record's deadline, immediately under backpressure or with
// waiters blocked; armed fire times are tracked so an extra, earlier
// timer is added only when the armed ones are too late, and a timer
// whose work was drained by an earlier pass fires as a no-op.
func (lt *LogTier) scheduleDrain() {
	if lt.crashed || lt.draining || len(lt.pending) == 0 || lt.drainer == nil {
		return
	}
	now := lt.k.Now()
	at := lt.pending[0].deadline
	if at < now || len(lt.waiters) > 0 || lt.pendBytes > lt.cfg.CapacityBytes {
		at = now
	}
	if len(lt.drainq) > 0 && lt.drainq[0] <= at {
		return // an armed timer already fires soon enough
	}
	// Insert at, keeping drainq ascending (it is at most a few entries).
	i := len(lt.drainq)
	lt.drainq = append(lt.drainq, 0)
	for i > 0 && lt.drainq[i-1] > at {
		lt.drainq[i] = lt.drainq[i-1]
		i--
	}
	lt.drainq[i] = at
	lt.k.After(at-now, func() {
		// Timers fire in time order, so this firing is drainq's head.
		lt.drainq = lt.drainq[1:]
		lt.startDrain()
	})
}

// startDrain begins one pass over the head of the global append order.
func (lt *LogTier) startDrain() {
	if lt.crashed || lt.draining || len(lt.pending) == 0 {
		return // stale timer: an earlier pass drained everything
	}
	n := lt.cfg.DrainBatch
	if n > len(lt.pending) {
		n = len(lt.pending)
	}
	batch := make([]LogRecord, n)
	for i := 0; i < n; i++ {
		batch[i] = lt.pending[i].LogRecord
	}
	lt.draining = true
	lt.stats.Drains++
	lt.drainer(batch, func() { lt.drainDone(n) })
}

// drainDone commits the pass's records, advances the watermark, wakes
// every waiter it satisfies, and re-arms the drain. Runs on the
// sequential plane (the PFS routes it through Shard.Deferred).
func (lt *LogTier) drainDone(n int) {
	lt.draining = false
	if lt.crashed {
		return // the in-flight batch died with the crash
	}
	seqs := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		r := lt.pending[i]
		r.drained = true
		lt.drained = r.Seq
		lt.pendBytes -= r.Size
		lt.perStream[r.Stream]--
		lt.stats.DrainedRecords++
		lt.stats.DrainedBytes += r.Size
		seqs = append(seqs, r.Seq)
	}
	lt.pending = lt.pending[n:]
	if lt.observer != nil {
		lt.observer(LogOp{Kind: LogDrain, Seqs: seqs})
	}
	// Wake satisfied waiters in arrival order (deterministic: arrival
	// order is itself an event-order artifact).
	kept := lt.waiters[:0]
	for _, w := range lt.waiters {
		if w.seq <= lt.drained {
			lt.stats.StallWait += time.Duration(lt.k.Now() - w.start)
			lt.k.ComputeLane(w.node).Wake(w.p)
			continue
		}
		kept = append(kept, w)
	}
	lt.waiters = kept
	lt.scheduleDrain()
}

// Crash freezes the tier at the current instant: the in-flight drain
// batch (if any) is lost, no further drains run, and blocked waiters
// are released (their stall accounting stops here). After a crash the
// consistent cut is fixed and Replay returns it.
func (lt *LogTier) Crash() {
	if lt.crashed {
		return
	}
	lt.crashed = true
	for _, w := range lt.waiters {
		lt.stats.StallWait += time.Duration(lt.k.Now() - w.start)
		lt.k.ComputeLane(w.node).Wake(w.p)
	}
	lt.waiters = nil
	if lt.observer != nil {
		lt.observer(LogOp{Kind: LogCrash})
	}
}

// Cut returns the consistent-cut sequence number: the largest S such
// that every record with Seq <= S is committed (drained, or in a sealed
// segment). Records above the cut — open-segment records and any drain
// batch in flight at a crash — are not recoverable in order.
func (lt *LogTier) Cut() uint64 {
	for _, r := range lt.records {
		if !r.drained && !r.sealed {
			return r.Seq - 1
		}
	}
	return uint64(len(lt.records))
}

// Replay returns the committed prefix of the global append order — the
// records a restart would read back, in the exact order they were
// appended. Typically called after Crash; on a live tier it returns the
// currently committed prefix.
func (lt *LogTier) Replay() []LogRecord {
	cut := lt.Cut()
	out := make([]LogRecord, 0, cut)
	for _, r := range lt.records[:cut] {
		out = append(out, r.LogRecord)
	}
	lt.stats.Replayed += uint64(len(out))
	return out
}
