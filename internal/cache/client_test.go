package cache

import (
	"fmt"
	"testing"
	"time"

	"paragonio/internal/disk"
	"paragonio/internal/mesh"
	"paragonio/internal/sim"
)

func newClientRig(t testing.TB, cfg ClientConfig) (*sim.Kernel, *ClientTier) {
	t.Helper()
	full, err := cfg.WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	m := mesh.MustNew(mesh.DefaultConfig())
	ct, err := NewClientTier(k, m, full)
	if err != nil {
		t.Fatal(err)
	}
	return k, ct
}

func TestClientConfigDefaults(t *testing.T) {
	c, err := ClientConfig{}.WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if c.BlockSize != 4096 || c.CapacityBytes != 1<<20 || c.LeaseTTL != DefaultClientTTL {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	bad := []ClientConfig{
		{BlockSize: -1},
		{BlockSize: 4096, CapacityBytes: 1024}, // less than one block
		{LeaseTTL: -time.Second},
		{CopyBW: -1},
		{HitCost: -time.Second},
		{RecallBytes: -1},
	}
	for i, b := range bad {
		if _, err := b.WithDefaults(); err == nil {
			t.Errorf("bad config %d (%+v) validated", i, b)
		}
	}
}

func TestTiersDefaultsAndValidate(t *testing.T) {
	ti, err := Tiers{
		IONode: &Config{WriteBehind: true},
		Client: &ClientConfig{},
	}.WithDefaults(64*1024, disk.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !ti.Enabled() || ti.IONode.BlockSize != 64*1024 || ti.Client.BlockSize != 4096 {
		t.Fatalf("defaults not applied: %+v / %+v", ti.IONode, ti.Client)
	}
	if err := ti.Validate(); err != nil {
		t.Fatal(err)
	}
	if (Tiers{}).Enabled() {
		t.Fatal("zero Tiers reports enabled")
	}
	if err := (Tiers{}).Validate(); err != nil {
		t.Fatalf("zero Tiers must validate (all tiers off): %v", err)
	}
	if _, err := (Tiers{Client: &ClientConfig{BlockSize: -1}}).WithDefaults(64*1024, disk.DefaultParams()); err == nil {
		t.Fatal("bad client config survived Tiers.WithDefaults")
	}
}

// TestClientTierBasics drives the tier directly from a process: miss,
// install, hit, expiry, and the hit/miss statistics.
func TestClientTierBasics(t *testing.T) {
	k, ct := newClientRig(t, ClientConfig{LeaseTTL: 10 * time.Millisecond})
	k.Spawn("driver", func(p *sim.Proc) {
		if _, hit := ct.Read(0, "f", 0, 4096); hit {
			t.Error("cold read hit")
		}
		ct.Install(0, "f", 0, 4096)
		d, hit := ct.Read(0, "f", 0, 4096)
		if !hit {
			t.Error("warm read missed")
		}
		if want := ct.Config().HitCost + ct.CopyCost(4096); d != want {
			t.Errorf("hit cost %v, want %v", d, want)
		}
		// Age the lease out: the same block must miss and count an
		// expiry.
		p.Wait(11 * time.Millisecond)
		if _, hit := ct.Read(0, "f", 0, 4096); hit {
			t.Error("expired lease served a hit")
		}
		st := ct.Stats()
		if st.Hits != 1 || st.Misses != 2 || st.LeaseExpired != 1 {
			t.Errorf("stats: %+v", st)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestClientWriteInvalidation: a write recalls a peer's valid lease,
// counts the averted stale read, and prices the round-trip at mesh
// latency; expired holders cost nothing.
func TestClientWriteInvalidation(t *testing.T) {
	k, ct := newClientRig(t, ClientConfig{LeaseTTL: 10 * time.Millisecond})
	m := mesh.MustNew(mesh.DefaultConfig())
	k.Spawn("driver", func(p *sim.Proc) {
		ct.Install(3, "f", 0, 4096) // peer holds block 0
		d := ct.Write(9, "f", 0, 4096)
		want := m.Transfer(9, 3, ct.Config().RecallBytes) + m.Transfer(3, 9, 0)
		if d != want {
			t.Errorf("recall cost %v, want mesh round-trip %v", d, want)
		}
		if _, hit := ct.Read(3, "f", 0, 4096); hit {
			t.Error("peer still hits after recall")
		}
		st := ct.Stats()
		if st.Recalls != 1 || st.StaleAverted != 1 || st.RecallRounds != 1 {
			t.Errorf("stats after recall: %+v", st)
		}
		// Writer's own copy stays resident (full-cover write-update).
		if _, hit := ct.Read(9, "f", 0, 4096); !hit {
			t.Error("writer lost its own fresh copy")
		}
		// Expired holders are skipped for free.
		ct.Install(3, "f", 8192, 4096)
		p.Wait(11 * time.Millisecond)
		if d := ct.Write(9, "f", 8192, 4096); d != 0 {
			t.Errorf("recalling an expired holder cost %v, want 0", d)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestClientRacedFill: a fill that a write overtakes is discarded
// instead of installing possibly-stale bytes under a fresh lease.
func TestClientRacedFill(t *testing.T) {
	k, ct := newClientRig(t, ClientConfig{})
	k.Spawn("driver", func(p *sim.Proc) {
		if _, hit := ct.Read(0, "f", 0, 4096); hit { // records the pending fill
			t.Error("cold read hit")
		}
		ct.Write(1, "f", 0, 4096) // write lands while the fill is in flight
		ct.Install(0, "f", 0, 4096)
		if _, hit := ct.Read(0, "f", 0, 4096); hit {
			t.Error("raced fill was installed and served")
		}
		if st := ct.Stats(); st.RacedFills != 1 {
			t.Errorf("RacedFills = %d, want 1", st.RacedFills)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestClientPartialWriteRules pins the self-copy rules: a partial write
// over a still-leased copy keeps it (old bytes were current, new bytes
// are ours); a partial write with no valid copy cannot cache the block.
func TestClientPartialWriteRules(t *testing.T) {
	k, ct := newClientRig(t, ClientConfig{LeaseTTL: 10 * time.Millisecond})
	k.Spawn("driver", func(p *sim.Proc) {
		ct.Install(0, "f", 0, 4096)
		ct.Write(0, "f", 100, 50) // partial, lease valid → copy stays
		if _, hit := ct.Read(0, "f", 0, 4096); !hit {
			t.Error("partial write over leased copy dropped it")
		}
		p.Wait(11 * time.Millisecond) // lease dies
		ct.Write(0, "f", 100, 50)     // partial, lease expired → copy dropped
		if _, hit := ct.Read(0, "f", 0, 4096); hit {
			t.Error("partial write over expired copy kept stale bytes")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestClientEviction: capacity pressure evicts LRU blocks and clears
// their directory registrations (no phantom recalls afterwards).
func TestClientEviction(t *testing.T) {
	k, ct := newClientRig(t, ClientConfig{CapacityBytes: 2 * 4096})
	k.Spawn("driver", func(p *sim.Proc) {
		ct.Install(0, "f", 0, 3*4096) // 3 blocks into a 2-block cache
		st := ct.Stats()
		if st.Evicted != 1 || st.Blocks != 2 {
			t.Errorf("stats after overfill: %+v", st)
		}
		// The evicted block (idx 0, the LRU) must not cost the writer a
		// recall round-trip.
		if d := ct.Write(1, "f", 0, 4096); d != 0 {
			t.Errorf("evicted block still registered: recall cost %v", d)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkClientTierHit(b *testing.B) {
	k, ct := newClientRig(b, ClientConfig{LeaseTTL: time.Hour})
	done := make(chan struct{})
	k.Spawn("bench", func(p *sim.Proc) {
		defer close(done)
		ct.Install(0, "f", 0, 4096)
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, hit := ct.Read(0, "f", 0, 4096); !hit {
				b.Error("unexpected miss")
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	<-done
}

func BenchmarkClientTierRecall(b *testing.B) {
	k, ct := newClientRig(b, ClientConfig{LeaseTTL: time.Hour, CapacityBytes: 64 << 20})
	done := make(chan struct{})
	k.Spawn("bench", func(p *sim.Proc) {
		defer close(done)
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// 4 peers re-register each round; the writer recalls them all.
			for peer := 1; peer <= 4; peer++ {
				ct.Install(peer, "f", 0, 4096)
			}
			if d := ct.Write(0, "f", 0, 4096); d == 0 {
				b.Error("no recall cost")
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	<-done
}

func TestClientStatsHitRatio(t *testing.T) {
	if r := (ClientStats{}).HitRatio(); r != 0 {
		t.Fatalf("empty hit ratio %v", r)
	}
	s := ClientStats{Hits: 3, Misses: 1}
	if r := s.HitRatio(); r != 0.75 {
		t.Fatalf("hit ratio %v, want 0.75", r)
	}
}

func TestClientTierRejectsNilMesh(t *testing.T) {
	cfg, err := ClientConfig{}.WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClientTier(sim.NewKernel(), nil, cfg); err == nil {
		t.Fatal("nil mesh accepted")
	}
	if _, err := NewClientTier(sim.NewKernel(), mesh.MustNew(mesh.DefaultConfig()), ClientConfig{}); err == nil {
		t.Fatal("unvalidated zero config accepted")
	}
}

// TestClientMultiBlockSpan: a read spanning blocks hits only when every
// block is valid, and per-block accounting reflects the span width.
func TestClientMultiBlockSpan(t *testing.T) {
	k, ct := newClientRig(t, ClientConfig{})
	k.Spawn("driver", func(p *sim.Proc) {
		ct.Install(0, "f", 0, 2*4096)
		if _, hit := ct.Read(0, "f", 0, 3*4096); hit {
			t.Error("span with a missing block hit")
		}
		ct.Install(0, "f", 0, 3*4096)
		if _, hit := ct.Read(0, "f", 100, 2*4096); !hit {
			t.Error("fully resident span missed")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func ExampleClientTier() {
	k := sim.NewKernel()
	m := mesh.MustNew(mesh.DefaultConfig())
	cfg, _ := ClientConfig{}.WithDefaults()
	ct, _ := NewClientTier(k, m, cfg)
	k.Spawn("demo", func(p *sim.Proc) {
		ct.Install(0, "data", 0, 8192)
		_, hit := ct.Read(0, "data", 0, 4096)
		fmt.Println("node 0 warm read hit:", hit)
		ct.Write(1, "data", 0, 4096) // node 1 writes → recall
		_, hit = ct.Read(0, "data", 0, 4096)
		fmt.Println("node 0 read after peer write hit:", hit)
	})
	k.Run()
	// Output:
	// node 0 warm read hit: true
	// node 0 read after peer write hit: false
}
