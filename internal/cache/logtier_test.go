package cache

import (
	"math/rand"
	"testing"
	"time"

	"paragonio/internal/sim"
)

func TestLogConfigDefaults(t *testing.T) {
	cfg, err := LogConfig{}.WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CapacityBytes != DefaultLogCapacity || cfg.SegmentBytes != DefaultLogSegment {
		t.Fatalf("size defaults not filled: %+v", cfg)
	}
	if cfg.AppendBW != DefaultLogAppendBW || cfg.AppendCost != DefaultLogAppendCost {
		t.Fatalf("append-cost defaults not filled: %+v", cfg)
	}
	if cfg.DrainBatch != DefaultLogDrainBatch || cfg.DrainDeadline != DefaultLogDrainDeadline {
		t.Fatalf("drain defaults not filled: %+v", cfg)
	}
}

func TestLogConfigValidation(t *testing.T) {
	bad := []LogConfig{
		{CapacityBytes: -1},
		{SegmentBytes: -1},
		{CapacityBytes: 1 << 20, SegmentBytes: 2 << 20}, // segment > capacity
		{AppendBW: -1},
		{AppendCost: -time.Second},
		{DrainBatch: -1},
		{DrainDeadline: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := cfg.WithDefaults(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

// logRig is a one-kernel harness with an instrumented drainer: each
// batch completes after delay, and the rig records every batch served.
type logRig struct {
	k       *sim.Kernel
	lt      *LogTier
	delay   time.Duration
	batches [][]LogRecord
}

func newLogRig(t *testing.T, cfg LogConfig, delay time.Duration) *logRig {
	t.Helper()
	k := sim.NewKernel()
	lt, err := NewLogTier(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := &logRig{k: k, lt: lt, delay: delay}
	lt.SetDrainer(func(batch []LogRecord, done func()) {
		cp := make([]LogRecord, len(batch))
		copy(cp, batch)
		r.batches = append(r.batches, cp)
		k.After(sim.Time(r.delay), done)
	})
	return r
}

// TestLogTierAppendSealDrain drives the happy path: appends fill and
// seal segments, the deadline drain writes everything through in append
// order, and the counters balance.
func TestLogTierAppendSealDrain(t *testing.T) {
	r := newLogRig(t, LogConfig{
		SegmentBytes:  64 << 10,
		CapacityBytes: 1 << 20,
		DrainDeadline: 2 * time.Millisecond,
		DrainBatch:    4,
	}, time.Millisecond)
	const recSize = 32 << 10
	r.k.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			cost, stall := r.lt.Append(0, "log/a", int64(i)*recSize, recSize)
			if stall != 0 {
				t.Errorf("append %d hit backpressure below capacity", i)
			}
			if cost <= 0 {
				t.Errorf("append %d cost %v", i, cost)
			}
			p.Wait(sim.Time(cost))
		}
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	s := r.lt.Stats()
	if s.Appends != 8 || s.AppendedBytes != 8*recSize {
		t.Errorf("appends = %d (%d bytes), want 8 (%d)", s.Appends, s.AppendedBytes, 8*recSize)
	}
	// Two 32 KB records fill one 64 KB segment; the 8th record's segment
	// seals on the fill boundary too.
	if s.SealedSegments != 4 {
		t.Errorf("sealed segments = %d, want 4", s.SealedSegments)
	}
	if s.DrainedRecords != 8 || s.PendingRecords != 0 || s.PendingBytes != 0 {
		t.Errorf("drain did not finish: %+v", s)
	}
	var seq uint64
	for _, b := range r.batches {
		for _, rec := range b {
			seq++
			if rec.Seq != seq {
				t.Fatalf("drain order broke: got seq %d at position %d", rec.Seq, seq)
			}
		}
	}
	if seq != 8 {
		t.Errorf("drained %d records through the sink, want 8", seq)
	}
	if got := r.lt.Cut(); got != 8 {
		t.Errorf("cut = %d, want 8 (everything drained)", got)
	}
}

// TestLogTierReadBarrier pins the read-your-writes stall: a read
// overlapping an undrained record blocks until the drain passes it, and
// a disjoint read does not block at all.
func TestLogTierReadBarrier(t *testing.T) {
	r := newLogRig(t, LogConfig{
		SegmentBytes:  64 << 10,
		CapacityBytes: 1 << 20,
		DrainDeadline: 50 * time.Millisecond,
		DrainBatch:    8,
	}, time.Millisecond)
	var stalled time.Duration
	r.k.Spawn("writer", func(p *sim.Proc) {
		cost, _ := r.lt.Append(0, "log/a", 0, 16<<10)
		p.Wait(sim.Time(cost))
		if seq := r.lt.ReadBarrier("log/b", 0, 16<<10); seq != 0 {
			t.Errorf("disjoint stream barrier = %d, want 0", seq)
		}
		if seq := r.lt.ReadBarrier("log/a", 32<<10, 16<<10); seq != 0 {
			t.Errorf("disjoint range barrier = %d, want 0", seq)
		}
		seq := r.lt.ReadBarrier("log/a", 8<<10, 16<<10)
		if seq != 1 {
			t.Fatalf("overlapping barrier = %d, want 1", seq)
		}
		stalled = r.lt.Wait(p, 0, seq, true)
		if got := r.lt.ReadBarrier("log/a", 8<<10, 16<<10); got != 0 {
			t.Errorf("barrier after drain = %d, want 0", got)
		}
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if stalled <= 0 {
		t.Error("read barrier did not block")
	}
	s := r.lt.Stats()
	if s.ReadBackStalls != 1 || s.AppendStalls != 0 {
		t.Errorf("stall counters: %+v", s)
	}
	if s.StallWait != stalled {
		t.Errorf("StallWait = %v, want %v", s.StallWait, stalled)
	}
}

// TestLogTierBackpressure pins the capacity stall: appends past
// CapacityBytes return the head sequence to wait for, and the writer is
// blocked until the drain frees enough of the backlog.
func TestLogTierBackpressure(t *testing.T) {
	r := newLogRig(t, LogConfig{
		SegmentBytes:  64 << 10,
		CapacityBytes: 64 << 10,
		DrainDeadline: 50 * time.Millisecond,
		DrainBatch:    1,
	}, time.Millisecond)
	var stalls int
	r.k.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			cost, stall := r.lt.Append(0, "log/a", int64(i)*32<<10, 32<<10)
			p.Wait(sim.Time(cost))
			if stall != 0 {
				stalls++
				if d := r.lt.Wait(p, 0, stall, false); d <= 0 {
					t.Errorf("append %d: backpressure wait returned %v", i, d)
				}
			}
		}
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if stalls == 0 {
		t.Fatal("no append hit backpressure past capacity")
	}
	s := r.lt.Stats()
	if s.AppendStalls != uint64(stalls) {
		t.Errorf("AppendStalls = %d, want %d", s.AppendStalls, stalls)
	}
	if s.MaxPendingBytes <= 64<<10 {
		t.Errorf("MaxPendingBytes = %d never exceeded capacity", s.MaxPendingBytes)
	}
	if s.DrainedRecords != 4 {
		t.Errorf("DrainedRecords = %d, want 4", s.DrainedRecords)
	}
}

// logShadow rebuilds the commit protocol independently from observer
// events: a record is committed when a LogDrain names it or its
// (node, segment) seals. The shadow never reads LogTier state.
type logShadow struct {
	appended  []LogRecord
	committed map[uint64]bool
	bySegment map[[2]uint64][]uint64 // (node, segment) -> seqs
	crashed   bool
}

func newLogShadow() *logShadow {
	return &logShadow{
		committed: make(map[uint64]bool),
		bySegment: make(map[[2]uint64][]uint64),
	}
}

func (s *logShadow) observe(op LogOp) {
	switch op.Kind {
	case LogAppend:
		s.appended = append(s.appended, op.Record)
		k := [2]uint64{uint64(op.Record.Node), op.Record.Segment}
		s.bySegment[k] = append(s.bySegment[k], op.Record.Seq)
	case LogSeal:
		for _, seq := range s.bySegment[[2]uint64{uint64(op.Node), op.Segment}] {
			s.committed[seq] = true
		}
	case LogDrain:
		for _, seq := range op.Seqs {
			s.committed[seq] = true
		}
	case LogCrash:
		s.crashed = true
	}
}

// cut is the oracle: the maximal prefix of the append order in which
// every record is committed.
func (s *logShadow) cut() []LogRecord {
	out := []LogRecord{}
	for _, r := range s.appended {
		if !s.committed[r.Seq] {
			break
		}
		out = append(out, r)
	}
	return out
}

// TestLogTierReplayConsistentCut is the randomized crash-replay
// property test: writers on several nodes append records of random
// sizes while drains complete after random delays; the tier crashes at
// a random instant (sometimes mid-drain, losing the in-flight batch);
// and Replay must equal the independent oracle's consistent cut —
// every committed record, in exact append order, nothing else.
func TestLogTierReplayConsistentCut(t *testing.T) {
	sawPartial := false
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := sim.NewKernel()
		lt, err := NewLogTier(k, LogConfig{
			SegmentBytes:  64 << 10,
			CapacityBytes: 256 << 10,
			DrainDeadline: 2 * time.Millisecond,
			DrainBatch:    3,
		})
		if err != nil {
			t.Fatal(err)
		}
		shadow := newLogShadow()
		lt.SetObserver(shadow.observe)
		// Drain delays are drawn up front so the drainer itself stays
		// deterministic in event order.
		lt.SetDrainer(func(batch []LogRecord, done func()) {
			k.After(sim.Time(time.Duration(1+rng.Intn(4000))*time.Microsecond), done)
		})
		crashed := false
		k.After(sim.Time(time.Duration(1+rng.Intn(30))*time.Millisecond), func() {
			crashed = true
			lt.Crash()
		})
		for node := 0; node < 3; node++ {
			node := node
			k.Spawn("writer", func(p *sim.Proc) {
				var off int64
				for i := 0; i < 30 && !crashed; i++ {
					size := int64(4+rng.Intn(44)) << 10
					cost, stall := lt.Append(node, "log/stream", off, size)
					off += size
					p.Wait(sim.Time(cost))
					if stall != 0 {
						lt.Wait(p, node, stall, false)
					}
					p.Wait(sim.Time(time.Duration(rng.Intn(500)) * time.Microsecond))
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if !shadow.crashed {
			t.Fatalf("seed %d: crash event never observed", seed)
		}
		got := lt.Replay()
		want := shadow.cut()
		if len(got) != len(want) {
			t.Fatalf("seed %d: replay %d records, oracle cut %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: replay[%d] = %+v, oracle %+v", seed, i, got[i], want[i])
			}
			if got[i].Seq != uint64(i)+1 {
				t.Fatalf("seed %d: replay[%d].Seq = %d, not append order", seed, i, got[i].Seq)
			}
		}
		if len(got) > 0 && len(got) < len(shadow.appended) {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Error("no seed produced a partial cut — the crash never interrupted the log")
	}
}
