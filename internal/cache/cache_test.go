package cache

import (
	"testing"
	"time"

	"paragonio/internal/disk"
	"paragonio/internal/sim"
)

const testBlock int64 = 64 * 1024

// rig is a one-I/O-node harness: a kernel, the node's FIFO resource, its
// array, and a cache in front.
type rig struct {
	k   *sim.Kernel
	res *sim.Resource
	arr *disk.Array
	c   *Cache
}

func newRig(t *testing.T, mut func(*Config)) *rig {
	t.Helper()
	k := sim.NewKernel()
	res := sim.NewResource(k, "ionode-0", 1)
	arr := disk.MustNewArray(disk.DefaultParams())
	cfg := Config{WriteBehind: true}
	if mut != nil {
		mut(&cfg)
	}
	full, err := cfg.WithDefaults(testBlock, disk.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(k, res, arr, full)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, res: res, arr: arr, c: c}
}

// do runs body as a client process holding the I/O-node resource for each
// access, then drives the kernel to completion (including trailing
// flushes).
func (r *rig) do(t *testing.T, body func(p *sim.Proc, access func(stream string, off, size int64, write bool))) {
	t.Helper()
	r.k.Spawn("client", func(p *sim.Proc) {
		body(p, func(stream string, off, size int64, write bool) {
			r.res.Acquire(p)
			p.Wait(r.c.Access(stream, off, size, write))
			r.res.Release(p)
		})
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg, err := Config{}.WithDefaults(testBlock, disk.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BlockSize != testBlock {
		t.Fatalf("BlockSize = %d, want stripe unit %d", cfg.BlockSize, testBlock)
	}
	frac := float64(DefaultCapacityFrac)
	wantCap := int64(frac * 4.8 * float64(1<<30))
	if cfg.CapacityBytes != wantCap {
		t.Fatalf("CapacityBytes = %d, want %d (1/256 of the array)", cfg.CapacityBytes, wantCap)
	}
	if cfg.DirtyHighWater != int(wantCap/testBlock/2) {
		t.Fatalf("DirtyHighWater = %d, want half the block capacity", cfg.DirtyHighWater)
	}
	if cfg.FlushBatch <= 0 || cfg.IdleFlush <= 0 || cfg.CopyBW <= 0 || cfg.HitCost <= 0 {
		t.Fatalf("missing defaults: %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative block", func(c *Config) { c.BlockSize = -1 }},
		{"tiny capacity", func(c *Config) { c.CapacityBytes = testBlock }},
		{"negative read-ahead", func(c *Config) { c.ReadAhead = -1 }},
		{"negative hit cost", func(c *Config) { c.HitCost = -time.Microsecond }},
		{"negative copy bw", func(c *Config) { c.CopyBW = -1 }},
		{"negative flush deadline", func(c *Config) { c.FlushDeadline = -time.Millisecond }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{}
			tc.mut(&cfg)
			if _, err := cfg.WithDefaults(testBlock, disk.DefaultParams()); err == nil {
				t.Fatalf("WithDefaults accepted %+v", cfg)
			}
		})
	}
	// Zero-capacity disks cannot size the cache.
	d := disk.DefaultParams()
	d.CapacityGB = 0
	if _, err := (Config{}).WithDefaults(testBlock, d); err == nil {
		t.Fatal("WithDefaults accepted a zero-capacity array")
	}
}

func TestReadMissThenHit(t *testing.T) {
	r := newRig(t, nil)
	var miss, hit time.Duration
	r.do(t, func(p *sim.Proc, access func(string, int64, int64, bool)) {
		r.res.Acquire(p)
		miss = r.c.Access("f", 0, 4096, false)
		hit = r.c.Access("f", 0, 4096, false)
		r.res.Release(p)
	})
	if hit >= miss {
		t.Fatalf("hit (%v) not cheaper than miss (%v)", hit, miss)
	}
	s := r.c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", s)
	}
	if got := s.HitRatio(); got != 0.5 {
		t.Fatalf("HitRatio = %g, want 0.5", got)
	}
}

func TestWriteBehindAcksAtCopyCost(t *testing.T) {
	r := newRig(t, nil)
	coldDisk := disk.MustNewArray(disk.DefaultParams()).Service("f", 0, testBlock)
	var ack time.Duration
	r.do(t, func(p *sim.Proc, access func(string, int64, int64, bool)) {
		r.res.Acquire(p)
		ack = r.c.Access("f", 0, testBlock, true)
		r.res.Release(p)
	})
	if ack >= coldDisk/4 {
		t.Fatalf("write-behind ack %v not well under disk service %v", ack, coldDisk)
	}
	s := r.c.Stats()
	if s.WriteBehindBytes != testBlock {
		t.Fatalf("WriteBehindBytes = %d, want %d", s.WriteBehindBytes, testBlock)
	}
}

func TestFlusherDrainsAndTerminates(t *testing.T) {
	r := newRig(t, nil)
	r.do(t, func(p *sim.Proc, access func(stream string, off, size int64, write bool)) {
		for i := int64(0); i < 20; i++ {
			access("f", i*testBlock, testBlock, true)
		}
	})
	// Kernel.Run returned: the flusher terminated on its own. All dirty
	// data must have reached the array.
	s := r.c.Stats()
	if s.Dirty != 0 {
		t.Fatalf("Dirty = %d after run end, want 0", s.Dirty)
	}
	if s.FlushedBlocks != 20 {
		t.Fatalf("FlushedBlocks = %d, want 20", s.FlushedBlocks)
	}
	if s.MaxDirty == 0 {
		t.Fatal("MaxDirty never rose above 0")
	}
	if as := r.arr.Stats(); as.BytesMoved != 20*testBlock {
		t.Fatalf("array saw %d bytes, want %d", as.BytesMoved, 20*testBlock)
	}
}

func TestReadOfDirtyBlockHitsCache(t *testing.T) {
	r := newRig(t, nil)
	r.do(t, func(p *sim.Proc, access func(stream string, off, size int64, write bool)) {
		r.res.Acquire(p)
		r.c.Access("f", 0, testBlock, true)
		before := r.arr.Stats().Requests
		r.c.Access("f", 0, 4096, false)
		if after := r.arr.Stats().Requests; after != before {
			t.Errorf("read of a dirty block touched the array (%d -> %d requests)", before, after)
		}
		r.res.Release(p)
	})
	if s := r.c.Stats(); s.Hits == 0 {
		t.Fatalf("stats = %+v, want a hit for the dirty-block read", s)
	}
}

func TestLRUEvictionAndForcedFlushStall(t *testing.T) {
	// Four-block cache, write-behind on, flusher effectively disabled so
	// dirty blocks pile up and evictions must flush synchronously.
	r := newRig(t, func(c *Config) {
		c.CapacityBytes = 4 * testBlock
		c.DirtyHighWater = 100
		c.IdleFlush = time.Hour
	})
	var clean, stalled time.Duration
	r.do(t, func(p *sim.Proc, access func(stream string, off, size int64, write bool)) {
		r.res.Acquire(p)
		for i := int64(0); i < 4; i++ {
			r.c.Access("f", i*testBlock, testBlock, true)
		}
		// Fifth distinct block: evicts the (dirty) LRU block 0.
		stalled = r.c.Access("f", 4*testBlock, testBlock, true)
		r.res.Release(p)
	})
	clean = time.Duration(float64(testBlock)/80e6*float64(time.Second)) + 30*time.Microsecond
	s := r.c.Stats()
	if s.ForcedFlushStalls == 0 {
		t.Fatalf("stats = %+v, want a forced-flush stall", s)
	}
	if s.Blocks > 4 {
		t.Fatalf("Blocks = %d exceeds capacity 4", s.Blocks)
	}
	if stalled <= clean {
		t.Fatalf("stalled write (%v) not slower than clean ack (%v)", stalled, clean)
	}
}

// TestDeadlinePolicyFlushesByAge contrasts the two flush policies on the
// same two-write program: below the high-water mark the deadline policy
// writes each block within FlushDeadline of its first dirtying (two
// single-block passes), while the high-water + idle policy drains both in
// one batch when the idle timer fires.
func TestDeadlinePolicyFlushesByAge(t *testing.T) {
	program := func(p *sim.Proc, access func(stream string, off, size int64, write bool)) {
		access("f", 0, testBlock, true)
		p.Wait(3 * time.Millisecond)
		access("f", testBlock, testBlock, true)
	}

	idle := newRig(t, func(c *Config) {
		c.IdleFlush = 5 * time.Millisecond
		c.DirtyHighWater = 100
	})
	idle.do(t, program)
	if s := idle.c.Stats(); s.Flushes != 1 || s.FlushedBlocks != 2 || s.DeadlineFlushes != 0 {
		t.Fatalf("high-water+idle stats = %+v, want one 2-block pass and no deadline passes", s)
	}

	dl := newRig(t, func(c *Config) {
		c.IdleFlush = time.Hour // idle clock must not fire under the deadline policy
		c.FlushDeadline = 5 * time.Millisecond
		c.DirtyHighWater = 100
	})
	dl.do(t, program)
	if s := dl.c.Stats(); s.Flushes != 2 || s.FlushedBlocks != 2 || s.DeadlineFlushes != 2 {
		t.Fatalf("deadline stats = %+v, want two single-block deadline passes", s)
	}
	if s := dl.c.Stats(); s.Dirty != 0 {
		t.Fatalf("Dirty = %d after run end, want 0", s.Dirty)
	}
}

// TestDeadlineHighWaterStillDrains pins that a high-water breach drains a
// full batch immediately even when the armed deadline is far away.
func TestDeadlineHighWaterStillDrains(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.FlushDeadline = time.Hour
		c.IdleFlush = time.Hour
		c.DirtyHighWater = 2
	})
	r.do(t, func(p *sim.Proc, access func(stream string, off, size int64, write bool)) {
		for i := int64(0); i < 4; i++ {
			access("f", i*testBlock, testBlock, true)
		}
		// Well before the 1 h deadline, high-water pressure must already
		// have drained everything.
		p.Wait(time.Second)
		if d := r.c.Dirty(); d != 0 {
			t.Errorf("Dirty = %d one second in, want 0 (high-water breach waited for the deadline)", d)
		}
	})
	s := r.c.Stats()
	if s.Dirty != 0 || s.FlushedBlocks != 4 {
		t.Fatalf("stats = %+v, want all 4 blocks drained by high-water pressure", s)
	}
}

func TestReadAheadSequentialStream(t *testing.T) {
	r := newRig(t, func(c *Config) { c.ReadAhead = 4 })
	r.do(t, func(p *sim.Proc, access func(stream string, off, size int64, write bool)) {
		for i := int64(0); i < 8; i++ {
			access("f", i*testBlock, 4096, false)
			p.Wait(100 * time.Millisecond) // think time lets prefetches land
		}
	})
	s := r.c.Stats()
	if s.ReadAheadIssued == 0 {
		t.Fatalf("stats = %+v, want prefetches issued", s)
	}
	if s.ReadAheadUsed == 0 {
		t.Fatalf("stats = %+v, want prefetched blocks demanded", s)
	}
	if acc := s.ReadAheadAccuracy(); acc < 0.5 {
		t.Fatalf("ReadAheadAccuracy = %g, want >= 0.5 on a pure sequential stream", acc)
	}
	// Blocks 2..7 should have been cache hits (prefetched before demand).
	if s.Hits < 4 {
		t.Fatalf("Hits = %d, want most of the stream served from read-ahead", s.Hits)
	}
}

func TestReadAheadStrided(t *testing.T) {
	// One file's stripes land on an I/O node 16 blocks apart — the
	// detector must follow that constant stride too.
	r := newRig(t, func(c *Config) { c.ReadAhead = 2 })
	r.do(t, func(p *sim.Proc, access func(stream string, off, size int64, write bool)) {
		for i := int64(0); i < 6; i++ {
			access("f", i*16*testBlock, 4096, false)
			p.Wait(100 * time.Millisecond)
		}
	})
	if s := r.c.Stats(); s.ReadAheadUsed == 0 {
		t.Fatalf("stats = %+v, want strided prefetches demanded", s)
	}
}

func TestReadAheadCancelsOnStrideBreak(t *testing.T) {
	r := newRig(t, func(c *Config) { c.ReadAhead = 4 })
	r.do(t, func(p *sim.Proc, access func(stream string, off, size int64, write bool)) {
		r.res.Acquire(p)
		// Establish a stride-1 pattern; the prefetch batch queues behind
		// our own hold...
		r.c.Access("f", 0, 4096, false)
		r.c.Access("f", testBlock, 4096, false)
		// ...then break the pattern before the batch is granted.
		r.c.Access("f", 0, 4096, false)
		r.res.Release(p)
	})
	s := r.c.Stats()
	if s.ReadAheadCancelled == 0 {
		t.Fatalf("stats = %+v, want the queued prefetch batch cancelled", s)
	}
	if s.ReadAheadIssued != 0 {
		t.Fatalf("stats = %+v, want no prefetched blocks after cancellation", s)
	}
}

func TestWriteThroughWithoutWriteBehind(t *testing.T) {
	r := newRig(t, func(c *Config) { c.WriteBehind = false })
	r.do(t, func(p *sim.Proc, access func(stream string, off, size int64, write bool)) {
		access("f", 0, testBlock, true)
	})
	s := r.c.Stats()
	if s.Dirty != 0 || s.WriteBehindBytes != 0 {
		t.Fatalf("write-through dirtied the cache: %+v", s)
	}
	if as := r.arr.Stats(); as.BytesMoved != testBlock {
		t.Fatalf("array saw %d bytes, want synchronous %d", as.BytesMoved, testBlock)
	}
}

// TestDeterministic pins bit-reproducibility: the same access program
// yields identical virtual end times and statistics on every run.
func TestDeterministic(t *testing.T) {
	run := func() (time.Duration, Stats) {
		r := newRig(t, func(c *Config) { c.ReadAhead = 4; c.CapacityBytes = 8 * testBlock })
		r.do(t, func(p *sim.Proc, access func(stream string, off, size int64, write bool)) {
			for i := int64(0); i < 30; i++ {
				access("chk", i*testBlock, testBlock, true)
			}
			for i := int64(0); i < 30; i++ {
				access("rst", i*testBlock, 4096, false)
				p.Wait(time.Millisecond)
			}
		})
		return r.k.Now(), r.c.Stats()
	}
	end1, s1 := run()
	end2, s2 := run()
	if end1 != end2 || s1 != s2 {
		t.Fatalf("nondeterministic cache:\n%v %+v\n%v %+v", end1, s1, end2, s2)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Hits: 1, Misses: 2, MaxDirty: 3, ReadAheadIssued: 4}
	b := Stats{Hits: 10, Misses: 20, MaxDirty: 1, ReadAheadIssued: 40}
	a.Add(b)
	if a.Hits != 11 || a.Misses != 22 || a.ReadAheadIssued != 44 {
		t.Fatalf("Add = %+v", a)
	}
	if a.MaxDirty != 3 {
		t.Fatalf("MaxDirty = %d, want max(3,1)", a.MaxDirty)
	}
}
