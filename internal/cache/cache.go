// Package cache implements a deterministic per-I/O-node buffer cache —
// the server-side caching layer Intel PFS famously lacked and whose
// absence the paper's applications tuned around (checkpoint writes paying
// full positioning cost, version C disabling client buffering, staging
// phases hand-aggregating requests). It sits between the PFS I/O-node
// service loop and the RAID-3 array model, entirely inside the
// discrete-event simulation: no wall-clock time, no goroutines of its
// own, all asynchrony expressed through the kernel's callback primitives
// (Kernel.After, Resource.UseFn), so cached runs are bit-reproducible.
//
// The cache is block-granular with LRU replacement and provides:
//
//   - write-behind: dirty blocks are acknowledged at memory-copy cost and
//     flushed asynchronously by a background flusher that drains in
//     batches; reads of dirty blocks hit the cache, so ordering is
//     trivially correct (the array only ever sees flushes). Two flush
//     policies govern when a pass runs — see below;
//   - sequential read-ahead: a per-stream constant-stride detector (in
//     block space — one file's stripes visit an I/O node with a constant
//     stride) prefetches N blocks ahead and cancels queued prefetches
//     when the stride breaks;
//   - a full statistics surface — hits/misses, read-ahead
//     issued/used/cancelled, dirty-queue depth and high-water mark,
//     forced-flush stalls — so experiments can explain *why* a
//     configuration wins, not just that it does.
//
// # Flush-policy state machine
//
// The write-behind flusher is a small state machine with two policies,
// selected by Config.FlushDeadline:
//
//   - High-water + idle (FlushDeadline == 0, the legacy policy). At most
//     one timer is armed at a time. When a block goes dirty, the flusher
//     arms a pass after IdleFlush — or immediately when the dirty count
//     is at or above DirtyHighWater. A pass writes up to FlushBatch of
//     the oldest dirty blocks while holding the I/O node resource, then
//     re-arms itself while dirty blocks remain.
//
//   - Deadline (FlushDeadline > 0). Every dirty block must reach the
//     array within FlushDeadline of first becoming dirty. Below the
//     high-water mark a pass writes only deadline-expired blocks, so
//     young blocks keep accumulating into bigger, later batches; the
//     next pass is armed for the oldest dirty block's deadline. At or
//     above DirtyHighWater a pass runs immediately and drains oldest-
//     first regardless of age (the safety valve is shared between the
//     policies). Because a pass can be armed far in the future, the
//     policy tracks every armed fire time and adds an earlier timer
//     when a high-water breach demands one; a timer whose work an
//     earlier pass already drained fires as a no-op.
//
// In both policies, an eviction that finds the LRU victim dirty writes
// it synchronously under the foreground request and counts a
// Stats.ForcedFlushStalls — the cost of letting the dirty queue outrun
// the flusher. Stats.DeadlineFlushes counts passes whose batch was
// limited to deadline-expired blocks. The experiments package's
// flushpolicy study races the two policies against bursty checkpoint
// writers.
//
// Everything the cache does to the array happens while holding the I/O
// node's FIFO resource (Access runs at grant time; the flusher and
// prefetcher acquire the same resource through UseFn), preserving the
// single-actuator head-position model and the kernel's (at, seq) event
// order.
package cache

import (
	"fmt"
	"time"

	"paragonio/internal/disk"
	"paragonio/internal/sim"
)

// DefaultCapacityFrac is the fraction of the backing array's capacity the
// cache defaults to when CapacityBytes is unset: 1/256 of a 4.8 GB array
// is ~19 MB per I/O node — a plausible mid-90s "what if the I/O nodes had
// spent their DRAM on a buffer cache" budget.
const DefaultCapacityFrac = 1.0 / 256

// maxDetectStride bounds the block stride the read-ahead detector will
// follow. Larger jumps are treated as random access.
const maxDetectStride = 64

// Config describes one I/O node's cache. The zero value of every field
// selects a documented default, so Config{WriteBehind: true} is usable
// as-is.
type Config struct {
	// BlockSize is the cache block size in bytes. PFS sets it to the
	// stripe unit by default, which makes one cached block exactly one
	// stripe chunk.
	BlockSize int64
	// CapacityBytes is the cache capacity. 0 derives it as CapacityFrac
	// of the backing array's capacity.
	CapacityBytes int64
	// CapacityFrac is the fraction of array capacity used when
	// CapacityBytes is 0 (default DefaultCapacityFrac).
	CapacityFrac float64
	// WriteBehind acknowledges writes at memory-copy cost and flushes
	// dirty blocks asynchronously. When false, writes go through to the
	// array synchronously (the cache still absorbs re-reads).
	WriteBehind bool
	// ReadAhead is how many blocks to prefetch ahead of a detected
	// sequential stream. 0 disables read-ahead.
	ReadAhead int
	// DirtyHighWater is the dirty-block count above which the flusher
	// runs immediately instead of waiting for the idle delay. 0 derives
	// half the cache's block capacity.
	DirtyHighWater int
	// FlushBatch is the maximum number of dirty blocks written per
	// flusher pass (default 8).
	FlushBatch int
	// IdleFlush is how long a dirty block may linger below the high-water
	// mark before a background flush picks it up (default 50 ms).
	IdleFlush time.Duration
	// FlushDeadline selects the deadline flush policy: every dirty block
	// is written within FlushDeadline of first becoming dirty, and below
	// the high-water mark the flusher writes only deadline-expired blocks.
	// 0 (the default) keeps the high-water + idle policy, in which a
	// flusher pass drains the oldest dirty blocks regardless of age.
	FlushDeadline time.Duration
	// CopyBW is the memory-copy bandwidth in bytes/second used to price
	// cache-to-client transfers (default 80 MB/s — server DRAM, faster
	// than the clients' 25 MB/s buffer copies).
	CopyBW float64
	// HitCost is the fixed software cost of a cache lookup that hits
	// (default 30 µs, slightly under the client buffer-hit cost).
	HitCost time.Duration
}

// WithDefaults fills zero fields from blockSize (normally the PFS stripe
// unit) and the backing array's parameters, then validates.
func (c Config) WithDefaults(blockSize int64, d disk.Params) (Config, error) {
	if c.BlockSize == 0 {
		c.BlockSize = blockSize
	}
	if c.CapacityFrac == 0 {
		c.CapacityFrac = DefaultCapacityFrac
	}
	if c.CapacityBytes == 0 {
		c.CapacityBytes = int64(c.CapacityFrac * d.CapacityGB * float64(1<<30))
	}
	if c.DirtyHighWater == 0 && c.BlockSize > 0 {
		c.DirtyHighWater = int(c.CapacityBytes / c.BlockSize / 2)
		if c.DirtyHighWater < 1 {
			c.DirtyHighWater = 1
		}
	}
	if c.FlushBatch == 0 {
		c.FlushBatch = 8
	}
	if c.IdleFlush == 0 {
		c.IdleFlush = 50 * time.Millisecond
	}
	if c.CopyBW == 0 {
		c.CopyBW = 80e6
	}
	if c.HitCost == 0 {
		c.HitCost = 30 * time.Microsecond
	}
	return c, c.Validate()
}

// Validate reports whether the configuration is usable. It expects
// defaults to have been applied (WithDefaults).
func (c Config) Validate() error {
	if c.BlockSize <= 0 {
		return fmt.Errorf("cache: BlockSize = %d, need > 0", c.BlockSize)
	}
	if c.CapacityBytes < 2*c.BlockSize {
		return fmt.Errorf("cache: CapacityBytes = %d, need >= 2 blocks of %d", c.CapacityBytes, c.BlockSize)
	}
	if c.CapacityFrac < 0 {
		return fmt.Errorf("cache: negative CapacityFrac %g", c.CapacityFrac)
	}
	if c.ReadAhead < 0 {
		return fmt.Errorf("cache: negative ReadAhead %d", c.ReadAhead)
	}
	if c.DirtyHighWater < 1 {
		return fmt.Errorf("cache: DirtyHighWater = %d, need >= 1", c.DirtyHighWater)
	}
	if c.FlushBatch < 1 {
		return fmt.Errorf("cache: FlushBatch = %d, need >= 1", c.FlushBatch)
	}
	if c.IdleFlush <= 0 {
		return fmt.Errorf("cache: IdleFlush = %v, need > 0", c.IdleFlush)
	}
	if c.FlushDeadline < 0 {
		return fmt.Errorf("cache: negative FlushDeadline %v", c.FlushDeadline)
	}
	if c.CopyBW <= 0 {
		return fmt.Errorf("cache: CopyBW = %g, need > 0", c.CopyBW)
	}
	if c.HitCost < 0 {
		return fmt.Errorf("cache: negative HitCost %v", c.HitCost)
	}
	return nil
}

// Stats is a snapshot of one cache's accumulated activity.
type Stats struct {
	Hits   uint64 // block lookups served from cache
	Misses uint64 // block lookups that went to the array

	WriteBehindBytes  int64  // payload bytes acknowledged at copy cost
	Flushes           uint64 // background flusher passes that wrote blocks
	FlushedBlocks     uint64 // dirty blocks written by the background flusher
	DeadlineFlushes   uint64 // flusher passes limited to deadline-expired blocks (FlushDeadline > 0)
	ForcedFlushStalls uint64 // dirty LRU victims written synchronously under a foreground request

	Dirty    int // dirty blocks right now
	MaxDirty int // dirty-queue depth high-water mark

	ReadAheadIssued    uint64 // blocks prefetched
	ReadAheadUsed      uint64 // prefetched blocks later hit by a demand read
	ReadAheadCancelled uint64 // prefetch batches dropped at grant (stride broke)

	Blocks int // resident blocks right now
}

// HitRatio returns Hits / (Hits + Misses), or 0 with no lookups.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// ReadAheadAccuracy returns ReadAheadUsed / ReadAheadIssued, or 0 when no
// prefetches were issued.
func (s Stats) ReadAheadAccuracy() float64 {
	if s.ReadAheadIssued == 0 {
		return 0
	}
	return float64(s.ReadAheadUsed) / float64(s.ReadAheadIssued)
}

// Add accumulates o into s (for aggregating per-I/O-node stats).
func (s *Stats) Add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.WriteBehindBytes += o.WriteBehindBytes
	s.Flushes += o.Flushes
	s.FlushedBlocks += o.FlushedBlocks
	s.DeadlineFlushes += o.DeadlineFlushes
	s.ForcedFlushStalls += o.ForcedFlushStalls
	s.Dirty += o.Dirty
	if o.MaxDirty > s.MaxDirty {
		s.MaxDirty = o.MaxDirty
	}
	s.ReadAheadIssued += o.ReadAheadIssued
	s.ReadAheadUsed += o.ReadAheadUsed
	s.ReadAheadCancelled += o.ReadAheadCancelled
	s.Blocks += o.Blocks
}

// blockKey identifies one cached block: a stream (file extent on this
// array) and a block index within it.
type blockKey struct {
	stream string
	idx    int64
}

// block is one resident cache block on the intrusive LRU list.
type block struct {
	key        blockKey
	dirty      bool
	queued     bool     // has an entry in the dirty FIFO
	prefetched bool     // brought in by read-ahead, not yet demanded
	dirtyAt    sim.Time // when the block last went clean → dirty (deadline policy clock)
	prev, next *block
}

// stream is the per-stream read-ahead detector state.
type stream struct {
	seen    bool
	lastEnd int64 // last block index of the previous read request
	stride  int64 // detected block stride (0 = no pattern)
	run     int   // consecutive requests matching the stride
	ahead   int64 // highest block index already scheduled for prefetch
}

// keyQueue is a simple head-indexed FIFO of block keys.
type keyQueue struct {
	buf  []blockKey
	head int
}

func (q *keyQueue) push(k blockKey) { q.buf = append(q.buf, k) }
func (q *keyQueue) len() int        { return len(q.buf) - q.head }
func (q *keyQueue) peek() blockKey  { return q.buf[q.head] }
func (q *keyQueue) pop() blockKey {
	k := q.buf[q.head]
	q.buf[q.head] = blockKey{}
	q.head++
	if q.head > len(q.buf)/2 && q.head > 32 {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return k
}

// Cache is one I/O node's buffer cache. It is driven entirely from kernel
// context (Access runs while the I/O node's resource is held; flusher and
// prefetcher schedule themselves through the same resource), so it needs
// no locking and is deterministic by construction.
type Cache struct {
	k         *sim.Kernel
	sched     *sim.Shard // the I/O node's shard lane; all timers route here
	res       *sim.Resource
	array     *disk.Array
	cfg       Config
	capBlocks int

	blocks     map[blockKey]*block
	mru, lru   *block // intrusive LRU list: mru = most recently used
	dirtyq     keyQueue
	dirtyCount int
	streams    map[string]*stream

	flushPending bool       // high-water + idle policy: one timer armed or pass running
	flushq       []sim.Time // deadline policy: fire times of armed timers, ascending
	inflight     int        // deadline policy: flusher passes issued, not yet completed
	stats        Stats
}

// New creates a cache in front of array, sharing the I/O node's FIFO
// resource res for all background disk activity. cfg must already be
// valid (see Config.WithDefaults).
func New(k *sim.Kernel, res *sim.Resource, array *disk.Array, cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cache{
		k:         k,
		sched:     res.Lane(),
		res:       res,
		array:     array,
		cfg:       cfg,
		capBlocks: int(cfg.CapacityBytes / cfg.BlockSize),
		blocks:    make(map[blockKey]*block),
		streams:   make(map[string]*stream),
	}, nil
}

// Config returns the cache's (defaulted) configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of accumulated statistics.
func (c *Cache) Stats() Stats {
	s := c.stats
	s.Dirty = c.dirtyCount
	s.Blocks = len(c.blocks)
	return s
}

// Dirty returns the current dirty-block count.
func (c *Cache) Dirty() int { return c.dirtyCount }

// Access serves one contiguous piece of a request through the cache and
// returns the service time. It must be called while the I/O node's
// resource is held (i.e. from the PFS service loop's hold pricing), so
// any array traffic it generates — miss fills, forced flushes of dirty
// victims — extends the current hold, exactly like uncached service.
func (c *Cache) Access(streamName string, off, size int64, write bool) time.Duration {
	if size <= 0 {
		return 0
	}
	bs := c.cfg.BlockSize
	first, last := off/bs, (off+size-1)/bs
	var d time.Duration
	for idx := first; idx <= last; idx++ {
		lo, hi := idx*bs, (idx+1)*bs
		if lo < off {
			lo = off
		}
		if hi > off+size {
			hi = off + size
		}
		if write {
			d += c.writeBlock(streamName, idx, hi-lo)
		} else {
			d += c.readBlock(streamName, idx, hi-lo)
		}
	}
	if !write {
		c.noteRead(streamName, first, last)
	}
	return d
}

func (c *Cache) copyTime(n int64) time.Duration {
	return time.Duration(float64(n) / c.cfg.CopyBW * float64(time.Second))
}

// readBlock serves n payload bytes out of block idx.
func (c *Cache) readBlock(streamName string, idx, n int64) time.Duration {
	k := blockKey{stream: streamName, idx: idx}
	if b := c.blocks[k]; b != nil {
		c.touch(b)
		if b.prefetched {
			b.prefetched = false
			c.stats.ReadAheadUsed++
		}
		c.stats.Hits++
		return c.cfg.HitCost + c.copyTime(n)
	}
	c.stats.Misses++
	// Miss: make room, fill the whole block from the array, hand the
	// requested bytes to the client.
	d := c.evictOne()
	d += c.array.Service(streamName, idx*c.cfg.BlockSize, c.cfg.BlockSize)
	c.insert(k)
	return d + c.cfg.HitCost + c.copyTime(n)
}

// writeBlock absorbs n payload bytes into block idx.
func (c *Cache) writeBlock(streamName string, idx, n int64) time.Duration {
	k := blockKey{stream: streamName, idx: idx}
	if !c.cfg.WriteBehind {
		// Write-through: the array sees the write immediately; a resident
		// copy stays coherent (whole-block writes simply refresh it).
		if b := c.blocks[k]; b != nil {
			c.touch(b)
		}
		return c.array.Service(streamName, idx*c.cfg.BlockSize, n)
	}
	var d time.Duration
	b := c.blocks[k]
	if b == nil {
		// Write allocation: no array fill, so neither a hit nor a miss.
		d += c.evictOne()
		b = c.insert(k)
	} else {
		c.touch(b)
		c.stats.Hits++
	}
	b.prefetched = false
	if !b.dirty {
		b.dirty = true
		b.dirtyAt = c.sched.Now()
		c.dirtyCount++
		if c.dirtyCount > c.stats.MaxDirty {
			c.stats.MaxDirty = c.dirtyCount
		}
	}
	if !b.queued {
		b.queued = true
		c.dirtyq.push(k)
	}
	c.stats.WriteBehindBytes += n
	d += c.cfg.HitCost + c.copyTime(n)
	c.scheduleFlush()
	return d
}

// --- LRU bookkeeping -------------------------------------------------

// touch moves b to the MRU end.
func (c *Cache) touch(b *block) {
	if c.mru == b {
		return
	}
	c.unlink(b)
	c.linkFront(b)
}

func (c *Cache) unlink(b *block) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		c.mru = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		c.lru = b.prev
	}
	b.prev, b.next = nil, nil
}

func (c *Cache) linkFront(b *block) {
	b.next = c.mru
	if c.mru != nil {
		c.mru.prev = b
	}
	c.mru = b
	if c.lru == nil {
		c.lru = b
	}
}

// insert adds a clean MRU block for k and returns it. Callers make room
// with evictOne first.
func (c *Cache) insert(k blockKey) *block {
	b := &block{key: k}
	c.blocks[k] = b
	c.linkFront(b)
	return b
}

// evictOne frees one slot if the cache is full, returning the synchronous
// write time if the victim was dirty (a forced-flush stall: the
// foreground request absorbs the victim's disk write).
func (c *Cache) evictOne() time.Duration {
	var d time.Duration
	for len(c.blocks) >= c.capBlocks {
		v := c.lru
		if v.dirty {
			d += c.array.Service(v.key.stream, v.key.idx*c.cfg.BlockSize, c.cfg.BlockSize)
			v.dirty = false
			c.dirtyCount--
			c.stats.ForcedFlushStalls++
		}
		c.unlink(v)
		delete(c.blocks, v.key)
	}
	return d
}

// --- write-behind flusher --------------------------------------------

// oldestDirty returns the head of the dirty FIFO — the longest-dirty live
// block — dropping stale entries for blocks that were force-flushed or
// evicted since they were queued. Because a push happens exactly when a
// block goes clean → dirty, the FIFO is ordered by dirtyAt.
func (c *Cache) oldestDirty() *block {
	for c.dirtyq.len() > 0 {
		b := c.blocks[c.dirtyq.peek()]
		if b == nil || !b.dirty {
			if b != nil {
				b.queued = false
			}
			c.dirtyq.pop()
			continue
		}
		return b
	}
	return nil
}

// scheduleFlush arms the background flusher when there is dirty data.
// Above the high-water mark the flusher runs at once; below it, the
// high-water + idle policy waits IdleFlush, while the deadline policy
// (FlushDeadline > 0) waits until the oldest dirty block's deadline. The
// flusher is entirely callback-shaped: it only reschedules itself while
// dirty blocks remain, so a cached run's event queue drains and
// Kernel.Run terminates normally.
//
// The two policies differ structurally: the idle policy keeps at most
// one timer armed (it only ever arms IdleFlush or 0, which fires soon),
// while the deadline policy can be armed far in the future when a
// high-water breach demands an immediate pass, so it tracks every armed
// fire time and adds an extra, earlier timer when the armed ones are too
// late; a timer whose work was drained by an earlier pass fires as a
// no-op without touching the resource.
func (c *Cache) scheduleFlush() {
	if c.dirtyCount == 0 {
		return
	}
	if c.cfg.FlushDeadline == 0 {
		if c.flushPending {
			return
		}
		delay := c.cfg.IdleFlush
		if c.dirtyCount >= c.cfg.DirtyHighWater {
			delay = 0
		}
		c.flushPending = true
		c.sched.After(delay, func() {
			c.res.UseFn(c.flushHold, c.flushDone)
		})
		return
	}
	now := c.sched.Now()
	delay := c.cfg.IdleFlush
	if b := c.oldestDirty(); b != nil {
		delay = b.dirtyAt + c.cfg.FlushDeadline - now
		if delay < 0 {
			delay = 0
		}
	}
	if c.dirtyCount >= c.cfg.DirtyHighWater {
		delay = 0
	}
	at := now + delay
	if len(c.flushq) > 0 && c.flushq[0] <= at {
		return // an armed timer already fires soon enough
	}
	if delay == 0 && c.inflight > 0 {
		return // an immediate pass is already queued on the resource
	}
	// Insert at, keeping flushq ascending (it is at most a few entries).
	i := len(c.flushq)
	c.flushq = append(c.flushq, 0)
	for i > 0 && c.flushq[i-1] > at {
		c.flushq[i] = c.flushq[i-1]
		i--
	}
	c.flushq[i] = at
	c.sched.After(delay, func() {
		// Timers fire in time order, so this firing is flushq's head.
		c.flushq = c.flushq[1:]
		if c.dirtyCount == 0 {
			return // stale: an earlier pass drained everything
		}
		c.inflight++
		c.res.UseFn(c.flushHold, c.flushDone)
	})
}

// flushHold runs at grant time on the I/O node's resource: it writes up
// to FlushBatch of the oldest dirty blocks and prices the hold with their
// service time. Under the deadline policy a pass below the high-water
// mark writes only blocks whose deadline has expired, so young dirty data
// keeps absorbing rewrites until its own deadline; high-water pressure
// still drains a full batch regardless of age.
func (c *Cache) flushHold() sim.Time {
	expiredOnly := c.cfg.FlushDeadline > 0 && c.dirtyCount < c.cfg.DirtyHighWater
	now := c.sched.Now()
	var d time.Duration
	wrote := 0
	for wrote < c.cfg.FlushBatch && c.dirtyCount > 0 {
		b := c.oldestDirty()
		if b == nil {
			break
		}
		if expiredOnly && b.dirtyAt+c.cfg.FlushDeadline > now {
			break
		}
		k := c.dirtyq.pop()
		b.queued = false
		b.dirty = false
		c.dirtyCount--
		d += c.array.Service(k.stream, k.idx*c.cfg.BlockSize, c.cfg.BlockSize)
		c.stats.FlushedBlocks++
		wrote++
	}
	if wrote > 0 {
		c.stats.Flushes++
		if expiredOnly {
			c.stats.DeadlineFlushes++
		}
	}
	return d
}

// flushDone re-arms the flusher if dirty blocks remain.
func (c *Cache) flushDone() {
	if c.cfg.FlushDeadline == 0 {
		c.flushPending = false
	} else {
		c.inflight--
	}
	c.scheduleFlush()
}

// --- read-ahead -------------------------------------------------------

// noteRead feeds the stride detector with one read request's block span
// and schedules prefetches when a stable pattern is visible.
func (c *Cache) noteRead(streamName string, first, last int64) {
	if c.cfg.ReadAhead <= 0 {
		return
	}
	s := c.streams[streamName]
	if s == nil {
		s = &stream{}
		c.streams[streamName] = s
	}
	gap := first - s.lastEnd
	switch {
	case !s.seen:
		// First request: nothing to detect yet.
	case gap >= 1 && gap == s.stride:
		s.run++
	case gap >= 1 && gap <= maxDetectStride:
		s.stride = gap
		s.run = 1
	default:
		// Backward jump, overlap, or wild stride: pattern broken. Queued
		// prefetch batches for this stream cancel at grant time.
		s.stride, s.run, s.ahead = 0, 0, 0
	}
	s.seen = true
	s.lastEnd = last
	if s.run < 1 || s.stride <= 0 {
		return
	}
	// Predict the next requests at last+stride, last+2*stride, … and
	// prefetch up to ReadAhead blocks beyond what is already scheduled.
	var targets []int64
	for j := int64(1); j <= int64(c.cfg.ReadAhead); j++ {
		t := last + s.stride*j
		if t > s.ahead {
			targets = append(targets, t)
		}
	}
	if len(targets) == 0 {
		return
	}
	s.ahead = targets[len(targets)-1]
	genStride := s.stride
	c.res.UseFn(func() sim.Time {
		if s.stride != genStride {
			// Stride broke while we were queued: cancel the whole batch.
			c.stats.ReadAheadCancelled++
			return 0
		}
		var d time.Duration
		for _, idx := range targets {
			k := blockKey{stream: streamName, idx: idx}
			if c.blocks[k] != nil {
				continue // demand-fetched while we were queued
			}
			d += c.evictOne()
			d += c.array.Service(streamName, idx*c.cfg.BlockSize, c.cfg.BlockSize)
			c.insert(k).prefetched = true
			c.stats.ReadAheadIssued++
		}
		return d
	}, nil)
}
