// Client tier: a per-compute-node cache in front of the PFS data path,
// kept coherent by a lease-based protocol — the host-side buffering shape
// ParaLog/iFast showed wins for checkpoint-style workloads, and the
// missing piece the paper's applications worked around by hand (PRISM's
// version C disabled client buffering precisely because PFS's per-handle
// read buffer had no invalidation story).
//
// Protocol, in full:
//
//   - Every cached block carries a read lease with a simulated-time
//     expiry. A lookup is a hit only while the lease is valid; an
//     expired block is dropped at lookup (lazily, at zero cost) and the
//     refetch re-registers the holder with a fresh lease. There is no
//     local renewal: a lease can only be extended by going back through
//     the directory, so a writer always sees every holder it must
//     invalidate.
//   - Writes invalidate. The tier keeps a directory mapping each block
//     to its holders; a write bumps the block's version and recalls the
//     block from every holder with a still-valid lease (expired holders
//     are skipped for free — their next lookup misses anyway). The
//     writer pays the invalidation round-trip before its data leaves the
//     node: the cost is the worst mesh round-trip over the recalled
//     peers, so coherence traffic is priced at real mesh latency.
//   - A conflicting setiomode recalls the whole stream: mode
//     renegotiation drops every node's cached blocks for that file, the
//     caller paying the same worst-peer round-trip.
//   - In-flight fills are poisoned by writes. A miss records the block
//     version it is fetching; if a write bumps the version before the
//     fill returns, the fill is discarded instead of installed — the
//     fetch and the write raced through the I/O-node queues, so the
//     fetched bytes could be either generation.
//
// All tier state lives on shard lane 0 and is mutated exclusively from
// process context (the compute side of the sharded kernel), so the tier
// is deterministic and race-free for every shard count; only the block
// fills it triggers cross LP boundaries, through the PFS data path's
// existing sim.Shard routing. Blocks are never dirty — PFS stays
// write-through underneath — so eviction is free and recalls never lose
// data, only leases.
//
// Versions exist purely for verification: the coherence oracle test
// subscribes via SetObserver and asserts that no read is ever served a
// version older than the last write. They cost two words per block and
// keep the protocol honest.
package cache

import (
	"fmt"
	"sort"
	"time"

	"paragonio/internal/mesh"
	"paragonio/internal/sim"
)

// ClientConfig describes the client (compute-node-side) cache tier. The
// zero value of every field selects a documented default, so
// &ClientConfig{} is usable as-is.
type ClientConfig struct {
	// BlockSize is the client cache block size in bytes (default 4 KB —
	// OS-page granularity, deliberately finer than the 64 KB stripe unit
	// so small-record workloads don't false-share whole stripes).
	BlockSize int64
	// CapacityBytes is the per-compute-node cache capacity (default
	// 1 MB — a slice of mid-90s node DRAM, not the I/O node's budget).
	CapacityBytes int64
	// LeaseTTL is how long a read lease stays valid in simulated time
	// (default 500 ms). Shorter leases cheapen writes (more holders have
	// already expired) and penalize re-reads; longer leases do the
	// opposite.
	LeaseTTL time.Duration
	// HitCost is the fixed software cost of a lookup that hits (default
	// 25 µs — cheaper than the PFS client buffer hit: no handle-layer
	// bookkeeping, just a page-table-shaped lookup).
	HitCost time.Duration
	// CopyBW is the node-local memory-copy bandwidth in bytes/second
	// used to hand cached bytes to the application (default 25 MB/s, the
	// same client-side copy the PFS read buffer pays).
	CopyBW float64
	// RecallBytes is the payload of one lease-recall message (default
	// 64 — a control message, priced by mesh latency, not bandwidth).
	RecallBytes int64
}

// WithDefaults fills zero fields with their documented defaults, then
// validates.
func (c ClientConfig) WithDefaults() (ClientConfig, error) {
	if c.BlockSize == 0 {
		c.BlockSize = 4 * 1024
	}
	if c.CapacityBytes == 0 {
		c.CapacityBytes = 1 << 20
	}
	if c.LeaseTTL == 0 {
		c.LeaseTTL = DefaultClientTTL
	}
	if c.HitCost == 0 {
		c.HitCost = 25 * time.Microsecond
	}
	if c.CopyBW == 0 {
		c.CopyBW = 25e6
	}
	if c.RecallBytes == 0 {
		c.RecallBytes = 64
	}
	return c, c.Validate()
}

// Validate reports whether the configuration is usable. It expects
// defaults to have been applied (WithDefaults).
func (c ClientConfig) Validate() error {
	if c.BlockSize <= 0 {
		return fmt.Errorf("cache: client BlockSize = %d, need > 0", c.BlockSize)
	}
	if c.CapacityBytes < c.BlockSize {
		return fmt.Errorf("cache: client CapacityBytes = %d, need >= one block of %d", c.CapacityBytes, c.BlockSize)
	}
	if c.LeaseTTL <= 0 {
		return fmt.Errorf("cache: client LeaseTTL = %v, need > 0", c.LeaseTTL)
	}
	if c.HitCost < 0 {
		return fmt.Errorf("cache: negative client HitCost %v", c.HitCost)
	}
	if c.CopyBW <= 0 {
		return fmt.Errorf("cache: client CopyBW = %g, need > 0", c.CopyBW)
	}
	if c.RecallBytes < 0 {
		return fmt.Errorf("cache: negative client RecallBytes %d", c.RecallBytes)
	}
	return nil
}

// ClientStats is a snapshot of the whole client tier's accumulated
// activity (summed over compute nodes).
type ClientStats struct {
	Hits   uint64 // block lookups served node-locally under a valid lease
	Misses uint64 // block lookups that went to the PFS data path

	LeaseExpired uint64 // resident blocks dropped at lookup because the lease aged out
	Installed    uint64 // blocks installed (fills and write-allocations)
	Evicted      uint64 // blocks evicted for capacity
	RacedFills   uint64 // fills discarded because a write landed while they were in flight

	Recalls      uint64 // lease-recall messages delivered to peer holders
	RecallRounds uint64 // writes that had to recall at least one peer
	StaleAverted uint64 // recalled blocks actually resident at the holder: a stale read averted
	FileRecalls  uint64 // whole-stream recalls (setiomode renegotiations)
	Flaps        uint64 // flapping-client storms injected by the fault plane

	// RecallWait is the summed time writers spent blocked on
	// invalidation round-trips (the price of coherence).
	RecallWait time.Duration

	Blocks int // resident blocks right now, all nodes
	Nodes  int // compute nodes with an instantiated cache
}

// HitRatio returns Hits / (Hits + Misses), or 0 with no lookups.
func (s ClientStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// ClientOpKind labels one client-tier state transition.
type ClientOpKind int

const (
	// ClientHit: a block lookup served node-locally; Version is the
	// version served (what the coherence oracle checks).
	ClientHit ClientOpKind = iota
	// ClientMiss: a block lookup that goes to the PFS data path.
	ClientMiss
	// ClientWrite: a write bumped the block's version to Version.
	ClientWrite
	// ClientRecall: Node's copy was invalidated by a peer's write or a
	// setiomode renegotiation.
	ClientRecall
	// ClientExpire: Node's resident copy was dropped at lookup because
	// its lease aged out.
	ClientExpire
	// ClientInstall: a block became resident at Node under a fresh
	// lease, at Version.
	ClientInstall
	// ClientEvict: Node's copy was evicted for capacity.
	ClientEvict
)

// ClientOp is one observable client-tier transition, delivered to the
// SetObserver hook. Used by the coherence oracle test.
type ClientOp struct {
	Kind    ClientOpKind
	Node    int
	Stream  string
	Block   int64
	Version uint64
}

// clientLease is one holder's registration in the directory.
type clientLease struct {
	node   int
	expiry sim.Time
}

// clientDirEntry is the directory's view of one block: its current
// version and every registered holder.
type clientDirEntry struct {
	version uint64
	holders []clientLease // sorted by node id
}

// clientBlock is one resident block on a node's intrusive LRU list.
type clientBlock struct {
	key        blockKey
	version    uint64
	expiry     sim.Time
	prev, next *clientBlock
}

// clientNode is one compute node's cache, created lazily on first use.
type clientNode struct {
	id       int
	blocks   map[blockKey]*clientBlock
	mru, lru *clientBlock
}

// ClientTier is the whole client cache tier: one lazily-created cache
// per compute node plus the coherence directory. All methods must be
// called from process context (the simulation's compute side), which
// serializes them; no locking is needed and runs are deterministic for
// every shard count.
type ClientTier struct {
	k         *sim.Kernel
	m         *mesh.Mesh
	cfg       ClientConfig
	capBlocks int

	nodes map[int]*clientNode
	dir   map[blockKey]*clientDirEntry
	// pending records the directory version each in-flight fill saw at
	// miss time; Install discards fills whose block was written since —
	// the data they carry raced the write through the I/O-node queues
	// and could be either generation.
	pending  map[pendingFill]uint64
	stats    ClientStats
	observer func(ClientOp)
}

// pendingFill identifies one node's in-flight fill of one block.
type pendingFill struct {
	node int
	key  blockKey
}

// NewClientTier creates the tier. cfg must already be valid (see
// ClientConfig.WithDefaults).
func NewClientTier(k *sim.Kernel, m *mesh.Mesh, cfg ClientConfig) (*ClientTier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("cache: client tier needs a mesh model for recall costing")
	}
	capBlocks := int(cfg.CapacityBytes / cfg.BlockSize)
	if capBlocks < 1 {
		capBlocks = 1
	}
	return &ClientTier{
		k:         k,
		m:         m,
		cfg:       cfg,
		capBlocks: capBlocks,
		nodes:     make(map[int]*clientNode),
		dir:       make(map[blockKey]*clientDirEntry),
		pending:   make(map[pendingFill]uint64),
	}, nil
}

// Config returns the tier's (defaulted) configuration.
func (t *ClientTier) Config() ClientConfig { return t.cfg }

// BlockSize returns the tier's block size.
func (t *ClientTier) BlockSize() int64 { return t.cfg.BlockSize }

// SetObserver installs a hook receiving every tier transition. Test-only
// instrumentation: the coherence oracle subscribes here.
func (t *ClientTier) SetObserver(fn func(ClientOp)) { t.observer = fn }

// Stats returns a snapshot of accumulated statistics.
func (t *ClientTier) Stats() ClientStats {
	s := t.stats
	for _, nc := range t.nodes {
		s.Blocks += len(nc.blocks)
	}
	s.Nodes = len(t.nodes)
	return s
}

func (t *ClientTier) emit(kind ClientOpKind, node int, k blockKey, version uint64) {
	if t.observer != nil {
		t.observer(ClientOp{Kind: kind, Node: node, Stream: k.stream, Block: k.idx, Version: version})
	}
}

func (t *ClientTier) node(id int) *clientNode {
	nc := t.nodes[id]
	if nc == nil {
		nc = &clientNode{id: id, blocks: make(map[blockKey]*clientBlock)}
		t.nodes[id] = nc
	}
	return nc
}

func (t *ClientTier) entry(k blockKey) *clientDirEntry {
	e := t.dir[k]
	if e == nil {
		e = &clientDirEntry{}
		t.dir[k] = e
	}
	return e
}

// CopyCost prices handing n bytes from the node's cache (or arrival
// buffer, on a fill) to the application.
func (t *ClientTier) CopyCost(n int64) time.Duration {
	return time.Duration(float64(n) / t.cfg.CopyBW * float64(time.Second))
}

// span returns the inclusive block-index range covering [off, off+size).
func (t *ClientTier) span(off, size int64) (first, last int64) {
	bs := t.cfg.BlockSize
	return off / bs, (off + size - 1) / bs
}

// Read attempts to serve [off, off+size) of stream from node's cache.
// It returns (serviceTime, true) when every covered block is resident
// under a valid lease, and (0, false) otherwise — the caller then
// fetches whole covering blocks through the PFS data path and registers
// them with Install. Expired residents encountered on either path are
// dropped lazily, for free.
func (t *ClientTier) Read(node int, stream string, off, size int64) (time.Duration, bool) {
	if size <= 0 {
		return 0, true
	}
	now := t.k.Now()
	nc := t.node(node)
	first, last := t.span(off, size)
	hit := true
	for idx := first; idx <= last; idx++ {
		k := blockKey{stream: stream, idx: idx}
		b := nc.blocks[k]
		if b == nil {
			hit = false
			continue
		}
		if b.expiry <= now {
			t.dropBlock(nc, b)
			t.unregister(node, k)
			t.stats.LeaseExpired++
			t.emit(ClientExpire, node, k, b.version)
			hit = false
		}
	}
	n := uint64(last - first + 1)
	if !hit {
		t.stats.Misses += n
		for idx := first; idx <= last; idx++ {
			k := blockKey{stream: stream, idx: idx}
			// Remember what generation this fill is fetching, so a write
			// landing while it is in flight poisons it (see Install).
			t.pending[pendingFill{node: node, key: k}] = t.entry(k).version
			t.emit(ClientMiss, node, k, 0)
		}
		return 0, false
	}
	t.stats.Hits += n
	for idx := first; idx <= last; idx++ {
		k := blockKey{stream: stream, idx: idx}
		b := nc.blocks[k]
		t.touch(nc, b)
		t.emit(ClientHit, node, k, b.version)
	}
	return t.cfg.HitCost + t.CopyCost(size), true
}

// Install registers [off, off+size) of stream as resident at node under
// fresh leases, after the caller fetched it through the PFS data path.
// Partial tail blocks are safe to install: any write that changes their
// bytes bumps the version and recalls or expires this copy first.
//
// A fill whose block was written while it was in flight is discarded:
// the fetched bytes and the write raced through the I/O-node queues, so
// the fill could carry either generation — installing it might cache
// stale data under a fresh lease. The next lookup simply misses again.
func (t *ClientTier) Install(node int, stream string, off, size int64) {
	if size <= 0 {
		return
	}
	expiry := t.k.Now() + t.cfg.LeaseTTL
	nc := t.node(node)
	first, last := t.span(off, size)
	for idx := first; idx <= last; idx++ {
		k := blockKey{stream: stream, idx: idx}
		e := t.entry(k)
		pf := pendingFill{node: node, key: k}
		if v, ok := t.pending[pf]; ok {
			delete(t.pending, pf)
			if v != e.version {
				t.stats.RacedFills++
				continue
			}
		}
		t.install(nc, k, e.version, expiry)
	}
}

// Write runs the coherence protocol for a write of [off, off+size) to
// stream by node and returns the invalidation cost the writer must wait
// out before its data leaves the node: the worst mesh round-trip over
// the peers that held valid leases on the written blocks. The writer's
// own copy stays resident (write-update for self) when the write fully
// covers the block or overwrites a still-leased copy; otherwise it is
// dropped — a partial write over an expired copy may sit next to bytes
// another node changed while the lease was dead.
func (t *ClientTier) Write(node int, stream string, off, size int64) time.Duration {
	if size <= 0 {
		return 0
	}
	now := t.k.Now()
	expiry := now + t.cfg.LeaseTTL
	nc := t.node(node)
	bs := t.cfg.BlockSize
	first, last := t.span(off, size)
	var peers []int
	for idx := first; idx <= last; idx++ {
		k := blockKey{stream: stream, idx: idx}
		e := t.entry(k)
		e.version++
		selfValid := false
		for _, l := range e.holders {
			switch {
			case l.node == node:
				selfValid = l.expiry > now
			case l.expiry <= now:
				// Expired holder: no recall needed. Its resident copy, if
				// any, dies at its next lookup.
			default:
				t.stats.Recalls++
				if t.dropResident(l.node, k) {
					t.stats.StaleAverted++
				}
				t.emit(ClientRecall, l.node, k, e.version)
				peers = addPeer(peers, l.node)
			}
		}
		// Every holder loses its lease; the writer re-registers itself
		// through install below if its copy stays.
		e.holders = e.holders[:0]
		t.emit(ClientWrite, node, k, e.version)
		if off <= idx*bs && off+size >= (idx+1)*bs {
			// Fully covered: the writer's copy is the freshest possible.
			t.install(nc, k, e.version, expiry)
		} else if selfValid && nc.blocks[k] != nil {
			// Partial overwrite of a still-leased copy: old bytes were
			// current (the lease guaranteed it), new bytes are ours.
			t.install(nc, k, e.version, expiry)
		} else if b := nc.blocks[k]; b != nil {
			t.dropBlock(nc, b)
		}
	}
	d := t.recallCost(node, peers)
	if d > 0 {
		t.stats.RecallRounds++
		t.stats.RecallWait += d
	}
	return d
}

// RecallStream recalls every node's cached blocks for stream — the
// setiomode renegotiation. The caller (node) pays the worst round-trip
// over the peers that held valid leases; its own blocks drop for free.
func (t *ClientTier) RecallStream(node int, stream string) time.Duration {
	now := t.k.Now()
	keys := make([]blockKey, 0, 16)
	for k := range t.dir {
		if k.stream == stream && len(t.dir[k].holders) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].idx < keys[j].idx })
	var peers []int
	for _, k := range keys {
		e := t.dir[k]
		for _, l := range e.holders {
			switch {
			case l.node == node:
				t.dropResident(node, k)
			case l.expiry <= now:
				// Expired: free.
			default:
				t.stats.Recalls++
				if t.dropResident(l.node, k) {
					t.stats.StaleAverted++
				}
				t.emit(ClientRecall, l.node, k, e.version)
				peers = addPeer(peers, l.node)
			}
		}
		e.holders = e.holders[:0]
	}
	t.stats.FileRecalls++
	d := t.recallCost(node, peers)
	if d > 0 {
		t.stats.RecallWait += d
	}
	return d
}

// Flap simulates one flap of a crash-looping client on node: the client
// reconnects and renegotiates every stream with any live lease, recalling
// all valid holders tier-wide (the lease-recall storm the fault plane's
// client-flap fault injects). Streams are recalled in sorted order so the
// storm is deterministic. The returned duration is the summed recall cost
// the flapping client would wait out; the fault plane discards it — the
// storm's simulated cost is what the recalls inflict on everyone else's
// subsequent misses.
func (t *ClientTier) Flap(node int) time.Duration {
	streams := make(map[string]bool)
	for k, e := range t.dir {
		if len(e.holders) > 0 {
			streams[k.stream] = true
		}
	}
	names := make([]string, 0, len(streams))
	for s := range streams {
		names = append(names, s)
	}
	sort.Strings(names)
	var d time.Duration
	for _, s := range names {
		d += t.RecallStream(node, s)
	}
	t.stats.Flaps++
	return d
}

// InvalidateLocal drops node's cached blocks for stream without touching
// other holders — the client-side half of Handle.Flush. Free: blocks are
// clean and the node holds its own leases.
func (t *ClientTier) InvalidateLocal(node int, stream string) {
	nc := t.nodes[node]
	if nc == nil {
		return
	}
	keys := make([]blockKey, 0, 8)
	for k := range nc.blocks {
		if k.stream == stream {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].idx < keys[j].idx })
	for _, k := range keys {
		t.dropBlock(nc, nc.blocks[k])
		t.unregister(node, k)
	}
}

// recallCost prices one invalidation round: the worst round-trip from
// the caller to any recalled peer (recall message out, ack back).
// Recalls to distinct peers overlap, so the max — not the sum — is what
// the writer waits out.
func (t *ClientTier) recallCost(node int, peers []int) time.Duration {
	var d time.Duration
	for _, peer := range peers {
		rt := t.m.Transfer(int64(node), int64(peer), t.cfg.RecallBytes) +
			t.m.Transfer(int64(peer), int64(node), 0)
		if rt > d {
			d = rt
		}
	}
	return d
}

func addPeer(peers []int, n int) []int {
	for _, p := range peers {
		if p == n {
			return peers
		}
	}
	return append(peers, n)
}

// install makes k resident at nc under the given version and lease,
// evicting for capacity, and registers the holder in the directory.
func (t *ClientTier) install(nc *clientNode, k blockKey, version uint64, expiry sim.Time) {
	b := nc.blocks[k]
	if b == nil {
		for len(nc.blocks) >= t.capBlocks {
			v := nc.lru
			t.dropBlock(nc, v)
			t.unregister(nc.id, v.key)
			t.stats.Evicted++
			t.emit(ClientEvict, nc.id, v.key, v.version)
		}
		b = &clientBlock{key: k}
		nc.blocks[k] = b
		t.linkFront(nc, b)
	} else {
		t.touch(nc, b)
	}
	b.version = version
	b.expiry = expiry
	t.register(nc.id, k, expiry)
	t.stats.Installed++
	t.emit(ClientInstall, nc.id, k, version)
}

// register records node as a holder of k (update-or-insert, holders kept
// sorted by node id for deterministic iteration).
func (t *ClientTier) register(node int, k blockKey, expiry sim.Time) {
	e := t.entry(k)
	i := sort.Search(len(e.holders), func(i int) bool { return e.holders[i].node >= node })
	if i < len(e.holders) && e.holders[i].node == node {
		e.holders[i].expiry = expiry
		return
	}
	e.holders = append(e.holders, clientLease{})
	copy(e.holders[i+1:], e.holders[i:])
	e.holders[i] = clientLease{node: node, expiry: expiry}
}

// unregister removes node from k's holders, if present.
func (t *ClientTier) unregister(node int, k blockKey) {
	e := t.dir[k]
	if e == nil {
		return
	}
	i := sort.Search(len(e.holders), func(i int) bool { return e.holders[i].node >= node })
	if i < len(e.holders) && e.holders[i].node == node {
		e.holders = append(e.holders[:i], e.holders[i+1:]...)
	}
}

// dropResident removes node's copy of k if resident, reporting whether
// it was. The directory holder entry is left to the caller.
func (t *ClientTier) dropResident(node int, k blockKey) bool {
	nc := t.nodes[node]
	if nc == nil {
		return false
	}
	b := nc.blocks[k]
	if b == nil {
		return false
	}
	t.dropBlock(nc, b)
	return true
}

// --- per-node LRU bookkeeping ----------------------------------------

func (t *ClientTier) dropBlock(nc *clientNode, b *clientBlock) {
	t.unlink(nc, b)
	delete(nc.blocks, b.key)
}

func (t *ClientTier) touch(nc *clientNode, b *clientBlock) {
	if nc.mru == b {
		return
	}
	t.unlink(nc, b)
	t.linkFront(nc, b)
}

func (t *ClientTier) unlink(nc *clientNode, b *clientBlock) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		nc.mru = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		nc.lru = b.prev
	}
	b.prev, b.next = nil, nil
}

func (t *ClientTier) linkFront(nc *clientNode, b *clientBlock) {
	b.next = nc.mru
	if nc.mru != nil {
		nc.mru.prev = b
	}
	nc.mru = b
	if nc.lru == nil {
		nc.lru = b
	}
}
