// Package cliflags holds the flag parsing shared by the repository's
// commands (iotables, iobench, benchjson), so the flags mean the same
// thing — same syntax, same error text — everywhere they appear.
package cliflags

import (
	"fmt"
	"net"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// ParseShards resolves a -shards flag value: a positive integer or
// "auto" (all cores). The resolved count never needs trimming to the
// I/O-node count by hand: the kernel splits it into I/O lanes plus
// compute lanes itself (core.LaneSplit) and only requests beyond the
// whole topology clamp — commands surface that with core.ShardNotice.
func ParseShards(s string) (int, error) {
	if s == "auto" {
		return runtime.GOMAXPROCS(0), nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("invalid -shards %q (want a positive integer or auto)", s)
	}
	return n, nil
}

// ParseJobs resolves a -j flag value: a positive integer or "auto"
// (all cores) — the same spelling -shards accepts, so `-shards auto
// -j auto` works as a pair.
func ParseJobs(s string) (int, error) {
	if s == "auto" {
		return runtime.GOMAXPROCS(0), nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("invalid -j %q (want a positive integer or auto)", s)
	}
	return n, nil
}

// DefaultJobs is the shared default for -j style parallelism flags.
func DefaultJobs() int { return runtime.GOMAXPROCS(0) }

// Only resolves a comma-separated -only flag value against the valid
// identifiers, returning the selected set. An empty value selects
// nothing (callers treat that as "everything"). Unknown identifiers are
// rejected with the full valid list, so a typo shows what was meant.
func Only(csv, what string, valid []string) (map[string]bool, error) {
	if csv == "" {
		return nil, nil
	}
	ok := make(map[string]bool, len(valid))
	for _, v := range valid {
		ok[v] = true
	}
	wanted := map[string]bool{}
	for _, id := range strings.Split(csv, ",") {
		id = strings.TrimSpace(id)
		if !ok[id] {
			return nil, fmt.Errorf("unknown %s %q (valid: %s)", what, id, strings.Join(valid, ", "))
		}
		wanted[id] = true
	}
	return wanted, nil
}

// ParseAddr validates a -addr flag value: a TCP listen address in
// host:port form. The host may be empty (":8080" listens on every
// interface) and the port may be 0 (the kernel picks a free one — the
// smoke scripts' idiom); a bare port or a bare host is rejected.
func ParseAddr(s string) (string, error) {
	_, port, err := net.SplitHostPort(s)
	if err != nil {
		return "", fmt.Errorf("invalid -addr %q (want host:port, e.g. :8080)", s)
	}
	if n, err := strconv.Atoi(port); err != nil || n < 0 || n > 65535 {
		return "", fmt.Errorf("invalid -addr %q (want host:port, e.g. :8080)", s)
	}
	return s, nil
}

// ParseTimeout resolves a -timeout flag value: a positive Go duration
// ("30s", "2m") bounding how long one request may hold the engine.
func ParseTimeout(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("invalid -timeout %q (want a positive duration, e.g. 30s)", s)
	}
	return d, nil
}

// Sweep validates a -sweep flag value against the valid dimensions.
// Unknown values are rejected with the full valid list, matching the
// Only error shape, so a typo shows what was meant.
func Sweep(s string, valid []string) error {
	for _, v := range valid {
		if s == v {
			return nil
		}
	}
	return fmt.Errorf("unknown sweep %q (valid: %s)", s, strings.Join(valid, ", "))
}
