package cliflags

import (
	"runtime"
	"testing"
	"time"
)

func TestParseAddr(t *testing.T) {
	for _, good := range []string{":8080", "127.0.0.1:0", "localhost:9090", "[::1]:8080", ":0"} {
		if got, err := ParseAddr(good); err != nil || got != good {
			t.Errorf("ParseAddr(%q) = %q, %v", good, got, err)
		}
	}
	for _, bad := range []string{"", "8080", "localhost", "host:port", "1.2.3.4:99999", "a:b:c"} {
		_, err := ParseAddr(bad)
		if err == nil {
			t.Errorf("ParseAddr(%q) accepted", bad)
			continue
		}
		// Pinned error text, in the ParseJobs style: scripts may match it.
		want := `invalid -addr "` + bad + `" (want host:port, e.g. :8080)`
		if err.Error() != want {
			t.Errorf("ParseAddr(%q) error %q, want %q", bad, err, want)
		}
	}
}

func TestParseTimeout(t *testing.T) {
	if d, err := ParseTimeout("90s"); err != nil || d != 90*time.Second {
		t.Errorf("ParseTimeout(90s) = %v, %v", d, err)
	}
	if d, err := ParseTimeout("2m"); err != nil || d != 2*time.Minute {
		t.Errorf("ParseTimeout(2m) = %v, %v", d, err)
	}
	for _, bad := range []string{"", "0", "0s", "-5s", "fast", "30"} {
		_, err := ParseTimeout(bad)
		if err == nil {
			t.Errorf("ParseTimeout(%q) accepted", bad)
			continue
		}
		want := `invalid -timeout "` + bad + `" (want a positive duration, e.g. 30s)`
		if err.Error() != want {
			t.Errorf("ParseTimeout(%q) error %q, want %q", bad, err, want)
		}
	}
}

func TestParseShards(t *testing.T) {
	if n, err := ParseShards("4"); err != nil || n != 4 {
		t.Errorf("ParseShards(4) = %d, %v", n, err)
	}
	if n, err := ParseShards("auto"); err != nil || n != runtime.GOMAXPROCS(0) {
		t.Errorf("ParseShards(auto) = %d, %v", n, err)
	}
	for _, bad := range []string{"", "0", "-2", "two", "1.5"} {
		_, err := ParseShards(bad)
		if err == nil {
			t.Errorf("ParseShards(%q) accepted", bad)
			continue
		}
		// The error text is a compatibility contract: it predates this
		// package and scripts may match on it.
		want := `invalid -shards "` + bad + `" (want a positive integer or auto)`
		if err.Error() != want {
			t.Errorf("ParseShards(%q) error %q, want %q", bad, err, want)
		}
	}
}

func TestOnly(t *testing.T) {
	valid := []string{"table1", "table2", "figure1"}
	if got, err := Only("", "experiment", valid); err != nil || got != nil {
		t.Errorf("empty -only: %v, %v", got, err)
	}
	got, err := Only(" table2 ,figure1", "experiment", valid)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got["table2"] || !got["figure1"] {
		t.Errorf("selection %v", got)
	}
	_, err = Only("tabel2", "experiment", valid)
	if err == nil {
		t.Fatal("typo accepted")
	}
	want := `unknown experiment "tabel2" (valid: table1, table2, figure1)`
	if err.Error() != want {
		t.Errorf("error %q, want %q", err, want)
	}
}

func TestSweep(t *testing.T) {
	valid := []string{"modes", "request", "cache"}
	if err := Sweep("cache", valid); err != nil {
		t.Error(err)
	}
	err := Sweep("caches", valid)
	if err == nil {
		t.Fatal("typo accepted")
	}
	// Pinned error text: like Only, a rejected -sweep lists every valid
	// dimension so a typo shows what was meant.
	want := `unknown sweep "caches" (valid: modes, request, cache)`
	if err.Error() != want {
		t.Errorf("error %q, want %q", err, want)
	}
}

func TestDefaultJobs(t *testing.T) {
	if DefaultJobs() != runtime.GOMAXPROCS(0) {
		t.Error("DefaultJobs is not GOMAXPROCS")
	}
}

func TestParseJobs(t *testing.T) {
	if n, err := ParseJobs("auto"); err != nil || n < 1 {
		t.Fatalf("ParseJobs(auto) = %d, %v", n, err)
	}
	if n, err := ParseJobs("4"); err != nil || n != 4 {
		t.Fatalf("ParseJobs(4) = %d, %v", n, err)
	}
	for _, bad := range []string{"", "0", "-2", "four"} {
		if _, err := ParseJobs(bad); err == nil {
			t.Errorf("ParseJobs(%q) accepted", bad)
		}
	}
}
