package replay

import (
	"testing"
	"time"

	"paragonio/internal/apps/prism"
	"paragonio/internal/core"
	"paragonio/internal/pablo"
)

// captureSmall runs a reduced PRISM and returns its trace.
func captureSmall(t *testing.T) *pablo.Trace {
	t.Helper()
	d := prism.TestProblem()
	d.Nodes = 8
	d.Steps = 20
	d.CheckpointEvery = 10
	d.ParamReads = 10
	d.HeaderConsults = 6
	d.ConnTextReads = 12
	d.StepCompute = 300 * time.Millisecond
	d.SetupCompute = time.Second
	d.PostCompute = time.Second
	res, err := prism.Run(d, prism.VersionC(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func TestReplayValidation(t *testing.T) {
	if _, err := Replay(pablo.NewTrace(), Config{}); err == nil {
		t.Fatal("empty trace accepted")
	}
	tr := pablo.NewTrace()
	tr.Record(pablo.Event{Node: 0, Op: pablo.OpOpen, File: "f"})
	if _, err := Replay(tr, Config{}); err == nil {
		t.Fatal("trace without data ops accepted")
	}
	tr.Record(pablo.Event{Node: 0, Op: pablo.OpRead, File: "f", Size: 10})
	if _, err := Replay(tr, Config{Platform: core.Config{Nodes: 5}}); err == nil {
		t.Fatal("explicit node count accepted")
	}
}

func TestReplayConservesRequests(t *testing.T) {
	tr := captureSmall(t)
	out, err := Replay(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var origReads, origWrites int
	for _, ev := range tr.Events() {
		if ev.Size <= 0 {
			continue
		}
		switch ev.Op {
		case pablo.OpRead:
			origReads++
		case pablo.OpWrite:
			origWrites++
		}
	}
	if out.Reads != origReads || out.Writes != origWrites {
		t.Fatalf("replayed %d/%d, original %d/%d", out.Reads, out.Writes, origReads, origWrites)
	}
	// Replay's own trace carries the same payload volume.
	var origBytes, newBytes int64
	for _, ev := range tr.Events() {
		if ev.Op == pablo.OpRead || ev.Op == pablo.OpWrite {
			origBytes += ev.Size
		}
	}
	for _, ev := range out.Result.Trace.Events() {
		if ev.Op == pablo.OpRead || ev.Op == pablo.OpWrite {
			newBytes += ev.Size
		}
	}
	if origBytes != newBytes {
		t.Fatalf("payload changed: %d -> %d bytes", origBytes, newBytes)
	}
}

func TestReplayPreserveGapsStretchesSpan(t *testing.T) {
	tr := captureSmall(t)
	tight, err := Replay(tr, Config{PreserveGaps: false})
	if err != nil {
		t.Fatal(err)
	}
	gapped, err := Replay(tr, Config{PreserveGaps: true})
	if err != nil {
		t.Fatal(err)
	}
	// Node zero's checkpoint traffic keeps even the tight replay busy,
	// so the stretch factor is modest but must be clearly present.
	if gapped.ReplaySpan <= tight.ReplaySpan*13/10 {
		t.Fatalf("gap preservation did not stretch the replay: %v vs %v",
			gapped.ReplaySpan, tight.ReplaySpan)
	}
	// With gaps preserved, the replay span should be in the original
	// run's ballpark (same think time, different I/O).
	if gapped.ReplaySpan > gapped.OriginalSpan*2 {
		t.Fatalf("gapped span %v far exceeds original %v", gapped.ReplaySpan, gapped.OriginalSpan)
	}
}

func TestReplayMoreIONodesServesFaster(t *testing.T) {
	tr := captureSmall(t)
	few, err := Replay(tr, Config{Platform: core.Config{IONodes: 2}})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Replay(tr, Config{Platform: core.Config{IONodes: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if many.ReplayDataTime >= few.ReplayDataTime {
		t.Fatalf("16 I/O nodes (%v) not faster than 2 (%v)",
			many.ReplayDataTime, few.ReplayDataTime)
	}
	if many.Speedup() <= 0 || few.Speedup() <= 0 {
		t.Fatal("degenerate speedups")
	}
}

func TestReplayDeterministic(t *testing.T) {
	tr := captureSmall(t)
	a, err := Replay(tr, Config{PreserveGaps: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(tr, Config{PreserveGaps: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.ReplaySpan != b.ReplaySpan || a.ReplayDataTime != b.ReplayDataTime {
		t.Fatalf("non-deterministic replay: %+v vs %+v", a, b)
	}
}

func TestReplayHandwrittenTrace(t *testing.T) {
	// A two-node hand-written trace: node 0 writes 1 MB, node 1 reads it
	// later. Checks offsets survive and think time is honored.
	tr := pablo.NewTrace()
	tr.Record(pablo.Event{Node: 0, Op: pablo.OpWrite, File: "f", Offset: 0,
		Size: 1 << 20, Start: 0, Duration: time.Second, Mode: "M_ASYNC"})
	tr.Record(pablo.Event{Node: 1, Op: pablo.OpRead, File: "f", Offset: 1 << 19,
		Size: 1 << 19, Start: 10 * time.Second, Duration: time.Second, Mode: "M_ASYNC"})
	out, err := Replay(tr, Config{PreserveGaps: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Reads != 1 || out.Writes != 1 {
		t.Fatalf("ops = %d/%d", out.Reads, out.Writes)
	}
	// Node 1's read starts at >= 10 s (its think time).
	var readStart time.Duration
	for _, ev := range out.Result.Trace.Events() {
		if ev.Op == pablo.OpRead && ev.Size > 0 {
			readStart = ev.Start
			if ev.Offset != 1<<19 {
				t.Fatalf("read offset = %d", ev.Offset)
			}
		}
	}
	if readStart < 10*time.Second {
		t.Fatalf("think time not honored: read at %v", readStart)
	}
}
