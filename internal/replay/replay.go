// Package replay re-executes the data operations of a captured Pablo
// trace against a different simulated machine — the paper's planned
// study of "the effects of different machine configurations (e.g.,
// number of I/O nodes) ... on I/O performance", made possible without
// re-running the application.
//
// The replay is data-path-oriented: each node's read and write requests
// are reissued in order at their recorded offsets, with the gaps
// between a node's operations (computation, synchronization, metadata
// time) optionally preserved as think time. Mode-level software
// serialization is not re-simulated — the recorded stream already
// reflects how the modes shaped request timing — so the replay isolates
// the storage and interconnect question: how would this request stream
// fare on K I/O nodes with stripe unit S and disk D?
package replay

import (
	"fmt"
	"time"

	"paragonio/internal/core"
	"paragonio/internal/pablo"
	"paragonio/internal/pfs"
	"paragonio/internal/workload"
)

// Config selects the target machine and replay behavior.
type Config struct {
	// Platform overrides for the target machine; Nodes is derived from
	// the trace and must be left zero.
	Platform core.Config
	// PreserveGaps reinserts each node's inter-operation idle time as
	// virtual think time, keeping the replay's concurrency structure
	// close to the original. When false, each node issues its requests
	// back to back (a pure storage stress replay).
	PreserveGaps bool
}

// Outcome reports the replay next to the original trace's quantities.
type Outcome struct {
	// Result is the run on the target machine, with its own trace.
	Result *core.Result
	// Original quantities, from the input trace (data ops only).
	OriginalDataTime time.Duration
	OriginalSpan     time.Duration
	// Replay quantities (data ops only).
	ReplayDataTime time.Duration
	ReplaySpan     time.Duration
	// Requests replayed.
	Reads, Writes int
}

// Speedup returns original/replay data-time ratio (>1: the target
// machine serves the stream faster).
func (o *Outcome) Speedup() float64 {
	if o.ReplayDataTime <= 0 {
		return 0
	}
	return float64(o.OriginalDataTime) / float64(o.ReplayDataTime)
}

// nodeOp is one replayable operation.
type nodeOp struct {
	think time.Duration // idle before issuing (PreserveGaps)
	write bool
	file  string
	off   int64
	size  int64
}

// Replay reissues the trace's data requests on the target machine.
func Replay(tr *pablo.Trace, cfg Config) (*Outcome, error) {
	if cfg.Platform.Nodes != 0 {
		return nil, fmt.Errorf("replay: Platform.Nodes is derived from the trace; leave it zero")
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("replay: empty trace")
	}
	// Partition data ops by node, preserving order; size the namespace.
	maxNode := 0
	extent := map[string]int64{}
	ops := map[int][]nodeOp{}
	lastEnd := map[int]time.Duration{}
	var origData time.Duration
	var reads, writes int
	for _, ev := range tr.Events() {
		if ev.Node > maxNode {
			maxNode = ev.Node
		}
		if ev.Op != pablo.OpRead && ev.Op != pablo.OpWrite {
			// Non-data time becomes part of the node's gap.
			continue
		}
		if ev.Size <= 0 {
			continue
		}
		origData += ev.Duration
		if ev.Op == pablo.OpRead {
			reads++
		} else {
			writes++
		}
		think := time.Duration(0)
		if prev, ok := lastEnd[ev.Node]; ok {
			if gap := ev.Start - prev; gap > 0 {
				think = gap
			}
		} else if ev.Start > 0 {
			think = ev.Start
		}
		lastEnd[ev.Node] = ev.End()
		ops[ev.Node] = append(ops[ev.Node], nodeOp{
			think: think,
			write: ev.Op == pablo.OpWrite,
			file:  ev.File,
			off:   ev.Offset,
			size:  ev.Size,
		})
		if end := ev.Offset + ev.Size; end > extent[ev.File] {
			extent[ev.File] = end
		}
	}
	if reads+writes == 0 {
		return nil, fmt.Errorf("replay: trace has no data operations")
	}
	start, end := tr.Span()

	pcfg := cfg.Platform
	pcfg.Nodes = maxNode + 1
	res, err := core.Run(pcfg, "replay", "trace", func(m *workload.Machine, seed int64) error {
		for name, size := range extent {
			m.FS.CreateFile(name, size)
		}
		m.SpawnNodes(seed, func(n *workload.Node) {
			handles := map[string]*pfs.Handle{}
			handleFor := func(file string) *pfs.Handle {
				if h, ok := handles[file]; ok {
					return h
				}
				h, err := m.FS.Open(n.P, n.ID, file, pfs.MAsync)
				if err != nil {
					panic(err)
				}
				handles[file] = h
				return h
			}
			for _, op := range ops[n.ID] {
				if cfg.PreserveGaps && op.think > 0 {
					n.Compute(op.think)
				}
				h := handleFor(op.file)
				if h.Ptr() != op.off {
					if err := h.Seek(n.P, op.off); err != nil {
						panic(err)
					}
				}
				var err error
				if op.write {
					_, err = h.Write(n.P, op.size)
				} else {
					_, err = h.Read(n.P, op.size)
				}
				if err != nil {
					panic(err)
				}
			}
			for _, h := range handles {
				if err := h.Close(n.P); err != nil {
					panic(err)
				}
			}
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Result:           res,
		OriginalDataTime: origData,
		OriginalSpan:     end - start,
		ReplaySpan:       res.Exec,
		Reads:            reads,
		Writes:           writes,
	}
	for _, ev := range res.Trace.Events() {
		if (ev.Op == pablo.OpRead || ev.Op == pablo.OpWrite) && ev.Size > 0 {
			out.ReplayDataTime += ev.Duration
		}
	}
	return out, nil
}
