package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"paragonio/internal/core"
)

// goldenDigests pins the FNV-1a digest of the full Pablo event stream of
// every canonical application run. The digests were captured from the
// original goroutine-per-event kernel; the callback fast path, the 4-ary
// event heap, and the parallel suite runner must all reproduce them
// bit-for-bit. If an intentional model change shifts a trace, update the
// table in the same commit and say why.
var goldenDigests = []struct {
	key    string
	events int
	digest uint64
	run    func(s *Suite) (*core.Result, error)
}{
	{"escat/eth/A", 81113, 0xb4b7edebfac97216, func(s *Suite) (*core.Result, error) { return s.Ethylene("A") }},
	{"escat/eth/B", 34520, 0x339e736a3349ea94, func(s *Suite) (*core.Result, error) { return s.Ethylene("B") }},
	{"escat/eth/C", 23768, 0x88c20c67d0b1703c, func(s *Suite) (*core.Result, error) { return s.Ethylene("C") }},
	{"escat/co/C", 107485, 0x83cf63b5fa1f8c5e, func(s *Suite) (*core.Result, error) { return s.CarbonMonoxide() }},
	{"prism/A", 19468, 0x0877c0ffa02814f3, func(s *Suite) (*core.Result, error) { return s.Prism("A") }},
	{"prism/B", 19972, 0x779d1cf4508e97d6, func(s *Suite) (*core.Result, error) { return s.Prism("B") }},
	{"prism/C", 11396, 0xbc010fbf3debceec, func(s *Suite) (*core.Result, error) { return s.Prism("C") }},
}

// TestGoldenDigests checks every canonical run against the pinned trace
// digests, and runs each a second time in a fresh suite to prove the
// simulation is bit-reproducible run to run.
func TestGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size paper workloads skipped in -short mode")
	}
	again := NewSuite(1)
	for _, g := range goldenDigests {
		res, err := g.run(sharedSuite)
		if err != nil {
			t.Fatalf("%s: %v", g.key, err)
		}
		if n := res.Trace.Len(); n != g.events {
			t.Errorf("%s: %d events, golden %d", g.key, n, g.events)
		}
		if d := res.Trace.Digest(); d != g.digest {
			t.Errorf("%s: digest %#016x, golden %#016x", g.key, d, g.digest)
		}
		res2, err := g.run(again)
		if err != nil {
			t.Fatalf("%s (rerun): %v", g.key, err)
		}
		if d1, d2 := res.Trace.Digest(), res2.Trace.Digest(); d1 != d2 {
			t.Errorf("%s: rerun digest %#016x != %#016x — run not reproducible", g.key, d2, d1)
		}
	}
}

// TestRunAllParallelMatchesSerial runs the full experiment suite once
// serially and once with a parallel worker pool on a fresh suite, and
// requires identical artifacts: same text, metrics, and underlying trace
// digests. This is the gate that lets iotables default to -j GOMAXPROCS.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size paper workloads skipped in -short mode")
	}
	serial, err := RunAll(sharedSuite, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4 // exercise real contention even on small CI machines
	}
	par := NewSuite(1)
	parallel, err := RunAll(par, nil, workers)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(serial) {
		t.Fatalf("parallel returned %d artifacts, serial %d", len(parallel), len(serial))
	}
	for i, a := range serial {
		b := parallel[i]
		if a.ID != b.ID {
			t.Fatalf("artifact %d: id %q vs %q — order not preserved", i, a.ID, b.ID)
		}
		if a.Text != b.Text {
			t.Errorf("%s: parallel text differs from serial", a.ID)
		}
		if !reflect.DeepEqual(a.Measured, b.Measured) {
			t.Errorf("%s: parallel metrics differ from serial", a.ID)
		}
	}
	for _, g := range goldenDigests {
		res, err := g.run(par)
		if err != nil {
			t.Fatalf("%s: %v", g.key, err)
		}
		if d := res.Trace.Digest(); d != g.digest {
			t.Errorf("%s under parallel runner: digest %#016x, golden %#016x", g.key, d, g.digest)
		}
	}
}
