package experiments

import (
	"fmt"
	"strings"

	"paragonio/internal/apps/escat"
	"paragonio/internal/apps/prism"
	"paragonio/internal/cache"
	"paragonio/internal/core"
	"paragonio/internal/iobench"
	"paragonio/internal/pablo"
)

// The logtier experiment races the third tier — the per-compute-node
// log-structured write buffer (cache.LogTier) — against the server-side
// write-behind cache on the two checkpoint-shaped workloads of the
// faults study, then pins the tier's honest limit at application scale:
// a log absorbs writes at host-memory speed but cannot serve reads, so
// ESCAT's quadrature read-back and PRISM's restart read run at no-cache
// speed under the log alone. The log-tier application runs double as
// the advisor experiment's extra oracle rungs, so the closed loop is
// scored against a search space that includes the new tier.

// logOnTiers is the canonical log-tier-only configuration: every knob
// at its default (8 MB capacity, 1 MB segments, 50 ms drain deadline).
// The golden-digest tests run the paper workloads under it.
func logOnTiers() cache.Tiers {
	return cache.Tiers{Log: &cache.LogConfig{}}
}

// logVariant is one point of the application-level log-tier sweep.
type logVariant struct {
	id    string
	label string
	tiers cache.Tiers
}

// logTierVariants returns the sweep: the log tier alone (writes at
// memory speed, reads at disk speed), and the log stacked on the 32 MB
// write-behind block cache — the pairing the advisor emits for
// read-back workloads, where drained blocks stay resident.
func logTierVariants() []logVariant {
	return []logVariant{
		{id: "log", label: "log tier alone", tiers: logOnTiers()},
		{id: "logwb32", label: "log + write-behind 32 MB", tiers: cache.Tiers{
			Log:    &cache.LogConfig{},
			IONode: &cache.Config{CapacityBytes: 32 << 20, WriteBehind: true},
		}},
	}
}

// logCfg is the suite configuration plus one log-tier variant.
func (s *Suite) logCfg(v logVariant) core.Config {
	cfg := s.cfg()
	cfg.Tiers = v.tiers
	return cfg
}

// EthyleneLog returns the ESCAT ethylene version C run under a log-tier
// variant.
func (s *Suite) EthyleneLog(v logVariant) (*core.Result, error) {
	return s.run("logtier/eth/"+v.id, func() (*core.Result, error) {
		return escat.RunOn(s.logCfg(v), escat.Ethylene(), escat.VersionC())
	})
}

// PrismLog returns the PRISM version C run under a log-tier variant.
func (s *Suite) PrismLog(v logVariant) (*core.Result, error) {
	return s.run("logtier/prism/"+v.id, func() (*core.Result, error) {
		return prism.RunOn(s.logCfg(v), prism.TestProblem(), prism.VersionC())
	})
}

// logTierExp runs both checkpoint-shaped ladders and the application-
// level read-back race, and renders the comparison.
func logTierExp(s *Suite) (*Artifact, error) {
	chkRes, err := iobench.SweepLogTier(faultsPrismWorkload(s))
	if err != nil {
		return nil, err
	}
	stgRes, err := iobench.SweepLogTier(faultsEscatWorkload(s))
	if err != nil {
		return nil, err
	}

	var b strings.Builder
	if err := iobench.WriteLogTierTable(&b,
		"PRISM-shaped checkpoint (4 x 8 MB bursts, 4 I/O nodes) down the log-tier ladder",
		chkRes); err != nil {
		return nil, err
	}
	b.WriteString("\n")
	if err := iobench.WriteLogTierTable(&b,
		"ESCAT-shaped staging writes (8 nodes interleaving, 4 I/O nodes) down the log-tier ladder",
		stgRes); err != nil {
		return nil, err
	}

	find := func(rs []*iobench.Result, label string) *iobench.Result {
		for _, r := range rs {
			if r.CacheLabel == label {
				return r
			}
		}
		return nil
	}
	type ladder struct{ off, wb, log, logion *iobench.Result }
	rungs := func(rs []*iobench.Result) (ladder, error) {
		l := ladder{
			off:    find(rs, "no-cache"),
			wb:     find(rs, "write-behind"),
			log:    find(rs, "log-tier"),
			logion: find(rs, "log+ion"),
		}
		if l.off == nil || l.wb == nil || l.log == nil || l.logion == nil {
			return l, fmt.Errorf("logtier: ladder rungs missing")
		}
		return l, nil
	}
	chk, err := rungs(chkRes)
	if err != nil {
		return nil, err
	}
	stg, err := rungs(stgRes)
	if err != nil {
		return nil, err
	}

	// The application-level read-back race: the same runs feed the
	// advisor experiment's oracle pool through the suite cache.
	var wb32 cacheVariant
	for _, v := range cacheVariants() {
		if v.id == "wb32" {
			wb32 = v
		}
	}
	var logOnly logVariant
	for _, v := range logTierVariants() {
		if v.id == "log" {
			logOnly = v
		}
	}
	ethLog, err := s.EthyleneLog(logOnly)
	if err != nil {
		return nil, err
	}
	ethWB, err := s.EthyleneCached(wb32)
	if err != nil {
		return nil, err
	}
	prismLog, err := s.PrismLog(logOnly)
	if err != nil {
		return nil, err
	}
	prismWB, err := s.PrismCached(wb32)
	if err != nil {
		return nil, err
	}
	ethLogRd := quadTime(ethLog, pablo.OpRead)
	ethWBRd := quadTime(ethWB, pablo.OpRead)
	ethLogWr := quadTime(ethLog, pablo.OpWrite)
	prismLogRd := restartReadTime(prismLog)
	prismWBRd := restartReadTime(prismWB)

	b.WriteString("\n")
	fmt.Fprintf(&b, "Read-back at application scale (a log absorbs writes, it cannot serve reads):\n")
	fmt.Fprintf(&b, "  ESCAT eth C quad writes: %s s under the log alone (write-behind 32 MB: %s s)\n",
		secs(ethLogWr), secs(quadTime(ethWB, pablo.OpWrite)))
	fmt.Fprintf(&b, "  ESCAT eth C quad reads:  %s s under the log alone vs %s s under write-behind 32 MB\n",
		secs(ethLogRd), secs(ethWBRd))
	fmt.Fprintf(&b, "  PRISM C restart read:    %s s under the log alone vs %s s under write-behind 32 MB\n",
		secs(prismLogRd), secs(prismWBRd))

	// 'paper' holds the no-cache machine (the only one the paper
	// measured); 'measured' the log-tier ladder. The read-back keys
	// carry the honest negative: 'paper' is the write-behind time the
	// log fails to match, 'measured' the log-alone time.
	paper := map[string]float64{
		"chk.wall_s":        chk.off.Wall.Seconds(),
		"chk.wall_wb_s":     chk.off.Wall.Seconds(),
		"chk.wall_logion_s": chk.off.Wall.Seconds(),
		"stg.wall_s":        stg.off.Wall.Seconds(),
		"stg.wall_wb_s":     stg.off.Wall.Seconds(),
		"stg.wall_logion_s": stg.off.Wall.Seconds(),
		"chk.appends":       0,
		"chk.bp_stalls":     0,
		"eth.quad_read_s":   ethWBRd.Seconds(),
		"prism.rst_read_s":  prismWBRd.Seconds(),
	}
	measured := map[string]float64{
		"chk.wall_s":        chk.log.Wall.Seconds(),
		"chk.wall_wb_s":     chk.wb.Wall.Seconds(),
		"chk.wall_logion_s": chk.logion.Wall.Seconds(),
		"stg.wall_s":        stg.log.Wall.Seconds(),
		"stg.wall_wb_s":     stg.wb.Wall.Seconds(),
		"stg.wall_logion_s": stg.logion.Wall.Seconds(),
		"chk.appends":       float64(chk.log.Log.Appends),
		"chk.bp_stalls":     float64(chk.log.Log.AppendStalls),
		"eth.quad_read_s":   ethLogRd.Seconds(),
		"prism.rst_read_s":  prismLogRd.Seconds(),
	}
	return &Artifact{
		ID:       "logtier",
		Title:    "Log tier study: host-side burst buffer vs server write-behind",
		Text:     b.String(),
		Paper:    paper,
		Measured: measured,
		Notes: "Not a paper artifact: the ROADMAP host-side logging study " +
			"(the burst-buffer lineage the paper's checkpoint sections " +
			"anticipate). 'paper' is the no-cache machine; 'measured' the " +
			"log-tier rungs. On both checkpoint-shaped ladders the log " +
			"beats server-side write-behind outright — appends commit at " +
			"host-memory speed before any mesh hop, and the sequential " +
			"drain overlaps compute — and stacking the block cache under " +
			"the drain buys the write-only bursts nothing (the log+ion " +
			"rung pays the drain's extra cache copy). The honest negatives " +
			"carry the design rule: a log absorbs writes, it cannot serve " +
			"reads. ESCAT ethylene's quadrature read-back under the log " +
			"alone runs at no-cache speed — every read barrier waits for " +
			"the drain, then the read goes to disk anyway — and PRISM's " +
			"restart read is bit-for-bit the no-cache time. Pairing the " +
			"log with write-behind recovers both (drained records land in " +
			"the block cache and the read-back stays resident), which is " +
			"exactly the pairing the advisor emits: cache-log-tier for " +
			"write-dominated traces, avoid-log-tier when read-back would " +
			"stall on the drain with no block cache to catch it.",
	}, nil
}
