package experiments

import "fmt"

// Grid is a mixed-radix index over a Cartesian product of sweep axes:
// the iosimd sweep planner declares one dimension per request axis
// (version, seed, I/O-node count, stripe unit, cache tier …) and walks
// the product space by flat index, decoding each index back to one
// coordinate per axis. The last axis varies fastest — a ladder over the
// final axis (typically the cache tier) enumerates contiguously, so
// adjacent sweep points share their config prefix.
type Grid struct {
	dims []int
}

// NewGrid builds a grid over the given axis lengths. Every length must
// be at least 1, and the product must fit an int — sweeps are planner-
// capped far below that, so overflow means a malformed request.
func NewGrid(dims ...int) (Grid, error) {
	size := 1
	for i, d := range dims {
		if d < 1 {
			return Grid{}, fmt.Errorf("experiments: grid axis %d has length %d", i, d)
		}
		if size > (1<<31)/d {
			return Grid{}, fmt.Errorf("experiments: grid size overflows (%d axes)", len(dims))
		}
		size *= d
	}
	return Grid{dims: append([]int(nil), dims...)}, nil
}

// Axes returns the number of dimensions.
func (g Grid) Axes() int { return len(g.dims) }

// Size returns the number of points in the product space.
func (g Grid) Size() int {
	size := 1
	for _, d := range g.dims {
		size *= d
	}
	return size
}

// Coords decodes flat index i into one coordinate per axis, last axis
// fastest. It panics when i is out of range — callers iterate
// [0, Size()), so an out-of-range index is a programming error.
func (g Grid) Coords(i int) []int {
	if i < 0 || i >= g.Size() {
		panic(fmt.Sprintf("experiments: grid index %d out of range [0,%d)", i, g.Size()))
	}
	coords := make([]int, len(g.dims))
	for axis := len(g.dims) - 1; axis >= 0; axis-- {
		coords[axis] = i % g.dims[axis]
		i /= g.dims[axis]
	}
	return coords
}
