package experiments

import (
	"testing"
	"time"

	"paragonio/internal/apps/escat"
	"paragonio/internal/apps/prism"
	"paragonio/internal/core"
	"paragonio/internal/faults"
	"paragonio/internal/sim"
)

// faultGoldenDigests pins the degraded-machine runs the same way the
// canonical runs are pinned: exact FNV-1a digests of the PRISM version C
// trace under each fault kind, bit-identical at shard counts 1, 4, and
// 16. Faults are scheduled DES events armed in plan order before the
// run, so their sequence allocation — and hence every digest — is
// independent of sharding. The event counts all match the healthy run
// (11396): faults change when I/O completes, never what I/O the program
// asked for. The client-flap rung runs with the client tier on; its
// healthy baseline is the client-on golden 0x4f35ba3c6c1263b6
// (clientcache_test.go), and the storm digest differs from it because
// recalled leases turn later lookups into misses.
var faultGoldenDigests = []struct {
	key    string
	events int
	digest uint64
	plan   faults.Plan
	client bool
}{
	{"prism/C+disk-fail", 11396, 0x9ce1a397b722477e, faults.Plan{Faults: []faults.Fault{
		{Kind: faults.DiskFail, At: time.Second, IONode: 0}}}, false},
	{"prism/C+node-crash", 11396, 0xa718d8caef853911, faults.Plan{Faults: []faults.Fault{
		{Kind: faults.NodeCrash, At: time.Second, IONode: 0}}}, false},
	{"prism/C+straggler", 11396, 0x653508a8fbecbd12, faults.Plan{Faults: []faults.Fault{
		{Kind: faults.Straggler, At: time.Second, IONode: 0, Factor: 4}}}, false},
	{"prism/C+client-flap", 11396, 0x3f449cbd7cad19d0, faults.Plan{Faults: []faults.Fault{
		{Kind: faults.ClientFlap, At: time.Second, Node: 1, Count: 7500, Period: time.Second}}}, true},
}

// TestFaultGoldenDigests pins every fault kind's degraded trace at shard
// counts 1, 4, and 16, and checks each digest is distinct from the
// healthy golden it degrades.
func TestFaultGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size paper workloads skipped in -short mode")
	}
	old := sim.DefaultStageMin
	sim.DefaultStageMin = 2
	defer func() { sim.DefaultStageMin = old }()

	const healthyOff = 0xbc010fbf3debceec    // prism/C, tiers off
	const healthyClient = 0x4f35ba3c6c1263b6 // prism/C, client tier on
	for _, g := range faultGoldenDigests {
		healthy := uint64(healthyOff)
		if g.client {
			healthy = healthyClient
		}
		if g.digest == healthy {
			t.Errorf("%s: pinned digest equals the healthy golden — the fault is inert", g.key)
		}
		for _, shards := range []int{1, 4, 16} {
			cfg := core.Config{Seed: 1, Shards: shards, Faults: g.plan}
			if g.client {
				cfg.Tiers = clientOnTiers()
			}
			res, err := prism.RunOn(cfg, prism.TestProblem(), prism.VersionC())
			if err != nil {
				t.Fatalf("shards=%d %s: %v", shards, g.key, err)
			}
			if n := res.Trace.Len(); n != g.events {
				t.Errorf("shards=%d %s: %d events, golden %d", shards, g.key, n, g.events)
			}
			if d := res.Trace.Digest(); d != g.digest {
				t.Errorf("shards=%d %s: digest %#016x, golden %#016x", shards, g.key, d, g.digest)
			}
		}
	}
}

// TestEmptyFaultPlanMatchesHealthyGoldens is the property test behind
// the fault plane's digest-safety contract: a run configured with an
// explicitly empty (non-nil) faults.Plan arms zero events and must be
// byte-identical to every one of the seven healthy goldens.
func TestEmptyFaultPlanMatchesHealthyGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size paper workloads skipped in -short mode")
	}
	empty := faults.Plan{Faults: []faults.Fault{}}
	cfg := core.Config{Seed: 1, Faults: empty}
	runs := map[string]func() (*core.Result, error){
		"escat/eth/A": func() (*core.Result, error) { return escat.RunOn(cfg, escat.Ethylene(), escat.VersionA()) },
		"escat/eth/B": func() (*core.Result, error) { return escat.RunOn(cfg, escat.Ethylene(), escat.VersionB()) },
		"escat/eth/C": func() (*core.Result, error) { return escat.RunOn(cfg, escat.Ethylene(), escat.VersionC()) },
		"escat/co/C": func() (*core.Result, error) {
			return escat.RunOn(cfg, escat.CarbonMonoxide(), escat.VersionCCarbonMonoxide())
		},
		"prism/A": func() (*core.Result, error) { return prism.RunOn(cfg, prism.TestProblem(), prism.VersionA()) },
		"prism/B": func() (*core.Result, error) { return prism.RunOn(cfg, prism.TestProblem(), prism.VersionB()) },
		"prism/C": func() (*core.Result, error) { return prism.RunOn(cfg, prism.TestProblem(), prism.VersionC()) },
	}
	for _, g := range goldenDigests {
		run, ok := runs[g.key]
		if !ok {
			t.Fatalf("no empty-plan runner for golden %s", g.key)
		}
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", g.key, err)
		}
		if n := res.Trace.Len(); n != g.events {
			t.Errorf("%s: empty plan produced %d events, golden %d", g.key, n, g.events)
		}
		if d := res.Trace.Digest(); d != g.digest {
			t.Errorf("%s: empty plan digest %#016x != healthy golden %#016x", g.key, d, g.digest)
		}
	}
}

// TestFaultsExperimentRegistered pins the experiment-family wiring: the
// faults study is registered and runnable from iotables.
func TestFaultsExperimentRegistered(t *testing.T) {
	if _, ok := ByID("faults"); !ok {
		t.Fatal("faults experiment not registered")
	}
}

// TestFaultsArtifact runs the faults study once and checks its shape:
// disk-fail and straggler rungs are strictly slower than the healthy
// baseline, the crash rung merely differs (on the single-writer PRISM
// checkpoint, failover consolidates adjacent stripes on the ring
// successor into sequential continuations and the run gets *faster* —
// see the artifact Notes), the disk-fail rung counts
// reconstruction-mode requests, and the crash rung counts reroutes.
func TestFaultsArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size workloads skipped in -short mode")
	}
	art, err := faultsExp(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	if art.ID != "faults" {
		t.Errorf("artifact ID %q", art.ID)
	}
	healthy := art.Measured["wall_s"]
	for _, k := range []string{"wall_diskfail_s", "wall_strag_s"} {
		if art.Measured[k] <= healthy {
			t.Errorf("%s = %.3f not above healthy %.3f", k, art.Measured[k], healthy)
		}
	}
	if art.Measured["wall_crash_s"] == healthy {
		t.Errorf("wall_crash_s = %.3f identical to healthy — the crash rung is inert", healthy)
	}
	if art.Measured["degraded_reqs"] == 0 {
		t.Error("disk-fail rung served zero degraded requests")
	}
	if art.Measured["rerouted_reqs"] == 0 {
		t.Error("node-crash rung rerouted zero requests")
	}
}
