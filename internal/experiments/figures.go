package experiments

import (
	"fmt"
	"strings"

	"paragonio/internal/analysis"
	"paragonio/internal/pablo"
	"paragonio/internal/report"
)

// timelineSeries converts analysis timeline points to plot points
// (seconds on x).
func timelineSeries(name string, glyph rune, pts []analysis.TimelinePoint) report.Series {
	out := report.Series{Name: name, Glyph: glyph}
	for _, p := range pts {
		out.Points = append(out.Points, report.Point{X: p.T.Seconds(), Y: p.V})
	}
	return out
}

// cdfSeries converts a stats CDF to plot points.
func cdfSeries(name string, glyph rune, c analysis.SizeCDF, data bool) report.Series {
	out := report.Series{Name: name, Glyph: glyph, Line: true}
	pts := c.Ops.Points()
	if data {
		pts = c.Data.Points()
	}
	for _, p := range pts {
		out.Points = append(out.Points, report.Point{X: p.X, Y: p.F})
	}
	return out
}

// figure1: ESCAT execution time across the six code progressions.
func figure1(s *Suite) (*Artifact, error) {
	prog, err := s.Progressions()
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	var rows [][]string
	measured := map[string]float64{}
	for _, r := range prog {
		rows = append(rows, []string{r.Version, fmt.Sprintf("%.0f", r.Exec.Seconds())})
		measured["exec."+r.Version] = r.Exec.Seconds()
	}
	first := prog[0].Exec.Seconds()
	last := prog[len(prog)-1].Exec.Seconds()
	measured["reduction.pct"] = 100 * (first - last) / first
	report.Table(&b, "Figure 1: execution time for six ESCAT code progressions (s)",
		[]string{"Build", "exec (s)"}, rows)
	paper := map[string]float64{
		"exec.A": 6650, "exec.A2": 6500, "exec.B1": 6200, "exec.B2": 6100,
		"exec.B3": 6000, "exec.C": 5400, "reduction.pct": 20,
	}
	b.WriteString("\n")
	b.WriteString(comparisonTable("paper (read off figure) vs measured", paper, measured))
	return &Artifact{
		ID: "figure1", Title: "Figure 1 (ESCAT progression)",
		Text: b.String(), Paper: paper, Measured: measured,
		Notes: "paper values are approximate figure readings; the criterion is a monotone ~20% reduction A->C",
	}, nil
}

// figure2: ESCAT CDFs of read/write sizes and data transfers.
func figure2(s *Suite) (*Artifact, error) {
	var b strings.Builder
	measured := map[string]float64{}
	var readSeries, writeSeries []report.Series
	glyphs := map[string]rune{"A": 'a', "B": 'b', "C": 'c'}
	for _, id := range []string{"A", "B", "C"} {
		res, err := s.Ethylene(id)
		if err != nil {
			return nil, err
		}
		reads := analysis.SizeCDFOf(res.Trace, pablo.OpRead)
		writes := analysis.SizeCDFOf(res.Trace, pablo.OpWrite)
		readSeries = append(readSeries,
			cdfSeries(id+" fraction of reads", glyphs[id], reads, false),
			cdfSeries(id+" fraction of data", glyphs[id]-'a'+'A', reads, true))
		writeSeries = append(writeSeries,
			cdfSeries(id+" fraction of writes", glyphs[id], writes, false))
		measured[id+".reads.small.frac"] = reads.FracOpsBelow(2048)
		measured[id+".readdata.small.frac"] = reads.FracDataBelow(2048)
		measured[id+".readdata.large128K.frac"] = 1 - reads.FracDataBelow(131071)
		measured[id+".writes.small.frac"] = writes.FracOpsBelow(3000)
	}
	p := report.Plot{Title: "Figure 2a: CDF of ESCAT read sizes (bytes, log)", XLabel: "read size (bytes)",
		YLabel: "CDF", XLog: true, Width: 70, Height: 16}
	p.Render(&b, readSeries)
	b.WriteString("\n")
	p2 := report.Plot{Title: "Figure 2b: CDF of ESCAT write sizes (bytes)", XLabel: "write size (bytes)",
		YLabel: "CDF", Width: 70, Height: 16}
	p2.Render(&b, writeSeries)
	paper := map[string]float64{
		"A.reads.small.frac":        0.97,
		"A.readdata.small.frac":     0.40,
		"B.reads.small.frac":        0.50,
		"B.readdata.large128K.frac": 0.98,
		"C.reads.small.frac":        0.50,
		"C.readdata.large128K.frac": 0.98,
		"A.writes.small.frac":       1.00,
		"B.writes.small.frac":       1.00,
		"C.writes.small.frac":       1.00,
	}
	b.WriteString("\n")
	b.WriteString(comparisonTable("paper vs measured (fractions)", paper, measured))
	return &Artifact{
		ID: "figure2", Title: "Figure 2 (ESCAT size CDFs)",
		Text: b.String(), Paper: paper, Measured: measured,
		Notes: "large128K = fraction of read data moved by reads >= 128 KB (two stripes)",
	}, nil
}

// figure3: ESCAT read sizes over execution time, versions A and C.
func figure3(s *Suite) (*Artifact, error) {
	var b strings.Builder
	measured := map[string]float64{}
	var series []report.Series
	for _, id := range []string{"A", "C"} {
		res, err := s.Ethylene(id)
		if err != nil {
			return nil, err
		}
		pts := analysis.SizeTimeline(res.Trace, pablo.OpRead)
		glyph := 'a'
		if id == "C" {
			glyph = 'c'
		}
		series = append(series, timelineSeries("version "+id, glyph, pts))
		var maxSize, minT, maxT float64
		minT = res.Exec.Seconds()
		for _, p := range pts {
			if p.V > maxSize {
				maxSize = p.V
			}
			if t := p.T.Seconds(); t < minT {
				minT = t
			}
			if t := p.T.Seconds(); t > maxT {
				maxT = t
			}
		}
		measured[id+".reads"] = float64(len(pts))
		measured[id+".maxsize"] = maxSize
		_ = maxT
	}
	for _, sr := range series {
		p := report.Plot{Title: "Figure 3: ESCAT read sizes over time, " + sr.Name,
			XLabel: "execution time (s)", YLabel: "bytes", YLog: true, Width: 70, Height: 14}
		p.Render(&b, []report.Series{sr})
		b.WriteString("\n")
	}
	paper := map[string]float64{
		// Shape criteria: A has two orders of magnitude more read events
		// than C, and C's reload reads are 128 KB.
		"C.maxsize":              131072,
		"readcount.ratio.AoverC": 50, // approximate: A's serialized small reads vs C's records
	}
	measured["readcount.ratio.AoverC"] = measured["A.reads"] / measured["C.reads"]
	b.WriteString(comparisonTable("shape criteria", paper, measured))
	return &Artifact{
		ID: "figure3", Title: "Figure 3 (ESCAT read timelines)",
		Text: b.String(), Paper: paper, Measured: measured,
		Notes: "reads cluster at run start and end in both versions; C reads in 128 KB records",
	}, nil
}

// figure4: ESCAT write sizes over execution time, versions A and C.
func figure4(s *Suite) (*Artifact, error) {
	var b strings.Builder
	measured := map[string]float64{}
	for _, id := range []string{"A", "C"} {
		res, err := s.Ethylene(id)
		if err != nil {
			return nil, err
		}
		pts := analysis.SizeTimeline(res.Trace, pablo.OpWrite)
		glyph := 'a'
		if id == "C" {
			glyph = 'c'
		}
		p := report.Plot{Title: "Figure 4: ESCAT write sizes over time, version " + id,
			XLabel: "execution time (s)", YLabel: "bytes", Width: 70, Height: 14}
		p.Render(&b, []report.Series{timelineSeries("version "+id, glyph, pts)})
		b.WriteString("\n")
		// Staging write sizes (phase 2 only: exclude the result-file
		// writes of phase 4). Count the sizes carrying at least 1% of
		// the writes, so version A's per-cycle remainder writes (one odd
		// size per compute/write cycle) do not obscure its four-size
		// population.
		staging := res.Trace.Filter(func(ev pablo.Event) bool {
			return ev.Op == pablo.OpWrite && strings.HasPrefix(ev.File, "escat/quad.")
		})
		counts := analysis.RequestSizes(staging, pablo.OpWrite)
		var total int
		for _, c := range counts {
			total += c
		}
		var major int
		for _, c := range counts {
			if float64(c) >= 0.01*float64(total) {
				major++
			}
		}
		measured[id+".staging.sizes"] = float64(major)
	}
	paper := map[string]float64{
		"A.staging.sizes": 4, // "node zero coordinates these writes with four different request sizes"
		"C.staging.sizes": 1, // "all write requests are of the same size"
	}
	b.WriteString(comparisonTable("shape criteria", paper, measured))
	return &Artifact{
		ID: "figure4", Title: "Figure 4 (ESCAT write timelines)",
		Text: b.String(), Paper: paper, Measured: measured,
		Notes: "version A staging uses four request sizes (plus boundary remainders); C uses exactly one",
	}, nil
}

// figure5: ESCAT seek durations, versions B and C.
func figure5(s *Suite) (*Artifact, error) {
	var b strings.Builder
	measured := map[string]float64{}
	for _, id := range []string{"B", "C"} {
		res, err := s.Ethylene(id)
		if err != nil {
			return nil, err
		}
		pts := analysis.DurationTimeline(res.Trace, pablo.OpSeek)
		glyph := 'b'
		if id == "C" {
			glyph = 'c'
		}
		p := report.Plot{Title: "Figure 5: ESCAT seek durations over time, version " + id,
			XLabel: "execution time (s)", YLabel: "seconds", Width: 70, Height: 14}
		p.Render(&b, []report.Series{timelineSeries("version "+id, glyph, pts)})
		b.WriteString("\n")
		var max float64
		for _, pt := range pts {
			if pt.V > max {
				max = pt.V
			}
		}
		measured[id+".seek.max_s"] = max
	}
	measured["seekmax.ratio.BoverC"] = measured["B.seek.max_s"] / measured["C.seek.max_s"]
	paper := map[string]float64{
		"B.seek.max_s":         8.5,  // Figure 5 top: seeks reach ~8-9 s
		"C.seek.max_s":         0.45, // Figure 5 bottom: sub-half-second
		"seekmax.ratio.BoverC": 19,
	}
	b.WriteString(comparisonTable("paper (read off figure) vs measured", paper, measured))
	return &Artifact{
		ID: "figure5", Title: "Figure 5 (ESCAT seek durations)",
		Text: b.String(), Paper: paper, Measured: measured,
		Notes: "criterion: M_UNIX seeks reach seconds under contention; M_ASYNC seeks are orders of magnitude lower",
	}, nil
}

// figure6: PRISM execution times.
func figure6(s *Suite) (*Artifact, error) {
	var b strings.Builder
	var rows [][]string
	measured := map[string]float64{}
	for _, id := range []string{"A", "B", "C"} {
		res, err := s.Prism(id)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{id, fmt.Sprintf("%.0f", res.Exec.Seconds())})
		measured["exec."+id] = res.Exec.Seconds()
	}
	measured["reduction.pct"] = 100 * (measured["exec.A"] - measured["exec.C"]) / measured["exec.A"]
	report.Table(&b, "Figure 6: execution time for three PRISM code versions (s)",
		[]string{"Version", "exec (s)"}, rows)
	paper := map[string]float64{
		"exec.A": 9450, "exec.B": 8100, "exec.C": 7300, "reduction.pct": 23,
	}
	b.WriteString("\n")
	b.WriteString(comparisonTable("paper (read off figure) vs measured", paper, measured))
	return &Artifact{
		ID: "figure6", Title: "Figure 6 (PRISM progression)",
		Text: b.String(), Paper: paper, Measured: measured,
		Notes: "criterion: monotone ~23% reduction A->C",
	}, nil
}

// figure7: PRISM CDFs of read/write sizes and data transfers.
func figure7(s *Suite) (*Artifact, error) {
	var b strings.Builder
	measured := map[string]float64{}
	var readSeries, writeSeries []report.Series
	for _, id := range []string{"A", "B", "C"} {
		res, err := s.Prism(id)
		if err != nil {
			return nil, err
		}
		reads := analysis.SizeCDFOf(res.Trace, pablo.OpRead)
		writes := analysis.SizeCDFOf(res.Trace, pablo.OpWrite)
		glyph := rune('a' + id[0] - 'A')
		readSeries = append(readSeries, cdfSeries(id+" fraction of reads", glyph, reads, false))
		writeSeries = append(writeSeries, cdfSeries(id+" fraction of writes", glyph, writes, false))
		measured[id+".readdata.large.frac"] = 1 - reads.FracDataBelow(150000)
		measured[id+".writedata.large.frac"] = 1 - writes.FracDataBelow(150000)
		var tinyReads, tinyWrites int
		for _, ev := range res.Trace.ByOp(pablo.OpRead) {
			if ev.Size > 0 && ev.Size <= 40 {
				tinyReads++
			}
		}
		for _, ev := range res.Trace.ByOp(pablo.OpWrite) {
			if ev.Size > 0 && ev.Size <= 40 {
				tinyWrites++
			}
		}
		measured[id+".reads.tiny.count"] = float64(tinyReads)
		measured[id+".writes.tiny.count"] = float64(tinyWrites)
		var smallReads int
		for _, ev := range res.Trace.ByOp(pablo.OpRead) {
			if ev.Size > 0 && ev.Size < 1024 {
				smallReads++
			}
		}
		measured[id+".reads.small.count"] = float64(smallReads)
	}
	p := report.Plot{Title: "Figure 7a: CDF of PRISM read sizes (bytes, log)", XLabel: "read size (bytes)",
		YLabel: "CDF", XLog: true, Width: 70, Height: 16}
	p.Render(&b, readSeries)
	b.WriteString("\n")
	p2 := report.Plot{Title: "Figure 7b: CDF of PRISM write sizes (bytes, log)", XLabel: "write size (bytes)",
		YLabel: "CDF", XLog: true, Width: 70, Height: 16}
	p2.Render(&b, writeSeries)
	// Shape criteria from the paper's prose: "a large number of small
	// (less than 40 bytes) read and write requests, although a few large
	// requests (greater 150KB) constitute the majority of I/O data
	// volume"; and for C, "the connectivity file is read as binary
	// rather than text data, reducing the number of small reads".
	measured["smallreads.ratio.AoverC"] =
		measured["A.reads.small.count"] / measured["C.reads.small.count"]
	paper := map[string]float64{
		"A.reads.tiny.count":      4800, // thousands of sub-40-byte requests (header consults + parameter lines)
		"A.readdata.large.frac":   0.80,
		"C.readdata.large.frac":   0.80,
		"A.writedata.large.frac":  0.90,
		"C.writedata.large.frac":  0.90,
		"smallreads.ratio.AoverC": 2, // C has clearly fewer small reads
	}
	b.WriteString("\n")
	b.WriteString(comparisonTable("shape criteria (approximate)", paper, measured))
	return &Artifact{
		ID: "figure7", Title: "Figure 7 (PRISM size CDFs)",
		Text: b.String(), Paper: paper, Measured: measured,
		Notes: "paper reports no significant variation across versions except fewer small reads in C",
	}, nil
}

// figure8: PRISM read sizes over time for all three versions.
func figure8(s *Suite) (*Artifact, error) {
	var b strings.Builder
	measured := map[string]float64{}
	for _, id := range []string{"A", "B", "C"} {
		res, err := s.Prism(id)
		if err != nil {
			return nil, err
		}
		pts := analysis.SizeTimeline(res.Trace, pablo.OpRead)
		// Restrict the plot to the read phase (phase one).
		var span float64
		for _, pt := range pts {
			if t := pt.T.Seconds(); t > span {
				span = t
			}
		}
		p := report.Plot{Title: "Figure 8: PRISM read sizes over time, version " + id,
			XLabel: "execution time (s)", YLabel: "bytes", YLog: true, Width: 70, Height: 12}
		p.Render(&b, []report.Series{timelineSeries("version "+id, rune('a'+id[0]-'A'), pts)})
		b.WriteString("\n")
		measured[id+".readspan_s"] = span
	}
	paper := map[string]float64{
		"A.readspan_s": 250,
		"B.readspan_s": 140,
		"C.readspan_s": 180,
	}
	b.WriteString(comparisonTable("paper (read off figure) vs measured", paper, measured))
	return &Artifact{
		ID: "figure8", Title: "Figure 8 (PRISM read timelines)",
		Text: b.String(), Paper: paper, Measured: measured,
		Notes: "A's serialized reads spread widest; B's collective reads are compact; C's unbuffered header reads re-lengthen the span (weakly reproduced: C's span exceeds B's only modestly)",
	}, nil
}

// figure9: PRISM write sizes over time, version C — the five checkpoints.
func figure9(s *Suite) (*Artifact, error) {
	res, err := s.Prism("C")
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	pts := analysis.SizeTimeline(res.Trace, pablo.OpWrite)
	p := report.Plot{Title: "Figure 9: PRISM write sizes over time, version C",
		XLabel: "execution time (s)", YLabel: "bytes", YLog: true, Width: 72, Height: 14}
	p.Render(&b, []report.Series{timelineSeries("version C", 'c', pts)})
	b.WriteString("\n")

	// Count checkpoint bursts: clusters of >=100 KB writes separated by
	// >60 s, excluding the final field dump (phase three).
	var bursts int
	lastBurst := -1e18
	fieldStart := 0.0
	for _, w := range res.Phases {
		if strings.HasPrefix(w.Name, "three") {
			fieldStart = w.Start.Seconds()
		}
	}
	for _, pt := range pts {
		t := pt.T.Seconds()
		if pt.V >= 100000 && t < fieldStart {
			if t-lastBurst > 60 {
				bursts++
			}
			lastBurst = t
		}
	}
	measured := map[string]float64{"checkpoints.visible": float64(bursts)}
	paper := map[string]float64{"checkpoints.visible": 5}
	b.WriteString(comparisonTable("shape criteria", paper, measured))
	return &Artifact{
		ID: "figure9", Title: "Figure 9 (PRISM write timeline, version C)",
		Text: b.String(), Paper: paper, Measured: measured,
		Notes: "five checkpoint bursts of 155,584-byte records over a background of sub-400-byte writes",
	}, nil
}
