package experiments

import (
	"os"
	"strings"
	"testing"

	"paragonio/internal/policy"
)

// TestAdvisorTranscriptInSync regenerates the worked `iotrace advise`
// transcript in docs/ADVISOR.md (the ESCAT ethylene version A trace at
// seed 1) and fails if the document drifted from what the advisor
// actually prints. Update the fenced block between the
// advise-transcript markers when the advisor's output changes on
// purpose.
func TestAdvisorTranscriptInSync(t *testing.T) {
	doc, err := os.ReadFile("../../docs/ADVISOR.md")
	if err != nil {
		t.Fatalf("read ADVISOR.md: %v", err)
	}
	const begin = "<!-- advise-transcript:begin -->"
	const end = "<!-- advise-transcript:end -->"
	s := string(doc)
	i := strings.Index(s, begin)
	j := strings.Index(s, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("ADVISOR.md transcript markers missing or out of order")
	}
	block := s[i+len(begin) : j]
	// Strip the ```text fence around the transcript.
	block = strings.TrimSpace(block)
	block = strings.TrimPrefix(block, "```text")
	block = strings.TrimSuffix(block, "```")
	want := strings.TrimSpace(block)

	suite := NewSuite(1)
	res, err := suite.Ethylene("A")
	if err != nil {
		t.Fatalf("ethylene A: %v", err)
	}
	var b strings.Builder
	if err := policy.WriteAdvice(&b, policy.Classify(res.Trace),
		policy.Options{}, policy.CacheOptions{}); err != nil {
		t.Fatalf("WriteAdvice: %v", err)
	}
	got := strings.TrimSpace(b.String())

	if got != want {
		t.Errorf("docs/ADVISOR.md transcript is stale.\n--- regenerated ---\n%s\n--- documented ---\n%s", got, want)
	}
}
