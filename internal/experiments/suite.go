// Package experiments maps every table and figure of the paper's
// evaluation to a runnable experiment: each regenerates its artifact
// from fresh simulated runs and reports measured values side by side
// with the paper's, so the reproduction quality is auditable (see
// EXPERIMENTS.md for the recorded comparison).
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"paragonio/internal/apps/escat"
	"paragonio/internal/apps/prism"
	"paragonio/internal/core"
)

// Suite caches application runs shared by multiple experiments (the
// ESCAT ethylene traces feed Tables 1-3 and Figures 1-5; the PRISM
// traces feed Table 4-5 and Figures 6-9). Runs are deterministic in the
// seed.
//
// A Suite is safe for concurrent use: each distinct run executes exactly
// once (concurrent requesters of the same run wait for the first), and
// distinct runs proceed in parallel — each builds its own single-threaded
// simulation kernel, so results are identical to serial execution.
type Suite struct {
	Seed int64
	// Shards, when >= 2, runs every application on a sharded simulation
	// kernel with that many conservative lanes (see core.Config.Shards).
	// Results are bit-identical to the single-threaded kernel for every
	// value — the golden-digest tests enforce it.
	Shards int
	// Window overrides the sync-window width of sharded runs (see
	// core.Config.Window). 0 uses the full lookahead.
	Window time.Duration

	mu   sync.Mutex
	runs map[string]*runSlot
}

// runSlot is the singleflight cell for one cached application run.
type runSlot struct {
	once sync.Once
	res  *core.Result
	err  error
}

// NewSuite creates an empty suite; runs happen lazily.
func NewSuite(seed int64) *Suite {
	return &Suite{Seed: seed, runs: make(map[string]*runSlot)}
}

// Release hands every cached run's trace buffer back to the pablo event
// pool and empties the run cache. Call it when the suite's results —
// including every Events() view derived from them — are no longer
// referenced: the buffers will be overwritten by the next recording
// run. High-churn callers (benchmark re-runs, batch drivers creating a
// suite per pass) use it to recycle the dominant allocation of a pass;
// everyone else can let the GC do the work.
func (s *Suite) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, slot := range s.runs {
		if slot.res != nil && slot.res.Trace != nil {
			slot.res.Trace.Release()
		}
	}
	s.runs = make(map[string]*runSlot)
}

// cfg returns the platform configuration all suite runs share.
func (s *Suite) cfg() core.Config {
	return core.Config{Seed: s.Seed, Shards: s.Shards, Window: s.Window}
}

// run returns the cached result for the run identified by id, executing
// f on first use. The cache key is ConfigKey(s.cfg(), id) rather than id
// alone, so a Suite whose Seed/Shards/Window fields are mutated after
// runs began never serves a result computed under the old configuration
// — the new configuration simply misses and recomputes.
func (s *Suite) run(id string, f func() (*core.Result, error)) (*core.Result, error) {
	key := ConfigKey(s.cfg(), id)
	s.mu.Lock()
	if s.runs == nil {
		s.runs = make(map[string]*runSlot)
	}
	slot, ok := s.runs[key]
	if !ok {
		slot = &runSlot{}
		s.runs[key] = slot
	}
	s.mu.Unlock()
	slot.once.Do(func() { slot.res, slot.err = f() })
	return slot.res, slot.err
}

// Ethylene returns the cached ESCAT ethylene run for a paper version
// ("A", "B", "C"), executing it on first use.
func (s *Suite) Ethylene(id string) (*core.Result, error) {
	var v escat.Version
	switch id {
	case "A":
		v = escat.VersionA()
	case "B":
		v = escat.VersionB()
	case "C":
		v = escat.VersionC()
	default:
		return nil, fmt.Errorf("experiments: unknown ESCAT version %q", id)
	}
	return s.run("eth/"+id, func() (*core.Result, error) {
		return escat.RunOn(s.cfg(), escat.Ethylene(), v)
	})
}

// Progressions returns the six ESCAT builds of Figure 1, in order. The
// builds identical to paper versions share the Ethylene cache entries;
// uncached builds run concurrently.
func (s *Suite) Progressions() ([]*core.Result, error) {
	versions := escat.Progressions()
	out := make([]*core.Result, len(versions))
	errs := make([]error, len(versions))
	var wg sync.WaitGroup
	for i, v := range versions {
		i, v := i, v
		key := "prog/" + v.ID
		switch v.ID {
		case "A", "B", "C": // identical builds to the paper versions
			key = "eth/" + v.ID
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i], errs[i] = s.run(key, func() (*core.Result, error) {
				return escat.RunOn(s.cfg(), escat.Ethylene(), v)
			})
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// CarbonMonoxide returns the cached ESCAT carbon-monoxide version C run.
func (s *Suite) CarbonMonoxide() (*core.Result, error) {
	return s.run("co/C", func() (*core.Result, error) {
		return escat.RunOn(s.cfg(), escat.CarbonMonoxide(), escat.VersionCCarbonMonoxide())
	})
}

// Prism returns the cached PRISM run for a version ("A", "B", "C").
func (s *Suite) Prism(id string) (*core.Result, error) {
	var v prism.Version
	switch id {
	case "A":
		v = prism.VersionA()
	case "B":
		v = prism.VersionB()
	case "C":
		v = prism.VersionC()
	default:
		return nil, fmt.Errorf("experiments: unknown PRISM version %q", id)
	}
	return s.run("prism/"+id, func() (*core.Result, error) {
		return prism.RunOn(s.cfg(), prism.TestProblem(), v)
	})
}

// Artifact is one regenerated table or figure with its paper-vs-measured
// comparison.
type Artifact struct {
	ID    string // "table2", "figure5", ...
	Title string
	// Text is the rendered artifact (table or character plot) plus the
	// comparison rows.
	Text string
	// Paper and Measured hold the comparable key metrics; keys match.
	Paper    map[string]float64
	Measured map[string]float64
	// Notes records known reproduction deviations.
	Notes string
}

// MetricKeys returns the artifact's comparison keys, sorted.
func (a *Artifact) MetricKeys() []string {
	keys := make([]string, 0, len(a.Paper))
	for k := range a.Paper {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Experiment is one runnable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(s *Suite) (*Artifact, error)
}

// All returns every experiment in paper order: tables 1-5, figures 1-9.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table 1: ESCAT node activity and file access modes", Run: table1},
		{ID: "table2", Title: "Table 2: ESCAT aggregate I/O time by operation (%)", Run: table2},
		{ID: "table3", Title: "Table 3: ESCAT % of execution time by I/O operation", Run: table3},
		{ID: "table4", Title: "Table 4: PRISM node activity and file access modes", Run: table4},
		{ID: "table5", Title: "Table 5: PRISM aggregate I/O time by operation (%)", Run: table5},
		{ID: "figure1", Title: "Figure 1: ESCAT execution time across six progressions", Run: figure1},
		{ID: "figure2", Title: "Figure 2: ESCAT CDFs of request sizes and data transfers", Run: figure2},
		{ID: "figure3", Title: "Figure 3: ESCAT read sizes over time (A vs C)", Run: figure3},
		{ID: "figure4", Title: "Figure 4: ESCAT write sizes over time (A vs C)", Run: figure4},
		{ID: "figure5", Title: "Figure 5: ESCAT seek durations (B vs C)", Run: figure5},
		{ID: "figure6", Title: "Figure 6: PRISM execution time across three versions", Run: figure6},
		{ID: "figure7", Title: "Figure 7: PRISM CDFs of request sizes and data transfers", Run: figure7},
		{ID: "figure8", Title: "Figure 8: PRISM read sizes over time (A/B/C)", Run: figure8},
		{ID: "figure9", Title: "Figure 9: PRISM write sizes over time (C)", Run: figure9},
		{ID: "cachewhatif", Title: "What-if: I/O-node buffer cache (write-behind / read-ahead)", Run: cacheWhatIf},
		{ID: "clientcache", Title: "What-if: client cache tier with lease coherence", Run: clientCache},
		{ID: "advisor", Title: "Closed loop: advised cache tiers vs oracle-best sweeps", Run: advisorExp},
		{ID: "flushpolicy", Title: "Flush-policy study: high-water + idle vs deadline write-behind", Run: flushPolicy},
		{ID: "faults", Title: "Fault study: checkpoint workloads on a degraded machine", Run: faultsExp},
		{ID: "logtier", Title: "Log tier study: host-side burst buffer vs server write-behind", Run: logTierExp},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes exps (nil means All()) against the suite with up to
// workers experiments in flight at once, returning the artifacts in exps
// order. workers <= 0 means GOMAXPROCS. Artifacts depend only on their
// (deterministic, cached) application runs, so the output is identical
// to running each experiment serially; on error, the first failure in
// exps order is reported.
func RunAll(s *Suite, exps []Experiment, workers int) ([]*Artifact, error) {
	if exps == nil {
		exps = All()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	arts := make([]*Artifact, len(exps))
	errs := make([]error, len(exps))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				arts[i], errs[i] = exps[i].Run(s)
			}
		}()
	}
	for i := range exps {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", exps[i].ID, err)
		}
	}
	return arts, nil
}
