// Package experiments maps every table and figure of the paper's
// evaluation to a runnable experiment: each regenerates its artifact
// from fresh simulated runs and reports measured values side by side
// with the paper's, so the reproduction quality is auditable (see
// EXPERIMENTS.md for the recorded comparison).
package experiments

import (
	"fmt"
	"sort"

	"paragonio/internal/apps/escat"
	"paragonio/internal/apps/prism"
	"paragonio/internal/core"
)

// Suite caches application runs shared by multiple experiments (the
// ESCAT ethylene traces feed Tables 1-3 and Figures 1-5; the PRISM
// traces feed Table 4-5 and Figures 6-9). Runs are deterministic in the
// seed.
type Suite struct {
	Seed int64

	eth   map[string]*core.Result
	prism map[string]*core.Result
	prog  []*core.Result
	co    *core.Result
}

// NewSuite creates an empty suite; runs happen lazily.
func NewSuite(seed int64) *Suite {
	return &Suite{
		Seed:  seed,
		eth:   make(map[string]*core.Result),
		prism: make(map[string]*core.Result),
	}
}

// Ethylene returns the cached ESCAT ethylene run for a paper version
// ("A", "B", "C"), executing it on first use.
func (s *Suite) Ethylene(id string) (*core.Result, error) {
	if r, ok := s.eth[id]; ok {
		return r, nil
	}
	var v escat.Version
	switch id {
	case "A":
		v = escat.VersionA()
	case "B":
		v = escat.VersionB()
	case "C":
		v = escat.VersionC()
	default:
		return nil, fmt.Errorf("experiments: unknown ESCAT version %q", id)
	}
	r, err := escat.Run(escat.Ethylene(), v, s.Seed)
	if err != nil {
		return nil, err
	}
	s.eth[id] = r
	return r, nil
}

// Progressions returns the six ESCAT builds of Figure 1, in order.
func (s *Suite) Progressions() ([]*core.Result, error) {
	if s.prog != nil {
		return s.prog, nil
	}
	versions := escat.Progressions()
	out := make([]*core.Result, 0, len(versions))
	for _, v := range versions {
		// Reuse the paper-version runs where the build is identical.
		if r, ok := s.eth[v.ID]; ok {
			out = append(out, r)
			continue
		}
		r, err := escat.Run(escat.Ethylene(), v, s.Seed)
		if err != nil {
			return nil, err
		}
		if v.ID == "A" || v.ID == "B" || v.ID == "C" {
			s.eth[v.ID] = r
		}
		out = append(out, r)
	}
	s.prog = out
	return out, nil
}

// CarbonMonoxide returns the cached ESCAT carbon-monoxide version C run.
func (s *Suite) CarbonMonoxide() (*core.Result, error) {
	if s.co != nil {
		return s.co, nil
	}
	r, err := escat.Run(escat.CarbonMonoxide(), escat.VersionCCarbonMonoxide(), s.Seed)
	if err != nil {
		return nil, err
	}
	s.co = r
	return r, nil
}

// Prism returns the cached PRISM run for a version ("A", "B", "C").
func (s *Suite) Prism(id string) (*core.Result, error) {
	if r, ok := s.prism[id]; ok {
		return r, nil
	}
	var v prism.Version
	switch id {
	case "A":
		v = prism.VersionA()
	case "B":
		v = prism.VersionB()
	case "C":
		v = prism.VersionC()
	default:
		return nil, fmt.Errorf("experiments: unknown PRISM version %q", id)
	}
	r, err := prism.Run(prism.TestProblem(), v, s.Seed)
	if err != nil {
		return nil, err
	}
	s.prism[id] = r
	return r, nil
}

// Artifact is one regenerated table or figure with its paper-vs-measured
// comparison.
type Artifact struct {
	ID    string // "table2", "figure5", ...
	Title string
	// Text is the rendered artifact (table or character plot) plus the
	// comparison rows.
	Text string
	// Paper and Measured hold the comparable key metrics; keys match.
	Paper    map[string]float64
	Measured map[string]float64
	// Notes records known reproduction deviations.
	Notes string
}

// MetricKeys returns the artifact's comparison keys, sorted.
func (a *Artifact) MetricKeys() []string {
	keys := make([]string, 0, len(a.Paper))
	for k := range a.Paper {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Experiment is one runnable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(s *Suite) (*Artifact, error)
}

// All returns every experiment in paper order: tables 1-5, figures 1-9.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table 1: ESCAT node activity and file access modes", Run: table1},
		{ID: "table2", Title: "Table 2: ESCAT aggregate I/O time by operation (%)", Run: table2},
		{ID: "table3", Title: "Table 3: ESCAT % of execution time by I/O operation", Run: table3},
		{ID: "table4", Title: "Table 4: PRISM node activity and file access modes", Run: table4},
		{ID: "table5", Title: "Table 5: PRISM aggregate I/O time by operation (%)", Run: table5},
		{ID: "figure1", Title: "Figure 1: ESCAT execution time across six progressions", Run: figure1},
		{ID: "figure2", Title: "Figure 2: ESCAT CDFs of request sizes and data transfers", Run: figure2},
		{ID: "figure3", Title: "Figure 3: ESCAT read sizes over time (A vs C)", Run: figure3},
		{ID: "figure4", Title: "Figure 4: ESCAT write sizes over time (A vs C)", Run: figure4},
		{ID: "figure5", Title: "Figure 5: ESCAT seek durations (B vs C)", Run: figure5},
		{ID: "figure6", Title: "Figure 6: PRISM execution time across three versions", Run: figure6},
		{ID: "figure7", Title: "Figure 7: PRISM CDFs of request sizes and data transfers", Run: figure7},
		{ID: "figure8", Title: "Figure 8: PRISM read sizes over time (A/B/C)", Run: figure8},
		{ID: "figure9", Title: "Figure 9: PRISM write sizes over time (C)", Run: figure9},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
