package experiments

import (
	"fmt"
	"strings"
	"time"

	"paragonio/internal/iobench"
	"paragonio/internal/pfs"
)

// The faults experiment is the ROADMAP degraded-mode study: it re-runs
// the two checkpoint-shaped workloads — the PRISM periodic dump and the
// ESCAT staging pattern — under the injectable fault plane
// (internal/faults), one fault kind per ladder rung: a single failed
// data drive in one RAID-3 array (parity reconstruction on every
// request), an I/O-node crash with stripe failover to the ring
// successor, an 8x straggler node, and a flapping client recalling every
// lease in the tier. Faults are scheduled DES events, so every degraded
// run is exactly as deterministic as the healthy one (the pinned golden
// digests live in faults_test.go).

// faultsPrismWorkload is the PRISM-shaped rung: node zero periodically
// dumps the global state in 64 KB records over 4 I/O nodes, compute
// between bursts. Four I/O nodes (not the paper's 16) keep a single
// failed component a quarter of the machine — big enough to measure.
func faultsPrismWorkload(s *Suite) iobench.Params {
	return iobench.Params{
		Kernel:  iobench.Checkpoint,
		Mode:    pfs.MAsync,
		Nodes:   8,
		Request: 64 << 10,
		Volume:  32 << 20,
		Cycles:  4,
		Compute: 500 * time.Millisecond,
		IONodes: 4,
		Seed:    s.Seed,
		Shards:  s.Shards,
	}
}

// faultsEscatWorkload is the ESCAT-shaped rung: every node writes
// interleaved slots of a staging file in compute/write cycles.
func faultsEscatWorkload(s *Suite) iobench.Params {
	return iobench.Params{
		Kernel:  iobench.StagingWrite,
		Mode:    pfs.MAsync,
		Nodes:   8,
		Request: 64 << 10,
		Volume:  32 << 20,
		Cycles:  4,
		Compute: 500 * time.Millisecond,
		IONodes: 4,
		Seed:    s.Seed,
		Shards:  s.Shards,
	}
}

// faultsExp runs both workloads down the fault ladder and renders the
// comparison.
func faultsExp(s *Suite) (*Artifact, error) {
	prismRes, err := iobench.SweepFaults(faultsPrismWorkload(s))
	if err != nil {
		return nil, err
	}
	escatRes, err := iobench.SweepFaults(faultsEscatWorkload(s))
	if err != nil {
		return nil, err
	}

	var b strings.Builder
	if err := iobench.WriteFaultTable(&b,
		"PRISM-shaped checkpoint (4 x 8 MB bursts, 4 I/O nodes) under injected faults",
		prismRes); err != nil {
		return nil, err
	}
	b.WriteString("\n")
	if err := iobench.WriteFaultTable(&b,
		"ESCAT-shaped staging writes (8 nodes interleaving, 4 I/O nodes) under injected faults",
		escatRes); err != nil {
		return nil, err
	}

	find := func(rs []*iobench.Result, label string) *iobench.Result {
		for _, r := range rs {
			if r.CacheLabel == label {
				return r
			}
		}
		return nil
	}
	healthy := find(prismRes, "healthy")
	disk := find(prismRes, "disk-fail")
	crash := find(prismRes, "node-crash")
	strag := find(prismRes, "straggler x4")
	if healthy == nil || disk == nil || crash == nil || strag == nil {
		return nil, fmt.Errorf("faults: ladder rungs missing")
	}

	// Shared keys: 'paper' holds the healthy machine (the only machine
	// the paper ever measured), 'measured' the degraded runs.
	paper := map[string]float64{
		"wall_s":          healthy.Wall.Seconds(),
		"wall_diskfail_s": healthy.Wall.Seconds(),
		"wall_crash_s":    healthy.Wall.Seconds(),
		"wall_strag_s":    healthy.Wall.Seconds(),
		"degraded_reqs":   0,
		"rerouted_reqs":   0,
	}
	measured := map[string]float64{
		"wall_s":          healthy.Wall.Seconds(),
		"wall_diskfail_s": disk.Wall.Seconds(),
		"wall_crash_s":    crash.Wall.Seconds(),
		"wall_strag_s":    strag.Wall.Seconds(),
		"degraded_reqs":   float64(disk.Degraded),
		"rerouted_reqs":   float64(crash.Rerouted),
	}
	return &Artifact{
		ID:       "faults",
		Title:    "Fault study: checkpoint workloads on a degraded machine",
		Text:     b.String(),
		Paper:    paper,
		Measured: measured,
		Notes: "Not a paper artifact: the ROADMAP degraded-mode study. " +
			"'paper' is the healthy machine (the only configuration the " +
			"paper measured); 'measured' re-runs it with one injected " +
			"fault per rung. A failed data drive prices every request on " +
			"the broken array with a parity-reconstruction pass at the " +
			"surviving drives' bandwidth; a node crash reroutes its " +
			"stripes to the ring successor; the 4x straggler stretches " +
			"one node's disk and mesh service. Honest negatives, headline " +
			"first: the node crash makes the PRISM-shaped checkpoint " +
			"FASTER than healthy. The lone sequential writer round-robins " +
			"stripes over 4 nodes, so after failover the ring successor " +
			"holds two adjacent stripes and serves them back to back — " +
			"each pair becomes a sequential continuation under the seek " +
			"model's seq-hit pricing, halving the seeks the healthy " +
			"4-way distribution pays. The win is an artifact of a " +
			"single-writer dump; a concurrent workload would miss the " +
			"lost array's parallelism (the ESCAT table above shows the " +
			"8-writer staging rung slowing ~1.6x under the same crash). " +
			"And the flapping client is digest-visible but wall-free " +
			"here: write-dominated checkpoint streams hold few read " +
			"leases worth recalling — recall storms hurt read-back " +
			"workloads, not dump-only ones.",
	}, nil
}
