package experiments

import "testing"

func TestGridMixedRadix(t *testing.T) {
	g, err := NewGrid(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 12 || g.Axes() != 3 {
		t.Fatalf("size=%d axes=%d, want 12/3", g.Size(), g.Axes())
	}
	// Last axis fastest: index 0 → (0,0,0), 1 → (0,0,1), 2 → (0,1,0)…
	want := [][]int{{0, 0, 0}, {0, 0, 1}, {0, 1, 0}, {0, 1, 1}, {1, 0, 0}}
	for i, w := range want {
		c := g.Coords(i)
		if len(c) != 3 || c[0] != w[0] || c[1] != w[1] || c[2] != w[2] {
			t.Errorf("Coords(%d) = %v, want %v", i, c, w)
		}
	}
	if c := g.Coords(11); c[0] != 2 || c[1] != 1 || c[2] != 1 {
		t.Errorf("Coords(11) = %v, want [2 1 1]", c)
	}
	// Every index decodes to a distinct coordinate tuple.
	seen := make(map[[3]int]bool)
	for i := 0; i < g.Size(); i++ {
		c := g.Coords(i)
		seen[[3]int{c[0], c[1], c[2]}] = true
	}
	if len(seen) != 12 {
		t.Errorf("decoded %d distinct tuples, want 12", len(seen))
	}
}

func TestGridRejectsBadAxes(t *testing.T) {
	if _, err := NewGrid(3, 0); err == nil {
		t.Error("zero-length axis accepted")
	}
	if _, err := NewGrid(-1); err == nil {
		t.Error("negative axis accepted")
	}
	if _, err := NewGrid(1<<16, 1<<16); err == nil {
		t.Error("overflowing product accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Coords did not panic")
		}
	}()
	g, _ := NewGrid(2, 2)
	g.Coords(4)
}
