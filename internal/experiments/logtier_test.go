package experiments

import (
	"testing"
	"time"

	"paragonio/internal/apps/escat"
	"paragonio/internal/apps/prism"
	"paragonio/internal/core"
	"paragonio/internal/faults"
	"paragonio/internal/sim"
)

// TestLogTierGoldenDigests pins the log-tier-on runs the same way the
// canonical runs are pinned: exact FNV-1a digests, bit-identical at
// shard counts 1, 4, and 16. The tier lives entirely on the sequential
// plane (appends from process context, drain timers and completions on
// lane 0), so the digests must be untouched by how the I/O nodes are
// sharded. They differ from the tiers-off goldens — the log changes
// when I/O completes — but the event counts match them: the tier
// changes timings, never what I/O the program asked for.
func TestLogTierGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size paper workloads skipped in -short mode")
	}
	old := sim.DefaultStageMin
	sim.DefaultStageMin = 2
	defer func() { sim.DefaultStageMin = old }()

	golden := []struct {
		key    string
		events int
		digest uint64
		run    func(cfg core.Config) (*core.Result, error)
	}{
		{"eth/C", 23768, 0x5ce144e3404cc137, func(cfg core.Config) (*core.Result, error) {
			return escat.RunOn(cfg, escat.Ethylene(), escat.VersionC())
		}},
		{"prism/C", 11396, 0x162463d0c4c76706, func(cfg core.Config) (*core.Result, error) {
			return prism.RunOn(cfg, prism.TestProblem(), prism.VersionC())
		}},
	}
	for _, shards := range []int{1, 4, 16} {
		cfg := core.Config{Seed: 1, Shards: shards, Tiers: logOnTiers()}
		for _, g := range golden {
			res, err := g.run(cfg)
			if err != nil {
				t.Fatalf("shards=%d %s: %v", shards, g.key, err)
			}
			if n := res.Trace.Len(); n != g.events {
				t.Errorf("shards=%d %s: %d events, golden %d", shards, g.key, n, g.events)
			}
			if d := res.Trace.Digest(); d != g.digest {
				t.Errorf("shards=%d %s: digest %#016x, golden %#016x", shards, g.key, d, g.digest)
			}
			if res.Log.Appends == 0 {
				t.Errorf("shards=%d %s: log tier on but zero appends", shards, g.key)
			}
			if res.Log.DrainedRecords != res.Log.Appends || res.Log.PendingRecords != 0 {
				t.Errorf("shards=%d %s: drain did not finish: %+v", shards, g.key, res.Log)
			}
		}
	}
}

// TestLogTierDegradedDigests pins the log tier's interaction with the
// fault plane: the drain routes through the same I/O-node data path as
// direct writes, so an injected node crash or straggler reprices the
// drain traffic deterministically. Digests are bit-identical at shard
// counts 1, 4, and 16, and distinct from both the healthy log-on
// golden and the log-off degraded goldens (faults_test.go).
func TestLogTierDegradedDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size paper workloads skipped in -short mode")
	}
	old := sim.DefaultStageMin
	sim.DefaultStageMin = 2
	defer func() { sim.DefaultStageMin = old }()

	const healthyLog = 0x162463d0c4c76706 // prism/C, log tier on
	golden := []struct {
		key    string
		digest uint64
		logOff uint64 // same fault, log tier off (faults_test.go)
		plan   faults.Plan
	}{
		{"prism/C+log+node-crash", 0xd5c79de5ed0e9965, 0xa718d8caef853911,
			faults.Plan{Faults: []faults.Fault{
				{Kind: faults.NodeCrash, At: time.Second, IONode: 0}}}},
		{"prism/C+log+straggler", 0x7d95502ab2dd827e, 0x653508a8fbecbd12,
			faults.Plan{Faults: []faults.Fault{
				{Kind: faults.Straggler, At: time.Second, IONode: 0, Factor: 4}}}},
	}
	for _, g := range golden {
		if g.digest == healthyLog {
			t.Errorf("%s: pinned digest equals the healthy log-on golden — the fault is inert", g.key)
		}
		if g.digest == g.logOff {
			t.Errorf("%s: pinned digest equals the log-off degraded golden — the tier is inert", g.key)
		}
		for _, shards := range []int{1, 4, 16} {
			cfg := core.Config{Seed: 1, Shards: shards, Tiers: logOnTiers(), Faults: g.plan}
			res, err := prism.RunOn(cfg, prism.TestProblem(), prism.VersionC())
			if err != nil {
				t.Fatalf("shards=%d %s: %v", shards, g.key, err)
			}
			if n := res.Trace.Len(); n != 11396 {
				t.Errorf("shards=%d %s: %d events, golden 11396", shards, g.key, n)
			}
			if d := res.Trace.Digest(); d != g.digest {
				t.Errorf("shards=%d %s: digest %#016x, golden %#016x", shards, g.key, d, g.digest)
			}
		}
	}
}

// TestLogTierExperimentRegistered pins the experiment-family wiring.
func TestLogTierExperimentRegistered(t *testing.T) {
	if _, ok := ByID("logtier"); !ok {
		t.Fatal("logtier experiment not registered")
	}
}

// TestLogTierBeatsWriteBehind runs the logtier study once and pins its
// headline and its honest negative: on both checkpoint-shaped burst
// ladders the log tier beats deadline-flushed write-behind outright
// (appends commit at host-memory speed before any mesh hop), while at
// application scale the log alone leaves ESCAT's quadrature read-back
// and PRISM's restart read at no-cache speed — a log absorbs writes, it
// cannot serve reads.
func TestLogTierBeatsWriteBehind(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size workloads skipped in -short mode")
	}
	art, err := logTierExp(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	if art.ID != "logtier" {
		t.Errorf("artifact ID %q", art.ID)
	}
	for _, pre := range []string{"chk", "stg"} {
		log, wb := art.Measured[pre+".wall_s"], art.Measured[pre+".wall_wb_s"]
		if log >= wb {
			t.Errorf("%s: log tier %.3f s not below write-behind %.3f s", pre, log, wb)
		}
		if off := art.Paper[pre+".wall_s"]; log >= off {
			t.Errorf("%s: log tier %.3f s not below no-cache %.3f s", pre, log, off)
		}
	}
	if art.Measured["chk.appends"] == 0 {
		t.Error("checkpoint log rung absorbed zero appends")
	}
	// The honest negatives: under the log alone, read-back runs at the
	// no-cache pace — far above what write-behind serves from resident
	// dirty blocks ('paper' holds the write-behind time here).
	for _, k := range []string{"eth.quad_read_s", "prism.rst_read_s"} {
		if art.Measured[k] <= 2*art.Paper[k] {
			t.Errorf("%s: log-alone read %.2f s not well above write-behind %.2f s — the negative went soft",
				k, art.Measured[k], art.Paper[k])
		}
	}
}

// TestLogVariantsDistinct pins the suite-cache keys of the log-tier
// variants: distinct ids, and every variant actually enables the tier.
func TestLogVariantsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, v := range logTierVariants() {
		if seen[v.id] {
			t.Errorf("duplicate log variant id %q", v.id)
		}
		seen[v.id] = true
		if v.tiers.Log == nil {
			t.Errorf("variant %q does not enable the log tier", v.id)
		}
	}
}
