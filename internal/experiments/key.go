package experiments

import (
	"fmt"
	"hash/fnv"
	"strings"

	"paragonio/internal/core"
)

// ConfigKey returns the canonical content address of one application run:
// a 64-bit FNV-1a hash (16 hex digits) over app — the run's identity
// string, e.g. "eth/C" or "escat/ethylene/C" — and every field of cfg
// that can influence the simulated outcome, serialized in a fixed order.
//
// Any semantic difference — seed, shard count, window width, cache-tier
// parameter, fault plan, machine override — changes the key. The Suite
// keys its singleflight run cache through ConfigKey (guarding against a
// Suite whose Seed/Shards/Window are mutated after runs began serving
// stale entries), and the iosimd daemon uses it as the content address
// of its persistent result cache.
//
// The key is stable within one build of this repository. It is not an
// across-versions contract: the serialization carries a version tag
// ("v3") precisely so a future field addition can revalidate spilled
// artifacts by changing it.
// KeyVersion tags the canonical serialization underneath ConfigKey.
// Persistent stores that index artifacts by ConfigKey (the iosimd spill
// directory) record this tag alongside the artifacts and revalidate it
// on boot: a mismatch means the canonicalisation changed, so every
// stored hash is unreachable and the store must be rebuilt. "v2"
// retired the deprecated Cache alias and added the faults plan to the
// serialization; "v3" added the host-side log tier (Tiers.Log).
const KeyVersion = "v3"

func ConfigKey(cfg core.Config, app string) string {
	h := fnv.New64a()
	h.Write([]byte(canonicalConfig(cfg, app)))
	return fmt.Sprintf("%016x", h.Sum64())
}

// canonicalConfig serializes (cfg, app) with stable field ordering. All
// nested override structs (mesh.Config, disk.Params, pfs.Costs,
// cache.Config, cache.ClientConfig) are flat value types — durations,
// ints, floats — so %+v renders them deterministically, field names
// included (a reordering of struct fields changes the string, never the
// mapping from semantics to string).
func canonicalConfig(cfg core.Config, app string) string {
	tiers := cfg.Tiers
	var b strings.Builder
	fmt.Fprintf(&b, "%s|app=%s|nodes=%d|ionodes=%d|stripe=%d|seed=%d|shards=%d|window=%d|sample=%d",
		KeyVersion,
		app, cfg.Nodes, cfg.IONodes, cfg.StripeUnit, cfg.Seed, cfg.Shards,
		int64(cfg.Window), int64(cfg.SampleInterval))
	if cfg.Mesh != nil {
		fmt.Fprintf(&b, "|mesh=%+v", *cfg.Mesh)
	}
	if cfg.Disk != nil {
		fmt.Fprintf(&b, "|disk=%+v", *cfg.Disk)
	}
	if cfg.Costs != nil {
		fmt.Fprintf(&b, "|costs=%+v", *cfg.Costs)
	}
	if tiers.IONode != nil {
		fmt.Fprintf(&b, "|ionode=%+v", *tiers.IONode)
	}
	if tiers.Client != nil {
		fmt.Fprintf(&b, "|client=%+v", *tiers.Client)
	}
	if tiers.Log != nil {
		fmt.Fprintf(&b, "|log=%+v", *tiers.Log)
	}
	if !cfg.Faults.Empty() {
		// faults.Plan.String is the plan's own canonical rendering
		// (fixed field order per kind), so two plans hash equal exactly
		// when they inject the same faults in the same order.
		fmt.Fprintf(&b, "|faults=%s", cfg.Faults.String())
	}
	return b.String()
}
