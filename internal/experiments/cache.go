package experiments

import (
	"fmt"
	"strings"
	"time"

	"paragonio/internal/apps/escat"
	"paragonio/internal/apps/prism"
	"paragonio/internal/cache"
	"paragonio/internal/core"
	"paragonio/internal/pablo"
	"paragonio/internal/report"
)

// The cachewhatif experiment is the repository's first forward-looking
// ("evolutionary view") study: it reruns the workloads whose tuning
// history the paper documents — PRISM's checkpoint/restart and ESCAT's
// quadrature staging (both ethylene and the 256-node carbon-monoxide
// problem), all in their final version-C form — on a machine Intel never
// shipped: the same Paragon with a buffer cache on every I/O node
// (internal/cache). Cache off reuses the canonical golden-digest runs;
// each cached variant is a fresh deterministic run.

// cacheVariant is one point of the what-if sweep.
type cacheVariant struct {
	id    string
	label string
	cfg   *cache.Config
}

// cacheVariants returns the sweep: no cache, write-behind at two cache
// sizes, and write-behind plus read-ahead at the same sizes.
func cacheVariants() []cacheVariant {
	wb := func(mb int64, ra int) *cache.Config {
		return &cache.Config{CapacityBytes: mb << 20, WriteBehind: true, ReadAhead: ra}
	}
	return []cacheVariant{
		{id: "off", label: "no cache (paper PFS)", cfg: nil},
		{id: "wb1", label: "write-behind, 1 MB/node", cfg: wb(1, 0)},
		{id: "wb32", label: "write-behind, 32 MB/node", cfg: wb(32, 0)},
		{id: "wbra1", label: "wb + read-ahead 4, 1 MB/node", cfg: wb(1, 4)},
		{id: "wbra32", label: "wb + read-ahead 4, 32 MB/node", cfg: wb(32, 4)},
	}
}

// cachedCfg is the suite configuration (seed, shards) plus one cache
// variant — cached runs honor the -shards knob like every other run.
func (s *Suite) cachedCfg(v cacheVariant) core.Config {
	cfg := s.cfg()
	cfg.Tiers.IONode = v.cfg
	return cfg
}

// PrismCached returns the PRISM version C run under a cache variant.
// The cache-off variant shares the canonical "prism/C" suite entry.
func (s *Suite) PrismCached(v cacheVariant) (*core.Result, error) {
	if v.cfg == nil {
		return s.Prism("C")
	}
	return s.run("cache/prism/"+v.id, func() (*core.Result, error) {
		return prism.RunOn(s.cachedCfg(v), prism.TestProblem(), prism.VersionC())
	})
}

// EthyleneCached returns the ESCAT ethylene version C run under a cache
// variant. The cache-off variant shares the canonical "eth/C" entry.
func (s *Suite) EthyleneCached(v cacheVariant) (*core.Result, error) {
	if v.cfg == nil {
		return s.Ethylene("C")
	}
	return s.run("cache/eth/"+v.id, func() (*core.Result, error) {
		return escat.RunOn(s.cachedCfg(v), escat.Ethylene(), escat.VersionC())
	})
}

// CarbonMonoxideCached returns the ESCAT carbon-monoxide version C run
// under a cache variant — the suite's largest working set (256 nodes, 13
// collision channels), where cache-size sensitivity and forced-flush
// stalls have room to appear. The cache-off variant shares the canonical
// "co/C" entry.
func (s *Suite) CarbonMonoxideCached(v cacheVariant) (*core.Result, error) {
	if v.cfg == nil {
		return s.CarbonMonoxide()
	}
	return s.run("cache/co/"+v.id, func() (*core.Result, error) {
		return escat.RunOn(s.cachedCfg(v), escat.CarbonMonoxide(), escat.VersionCCarbonMonoxide())
	})
}

// fileOpTime sums the duration of op events on files selected by pred.
func fileOpTime(t *pablo.Trace, op pablo.Op, pred func(file string) bool) time.Duration {
	var d time.Duration
	for _, ev := range t.Events() {
		if ev.Op == op && pred(ev.File) {
			d += ev.Duration
		}
	}
	return d
}

// cacheRow is the measured shape of one (workload, variant) cell.
type cacheRow struct {
	variant  cacheVariant
	exec     time.Duration
	io       time.Duration
	target   time.Duration // the workload's headline operation time
	aux      time.Duration // secondary operation time (PRISM restart reads)
	hitPct   float64
	maxDirty int
	stalls   uint64
	raAcc    float64
}

func secs(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }

// cacheWhatIf runs the what-if sweep and renders both workloads' shapes.
func cacheWhatIf(s *Suite) (*Artifact, error) {
	variants := cacheVariants()

	prismRows := make([]cacheRow, 0, len(variants))
	for _, v := range variants {
		res, err := s.PrismCached(v)
		if err != nil {
			return nil, err
		}
		ct := res.CacheTotals()
		prismRows = append(prismRows, cacheRow{
			variant: v,
			exec:    res.Exec,
			io:      res.IOTime(),
			target: fileOpTime(res.Trace, pablo.OpWrite, func(f string) bool {
				return f == prism.CheckpointFile
			}),
			aux: fileOpTime(res.Trace, pablo.OpRead, func(f string) bool {
				return f == prism.RestartFile
			}),
			hitPct:   100 * ct.HitRatio(),
			maxDirty: ct.MaxDirty,
			stalls:   ct.ForcedFlushStalls,
			raAcc:    100 * ct.ReadAheadAccuracy(),
		})
	}

	// The ESCAT headline op differs per problem: ethylene's tuning story
	// is the staging writes; carbon monoxide restarts from staged data,
	// so its I/O is dominated by the quadrature reload reads.
	escatRows := func(op pablo.Op, fetch func(cacheVariant) (*core.Result, error)) ([]cacheRow, error) {
		rows := make([]cacheRow, 0, len(variants))
		for _, v := range variants {
			res, err := fetch(v)
			if err != nil {
				return nil, err
			}
			ct := res.CacheTotals()
			rows = append(rows, cacheRow{
				variant: v,
				exec:    res.Exec,
				io:      res.IOTime(),
				target: fileOpTime(res.Trace, op, func(f string) bool {
					return strings.HasPrefix(f, escat.QuadFile(0)[:len("escat/quad.")])
				}),
				hitPct:   100 * ct.HitRatio(),
				maxDirty: ct.MaxDirty,
				stalls:   ct.ForcedFlushStalls,
				raAcc:    100 * ct.ReadAheadAccuracy(),
			})
		}
		return rows, nil
	}
	ethRows, err := escatRows(pablo.OpWrite, s.EthyleneCached)
	if err != nil {
		return nil, err
	}
	coRows, err := escatRows(pablo.OpRead, s.CarbonMonoxideCached)
	if err != nil {
		return nil, err
	}

	var b strings.Builder
	rows := make([][]string, 0, len(prismRows))
	for _, r := range prismRows {
		rows = append(rows, []string{
			r.variant.label, secs(r.exec), secs(r.io), secs(r.target), secs(r.aux),
			fmt.Sprintf("%.1f", r.hitPct), fmt.Sprintf("%d", r.maxDirty),
			fmt.Sprintf("%d", r.stalls), fmt.Sprintf("%.1f", r.raAcc),
		})
	}
	report.Table(&b, "PRISM C checkpoint/restart under I/O-node caching",
		[]string{"variant", "exec_s", "io_s", "chk_write_s", "rst_read_s",
			"hit_%", "max_dirty", "stalls", "ra_acc_%"}, rows)
	b.WriteString("\n")

	escatTable := func(title, targetCol string, src []cacheRow) {
		rows = rows[:0]
		for _, r := range src {
			rows = append(rows, []string{
				r.variant.label, secs(r.exec), secs(r.io), secs(r.target),
				fmt.Sprintf("%.1f", r.hitPct), fmt.Sprintf("%d", r.maxDirty),
				fmt.Sprintf("%d", r.stalls), fmt.Sprintf("%.1f", r.raAcc),
			})
		}
		report.Table(&b, title,
			[]string{"variant", "exec_s", "io_s", targetCol,
				"hit_%", "max_dirty", "stalls", "ra_acc_%"}, rows)
	}
	escatTable("ESCAT C (ethylene) staging under I/O-node caching", "quad_write_s", ethRows)
	b.WriteString("\n")
	escatTable("ESCAT C (carbon monoxide, 256 nodes) reload under I/O-node caching", "quad_read_s", coRows)

	base, best := prismRows[0], prismRows[len(prismRows)-1]
	ethBase, ethBest := ethRows[0], ethRows[len(ethRows)-1]
	coBase, coBest := coRows[0], coRows[len(coRows)-1]
	paper := map[string]float64{
		"prism.chk_write_s": base.target.Seconds(),
		"prism.io_s":        base.io.Seconds(),
		"eth.quad_write_s":  ethBase.target.Seconds(),
		"eth.io_s":          ethBase.io.Seconds(),
		"co.quad_read_s":    coBase.target.Seconds(),
		"co.io_s":           coBase.io.Seconds(),
	}
	measured := map[string]float64{
		"prism.chk_write_s": best.target.Seconds(),
		"prism.io_s":        best.io.Seconds(),
		"eth.quad_write_s":  ethBest.target.Seconds(),
		"eth.io_s":          ethBest.io.Seconds(),
		"co.quad_read_s":    coBest.target.Seconds(),
		"co.io_s":           coBest.io.Seconds(),
	}
	return &Artifact{
		ID:       "cachewhatif",
		Title:    "What-if: I/O-node buffer cache (write-behind / read-ahead)",
		Text:     b.String(),
		Paper:    paper,
		Measured: measured,
		Notes: "Not a paper artifact: a what-if study on the paper's workloads. " +
			"The 'paper' column is the cache-off baseline (the real PFS); " +
			"'measured' is write-behind + read-ahead at 32 MB/node. " +
			"Write-behind acknowledges checkpoint and staging writes at " +
			"memory-copy cost and overlaps the disk writes with compute; " +
			"the dirty-queue and stall columns show where that stops being free. " +
			"The carbon-monoxide run (256 nodes, 13 channels) is the suite's " +
			"largest working set and an honest negative result: its restart-" +
			"staged reload streams each quadrature file once, so there is no " +
			"reuse for the cache to exploit, and read-ahead at 1 MB/node " +
			"thrashes (misfetches evict blocks before use) while 32 MB/node " +
			"recovers accuracy but still loses to no cache. Cache-size " +
			"sensitivity appears exactly where the working set outgrows the " +
			"cache; forced-flush stalls do not, because the workload is " +
			"read-dominated.",
	}, nil
}
