package experiments

import (
	"fmt"
	"strings"
	"time"

	"paragonio/internal/apps/escat"
	"paragonio/internal/apps/prism"
	"paragonio/internal/cache"
	"paragonio/internal/core"
	"paragonio/internal/pablo"
	"paragonio/internal/report"
)

// The cachewhatif experiment is the repository's first forward-looking
// ("evolutionary view") study: it reruns the two workloads whose tuning
// history the paper documents — PRISM's checkpoint/restart and ESCAT's
// quadrature staging, both in their final version-C form — on a machine
// Intel never shipped: the same Paragon with a buffer cache on every I/O
// node (internal/cache). Cache off reuses the canonical golden-digest
// runs; each cached variant is a fresh deterministic run.

// cacheVariant is one point of the what-if sweep.
type cacheVariant struct {
	id    string
	label string
	cfg   *cache.Config
}

// cacheVariants returns the sweep: no cache, write-behind at two cache
// sizes, and write-behind plus read-ahead at the same sizes.
func cacheVariants() []cacheVariant {
	wb := func(mb int64, ra int) *cache.Config {
		return &cache.Config{CapacityBytes: mb << 20, WriteBehind: true, ReadAhead: ra}
	}
	return []cacheVariant{
		{id: "off", label: "no cache (paper PFS)", cfg: nil},
		{id: "wb1", label: "write-behind, 1 MB/node", cfg: wb(1, 0)},
		{id: "wb32", label: "write-behind, 32 MB/node", cfg: wb(32, 0)},
		{id: "wbra1", label: "wb + read-ahead 4, 1 MB/node", cfg: wb(1, 4)},
		{id: "wbra32", label: "wb + read-ahead 4, 32 MB/node", cfg: wb(32, 4)},
	}
}

// PrismCached returns the PRISM version C run under a cache variant.
// The cache-off variant shares the canonical "prism/C" suite entry.
func (s *Suite) PrismCached(v cacheVariant) (*core.Result, error) {
	if v.cfg == nil {
		return s.Prism("C")
	}
	return s.run("cache/prism/"+v.id, func() (*core.Result, error) {
		return prism.RunOn(core.Config{Seed: s.Seed, Cache: v.cfg}, prism.TestProblem(), prism.VersionC())
	})
}

// EthyleneCached returns the ESCAT ethylene version C run under a cache
// variant. The cache-off variant shares the canonical "eth/C" entry.
func (s *Suite) EthyleneCached(v cacheVariant) (*core.Result, error) {
	if v.cfg == nil {
		return s.Ethylene("C")
	}
	return s.run("cache/eth/"+v.id, func() (*core.Result, error) {
		return escat.RunOn(core.Config{Seed: s.Seed, Cache: v.cfg}, escat.Ethylene(), escat.VersionC())
	})
}

// fileOpTime sums the duration of op events on files selected by pred.
func fileOpTime(t *pablo.Trace, op pablo.Op, pred func(file string) bool) time.Duration {
	var d time.Duration
	for _, ev := range t.Events() {
		if ev.Op == op && pred(ev.File) {
			d += ev.Duration
		}
	}
	return d
}

// cacheRow is the measured shape of one (workload, variant) cell.
type cacheRow struct {
	variant  cacheVariant
	exec     time.Duration
	io       time.Duration
	target   time.Duration // the workload's headline operation time
	aux      time.Duration // secondary operation time (PRISM restart reads)
	hitPct   float64
	maxDirty int
	stalls   uint64
	raAcc    float64
}

func secs(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }

// cacheWhatIf runs the what-if sweep and renders both workloads' shapes.
func cacheWhatIf(s *Suite) (*Artifact, error) {
	variants := cacheVariants()

	prismRows := make([]cacheRow, 0, len(variants))
	for _, v := range variants {
		res, err := s.PrismCached(v)
		if err != nil {
			return nil, err
		}
		ct := res.CacheTotals()
		prismRows = append(prismRows, cacheRow{
			variant: v,
			exec:    res.Exec,
			io:      res.IOTime(),
			target: fileOpTime(res.Trace, pablo.OpWrite, func(f string) bool {
				return f == prism.CheckpointFile
			}),
			aux: fileOpTime(res.Trace, pablo.OpRead, func(f string) bool {
				return f == prism.RestartFile
			}),
			hitPct:   100 * ct.HitRatio(),
			maxDirty: ct.MaxDirty,
			stalls:   ct.ForcedFlushStalls,
			raAcc:    100 * ct.ReadAheadAccuracy(),
		})
	}

	ethRows := make([]cacheRow, 0, len(variants))
	for _, v := range variants {
		res, err := s.EthyleneCached(v)
		if err != nil {
			return nil, err
		}
		ct := res.CacheTotals()
		ethRows = append(ethRows, cacheRow{
			variant: v,
			exec:    res.Exec,
			io:      res.IOTime(),
			target: fileOpTime(res.Trace, pablo.OpWrite, func(f string) bool {
				return strings.HasPrefix(f, escat.QuadFile(0)[:len("escat/quad.")])
			}),
			hitPct:   100 * ct.HitRatio(),
			maxDirty: ct.MaxDirty,
			stalls:   ct.ForcedFlushStalls,
			raAcc:    100 * ct.ReadAheadAccuracy(),
		})
	}

	var b strings.Builder
	rows := make([][]string, 0, len(prismRows))
	for _, r := range prismRows {
		rows = append(rows, []string{
			r.variant.label, secs(r.exec), secs(r.io), secs(r.target), secs(r.aux),
			fmt.Sprintf("%.1f", r.hitPct), fmt.Sprintf("%d", r.maxDirty),
			fmt.Sprintf("%d", r.stalls), fmt.Sprintf("%.1f", r.raAcc),
		})
	}
	report.Table(&b, "PRISM C checkpoint/restart under I/O-node caching",
		[]string{"variant", "exec_s", "io_s", "chk_write_s", "rst_read_s",
			"hit_%", "max_dirty", "stalls", "ra_acc_%"}, rows)
	b.WriteString("\n")

	rows = rows[:0]
	for _, r := range ethRows {
		rows = append(rows, []string{
			r.variant.label, secs(r.exec), secs(r.io), secs(r.target),
			fmt.Sprintf("%.1f", r.hitPct), fmt.Sprintf("%d", r.maxDirty),
			fmt.Sprintf("%d", r.stalls), fmt.Sprintf("%.1f", r.raAcc),
		})
	}
	report.Table(&b, "ESCAT C (ethylene) staging under I/O-node caching",
		[]string{"variant", "exec_s", "io_s", "quad_write_s",
			"hit_%", "max_dirty", "stalls", "ra_acc_%"}, rows)

	base, best := prismRows[0], prismRows[len(prismRows)-1]
	ethBase, ethBest := ethRows[0], ethRows[len(ethRows)-1]
	paper := map[string]float64{
		"prism.chk_write_s": base.target.Seconds(),
		"prism.io_s":        base.io.Seconds(),
		"eth.quad_write_s":  ethBase.target.Seconds(),
		"eth.io_s":          ethBase.io.Seconds(),
	}
	measured := map[string]float64{
		"prism.chk_write_s": best.target.Seconds(),
		"prism.io_s":        best.io.Seconds(),
		"eth.quad_write_s":  ethBest.target.Seconds(),
		"eth.io_s":          ethBest.io.Seconds(),
	}
	return &Artifact{
		ID:       "cachewhatif",
		Title:    "What-if: I/O-node buffer cache (write-behind / read-ahead)",
		Text:     b.String(),
		Paper:    paper,
		Measured: measured,
		Notes: "Not a paper artifact: a what-if study on the paper's workloads. " +
			"The 'paper' column is the cache-off baseline (the real PFS); " +
			"'measured' is write-behind + read-ahead at 32 MB/node. " +
			"Write-behind acknowledges checkpoint and staging writes at " +
			"memory-copy cost and overlaps the disk writes with compute; " +
			"the dirty-queue and stall columns show where that stops being free.",
	}, nil
}
