package experiments

import (
	"regexp"
	"testing"
	"time"

	"paragonio/internal/cache"
	"paragonio/internal/core"
	"paragonio/internal/disk"
	"paragonio/internal/faults"
	"paragonio/internal/mesh"
)

// TestConfigKeySemanticEquality pins that configurations meaning the
// same run hash equal: literally identical configs, and equal-valued
// configs behind distinct pointers.
func TestConfigKeySemanticEquality(t *testing.T) {
	base := core.Config{Seed: 1, Shards: 4, Window: 7 * time.Microsecond}
	if ConfigKey(base, "eth/C") != ConfigKey(base, "eth/C") {
		t.Fatal("identical configs hash differently")
	}
	// Distinct pointers to equal-valued configs are the same run.
	a, b := base, base
	a.Tiers.IONode = &cache.Config{WriteBehind: true, ReadAhead: 4, CapacityBytes: 32 << 20}
	b.Tiers.IONode = &cache.Config{WriteBehind: true, ReadAhead: 4, CapacityBytes: 32 << 20}
	if ConfigKey(a, "eth/C") != ConfigKey(b, "eth/C") {
		t.Error("equal-valued cache configs behind distinct pointers hash differently")
	}
	// An empty fault plan is the healthy machine: no serialization tail.
	c := base
	c.Faults = faults.Plan{Faults: []faults.Fault{}}
	if ConfigKey(base, "eth/C") != ConfigKey(c, "eth/C") {
		t.Error("empty (non-nil) fault plan hashes differently from the healthy machine")
	}
}

// TestConfigKeyFieldSensitivity mutates every run-relevant field — and
// the app identity — one at a time, and requires each mutation to change
// the hash and all hashes to be pairwise distinct.
func TestConfigKeyFieldSensitivity(t *testing.T) {
	base := core.Config{Seed: 1}
	mutations := []struct {
		name string
		cfg  core.Config
		app  string
	}{
		{"seed", core.Config{Seed: 2}, "eth/C"},
		{"nodes", core.Config{Seed: 1, Nodes: 128}, "eth/C"},
		{"shards", core.Config{Seed: 1, Shards: 8}, "eth/C"},
		{"window", core.Config{Seed: 1, Window: 7 * time.Microsecond}, "eth/C"},
		{"ionodes", core.Config{Seed: 1, IONodes: 32}, "eth/C"},
		{"stripe", core.Config{Seed: 1, StripeUnit: 128 << 10}, "eth/C"},
		{"sample", core.Config{Seed: 1, SampleInterval: time.Second}, "eth/C"},
		{"mesh", core.Config{Seed: 1, Mesh: func() *mesh.Config { c := mesh.DefaultConfig(); c.Rows = 32; return &c }()}, "eth/C"},
		{"disk", core.Config{Seed: 1, Disk: func() *disk.Params { d := disk.DefaultParams(); d.DataDisks = 8; return &d }()}, "eth/C"},
		{"ionode-tier", core.Config{Seed: 1, Tiers: cache.Tiers{IONode: &cache.Config{WriteBehind: true}}}, "eth/C"},
		{"ionode-ra", core.Config{Seed: 1, Tiers: cache.Tiers{IONode: &cache.Config{WriteBehind: true, ReadAhead: 4}}}, "eth/C"},
		{"ionode-cap", core.Config{Seed: 1, Tiers: cache.Tiers{IONode: &cache.Config{WriteBehind: true, CapacityBytes: 1 << 20}}}, "eth/C"},
		{"ionode-deadline", core.Config{Seed: 1, Tiers: cache.Tiers{IONode: &cache.Config{WriteBehind: true, FlushDeadline: 100 * time.Millisecond}}}, "eth/C"},
		{"client-tier", core.Config{Seed: 1, Tiers: cache.Tiers{Client: &cache.ClientConfig{}}}, "eth/C"},
		{"client-cap", core.Config{Seed: 1, Tiers: cache.Tiers{Client: &cache.ClientConfig{CapacityBytes: 8 << 20}}}, "eth/C"},
		{"client-ttl", core.Config{Seed: 1, Tiers: cache.Tiers{Client: &cache.ClientConfig{LeaseTTL: 10 * time.Minute}}}, "eth/C"},
		{"log-tier", core.Config{Seed: 1, Tiers: cache.Tiers{Log: &cache.LogConfig{}}}, "eth/C"},
		{"log-seg", core.Config{Seed: 1, Tiers: cache.Tiers{Log: &cache.LogConfig{SegmentBytes: 256 << 10}}}, "eth/C"},
		{"log-cap", core.Config{Seed: 1, Tiers: cache.Tiers{Log: &cache.LogConfig{CapacityBytes: 32 << 20}}}, "eth/C"},
		{"log-drain", core.Config{Seed: 1, Tiers: cache.Tiers{Log: &cache.LogConfig{DrainDeadline: 10 * time.Millisecond}}}, "eth/C"},
		{"fault-disk", core.Config{Seed: 1, Faults: faults.Plan{Faults: []faults.Fault{
			{Kind: faults.DiskFail, At: time.Second, IONode: 0}}}}, "eth/C"},
		{"fault-disk-io1", core.Config{Seed: 1, Faults: faults.Plan{Faults: []faults.Fault{
			{Kind: faults.DiskFail, At: time.Second, IONode: 1}}}}, "eth/C"},
		{"fault-disk-later", core.Config{Seed: 1, Faults: faults.Plan{Faults: []faults.Fault{
			{Kind: faults.DiskFail, At: 2 * time.Second, IONode: 0}}}}, "eth/C"},
		{"fault-disk-repair", core.Config{Seed: 1, Faults: faults.Plan{Faults: []faults.Fault{
			{Kind: faults.DiskFail, At: time.Second, Until: 3 * time.Second, IONode: 0}}}}, "eth/C"},
		{"fault-crash", core.Config{Seed: 1, Faults: faults.Plan{Faults: []faults.Fault{
			{Kind: faults.NodeCrash, At: time.Second, IONode: 0}}}}, "eth/C"},
		{"fault-straggler", core.Config{Seed: 1, Faults: faults.Plan{Faults: []faults.Fault{
			{Kind: faults.Straggler, At: time.Second, IONode: 0, Factor: 4}}}}, "eth/C"},
		{"fault-straggler-x8", core.Config{Seed: 1, Faults: faults.Plan{Faults: []faults.Fault{
			{Kind: faults.Straggler, At: time.Second, IONode: 0, Factor: 8}}}}, "eth/C"},
		{"fault-flap", core.Config{Seed: 1, Faults: faults.Plan{Faults: []faults.Fault{
			{Kind: faults.ClientFlap, At: time.Second, Node: 1, Count: 3, Period: time.Second}}}}, "eth/C"},
		{"app", base, "prism/C"},
	}
	hexKey := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]string{ConfigKey(base, "eth/C"): "base"}
	for _, m := range mutations {
		k := ConfigKey(m.cfg, m.app)
		if !hexKey.MatchString(k) {
			t.Fatalf("%s: key %q is not 16 hex digits", m.name, k)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q hashes identically to %q (key %s)", m.name, prev, k)
		}
		seen[k] = m.name
	}
}

// TestSuiteKeyGuardsMutation pins the singleflight guard: mutating a
// Suite's configuration after a run is cached must not serve the stale
// result for the new configuration.
func TestSuiteKeyGuardsMutation(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size paper workloads skipped in -short mode")
	}
	s := NewSuite(1)
	first, err := s.Prism("C")
	if err != nil {
		t.Fatal(err)
	}
	s.Seed = 2 // the latent bug: before ConfigKey keying, this served the seed-1 run
	second, err := s.Prism("C")
	if err != nil {
		t.Fatal(err)
	}
	if first == second {
		t.Fatal("mutated Suite served the cached result of the old configuration")
	}
	if first.Trace.Digest() == second.Trace.Digest() {
		t.Error("seed change produced an identical trace — mutation not reflected in the run")
	}
}
