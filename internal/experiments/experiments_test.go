package experiments

import (
	"strings"
	"testing"

	"paragonio/internal/pablo"
)

// The experiments tests run the full-size paper workloads (128-node
// ESCAT, 64-node PRISM, 256-node carbon monoxide), which takes a few
// seconds of wall time in total; they are skipped under -short.

// sharedSuite caches full-size runs across tests in this package.
var sharedSuite = NewSuite(1)

func runExp(t *testing.T, id string) *Artifact {
	t.Helper()
	if testing.Short() {
		t.Skip("full-size paper workloads skipped in -short mode")
	}
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	art, err := e.Run(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	if art.ID != id {
		t.Fatalf("artifact id %q", art.ID)
	}
	if art.Text == "" {
		t.Fatal("empty artifact text")
	}
	return art
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 20 {
		t.Fatalf("experiments = %d, want 20 (5 tables + 9 figures + cachewhatif + clientcache + advisor + flushpolicy + faults + logtier)", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %s", e.ID)
		}
	}
	for _, id := range []string{"table1", "table5", "figure1", "figure9"} {
		if !seen[id] {
			t.Fatalf("missing %s", id)
		}
	}
	if _, ok := ByID("table99"); ok {
		t.Fatal("ByID accepted junk")
	}
}

func TestTable1ModesMatch(t *testing.T) {
	art := runExp(t, "table1")
	for _, k := range art.MetricKeys() {
		if art.Measured[k] != 1 {
			t.Errorf("mode cell %s does not match the paper", k)
		}
	}
}

func TestTable4ModesMatch(t *testing.T) {
	art := runExp(t, "table4")
	for _, k := range art.MetricKeys() {
		if art.Measured[k] != 1 {
			t.Errorf("mode cell %s does not match the paper", k)
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	art := runExp(t, "table2")
	m := art.Measured
	// A dominated by open+read (paper: 53.68 + 42.64 = 96.3).
	if m["A.open"]+m["A.read"] < 85 {
		t.Errorf("A open+read = %.1f, want > 85", m["A.open"]+m["A.read"])
	}
	if m["A.open"] < 40 || m["A.read"] < 25 {
		t.Errorf("A shares: open %.1f read %.1f", m["A.open"], m["A.read"])
	}
	// B dominated by seek, then write (paper: 63.2 / 28.8).
	if m["B.seek"] < 40 {
		t.Errorf("B seek = %.1f, want > 40", m["B.seek"])
	}
	if m["B.seek"]+m["B.write"] < 85 {
		t.Errorf("B seek+write = %.1f", m["B.seek"]+m["B.write"])
	}
	if m["B.read"] > 2 {
		t.Errorf("B read = %.1f, want collapsed", m["B.read"])
	}
	// C dominated by write; seeks gone; gopen+iomode visible.
	if m["C.write"] < 40 {
		t.Errorf("C write = %.1f, want > 40", m["C.write"])
	}
	if m["C.seek"] > 2 {
		t.Errorf("C seek = %.1f, want ~0", m["C.seek"])
	}
	if m["C.gopen"]+m["C.iomode"] < 20 {
		t.Errorf("C gopen+iomode = %.1f, want > 20", m["C.gopen"]+m["C.iomode"])
	}
}

func TestTable3Shapes(t *testing.T) {
	art := runExp(t, "table3")
	m := art.Measured
	// Ethylene: all I/O shares small; B > A > C.
	if !(m["eth.B.allio"] > m["eth.A.allio"] && m["eth.A.allio"] > m["eth.C.allio"]) {
		t.Errorf("allio ordering: A=%.2f B=%.2f C=%.2f",
			m["eth.A.allio"], m["eth.B.allio"], m["eth.C.allio"])
	}
	if m["eth.C.allio"] > 1.5 {
		t.Errorf("eth C allio = %.2f, want < 1.5", m["eth.C.allio"])
	}
	// Carbon monoxide: I/O ~20% of execution even optimized.
	if m["co.C.allio"] < 12 || m["co.C.allio"] > 28 {
		t.Errorf("co allio = %.2f, want ~19.4", m["co.C.allio"])
	}
	if m["co.C.write"] > 0.5 {
		t.Errorf("co write = %.2f, want ~0 (staged restart)", m["co.C.write"])
	}
}

func TestTable5Shapes(t *testing.T) {
	art := runExp(t, "table5")
	m := art.Measured
	if m["A.open"] < 60 {
		t.Errorf("A open = %.1f, want > 60", m["A.open"])
	}
	if m["B.open"] < 50 {
		t.Errorf("B open = %.1f, want > 50", m["B.open"])
	}
	if m["B.read"] > m["A.read"] {
		t.Errorf("B read (%.1f) should collapse below A's (%.1f)", m["B.read"], m["A.read"])
	}
	if m["C.read"] < 70 {
		t.Errorf("C read = %.1f, want > 70 (unbuffered header)", m["C.read"])
	}
	if m["C.open"]+m["C.gopen"] > 10 {
		t.Errorf("C open+gopen = %.1f, want collapsed", m["C.open"]+m["C.gopen"])
	}
}

func TestFigure1Progression(t *testing.T) {
	art := runExp(t, "figure1")
	m := art.Measured
	order := []string{"exec.A", "exec.A2", "exec.B1", "exec.B2", "exec.B3", "exec.C"}
	for i := 1; i < len(order); i++ {
		if m[order[i]] >= m[order[i-1]] {
			t.Errorf("progression not monotone at %s: %.0f >= %.0f",
				order[i], m[order[i]], m[order[i-1]])
		}
	}
	if m["reduction.pct"] < 15 || m["reduction.pct"] > 25 {
		t.Errorf("reduction = %.1f%%, want ~20%%", m["reduction.pct"])
	}
	// Within 5% of the figure readings.
	for _, k := range order {
		rel := (m[k] - art.Paper[k]) / art.Paper[k]
		if rel < -0.05 || rel > 0.05 {
			t.Errorf("%s = %.0f, paper ~%.0f (%.1f%% off)", k, m[k], art.Paper[k], 100*rel)
		}
	}
}

func TestFigure2CDFs(t *testing.T) {
	art := runExp(t, "figure2")
	m := art.Measured
	if m["A.reads.small.frac"] < 0.95 {
		t.Errorf("A small-read fraction = %.2f, want ~0.97", m["A.reads.small.frac"])
	}
	if m["A.readdata.small.frac"] < 0.25 || m["A.readdata.small.frac"] > 0.55 {
		t.Errorf("A small-read data fraction = %.2f, want ~0.40", m["A.readdata.small.frac"])
	}
	for _, id := range []string{"B", "C"} {
		if m[id+".reads.small.frac"] > 0.75 {
			t.Errorf("%s small-read fraction = %.2f, want ~0.5", id, m[id+".reads.small.frac"])
		}
		if m[id+".readdata.large128K.frac"] < 0.9 {
			t.Errorf("%s 128K data fraction = %.2f, want ~0.98", id, m[id+".readdata.large128K.frac"])
		}
	}
	for _, id := range []string{"A", "B", "C"} {
		if m[id+".writes.small.frac"] < 0.99 {
			t.Errorf("%s writes above 3KB present", id)
		}
	}
}

func TestFigure5SeekContrast(t *testing.T) {
	art := runExp(t, "figure5")
	m := art.Measured
	if m["B.seek.max_s"] < 1 {
		t.Errorf("B max seek = %.2fs, want multi-second contention", m["B.seek.max_s"])
	}
	if m["C.seek.max_s"] > 0.5 {
		t.Errorf("C max seek = %.2fs, want sub-half-second", m["C.seek.max_s"])
	}
	if m["seekmax.ratio.BoverC"] < 10 {
		t.Errorf("seek ratio B/C = %.1f, want orders of magnitude", m["seekmax.ratio.BoverC"])
	}
}

func TestFigure6Progression(t *testing.T) {
	art := runExp(t, "figure6")
	m := art.Measured
	if !(m["exec.A"] > m["exec.B"] && m["exec.B"] > m["exec.C"]) {
		t.Errorf("PRISM exec not monotone: %.0f %.0f %.0f", m["exec.A"], m["exec.B"], m["exec.C"])
	}
	if m["reduction.pct"] < 15 || m["reduction.pct"] > 30 {
		t.Errorf("reduction = %.1f%%, want ~23%%", m["reduction.pct"])
	}
}

func TestFigure9Checkpoints(t *testing.T) {
	art := runExp(t, "figure9")
	if got := art.Measured["checkpoints.visible"]; got != 5 {
		t.Errorf("visible checkpoints = %.0f, want 5", got)
	}
}

func TestArtifactsRenderPlots(t *testing.T) {
	for _, id := range []string{"figure2", "figure9"} {
		art := runExp(t, id)
		if !strings.Contains(art.Text, "|") || !strings.Contains(art.Text, "+--") {
			t.Errorf("%s text does not contain a rendered plot", id)
		}
	}
}

func TestSuiteCachesRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size workloads")
	}
	r1, err := sharedSuite.Ethylene("C")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sharedSuite.Ethylene("C")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("suite re-ran a cached version")
	}
}

func TestSuiteRejectsUnknownVersions(t *testing.T) {
	s := NewSuite(1)
	if _, err := s.Ethylene("Z"); err == nil {
		t.Fatal("unknown ESCAT version accepted")
	}
	if _, err := s.Prism("Q"); err == nil {
		t.Fatal("unknown PRISM version accepted")
	}
}

// TestCrossArtifactConsistency ties artifacts that share runs: the
// execution times figure 1 reports must equal the runs behind tables
// 2-3, and table 2's shares must be consistent with the raw trace.
func TestCrossArtifactConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size paper workloads")
	}
	fig1 := mustArt(t, "figure1")
	// Figure 1's progression ids map onto the paper versions: A and C
	// directly; the B-family's final build (B3) is the same workload as
	// the analyzed version B.
	for figKey, runID := range map[string]string{"exec.A": "A", "exec.B3": "B", "exec.C": "C"} {
		res, err := sharedSuite.Ethylene(runID)
		if err != nil {
			t.Fatal(err)
		}
		if got := fig1.Measured[figKey]; got != res.Exec.Seconds() {
			t.Errorf("figure1 %s = %.2f, run says %.2f", figKey, got, res.Exec.Seconds())
		}
	}
	// Table 2 shares recomputed from the raw trace must match.
	table2 := mustArt(t, "table2")
	resC, err := sharedSuite.Ethylene("C")
	if err != nil {
		t.Fatal(err)
	}
	agg := pablo.AggregateByOp(resC.Trace)
	pct := agg.Percent()
	if got, want := table2.Measured["C.write"], pct[pablo.OpWrite]; abs(got-want) > 0.01 {
		t.Errorf("table2 C.write %.3f != trace %.3f", got, want)
	}
	// Table 3's All-I/O percentage must equal Result.IOPercent.
	table3 := mustArt(t, "table3")
	if got, want := table3.Measured["eth.C.allio"], resC.IOPercent(); abs(got-want) > 0.01 {
		t.Errorf("table3 allio %.3f != IOPercent %.3f", got, want)
	}
}

func mustArt(t *testing.T, id string) *Artifact {
	t.Helper()
	e, _ := ByID(id)
	art, err := e.Run(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	return art
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
