package experiments

import (
	"fmt"
	"strings"
	"time"

	"paragonio/internal/apps/escat"
	"paragonio/internal/apps/prism"
	"paragonio/internal/cache"
	"paragonio/internal/core"
	"paragonio/internal/pablo"
	"paragonio/internal/policy"
	"paragonio/internal/report"
)

// The advisor experiment closes the loop the paper's conclusion asks
// for: instead of hand-tuning (PRISM's programmers spent months on
// their buffering), the file system derives the cache configuration
// from the observed access pattern. For each workload the loop is
// advise -> configure -> re-run -> measure: classify a trace
// (policy.Classify), merge the cache findings into one cache.Tiers
// (policy.AdviseTiers), re-run the workload under the advised tiers,
// and score the advised run against both the no-cache baseline and the
// oracle-best configuration of the existing cachewhatif/clientcache
// sweeps. Where the advisor has a version-A trace (ESCAT ethylene,
// PRISM), it advises from the UNTUNED version-A run — the advice must
// not depend on the eighteen months of tuning it replaces — and is
// validated on the version-C workload the sweeps measure.

// advisorLoop is one workload's closed loop.
type advisorLoop struct {
	id         string
	title      string
	adviseFrom func(*Suite) (*core.Result, error) // trace the advisor reads
	baseline   func(*Suite) (*core.Result, error) // canonical cache-off run
	rerun      func(*Suite, cache.Tiers) (*core.Result, error)
	headline   string // the headline operation's column name
	opTime     func(*core.Result) time.Duration
	oracle     func(*Suite) ([]oracleRow, error) // existing-sweep candidate pool
}

// oracleRow is one candidate configuration from the existing sweeps.
type oracleRow struct {
	label string
	t     time.Duration
}

func quadTime(res *core.Result, op pablo.Op) time.Duration {
	return fileOpTime(res.Trace, op, func(f string) bool {
		return strings.HasPrefix(f, escat.QuadFile(0)[:len("escat/quad.")])
	})
}

func restartReadTime(res *core.Result) time.Duration {
	return fileOpTime(res.Trace, pablo.OpRead, func(f string) bool {
		return f == prism.RestartFile
	})
}

// advisedRun reruns a workload under the advised tiers through the
// suite cache, so iotables/iobench invocations share the work.
func (s *Suite) advisedRun(key string, tiers cache.Tiers, run func(core.Config) (*core.Result, error)) (*core.Result, error) {
	return s.run("advisor/"+key, func() (*core.Result, error) {
		cfg := s.cfg()
		cfg.Tiers = tiers
		return run(cfg)
	})
}

func advisorLoops() []advisorLoop {
	cachePool := func(s *Suite, fetch func(cacheVariant) (*core.Result, error),
		opTime func(*core.Result) time.Duration) ([]oracleRow, error) {
		var rows []oracleRow
		for _, v := range cacheVariants() {
			if v.cfg == nil {
				continue // the baseline is scored separately
			}
			res, err := fetch(v)
			if err != nil {
				return nil, err
			}
			rows = append(rows, oracleRow{label: "cachewhatif/" + v.id, t: opTime(res)})
		}
		return rows, nil
	}
	clientPool := func(s *Suite, fetch func(clientVariant) (*core.Result, error),
		opTime func(*core.Result) time.Duration) ([]oracleRow, error) {
		var rows []oracleRow
		for _, v := range clientVariants() {
			if !v.tiers.Enabled() {
				continue
			}
			res, err := fetch(v)
			if err != nil {
				return nil, err
			}
			rows = append(rows, oracleRow{label: "clientcache/" + v.id, t: opTime(res)})
		}
		return rows, nil
	}
	// logPool adds the log-tier rungs of the logtier study to the search
	// space. The read-dominated carbon-monoxide loop keeps its pool
	// unchanged: the log tier never serves reads, so its rungs cannot be
	// oracle-best there, and the 256-node reruns are the suite's most
	// expensive.
	logPool := func(s *Suite, fetch func(logVariant) (*core.Result, error),
		opTime func(*core.Result) time.Duration) ([]oracleRow, error) {
		var rows []oracleRow
		for _, v := range logTierVariants() {
			res, err := fetch(v)
			if err != nil {
				return nil, err
			}
			rows = append(rows, oracleRow{label: "logtier/" + v.id, t: opTime(res)})
		}
		return rows, nil
	}
	return []advisorLoop{
		{
			id:         "eth",
			title:      "ESCAT C (ethylene) staging",
			adviseFrom: func(s *Suite) (*core.Result, error) { return s.Ethylene("A") },
			baseline:   func(s *Suite) (*core.Result, error) { return s.Ethylene("C") },
			rerun: func(s *Suite, t cache.Tiers) (*core.Result, error) {
				return s.advisedRun("eth", t, func(cfg core.Config) (*core.Result, error) {
					return escat.RunOn(cfg, escat.Ethylene(), escat.VersionC())
				})
			},
			headline: "quad_write_s",
			opTime:   func(res *core.Result) time.Duration { return quadTime(res, pablo.OpWrite) },
			oracle: func(s *Suite) ([]oracleRow, error) {
				rows, err := cachePool(s, s.EthyleneCached,
					func(res *core.Result) time.Duration { return quadTime(res, pablo.OpWrite) })
				if err != nil {
					return nil, err
				}
				more, err := logPool(s, s.EthyleneLog,
					func(res *core.Result) time.Duration { return quadTime(res, pablo.OpWrite) })
				if err != nil {
					return nil, err
				}
				return append(rows, more...), nil
			},
		},
		{
			id:         "prism",
			title:      "PRISM C restart",
			adviseFrom: func(s *Suite) (*core.Result, error) { return s.Prism("A") },
			baseline:   func(s *Suite) (*core.Result, error) { return s.Prism("C") },
			rerun: func(s *Suite, t cache.Tiers) (*core.Result, error) {
				return s.advisedRun("prism", t, func(cfg core.Config) (*core.Result, error) {
					return prism.RunOn(cfg, prism.TestProblem(), prism.VersionC())
				})
			},
			headline: "rst_read_s",
			opTime:   restartReadTime,
			oracle: func(s *Suite) ([]oracleRow, error) {
				rows, err := cachePool(s, s.PrismCached, restartReadTime)
				if err != nil {
					return nil, err
				}
				more, err := clientPool(s, s.PrismClient, restartReadTime)
				if err != nil {
					return nil, err
				}
				rows = append(rows, more...)
				more, err = logPool(s, s.PrismLog, restartReadTime)
				if err != nil {
					return nil, err
				}
				return append(rows, more...), nil
			},
		},
		{
			id:         "co",
			title:      "ESCAT C (carbon monoxide) reload",
			adviseFrom: func(s *Suite) (*core.Result, error) { return s.CarbonMonoxide() },
			baseline:   func(s *Suite) (*core.Result, error) { return s.CarbonMonoxide() },
			rerun: func(s *Suite, t cache.Tiers) (*core.Result, error) {
				return s.advisedRun("co", t, func(cfg core.Config) (*core.Result, error) {
					return escat.RunOn(cfg, escat.CarbonMonoxide(), escat.VersionCCarbonMonoxide())
				})
			},
			headline: "quad_read_s",
			opTime:   func(res *core.Result) time.Duration { return quadTime(res, pablo.OpRead) },
			oracle: func(s *Suite) ([]oracleRow, error) {
				rows, err := cachePool(s, s.CarbonMonoxideCached,
					func(res *core.Result) time.Duration { return quadTime(res, pablo.OpRead) })
				if err != nil {
					return nil, err
				}
				more, err := clientPool(s, s.CarbonMonoxideClient,
					func(res *core.Result) time.Duration { return quadTime(res, pablo.OpRead) })
				if err != nil {
					return nil, err
				}
				return append(rows, more...), nil
			},
		},
	}
}

// advisorExp runs every closed loop and renders the comparison.
func advisorExp(s *Suite) (*Artifact, error) {
	var b strings.Builder
	paper := map[string]float64{}
	measured := map[string]float64{}

	for i, loop := range advisorLoops() {
		src, err := loop.adviseFrom(s)
		if err != nil {
			return nil, err
		}
		plan := policy.AdviseTiers(policy.Classify(src.Trace), policy.CacheOptions{})

		base, err := loop.baseline(s)
		if err != nil {
			return nil, err
		}
		advised, err := loop.rerun(s, plan.Tiers)
		if err != nil {
			return nil, err
		}
		pool, err := loop.oracle(s)
		if err != nil {
			return nil, err
		}
		best := pool[0]
		for _, row := range pool[1:] {
			if row.t < best.t {
				best = row
			}
		}

		baseT, advT := loop.opTime(base), loop.opTime(advised)
		advSpeed := baseT.Seconds() / advT.Seconds()
		oracleSpeed := baseT.Seconds() / best.t.Seconds()
		pct := 100 * advSpeed / oracleSpeed

		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "%s — advised tiers: %v\n", loop.title, plan.Tiers)
		for _, n := range plan.Notes {
			fmt.Fprintf(&b, "  note: %s\n", n)
		}
		report.Table(&b, "",
			[]string{"config", loop.headline, "speedup", "% of oracle"},
			[][]string{
				{"baseline (no cache)", secs(baseT), "1.00", "-"},
				{"advised", secs(advT), fmt.Sprintf("%.2f", advSpeed), fmt.Sprintf("%.1f", pct)},
				{"oracle-best (" + best.label + ")", secs(best.t), fmt.Sprintf("%.2f", oracleSpeed), "100.0"},
			})

		paper[loop.id+"."+loop.headline] = baseT.Seconds()
		measured[loop.id+"."+loop.headline] = advT.Seconds()
		measured[loop.id+".oracle_"+loop.headline] = best.t.Seconds()
		// 'paper' 100 is the oracle bar, so the summary view shows how
		// much of the oracle-best speedup the advice captured.
		paper[loop.id+".pct_of_oracle"] = 100
		measured[loop.id+".pct_of_oracle"] = pct
	}

	return &Artifact{
		ID:       "advisor",
		Title:    "Closed loop: advised cache tiers vs oracle-best sweeps",
		Text:     b.String(),
		Paper:    paper,
		Measured: measured,
		Notes: "Not a paper artifact: the self-tuning step the paper's " +
			"conclusion calls for. The 'paper' column is each workload's " +
			"no-cache headline operation time; 'measured' is the same " +
			"operation under the tiers the advisor derived from the trace " +
			"(for ESCAT ethylene and PRISM, from the UNTUNED version-A " +
			"trace). The oracle is the best configuration any existing " +
			"cachewhatif/clientcache/logtier sweep found for that workload — the " +
			"advisor does not get to peek at it. The negative findings are " +
			"load-bearing: recommending read-ahead alongside write-behind " +
			"would cost PRISM's restart a third of its win (wbra vs wb in " +
			"the sweeps), and recommending the I/O-node tier for carbon " +
			"monoxide would lose outright — the advisor instead turns the " +
			"server tier off and configures a client tier with a lease TTL " +
			"sized to the observed reuse span.",
	}, nil
}
