package experiments

import (
	"fmt"
	"strings"
	"time"

	"paragonio/internal/analysis"
	"paragonio/internal/apps/escat"
	"paragonio/internal/apps/prism"
	"paragonio/internal/core"
	"paragonio/internal/pablo"
	"paragonio/internal/report"
)

// paperTable2 holds the paper's Table 2 values: ESCAT % of total I/O
// time by operation, per version. Missing rows ("-") are absent keys.
var paperTable2 = map[string]float64{
	"A.open": 53.68, "A.read": 42.64, "A.seek": 1.01, "A.write": 1.27, "A.close": 1.39,
	"B.gopen": 4.05, "B.read": 0.24, "B.seek": 63.21, "B.write": 28.75, "B.iomode": 2.94, "B.close": 0.81,
	"C.open": 0.03, "C.gopen": 21.65, "C.read": 1.53, "C.seek": 1.75, "C.write": 55.63, "C.iomode": 16.06, "C.close": 3.34,
}

// paperTable3 holds Table 3: ESCAT % of total execution time by I/O
// operation type (ethylene A/B/C, carbon monoxide C), and the All-I/O row.
var paperTable3 = map[string]float64{
	"eth.A.allio": 2.97, "eth.B.allio": 4.60, "eth.C.allio": 0.73,
	"eth.A.open": 1.60, "eth.A.read": 1.27,
	"eth.B.seek": 2.91, "eth.B.write": 1.32,
	"eth.C.write": 0.41, "eth.C.gopen": 0.16,
	"co.C.allio": 19.40, "co.C.gopen": 7.45, "co.C.read": 9.50, "co.C.close": 2.41, "co.C.write": 0.03,
}

// paperTable5 holds Table 5: PRISM % of total I/O time by operation.
var paperTable5 = map[string]float64{
	"A.open": 75.43, "A.read": 16.24, "A.seek": 3.87, "A.write": 1.83, "A.close": 2.63,
	"B.open": 57.36, "B.read": 9.47, "B.seek": 1.22, "B.write": 9.91, "B.iomode": 17.75, "B.close": 4.50,
	"C.open": 3.36, "C.gopen": 3.42, "C.read": 83.92, "C.seek": 0.40, "C.write": 6.51, "C.flush": 0.06, "C.close": 2.32,
}

// comparisonTable renders paper-vs-measured rows for the shared keys.
func comparisonTable(title string, paper, measured map[string]float64) string {
	var b strings.Builder
	rows := make([][]string, 0, len(paper))
	keys := make([]string, 0, len(paper))
	for k := range paper {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		rows = append(rows, []string{
			k,
			fmt.Sprintf("%.2f", paper[k]),
			fmt.Sprintf("%.2f", measured[k]),
		})
	}
	report.Table(&b, title, []string{"metric", "paper", "measured"}, rows)
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// sharesFor extracts per-op percentages keyed "<prefix>.<op>".
func sharesFor(prefix string, shares []analysis.OpShare, into map[string]float64) {
	for _, sh := range shares {
		if sh.Count > 0 || sh.Percent > 0 {
			into[prefix+"."+sh.Op.String()] = sh.Percent
		}
	}
}

// table1 renders the ESCAT mode table; it is a configuration artifact,
// checked structurally (modes per phase/version) rather than numerically.
func table1(s *Suite) (*Artifact, error) {
	var b strings.Builder
	versions := escat.PaperVersions()
	headers := []string{"Phase"}
	for _, v := range versions {
		headers = append(headers, fmt.Sprintf("%s (%s) activity", v.ID, v.OS), "mode")
	}
	tables := make([][]escat.ModeTableRow, len(versions))
	for i, v := range versions {
		tables[i] = v.ModeTable()
	}
	var rows [][]string
	for r := range tables[0] {
		row := []string{tables[0][r].Phase}
		for i := range versions {
			row = append(row, tables[i][r].Activity, tables[i][r].Mode)
		}
		rows = append(rows, row)
	}
	report.Table(&b, "Table 1: node activity and file access modes (ESCAT)", headers, rows)

	// Structural check encoded numerically: 1 if the mode matches the
	// paper's cell.
	want := map[string]string{
		"A.p1": "All Nodes/M_UNIX", "A.p2": "Node zero/M_UNIX", "A.p3": "Node zero/M_UNIX", "A.p4": "Node zero/M_UNIX",
		"B.p1": "Node zero/M_UNIX", "B.p2": "All Nodes/M_UNIX", "B.p3": "All Nodes/M_RECORD", "B.p4": "Node zero/M_UNIX",
		"C.p1": "Node zero/M_UNIX", "C.p2": "All Nodes/M_ASYNC", "C.p3": "All Nodes/M_RECORD", "C.p4": "Node zero/M_UNIX",
	}
	paper := map[string]float64{}
	meas := map[string]float64{}
	for i, v := range versions {
		for r, row := range tables[i] {
			key := fmt.Sprintf("%s.p%d", v.ID, r+1)
			paper[key] = 1
			if want[key] == row.Activity+"/"+row.Mode {
				meas[key] = 1
			}
		}
	}
	return &Artifact{
		ID: "table1", Title: "Table 1 (ESCAT modes)",
		Text:  b.String(),
		Paper: paper, Measured: meas,
		Notes: "structural: 1 = phase's activity/mode matches the paper cell",
	}, nil
}

func table2(s *Suite) (*Artifact, error) {
	measured := map[string]float64{}
	var b strings.Builder
	var rows [][]string
	byVersion := map[string][]analysis.OpShare{}
	for _, id := range []string{"A", "B", "C"} {
		res, err := s.Ethylene(id)
		if err != nil {
			return nil, err
		}
		shares := analysis.IOTimeShares(res.Trace)
		byVersion[id] = shares
		sharesFor(id, shares, measured)
	}
	for _, op := range pablo.Ops() {
		row := []string{op.String()}
		for _, id := range []string{"A", "B", "C"} {
			var pct float64
			for _, sh := range byVersion[id] {
				if sh.Op == op {
					pct = sh.Percent
				}
			}
			row = append(row, fmt.Sprintf("%.2f", pct))
		}
		rows = append(rows, row)
	}
	report.Table(&b, "Table 2: aggregate I/O time by operation, % (ESCAT ethylene)",
		[]string{"Operation", "A", "B", "C"}, rows)
	b.WriteString("\n")
	b.WriteString(comparisonTable("paper vs measured", paperTable2, measured))
	return &Artifact{
		ID: "table2", Title: "Table 2 (ESCAT I/O time shares)",
		Text: b.String(), Paper: paperTable2, Measured: measured,
		Notes: "B's seek/write split reproduces with write slightly high; dominance ordering matches",
	}, nil
}

func table3(s *Suite) (*Artifact, error) {
	measured := map[string]float64{}
	var b strings.Builder
	var rows [][]string
	type col struct {
		label  string
		prefix string
		shares []analysis.OpShare
		allio  float64
	}
	var cols []col
	for _, id := range []string{"A", "B", "C"} {
		res, err := s.Ethylene(id)
		if err != nil {
			return nil, err
		}
		sh, all := analysis.ExecTimeShares(res.Trace, nodeTime(res))
		cols = append(cols, col{label: "eth " + id, prefix: "eth." + id, shares: sh, allio: all})
	}
	co, err := s.CarbonMonoxide()
	if err != nil {
		return nil, err
	}
	coSh, coAll := analysis.ExecTimeShares(co.Trace, nodeTime(co))
	cols = append(cols, col{label: "co C", prefix: "co.C", shares: coSh, allio: coAll})

	for _, c := range cols {
		sharesFor(c.prefix, c.shares, measured)
		measured[c.prefix+".allio"] = c.allio
	}
	for _, op := range pablo.Ops() {
		row := []string{op.String()}
		for _, c := range cols {
			var pct float64
			for _, sh := range c.shares {
				if sh.Op == op {
					pct = sh.Percent
				}
			}
			row = append(row, fmt.Sprintf("%.2f", pct))
		}
		rows = append(rows, row)
	}
	allRow := []string{"All I/O"}
	for _, c := range cols {
		allRow = append(allRow, fmt.Sprintf("%.2f", c.allio))
	}
	rows = append(rows, allRow)
	report.Table(&b, "Table 3: % of total execution time by I/O operation (ESCAT)",
		[]string{"Operation", "eth A", "eth B", "eth C", "co C"}, rows)
	b.WriteString("\n")
	b.WriteString(comparisonTable("paper vs measured", paperTable3, measured))
	return &Artifact{
		ID: "table3", Title: "Table 3 (ESCAT exec-time shares)",
		Text: b.String(), Paper: paperTable3, Measured: measured,
		Notes: "accounting: summed per-node I/O time over exec x nodes; B > A > C ordering and CO ~20% reproduce",
	}, nil
}

// nodeTime returns exec x nodes — the summed-node-time denominator of
// the paper's Table 3 accounting.
func nodeTime(res *core.Result) time.Duration {
	return res.Exec * time.Duration(res.Nodes)
}

func table4(s *Suite) (*Artifact, error) {
	var b strings.Builder
	versions := prism.PaperVersions()
	var rows [][]string
	for r := 0; r < 3; r++ {
		row := []string{versions[0].ModeTable()[r].Phase}
		for _, v := range versions {
			t := v.ModeTable()[r]
			row = append(row, t.Activity, t.Mode)
		}
		rows = append(rows, row)
	}
	report.Table(&b, "Table 4: node activity and file access modes (PRISM)",
		[]string{"Phase", "A activity", "mode", "B activity", "mode", "C activity", "mode"}, rows)

	want := map[string]string{
		"A.p1": "All Nodes/P: M_UNIX; R: M_UNIX; C: M_UNIX",
		"A.p2": "Node Zero/M_UNIX",
		"A.p3": "Node Zero/M_UNIX",
		"B.p1": "All Nodes/P: M_GLOBAL; R(h): M_GLOBAL, R(b): M_RECORD; C: M_GLOBAL",
		"B.p2": "Node Zero/M_UNIX",
		"B.p3": "All Nodes/M_ASYNC",
		"C.p1": "All Nodes/P: M_GLOBAL; R: M_ASYNC; C: M_GLOBAL",
		"C.p2": "Node Zero/M_UNIX",
		"C.p3": "All Nodes/M_ASYNC",
	}
	paper := map[string]float64{}
	meas := map[string]float64{}
	for _, v := range versions {
		for r, row := range v.ModeTable() {
			key := fmt.Sprintf("%s.p%d", v.ID, r+1)
			paper[key] = 1
			if want[key] == row.Activity+"/"+row.Mode {
				meas[key] = 1
			}
		}
	}
	return &Artifact{
		ID: "table4", Title: "Table 4 (PRISM modes)",
		Text: b.String(), Paper: paper, Measured: meas,
		Notes: "structural: 1 = phase's activity/mode matches the paper cell",
	}, nil
}

func table5(s *Suite) (*Artifact, error) {
	measured := map[string]float64{}
	var b strings.Builder
	var rows [][]string
	byVersion := map[string][]analysis.OpShare{}
	for _, id := range []string{"A", "B", "C"} {
		res, err := s.Prism(id)
		if err != nil {
			return nil, err
		}
		shares := analysis.IOTimeShares(res.Trace)
		byVersion[id] = shares
		sharesFor(id, shares, measured)
	}
	for _, op := range pablo.Ops() {
		row := []string{op.String()}
		for _, id := range []string{"A", "B", "C"} {
			var pct float64
			for _, sh := range byVersion[id] {
				if sh.Op == op {
					pct = sh.Percent
				}
			}
			row = append(row, fmt.Sprintf("%.2f", pct))
		}
		rows = append(rows, row)
	}
	report.Table(&b, "Table 5: aggregate I/O time by operation, % (PRISM)",
		[]string{"Operation", "A", "B", "C"}, rows)
	b.WriteString("\n")
	b.WriteString(comparisonTable("paper vs measured", paperTable5, measured))
	return &Artifact{
		ID: "table5", Title: "Table 5 (PRISM I/O time shares)",
		Text: b.String(), Paper: paperTable5, Measured: measured,
		Notes: "A open-dominated, B open+iomode-dominated with collapsed reads, C read-dominated after buffering disabled; B's write share under-reproduces",
	}, nil
}
