package experiments

import "testing"

// TestAdvisorReachesOracle pins the closed-loop acceptance bar: for
// every workload, the cache.Tiers the advisor derives from a trace —
// without peeking at any sweep — must reach at least 90% of the speedup
// of the oracle-best configuration found by the exhaustive cachewhatif
// and clientcache sweeps. A regression here means the advisor's
// triggers or merge rule drifted away from what the simulator rewards.
func TestAdvisorReachesOracle(t *testing.T) {
	s := NewSuite(1)
	art, err := advisorExp(s)
	if err != nil {
		t.Fatalf("advisor experiment: %v", err)
	}
	for _, loop := range advisorLoops() {
		pct, ok := art.Measured[loop.id+".pct_of_oracle"]
		if !ok {
			t.Fatalf("%s: pct_of_oracle metric missing", loop.id)
		}
		if pct < 90 {
			t.Errorf("%s: advised tiers reach %.1f%% of oracle-best speedup, want >= 90%%",
				loop.id, pct)
		}
		base := art.Paper[loop.id+"."+loop.headline]
		adv := art.Measured[loop.id+"."+loop.headline]
		if adv <= 0 || base <= 0 {
			t.Fatalf("%s: degenerate headline times base=%v advised=%v", loop.id, base, adv)
		}
		if adv >= base {
			t.Errorf("%s: advised run (%.2fs) not faster than no-cache baseline (%.2fs)",
				loop.id, adv, base)
		}
	}
}

// TestFlushPolicyDifferentiates pins the flush-policy study's finding:
// at the lazy shape (small batch, 75% watermark) the high-water + idle
// policy takes forced-flush stalls that the deadline policy at the same
// shape avoids, and the deadline policy's age-limited passes actually
// fire. If both columns read zero the workload no longer overruns the
// cache and the study is measuring nothing.
func TestFlushPolicyDifferentiates(t *testing.T) {
	s := NewSuite(1)
	art, err := flushPolicy(s)
	if err != nil {
		t.Fatalf("flushpolicy experiment: %v", err)
	}
	hwStalls := art.Paper["stalls"]
	dlStalls := art.Measured["stalls"]
	if hwStalls == 0 {
		t.Errorf("high-water + idle policy took no forced-flush stalls; the burst no longer overruns the cache")
	}
	if dlStalls >= hwStalls {
		t.Errorf("deadline policy stalls (%v) not below high-water + idle stalls (%v)",
			dlStalls, hwStalls)
	}
	if art.Measured["deadline_flushes"] == 0 {
		t.Errorf("deadline policy recorded no deadline-limited flusher passes")
	}
}
