package experiments

import (
	"fmt"
	"strings"
	"time"

	"paragonio/internal/apps/escat"
	"paragonio/internal/apps/prism"
	"paragonio/internal/cache"
	"paragonio/internal/core"
	"paragonio/internal/pablo"
	"paragonio/internal/report"
)

// The clientcache experiment extends the evolutionary what-if line one
// machine generation further: a lease-coherent client cache on every
// compute node (cache.ClientTier), alone and stacked on the I/O-node
// buffer cache of the cachewhatif study. Two workloads probe the two
// sides of the tier: ESCAT's carbon-monoxide problem re-reads its
// staged quadrature data on every one of its eight energy sweeps —
// M_RECORD hands each node the same records each pass, so the re-reads
// are node-local reuse a client cache can capture if its capacity and
// lease TTL cover the inter-sweep compute; and PRISM C mixes the
// restart read with checkpoint writes, where with both block tiers on
// the client tier and the I/O-node read-ahead interact on the same
// blocks.
// Client-off variants reuse the canonical golden-digest runs.

// clientVariant is one point of the client-tier sweep.
type clientVariant struct {
	id    string
	label string
	tiers cache.Tiers
}

// clientVariants returns the sweep. The lease TTL is a real axis: the
// 500 ms default expires long before the next energy sweep returns to
// the same records, so the first row isolates what expiry costs; the
// 10-minute rows isolate capacity; the last row stacks the I/O-node
// cache under the best client configuration.
func clientVariants() []clientVariant {
	client := func(mb int64, ttl time.Duration) *cache.ClientConfig {
		return &cache.ClientConfig{CapacityBytes: mb << 20, LeaseTTL: ttl}
	}
	const long = 10 * time.Minute
	return []clientVariant{
		{id: "off", label: "no cache (paper PFS)"},
		{id: "cttl", label: "client 8 MB, 500 ms lease", tiers: cache.Tiers{Client: client(8, 0)}},
		{id: "c1", label: "client 1 MB, 10 min lease", tiers: cache.Tiers{Client: client(1, long)}},
		{id: "c8", label: "client 8 MB, 10 min lease", tiers: cache.Tiers{Client: client(8, long)}},
		{id: "both", label: "client 8 MB + ion wb+ra 32 MB", tiers: cache.Tiers{
			Client: client(8, long),
			IONode: &cache.Config{CapacityBytes: 32 << 20, WriteBehind: true, ReadAhead: 4},
		}},
	}
}

// clientCfg is the suite configuration plus one tier variant.
func (s *Suite) clientCfg(v clientVariant) core.Config {
	cfg := s.cfg()
	cfg.Tiers = v.tiers
	return cfg
}

// PrismClient returns the PRISM version C run under a client-tier
// variant. The tiers-off variant shares the canonical "prism/C" entry.
func (s *Suite) PrismClient(v clientVariant) (*core.Result, error) {
	if !v.tiers.Enabled() {
		return s.Prism("C")
	}
	return s.run("client/prism/"+v.id, func() (*core.Result, error) {
		return prism.RunOn(s.clientCfg(v), prism.TestProblem(), prism.VersionC())
	})
}

// CarbonMonoxideClient returns the ESCAT carbon-monoxide version C run
// under a client-tier variant. The tiers-off variant shares the
// canonical "co/C" entry.
func (s *Suite) CarbonMonoxideClient(v clientVariant) (*core.Result, error) {
	if !v.tiers.Enabled() {
		return s.CarbonMonoxide()
	}
	return s.run("client/co/"+v.id, func() (*core.Result, error) {
		return escat.RunOn(s.clientCfg(v), escat.CarbonMonoxide(), escat.VersionCCarbonMonoxide())
	})
}

// clientRow is the measured shape of one (workload, variant) cell.
type clientRow struct {
	variant    clientVariant
	exec       time.Duration
	io         time.Duration
	target     time.Duration // headline op time (quad reload / restart read)
	aux        time.Duration // secondary op time (quad staging / checkpoint writes)
	hitPct     float64       // client-tier hit ratio
	recalls    uint64
	staleAv    uint64
	expired    uint64
	recallWait time.Duration
	ionHitPct  float64 // I/O-node tier hit ratio ("both" rows)
}

func clientRowStrings(r clientRow) []string {
	cols := []string{r.variant.label, secs(r.exec), secs(r.io), secs(r.target), secs(r.aux)}
	if r.variant.tiers.Client != nil {
		cols = append(cols,
			fmt.Sprintf("%.1f", r.hitPct),
			fmt.Sprintf("%d", r.recalls),
			fmt.Sprintf("%d", r.staleAv),
			fmt.Sprintf("%d", r.expired),
			secs(r.recallWait))
	} else {
		cols = append(cols, "-", "-", "-", "-", "-")
	}
	if r.variant.tiers.IONode != nil {
		cols = append(cols, fmt.Sprintf("%.1f", r.ionHitPct))
	} else {
		cols = append(cols, "-")
	}
	return cols
}

// clientCache runs the client-tier sweep over both workloads and
// renders the comparison.
func clientCache(s *Suite) (*Artifact, error) {
	variants := clientVariants()

	measure := func(res *core.Result, v clientVariant,
		target, aux func(file string) bool) clientRow {
		cs := res.Client
		return clientRow{
			variant:    v,
			exec:       res.Exec,
			io:         res.IOTime(),
			target:     fileOpTime(res.Trace, pablo.OpRead, target),
			aux:        fileOpTime(res.Trace, pablo.OpWrite, aux),
			hitPct:     100 * cs.HitRatio(),
			recalls:    cs.Recalls,
			staleAv:    cs.StaleAverted,
			expired:    cs.LeaseExpired,
			recallWait: cs.RecallWait,
			ionHitPct:  100 * res.CacheTotals().HitRatio(),
		}
	}
	quad := func(f string) bool {
		return strings.HasPrefix(f, escat.QuadFile(0)[:len("escat/quad.")])
	}
	// Carbon monoxide restarts from staged data, so its writes are the
	// phase-four result files, not quadrature staging.
	out := func(f string) bool {
		return strings.HasPrefix(f, escat.OutFile(0)[:len("escat/out.")])
	}

	coRows := make([]clientRow, 0, len(variants))
	prismRows := make([]clientRow, 0, len(variants))
	for _, v := range variants {
		res, err := s.CarbonMonoxideClient(v)
		if err != nil {
			return nil, err
		}
		coRows = append(coRows, measure(res, v, quad, out))

		res, err = s.PrismClient(v)
		if err != nil {
			return nil, err
		}
		prismRows = append(prismRows, measure(res, v,
			func(f string) bool { return f == prism.RestartFile },
			func(f string) bool { return f == prism.CheckpointFile }))
	}

	var b strings.Builder
	table := func(title, targetCol, auxCol string, src []clientRow) {
		rows := make([][]string, 0, len(src))
		for _, r := range src {
			rows = append(rows, clientRowStrings(r))
		}
		report.Table(&b, title,
			[]string{"variant", "exec_s", "io_s", targetCol, auxCol,
				"c_hit_%", "recalls", "stale_av", "expired", "recall_wait_s",
				"ion_hit_%"}, rows)
	}
	table("ESCAT C (carbon monoxide, 8 energy sweeps) reload re-reads under client caching",
		"quad_read_s", "out_write_s", coRows)
	b.WriteString("\n")
	table("PRISM C checkpoint/restart under client caching",
		"rst_read_s", "chk_write_s", prismRows)

	coBase, coBest := coRows[0], coRows[len(coRows)-1]
	prBase, prBest := prismRows[0], prismRows[len(prismRows)-1]
	paper := map[string]float64{
		"co.quad_read_s":    coBase.target.Seconds(),
		"co.io_s":           coBase.io.Seconds(),
		"prism.rst_read_s":  prBase.target.Seconds(),
		"prism.chk_write_s": prBase.aux.Seconds(),
		"prism.io_s":        prBase.io.Seconds(),
	}
	measured := map[string]float64{
		"co.quad_read_s":    coBest.target.Seconds(),
		"co.io_s":           coBest.io.Seconds(),
		"prism.rst_read_s":  prBest.target.Seconds(),
		"prism.chk_write_s": prBest.aux.Seconds(),
		"prism.io_s":        prBest.io.Seconds(),
	}
	return &Artifact{
		ID:       "clientcache",
		Title:    "What-if: client cache tier with lease coherence",
		Text:     b.String(),
		Paper:    paper,
		Measured: measured,
		Notes: "Not a paper artifact: the second what-if machine generation. " +
			"The 'paper' column is the tiers-off baseline (the real PFS); " +
			"'measured' is the client tier stacked on the I/O-node cache. " +
			"The client tier serves re-reads node-locally under read leases; " +
			"writes keep sharers coherent by recalling their leases at mesh " +
			"round-trip cost (recall_wait_s), and stale_av counts recalled " +
			"blocks still resident at the holder — reads a lease-less client " +
			"cache would have served stale. The lease TTL is a real axis: at " +
			"the 500 ms default every carbon-monoxide lease dies in the " +
			"minutes of compute between energy sweeps (the expired column), " +
			"so all eight reload passes miss; a 10-minute TTL at 8 MB/node " +
			"captures exactly the seven re-read sweeps (87.5% hits), while " +
			"1 MB/node thrashes at 0% — the ~3 MB per-node reload working " +
			"set sits between the two capacities. Both paper workloads " +
			"partition their files across nodes (the access-pattern fact the " +
			"paper itself reports), so recall traffic is near nil here; the " +
			"protocol's coherence cost is exercised by the randomized sharing " +
			"schedules of the coherence property tests instead. The block tiers " +
			"interact rather than add: on PRISM the stack wins twice (the " +
			"client tier absorbs the restart re-reads, write-behind absorbs " +
			"the checkpoint), but on carbon monoxide stacking is worse than " +
			"the client tier alone — the client tier strips the reuse out of " +
			"the miss stream the I/O-node cache sees, leaving read-ahead to " +
			"prefetch records nobody re-requests.",
	}, nil
}
