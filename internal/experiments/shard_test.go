package experiments

import (
	"testing"

	"paragonio/internal/sim"
)

// TestShardedGoldenDigests re-runs the canonical workloads on sharded
// kernels and requires the exact golden digests for every shard count —
// the deterministic-merge contract of the conservative kernel: lane
// events commit their effects in global (at, seq) order, so the trace a
// sharded run produces is bit-identical to the single-threaded one.
//
// The stage threshold is forced down to 2 so even the small runs push
// same-instant events through the parallel stage path instead of the
// inline fallback.
func TestShardedGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size paper workloads skipped in -short mode")
	}
	old := sim.DefaultStageMin
	sim.DefaultStageMin = 2
	defer func() { sim.DefaultStageMin = old }()

	for _, shards := range []int{2, 8} {
		s := NewSuite(1)
		s.Shards = shards
		for _, g := range goldenDigests {
			res, err := g.run(s)
			if err != nil {
				t.Fatalf("shards=%d %s: %v", shards, g.key, err)
			}
			if n := res.Trace.Len(); n != g.events {
				t.Errorf("shards=%d %s: %d events, golden %d", shards, g.key, n, g.events)
			}
			if d := res.Trace.Digest(); d != g.digest {
				t.Errorf("shards=%d %s: digest %#016x, golden %#016x", shards, g.key, d, g.digest)
			}
		}
	}

	// The largest, most contended run at the remaining counts of the
	// 1/2/4/8/16 acceptance matrix (1 is TestGoldenDigests itself).
	for _, shards := range []int{4, 16} {
		s := NewSuite(1)
		s.Shards = shards
		res, err := s.CarbonMonoxide()
		if err != nil {
			t.Fatalf("shards=%d escat/co/C: %v", shards, err)
		}
		if d := res.Trace.Digest(); d != 0x83cf63b5fa1f8c5e {
			t.Errorf("shards=%d escat/co/C: digest %#016x, golden 0x83cf63b5fa1f8c5e", shards, d)
		}
	}
}
