package experiments

import (
	"testing"
	"time"

	"paragonio/internal/sim"
)

// TestShardedGoldenDigests re-runs the canonical workloads on sharded
// kernels and requires the exact golden digests for every shard count —
// the deterministic-merge contract of the conservative kernel: lane
// events commit their effects in global (at, seq) order, so the trace a
// sharded run produces is bit-identical to the single-threaded one.
//
// The stage threshold is forced down to 2 so even the small runs push
// same-instant events through the parallel stage path instead of the
// inline fallback.
func TestShardedGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size paper workloads skipped in -short mode")
	}
	old := sim.DefaultStageMin
	sim.DefaultStageMin = 2
	defer func() { sim.DefaultStageMin = old }()

	// All seven canonical runs at every sharded count of the 1/2/4/8/16
	// acceptance matrix (1 is TestGoldenDigests itself). These runs carry
	// no cache tiers, so they also pin that the client-tier code paths
	// added to pfs cost nothing — not one event — when disabled.
	//
	// Shards above the I/O node count (20) split into 16 I/O lanes plus
	// compute lanes partitioning the node processes, and the narrowed
	// windows force windows that slice the mesh lookahead unevenly — both
	// must stay bit-identical too.
	cases := []struct {
		shards int
		window time.Duration // 0 = full lookahead
	}{
		{2, 0}, {4, 0}, {8, 0}, {16, 0},
		{8, 7 * time.Microsecond},
		{20, 0},
	}
	for _, tc := range cases {
		s := NewSuite(1)
		s.Shards = tc.shards
		s.Window = tc.window
		for _, g := range goldenDigests {
			res, err := g.run(s)
			if err != nil {
				t.Fatalf("shards=%d window=%v %s: %v", tc.shards, tc.window, g.key, err)
			}
			if n := res.Trace.Len(); n != g.events {
				t.Errorf("shards=%d window=%v %s: %d events, golden %d", tc.shards, tc.window, g.key, n, g.events)
			}
			if d := res.Trace.Digest(); d != g.digest {
				t.Errorf("shards=%d window=%v %s: digest %#016x, golden %#016x", tc.shards, tc.window, g.key, d, g.digest)
			}
		}
	}
}
