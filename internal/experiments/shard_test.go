package experiments

import (
	"testing"

	"paragonio/internal/sim"
)

// TestShardedGoldenDigests re-runs the canonical workloads on sharded
// kernels and requires the exact golden digests for every shard count —
// the deterministic-merge contract of the conservative kernel: lane
// events commit their effects in global (at, seq) order, so the trace a
// sharded run produces is bit-identical to the single-threaded one.
//
// The stage threshold is forced down to 2 so even the small runs push
// same-instant events through the parallel stage path instead of the
// inline fallback.
func TestShardedGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size paper workloads skipped in -short mode")
	}
	old := sim.DefaultStageMin
	sim.DefaultStageMin = 2
	defer func() { sim.DefaultStageMin = old }()

	// All seven canonical runs at every sharded count of the 1/2/4/8/16
	// acceptance matrix (1 is TestGoldenDigests itself). These runs carry
	// no cache tiers, so they also pin that the client-tier code paths
	// added to pfs cost nothing — not one event — when disabled.
	for _, shards := range []int{2, 4, 8, 16} {
		s := NewSuite(1)
		s.Shards = shards
		for _, g := range goldenDigests {
			res, err := g.run(s)
			if err != nil {
				t.Fatalf("shards=%d %s: %v", shards, g.key, err)
			}
			if n := res.Trace.Len(); n != g.events {
				t.Errorf("shards=%d %s: %d events, golden %d", shards, g.key, n, g.events)
			}
			if d := res.Trace.Digest(); d != g.digest {
				t.Errorf("shards=%d %s: digest %#016x, golden %#016x", shards, g.key, d, g.digest)
			}
		}
	}
}
