package experiments

import (
	"strings"
	"testing"
)

// TestCacheWhatIfReproducible proves cached runs keep the simulator's
// bit-reproducibility contract: two fresh suites render the identical
// artifact, byte for byte.
func TestCacheWhatIfReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size paper workloads skipped in -short mode")
	}
	a1, err := cacheWhatIf(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := cacheWhatIf(NewSuite(sharedSuite.Seed))
	if err != nil {
		t.Fatal(err)
	}
	if a1.Text != a2.Text {
		t.Fatalf("cachewhatif not reproducible:\n--- first\n%s\n--- second\n%s", a1.Text, a2.Text)
	}
}

// TestCacheWhatIfWriteBehindWins pins the experiment's headline claim:
// write-behind reduces PRISM's checkpoint I/O time (and overall I/O
// time), with the mechanism visible in the cache statistics.
func TestCacheWhatIfWriteBehindWins(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size paper workloads skipped in -short mode")
	}
	art, err := cacheWhatIf(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	// Paper = cache-off baseline; Measured = best cached variant.
	if got, base := art.Measured["prism.chk_write_s"], art.Paper["prism.chk_write_s"]; got >= base {
		t.Fatalf("checkpoint write time %g s not below cache-off baseline %g s", got, base)
	}
	if got, base := art.Measured["prism.io_s"], art.Paper["prism.io_s"]; got >= base {
		t.Fatalf("PRISM I/O time %g s not below cache-off baseline %g s", got, base)
	}
	if got, base := art.Measured["eth.quad_write_s"], art.Paper["eth.quad_write_s"]; got >= base {
		t.Fatalf("staging write time %g s not below cache-off baseline %g s", got, base)
	}
	for _, col := range []string{"hit_%", "max_dirty", "stalls"} {
		if !strings.Contains(art.Text, col) {
			t.Fatalf("artifact text missing cache-stats column %q:\n%s", col, art.Text)
		}
	}

	// The mechanism, from the run itself: server-side hits and a working
	// write-behind queue.
	res, err := sharedSuite.PrismCached(cacheVariants()[2]) // wb32
	if err != nil {
		t.Fatal(err)
	}
	ct := res.CacheTotals()
	if ct.HitRatio() < 0.5 {
		t.Fatalf("hit ratio %.2f too low for the checkpoint/restart pattern", ct.HitRatio())
	}
	if ct.MaxDirty == 0 {
		t.Fatal("write-behind queue never held a dirty block")
	}
	if ct.Dirty != 0 {
		t.Fatalf("%d dirty blocks left after run end — flusher did not drain", ct.Dirty)
	}
	if ct.WriteBehindBytes == 0 {
		t.Fatal("no bytes acknowledged via write-behind")
	}
}

// TestCacheWhatIfRegistered checks the experiment is reachable by id,
// i.e. `iotables -only cachewhatif` works.
func TestCacheWhatIfRegistered(t *testing.T) {
	e, ok := ByID("cachewhatif")
	if !ok {
		t.Fatal("cachewhatif not registered in All()")
	}
	if e.Run == nil || e.Title == "" {
		t.Fatalf("incomplete experiment: %+v", e)
	}
}
