package experiments

import (
	"strings"
	"testing"
)

// TestCacheWhatIfReproducible proves cached runs keep the simulator's
// bit-reproducibility contract: two fresh suites render the identical
// artifact, byte for byte.
func TestCacheWhatIfReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size paper workloads skipped in -short mode")
	}
	a1, err := cacheWhatIf(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := cacheWhatIf(NewSuite(sharedSuite.Seed))
	if err != nil {
		t.Fatal(err)
	}
	if a1.Text != a2.Text {
		t.Fatalf("cachewhatif not reproducible:\n--- first\n%s\n--- second\n%s", a1.Text, a2.Text)
	}
}

// TestCacheWhatIfWriteBehindWins pins the experiment's headline claim:
// write-behind reduces PRISM's checkpoint I/O time (and overall I/O
// time), with the mechanism visible in the cache statistics.
func TestCacheWhatIfWriteBehindWins(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size paper workloads skipped in -short mode")
	}
	art, err := cacheWhatIf(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	// Paper = cache-off baseline; Measured = best cached variant.
	if got, base := art.Measured["prism.chk_write_s"], art.Paper["prism.chk_write_s"]; got >= base {
		t.Fatalf("checkpoint write time %g s not below cache-off baseline %g s", got, base)
	}
	if got, base := art.Measured["prism.io_s"], art.Paper["prism.io_s"]; got >= base {
		t.Fatalf("PRISM I/O time %g s not below cache-off baseline %g s", got, base)
	}
	if got, base := art.Measured["eth.quad_write_s"], art.Paper["eth.quad_write_s"]; got >= base {
		t.Fatalf("staging write time %g s not below cache-off baseline %g s", got, base)
	}
	for _, col := range []string{"hit_%", "max_dirty", "stalls"} {
		if !strings.Contains(art.Text, col) {
			t.Fatalf("artifact text missing cache-stats column %q:\n%s", col, art.Text)
		}
	}

	// The mechanism, from the run itself: server-side hits and a working
	// write-behind queue.
	res, err := sharedSuite.PrismCached(cacheVariants()[2]) // wb32
	if err != nil {
		t.Fatal(err)
	}
	ct := res.CacheTotals()
	if ct.HitRatio() < 0.5 {
		t.Fatalf("hit ratio %.2f too low for the checkpoint/restart pattern", ct.HitRatio())
	}
	if ct.MaxDirty == 0 {
		t.Fatal("write-behind queue never held a dirty block")
	}
	if ct.Dirty != 0 {
		t.Fatalf("%d dirty blocks left after run end — flusher did not drain", ct.Dirty)
	}
	if ct.WriteBehindBytes == 0 {
		t.Fatal("no bytes acknowledged via write-behind")
	}
}

// TestCacheWhatIfCarbonMonoxide pins the honest carbon-monoxide outcome:
// the restart-staged reload has no reuse, so caching must not be reported
// as a win, and the cache-size sensitivity the study probes for must be
// visible — read-ahead misfetches at 1 MB/node, better accuracy at
// 32 MB/node. The workload is read-dominated, so no forced-flush stalls.
func TestCacheWhatIfCarbonMonoxide(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size paper workloads skipped in -short mode")
	}
	art, err := cacheWhatIf(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(art.Text, "carbon monoxide") {
		t.Fatalf("artifact text missing the carbon-monoxide table:\n%s", art.Text)
	}
	if got, base := art.Measured["co.io_s"], art.Paper["co.io_s"]; got < base {
		t.Fatalf("CO I/O time %g s below cache-off %g s — the honest negative result moved; update the notes", got, base)
	}

	variants := cacheVariants()
	small, err := sharedSuite.CarbonMonoxideCached(variants[3]) // wbra1
	if err != nil {
		t.Fatal(err)
	}
	large, err := sharedSuite.CarbonMonoxideCached(variants[4]) // wbra32
	if err != nil {
		t.Fatal(err)
	}
	st, lt := small.CacheTotals(), large.CacheTotals()
	if st.ReadAheadAccuracy() >= lt.ReadAheadAccuracy() {
		t.Fatalf("read-ahead accuracy %.3f at 1 MB not below %.3f at 32 MB — cache-size sensitivity vanished",
			st.ReadAheadAccuracy(), lt.ReadAheadAccuracy())
	}
	if st.ForcedFlushStalls != 0 || lt.ForcedFlushStalls != 0 {
		t.Fatalf("read-dominated CO reload reported forced-flush stalls (%d / %d)",
			st.ForcedFlushStalls, lt.ForcedFlushStalls)
	}
}

// TestCacheWhatIfRegistered checks the experiment is reachable by id,
// i.e. `iotables -only cachewhatif` works.
func TestCacheWhatIfRegistered(t *testing.T) {
	e, ok := ByID("cachewhatif")
	if !ok {
		t.Fatal("cachewhatif not registered in All()")
	}
	if e.Run == nil || e.Title == "" {
		t.Fatalf("incomplete experiment: %+v", e)
	}
}
