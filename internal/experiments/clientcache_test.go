package experiments

import (
	"testing"
	"time"

	"paragonio/internal/apps/escat"
	"paragonio/internal/apps/prism"
	"paragonio/internal/cache"
	"paragonio/internal/core"
	"paragonio/internal/sim"
)

// clientOnTiers is the pinned client-tier configuration of the
// client-on digest set: 8 MB/node with a lease TTL long enough that
// the tier actually serves hits in the pinned workloads.
func clientOnTiers() cache.Tiers {
	return cache.Tiers{Client: &cache.ClientConfig{
		CapacityBytes: 8 << 20, LeaseTTL: 10 * time.Minute,
	}}
}

// TestClientCacheGoldenDigests pins the client-tier-on runs the same
// way the canonical runs are pinned: exact FNV-1a digests, bit-identical
// at shard counts 1, 4, and 16. The client tier lives on lane 0, so the
// protocol (lease grants, expiries, recalls) must be untouched by how
// the I/O nodes are sharded. The digests differ from the client-off
// goldens — the tier changes timings — but the event counts match them:
// caching changes when I/O happens, never what I/O the program asked for.
func TestClientCacheGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size paper workloads skipped in -short mode")
	}
	old := sim.DefaultStageMin
	sim.DefaultStageMin = 2
	defer func() { sim.DefaultStageMin = old }()

	golden := []struct {
		key    string
		events int
		digest uint64
		run    func(cfg core.Config) (*core.Result, error)
	}{
		{"eth/C", 23768, 0xd7fb3b53679a18a6, func(cfg core.Config) (*core.Result, error) {
			return escat.RunOn(cfg, escat.Ethylene(), escat.VersionC())
		}},
		{"prism/C", 11396, 0x4f35ba3c6c1263b6, func(cfg core.Config) (*core.Result, error) {
			return prism.RunOn(cfg, prism.TestProblem(), prism.VersionC())
		}},
	}
	for _, shards := range []int{1, 4, 16} {
		cfg := core.Config{Seed: 1, Shards: shards, Tiers: clientOnTiers()}
		for _, g := range golden {
			res, err := g.run(cfg)
			if err != nil {
				t.Fatalf("shards=%d %s: %v", shards, g.key, err)
			}
			if n := res.Trace.Len(); n != g.events {
				t.Errorf("shards=%d %s: %d events, golden %d", shards, g.key, n, g.events)
			}
			if d := res.Trace.Digest(); d != g.digest {
				t.Errorf("shards=%d %s: digest %#016x, golden %#016x", shards, g.key, d, g.digest)
			}
			if res.Client.Hits == 0 {
				t.Errorf("shards=%d %s: client tier on but zero hits", shards, g.key)
			}
		}
	}
}

// TestClientVariantsShareCanonicalRuns pins the singleflight contract:
// the tiers-off variant of the clientcache sweep is the canonical run
// object itself, not a re-execution.
func TestClientVariantsShareCanonicalRuns(t *testing.T) {
	vs := clientVariants()
	if vs[0].tiers.Enabled() {
		t.Fatalf("first variant %q has tiers enabled", vs[0].id)
	}
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v.id] {
			t.Errorf("duplicate variant id %q", v.id)
		}
		seen[v.id] = true
	}
	s := NewSuite(1)
	canonical, err := s.Prism("C")
	if err != nil {
		t.Fatal(err)
	}
	shared, err := s.PrismClient(vs[0])
	if err != nil {
		t.Fatal(err)
	}
	if canonical != shared {
		t.Error("tiers-off PrismClient re-ran instead of sharing prism/C")
	}
	if _, ok := ByID("clientcache"); !ok {
		t.Error("clientcache experiment not registered")
	}
}
