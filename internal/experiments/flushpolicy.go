package experiments

import (
	"fmt"
	"strings"
	"time"

	"paragonio/internal/iobench"
	"paragonio/internal/pfs"
)

// The flushpolicy experiment is the ROADMAP flush-policy study: it pits
// the I/O-node cache's two write-behind flush policies — the legacy
// high-water + idle policy and the deadline policy (cache.Config.
// FlushDeadline) — against a bursty checkpoint writer, the workload
// ParaLog-style deadline flushing is argued for. The cache is held at
// 2 MB so every 4 MB checkpoint burst overruns it: the flush policy,
// not the capacity, then decides how many burst writes stall behind a
// synchronous eviction of a dirty victim (ForcedFlushStalls) and how
// many flusher passes the disk absorbs between bursts.

// flushWorkload is the bursty checkpoint writer all ladder rungs share:
// node zero dumps 8 MB in 64 KB records every cycle, with seconds of
// computation between bursts for the flusher to hide work in. Only two
// I/O nodes serve the stripe, so each one's 2 MB cache absorbs a 4 MB
// slice per burst — a guaranteed overrun that forces the flush policy
// to decide which writes stall behind a dirty eviction.
func flushWorkload(s *Suite) iobench.Params {
	return iobench.Params{
		Kernel:  iobench.Checkpoint,
		Mode:    pfs.MAsync,
		Nodes:   8,
		Request: 64 << 10,
		Volume:  64 << 20,
		Cycles:  8,
		Compute: 2 * time.Second,
		IONodes: 2,
		Seed:    s.Seed,
		Shards:  s.Shards,
	}
}

// flushPolicy runs the ladder and renders the comparison.
func flushPolicy(s *Suite) (*Artifact, error) {
	results, err := iobench.SweepFlush(flushWorkload(s))
	if err != nil {
		return nil, err
	}

	var b strings.Builder
	if err := iobench.WriteFlushTable(&b,
		"Checkpoint bursts (8 x 8 MB striped over two 2 MB write-behind caches) by flush policy",
		results); err != nil {
		return nil, err
	}

	// Headline comparison: the lazy shape (small batch, 75% watermark) is
	// where the two policies separate — the idle policy lets the dirty
	// queue reach the watermark and stalls burst writes behind dirty
	// evictions, while the deadline policy's age-based passes drain the
	// queue before the next burst lands.
	find := func(label string) *iobench.Result {
		for _, r := range results {
			if r.CacheLabel == label {
				return r
			}
		}
		return nil
	}
	hw := find("hw-idle b=4 hw=75%")
	dl := find("deadline=1s b=4 hw=75%")
	if hw == nil || dl == nil {
		return nil, fmt.Errorf("flushpolicy: ladder rungs missing")
	}

	// Shared keys: 'paper' is the legacy high-water + idle policy,
	// 'measured' the deadline policy, both at the lazy b=4 hw=75% shape.
	paper := map[string]float64{
		"stalls":           float64(hw.Cache.ForcedFlushStalls),
		"flushes":          float64(hw.Cache.Flushes),
		"deadline_flushes": float64(hw.Cache.DeadlineFlushes),
		"wall_s":           hw.Wall.Seconds(),
	}
	measured := map[string]float64{
		"stalls":           float64(dl.Cache.ForcedFlushStalls),
		"flushes":          float64(dl.Cache.Flushes),
		"deadline_flushes": float64(dl.Cache.DeadlineFlushes),
		"wall_s":           dl.Wall.Seconds(),
	}
	return &Artifact{
		ID:       "flushpolicy",
		Title:    "Flush-policy study: high-water + idle vs deadline write-behind",
		Text:     b.String(),
		Paper:    paper,
		Measured: measured,
		Notes: "Not a paper artifact: the ROADMAP flush-policy study. " +
			"'paper' holds the legacy high-water + idle policy at the lazy " +
			"shape (batch 4, 75% watermark); 'measured' holds the deadline " +
			"policy at a 1 s deadline and the same shape. Forced-flush " +
			"stalls count burst writes that had to write a dirty victim " +
			"synchronously because no clean frame was left; flusher passes " +
			"count disk-side background work. The lazy idle policy rides " +
			"the dirty queue to the watermark, fills the cache mid-burst, " +
			"and stalls writes behind dirty evictions; the deadline policy " +
			"at the same shape flushes by age, drains between bursts, and " +
			"takes zero stalls — at the cost of more flusher passes and a " +
			"slightly longer wall clock. At the eager 25% watermark the " +
			"policies converge (no stalls either way), so the deadline only " +
			"pays off when the watermark alone is too lazy to protect the " +
			"burst.",
	}, nil
}
