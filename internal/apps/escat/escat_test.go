package escat

import (
	"testing"
	"time"

	"paragonio/internal/analysis"
	"paragonio/internal/core"
	"paragonio/internal/pablo"
)

// smallEthylene returns a scaled-down ethylene problem so structural
// tests run in milliseconds while exercising every code path.
func smallEthylene() Dataset {
	d := Ethylene()
	d.Nodes = 8
	d.HeaderReads = 10
	d.Cycles = 4
	d.EnergySweeps = 1
	d.ResultWrites = 6
	d.CycleCompute = 2 * time.Second
	d.CycleJitter = 500 * time.Millisecond
	d.SetupCompute = time.Second
	d.EnergyCompute = 2 * time.Second
	d.EnergyJitter = time.Second
	return d
}

func runSmall(t *testing.T, v Version) *core.Result {
	t.Helper()
	res, err := Run(smallEthylene(), v, 1)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDatasetValidate(t *testing.T) {
	if err := Ethylene().Validate(); err != nil {
		t.Fatalf("ethylene invalid: %v", err)
	}
	if err := CarbonMonoxide().Validate(); err != nil {
		t.Fatalf("carbon monoxide invalid: %v", err)
	}
	bad := []func(*Dataset){
		func(d *Dataset) { d.Nodes = 0 },
		func(d *Dataset) { d.Channels = 0 },
		func(d *Dataset) { d.InputFiles = 0 },
		func(d *Dataset) { d.Cycles = 0 },
		func(d *Dataset) { d.WriteSize = 0 },
		func(d *Dataset) { d.RecordSize = 0 },
		func(d *Dataset) { d.ChunkRead = 0 },
		func(d *Dataset) { d.EnergySweeps = 0 },
	}
	for i, mut := range bad {
		d := Ethylene()
		mut(&d)
		if err := d.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted bad dataset", i)
		}
	}
}

func TestQuadBytesMatchesWritePattern(t *testing.T) {
	d := Ethylene()
	want := int64(d.Cycles) * int64(d.WritesPerCycle) * int64(d.Nodes) * d.WriteSize
	if d.QuadBytes() != want {
		t.Fatalf("QuadBytes = %d, want %d", d.QuadBytes(), want)
	}
}

func TestProgressionsOrderAndFamilies(t *testing.T) {
	prog := Progressions()
	if len(prog) != 6 {
		t.Fatalf("progressions = %d, want 6", len(prog))
	}
	wantIDs := []string{"A", "A2", "B1", "B2", "B3", "C"}
	wantFam := []string{"A", "A", "B", "B", "B", "C"}
	for i, v := range prog {
		if v.ID != wantIDs[i] || v.Family != wantFam[i] {
			t.Fatalf("prog[%d] = %s/%s, want %s/%s", i, v.ID, v.Family, wantIDs[i], wantFam[i])
		}
	}
	// Compute scale must be non-increasing (the tuning story).
	for i := 1; i < len(prog); i++ {
		if prog[i].ComputeScale > prog[i-1].ComputeScale {
			t.Fatalf("compute scale increases at %s", prog[i].ID)
		}
	}
}

func TestModeTableMatchesPaper(t *testing.T) {
	for _, v := range PaperVersions() {
		rows := v.ModeTable()
		if len(rows) != 4 {
			t.Fatalf("%s: %d rows", v.ID, len(rows))
		}
		if rows[3].Activity != "Node zero" || rows[3].Mode != "M_UNIX" {
			t.Fatalf("%s phase 4 = %+v", v.ID, rows[3])
		}
	}
	if VersionC().ModeTable()[1].Mode != "M_ASYNC" {
		t.Fatal("C phase 2 mode not M_ASYNC")
	}
	if VersionB().ModeTable()[2].Mode != "M_RECORD" {
		t.Fatal("B phase 3 mode not M_RECORD")
	}
}

func TestRunVersionAStructure(t *testing.T) {
	res := runSmall(t, VersionA())
	if res.Exec <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	// A: no gopen, no iomode.
	if n := len(res.Trace.ByOp(pablo.OpGopen)); n != 0 {
		t.Fatalf("version A issued %d gopens", n)
	}
	if n := len(res.Trace.ByOp(pablo.OpIOMode)); n != 0 {
		t.Fatalf("version A issued %d iomodes", n)
	}
	// All nodes read inputs.
	nodes := map[int]bool{}
	for _, ev := range res.Trace.ByOp(pablo.OpRead) {
		if ev.File == "escat/input.0" {
			nodes[ev.Node] = true
		}
	}
	if len(nodes) != 8 {
		t.Fatalf("input read by %d nodes, want all 8", len(nodes))
	}
	// Writes only from node zero.
	for _, ev := range res.Trace.ByOp(pablo.OpWrite) {
		if ev.Node != 0 {
			t.Fatalf("version A write from node %d", ev.Node)
		}
	}
	// Four phases recorded.
	if len(res.Phases) != 4 {
		t.Fatalf("phases = %d, want 4", len(res.Phases))
	}
}

func TestRunVersionCStructure(t *testing.T) {
	res := runSmall(t, VersionC())
	// C: staging writes from every node, in M_ASYNC.
	writers := map[int]bool{}
	for _, ev := range res.Trace.ByOp(pablo.OpWrite) {
		if ev.File == "escat/quad.0" {
			writers[ev.Node] = true
			if ev.Mode != "M_ASYNC" {
				t.Fatalf("staging write mode %q", ev.Mode)
			}
			if ev.Size != Ethylene().WriteSize {
				t.Fatalf("staging write size %d", ev.Size)
			}
		}
	}
	if len(writers) != 8 {
		t.Fatalf("staging written by %d nodes, want 8", len(writers))
	}
	// Reload reads are M_RECORD at the record size.
	var recReads int
	for _, ev := range res.Trace.ByOp(pablo.OpRead) {
		if ev.Mode == "M_RECORD" && ev.Size > 0 {
			recReads++
			if ev.Size > smallEthylene().RecordSize {
				t.Fatalf("record read of %d bytes", ev.Size)
			}
		}
	}
	if recReads == 0 {
		t.Fatal("no M_RECORD reload reads")
	}
	// gopen and iomode both present.
	if len(res.Trace.ByOp(pablo.OpGopen)) == 0 || len(res.Trace.ByOp(pablo.OpIOMode)) == 0 {
		t.Fatal("version C missing gopen/iomode ops")
	}
}

func TestVersionCFasterThanA(t *testing.T) {
	a := runSmall(t, VersionA())
	c := runSmall(t, VersionC())
	if c.Exec >= a.Exec {
		t.Fatalf("C (%v) not faster than A (%v)", c.Exec, a.Exec)
	}
}

func TestSeeksCheaperInCThanB(t *testing.T) {
	b := runSmall(t, VersionB())
	c := runSmall(t, VersionC())
	bAgg := pablo.AggregateByOp(b.Trace)
	cAgg := pablo.AggregateByOp(c.Trace)
	if bAgg.Duration[pablo.OpSeek] <= cAgg.Duration[pablo.OpSeek]*10 {
		t.Fatalf("B seek time (%v) not >> C seek time (%v)",
			bAgg.Duration[pablo.OpSeek], cAgg.Duration[pablo.OpSeek])
	}
}

func TestQuadratureConservation(t *testing.T) {
	// All versions stage the same quadrature volume and reload it fully.
	d := smallEthylene()
	for _, v := range PaperVersions() {
		res, err := Run(d, v, 1)
		if err != nil {
			t.Fatal(err)
		}
		var staged int64
		for _, ev := range res.Trace.ByOp(pablo.OpWrite) {
			if ev.File == "escat/quad.0" || ev.File == "escat/quad.1" {
				staged += ev.Size
			}
		}
		if want := 2 * d.QuadBytes(); staged != want {
			t.Fatalf("%s: staged %d bytes, want %d", v.ID, staged, want)
		}
		var reloaded int64
		for _, ev := range res.Trace.ByOp(pablo.OpRead) {
			if ev.File == "escat/quad.0" || ev.File == "escat/quad.1" {
				reloaded += ev.Size
			}
		}
		if reloaded != staged {
			t.Fatalf("%s: reloaded %d of %d staged bytes", v.ID, reloaded, staged)
		}
	}
}

func TestRestartStagedSkipsPhase2(t *testing.T) {
	d := smallEthylene()
	v := VersionCCarbonMonoxide()
	res, err := Run(d, v, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range res.Trace.ByOp(pablo.OpWrite) {
		if ev.File == "escat/quad.0" {
			t.Fatal("staged restart still wrote quadrature data")
		}
	}
	// Reload still works off the preloaded file.
	var reloaded int64
	for _, ev := range res.Trace.ByOp(pablo.OpRead) {
		if ev.File == "escat/quad.0" {
			reloaded += ev.Size
		}
	}
	if reloaded != d.QuadBytes() {
		t.Fatalf("reloaded %d bytes, want %d", reloaded, d.QuadBytes())
	}
	// No iomode: M_RECORD set directly in gopen.
	if n := len(res.Trace.ByOp(pablo.OpIOMode)); n != 0 {
		t.Fatalf("staged C issued %d iomodes", n)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	d := smallEthylene()
	r1, err := Run(d, VersionB(), 42)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(d, VersionB(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Exec != r2.Exec {
		t.Fatalf("exec differs: %v vs %v", r1.Exec, r2.Exec)
	}
	if r1.Trace.Len() != r2.Trace.Len() {
		t.Fatalf("trace length differs: %d vs %d", r1.Trace.Len(), r2.Trace.Len())
	}
	for i, ev := range r1.Trace.Events() {
		if ev != r2.Trace.Events()[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ev, r2.Trace.Events()[i])
		}
	}
}

func TestSeedChangesJitterNotStructure(t *testing.T) {
	d := smallEthylene()
	r1, err := Run(d, VersionC(), 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(d, VersionC(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Trace.Len() != r2.Trace.Len() {
		t.Fatalf("different seeds changed op count: %d vs %d", r1.Trace.Len(), r2.Trace.Len())
	}
	if r1.Exec == r2.Exec {
		t.Fatal("different seeds produced identical timing (jitter not applied?)")
	}
}

func TestRunOnRejectsNodeMismatch(t *testing.T) {
	d := smallEthylene()
	if _, err := RunOn(core.Config{Nodes: 4, Seed: 1}, d, VersionA()); err == nil {
		t.Fatal("node mismatch accepted")
	}
}

func TestPhaseWindowsOrdered(t *testing.T) {
	res := runSmall(t, VersionB())
	var prev analysis.PhaseWindow
	for i, w := range res.Phases {
		if w.End < w.Start {
			t.Fatalf("phase %d inverted: %+v", i, w)
		}
		if i > 0 && w.Start < prev.End {
			t.Fatalf("phase %d overlaps previous", i)
		}
		prev = w
	}
}

func TestTaxonomyMatchesPaperClasses(t *testing.T) {
	// The paper's section 6: phase one is compulsory I/O, ESCAT employs
	// data staging for its out-of-core computation, and final results
	// are compulsory output. The taxonomy classifier must recover those
	// classes from the trace alone.
	res := runSmall(t, VersionC())
	classes := analysis.ClassifyTaxonomy(res.Trace, res.Exec)
	byFile := map[string]analysis.Category{}
	for _, fc := range classes {
		byFile[fc.File] = fc.Category
	}
	for _, f := range []string{"escat/input.0", "escat/input.1", "escat/input.2"} {
		if byFile[f] != analysis.CompulsoryInput {
			t.Errorf("%s classified %v, want compulsory-input", f, byFile[f])
		}
	}
	for _, f := range []string{"escat/quad.0", "escat/quad.1"} {
		if byFile[f] != analysis.DataStaging {
			t.Errorf("%s classified %v, want data-staging", f, byFile[f])
		}
	}
	for _, f := range []string{"escat/out.0", "escat/out.1"} {
		if byFile[f] != analysis.ResultOutput {
			t.Errorf("%s classified %v, want result-output", f, byFile[f])
		}
	}
}

func TestBoronTrichlorideRuns(t *testing.T) {
	d := BoronTrichloride()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Channels != 1 {
		t.Fatalf("channels = %d, want 1 (elastic only)", d.Channels)
	}
	// Smoke at reduced scale.
	d.Nodes = 8
	d.Cycles = 4
	d.EnergySweeps = 1
	d.HeaderReads = 10
	d.CycleCompute = time.Second
	d.CycleJitter = 200 * time.Millisecond
	d.SetupCompute = time.Second
	d.EnergyCompute = time.Second
	res, err := Run(d, VersionC(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Len() == 0 || res.Exec <= 0 {
		t.Fatal("empty run")
	}
}
