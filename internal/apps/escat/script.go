package escat

import (
	"fmt"
	"math/rand"
	"time"

	"paragonio/internal/pfs"
	"paragonio/internal/workload"
)

// File names used by the workload.
func inputName(i int) string { return fmt.Sprintf("escat/input.%d", i) }
func quadName(ch int) string { return fmt.Sprintf("escat/quad.%d", ch) }
func outName(ch int) string  { return fmt.Sprintf("escat/out.%d", ch) }

// QuadFile returns the name of one channel's quadrature staging file,
// exported so analyses (e.g. the cache what-if experiment) can attribute
// trace time to the staging writes.
func QuadFile(ch int) string { return quadName(ch) }

// OutFile returns the result file name for a collision channel.
func OutFile(ch int) string { return outName(ch) }

// Script installs the ESCAT workload on the machine: it preloads the
// input files, spawns one process per node, and drives the four phases
// according to the version's structure. The kernel is run by the caller.
func Script(m *workload.Machine, d Dataset, v Version, seed int64) error {
	if m.Nodes != d.Nodes {
		return fmt.Errorf("escat: machine has %d nodes, dataset needs %d", m.Nodes, d.Nodes)
	}
	for i := 0; i < d.InputFiles; i++ {
		// Headroom over the expected size so the randomized header reads
		// never clamp at EOF.
		m.FS.CreateFile(inputName(i), d.InputBytesPerFile()*2)
	}
	if v.RestartStaged {
		// Quadrature data was staged by a previous run of the same
		// problem; phase two is skipped.
		for ch := 0; ch < d.Channels; ch++ {
			m.FS.CreateFile(quadName(ch), d.QuadBytes())
		}
	}
	all := m.NewCollective("escat-all", d.Nodes)
	var group *pfs.Group
	if v.Phase2AllNodes || v.Phase3Record {
		nodes := make([]int, d.Nodes)
		for i := range nodes {
			nodes[i] = i
		}
		var err error
		group, err = m.FS.NewGroup(nodes)
		if err != nil {
			return err
		}
	}
	// Header read sizes are a property of the input files' contents, so
	// every node issues the identical request sequence (the signature a
	// smarter file system would recognize as a broadcast-worthy global
	// read). Derive them once per file from the run seed.
	headerSizes := make([][]int64, d.InputFiles)
	rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	for i := range headerSizes {
		sizes := make([]int64, d.HeaderReads)
		for r := range sizes {
			sizes[r] = d.HeaderSizes.Next(rng)
		}
		headerSizes[i] = sizes
	}
	m.SpawnNodes(seed, func(n *workload.Node) {
		runNode(n, d, v, all, group, headerSizes)
	})
	return nil
}

// scaled applies the version's compute scale.
func scaled(v Version, t time.Duration) time.Duration {
	return time.Duration(float64(t) * v.ComputeScale)
}

func runNode(n *workload.Node, d Dataset, v Version, all *workload.Collective, g *pfs.Group, headerSizes [][]int64) {
	phase1(n, d, v, all, headerSizes)
	phase2(n, d, v, all, g)
	phase3(n, d, v, all, g)
	phase4(n, d, v, all)
}

// phase1 reads the initialization files (compulsory I/O). Version A:
// every node opens and reads them through M_UNIX, serializing on the
// file tokens. Versions B/C: node zero reads and broadcasts.
func phase1(n *workload.Node, d Dataset, v Version, all *workload.Collective, headerSizes [][]int64) {
	if n.ID == 0 {
		n.M.BeginPhase("one: initialization reads")
	}
	n.ComputeJitter(scaled(v, d.SetupCompute), d.CycleJitter/4)
	if v.Phase1AllNodes {
		readInputs(n, d, headerSizes)
		all.Barrier(n)
		return
	}
	if n.ID == 0 {
		readInputs(n, d, headerSizes)
	}
	all.Broadcast(n, 0, int64(d.InputFiles)*d.InputBytesPerFile())
}

// readInputs opens and reads every input file: the header as a long run
// of small reads, then the few large matrix reads (with a repositioning
// seek before each, as the original code's record-structured input did).
func readInputs(n *workload.Node, d Dataset, headerSizes [][]int64) {
	p := n.P
	for i := 0; i < d.InputFiles; i++ {
		h, err := n.M.FS.Open(p, n.ID, inputName(i), pfs.MUnix)
		if err != nil {
			panic(err)
		}
		for _, sz := range headerSizes[i] {
			if _, err := h.Read(p, sz); err != nil {
				panic(err)
			}
		}
		var off int64 = 0
		// Matrices sit at the end of the file; position and read each.
		matBase := d.InputBytesPerFile()
		for _, s := range d.MatrixReadSizes {
			matBase -= s
		}
		off = matBase
		for _, s := range d.MatrixReadSizes {
			if err := h.Seek(p, off); err != nil {
				panic(err)
			}
			if _, err := h.Read(p, s); err != nil {
				panic(err)
			}
			off += s
		}
		if err := h.Close(p); err != nil {
			panic(err)
		}
	}
}

// phase2 generates and stages the quadrature data (data staging): a
// series of compute/write cycles with synchronized write steps.
func phase2(n *workload.Node, d Dataset, v Version, all *workload.Collective, g *pfs.Group) {
	p := n.P
	all.Barrier(n)
	if n.ID == 0 {
		n.M.BeginPhase("two: quadrature staging writes")
	}
	if v.RestartStaged {
		return // staged by a previous run
	}
	for ch := 0; ch < d.Channels; ch++ {
		if v.Phase2AllNodes {
			// B/C: every node writes its own interleaved slots.
			var h *pfs.Handle
			var err error
			if v.UseGopen {
				h, err = g.Gopen(p, n.ID, quadName(ch), pfs.MUnix)
			} else {
				h, err = n.M.FS.Open(p, n.ID, quadName(ch), pfs.MUnix)
			}
			if err != nil {
				panic(err)
			}
			if v.UseIOMode {
				if err := g.SetIOMode(p, h, v.Phase2Mode); err != nil {
					panic(err)
				}
			}
			for cyc := 0; cyc < d.Cycles; cyc++ {
				n.ComputeJitter(scaled(v, d.CycleCompute), d.CycleJitter)
				all.Barrier(n) // write steps are synchronized among nodes
				for w := 0; w < d.WritesPerCycle; w++ {
					slot := (int64(cyc)*int64(d.WritesPerCycle)+int64(w))*int64(d.Nodes) + int64(n.ID)
					off := slot * d.WriteSize
					// Position to the computed offset (node number,
					// iteration, stripe size), write, then reposition the
					// pointer past the region for the next iteration's
					// bookkeeping — two pointer operations per write.
					if err := h.Seek(p, off); err != nil {
						panic(err)
					}
					if _, err := h.Write(p, d.WriteSize); err != nil {
						panic(err)
					}
					for s := 1; s < v.SeeksPerWrite; s++ {
						if err := h.Seek(p, off+d.WriteSize); err != nil {
							panic(err)
						}
					}
				}
			}
			if err := h.Close(p); err != nil {
				panic(err)
			}
			continue
		}
		// A: all nodes compute and synchronize; node zero collects the
		// cycle's data and writes it with four request sizes.
		var h *pfs.Handle
		var err error
		if n.ID == 0 {
			h, err = n.M.FS.Open(p, 0, quadName(ch), pfs.MUnix)
			if err != nil {
				panic(err)
			}
		}
		cycleBytes := d.QuadBytes() / int64(d.Cycles)
		perNode := cycleBytes / int64(d.Nodes)
		for cyc := 0; cyc < d.Cycles; cyc++ {
			n.ComputeJitter(scaled(v, d.CycleCompute), d.CycleJitter)
			all.Barrier(n)
			all.Gather(n, 0, perNode)
			if n.ID == 0 {
				remaining := cycleBytes
				for remaining > 0 {
					sz := d.WriteSizesA.Next(n.RNG)
					if sz > remaining {
						sz = remaining
					}
					if _, err := h.Write(p, sz); err != nil {
						panic(err)
					}
					remaining -= sz
				}
			}
		}
		if n.ID == 0 {
			if err := h.Close(p); err != nil {
				panic(err)
			}
		}
	}
}

// phase3 reloads the quadrature data for the energy-dependent solves.
// Version A: node zero reads small chunks and broadcasts them. B/C: all
// nodes read 128 KB records (two stripe units) through M_RECORD.
func phase3(n *workload.Node, d Dataset, v Version, all *workload.Collective, g *pfs.Group) {
	p := n.P
	all.Barrier(n)
	if n.ID == 0 {
		n.M.BeginPhase("three: quadrature reload reads")
	}
	for sweep := 0; sweep < d.EnergySweeps; sweep++ {
		n.ComputeJitter(scaled(v, d.EnergyCompute), d.EnergyJitter)
		for ch := 0; ch < d.Channels; ch++ {
			size := n.M.FS.FileSize(quadName(ch))
			if v.Phase3Record {
				var h *pfs.Handle
				var err error
				if v.DirectRecordGopen {
					h, err = g.Gopen(p, n.ID, quadName(ch), pfs.MRecord)
				} else {
					h, err = g.Gopen(p, n.ID, quadName(ch), pfs.MUnix)
					if err == nil {
						err = g.SetIOMode(p, h, pfs.MRecord)
					}
				}
				if err != nil {
					panic(err)
				}
				records := (size + d.RecordSize - 1) / d.RecordSize
				rounds := int((records + int64(d.Nodes) - 1) / int64(d.Nodes))
				for r := 0; r < rounds; r++ {
					if _, err := h.Read(p, d.RecordSize); err != nil {
						panic(err)
					}
				}
				if err := h.Close(p); err != nil {
					panic(err)
				}
				continue
			}
			// A: node zero chunk-reads and broadcasts in batches.
			const chunksPerBatch = 64
			chunks := (size + d.ChunkRead - 1) / d.ChunkRead
			batches := int((chunks + chunksPerBatch - 1) / chunksPerBatch)
			var h *pfs.Handle
			if n.ID == 0 {
				var err error
				h, err = n.M.FS.Open(p, 0, quadName(ch), pfs.MUnix)
				if err != nil {
					panic(err)
				}
			}
			left := chunks
			for b := 0; b < batches; b++ {
				batch := int64(chunksPerBatch)
				if batch > left {
					batch = left
				}
				if n.ID == 0 {
					for c := int64(0); c < batch; c++ {
						if _, err := h.Read(p, d.ChunkRead); err != nil {
							panic(err)
						}
					}
				}
				all.Broadcast(n, 0, batch*d.ChunkRead)
				left -= batch
			}
			if n.ID == 0 {
				if err := h.Close(p); err != nil {
					panic(err)
				}
			}
		}
	}
}

// phase4 writes the per-channel results (compulsory output) through
// node zero, in all versions.
func phase4(n *workload.Node, d Dataset, v Version, all *workload.Collective) {
	p := n.P
	all.Barrier(n)
	if n.ID == 0 {
		n.M.BeginPhase("four: result writes")
	}
	if n.ID == 0 {
		for ch := 0; ch < d.Channels; ch++ {
			h, err := n.M.FS.Open(p, 0, outName(ch), pfs.MUnix)
			if err != nil {
				panic(err)
			}
			var off int64
			for w := 0; w < d.ResultWrites; w++ {
				// The result file is section-structured: reposition at
				// section boundaries (every 8 writes).
				if w%8 == 0 {
					if err := h.Seek(p, off); err != nil {
						panic(err)
					}
				}
				sz := d.ResultSizes.Next(n.RNG)
				if _, err := h.Write(p, sz); err != nil {
					panic(err)
				}
				off += sz
			}
			if err := h.Close(p); err != nil {
				panic(err)
			}
		}
	}
	all.Barrier(n)
}
