// Package escat reproduces the I/O behavior of ESCAT, the parallel
// Schwinger Multichannel electron-scattering code of section 4 of the
// paper, as a synthetic workload: four I/O phases (compulsory input
// reads, quadrature data staging writes, quadrature reload reads, result
// writes), with the per-version node activity and PFS access modes of
// Table 1 and the request-size populations of Figures 2-4.
//
// Physics is modeled as calibrated virtual-time compute delays; every
// I/O call is issued against the simulated PFS exactly as the paper
// describes for each code version.
package escat

import (
	"context"
	"fmt"
	"time"

	"paragonio/internal/core"
	"paragonio/internal/pfs"
	"paragonio/internal/workload"
)

// Dataset describes one ESCAT problem instance.
type Dataset struct {
	Name     string
	Nodes    int
	Channels int // collision channels; staging/output files per channel

	// Phase one: input files.
	InputFiles      int
	HeaderReads     int             // small reads per input file
	HeaderSizes     workload.Choice // small request sizes (< 2 KB)
	MatrixReadSizes []int64         // the few large reads per input file

	// Phase two: quadrature staging (per channel).
	Cycles         int             // compute/write cycles
	WritesPerCycle int             // writes per node per cycle (versions B/C)
	WriteSize      int64           // single write size (versions B/C)
	WriteSizesA    workload.Choice // version A's four request sizes

	// Phase three: quadrature reload.
	ChunkRead    int64         // version A: node-zero chunk size (< 2 KB)
	RecordSize   int64         // versions B/C: M_RECORD size (2x stripe unit)
	EnergySweeps int           // full reload passes (energies evaluated)
	EnergyJitter time.Duration // per-node imbalance entering each sweep

	// Phase four: results.
	ResultWrites int
	ResultSizes  workload.Choice

	// Compute model.
	CycleCompute  time.Duration // per compute/write cycle
	CycleJitter   time.Duration // per-node imbalance
	SetupCompute  time.Duration // phase-one local setup
	EnergyCompute time.Duration // phase-three per-sweep computation
}

// QuadBytes returns the staged quadrature volume per channel, which is
// fixed by the write pattern of versions B/C.
func (d Dataset) QuadBytes() int64 {
	return int64(d.Cycles) * int64(d.WritesPerCycle) * int64(d.Nodes) * d.WriteSize
}

// Validate reports whether the dataset is runnable.
func (d Dataset) Validate() error {
	switch {
	case d.Nodes <= 0:
		return fmt.Errorf("escat: Nodes = %d", d.Nodes)
	case d.Channels <= 0:
		return fmt.Errorf("escat: Channels = %d", d.Channels)
	case d.InputFiles <= 0:
		return fmt.Errorf("escat: InputFiles = %d", d.InputFiles)
	case d.Cycles <= 0 || d.WritesPerCycle <= 0 || d.WriteSize <= 0:
		return fmt.Errorf("escat: invalid staging parameters")
	case d.RecordSize <= 0 || d.ChunkRead <= 0:
		return fmt.Errorf("escat: invalid reload parameters")
	case d.EnergySweeps <= 0:
		return fmt.Errorf("escat: EnergySweeps = %d", d.EnergySweeps)
	}
	return nil
}

// Ethylene returns the paper's baseline problem: electronic excitation
// of ethylene to its first triplet state — two collision channels on 128
// processors.
func Ethylene() Dataset {
	return Dataset{
		Name:     "ethylene",
		Nodes:    128,
		Channels: 2,

		InputFiles:  3,
		HeaderReads: 120,
		HeaderSizes: workload.Choice{
			Sizes:   []int64{40, 200, 800, 1800},
			Weights: []float64{30, 25, 25, 20},
		},
		MatrixReadSizes: []int64{131072, 131072},

		Cycles:         42,
		WritesPerCycle: 1,
		WriteSize:      2720,
		WriteSizesA: workload.Choice{
			Sizes:   []int64{424, 1088, 2176, 2720},
			Weights: []float64{20, 30, 30, 20},
		},

		ChunkRead:    2040,
		RecordSize:   131072, // two PFS stripes
		EnergySweeps: 1,
		EnergyJitter: 12 * time.Second,

		ResultWrites: 40,
		ResultSizes: workload.Choice{
			Sizes:   []int64{1088, 2720},
			Weights: []float64{50, 50},
		},

		CycleCompute:  64 * time.Second,
		CycleJitter:   8 * time.Second,
		SetupCompute:  30 * time.Second,
		EnergyCompute: 120 * time.Second,
	}
}

// CarbonMonoxide returns the larger problem of Table 3's last column:
// electronic excitation of carbon monoxide — 13 collision channels on
// 256 processors, where I/O reaches ~20% of execution time even after
// optimization.
func CarbonMonoxide() Dataset {
	d := Ethylene()
	d.Name = "carbon-monoxide"
	d.Nodes = 256
	d.Channels = 13
	d.Cycles = 60
	d.EnergySweeps = 8
	d.CycleCompute = 5 * time.Second
	d.CycleJitter = 1500 * time.Millisecond
	d.SetupCompute = 20 * time.Second
	d.EnergyCompute = 80 * time.Second
	d.EnergyJitter = 5 * time.Second
	return d
}

// VersionCCarbonMonoxide is the version C build as run for the carbon-
// monoxide study: reload files are gopen'd directly in M_RECORD (Table
// 3's carbon-monoxide column has no iomode row).
func VersionCCarbonMonoxide() Version {
	v := VersionC()
	v.DirectRecordGopen = true
	v.UseIOMode = false
	v.RestartStaged = true
	return v
}

// BoronTrichloride returns the third study problem the paper's footnote
// mentions (the elastic scattering cross section for BCl3): a single
// elastic channel with a heavier quadrature volume, run at 128 nodes.
// The paper reports no tables for it; the dataset is provided for
// exploration alongside the two tabulated problems.
func BoronTrichloride() Dataset {
	d := Ethylene()
	d.Name = "boron-trichloride"
	d.Channels = 1
	d.Cycles = 120
	d.EnergySweeps = 3
	d.CycleCompute = 30 * time.Second
	d.EnergyCompute = 60 * time.Second
	return d
}

// Version describes one ESCAT code progression: which nodes perform I/O
// in each phase and with which PFS access mode (the rows of Table 1),
// plus a compute scale capturing the non-I/O effects of each rebuild
// (instrumentation overhead, numerics restructuring).
type Version struct {
	ID     string // "A", "A2", "B1", "B2", "B3", "C"
	Family string // "A", "B" or "C": the structure analyzed in the paper
	OS     string // operating system release
	Pablo  string // instrumentation version
	Label  string

	Phase1AllNodes bool     // A: all nodes read inputs; B/C: node 0 + broadcast
	Phase2AllNodes bool     // B/C: all nodes write staging data
	Phase2Mode     pfs.Mode // M_UNIX (A and B) or M_ASYNC (C)
	SeeksPerWrite  int      // pointer positioning ops per staging write (B/C)
	Phase3Record   bool     // B/C: M_RECORD reload; A: node 0 reads + broadcast
	UseGopen       bool     // B/C: collective opens for staging files
	UseIOMode      bool     // B/C: explicit setiomode calls
	// DirectRecordGopen opens reload files with M_RECORD directly in
	// gopen instead of a separate setiomode (the carbon-monoxide runs,
	// whose Table 3 column has no iomode row).
	DirectRecordGopen bool
	// RestartStaged starts from quadrature data staged by a previous
	// run, skipping phase two entirely — the production mode the
	// energy-independent formulation enables, and the configuration of
	// the paper's carbon-monoxide measurements (write 0.03%%, seek 0.00%%
	// of execution time).
	RestartStaged bool

	ComputeScale float64
}

// VersionA is the initial code, structured for the Intel Touchstone
// Delta's Concurrent File System: everything through M_UNIX, all nodes
// reading inputs concurrently, node zero funneling all writes.
func VersionA() Version {
	return Version{
		ID: "A", Family: "A", OS: "OSF/1 R1.2", Pablo: "Pablo Beta",
		Label:          "initial port (CFS style)",
		Phase1AllNodes: true,
		Phase2Mode:     pfs.MUnix,
		ComputeScale:   1.015,
	}
}

// VersionB restructures I/O: node-zero read + broadcast for inputs,
// concurrent staging writes through M_UNIX with per-write seeks, and
// M_RECORD reloads.
func VersionB() Version {
	return Version{
		ID: "B", Family: "B", OS: "OSF/1 R1.2", Pablo: "Pablo 4.0",
		Label:          "restructured I/O (M_UNIX staging writes)",
		Phase2AllNodes: true,
		Phase2Mode:     pfs.MUnix,
		SeeksPerWrite:  2,
		Phase3Record:   true,
		UseGopen:       true,
		UseIOMode:      true,
		ComputeScale:   0.90,
	}
}

// VersionC switches the staging writes to the M_ASYNC mode introduced in
// OSF/1 R1.3, eliminating seek/atomicity serialization.
func VersionC() Version {
	return Version{
		ID: "C", Family: "C", OS: "OSF/1 R1.3", Pablo: "Pablo 4.0",
		Label:          "M_ASYNC staging writes",
		Phase2AllNodes: true,
		Phase2Mode:     pfs.MAsync,
		SeeksPerWrite:  1,
		Phase3Record:   true,
		UseGopen:       true,
		UseIOMode:      true,
		ComputeScale:   0.85,
	}
}

// Progressions returns the six builds of Figure 1 in chronological
// order: two A-family builds, three B-family builds, and the final C.
func Progressions() []Version {
	a := VersionA()
	a2 := VersionA()
	a2.ID, a2.Pablo, a2.ComputeScale = "A2", "Pablo 4.0", 1.0
	a2.Label = "initial port, lighter instrumentation"
	b1 := VersionB()
	b1.ID, b1.ComputeScale = "B1", 0.93
	b2 := VersionB()
	b2.ID, b2.ComputeScale = "B2", 0.915
	b3 := VersionB()
	b3.ID, b3.OS, b3.ComputeScale = "B3", "OSF/1 R1.3", 0.90
	b3.Label = "restructured I/O, OSF/1 R1.3"
	c := VersionC()
	return []Version{a, a2, b1, b2, b3, c}
}

// PaperVersions returns the three versions analyzed in detail (Tables
// 1-3): A, B, C.
func PaperVersions() []Version {
	return []Version{VersionA(), VersionB(), VersionC()}
}

// ModeTableRow describes one phase's node activity and access mode —
// a row of the paper's Table 1.
type ModeTableRow struct {
	Phase    string
	Activity string
	Mode     string
}

// ModeTable returns this version's Table 1 column.
func (v Version) ModeTable() []ModeTableRow {
	rows := make([]ModeTableRow, 0, 4)
	if v.Phase1AllNodes {
		rows = append(rows, ModeTableRow{"Phase One", "All Nodes", "M_UNIX"})
	} else {
		rows = append(rows, ModeTableRow{"Phase One", "Node zero", "M_UNIX"})
	}
	if v.Phase2AllNodes {
		rows = append(rows, ModeTableRow{"Phase Two", "All Nodes", v.Phase2Mode.String()})
	} else {
		rows = append(rows, ModeTableRow{"Phase Two", "Node zero", "M_UNIX"})
	}
	if v.Phase3Record {
		rows = append(rows, ModeTableRow{"Phase Three", "All Nodes", "M_RECORD"})
	} else {
		rows = append(rows, ModeTableRow{"Phase Three", "Node zero", "M_UNIX"})
	}
	rows = append(rows, ModeTableRow{"Phase Four", "Node zero", "M_UNIX"})
	return rows
}

// InputBytesPerFile returns the expected bytes in one input file (the
// header population's mean times count, plus the matrix reads).
func (d Dataset) InputBytesPerFile() int64 {
	var mean float64
	var wsum float64
	for i, s := range d.HeaderSizes.Sizes {
		mean += float64(s) * d.HeaderSizes.Weights[i]
		wsum += d.HeaderSizes.Weights[i]
	}
	mean /= wsum
	total := int64(mean * float64(d.HeaderReads))
	for _, s := range d.MatrixReadSizes {
		total += s
	}
	return total
}

// Run executes the dataset under the given version on a default platform
// and returns the captured result. seed fixes all workload randomness.
func Run(d Dataset, v Version, seed int64) (*core.Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	cfg := core.Config{Nodes: d.Nodes, Seed: seed}
	return core.Run(cfg, "ESCAT", v.ID, func(m *workload.Machine, seed int64) error {
		return Script(m, d, v, seed)
	})
}

// RunOn executes the dataset/version on a caller-supplied platform
// configuration (for machine-sensitivity studies).
func RunOn(cfg core.Config, d Dataset, v Version) (*core.Result, error) {
	return RunOnContext(context.Background(), cfg, d, v)
}

// RunOnContext is RunOn with cancellation: an expiring or cancelled ctx
// aborts the simulation mid-run (see core.RunContext).
func RunOnContext(ctx context.Context, cfg core.Config, d Dataset, v Version) (*core.Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = d.Nodes
	}
	if cfg.Nodes != d.Nodes {
		return nil, fmt.Errorf("escat: config nodes %d != dataset nodes %d", cfg.Nodes, d.Nodes)
	}
	return core.RunContext(ctx, cfg, "ESCAT", v.ID, func(m *workload.Machine, seed int64) error {
		return Script(m, d, v, seed)
	})
}
