// Package prism reproduces the I/O behavior of PRISM, the parallel 3-D
// spectral-element Navier-Stokes solver of section 5 of the paper, as a
// synthetic workload: three I/O phases (compulsory initialization reads
// from parameter/restart/connectivity files, integration-time
// checkpointing and measurement writes through node zero, and the final
// field dump), with the per-version node activity and PFS access modes
// of Table 4 and the request populations of Figures 7-9.
//
// The version C quirk the paper analyzes in detail — disabling client
// I/O buffering before reading the restart file, which made the repeated
// sub-40-byte header consultations catastrophically expensive — is
// reproduced directly through the file system's buffering control.
package prism

import (
	"context"
	"fmt"
	"time"

	"paragonio/internal/core"
	"paragonio/internal/workload"
)

// Dataset describes one PRISM test problem.
type Dataset struct {
	Name            string
	Nodes           int // 64 in the paper's runs
	Elements        int // spectral element count (201)
	Reynolds        int // Reynolds number (1000)
	Steps           int // integration time steps (1250)
	CheckpointEvery int // steps between checkpoints (250 -> 5 checkpoints)

	// Phase one: the three input files.
	ParamReads     int   // small text reads of the parameter file, per reader
	ParamReadSize  int64 // ~48 bytes
	HeaderConsults int   // restart-header consultations, per node (< 40 B each)
	HeaderSize     int64 // 36 bytes
	BodyRecord     int64 // restart body record: 155,584 bytes, one per node
	ConnTextReads  int   // connectivity reads when parsed as text (A, B)
	ConnTextSize   int64
	ConnBinReads   int // connectivity reads when binary (C)
	ConnBinSize    int64

	// Phase two: integration output through node zero.
	MeasureWrites int   // per-step measurement items (lift/drag/energy)
	MeasureSize   int64 // < 40 bytes each
	HistoryEvery  int   // steps between history-point writes
	HistorySize   int64
	StatsEvery    int // steps between flow-statistics writes (3 files)
	StatsSize     int64
	ChkHeaderSize int64 // checkpoint header write

	// Phase three: the field file.
	TrailerSize int64 // per-node small trailer write

	// Compute model.
	SetupCompute time.Duration // phase-one mesh/boundary setup
	ParseCompute time.Duration // per input read: text parsing / setup
	ParseJitter  time.Duration
	StepCompute  time.Duration // per integration step
	StepJitter   time.Duration
	PostCompute  time.Duration // phase-three transform to physical space
}

// BodyBytes returns the restart body size: one record per node.
func (d Dataset) BodyBytes() int64 { return int64(d.Nodes) * d.BodyRecord }

// Checkpoints returns the number of checkpoints the run performs.
func (d Dataset) Checkpoints() int { return d.Steps / d.CheckpointEvery }

// Validate reports whether the dataset is runnable.
func (d Dataset) Validate() error {
	switch {
	case d.Nodes <= 0:
		return fmt.Errorf("prism: Nodes = %d", d.Nodes)
	case d.Steps <= 0 || d.CheckpointEvery <= 0:
		return fmt.Errorf("prism: invalid step configuration")
	case d.BodyRecord <= 0:
		return fmt.Errorf("prism: BodyRecord = %d", d.BodyRecord)
	case d.ParamReads <= 0 || d.HeaderConsults <= 0:
		return fmt.Errorf("prism: invalid phase-one configuration")
	case d.ConnTextReads <= 0 || d.ConnBinReads <= 0:
		return fmt.Errorf("prism: invalid connectivity configuration")
	}
	return nil
}

// TestProblem returns the paper's PRISM test problem: 201 mesh elements,
// Reynolds number 1000, 1250 time steps with checkpoints every 250, on
// 64 nodes of the Caltech Paragon.
func TestProblem() Dataset {
	return Dataset{
		Name:            "cylinder-flow-201",
		Nodes:           64,
		Elements:        201,
		Reynolds:        1000,
		Steps:           1250,
		CheckpointEvery: 250,

		ParamReads:     60,
		ParamReadSize:  36,
		HeaderConsults: 16,
		HeaderSize:     36,
		BodyRecord:     155584,
		ConnTextReads:  150,
		ConnTextSize:   72,
		ConnBinReads:   20,
		ConnBinSize:    1024,

		MeasureWrites: 3,
		MeasureSize:   28,
		HistoryEvery:  10,
		HistorySize:   152,
		StatsEvery:    50,
		StatsSize:     368,
		ChkHeaderSize: 32,

		TrailerSize: 24,

		SetupCompute: 30 * time.Second,
		ParseCompute: 2 * time.Millisecond,
		ParseJitter:  30 * time.Millisecond,
		StepCompute:  7 * time.Second,
		StepJitter:   400 * time.Millisecond,
		PostCompute:  60 * time.Second,
	}
}

// RestartStyle selects how the restart file is accessed in phase one —
// the axis along which the three versions differ most.
type RestartStyle int

const (
	// RestartUnix: every node opens the restart file M_UNIX, consults
	// the header through the (buffered) shared-token path, seeks to its
	// slab and reads it (version A).
	RestartUnix RestartStyle = iota
	// RestartGlobalRecord: header via M_GLOBAL (one disk read,
	// broadcast), body via M_RECORD, switching modes mid-file
	// (version B).
	RestartGlobalRecord
	// RestartAsyncUnbuffered: M_ASYNC with client buffering disabled
	// before any access — every header consultation becomes a
	// synchronous disk round trip (version C).
	RestartAsyncUnbuffered
)

// Version describes one PRISM build (a column of Table 4).
type Version struct {
	ID    string
	OS    string
	Pablo string
	Label string

	ParamsGlobal bool // params/connectivity via M_GLOBAL (B, C)
	UseGopen     bool // collective gopen instead of open+iomode (C)
	Restart      RestartStyle
	ConnBinary   bool // connectivity read as binary (C)
	FieldAll     bool // phase three written by all nodes via M_ASYNC (B, C)
	FlushRestart bool // explicit flush of the restart handle (C)

	ComputeScale float64
}

// VersionA is the initial code: standard UNIX I/O, all nodes reading all
// inputs, all writes through node zero.
func VersionA() Version {
	return Version{
		ID: "A", OS: "OSF/1 R1.3", Pablo: "Pablo 4.0",
		Label:        "initial port (UNIX I/O throughout)",
		Restart:      RestartUnix,
		ComputeScale: 1.0,
	}
}

// VersionB adopts collective reads: M_GLOBAL for the parameter and
// connectivity files and the restart header, M_RECORD for the restart
// body, and concurrent M_ASYNC writes of the field file.
func VersionB() Version {
	return Version{
		ID: "B", OS: "OSF/1 R1.3", Pablo: "Pablo 4.0",
		Label:        "collective initialization reads",
		ParamsGlobal: true,
		Restart:      RestartGlobalRecord,
		FieldAll:     true,
		ComputeScale: 0.84,
	}
}

// VersionC replaces open/setiomode pairs with gopen, reads the
// connectivity file as binary, and — the paper's cautionary tale —
// disables client I/O buffering before accessing the restart file.
func VersionC() Version {
	return Version{
		ID: "C", OS: "OSF/1 R1.3", Pablo: "Pablo 4.0",
		Label:        "gopen + binary connectivity + unbuffered restart",
		ParamsGlobal: true,
		UseGopen:     true,
		Restart:      RestartAsyncUnbuffered,
		ConnBinary:   true,
		FieldAll:     true,
		FlushRestart: true,
		ComputeScale: 0.79,
	}
}

// PaperVersions returns the three analyzed versions in order.
func PaperVersions() []Version {
	return []Version{VersionA(), VersionB(), VersionC()}
}

// ModeTableRow is one row of the paper's Table 4.
type ModeTableRow struct {
	Phase    string
	Activity string
	Mode     string
}

// ModeTable returns this version's Table 4 column.
func (v Version) ModeTable() []ModeTableRow {
	var rows []ModeTableRow
	pmode := "P: M_UNIX"
	cmode := "C: M_UNIX"
	if v.ParamsGlobal {
		pmode = "P: M_GLOBAL"
		cmode = "C: M_GLOBAL"
	}
	var rmode string
	switch v.Restart {
	case RestartUnix:
		rmode = "R: M_UNIX"
	case RestartGlobalRecord:
		rmode = "R(h): M_GLOBAL, R(b): M_RECORD"
	case RestartAsyncUnbuffered:
		rmode = "R: M_ASYNC"
	}
	rows = append(rows, ModeTableRow{"Phase One", "All Nodes", pmode + "; " + rmode + "; " + cmode})
	rows = append(rows, ModeTableRow{"Phase Two", "Node Zero", "M_UNIX"})
	if v.FieldAll {
		rows = append(rows, ModeTableRow{"Phase Three", "All Nodes", "M_ASYNC"})
	} else {
		rows = append(rows, ModeTableRow{"Phase Three", "Node Zero", "M_UNIX"})
	}
	return rows
}

// Run executes the dataset under the given version on a default platform.
func Run(d Dataset, v Version, seed int64) (*core.Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	cfg := core.Config{Nodes: d.Nodes, Seed: seed}
	return core.Run(cfg, "PRISM", v.ID, func(m *workload.Machine, seed int64) error {
		return Script(m, d, v, seed)
	})
}

// RunOn executes the dataset/version on a caller-supplied platform.
func RunOn(cfg core.Config, d Dataset, v Version) (*core.Result, error) {
	return RunOnContext(context.Background(), cfg, d, v)
}

// RunOnContext is RunOn with cancellation: an expiring or cancelled ctx
// aborts the simulation mid-run (see core.RunContext).
func RunOnContext(ctx context.Context, cfg core.Config, d Dataset, v Version) (*core.Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = d.Nodes
	}
	if cfg.Nodes != d.Nodes {
		return nil, fmt.Errorf("prism: config nodes %d != dataset nodes %d", cfg.Nodes, d.Nodes)
	}
	return core.RunContext(ctx, cfg, "PRISM", v.ID, func(m *workload.Machine, seed int64) error {
		return Script(m, d, v, seed)
	})
}
