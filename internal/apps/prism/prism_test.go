package prism

import (
	"strings"
	"testing"
	"time"

	"paragonio/internal/core"
	"paragonio/internal/pablo"
)

// smallProblem shrinks the test problem so structural tests run fast
// while exercising every path (checkpoints included).
func smallProblem() Dataset {
	d := TestProblem()
	d.Nodes = 8
	d.Steps = 40
	d.CheckpointEvery = 10
	d.ParamReads = 10
	d.HeaderConsults = 6
	d.ConnTextReads = 12
	d.ConnBinReads = 4
	d.StepCompute = 500 * time.Millisecond
	d.StepJitter = 50 * time.Millisecond
	d.SetupCompute = time.Second
	d.PostCompute = time.Second
	return d
}

func runSmall(t *testing.T, v Version) *core.Result {
	t.Helper()
	res, err := Run(smallProblem(), v, 1)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDatasetValidate(t *testing.T) {
	if err := TestProblem().Validate(); err != nil {
		t.Fatalf("test problem invalid: %v", err)
	}
	bad := []func(*Dataset){
		func(d *Dataset) { d.Nodes = 0 },
		func(d *Dataset) { d.Steps = 0 },
		func(d *Dataset) { d.CheckpointEvery = 0 },
		func(d *Dataset) { d.BodyRecord = 0 },
		func(d *Dataset) { d.ParamReads = 0 },
		func(d *Dataset) { d.HeaderConsults = 0 },
		func(d *Dataset) { d.ConnTextReads = 0 },
	}
	for i, mut := range bad {
		d := TestProblem()
		mut(&d)
		if err := d.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted bad dataset", i)
		}
	}
}

func TestPaperProblemParameters(t *testing.T) {
	d := TestProblem()
	if d.Elements != 201 || d.Reynolds != 1000 || d.Steps != 1250 ||
		d.CheckpointEvery != 250 || d.Nodes != 64 {
		t.Fatalf("test problem drifted from the paper: %+v", d)
	}
	if d.Checkpoints() != 5 {
		t.Fatalf("Checkpoints = %d, want 5", d.Checkpoints())
	}
	if d.BodyRecord != 155584 {
		t.Fatalf("BodyRecord = %d, want 155584", d.BodyRecord)
	}
}

func TestModeTableMatchesPaper(t *testing.T) {
	a, b, c := VersionA(), VersionB(), VersionC()
	if got := a.ModeTable()[0].Mode; !strings.Contains(got, "M_UNIX") {
		t.Fatalf("A phase 1 = %q", got)
	}
	if got := b.ModeTable()[0].Mode; !strings.Contains(got, "R(h): M_GLOBAL") ||
		!strings.Contains(got, "R(b): M_RECORD") {
		t.Fatalf("B phase 1 = %q", got)
	}
	if got := c.ModeTable()[0].Mode; !strings.Contains(got, "R: M_ASYNC") {
		t.Fatalf("C phase 1 = %q", got)
	}
	for _, v := range PaperVersions() {
		if v.ModeTable()[1].Activity != "Node Zero" {
			t.Fatalf("%s phase 2 activity", v.ID)
		}
	}
	if b.ModeTable()[2].Mode != "M_ASYNC" || c.ModeTable()[2].Mode != "M_ASYNC" {
		t.Fatal("B/C phase 3 mode")
	}
	if a.ModeTable()[2].Activity != "Node Zero" {
		t.Fatal("A phase 3 activity")
	}
}

func TestVersionAStructure(t *testing.T) {
	res := runSmall(t, VersionA())
	if len(res.Trace.ByOp(pablo.OpGopen)) != 0 || len(res.Trace.ByOp(pablo.OpIOMode)) != 0 {
		t.Fatal("version A used collective metadata ops")
	}
	// Every node opens all three input files.
	opens := map[string]map[int]bool{}
	for _, ev := range res.Trace.ByOp(pablo.OpOpen) {
		if opens[ev.File] == nil {
			opens[ev.File] = map[int]bool{}
		}
		opens[ev.File][ev.Node] = true
	}
	for _, f := range []string{paramsFile, connFile, restartFile} {
		if len(opens[f]) != 8 {
			t.Fatalf("%s opened by %d nodes, want 8", f, len(opens[f]))
		}
	}
	// Phase 2/3 writes all through node zero.
	for _, ev := range res.Trace.ByOp(pablo.OpWrite) {
		if ev.Node != 0 {
			t.Fatalf("version A write from node %d to %s", ev.Node, ev.File)
		}
	}
}

func TestVersionBStructure(t *testing.T) {
	res := runSmall(t, VersionB())
	// Collective reads: the parameter file is read once per round (the
	// leader's disk I/O), so total disk traffic is far below A's.
	if n := len(res.Trace.ByOp(pablo.OpIOMode)); n == 0 {
		t.Fatal("version B issued no iomode ops")
	}
	// Restart body read via M_RECORD.
	var recordReads int
	for _, ev := range res.Trace.ByOp(pablo.OpRead) {
		if ev.Mode == "M_RECORD" {
			recordReads++
		}
	}
	if recordReads != 8 {
		t.Fatalf("M_RECORD body reads = %d, want 8 (one per node)", recordReads)
	}
	// Field file written by all nodes in M_ASYNC.
	writers := map[int]bool{}
	for _, ev := range res.Trace.ByOp(pablo.OpWrite) {
		if ev.File == fieldFile {
			writers[ev.Node] = true
			if ev.Mode != "M_ASYNC" {
				t.Fatalf("field write mode %q", ev.Mode)
			}
		}
	}
	if len(writers) != 8 {
		t.Fatalf("field written by %d nodes, want 8", len(writers))
	}
}

func TestVersionCStructure(t *testing.T) {
	res := runSmall(t, VersionC())
	if n := len(res.Trace.ByOp(pablo.OpIOMode)); n != 0 {
		t.Fatalf("version C issued %d iomode ops (gopen sets the mode)", n)
	}
	if n := len(res.Trace.ByOp(pablo.OpGopen)); n == 0 {
		t.Fatal("version C issued no gopens")
	}
	if n := len(res.Trace.ByOp(pablo.OpFlush)); n != 8 {
		t.Fatalf("flush events = %d, want 8 (restart flush per node)", n)
	}
	// Binary connectivity: reads of ConnBinSize, not ConnTextSize.
	for _, ev := range res.Trace.ByOp(pablo.OpRead) {
		if ev.File == connFile && ev.Size == smallProblem().ConnTextSize {
			t.Fatal("version C still reads connectivity as text")
		}
	}
}

func TestCheckpointBursts(t *testing.T) {
	d := smallProblem()
	res, err := Run(d, VersionC(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var chkRecords int
	for _, ev := range res.Trace.ByOp(pablo.OpWrite) {
		if ev.File == chkFile && ev.Size == d.BodyRecord {
			chkRecords++
		}
	}
	if want := d.Checkpoints() * d.Nodes; chkRecords != want {
		t.Fatalf("checkpoint records = %d, want %d", chkRecords, want)
	}
}

func TestUnbufferedHeaderCostlier(t *testing.T) {
	// The paper's core version C finding: the same header consultations
	// cost far more read time in C (unbuffered M_ASYNC) than in B
	// (M_GLOBAL collective).
	b := runSmall(t, VersionB())
	c := runSmall(t, VersionC())
	headerTime := func(res *core.Result) (total float64) {
		for _, ev := range res.Trace.ByOp(pablo.OpRead) {
			if ev.File == restartFile && ev.Size > 0 && ev.Size <= 40 {
				total += ev.Duration.Seconds()
			}
		}
		return
	}
	if hb, hc := headerTime(b), headerTime(c); hc <= 3*hb {
		t.Fatalf("unbuffered header reads (%.3fs) not >> buffered/global (%.3fs)", hc, hb)
	}
}

func TestExecutionTimeOrdering(t *testing.T) {
	// At this toy scale version B's fixed collective costs are not
	// amortized, so only the A > C endpoint ordering is meaningful here;
	// the full-problem A > B > C ordering is asserted by the experiments
	// suite (Figure 6).
	a := runSmall(t, VersionA())
	c := runSmall(t, VersionC())
	if a.Exec <= c.Exec {
		t.Fatalf("exec ordering violated: A=%v C=%v", a.Exec, c.Exec)
	}
}

func TestDeterminism(t *testing.T) {
	r1, err := Run(smallProblem(), VersionB(), 9)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(smallProblem(), VersionB(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Exec != r2.Exec || r1.Trace.Len() != r2.Trace.Len() {
		t.Fatalf("non-deterministic: %v/%d vs %v/%d",
			r1.Exec, r1.Trace.Len(), r2.Exec, r2.Trace.Len())
	}
}

func TestRunOnRejectsNodeMismatch(t *testing.T) {
	if _, err := RunOn(core.Config{Nodes: 3, Seed: 1}, smallProblem(), VersionA()); err == nil {
		t.Fatal("node mismatch accepted")
	}
}

func TestMeasurementVolumeConserved(t *testing.T) {
	d := smallProblem()
	res, err := Run(d, VersionA(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var measureBytes int64
	for _, ev := range res.Trace.ByOp(pablo.OpWrite) {
		if ev.File == measureFile {
			measureBytes += ev.Size
		}
	}
	want := int64(d.Steps) * int64(d.MeasureWrites) * d.MeasureSize
	if measureBytes != want {
		t.Fatalf("measurement bytes = %d, want %d", measureBytes, want)
	}
}
