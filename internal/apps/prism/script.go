package prism

import (
	"fmt"
	"time"

	"paragonio/internal/pfs"
	"paragonio/internal/workload"
)

// File names used by the workload.
const (
	paramsFile  = "prism/params"
	restartFile = "prism/restart"
	connFile    = "prism/connectivity"
	measureFile = "prism/measurements"
	historyFile = "prism/history"
	chkFile     = "prism/checkpoint"
	fieldFile   = "prism/field"
)

func statsFile(i int) string { return fmt.Sprintf("prism/stats.%d", i) }

// CheckpointFile and RestartFile name the files behind PRISM's dominant
// I/O costs, exported so analyses (e.g. the cache what-if experiment) can
// attribute trace time to them.
const (
	CheckpointFile = chkFile
	RestartFile    = restartFile
)

// headerRegion returns the byte extent of the restart header.
func headerRegion(d Dataset) int64 { return int64(d.HeaderConsults) * d.HeaderSize }

// Script installs the PRISM workload on the machine.
func Script(m *workload.Machine, d Dataset, v Version, seed int64) error {
	if m.Nodes != d.Nodes {
		return fmt.Errorf("prism: machine has %d nodes, dataset needs %d", m.Nodes, d.Nodes)
	}
	m.FS.CreateFile(paramsFile, int64(d.ParamReads)*d.ParamReadSize*2)
	connBytes := int64(d.ConnTextReads) * d.ConnTextSize
	if b := int64(d.ConnBinReads) * d.ConnBinSize; b > connBytes {
		connBytes = b
	}
	m.FS.CreateFile(connFile, connBytes*2)
	m.FS.CreateFile(restartFile, headerRegion(d)+d.BodyBytes())

	all := m.NewCollective("prism-all", d.Nodes)
	var group *pfs.Group
	if v.ParamsGlobal || v.FieldAll || v.UseGopen {
		nodes := make([]int, d.Nodes)
		for i := range nodes {
			nodes[i] = i
		}
		var err error
		group, err = m.FS.NewGroup(nodes)
		if err != nil {
			return err
		}
	}
	m.SpawnNodes(seed, func(n *workload.Node) {
		phase1(n, d, v, all, group)
		phase2(n, d, v, all)
		phase3(n, d, v, all, group)
	})
	return nil
}

func scaled(v Version, t time.Duration) time.Duration {
	return time.Duration(float64(t) * v.ComputeScale)
}

// phase1 initializes the solver from the three input files.
func phase1(n *workload.Node, d Dataset, v Version, all *workload.Collective, g *pfs.Group) {
	p := n.P
	if n.ID == 0 {
		n.M.BeginPhase("one: initialization reads")
	}
	n.ComputeJitter(scaled(v, d.SetupCompute), d.StepJitter)

	// Parameter file.
	readSharedSmall(n, d, v, all, g, paramsFile, d.ParamReads, d.ParamReadSize)

	// Connectivity file.
	if v.ConnBinary {
		readSharedSmall(n, d, v, all, g, connFile, d.ConnBinReads, d.ConnBinSize)
	} else {
		readSharedSmall(n, d, v, all, g, connFile, d.ConnTextReads, d.ConnTextSize)
	}

	// Restart file: header consultations, then the node's body slab.
	switch v.Restart {
	case RestartUnix:
		h := mustOpen(n, restartFile, pfs.MUnix)
		for r := 0; r < d.HeaderConsults; r++ {
			// The UNIX-I/O code repositions at section boundaries.
			if r%8 == 0 {
				mustSeek(n, h, int64(r)*d.HeaderSize)
			}
			mustRead(n, h, d.HeaderSize)
			n.ComputeJitter(d.ParseCompute, d.ParseJitter)
		}
		mustSeek(n, h, headerRegion(d)+int64(n.ID)*d.BodyRecord)
		mustRead(n, h, d.BodyRecord)
		mustClose(n, h)
	case RestartGlobalRecord:
		h := mustOpen(n, restartFile, pfs.MUnix)
		all.Barrier(n) // message-passing sync after the distributed open
		mustIOMode(n, g, h, pfs.MGlobal)
		for r := 0; r < d.HeaderConsults; r++ {
			mustRead(n, h, d.HeaderSize)
			n.ComputeJitter(d.ParseCompute, d.ParseJitter)
		}
		mustIOMode(n, g, h, pfs.MRecord)
		mustSeek(n, h, headerRegion(d)) // records start after the header
		mustRead(n, h, d.BodyRecord)
		mustClose(n, h)
	case RestartAsyncUnbuffered:
		h := mustGopen(n, g, restartFile, pfs.MAsync)
		h.SetBuffering(false) // the version C mistake, before the header
		for r := 0; r < d.HeaderConsults; r++ {
			mustRead(n, h, d.HeaderSize)
			n.ComputeJitter(d.ParseCompute, d.ParseJitter)
		}
		mustSeek(n, h, headerRegion(d)+int64(n.ID)*d.BodyRecord)
		mustRead(n, h, d.BodyRecord)
		if v.FlushRestart {
			if err := h.Flush(p); err != nil {
				panic(err)
			}
		}
		mustClose(n, h)
	}
	all.Barrier(n)
}

// readSharedSmall reads a small shared input file with the version's
// access discipline: per-node M_UNIX reads (A), open + collective
// setiomode to M_GLOBAL (B), or gopen M_GLOBAL (C).
func readSharedSmall(n *workload.Node, d Dataset, v Version, all *workload.Collective, g *pfs.Group, file string, count int, size int64) {
	var h *pfs.Handle
	switch {
	case !v.ParamsGlobal:
		h = mustOpen(n, file, pfs.MUnix)
	case v.UseGopen:
		h = mustGopen(n, g, file, pfs.MGlobal)
	default:
		h = mustOpen(n, file, pfs.MUnix)
		all.Barrier(n) // message-passing sync after the distributed open
		mustIOMode(n, g, h, pfs.MGlobal)
	}
	for r := 0; r < count; r++ {
		mustRead(n, h, size)
		n.ComputeJitter(d.ParseCompute, d.ParseJitter) // parse the record
	}
	mustClose(n, h)
}

// phase2 integrates the Navier-Stokes equations forward in time, with
// node zero writing measurements, history points, flow statistics, and
// periodic checkpoints through M_UNIX.
func phase2(n *workload.Node, d Dataset, v Version, all *workload.Collective) {
	if n.ID == 0 {
		n.M.BeginPhase("two: integration and checkpointing")
	}
	var measure, history, chk *pfs.Handle
	var statsH [3]*pfs.Handle
	if n.ID == 0 {
		measure = mustOpen(n, measureFile, pfs.MUnix)
		history = mustOpen(n, historyFile, pfs.MUnix)
		chk = mustOpen(n, chkFile, pfs.MUnix)
		for i := range statsH {
			statsH[i] = mustOpen(n, statsFile(i), pfs.MUnix)
		}
	}
	for step := 1; step <= d.Steps; step++ {
		n.ComputeJitter(scaled(v, d.StepCompute), d.StepJitter)
		// The pressure/viscous solves end each step with a combining
		// reduction (residual norms) across all nodes.
		all.AllReduce(n, 64)
		if n.ID != 0 {
			continue
		}
		for i := 0; i < d.MeasureWrites; i++ {
			mustWrite(n, measure, d.MeasureSize)
		}
		if step%d.HistoryEvery == 0 {
			mustWrite(n, history, d.HistorySize)
		}
		if step%d.StatsEvery == 0 {
			for i := range statsH {
				mustWrite(n, statsH[i], d.StatsSize)
			}
		}
		if step%d.CheckpointEvery == 0 {
			mustSeek(n, chk, 0)
			mustWrite(n, chk, d.ChkHeaderSize)
			for r := 0; r < d.Nodes; r++ {
				mustWrite(n, chk, d.BodyRecord)
			}
		}
	}
	if n.ID == 0 {
		mustClose(n, measure)
		mustClose(n, history)
		mustClose(n, chk)
		for i := range statsH {
			mustClose(n, statsH[i])
		}
	}
	all.Barrier(n)
}

// phase3 transforms results back to physical space and writes the field
// file: node zero alone in version A, all nodes through M_ASYNC in B/C.
func phase3(n *workload.Node, d Dataset, v Version, all *workload.Collective, g *pfs.Group) {
	if n.ID == 0 {
		n.M.BeginPhase("three: field file output")
	}
	n.ComputeJitter(scaled(v, d.PostCompute), d.StepJitter)
	if !v.FieldAll {
		if n.ID == 0 {
			h := mustOpen(n, fieldFile, pfs.MUnix)
			for r := 0; r < d.Nodes; r++ {
				mustWrite(n, h, d.BodyRecord)
			}
			for r := 0; r < 6; r++ {
				mustWrite(n, h, d.TrailerSize)
			}
			mustClose(n, h)
		}
		all.Barrier(n)
		return
	}
	var h *pfs.Handle
	if v.UseGopen {
		h = mustGopen(n, g, fieldFile, pfs.MAsync)
	} else {
		h = mustOpen(n, fieldFile, pfs.MUnix)
		all.Barrier(n) // message-passing sync after the distributed open
		mustIOMode(n, g, h, pfs.MAsync)
	}
	mustSeek(n, h, int64(n.ID)*d.BodyRecord)
	mustWrite(n, h, d.BodyRecord)
	mustSeek(n, h, d.BodyBytes()+int64(n.ID)*d.TrailerSize)
	mustWrite(n, h, d.TrailerSize)
	mustClose(n, h)
	all.Barrier(n)
}

// ---- small panic-on-error helpers (a workload bug is a programming
// error, not a runtime condition to handle) ----

func mustOpen(n *workload.Node, file string, mode pfs.Mode) *pfs.Handle {
	h, err := n.M.FS.Open(n.P, n.ID, file, mode)
	if err != nil {
		panic(err)
	}
	return h
}

func mustGopen(n *workload.Node, g *pfs.Group, file string, mode pfs.Mode) *pfs.Handle {
	h, err := g.Gopen(n.P, n.ID, file, mode)
	if err != nil {
		panic(err)
	}
	return h
}

func mustIOMode(n *workload.Node, g *pfs.Group, h *pfs.Handle, mode pfs.Mode) {
	if err := g.SetIOMode(n.P, h, mode); err != nil {
		panic(err)
	}
}

func mustRead(n *workload.Node, h *pfs.Handle, size int64) {
	if _, err := h.Read(n.P, size); err != nil {
		panic(err)
	}
}

func mustWrite(n *workload.Node, h *pfs.Handle, size int64) {
	if _, err := h.Write(n.P, size); err != nil {
		panic(err)
	}
}

func mustSeek(n *workload.Node, h *pfs.Handle, off int64) {
	if err := h.Seek(n.P, off); err != nil {
		panic(err)
	}
}

func mustClose(n *workload.Node, h *pfs.Handle) {
	if err := h.Close(n.P); err != nil {
		panic(err)
	}
}
