package pablo

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryTracerMatchesBatchAnalysis(t *testing.T) {
	// Feed the same event stream to a full Trace and a SummaryTracer;
	// every summary the streaming path produces must equal the batch
	// computation.
	tr := NewTrace()
	st := NewSummaryTracer(time.Second)
	feed := func(ev Event) {
		tr.Record(ev)
		st.Record(ev)
	}
	feed(ev(0, OpOpen, "f", 0, 0, 0, 10*time.Millisecond))
	feed(ev(1, OpOpen, "g", 0, 0, 100*time.Millisecond, 10*time.Millisecond))
	for i := 0; i < 50; i++ {
		feed(ev(i%2, OpRead, "f", int64(i)*100, 100, time.Duration(i)*50*time.Millisecond, time.Millisecond))
	}
	for i := 0; i < 20; i++ {
		feed(ev(0, OpWrite, "g", int64(i)*4096, 4096, time.Duration(i)*100*time.Millisecond, 2*time.Millisecond))
	}
	feed(ev(0, OpClose, "f", 0, 0, 5*time.Second, 5*time.Millisecond))

	if st.Events() != tr.Len() {
		t.Fatalf("events = %d, want %d", st.Events(), tr.Len())
	}
	if st.Aggregate() != AggregateByOp(tr) {
		t.Fatalf("aggregate mismatch:\n%+v\n%+v", st.Aggregate(), AggregateByOp(tr))
	}
	batch := FileLifetimes(tr)
	stream := st.Lifetimes()
	if len(batch) != len(stream) {
		t.Fatalf("lifetime count: %d vs %d", len(stream), len(batch))
	}
	for name, b := range batch {
		s, ok := stream[name]
		if !ok {
			t.Fatalf("missing lifetime for %s", name)
		}
		if *s != *b {
			t.Fatalf("%s lifetime mismatch:\nstream %+v\nbatch  %+v", name, s, b)
		}
	}
	// Windows: counts must match TimeWindows over the same width for
	// non-empty windows.
	batchW := TimeWindows(tr, time.Second)
	var batchNonEmpty []WindowSummary
	for _, w := range batchW {
		if w.TotalCount() > 0 {
			batchNonEmpty = append(batchNonEmpty, w)
		}
	}
	streamW := st.Windows()
	if len(streamW) != len(batchNonEmpty) {
		t.Fatalf("windows: %d vs %d", len(streamW), len(batchNonEmpty))
	}
	for i := range streamW {
		if streamW[i].OpStats != batchNonEmpty[i].OpStats {
			t.Fatalf("window %d mismatch", i)
		}
	}
	// Histograms count every positive-size request.
	if st.ReadSizes().Total() != 50 || st.WriteSizes().Total() != 20 {
		t.Fatalf("histogram totals: %d/%d", st.ReadSizes().Total(), st.WriteSizes().Total())
	}
	if _, end := tr.Span(); st.Span() != end {
		t.Fatalf("span: %v vs %v", st.Span(), end)
	}
}

func TestSummaryTracerWindowedDisabled(t *testing.T) {
	st := NewSummaryTracer(0)
	st.Record(ev(0, OpRead, "f", 0, 10, 0, time.Millisecond))
	if st.Windows() != nil {
		t.Fatal("windows should be nil when disabled")
	}
}

func TestSummaryTracerPropertyEquivalence(t *testing.T) {
	// Random event streams: streaming aggregate == batch aggregate.
	f := func(raw []uint32) bool {
		tr := NewTrace()
		st := NewSummaryTracer(500 * time.Millisecond)
		for i, r := range raw {
			e := Event{
				Node:     int(r % 7),
				Op:       Op(r % uint32(numOps)),
				File:     []string{"a", "b", ""}[r%3],
				Offset:   int64(r % 10000),
				Size:     int64(r % 5000),
				Start:    time.Duration(i) * 7 * time.Millisecond,
				Duration: time.Duration(r%100) * time.Millisecond,
			}
			tr.Record(e)
			st.Record(e)
		}
		return st.Aggregate() == AggregateByOp(tr) && st.Events() == tr.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
