package pablo

import (
	"math/bits"
	"sync"
)

// Event-buffer pool. A full application run records hundreds of
// thousands of events, and the append-driven growth of each Trace's
// backing array dominated the byte volume of suite re-runs (about two
// thirds of the bytes behind BenchmarkTable2ESCATIOTime). Traces are
// short-lived in the paths that matter — the iosimd daemon and the
// report tables build a trace, analyse it, and drop it — so recycled
// power-of-two buffers turn that churn into a handful of pool hits.
//
// The pool is a mutex-guarded free list rather than a sync.Pool:
// Trace.Release is an explicit hand-back, the simulator records from
// one goroutine at a time, and a deterministic pool lets the
// AllocsPerRun regression test pin the steady state at ~zero
// allocations, which GC-emptied sync.Pool buckets cannot guarantee.
//
// Pooled buffers keep their contents (only the length is reset), so a
// retained buffer pins the file-name strings of the run that filled it;
// maxPoolBytes bounds that retention.

const (
	// minPooledEvents is the smallest pooled buffer capacity. Traces
	// below it double plainly (cheap, short-lived arrays) unless the
	// pool already holds a recycled buffer to jump to; from here up,
	// all growth is pooled.
	minPooledEvents = 1 << 10

	// maxPoolBytes caps the bytes the pool retains across all size
	// classes; beyond it, returned buffers fall to the GC.
	maxPoolBytes = 192 << 20

	eventBytes = 80 // approximate unsafe.Sizeof(Event{})
)

type eventPool struct {
	mu      sync.Mutex
	bytes   int64
	byClass map[int][][]Event // log2(cap) → free buffers
}

var sharedEventPool = eventPool{byClass: make(map[int][][]Event)}

// getEventBuf returns an empty buffer with the given power-of-two
// capacity, reusing a pooled one when available.
func getEventBuf(capacity int) []Event {
	if buf := tryGetEventBuf(capacity); buf != nil {
		return buf
	}
	return make([]Event, 0, capacity)
}

// tryGetEventBuf returns a pooled buffer of the given power-of-two
// capacity, or nil when the class is empty — it never allocates.
func tryGetEventBuf(capacity int) []Event {
	class := bits.TrailingZeros(uint(capacity))
	p := &sharedEventPool
	p.mu.Lock()
	defer p.mu.Unlock()
	bufs := p.byClass[class]
	if len(bufs) == 0 {
		return nil
	}
	buf := bufs[len(bufs)-1]
	p.byClass[class] = bufs[:len(bufs)-1]
	p.bytes -= int64(capacity) * eventBytes
	return buf
}

// putEventBuf returns a buffer to the pool. Buffers that were never
// pool-grown — nil, undersized, or non-power-of-two capacities from
// plain append (Filter-built traces) — are silently dropped, as is
// anything over the retention cap.
func putEventBuf(buf []Event) {
	c := cap(buf)
	if c < minPooledEvents || c&(c-1) != 0 {
		return
	}
	class := bits.TrailingZeros(uint(c))
	p := &sharedEventPool
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.bytes+int64(c)*eventBytes > maxPoolBytes {
		return
	}
	p.byClass[class] = append(p.byClass[class], buf[:0])
	p.bytes += int64(c) * eventBytes
}
