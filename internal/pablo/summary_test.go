package pablo

import (
	"testing"
	"time"
)

// buildLifecycleTrace: node 0 opens f at t=0 (10ms), reads 100B (20ms) at
// t=1s, closes at t=2s (5ms); node 1 opens f at t=0.5s, writes, never
// closes.
func buildLifecycleTrace() *Trace {
	tr := NewTrace()
	tr.Record(ev(0, OpOpen, "f", 0, 0, 0, 10*time.Millisecond))
	tr.Record(ev(1, OpOpen, "f", 0, 0, 500*time.Millisecond, 10*time.Millisecond))
	tr.Record(ev(0, OpRead, "f", 0, 100, time.Second, 20*time.Millisecond))
	tr.Record(ev(1, OpWrite, "f", 100, 60, 1500*time.Millisecond, 30*time.Millisecond))
	tr.Record(ev(0, OpClose, "f", 0, 0, 2*time.Second, 5*time.Millisecond))
	return tr
}

func TestFileLifetimes(t *testing.T) {
	ls := FileLifetimes(buildLifecycleTrace())
	s, ok := ls["f"]
	if !ok {
		t.Fatal("no summary for f")
	}
	if s.Count[OpOpen] != 2 || s.Count[OpRead] != 1 || s.Count[OpWrite] != 1 || s.Count[OpClose] != 1 {
		t.Fatalf("counts = %v", s.Count)
	}
	if s.BytesRead != 100 || s.BytesWritten != 60 {
		t.Fatalf("bytes = %d/%d", s.BytesRead, s.BytesWritten)
	}
	if s.FirstOpen != 0 {
		t.Fatalf("FirstOpen = %v", s.FirstOpen)
	}
	if s.LastClose != 2*time.Second+5*time.Millisecond {
		t.Fatalf("LastClose = %v", s.LastClose)
	}
	// Node 0's open interval: open end (10ms) -> close end (2.005s).
	if want := 2*time.Second + 5*time.Millisecond - 10*time.Millisecond; s.OpenTime != want {
		t.Fatalf("OpenTime = %v, want %v", s.OpenTime, want)
	}
}

func TestFileLifetimesMultipleFiles(t *testing.T) {
	tr := NewTrace()
	tr.Record(ev(0, OpRead, "a", 0, 1, 0, time.Millisecond))
	tr.Record(ev(0, OpRead, "b", 0, 2, 0, time.Millisecond))
	ls := FileLifetimes(tr)
	if len(ls) != 2 {
		t.Fatalf("got %d summaries", len(ls))
	}
	if ls["a"].BytesRead != 1 || ls["b"].BytesRead != 2 {
		t.Fatalf("per-file attribution wrong: %+v", ls)
	}
}

func TestTimeWindows(t *testing.T) {
	tr := NewTrace()
	// Events at t = 0s, 1.5s, 2.2s, 9.9s
	tr.Record(ev(0, OpRead, "f", 0, 10, 0, time.Millisecond))
	tr.Record(ev(0, OpRead, "f", 0, 20, 1500*time.Millisecond, time.Millisecond))
	tr.Record(ev(0, OpWrite, "f", 0, 30, 2200*time.Millisecond, time.Millisecond))
	tr.Record(ev(0, OpRead, "f", 0, 40, 9900*time.Millisecond, time.Millisecond))
	ws := TimeWindows(tr, time.Second)
	if len(ws) != 10 {
		t.Fatalf("got %d windows, want 10", len(ws))
	}
	if ws[0].Count[OpRead] != 1 || ws[1].Count[OpRead] != 1 || ws[2].Count[OpWrite] != 1 {
		t.Fatalf("window assignment wrong: %+v", ws[:3])
	}
	if ws[9].BytesRead != 40 {
		t.Fatalf("last window BytesRead = %d", ws[9].BytesRead)
	}
	for i := 3; i < 9; i++ {
		if ws[i].TotalCount() != 0 {
			t.Fatalf("window %d not empty", i)
		}
	}
}

func TestTimeWindowsConservation(t *testing.T) {
	tr := buildLifecycleTrace()
	for _, width := range []time.Duration{100 * time.Millisecond, time.Second, 10 * time.Second} {
		ws := TimeWindows(tr, width)
		var total OpStats
		for _, w := range ws {
			total.Merge(w.OpStats)
		}
		whole := AggregateByOp(tr)
		if total != whole {
			t.Fatalf("width %v: windows sum %+v != aggregate %+v", width, total, whole)
		}
	}
}

func TestTimeWindowsEmptyTrace(t *testing.T) {
	if ws := TimeWindows(NewTrace(), time.Second); ws != nil {
		t.Fatalf("windows of empty trace = %v", ws)
	}
}

func TestTimeWindowsBadWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for width 0")
		}
	}()
	TimeWindows(NewTrace(), 0)
}

func TestFileRegions(t *testing.T) {
	tr := NewTrace()
	tr.Record(ev(0, OpWrite, "f", 0, 100, 0, time.Millisecond))
	tr.Record(ev(0, OpWrite, "f", 1000, 100, 0, time.Millisecond))
	tr.Record(ev(0, OpRead, "f", 2500, 100, 0, time.Millisecond))
	tr.Record(ev(0, OpOpen, "f", 0, 0, 0, time.Millisecond)) // non-spatial: ignored
	rs := FileRegions(tr, "f", 1000)
	if len(rs) != 3 {
		t.Fatalf("got %d regions, want 3", len(rs))
	}
	if rs[0].Count[OpWrite] != 1 || rs[1].Count[OpWrite] != 1 || rs[2].Count[OpRead] != 1 {
		t.Fatalf("region assignment: %+v", rs)
	}
	if rs[0].Lo != 0 || rs[0].Hi != 1000 || rs[2].Lo != 2000 {
		t.Fatalf("region bounds: %+v", rs)
	}
}

func TestFileRegionsUnknownFile(t *testing.T) {
	tr := buildLifecycleTrace()
	if rs := FileRegions(tr, "nope", 100); rs != nil {
		t.Fatalf("regions for unknown file = %v", rs)
	}
}

func TestFileRegionsConservation(t *testing.T) {
	tr := NewTrace()
	offs := []int64{0, 64, 128, 4096, 65536, 65537, 1 << 20}
	for i, off := range offs {
		op := OpRead
		if i%2 == 1 {
			op = OpWrite
		}
		tr.Record(ev(i, op, "f", off, 64, 0, time.Millisecond))
	}
	for _, width := range []int64{64, 1000, 1 << 16, 1 << 21} {
		rs := FileRegions(tr, "f", width)
		var reads, writes int
		for _, r := range rs {
			reads += r.Count[OpRead]
			writes += r.Count[OpWrite]
		}
		if reads != 4 || writes != 3 {
			t.Fatalf("width %d: reads/writes = %d/%d", width, reads, writes)
		}
	}
}
