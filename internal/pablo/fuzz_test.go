package pablo

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// FuzzReadTrace hardens the text codec against malformed input: any
// byte stream must either parse into a trace that re-serializes cleanly
// or return an error — never panic.
func FuzzReadTrace(f *testing.F) {
	var seed bytes.Buffer
	tr := NewTrace()
	tr.Record(Event{Node: 1, Op: OpRead, File: "a b", Offset: 3, Size: 4,
		Start: time.Second, Duration: time.Millisecond, Mode: "M_UNIX"})
	if err := WriteTrace(&seed, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("")
	f.Add(codecMagic + "\n" + codecHeader + "\n")
	f.Add(codecMagic + "\n" + codecHeader + "\nIOEVT 0 read \"f\" 0 0 0 0 -\n")
	f.Add(codecMagic + "\n" + codecHeader + "\nIOEVT x y z\n")
	f.Fuzz(func(t *testing.T, input string) {
		got, err := ReadTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		// Whatever parsed must round-trip.
		var buf bytes.Buffer
		if err := WriteTrace(&buf, got); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		again, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.Len() != got.Len() {
			t.Fatalf("round-trip changed length: %d -> %d", got.Len(), again.Len())
		}
	})
}

// FuzzReadTraceBinary does the same for the binary codec.
func FuzzReadTraceBinary(f *testing.F) {
	var seed bytes.Buffer
	tr := NewTrace()
	tr.Record(Event{Node: 1, Op: OpWrite, File: "f", Offset: 100, Size: 200,
		Start: time.Second, Duration: time.Millisecond, Mode: "M_ASYNC"})
	if err := WriteTraceBinary(&seed, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("PIOB"))
	f.Add([]byte("PIOB\x01\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, input []byte) {
		got, err := ReadTraceBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		for _, ev := range got.Events() {
			if ev.Op < 0 || ev.Op >= numOps {
				t.Fatalf("parsed invalid op %d", ev.Op)
			}
			if ev.Offset < 0 || ev.Size < 0 || ev.Start < 0 || ev.Duration < 0 {
				t.Fatalf("parsed negative field: %+v", ev)
			}
		}
		var buf bytes.Buffer
		if err := WriteTraceBinary(&buf, got); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		again, err := ReadTraceBinary(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.Len() != got.Len() {
			t.Fatalf("round-trip changed length: %d -> %d", got.Len(), again.Len())
		}
	})
}
