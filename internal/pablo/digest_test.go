package pablo

import (
	"hash/fnv"
	"testing"
	"time"
)

// referenceDigest re-walks a trace with hash/fnv exactly the way the
// original Digest implementation did — the incremental path must match
// it byte for byte or every pinned golden digest would move.
func referenceDigest(events []Event) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, ev := range events {
		u64(uint64(ev.Node))
		u64(uint64(ev.Op))
		h.Write([]byte(ev.File))
		u64(uint64(ev.Offset))
		u64(uint64(ev.Size))
		u64(uint64(ev.Start))
		u64(uint64(ev.Duration))
		h.Write([]byte(ev.Mode))
	}
	return h.Sum64()
}

func sampleEvents() []Event {
	return []Event{
		{Node: 0, Op: OpOpen, File: "input", Start: time.Millisecond, Duration: 40 * time.Microsecond, Mode: "M_UNIX"},
		{Node: 3, Op: OpRead, File: "input", Offset: 4096, Size: 65536, Start: 2 * time.Millisecond, Duration: 12 * time.Millisecond, Mode: "M_UNIX"},
		{Node: 3, Op: OpSeek, File: "input", Offset: 1 << 20, Start: 15 * time.Millisecond, Duration: 30 * time.Microsecond, Mode: "M_RECORD"},
		{Node: 7, Op: OpWrite, File: "out.chk", Offset: -8, Size: 1 << 17, Start: 20 * time.Millisecond, Duration: 9 * time.Millisecond},
		{Node: 511, Op: OpClose, File: "out.chk", Start: time.Second, Duration: time.Microsecond, Mode: "M_ASYNC"},
	}
}

// TestDigestMatchesReference checks the incremental digest reproduces the
// original full-rewalk FNV-1a stream, including the empty trace.
func TestDigestMatchesReference(t *testing.T) {
	tr := NewTrace()
	if got, want := tr.Digest(), referenceDigest(nil); got != want {
		t.Fatalf("empty: %#x, reference %#x", got, want)
	}
	for i, ev := range sampleEvents() {
		tr.Record(ev)
		if got, want := tr.Digest(), referenceDigest(tr.Events()); got != want {
			t.Fatalf("after %d events: %#x, reference %#x", i+1, got, want)
		}
	}
}

// TestDigestAfterFilter checks traces built by direct appends (Filter)
// still digest correctly via the lazy catch-up.
func TestDigestAfterFilter(t *testing.T) {
	tr := NewTrace()
	for _, ev := range sampleEvents() {
		tr.Record(ev)
	}
	sub := tr.Filter(func(ev Event) bool { return ev.Op == OpRead || ev.Op == OpWrite })
	if sub.Len() != 2 {
		t.Fatalf("filtered %d events, want 2", sub.Len())
	}
	if got, want := sub.Digest(), referenceDigest(sub.Events()); got != want {
		t.Fatalf("filtered digest %#x, reference %#x", got, want)
	}
	// Digesting the subset must not disturb the parent.
	if got, want := tr.Digest(), referenceDigest(tr.Events()); got != want {
		t.Fatalf("parent digest %#x, reference %#x", got, want)
	}
}

// TestDigestTracerMatchesTrace checks the retain-nothing tracer and an
// in-memory trace agree on every prefix.
func TestDigestTracerMatchesTrace(t *testing.T) {
	dt := NewDigestTracer()
	tr := NewTrace()
	if dt.Digest() != tr.Digest() {
		t.Fatalf("empty: tracer %#x, trace %#x", dt.Digest(), tr.Digest())
	}
	for i, ev := range sampleEvents() {
		dt.Record(ev)
		tr.Record(ev)
		if dt.Digest() != tr.Digest() {
			t.Fatalf("after %d events: tracer %#x, trace %#x", i+1, dt.Digest(), tr.Digest())
		}
		if dt.Len() != i+1 {
			t.Fatalf("tracer Len = %d, want %d", dt.Len(), i+1)
		}
	}
}

// TestDigestTracerZeroAlloc pins that the streaming digest's Record path
// is allocation-free — it can sit on the kernel's tracing hot path for
// arbitrarily large runs without GC pressure.
func TestDigestTracerZeroAlloc(t *testing.T) {
	d := NewDigestTracer()
	ev := Event{Node: 2, Op: OpRead, File: "escat/input.0", Offset: 4096,
		Size: 622, Start: time.Millisecond, Duration: 450 * time.Microsecond,
		Mode: "M_UNIX"}
	if allocs := testing.AllocsPerRun(100, func() { d.Record(ev) }); allocs != 0 {
		t.Fatalf("DigestTracer.Record allocates %.1f times per event, want 0", allocs)
	}
}
