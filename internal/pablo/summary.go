package pablo

import (
	"sort"
	"time"
)

// OpStats accumulates per-operation counts and durations.
type OpStats struct {
	Count    [numOps]int
	Duration [numOps]time.Duration
	// Bytes moved by reads and writes.
	BytesRead    int64
	BytesWritten int64
}

// Add folds one event into the stats.
func (s *OpStats) Add(ev Event) {
	if ev.Op < 0 || ev.Op >= numOps {
		return
	}
	s.Count[ev.Op]++
	s.Duration[ev.Op] += ev.Duration
	switch ev.Op {
	case OpRead:
		s.BytesRead += ev.Size
	case OpWrite:
		s.BytesWritten += ev.Size
	}
}

// Merge folds another OpStats into the receiver. Merge is associative and
// commutative, so summaries may be combined in any grouping.
func (s *OpStats) Merge(o OpStats) {
	for i := 0; i < int(numOps); i++ {
		s.Count[i] += o.Count[i]
		s.Duration[i] += o.Duration[i]
	}
	s.BytesRead += o.BytesRead
	s.BytesWritten += o.BytesWritten
}

// TotalCount returns the number of operations across all types.
func (s *OpStats) TotalCount() int {
	var n int
	for _, c := range s.Count {
		n += c
	}
	return n
}

// TotalDuration returns the summed duration across all operation types.
func (s *OpStats) TotalDuration() time.Duration {
	var d time.Duration
	for _, v := range s.Duration {
		d += v
	}
	return d
}

// Percent returns each operation's share of total duration, in percent,
// indexed by Op. A zero total yields all zeros.
func (s *OpStats) Percent() [numOps]float64 {
	var out [numOps]float64
	total := s.TotalDuration()
	if total == 0 {
		return out
	}
	for i, d := range s.Duration {
		out[i] = 100 * float64(d) / float64(total)
	}
	return out
}

// LifetimeSummary is Pablo's "file lifetime" statistical summary: the
// number and total duration of each operation type on one file, the bytes
// accessed, and the total time the file was open.
type LifetimeSummary struct {
	File string
	OpStats
	FirstOpen time.Duration // start of the first open/gopen
	LastClose time.Duration // end of the last close (0 if never closed)
	OpenTime  time.Duration // summed per-node open->close intervals
}

// FileLifetimes computes a lifetime summary per file. Open intervals are
// accumulated per (node, file): each open/gopen on a node begins an
// interval ended by that node's next close.
func FileLifetimes(t *Trace) map[string]*LifetimeSummary {
	out := make(map[string]*LifetimeSummary)
	type key struct {
		node int
		file string
	}
	openAt := make(map[key]time.Duration)
	get := func(file string) *LifetimeSummary {
		s := out[file]
		if s == nil {
			s = &LifetimeSummary{File: file, FirstOpen: -1}
			out[file] = s
		}
		return s
	}
	for _, ev := range t.Events() {
		if ev.File == "" {
			continue
		}
		s := get(ev.File)
		s.Add(ev)
		switch ev.Op {
		case OpOpen, OpGopen:
			if s.FirstOpen < 0 || ev.Start < s.FirstOpen {
				s.FirstOpen = ev.Start
			}
			openAt[key{ev.Node, ev.File}] = ev.End()
		case OpClose:
			if at, ok := openAt[key{ev.Node, ev.File}]; ok {
				s.OpenTime += ev.End() - at
				delete(openAt, key{ev.Node, ev.File})
			}
			if ev.End() > s.LastClose {
				s.LastClose = ev.End()
			}
		}
	}
	for _, s := range out {
		if s.FirstOpen < 0 {
			s.FirstOpen = 0
		}
	}
	return out
}

// WindowSummary is Pablo's "time window" summary: per-operation activity
// within [Start, End).
type WindowSummary struct {
	Start, End time.Duration
	OpStats
}

// TimeWindows partitions the trace's span into windows of the given width
// and summarizes each. Events are assigned to the window containing their
// start time. Width must be positive. Empty traces yield nil.
func TimeWindows(t *Trace, width time.Duration) []WindowSummary {
	if width <= 0 {
		panic("pablo: non-positive window width")
	}
	if t.Len() == 0 {
		return nil
	}
	start, end := t.Span()
	n := int((end-start)/width) + 1
	out := make([]WindowSummary, n)
	for i := range out {
		out[i].Start = start + time.Duration(i)*width
		out[i].End = out[i].Start + width
	}
	for _, ev := range t.Events() {
		i := int((ev.Start - start) / width)
		if i >= n {
			i = n - 1
		}
		out[i].Add(ev)
	}
	return out
}

// RegionSummary is Pablo's "file region" summary: activity against one
// byte range [Lo, Hi) of a file — the spatial analog of a time window.
type RegionSummary struct {
	File   string
	Lo, Hi int64
	OpStats
}

// FileRegions partitions the accessed extent of one file into regions of
// the given byte width and summarizes read/write/seek activity against
// each. Events are assigned by their starting offset. Width must be
// positive. Files never accessed yield nil.
func FileRegions(t *Trace, file string, width int64) []RegionSummary {
	if width <= 0 {
		panic("pablo: non-positive region width")
	}
	var hi int64 = -1
	evs := t.ByFile(file)
	for _, ev := range evs {
		switch ev.Op {
		case OpRead, OpWrite, OpSeek:
			if end := ev.Offset + ev.Size; end > hi {
				hi = end
			}
			if ev.Offset > hi {
				hi = ev.Offset
			}
		}
	}
	if hi < 0 {
		return nil
	}
	n := int(hi/width) + 1
	out := make([]RegionSummary, n)
	for i := range out {
		out[i] = RegionSummary{File: file, Lo: int64(i) * width, Hi: int64(i+1) * width}
	}
	for _, ev := range evs {
		switch ev.Op {
		case OpRead, OpWrite, OpSeek:
			i := int(ev.Offset / width)
			if i >= n {
				i = n - 1
			}
			out[i].Add(ev)
		}
	}
	return out
}

// AggregateByOp folds the whole trace into a single OpStats — the input
// to the paper's aggregate I/O performance tables.
func AggregateByOp(t *Trace) OpStats {
	var s OpStats
	for _, ev := range t.Events() {
		s.Add(ev)
	}
	return s
}

// NodesActive returns the sorted list of node ids that issued at least
// one event in the trace.
func NodesActive(t *Trace) []int {
	seen := make(map[int]bool)
	for _, ev := range t.Events() {
		seen[ev.Node] = true
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}
