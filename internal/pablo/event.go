// Package pablo reimplements the capture side of the Pablo performance
// analysis environment as used in the paper: detailed per-operation I/O
// event traces plus the three statistical summary forms the paper names
// (file lifetime, time window, and file region summaries), and a portable
// self-describing text codec for offline analysis.
//
// The simulated file system records one Event per I/O operation; the
// analysis layer consumes traces to regenerate the paper's tables and
// figures.
package pablo

import (
	"fmt"
	"time"
)

// Op identifies an I/O operation type. The set matches the operation rows
// of the paper's Tables 2, 3 and 5.
type Op int

const (
	OpOpen Op = iota
	OpGopen
	OpRead
	OpSeek
	OpWrite
	OpIOMode
	OpFlush
	OpClose
	numOps
)

// Ops lists all operation types in table order.
func Ops() []Op {
	out := make([]Op, numOps)
	for i := range out {
		out[i] = Op(i)
	}
	return out
}

var opNames = [...]string{
	OpOpen:   "open",
	OpGopen:  "gopen",
	OpRead:   "read",
	OpSeek:   "seek",
	OpWrite:  "write",
	OpIOMode: "iomode",
	OpFlush:  "flush",
	OpClose:  "close",
}

// String returns the operation's table-row name.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// ParseOp converts a table-row name back to an Op.
func ParseOp(s string) (Op, error) {
	for i, n := range opNames {
		if n == s {
			return Op(i), nil
		}
	}
	return 0, fmt.Errorf("pablo: unknown op %q", s)
}

// Event is one captured I/O operation: who, what, where, when, how long.
type Event struct {
	Node     int           // compute node issuing the operation
	Op       Op            // operation type
	File     string        // file name ("" for operations without one)
	Offset   int64         // file offset (reads/writes/seeks)
	Size     int64         // payload bytes (reads/writes), else 0
	Start    time.Duration // virtual time at operation start
	Duration time.Duration // operation duration (includes queueing/sync)
	Mode     string        // file access mode in effect ("" if none)
}

// End returns the event's completion time.
func (e Event) End() time.Duration { return e.Start + e.Duration }

// Tracer consumes events as they are generated.
type Tracer interface {
	Record(Event)
}

// Discard is a Tracer that drops all events (for untraced runs and
// benchmarks of the simulator itself).
var Discard Tracer = discard{}

type discard struct{}

func (discard) Record(Event) {}

// Trace is an in-memory event recorder and the unit of analysis. It is
// not safe for concurrent use; the simulation kernel is single-threaded
// by construction.
type Trace struct {
	events []Event

	// dig/hashed carry the incremental FNV-1a stream digest: events
	// [0, hashed) are already folded in (see digest.go).
	dig    digestState
	hashed int
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Record implements Tracer. The stream digest is maintained
// incrementally, so recording is O(1) amortized and Digest never
// re-walks the trace. Backing-array growth goes through the event-buffer
// pool (see pool.go), so a Released trace's re-run recycles instead of
// reallocating.
func (t *Trace) Record(ev Event) {
	if len(t.events) == cap(t.events) {
		t.grow()
	}
	t.events = append(t.events, ev)
	t.catchUp()
}

// grow doubles the backing array, recycling the old buffer when it is
// itself pool-shaped. Below the minimum pooled size a warm pool hands
// over a recycled buffer for free, but a cold pool means plain
// doubling — a short run never pays an allocation the size of a
// pool-class buffer. From the minimum pooled size up, growth goes
// through the pool.
func (t *Trace) grow() {
	newCap := 2 * cap(t.events)
	if newCap < minPooledEvents {
		if buf := tryGetEventBuf(minPooledEvents); buf != nil {
			t.events = append(buf, t.events...)
			return
		}
		if newCap == 0 {
			newCap = 8
		}
		t.events = append(make([]Event, 0, newCap), t.events...)
		return
	}
	buf := getEventBuf(newCap)[:len(t.events)]
	copy(buf, t.events)
	putEventBuf(t.events)
	t.events = buf
}

// Release returns the trace's backing buffer to the event pool and
// resets the trace to empty. Call it only when every view obtained from
// Events()/Filter-by-reference is dead: the buffer will be handed to
// the next recording run, which overwrites it. Release is the opt-in
// hand-back for high-churn paths (suite re-runs, the iosimd daemon);
// traces that simply fall out of scope remain garbage-collected as
// before.
func (t *Trace) Release() {
	putEventBuf(t.events)
	t.events = nil
	t.dig = 0
	t.hashed = 0
}

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.events) }

// Events returns the recorded events in capture order. The slice is the
// trace's backing store; callers must not modify it.
func (t *Trace) Events() []Event { return t.events }

// Filter returns a new trace holding the events for which pred is true,
// preserving order.
func (t *Trace) Filter(pred func(Event) bool) *Trace {
	out := &Trace{}
	for _, ev := range t.events {
		if pred(ev) {
			out.events = append(out.events, ev)
		}
	}
	return out
}

// ByOp returns the events of one operation type, in capture order.
func (t *Trace) ByOp(op Op) []Event {
	var out []Event
	for _, ev := range t.events {
		if ev.Op == op {
			out = append(out, ev)
		}
	}
	return out
}

// ByFile returns the events touching the named file, in capture order.
func (t *Trace) ByFile(file string) []Event {
	var out []Event
	for _, ev := range t.events {
		if ev.File == file {
			out = append(out, ev)
		}
	}
	return out
}

// ByNode returns the events issued by one node, in capture order.
func (t *Trace) ByNode(node int) []Event {
	var out []Event
	for _, ev := range t.events {
		if ev.Node == node {
			out = append(out, ev)
		}
	}
	return out
}

// Files returns the distinct file names appearing in the trace, in first-
// appearance order.
func (t *Trace) Files() []string {
	seen := make(map[string]bool)
	var out []string
	for _, ev := range t.events {
		if ev.File != "" && !seen[ev.File] {
			seen[ev.File] = true
			out = append(out, ev.File)
		}
	}
	return out
}

// Span returns the earliest start and latest end across all events, or
// zeros for an empty trace.
func (t *Trace) Span() (start, end time.Duration) {
	if len(t.events) == 0 {
		return 0, 0
	}
	start = t.events[0].Start
	for _, ev := range t.events {
		if ev.Start < start {
			start = ev.Start
		}
		if e := ev.End(); e > end {
			end = e
		}
	}
	return start, end
}

// TotalIOTime returns the summed duration of all events — the
// denominator of the paper's "% of total I/O time" tables. Overlapping
// operations on different nodes are counted once each, exactly as Pablo's
// aggregate summaries do.
func (t *Trace) TotalIOTime() time.Duration {
	var sum time.Duration
	for _, ev := range t.events {
		sum += ev.Duration
	}
	return sum
}
