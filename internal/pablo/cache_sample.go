package pablo

import (
	"fmt"
	"time"

	"paragonio/internal/sddf"
)

// CacheSample is one per-I/O-node snapshot of the what-if cache
// hierarchy (internal/cache), the second record stream cache experiments
// carry beside io-events. Fields mirror cache.Stats / cache.ClientStats
// but are kept plain here so the trace layer does not depend on the
// cache subsystem. The client-tier fields are tier-wide (the client
// cache is per compute node, not per I/O node), so writers repeat them
// on each record of a sampling instant and readers take any one.
type CacheSample struct {
	T      time.Duration
	IONode int
	Hits   int64
	Misses int64
	Dirty  int64 // instantaneous dirty-block (write-behind) queue depth
	Stalls int64 // forced-flush stalls so far
	RAUsed int64 // prefetched blocks later demanded
	RAIss  int64 // prefetched blocks issued

	// Client tier (zero when disabled; absent in pre-client streams and
	// parsed as zero for backward compatibility).
	ClientHits   int64 // client block lookups served node-locally
	ClientMisses int64 // client block lookups sent to the PFS data path
	Recalls      int64 // lease recalls delivered to peer holders
	StaleAverted int64 // recalled blocks resident at the holder (stale reads averted)
}

// CacheSampleDescriptor returns the cache-sample record type (tag 2).
func CacheSampleDescriptor() *sddf.Descriptor {
	return &sddf.Descriptor{
		Tag: 2, Name: "cache-sample",
		Fields: []sddf.Field{
			{Name: "t_ns", Type: sddf.Int},
			{Name: "ionode", Type: sddf.Int},
			{Name: "hits", Type: sddf.Int},
			{Name: "misses", Type: sddf.Int},
			{Name: "dirty", Type: sddf.Int},
			{Name: "stalls", Type: sddf.Int},
			{Name: "ra_used", Type: sddf.Int},
			{Name: "ra_issued", Type: sddf.Int},
			{Name: "client_hits", Type: sddf.Int},
			{Name: "client_misses", Type: sddf.Int},
			{Name: "recalls", Type: sddf.Int},
			{Name: "stale_averted", Type: sddf.Int},
		},
	}
}

// CacheSampleRecord converts a sample into a cache-sample record.
func CacheSampleRecord(desc *sddf.Descriptor, s CacheSample) (sddf.Record, error) {
	return sddf.NewRecord(desc,
		int64(s.T), int64(s.IONode), s.Hits, s.Misses, s.Dirty,
		s.Stalls, s.RAUsed, s.RAIss,
		s.ClientHits, s.ClientMisses, s.Recalls, s.StaleAverted)
}

// CacheSampleFromRecord parses a cache-sample record back. The client-
// tier fields are optional: records written before the client tier
// existed parse with them zero.
func CacheSampleFromRecord(rec sddf.Record) (CacheSample, error) {
	var s CacheSample
	if rec.Desc == nil || rec.Desc.Name != "cache-sample" {
		return s, fmt.Errorf("pablo: record is not a cache-sample")
	}
	t, ok1 := rec.Int("t_ns")
	ion, ok2 := rec.Int("ionode")
	hits, ok3 := rec.Int("hits")
	misses, ok4 := rec.Int("misses")
	dirty, ok5 := rec.Int("dirty")
	stalls, ok6 := rec.Int("stalls")
	raUsed, ok7 := rec.Int("ra_used")
	raIss, ok8 := rec.Int("ra_issued")
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7 && ok8) {
		return s, fmt.Errorf("pablo: cache-sample record missing fields")
	}
	s = CacheSample{
		T: time.Duration(t), IONode: int(ion), Hits: hits, Misses: misses,
		Dirty: dirty, Stalls: stalls, RAUsed: raUsed, RAIss: raIss,
	}
	s.ClientHits, _ = rec.Int("client_hits")
	s.ClientMisses, _ = rec.Int("client_misses")
	s.Recalls, _ = rec.Int("recalls")
	s.StaleAverted, _ = rec.Int("stale_averted")
	return s, nil
}
