package pablo

import (
	"fmt"
	"time"

	"paragonio/internal/sddf"
)

// CacheSample is one per-I/O-node snapshot of the what-if buffer cache
// (internal/cache), the second record stream cache experiments carry
// beside io-events. Fields mirror cache.Stats but are kept plain here so
// the trace layer does not depend on the cache subsystem.
type CacheSample struct {
	T      time.Duration
	IONode int
	Hits   int64
	Misses int64
	Dirty  int64 // instantaneous dirty-block (write-behind) queue depth
	Stalls int64 // forced-flush stalls so far
	RAUsed int64 // prefetched blocks later demanded
	RAIss  int64 // prefetched blocks issued
}

// CacheSampleDescriptor returns the cache-sample record type (tag 2).
func CacheSampleDescriptor() *sddf.Descriptor {
	return &sddf.Descriptor{
		Tag: 2, Name: "cache-sample",
		Fields: []sddf.Field{
			{Name: "t_ns", Type: sddf.Int},
			{Name: "ionode", Type: sddf.Int},
			{Name: "hits", Type: sddf.Int},
			{Name: "misses", Type: sddf.Int},
			{Name: "dirty", Type: sddf.Int},
			{Name: "stalls", Type: sddf.Int},
			{Name: "ra_used", Type: sddf.Int},
			{Name: "ra_issued", Type: sddf.Int},
		},
	}
}

// CacheSampleRecord converts a sample into a cache-sample record.
func CacheSampleRecord(desc *sddf.Descriptor, s CacheSample) (sddf.Record, error) {
	return sddf.NewRecord(desc,
		int64(s.T), int64(s.IONode), s.Hits, s.Misses, s.Dirty,
		s.Stalls, s.RAUsed, s.RAIss)
}

// CacheSampleFromRecord parses a cache-sample record back.
func CacheSampleFromRecord(rec sddf.Record) (CacheSample, error) {
	var s CacheSample
	if rec.Desc == nil || rec.Desc.Name != "cache-sample" {
		return s, fmt.Errorf("pablo: record is not a cache-sample")
	}
	t, ok1 := rec.Int("t_ns")
	ion, ok2 := rec.Int("ionode")
	hits, ok3 := rec.Int("hits")
	misses, ok4 := rec.Int("misses")
	dirty, ok5 := rec.Int("dirty")
	stalls, ok6 := rec.Int("stalls")
	raUsed, ok7 := rec.Int("ra_used")
	raIss, ok8 := rec.Int("ra_issued")
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7 && ok8) {
		return s, fmt.Errorf("pablo: cache-sample record missing fields")
	}
	return CacheSample{
		T: time.Duration(t), IONode: int(ion), Hits: hits, Misses: misses,
		Dirty: dirty, Stalls: stalls, RAUsed: raUsed, RAIss: raIss,
	}, nil
}
