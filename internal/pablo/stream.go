package pablo

import (
	"sort"
	"time"

	"paragonio/internal/stats"
)

// SummaryTracer is Pablo's "data analysis extension" capture path: instead
// of recording every event for later analysis, it reduces the stream
// online — aggregate per-operation statistics, per-file lifetime
// summaries, request-size histograms, and fixed-width time-window
// activity — in bounded memory. Use it for runs whose full event streams
// would be too large to keep (the reason the real Pablo offered this).
//
// SummaryTracer implements Tracer and can be used anywhere a Trace would
// be, at the cost of losing per-event detail.
type SummaryTracer struct {
	window time.Duration

	agg      OpStats
	byFile   map[string]*LifetimeSummary
	openAt   map[nodeFile]time.Duration
	readHist *stats.LogHistogram
	writHist *stats.LogHistogram
	windows  map[int64]*WindowSummary

	events int
	maxEnd time.Duration
}

type nodeFile struct {
	node int
	file string
}

// NewSummaryTracer creates a streaming tracer with the given time-window
// width (window <= 0 disables windowed accounting).
func NewSummaryTracer(window time.Duration) *SummaryTracer {
	return &SummaryTracer{
		window:   window,
		byFile:   make(map[string]*LifetimeSummary),
		openAt:   make(map[nodeFile]time.Duration),
		readHist: &stats.LogHistogram{},
		writHist: &stats.LogHistogram{},
		windows:  make(map[int64]*WindowSummary),
	}
}

// Record implements Tracer.
func (s *SummaryTracer) Record(ev Event) {
	s.events++
	s.agg.Add(ev)
	if end := ev.End(); end > s.maxEnd {
		s.maxEnd = end
	}
	if ev.File != "" {
		f := s.byFile[ev.File]
		if f == nil {
			f = &LifetimeSummary{File: ev.File, FirstOpen: -1}
			s.byFile[ev.File] = f
		}
		f.Add(ev)
		switch ev.Op {
		case OpOpen, OpGopen:
			if f.FirstOpen < 0 || ev.Start < f.FirstOpen {
				f.FirstOpen = ev.Start
			}
			s.openAt[nodeFile{ev.Node, ev.File}] = ev.End()
		case OpClose:
			if at, ok := s.openAt[nodeFile{ev.Node, ev.File}]; ok {
				f.OpenTime += ev.End() - at
				delete(s.openAt, nodeFile{ev.Node, ev.File})
			}
			if ev.End() > f.LastClose {
				f.LastClose = ev.End()
			}
		}
	}
	switch ev.Op {
	case OpRead:
		if ev.Size > 0 {
			s.readHist.Add(ev.Size)
		}
	case OpWrite:
		if ev.Size > 0 {
			s.writHist.Add(ev.Size)
		}
	}
	if s.window > 0 {
		idx := int64(ev.Start / s.window)
		w := s.windows[idx]
		if w == nil {
			w = &WindowSummary{
				Start: time.Duration(idx) * s.window,
				End:   time.Duration(idx+1) * s.window,
			}
			s.windows[idx] = w
		}
		w.Add(ev)
	}
}

// Events returns the number of events consumed.
func (s *SummaryTracer) Events() int { return s.events }

// Aggregate returns the overall per-operation statistics.
func (s *SummaryTracer) Aggregate() OpStats { return s.agg }

// Lifetimes returns the per-file lifetime summaries.
func (s *SummaryTracer) Lifetimes() map[string]*LifetimeSummary {
	out := make(map[string]*LifetimeSummary, len(s.byFile))
	for k, v := range s.byFile {
		cp := *v
		if cp.FirstOpen < 0 {
			cp.FirstOpen = 0
		}
		out[k] = &cp
	}
	return out
}

// ReadSizes returns the read request-size histogram.
func (s *SummaryTracer) ReadSizes() *stats.LogHistogram { return s.readHist }

// WriteSizes returns the write request-size histogram.
func (s *SummaryTracer) WriteSizes() *stats.LogHistogram { return s.writHist }

// Windows returns the non-empty time-window summaries in order. Nil when
// windowed accounting is disabled.
func (s *SummaryTracer) Windows() []WindowSummary {
	if s.window <= 0 || len(s.windows) == 0 {
		return nil
	}
	idxs := make([]int64, 0, len(s.windows))
	for i := range s.windows {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	out := make([]WindowSummary, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, *s.windows[i])
	}
	return out
}

// Span returns the latest event end time seen.
func (s *SummaryTracer) Span() time.Duration { return s.maxEnd }
