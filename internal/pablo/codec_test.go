package pablo

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCodecRoundTrip(t *testing.T) {
	tr := NewTrace()
	tr.Record(Event{Node: 0, Op: OpOpen, File: "init.params", Start: 1200,
		Duration: 450000, Mode: "M_UNIX"})
	tr.Record(Event{Node: 127, Op: OpRead, File: "quad stage/file 0",
		Offset: 131072, Size: 131072, Start: time.Second, Duration: time.Millisecond,
		Mode: "M_RECORD"})
	tr.Record(Event{Node: 3, Op: OpSeek, File: `weird "name"\with\escapes`,
		Offset: 42, Start: 2 * time.Second, Duration: time.Microsecond})
	tr.Record(Event{Node: 1, Op: OpClose, File: "", Start: 3 * time.Second})

	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round-trip Len = %d, want %d", got.Len(), tr.Len())
	}
	for i, want := range tr.Events() {
		if got.Events()[i] != want {
			t.Fatalf("event %d: got %+v, want %+v", i, got.Events()[i], want)
		}
	}
}

func TestCodecEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, NewTrace()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("Len = %d", got.Len())
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad magic":       "#SDDF other v9\n" + codecHeader + "\n",
		"missing header":  codecMagic + "\n",
		"wrong header":    codecMagic + "\nIOEVT something else\n",
		"bad record tag":  codecMagic + "\n" + codecHeader + "\nNOPE 1 read \"f\" 0 0 0 0 -\n",
		"bad op":          codecMagic + "\n" + codecHeader + "\nIOEVT 1 frobnicate \"f\" 0 0 0 0 -\n",
		"bad node":        codecMagic + "\n" + codecHeader + "\nIOEVT x read \"f\" 0 0 0 0 -\n",
		"unquoted file":   codecMagic + "\n" + codecHeader + "\nIOEVT 1 read f 0 0 0 0 -\n",
		"unterminated":    codecMagic + "\n" + codecHeader + "\nIOEVT 1 read \"f 0 0 0 0 -\n",
		"truncated":       codecMagic + "\n" + codecHeader + "\nIOEVT 1 read \"f\" 0 0\n",
		"bad number":      codecMagic + "\n" + codecHeader + "\nIOEVT 1 read \"f\" zero 0 0 0 -\n",
		"trailing fields": codecMagic + "\n" + codecHeader + "\nIOEVT 1 read \"f\" 0 0 0 0 - extra\n",
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadTrace(strings.NewReader(input)); err == nil {
				t.Fatalf("ReadTrace accepted %q", input)
			}
		})
	}
}

func TestCodecSkipsBlankLines(t *testing.T) {
	text := codecMagic + "\n\n" + codecHeader + "\n\nIOEVT 1 read \"f\" 0 8 9 10 M_ASYNC\n\n"
	tr, err := ReadTrace(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.Events()[0].Mode != "M_ASYNC" {
		t.Fatalf("parsed %+v", tr.Events())
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(node uint8, opIdx uint8, file string, off, size uint32, start, dur uint32, modeIdx uint8) bool {
		modes := []string{"", "M_UNIX", "M_RECORD", "M_ASYNC", "M_GLOBAL", "M_SYNC", "M_LOG"}
		in := Event{
			Node:     int(node),
			Op:       Op(int(opIdx) % int(numOps)),
			File:     strings.ReplaceAll(file, "\n", " "), // names are single-line
			Offset:   int64(off),
			Size:     int64(size),
			Start:    time.Duration(start),
			Duration: time.Duration(dur),
			Mode:     modes[int(modeIdx)%len(modes)],
		}
		tr := NewTrace()
		tr.Record(in)
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			return false
		}
		out, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		return out.Len() == 1 && out.Events()[0] == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecLargeTrace(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < 10000; i++ {
		tr.Record(Event{Node: i % 128, Op: Op(i % int(numOps)), File: "bulk",
			Offset: int64(i) * 64, Size: 64, Start: time.Duration(i) * time.Microsecond,
			Duration: time.Microsecond, Mode: "M_ASYNC"})
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), tr.Len())
	}
}
