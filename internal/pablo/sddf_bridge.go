package pablo

import (
	"errors"
	"fmt"
	"io"
	"time"

	"paragonio/internal/sddf"
)

// Bridge between the fixed-schema trace and the generic self-describing
// stream format: I/O events become one record type among arbitrarily
// many, so traces can travel alongside other instrumentation records
// (utilization samples, counters) in one stream.

// EventDescriptor returns the io-event record type (tag 1).
func EventDescriptor() *sddf.Descriptor {
	return &sddf.Descriptor{
		Tag: 1, Name: "io-event",
		Fields: []sddf.Field{
			{Name: "node", Type: sddf.Int},
			{Name: "op", Type: sddf.String},
			{Name: "file", Type: sddf.String},
			{Name: "offset", Type: sddf.Int},
			{Name: "size", Type: sddf.Int},
			{Name: "start_ns", Type: sddf.Int},
			{Name: "dur_ns", Type: sddf.Int},
			{Name: "mode", Type: sddf.String},
		},
	}
}

// EventRecord converts an event into an io-event record under desc.
func EventRecord(desc *sddf.Descriptor, ev Event) (sddf.Record, error) {
	return sddf.NewRecord(desc,
		int64(ev.Node), ev.Op.String(), ev.File, ev.Offset, ev.Size,
		int64(ev.Start), int64(ev.Duration), ev.Mode)
}

// EventFromRecord parses an io-event record back into an Event.
func EventFromRecord(rec sddf.Record) (Event, error) {
	var ev Event
	if rec.Desc == nil || rec.Desc.Name != "io-event" {
		return ev, fmt.Errorf("pablo: record is not an io-event")
	}
	node, ok1 := rec.Int("node")
	opName, ok2 := rec.Str("op")
	file, ok3 := rec.Str("file")
	off, ok4 := rec.Int("offset")
	size, ok5 := rec.Int("size")
	start, ok6 := rec.Int("start_ns")
	dur, ok7 := rec.Int("dur_ns")
	mode, ok8 := rec.Str("mode")
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7 && ok8) {
		return ev, fmt.Errorf("pablo: io-event record missing fields")
	}
	op, err := ParseOp(opName)
	if err != nil {
		return ev, err
	}
	return Event{
		Node: int(node), Op: op, File: file, Offset: off, Size: size,
		Start: time.Duration(start), Duration: time.Duration(dur), Mode: mode,
	}, nil
}

// AppendEvent encodes one event as an io-event record through the
// writer's builder path — no boxing, no per-record allocation. desc must
// be (a copy of) EventDescriptor.
func AppendEvent(w *sddf.Writer, desc *sddf.Descriptor, ev *Event) error {
	err := w.Begin(desc)
	if err == nil {
		err = w.Int(int64(ev.Node))
	}
	if err == nil {
		err = w.Str(ev.Op.String())
	}
	if err == nil {
		err = w.Str(ev.File)
	}
	if err == nil {
		err = w.Int(ev.Offset)
	}
	if err == nil {
		err = w.Int(ev.Size)
	}
	if err == nil {
		err = w.Int(int64(ev.Start))
	}
	if err == nil {
		err = w.Int(int64(ev.Duration))
	}
	if err == nil {
		err = w.Str(ev.Mode)
	}
	if err != nil {
		return err
	}
	return w.End()
}

// WriteSDDF emits the whole trace as io-event records on w via the
// allocation-free builder path; the only steady-state allocations left
// are the buffered writer's flushes.
func WriteSDDF(w *sddf.Writer, t *Trace) error {
	desc := EventDescriptor()
	events := t.Events()
	for i := range events {
		if err := AppendEvent(w, desc, &events[i]); err != nil {
			return err
		}
	}
	return w.Flush()
}

// ReadSDDF consumes a generic stream, collecting io-event records into a
// trace and returning all other records untouched — the generic-consumer
// property that self-description buys.
func ReadSDDF(r *sddf.Reader) (*Trace, []sddf.Record, error) {
	t := NewTrace()
	var others []sddf.Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return t, others, nil
		}
		if err != nil {
			return nil, nil, err
		}
		if rec.Desc.Name == "io-event" {
			ev, err := EventFromRecord(rec)
			if err != nil {
				return nil, nil, err
			}
			t.Record(ev)
			continue
		}
		others = append(others, rec)
	}
}
