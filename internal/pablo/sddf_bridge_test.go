package pablo

import (
	"bytes"
	"io"
	"testing"
	"time"

	"paragonio/internal/sddf"
)

func TestSDDFBridgeRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	w := sddf.NewWriter(&buf)
	if err := WriteSDDF(w, tr); err != nil {
		t.Fatal(err)
	}
	got, others, err := ReadSDDF(sddf.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(others) != 0 {
		t.Fatalf("unexpected foreign records: %d", len(others))
	}
	if got.Len() != tr.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), tr.Len())
	}
	for i, want := range tr.Events() {
		if got.Events()[i] != want {
			t.Fatalf("event %d: %+v != %+v", i, got.Events()[i], want)
		}
	}
}

func TestSDDFBridgeInterleavedForeignRecords(t *testing.T) {
	// The generic-consumer property: a stream mixing io-events with a
	// record type this package has never seen still parses, with the
	// foreign records handed back intact.
	var buf bytes.Buffer
	w := sddf.NewWriter(&buf)
	evDesc := EventDescriptor()
	utilDesc := &sddf.Descriptor{Tag: 7, Name: "utilization",
		Fields: []sddf.Field{{Name: "t", Type: sddf.Double}, {Name: "queue", Type: sddf.Int}}}

	ev := Event{Node: 2, Op: OpRead, File: "f", Offset: 10, Size: 20,
		Start: time.Second, Duration: time.Millisecond, Mode: "M_UNIX"}
	rec, err := EventRecord(evDesc, ev)
	if err != nil {
		t.Fatal(err)
	}
	util, err := sddf.NewRecord(utilDesc, 1.5, int64(12))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []sddf.Record{util, rec, util} {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	tr, others, err := ReadSDDF(sddf.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.Events()[0] != ev {
		t.Fatalf("trace = %+v", tr.Events())
	}
	if len(others) != 2 {
		t.Fatalf("foreign records = %d, want 2", len(others))
	}
	if q, ok := others[0].Int("queue"); !ok || q != 12 {
		t.Fatalf("foreign record content lost: %+v", others[0])
	}
}

func TestEventFromRecordRejectsWrongType(t *testing.T) {
	d := &sddf.Descriptor{Tag: 9, Name: "not-io",
		Fields: []sddf.Field{{Name: "x", Type: sddf.Int}}}
	rec, err := sddf.NewRecord(d, int64(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EventFromRecord(rec); err == nil {
		t.Fatal("wrong record type accepted")
	}
}

// TestAppendEventZeroAlloc pins the trace-export hot path: encoding one
// event through the builder bridge performs zero heap allocations (the
// buffered writer's flushes are the only steady-state cost left).
func TestAppendEventZeroAlloc(t *testing.T) {
	w := sddf.NewWriter(io.Discard)
	desc := EventDescriptor()
	ev := Event{Node: 5, Op: OpWrite, File: "prism/ckpt.3", Offset: 1 << 20,
		Size: 64 << 10, Start: time.Second, Duration: 3 * time.Millisecond,
		Mode: "M_ASYNC"}
	if err := AppendEvent(w, desc, &ev); err != nil { // warm up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := AppendEvent(w, desc, &ev); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendEvent allocates %.1f times per event, want 0", allocs)
	}
}

// TestAppendEventMatchesEventRecord pins that the builder bridge and the
// boxed bridge emit byte-identical streams.
func TestAppendEventMatchesEventRecord(t *testing.T) {
	tr := sampleTrace()
	var boxed, built bytes.Buffer
	bw := sddf.NewWriter(&boxed)
	desc := EventDescriptor()
	for _, ev := range tr.Events() {
		rec, err := EventRecord(desc, ev)
		if err != nil {
			t.Fatal(err)
		}
		if err := bw.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := WriteSDDF(sddf.NewWriter(&built), tr); err != nil {
		t.Fatal(err)
	}
	if boxed.String() != built.String() {
		t.Fatalf("builder stream differs from boxed stream:\n%s\nvs\n%s",
			built.String(), boxed.String())
	}
}
