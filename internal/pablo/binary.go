package pablo

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Binary trace codec — the compact sibling of the text format, as
// Pablo's SDDF had both ASCII and binary encodings. Layout:
//
//	magic "PIOB" | version u8 | record count uvarint |
//	  per record:
//	    node uvarint | op u8 | file-index uvarint |
//	    offset uvarint | size uvarint | start uvarint | dur uvarint |
//	    mode-index u8
//	string table: file count uvarint, then len-prefixed names;
//	              mode count uvarint, then len-prefixed names
//
// The string tables follow the records so the writer streams in one
// pass; the reader therefore buffers records before resolving names.

var binaryMagic = [4]byte{'P', 'I', 'O', 'B'}

const binaryVersion = 1

// WriteTraceBinary serializes the trace in the compact binary format.
func WriteTraceBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := putUvarint(uint64(t.Len())); err != nil {
		return err
	}
	fileIdx := map[string]uint64{}
	var files []string
	modeIdx := map[string]uint64{}
	var modes []string
	intern := func(m map[string]uint64, list *[]string, s string) uint64 {
		if i, ok := m[s]; ok {
			return i
		}
		i := uint64(len(*list))
		m[s] = i
		*list = append(*list, s)
		return i
	}
	for _, ev := range t.Events() {
		if ev.Node < 0 || ev.Offset < 0 || ev.Size < 0 || ev.Start < 0 || ev.Duration < 0 {
			return fmt.Errorf("pablo: binary codec requires non-negative fields, got %+v", ev)
		}
		if err := putUvarint(uint64(ev.Node)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(ev.Op)); err != nil {
			return err
		}
		if err := putUvarint(intern(fileIdx, &files, ev.File)); err != nil {
			return err
		}
		for _, v := range []uint64{uint64(ev.Offset), uint64(ev.Size), uint64(ev.Start), uint64(ev.Duration)} {
			if err := putUvarint(v); err != nil {
				return err
			}
		}
		mi := intern(modeIdx, &modes, ev.Mode)
		if mi > 255 {
			return fmt.Errorf("pablo: too many distinct modes")
		}
		if err := bw.WriteByte(byte(mi)); err != nil {
			return err
		}
	}
	writeTable := func(list []string) error {
		if err := putUvarint(uint64(len(list))); err != nil {
			return err
		}
		for _, s := range list {
			if err := putUvarint(uint64(len(s))); err != nil {
				return err
			}
			if _, err := bw.WriteString(s); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeTable(files); err != nil {
		return err
	}
	if err := writeTable(modes); err != nil {
		return err
	}
	return bw.Flush()
}

// rawBinaryEvent holds indices pending string-table resolution.
type rawBinaryEvent struct {
	node               uint64
	op                 byte
	file               uint64
	off, size, st, dur uint64
	mode               byte
}

// ReadTraceBinary parses a trace written by WriteTraceBinary.
func ReadTraceBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("pablo: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("pablo: bad binary magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != binaryVersion {
		return nil, fmt.Errorf("pablo: unsupported binary version %d", ver)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("pablo: reading record count: %w", err)
	}
	const maxRecords = 1 << 28 // sanity bound ~268M events
	if count > maxRecords {
		return nil, fmt.Errorf("pablo: implausible record count %d", count)
	}
	raws := make([]rawBinaryEvent, 0, min64(count, 1<<20))
	for i := uint64(0); i < count; i++ {
		var rec rawBinaryEvent
		if rec.node, err = binary.ReadUvarint(br); err != nil {
			return nil, fmt.Errorf("pablo: record %d: %w", i, err)
		}
		if rec.op, err = br.ReadByte(); err != nil {
			return nil, err
		}
		if int(rec.op) >= int(numOps) {
			return nil, fmt.Errorf("pablo: record %d: bad op %d", i, rec.op)
		}
		if rec.file, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		if rec.off, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		if rec.size, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		if rec.st, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		if rec.dur, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		if rec.mode, err = br.ReadByte(); err != nil {
			return nil, err
		}
		raws = append(raws, rec)
	}
	readTable := func() ([]string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if n > 1<<20 {
			return nil, fmt.Errorf("pablo: implausible table size %d", n)
		}
		out := make([]string, n)
		for i := range out {
			l, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if l > 1<<16 {
				return nil, fmt.Errorf("pablo: implausible string length %d", l)
			}
			buf := make([]byte, l)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, err
			}
			out[i] = string(buf)
		}
		return out, nil
	}
	files, err := readTable()
	if err != nil {
		return nil, fmt.Errorf("pablo: file table: %w", err)
	}
	modes, err := readTable()
	if err != nil {
		return nil, fmt.Errorf("pablo: mode table: %w", err)
	}
	t := NewTrace()
	for i, rec := range raws {
		if rec.file >= uint64(len(files)) || int(rec.mode) >= len(modes) {
			return nil, fmt.Errorf("pablo: record %d: dangling string index", i)
		}
		t.Record(Event{
			Node:     int(rec.node),
			Op:       Op(rec.op),
			File:     files[rec.file],
			Offset:   int64(rec.off),
			Size:     int64(rec.size),
			Start:    time.Duration(rec.st),
			Duration: time.Duration(rec.dur),
			Mode:     modes[rec.mode],
		})
	}
	return t, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
