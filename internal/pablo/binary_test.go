package pablo

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleTrace() *Trace {
	tr := NewTrace()
	tr.Record(Event{Node: 0, Op: OpOpen, File: "escat/input.0",
		Duration: 500 * time.Millisecond, Mode: "M_UNIX"})
	for i := 0; i < 100; i++ {
		tr.Record(Event{Node: i % 16, Op: OpRead, File: "escat/input.0",
			Offset: int64(i) * 622, Size: 622,
			Start: time.Duration(i) * 3 * time.Millisecond, Duration: 3 * time.Millisecond,
			Mode: "M_UNIX"})
	}
	tr.Record(Event{Node: 3, Op: OpWrite, File: "escat/quad.0",
		Offset: 131072, Size: 2720, Start: time.Minute, Duration: 20 * time.Millisecond,
		Mode: "M_ASYNC"})
	tr.Record(Event{Node: 5, Op: OpClose, File: "", Start: 2 * time.Minute,
		Duration: 6 * time.Millisecond})
	return tr
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteTraceBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), tr.Len())
	}
	for i, want := range tr.Events() {
		if got.Events()[i] != want {
			t.Fatalf("event %d: %+v != %+v", i, got.Events()[i], want)
		}
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	tr := sampleTrace()
	var text, bin bytes.Buffer
	if err := WriteTrace(&text, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if bin.Len()*2 >= text.Len() {
		t.Fatalf("binary (%d B) not substantially smaller than text (%d B)",
			bin.Len(), text.Len())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE\x01\x00"),
		"bad ver":   append([]byte("PIOB"), 9, 0),
		"truncated": append([]byte("PIOB"), 1, 5), // claims 5 records, EOF
		"bad op":    append([]byte("PIOB"), 1, 1, 0, 99),
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadTraceBinary(bytes.NewReader(input)); err == nil {
				t.Fatal("garbage accepted")
			}
		})
	}
}

func TestBinaryRejectsNegativeFields(t *testing.T) {
	tr := NewTrace()
	tr.Record(Event{Node: 0, Op: OpRead, File: "f", Offset: -1, Size: 10})
	var buf bytes.Buffer
	if err := WriteTraceBinary(&buf, tr); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceBinary(&buf, NewTrace()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("Len = %d", got.Len())
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(node uint8, opIdx uint8, file string, off, size, start, dur uint32, modeIdx uint8) bool {
		modes := []string{"", "M_UNIX", "M_RECORD", "M_ASYNC"}
		in := Event{
			Node:     int(node),
			Op:       Op(int(opIdx) % int(numOps)),
			File:     strings.ToValidUTF8(file, "?"),
			Offset:   int64(off),
			Size:     int64(size),
			Start:    time.Duration(start),
			Duration: time.Duration(dur),
			Mode:     modes[int(modeIdx)%len(modes)],
		}
		tr := NewTrace()
		tr.Record(in)
		var buf bytes.Buffer
		if err := WriteTraceBinary(&buf, tr); err != nil {
			return false
		}
		out, err := ReadTraceBinary(&buf)
		if err != nil {
			return false
		}
		return out.Len() == 1 && out.Events()[0] == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryTextEquivalence(t *testing.T) {
	// The two codecs must reproduce identical traces from the same input.
	tr := sampleTrace()
	var tb, bb bytes.Buffer
	if err := WriteTrace(&tb, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceBinary(&bb, tr); err != nil {
		t.Fatal(err)
	}
	fromText, err := ReadTrace(&tb)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadTraceBinary(&bb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Events() {
		if fromText.Events()[i] != fromBin.Events()[i] {
			t.Fatalf("codec divergence at event %d", i)
		}
	}
}
