package pablo

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// The trace codec serializes events to a line-oriented, self-describing
// text format in the spirit of Pablo's SDDF (Self-Defining Data Format):
// a header line declaring the record layout, then one record per line.
//
//	#SDDF paragonio-io-trace v1
//	IOEVT node op file offset size start dur mode
//	IOEVT 0 open "init.params" 0 0 1200 450000 M_UNIX
//
// Times are integer nanoseconds of virtual time. File names are
// Go-quoted so arbitrary names round-trip.

const (
	codecMagic  = "#SDDF paragonio-io-trace v1"
	codecHeader = "IOEVT node op file offset size start dur mode"
	recordTag   = "IOEVT"
)

// WriteTrace serializes the trace to w in SDDF text form.
func WriteTrace(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, codecMagic); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, codecHeader); err != nil {
		return err
	}
	for _, ev := range t.Events() {
		mode := ev.Mode
		if mode == "" {
			mode = "-"
		}
		if _, err := fmt.Fprintf(bw, "%s %d %s %s %d %d %d %d %s\n",
			recordTag, ev.Node, ev.Op, strconv.Quote(ev.File),
			ev.Offset, ev.Size, int64(ev.Start), int64(ev.Duration), mode,
		); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace previously written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s != "" {
				return s, true
			}
		}
		return "", false
	}
	magic, ok := next()
	if !ok {
		return nil, fmt.Errorf("pablo: empty trace stream")
	}
	if magic != codecMagic {
		return nil, fmt.Errorf("pablo: line %d: bad magic %q", line, magic)
	}
	header, ok := next()
	if !ok || header != codecHeader {
		return nil, fmt.Errorf("pablo: line %d: bad header %q", line, header)
	}
	t := NewTrace()
	for {
		rec, ok := next()
		if !ok {
			break
		}
		ev, err := parseRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("pablo: line %d: %w", line, err)
		}
		t.Record(ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pablo: reading trace: %w", err)
	}
	return t, nil
}

func parseRecord(s string) (Event, error) {
	var ev Event
	if !strings.HasPrefix(s, recordTag+" ") {
		return ev, fmt.Errorf("record does not start with %s", recordTag)
	}
	rest := s[len(recordTag)+1:]

	// node
	nodeStr, rest, ok := cutField(rest)
	if !ok {
		return ev, fmt.Errorf("truncated record")
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		return ev, fmt.Errorf("bad node %q", nodeStr)
	}
	ev.Node = node

	// op
	opStr, rest, ok := cutField(rest)
	if !ok {
		return ev, fmt.Errorf("truncated record")
	}
	op, err := ParseOp(opStr)
	if err != nil {
		return ev, err
	}
	ev.Op = op

	// quoted file name
	if len(rest) == 0 || rest[0] != '"' {
		return ev, fmt.Errorf("expected quoted file name in %q", rest)
	}
	end := -1
	for i := 1; i < len(rest); i++ {
		if rest[i] == '\\' {
			i++
			continue
		}
		if rest[i] == '"' {
			end = i
			break
		}
	}
	if end < 0 {
		return ev, fmt.Errorf("unterminated file name")
	}
	file, err := strconv.Unquote(rest[:end+1])
	if err != nil {
		return ev, fmt.Errorf("bad file name: %v", err)
	}
	ev.File = file
	rest = strings.TrimLeft(rest[end+1:], " ")

	// offset size start dur
	var nums [4]int64
	for i := range nums {
		var f string
		f, rest, ok = cutField(rest)
		if !ok {
			return ev, fmt.Errorf("truncated record")
		}
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return ev, fmt.Errorf("bad numeric field %q", f)
		}
		nums[i] = v
	}
	ev.Offset, ev.Size = nums[0], nums[1]
	ev.Start, ev.Duration = durationNS(nums[2]), durationNS(nums[3])

	// mode
	mode, rest, _ := cutField(rest)
	if mode == "" {
		return ev, fmt.Errorf("missing mode field")
	}
	if mode != "-" {
		ev.Mode = mode
	}
	if strings.TrimSpace(rest) != "" {
		return ev, fmt.Errorf("trailing data %q", rest)
	}
	return ev, nil
}

// cutField splits off the next space-delimited field. The final field
// reports ok with an empty remainder.
func cutField(s string) (field, rest string, ok bool) {
	s = strings.TrimLeft(s, " ")
	if s == "" {
		return "", "", false
	}
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[:i], s[i+1:], true
	}
	return s, "", true
}

func durationNS(v int64) time.Duration { return time.Duration(v) }
