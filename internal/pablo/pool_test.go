package pablo

import (
	"testing"
	"time"
)

// TestRecordPooledAllocs pins the zero-alloc steady state of the
// Record/Release cycle: once the pool holds a trace's growth ladder,
// re-recording a same-sized trace must allocate (almost) nothing — the
// regression gate for the suite re-run hot path.
func TestRecordPooledAllocs(t *testing.T) {
	ev := Event{
		Node: 3, Op: OpWrite, File: "escat.out", Offset: 512, Size: 4096,
		Start: time.Millisecond, Duration: 250 * time.Microsecond, Mode: "writeonly",
	}
	const n = 4 * minPooledEvents
	var dig uint64
	cycle := func() {
		tr := NewTrace()
		for i := 0; i < n; i++ {
			tr.Record(ev)
		}
		dig = tr.Digest()
		tr.Release()
	}
	cycle() // warm the pool's size classes
	want := dig
	avg := testing.AllocsPerRun(20, cycle)
	if dig != want {
		t.Fatalf("digest drifted across pooled re-runs: %#x != %#x", dig, want)
	}
	// One allocation is the Trace itself; a small slack absorbs runtime
	// noise. Without the pool this path allocates the full doubling
	// ladder of event arrays (hundreds of KB in dozens of objects).
	if avg > 4 {
		t.Errorf("pooled record cycle allocates %.1f objects/run, want <= 4", avg)
	}
}

// TestPoolRejectsForeignBuffers pins the safety property that keeps
// Filter-built traces (plain append growth, arbitrary caps) out of the
// recycler.
func TestPoolRejectsForeignBuffers(t *testing.T) {
	p := &sharedEventPool
	p.mu.Lock()
	before := p.bytes
	p.mu.Unlock()

	putEventBuf(nil)
	putEventBuf(make([]Event, 0, minPooledEvents-1))  // undersized
	putEventBuf(make([]Event, 0, minPooledEvents+17)) // not a power of two

	p.mu.Lock()
	after := p.bytes
	p.mu.Unlock()
	if after != before {
		t.Errorf("foreign buffers entered the pool: %d -> %d bytes", before, after)
	}
}

// TestReleaseResetsDigest pins that a released-then-reused trace hashes
// from a clean state: the incremental digest must not leak across runs
// through a recycled buffer.
func TestReleaseResetsDigest(t *testing.T) {
	ev := Event{Node: 1, Op: OpRead, File: "f", Size: 8}
	tr := NewTrace()
	tr.Record(ev)
	first := tr.Digest()
	tr.Release()
	if tr.Len() != 0 {
		t.Fatalf("released trace keeps %d events", tr.Len())
	}
	tr.Record(ev)
	if got := tr.Digest(); got != first {
		t.Errorf("digest after release = %#x, want %#x", got, first)
	}
}
