package pablo

import (
	"testing"
	"time"
)

func ev(node int, op Op, file string, off, size int64, start, dur time.Duration) Event {
	return Event{Node: node, Op: op, File: file, Offset: off, Size: size,
		Start: start, Duration: dur, Mode: "M_UNIX"}
}

func TestOpStringRoundTrip(t *testing.T) {
	for _, op := range Ops() {
		got, err := ParseOp(op.String())
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", op.String(), err)
		}
		if got != op {
			t.Fatalf("ParseOp(%q) = %v, want %v", op.String(), got, op)
		}
	}
	if _, err := ParseOp("bogus"); err == nil {
		t.Fatal("ParseOp accepted bogus name")
	}
	if s := Op(99).String(); s != "op(99)" {
		t.Fatalf("out-of-range String = %q", s)
	}
}

func TestTraceRecordAndAccessors(t *testing.T) {
	tr := NewTrace()
	tr.Record(ev(0, OpOpen, "a", 0, 0, 0, time.Millisecond))
	tr.Record(ev(1, OpRead, "a", 0, 100, time.Second, time.Millisecond))
	tr.Record(ev(0, OpWrite, "b", 50, 200, 2*time.Second, time.Millisecond))
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.ByOp(OpRead); len(got) != 1 || got[0].Size != 100 {
		t.Fatalf("ByOp(read) = %v", got)
	}
	if got := tr.ByFile("b"); len(got) != 1 || got[0].Op != OpWrite {
		t.Fatalf("ByFile(b) = %v", got)
	}
	if got := tr.ByNode(0); len(got) != 2 {
		t.Fatalf("ByNode(0) = %v", got)
	}
	files := tr.Files()
	if len(files) != 2 || files[0] != "a" || files[1] != "b" {
		t.Fatalf("Files = %v", files)
	}
}

func TestTraceFilter(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < 10; i++ {
		tr.Record(ev(i%2, OpRead, "f", 0, int64(i), 0, 0))
	}
	odd := tr.Filter(func(e Event) bool { return e.Size%2 == 1 })
	if odd.Len() != 5 {
		t.Fatalf("filtered Len = %d, want 5", odd.Len())
	}
	for _, e := range odd.Events() {
		if e.Size%2 != 1 {
			t.Fatalf("filter let through %v", e)
		}
	}
}

func TestSpanAndTotalIOTime(t *testing.T) {
	tr := NewTrace()
	if s, e := tr.Span(); s != 0 || e != 0 {
		t.Fatalf("empty Span = %v,%v", s, e)
	}
	tr.Record(ev(0, OpRead, "f", 0, 1, 5*time.Second, 2*time.Second))
	tr.Record(ev(1, OpRead, "f", 0, 1, time.Second, time.Second))
	s, e := tr.Span()
	if s != time.Second || e != 7*time.Second {
		t.Fatalf("Span = %v,%v, want 1s,7s", s, e)
	}
	if got := tr.TotalIOTime(); got != 3*time.Second {
		t.Fatalf("TotalIOTime = %v, want 3s", got)
	}
}

func TestNodesActive(t *testing.T) {
	tr := NewTrace()
	for _, n := range []int{5, 1, 5, 3} {
		tr.Record(ev(n, OpRead, "f", 0, 1, 0, 0))
	}
	got := NodesActive(tr)
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("NodesActive = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NodesActive = %v, want %v", got, want)
		}
	}
}

func TestOpStatsAddAndPercent(t *testing.T) {
	var s OpStats
	s.Add(ev(0, OpRead, "f", 0, 100, 0, 3*time.Second))
	s.Add(ev(0, OpWrite, "f", 0, 50, 0, time.Second))
	if s.BytesRead != 100 || s.BytesWritten != 50 {
		t.Fatalf("bytes = %d/%d", s.BytesRead, s.BytesWritten)
	}
	if s.TotalCount() != 2 {
		t.Fatalf("TotalCount = %d", s.TotalCount())
	}
	if s.TotalDuration() != 4*time.Second {
		t.Fatalf("TotalDuration = %v", s.TotalDuration())
	}
	pct := s.Percent()
	if pct[OpRead] != 75 || pct[OpWrite] != 25 {
		t.Fatalf("Percent = %v", pct)
	}
}

func TestOpStatsPercentZeroTotal(t *testing.T) {
	var s OpStats
	for _, p := range s.Percent() {
		if p != 0 {
			t.Fatal("Percent of empty stats must be zero")
		}
	}
}

func TestOpStatsMergeAssociative(t *testing.T) {
	mk := func(op Op, d time.Duration, size int64) OpStats {
		var s OpStats
		s.Add(ev(0, op, "f", 0, size, 0, d))
		return s
	}
	a := mk(OpRead, time.Second, 10)
	b := mk(OpWrite, 2*time.Second, 20)
	c := mk(OpSeek, 3*time.Second, 0)

	ab := a
	ab.Merge(b)
	abc1 := ab
	abc1.Merge(c)

	bc := b
	bc.Merge(c)
	abc2 := a
	abc2.Merge(bc)

	if abc1 != abc2 {
		t.Fatalf("merge not associative: %+v vs %+v", abc1, abc2)
	}
}

func TestAggregateByOp(t *testing.T) {
	tr := NewTrace()
	tr.Record(ev(0, OpOpen, "f", 0, 0, 0, 4*time.Second))
	tr.Record(ev(1, OpRead, "f", 0, 10, 0, 6*time.Second))
	s := AggregateByOp(tr)
	pct := s.Percent()
	if pct[OpOpen] != 40 || pct[OpRead] != 60 {
		t.Fatalf("Percent = %v", pct)
	}
}
