package pablo

import "hash/fnv"

// Digest returns the FNV-1a digest of the full event stream: every field
// of every event, in capture order. Two runs of a deterministic workload
// must produce identical digests; the golden-digest regression tests use
// this as the gate that licenses simulation-kernel optimizations.
func (t *Trace) Digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		buf[4] = byte(v >> 32)
		buf[5] = byte(v >> 40)
		buf[6] = byte(v >> 48)
		buf[7] = byte(v >> 56)
		h.Write(buf[:])
	}
	for _, ev := range t.events {
		u64(uint64(ev.Node))
		u64(uint64(ev.Op))
		h.Write([]byte(ev.File))
		u64(uint64(ev.Offset))
		u64(uint64(ev.Size))
		u64(uint64(ev.Start))
		u64(uint64(ev.Duration))
		h.Write([]byte(ev.Mode))
	}
	return h.Sum64()
}
