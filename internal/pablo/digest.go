package pablo

// FNV-1a 64-bit parameters (the stream layout below predates this file:
// golden digests are pinned against it, so it must never change shape).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// digestState is a resumable FNV-1a hash over an event stream. Keeping
// the running state as a plain integer (rather than a hash.Hash64) makes
// it allocation-free and lets a Trace carry it across appends.
type digestState uint64

func (h *digestState) str(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= fnvPrime64
	}
	*h = digestState(x)
}

func (h *digestState) u64(v uint64) {
	x := uint64(*h)
	for i := 0; i < 64; i += 8 {
		x ^= uint64(byte(v >> i))
		x *= fnvPrime64
	}
	*h = digestState(x)
}

// event folds one event into the hash: every field, little-endian, in
// the pinned golden order.
func (h *digestState) event(ev *Event) {
	h.u64(uint64(ev.Node))
	h.u64(uint64(ev.Op))
	h.str(ev.File)
	h.u64(uint64(ev.Offset))
	h.u64(uint64(ev.Size))
	h.u64(uint64(ev.Start))
	h.u64(uint64(ev.Duration))
	h.str(ev.Mode)
}

// catchUp folds any events not yet hashed into the running digest. Traces
// built by direct appends (Filter) as well as Record-fed traces converge
// to the same state, and repeated Digest calls cost O(new events) instead
// of re-walking the stream.
func (t *Trace) catchUp() {
	if t.hashed == 0 {
		t.dig = digestState(fnvOffset64)
	}
	for ; t.hashed < len(t.events); t.hashed++ {
		t.dig.event(&t.events[t.hashed])
	}
}

// Digest returns the FNV-1a digest of the full event stream: every field
// of every event, in capture order. Two runs of a deterministic workload
// must produce identical digests; the golden-digest regression tests use
// this as the gate that licenses simulation-kernel optimizations. The
// hash is maintained incrementally as events are recorded, so calling
// Digest repeatedly (or on a growing trace) does not re-walk the stream.
func (t *Trace) Digest() uint64 {
	t.catchUp()
	return uint64(t.dig)
}

// DigestTracer is a retain-nothing Tracer that folds events into the
// stream digest as they arrive: the streaming counterpart of
// Trace.Digest for determinism checks over runs too large (or too many)
// to keep in memory. It produces exactly the digest a Trace recording
// the same events would.
type DigestTracer struct {
	dig digestState
	n   int
}

// NewDigestTracer returns an empty streaming digest.
func NewDigestTracer() *DigestTracer {
	return &DigestTracer{dig: digestState(fnvOffset64)}
}

// Record implements Tracer.
func (t *DigestTracer) Record(ev Event) {
	t.dig.event(&ev)
	t.n++
}

// Digest returns the FNV-1a digest of the events recorded so far.
func (t *DigestTracer) Digest() uint64 { return uint64(t.dig) }

// Len returns the number of events recorded.
func (t *DigestTracer) Len() int { return t.n }
