package policy

import (
	"testing"

	"paragonio/internal/pfs"
	"paragonio/internal/sim"
)

func TestAdaptiveWriterEngagesWriteBehind(t *testing.T) {
	r := newRig(t)
	var mode string
	var switches int
	r.k.Spawn("p", func(p *sim.Proc) {
		h, _ := r.fs.Open(p, 0, "out", pfs.MAsync)
		w := NewAdaptiveWriter(h, 16)
		for i := 0; i < 64; i++ {
			if err := w.Write(p, 96); err != nil {
				t.Error(err)
			}
		}
		if err := w.Flush(p); err != nil {
			t.Error(err)
		}
		mode = w.Mode()
		switches = w.Switches()
		h.Close(p)
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if mode != "write-behind" || switches != 1 {
		t.Fatalf("mode = %s, switches = %d", mode, switches)
	}
	// All bytes durable after flush.
	if got := r.fs.FileSize("out"); got != 64*96 {
		t.Fatalf("file size = %d, want %d", got, 64*96)
	}
}

func TestAdaptiveWriterPassthroughForLarge(t *testing.T) {
	r := newRig(t)
	var mode string
	r.k.Spawn("p", func(p *sim.Proc) {
		h, _ := r.fs.Open(p, 0, "out", pfs.MAsync)
		w := NewAdaptiveWriter(h, 8)
		for i := 0; i < 32; i++ {
			if err := w.Write(p, 256<<10); err != nil {
				t.Error(err)
			}
		}
		mode = w.Mode()
		h.Close(p)
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if mode != "passthrough" {
		t.Fatalf("mode = %s", mode)
	}
	if got := r.fs.FileSize("out"); got != 32*(256<<10) {
		t.Fatalf("file size = %d", got)
	}
}

func TestAdaptiveWriterFasterThanRawSmallStream(t *testing.T) {
	loop := func(adaptive bool) sim.Time {
		r := newRig(t)
		var d sim.Time
		r.k.Spawn("p", func(p *sim.Proc) {
			h, _ := r.fs.Open(p, 0, "out", pfs.MAsync)
			t0 := p.Now()
			if adaptive {
				w := NewAdaptiveWriter(h, 16)
				for i := 0; i < 400; i++ {
					w.Write(p, 128)
				}
				w.Flush(p)
			} else {
				for i := 0; i < 400; i++ {
					h.Write(p, 128)
				}
			}
			d = p.Now() - t0
			h.Close(p)
		})
		if err := r.k.Run(); err != nil {
			t.Fatal(err)
		}
		return d
	}
	if a, raw := loop(true), loop(false); a*3 >= raw {
		t.Fatalf("adaptive writes (%v) not clearly faster than raw (%v)", a, raw)
	}
}

func TestAdaptiveWriterSeekFlushesAndContinues(t *testing.T) {
	r := newRig(t)
	r.k.Spawn("p", func(p *sim.Proc) {
		h, _ := r.fs.Open(p, 0, "out", pfs.MAsync)
		w := NewAdaptiveWriter(h, 8)
		for i := 0; i < 24; i++ {
			w.Write(p, 64) // engages write-behind
		}
		if err := w.Seek(p, 1<<20); err != nil {
			t.Error(err)
		}
		if err := w.Write(p, 4096); err != nil {
			t.Error(err)
		}
		if err := w.Flush(p); err != nil {
			t.Error(err)
		}
		h.Close(p)
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	// The first 24*64 bytes were flushed by Seek; the post-seek write
	// extends the file past 1 MB.
	if got := r.fs.FileSize("out"); got != 1<<20+4096 {
		t.Fatalf("file size = %d, want %d", got, 1<<20+4096)
	}
}

func TestAdaptiveWriterBadSize(t *testing.T) {
	r := newRig(t)
	r.k.Spawn("p", func(p *sim.Proc) {
		h, _ := r.fs.Open(p, 0, "out", pfs.MAsync)
		w := NewAdaptiveWriter(h, 0)
		if err := w.Write(p, 0); err != pfs.ErrBadSize {
			t.Errorf("Write(0) err = %v", err)
		}
		h.Close(p)
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
}
