package policy

import (
	"fmt"
	"io"

	"paragonio/internal/report"
)

// WriteAdvice renders the advisor's full output for a classified trace:
// the access-mode recommendations (Advise), the cache-tier findings
// (AdviseCache), and the merged cache.Tiers plan with its merge notes
// (AdviseTiers). Every CLI surface that prints advice (iotrace advise,
// iosim -advise) goes through this one renderer, and docs/ADVISOR.md's
// worked transcript is golden-file-tested against it.
func WriteAdvice(w io.Writer, profiles map[string]*Profile, opt Options, copt CacheOptions) error {
	recs := AdviseAll(profiles, opt)
	if len(recs) == 0 {
		if _, err := fmt.Fprintln(w, "no access-mode recommendations: observed patterns already fit the file system"); err != nil {
			return err
		}
	} else {
		rows := make([][]string, 0, len(recs))
		for _, r := range recs {
			rows = append(rows, []string{r.File, r.Kind.String(), r.Reason})
		}
		if err := report.Table(w, "File system policy advice",
			[]string{"File", "Recommendation", "Why"}, rows); err != nil {
			return err
		}
	}

	plan := AdviseTiers(profiles, copt)
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if len(plan.Recs) == 0 {
		if _, err := fmt.Fprintln(w, "no cache recommendations: no reuse a cache tier could serve"); err != nil {
			return err
		}
	} else {
		rows := make([][]string, 0, len(plan.Recs))
		for _, r := range plan.Recs {
			rows = append(rows, []string{r.File, r.Kind.String(), r.Reason})
		}
		if err := report.Table(w, "Cache configuration advice",
			[]string{"File", "Recommendation", "Why"}, rows); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\nsuggested cache tiers: %v\n", plan.Tiers); err != nil {
		return err
	}
	for _, n := range plan.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}
