package policy

import (
	"paragonio/internal/pfs"
	"paragonio/internal/sim"
)

// AdaptiveReader is the paper's section 5.4 proposal made concrete: "a
// file system that dynamically tunes its policy to match the
// requirements of the application access patterns" (the PPFS idea the
// authors cite). It watches its own request stream online and switches
// between pass-through and deep-prefetch service — so the application
// gets near-best-static performance without the manual buffering
// decisions that cost PRISM's version C so dearly.
//
// The classifier is deliberately simple and incremental. Requests are
// grouped into epochs of `window` observations (default 16). Each
// request casts two votes: small (size <= adaptiveSmall, one quarter
// stripe) and sequential (it starts exactly at the previous request's
// end). At each epoch boundary the votes decide the mode:
//
//   - >= 2/3 small AND >= 2/3 sequential: switch to deep prefetch;
//   - < 1/3 small OR < 1/3 sequential: switch to pass-through;
//   - anything in between: keep the current mode (hysteresis, so a
//     stream oscillating near a threshold does not flap).
//
// Votes reset every epoch; a mode switch drops any in-flight prefetch
// window. The reader requires a seekable handle (M_UNIX or M_ASYNC).
type AdaptiveReader struct {
	h   *pfs.Handle
	pos int64 // logical read position (the handle may be ahead: read-ahead)

	// classification window
	window     int
	smallVotes int
	seqVotes   int
	votes      int
	lastEnd    int64

	// current service mode
	mode adaptMode
	pr   *PrefetchReader

	// stats
	switches     int
	logicalReads int
	bytes        int64
}

type adaptMode int

const (
	adaptPassthrough adaptMode = iota // large / random: raw requests
	adaptPrefetch                     // small sequential: deep read-ahead
)

// adaptiveSmall is the small-request threshold (one quarter stripe).
const adaptiveSmall = 16 << 10

// NewAdaptiveReader wraps a handle. window is the number of requests per
// classification epoch (default 16).
func NewAdaptiveReader(h *pfs.Handle, window int) *AdaptiveReader {
	if window <= 0 {
		window = 16
	}
	// The adaptive layer owns all caching decisions.
	h.SetBuffering(false)
	return &AdaptiveReader{h: h, window: window, mode: adaptPassthrough, pos: h.Ptr()}
}

// Mode returns a human-readable name of the current service mode.
func (a *AdaptiveReader) Mode() string {
	if a.mode == adaptPrefetch {
		return "prefetch"
	}
	return "passthrough"
}

// Switches returns how many times the reader changed service mode.
func (a *AdaptiveReader) Switches() int { return a.switches }

// Stats returns (logical reads served, logical bytes).
func (a *AdaptiveReader) Stats() (reads int, bytes int64) {
	return a.logicalReads, a.bytes
}

// observe folds one request into the classification window and switches
// modes at epoch boundaries.
func (a *AdaptiveReader) observe(off, size int64) {
	if size <= adaptiveSmall {
		a.smallVotes++
	}
	if off == a.lastEnd && a.votes > 0 {
		a.seqVotes++
	}
	a.lastEnd = off + size
	a.votes++
	if a.votes < a.window {
		return
	}
	// Epoch decision with a two-thirds majority; anything in between
	// keeps the current mode (hysteresis).
	want := a.mode
	if 3*a.smallVotes >= 2*a.votes && 3*a.seqVotes >= 2*a.votes {
		want = adaptPrefetch
	} else if 3*a.smallVotes < a.votes || 3*a.seqVotes < a.votes {
		want = adaptPassthrough
	}
	if want != a.mode {
		a.mode = want
		a.switches++
		a.pr = nil // drop any prefetch window on a switch
	}
	a.smallVotes, a.seqVotes, a.votes = 0, 0, 0
}

// position brings the underlying handle to the logical position (the
// read-ahead may have left it further along).
func (a *AdaptiveReader) position(p *sim.Proc) error {
	if a.h.Ptr() != a.pos {
		return a.h.Seek(p, a.pos)
	}
	return nil
}

// Read serves size bytes at the logical position under the current
// policy and returns the bytes read.
func (a *AdaptiveReader) Read(p *sim.Proc, size int64) (int64, error) {
	if size <= 0 {
		return 0, pfs.ErrBadSize
	}
	a.observe(a.pos, size)
	a.logicalReads++
	var n int64
	var err error
	if a.mode == adaptPrefetch {
		if a.pr == nil {
			if err := a.position(p); err != nil {
				return 0, err
			}
			a.pr = NewPrefetchReader(a.h, 0)
		}
		n, err = a.pr.Read(p, size)
	} else {
		if err := a.position(p); err != nil {
			return 0, err
		}
		n, err = a.h.Read(p, size)
	}
	a.pos += n
	a.bytes += n
	return n, err
}

// Seek repositions the logical pointer; a jump drops any prefetched
// window.
func (a *AdaptiveReader) Seek(p *sim.Proc, off int64) error {
	if err := a.h.Seek(p, off); err != nil {
		return err
	}
	a.pos = off
	a.lastEnd = off
	a.pr = nil
	return nil
}
