package policy

import (
	"paragonio/internal/pfs"
	"paragonio/internal/sim"
)

// AdaptiveWriter is the write-side counterpart of AdaptiveReader: it
// watches its own write stream and engages write-behind aggregation for
// small sequential appends (the measurement/history/result streams both
// applications funnel through node zero), while passing large or
// non-sequential writes straight through.
//
// Correctness note: aggregation defers data; Flush (or Close of the
// underlying handle after Flush) makes it durable. Seek flushes
// pending data before repositioning.
type AdaptiveWriter struct {
	h   *pfs.Handle
	pos int64

	window     int
	smallVotes int
	seqVotes   int
	votes      int
	lastEnd    int64

	aggregating bool
	agg         *AggWriter
	switches    int

	logicalWrites int
	bytes         int64
}

// NewAdaptiveWriter wraps a handle; window is the requests-per-epoch
// classification width (default 16).
func NewAdaptiveWriter(h *pfs.Handle, window int) *AdaptiveWriter {
	if window <= 0 {
		window = 16
	}
	return &AdaptiveWriter{h: h, window: window, pos: h.Ptr()}
}

// Mode returns the current service mode name.
func (a *AdaptiveWriter) Mode() string {
	if a.aggregating {
		return "write-behind"
	}
	return "passthrough"
}

// Switches returns the number of mode changes.
func (a *AdaptiveWriter) Switches() int { return a.switches }

// Stats returns (logical writes, logical bytes).
func (a *AdaptiveWriter) Stats() (writes int, bytes int64) {
	return a.logicalWrites, a.bytes
}

func (a *AdaptiveWriter) observe(p *sim.Proc, off, size int64) error {
	if size <= adaptiveSmall {
		a.smallVotes++
	}
	if off == a.lastEnd && a.votes > 0 {
		a.seqVotes++
	}
	a.lastEnd = off + size
	a.votes++
	if a.votes < a.window {
		return nil
	}
	want := a.aggregating
	if 3*a.smallVotes >= 2*a.votes && 3*a.seqVotes >= 2*a.votes {
		want = true
	} else if 3*a.smallVotes < a.votes || 3*a.seqVotes < a.votes {
		want = false
	}
	if want != a.aggregating {
		if a.aggregating {
			// Leaving write-behind: push out pending data first.
			if err := a.agg.Flush(p); err != nil {
				return err
			}
			a.agg = nil
		}
		a.aggregating = want
		a.switches++
	}
	a.smallVotes, a.seqVotes, a.votes = 0, 0, 0
	return nil
}

// position brings the handle to the logical write position.
func (a *AdaptiveWriter) position(p *sim.Proc) error {
	if a.h.Ptr() != a.pos {
		return a.h.Seek(p, a.pos)
	}
	return nil
}

// Write appends size bytes at the logical position under the current
// policy.
func (a *AdaptiveWriter) Write(p *sim.Proc, size int64) error {
	if size <= 0 {
		return pfs.ErrBadSize
	}
	if err := a.observe(p, a.pos, size); err != nil {
		return err
	}
	a.logicalWrites++
	a.bytes += size
	if a.aggregating {
		if a.agg == nil {
			if err := a.position(p); err != nil {
				return err
			}
			a.agg = NewAggWriter(a.h, 0)
		}
		if err := a.agg.Write(p, size); err != nil {
			return err
		}
	} else {
		if err := a.position(p); err != nil {
			return err
		}
		if _, err := a.h.Write(p, size); err != nil {
			return err
		}
	}
	a.pos += size
	return nil
}

// Flush pushes out any deferred data.
func (a *AdaptiveWriter) Flush(p *sim.Proc) error {
	if a.agg != nil {
		return a.agg.Flush(p)
	}
	return nil
}

// Seek flushes pending data and repositions the logical pointer.
func (a *AdaptiveWriter) Seek(p *sim.Proc, off int64) error {
	if err := a.Flush(p); err != nil {
		return err
	}
	if err := a.h.Seek(p, off); err != nil {
		return err
	}
	a.pos = off
	a.lastEnd = off
	a.agg = nil
	return nil
}
