package policy

import (
	"fmt"
	"sort"

	"paragonio/internal/cache"
)

// Kind identifies one recommendation category — each maps to a file
// system feature the paper's section 7 calls for.
type Kind int

const (
	// UseGlobalRead: all nodes read the same data; one disk I/O plus a
	// broadcast (M_GLOBAL, or node-zero read + application broadcast)
	// replaces N serialized reads.
	UseGlobalRead Kind = iota
	// UseGopen: many concurrent individual opens; a collective open
	// pays the metadata cost once.
	UseGopen
	// UseAsyncWrites: disjoint concurrent writes serialized by UNIX
	// atomicity; M_ASYNC removes the token and shared-seek costs.
	UseAsyncWrites
	// UseRecordReads: fixed-size disjoint strided reads; M_RECORD in
	// stripe-multiple records achieves full striping bandwidth.
	UseRecordReads
	// AggregateRequests: many small requests; client- or library-side
	// aggregation into stripe-sized requests recovers disk bandwidth.
	AggregateRequests
	// EnablePrefetch: small sequential reads with buffering disabled or
	// missing; read-ahead turns them into memory copies.
	EnablePrefetch
	// UseWriteBehind: many small writes on the critical path; deferred
	// flushing overlaps them with computation.
	UseWriteBehind
	// AlignToStripe: dominant request size is not a stripe multiple.
	AlignToStripe

	// The remaining kinds are cache-tier recommendations (AdviseCache,
	// AdviseTiers): instead of an access mode, each maps to a concrete
	// cache.Tiers fragment, carried in Recommendation.Tiers.

	// CacheWriteBehind: writes are small or rewrite the same blocks; an
	// I/O-node cache with write-behind acknowledges them at copy cost.
	CacheWriteBehind
	// CacheReadAhead: a cold sequential read stream with no sharing,
	// reuse, or staged writes behind it; read-ahead depth N overlaps the
	// disk with the request stream.
	CacheReadAhead
	// AvoidReadAhead: read-ahead would pollute this file's cache — the
	// read stream is already served by resident blocks (dirty staging
	// data or a hot shared set), so speculative fills only evict them.
	AvoidReadAhead
	// CacheIONodeCapacity: cross-node re-reads of a hot block set; an
	// I/O-node cache sized to the shared working set serves them at
	// memory cost.
	CacheIONodeCapacity
	// CacheClientTier: per-node private temporal reuse; a client-side
	// cache sized to the per-node working set serves it without any
	// I/O-node round trip.
	CacheClientTier
	// CacheClientTTL: the client tier only pays off if leases outlive
	// the observed reuse span (there is no local renewal); recommends a
	// lease TTL covering it.
	CacheClientTTL
	// AvoidIONodeCache: this file's reads are per-node private — a
	// shared I/O-node cache adds lookup cost with no sharing to exploit
	// (the carbon-monoxide case where no server-side cache wins).
	AvoidIONodeCache
	// CacheLogTier: a write-dominated stream with no read-back; a
	// host-side log absorbs the bursts at memory speed and drains
	// sequentially in the background.
	CacheLogTier
	// AvoidLogTier: the stream reads back what it just wrote; logged
	// records force every such read to wait out the drain, while a
	// write-behind block cache serves them from resident dirty blocks —
	// the RAW-resident restart case where the log tier loses.
	AvoidLogTier
)

var kindNames = map[Kind]string{
	UseGlobalRead:     "use-global-read",
	UseGopen:          "use-gopen",
	UseAsyncWrites:    "use-async-writes",
	UseRecordReads:    "use-record-reads",
	AggregateRequests: "aggregate-requests",
	EnablePrefetch:    "enable-prefetch",
	UseWriteBehind:    "use-write-behind",
	AlignToStripe:     "align-to-stripe",

	CacheWriteBehind:    "cache-write-behind",
	CacheReadAhead:      "cache-read-ahead",
	AvoidReadAhead:      "avoid-read-ahead",
	CacheIONodeCapacity: "cache-ionode-capacity",
	CacheClientTier:     "cache-client-tier",
	CacheClientTTL:      "cache-client-ttl",
	AvoidIONodeCache:    "avoid-ionode-cache",
	CacheLogTier:        "cache-log-tier",
	AvoidLogTier:        "avoid-log-tier",
}

// String returns the recommendation's slug.
func (k Kind) String() string { return kindNames[k] }

// Recommendation is one advisor finding for one file.
type Recommendation struct {
	File   string
	Kind   Kind
	Reason string
	// Tiers, non-nil on cache-tier kinds, is the concrete configuration
	// fragment this finding argues for in isolation. AdviseTiers merges
	// the fragments (and the negative findings) into one machine plan.
	Tiers *cache.Tiers
}

// String implements fmt.Stringer.
func (r Recommendation) String() string {
	return fmt.Sprintf("%s: %s (%s)", r.File, r.Kind, r.Reason)
}

// Options tunes the advisor thresholds.
type Options struct {
	StripeUnit     int64   // for alignment advice (default 64 KB)
	SmallThreshold float64 // small-request fraction to trigger aggregation (default 0.8)
	MinOps         int     // ignore files with fewer operations (default 8)
}

func (o *Options) defaults() {
	if o.StripeUnit == 0 {
		o.StripeUnit = 64 * 1024
	}
	if o.SmallThreshold == 0 {
		o.SmallThreshold = 0.8
	}
	if o.MinOps == 0 {
		o.MinOps = 8
	}
}

// Advise inspects one file's profile and returns recommendations.
func Advise(p *Profile, opt Options) []Recommendation {
	opt.defaults()
	var out []Recommendation
	add := func(k Kind, reason string) {
		out = append(out, Recommendation{File: p.File, Kind: k, Reason: reason})
	}
	if p.Reads+p.Writes < opt.MinOps {
		return nil
	}

	unixReads := p.ReadModes["M_UNIX"] > 0
	unixWrites := p.WriteModes["M_UNIX"] > 0
	concurrentReaders := len(p.Readers) > 1
	concurrentWriters := len(p.Writers) > 1

	if p.IdenticalReads && unixReads {
		add(UseGlobalRead, fmt.Sprintf(
			"%d nodes read identical data through M_UNIX; one I/O plus broadcast suffices",
			len(p.Readers)))
	}
	if p.Opens > 2*max(1, len(p.Readers)+len(p.Writers)) ||
		(p.Opens >= 8 && (concurrentReaders || concurrentWriters) && p.Gopens == 0) {
		add(UseGopen, fmt.Sprintf("%d individual opens; a collective gopen pays the metadata cost once", p.Opens))
	}
	if p.InterleavedWrites && unixWrites {
		reason := "concurrent disjoint interleaved writes serialized by M_UNIX atomicity"
		if p.SeeksPerWrite >= 1 {
			reason += fmt.Sprintf(" with %.1f shared-state seeks per write", p.SeeksPerWrite)
		}
		add(UseAsyncWrites, reason)
	}
	if p.FixedReadSize > 0 && concurrentReaders && !p.IdenticalReads {
		k := UseRecordReads
		reason := fmt.Sprintf("nodes read disjoint fixed-size %d-byte requests", p.FixedReadSize)
		add(k, reason)
		if p.FixedReadSize%opt.StripeUnit != 0 {
			add(AlignToStripe, fmt.Sprintf(
				"record size %d is not a multiple of the %d-byte stripe unit",
				p.FixedReadSize, opt.StripeUnit))
		}
	}
	if p.Reads >= opt.MinOps && p.SmallReadFrac >= opt.SmallThreshold {
		if p.SeqReadFrac >= 0.7 {
			add(EnablePrefetch, fmt.Sprintf(
				"%.0f%% of reads are small and %.0f%% sequential; read-ahead turns them into copies",
				100*p.SmallReadFrac, 100*p.SeqReadFrac))
		} else {
			add(AggregateRequests, fmt.Sprintf(
				"%.0f%% of reads below 2 KB; aggregation into stripe-sized requests recovers bandwidth",
				100*p.SmallReadFrac))
		}
	}
	if p.Writes >= opt.MinOps && p.SmallWriteFrac >= opt.SmallThreshold {
		add(UseWriteBehind, fmt.Sprintf(
			"%.0f%% of writes below 4 KB on the critical path; write-behind overlaps them with computation",
			100*p.SmallWriteFrac))
	}
	return out
}

// AdviseAll classifies the trace's files and returns all recommendations,
// sorted by file then kind.
func AdviseAll(profiles map[string]*Profile, opt Options) []Recommendation {
	var out []Recommendation
	files := make([]string, 0, len(profiles))
	for f := range profiles {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		out = append(out, Advise(profiles[f], opt)...)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
