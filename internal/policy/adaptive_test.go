package policy

import (
	"testing"

	"paragonio/internal/pfs"
	"paragonio/internal/sim"
)

// adaptRun drives the given read script through an AdaptiveReader on a
// 4 MB file and returns (loop virtual time, switches, final mode).
func adaptRun(t *testing.T, script func(p *sim.Proc, a *AdaptiveReader)) (sim.Time, int, string) {
	t.Helper()
	r := newRig(t)
	r.fs.CreateFile("f", 4<<20)
	var loop sim.Time
	var switches int
	var mode string
	r.k.Spawn("p", func(p *sim.Proc) {
		h, err := r.fs.Open(p, 0, "f", pfs.MAsync)
		if err != nil {
			t.Error(err)
			return
		}
		a := NewAdaptiveReader(h, 16)
		t0 := p.Now()
		script(p, a)
		loop = p.Now() - t0
		switches = a.Switches()
		mode = a.Mode()
		h.Close(p)
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	return loop, switches, mode
}

func TestAdaptiveDetectsSmallSequential(t *testing.T) {
	_, switches, mode := adaptRun(t, func(p *sim.Proc, a *AdaptiveReader) {
		for i := 0; i < 64; i++ {
			if _, err := a.Read(p, 512); err != nil {
				t.Error(err)
			}
		}
	})
	if mode != "prefetch" {
		t.Fatalf("mode = %s after small sequential stream", mode)
	}
	if switches != 1 {
		t.Fatalf("switches = %d, want 1", switches)
	}
}

func TestAdaptiveStaysPassthroughForLargeReads(t *testing.T) {
	_, switches, mode := adaptRun(t, func(p *sim.Proc, a *AdaptiveReader) {
		for i := 0; i < 32; i++ {
			if _, err := a.Read(p, 128<<10); err != nil {
				t.Error(err)
			}
		}
	})
	if mode != "passthrough" || switches != 0 {
		t.Fatalf("mode = %s, switches = %d", mode, switches)
	}
}

func TestAdaptiveNearBestStaticOnSmallStream(t *testing.T) {
	// Adaptive must land within 3x of the static prefetch reader on a
	// long small-sequential stream (it pays one classification epoch of
	// raw disk reads before engaging read-ahead).
	static := func(p *sim.Proc, h *pfs.Handle) sim.Time {
		pr := NewPrefetchReader(h, 0)
		t0 := p.Now()
		for i := 0; i < 512; i++ {
			pr.Read(p, 512)
		}
		return p.Now() - t0
	}
	r := newRig(t)
	r.fs.CreateFile("f", 4<<20)
	var staticLoop sim.Time
	r.k.Spawn("static", func(p *sim.Proc) {
		h, _ := r.fs.Open(p, 0, "f", pfs.MAsync)
		staticLoop = static(p, h)
		h.Close(p)
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	adaptive, _, _ := adaptRun(t, func(p *sim.Proc, a *AdaptiveReader) {
		for i := 0; i < 512; i++ {
			a.Read(p, 512)
		}
	})
	if adaptive > 3*staticLoop {
		t.Fatalf("adaptive (%v) not within 3x of static prefetch (%v)", adaptive, staticLoop)
	}
	// And far better than unadapted raw small reads.
	r2 := newRig(t)
	r2.fs.CreateFile("f", 4<<20)
	var rawLoop sim.Time
	r2.k.Spawn("raw", func(p *sim.Proc) {
		h, _ := r2.fs.Open(p, 0, "f", pfs.MAsync)
		h.SetBuffering(false)
		t0 := p.Now()
		for i := 0; i < 512; i++ {
			h.Read(p, 512)
		}
		rawLoop = p.Now() - t0
		h.Close(p)
	})
	if err := r2.k.Run(); err != nil {
		t.Fatal(err)
	}
	if adaptive*3 > rawLoop {
		t.Fatalf("adaptive (%v) not clearly better than raw (%v)", adaptive, rawLoop)
	}
}

func TestAdaptiveSwitchesBackOnPhaseChange(t *testing.T) {
	// PRISM-like stream: small sequential header, then large body reads.
	// The reader must enter prefetch for the header and return to
	// passthrough for the body, reading every byte exactly once.
	var total int64
	_, switches, mode := adaptRun(t, func(p *sim.Proc, a *AdaptiveReader) {
		for i := 0; i < 48; i++ {
			n, err := a.Read(p, 64)
			if err != nil {
				t.Error(err)
			}
			total += n
		}
		if err := a.Seek(p, 1<<20); err != nil {
			t.Error(err)
		}
		for i := 0; i < 20; i++ {
			n, err := a.Read(p, 128<<10)
			if err != nil {
				t.Error(err)
			}
			total += n
		}
	})
	if mode != "passthrough" {
		t.Fatalf("final mode = %s", mode)
	}
	if switches < 2 {
		t.Fatalf("switches = %d, want >= 2 (in and out of prefetch)", switches)
	}
	// 48 x 64 header bytes + body reads clamped at EOF (4 MB file, read
	// from 1 MB: 3 MB available, 20 x 128 KB = 2.5 MB requested).
	if want := int64(48*64 + 20*(128<<10)); total != want {
		t.Fatalf("read %d bytes, want %d", total, want)
	}
}

func TestAdaptiveReadPositionsCorrectly(t *testing.T) {
	// After prefetch mode leaves the handle ahead, a mode switch must
	// not skip data: logical offsets remain contiguous.
	r := newRig(t)
	r.fs.CreateFile("f", 1<<20)
	r.k.Spawn("p", func(p *sim.Proc) {
		h, _ := r.fs.Open(p, 0, "f", pfs.MAsync)
		a := NewAdaptiveReader(h, 8)
		// 24 small reads -> prefetch engaged; then large reads force the
		// switch back; positions must continue from 24*100.
		for i := 0; i < 24; i++ {
			a.Read(p, 100)
		}
		for i := 0; i < 16; i++ {
			a.Read(p, 32<<10)
		}
		if a.pos != int64(24*100+16*(32<<10)) {
			t.Errorf("pos = %d", a.pos)
		}
		h.Close(p)
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveBadSize(t *testing.T) {
	r := newRig(t)
	r.fs.CreateFile("f", 1024)
	r.k.Spawn("p", func(p *sim.Proc) {
		h, _ := r.fs.Open(p, 0, "f", pfs.MAsync)
		a := NewAdaptiveReader(h, 0)
		if _, err := a.Read(p, 0); err != pfs.ErrBadSize {
			t.Errorf("Read(0) err = %v", err)
		}
		h.Close(p)
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
}
