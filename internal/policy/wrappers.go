package policy

import (
	"paragonio/internal/pfs"
	"paragonio/internal/sim"
)

// AggWriter aggregates a stream of small sequential writes into
// stripe-sized file system requests — the "request aggregation ... by
// the file system would simplify code structure" policy of section 7,
// implemented client-side so its benefit can be measured against the
// unaggregated version A write streams.
type AggWriter struct {
	h         *pfs.Handle
	threshold int64
	pending   int64

	// statistics
	logicalWrites  int
	physicalWrites int
	bytes          int64
}

// NewAggWriter wraps a handle; threshold <= 0 defaults to the file
// system's stripe unit.
func NewAggWriter(h *pfs.Handle, threshold int64) *AggWriter {
	if threshold <= 0 {
		threshold = pfs.DefaultStripeUnit
	}
	return &AggWriter{h: h, threshold: threshold}
}

// Write buffers size bytes, issuing an aggregated file system write when
// the threshold accumulates.
func (w *AggWriter) Write(p *sim.Proc, size int64) error {
	if size <= 0 {
		return pfs.ErrBadSize
	}
	w.logicalWrites++
	w.bytes += size
	w.pending += size
	for w.pending >= w.threshold {
		if _, err := w.h.Write(p, w.threshold); err != nil {
			return err
		}
		w.physicalWrites++
		w.pending -= w.threshold
	}
	return nil
}

// Flush writes out any buffered remainder.
func (w *AggWriter) Flush(p *sim.Proc) error {
	if w.pending > 0 {
		if _, err := w.h.Write(p, w.pending); err != nil {
			return err
		}
		w.physicalWrites++
		w.pending = 0
	}
	return nil
}

// Stats returns (logical writes issued by the caller, physical writes
// issued to the file system, logical bytes).
func (w *AggWriter) Stats() (logical, physical int, bytes int64) {
	return w.logicalWrites, w.physicalWrites, w.bytes
}

// PrefetchReader serves a stream of small sequential reads from a large
// read-ahead window — deeper than the file system's per-handle buffer —
// quantifying the section 7 prefetching policy.
type PrefetchReader struct {
	h      *pfs.Handle
	window int64
	have   int64 // unconsumed bytes from the last fetch

	logicalReads  int
	physicalReads int
	bytes         int64
}

// NewPrefetchReader wraps a handle with a read-ahead window; window <= 0
// defaults to four stripe units.
func NewPrefetchReader(h *pfs.Handle, window int64) *PrefetchReader {
	if window <= 0 {
		window = 4 * pfs.DefaultStripeUnit
	}
	// The wrapper does its own read-ahead; disable the handle's small
	// buffer so costs are not double counted.
	h.SetBuffering(false)
	return &PrefetchReader{h: h, window: window}
}

// Read consumes size bytes, fetching a full window from the file system
// when the prefetched data runs out. Returns the bytes logically read
// (clamped at EOF like Handle.Read).
func (r *PrefetchReader) Read(p *sim.Proc, size int64) (int64, error) {
	if size <= 0 {
		return 0, pfs.ErrBadSize
	}
	r.logicalReads++
	var served int64
	for served < size {
		if r.have == 0 {
			n, err := r.h.Read(p, r.window)
			if err != nil {
				return served, err
			}
			r.physicalReads++
			if n == 0 {
				return served, nil // EOF
			}
			r.have = n
		}
		take := size - served
		if take > r.have {
			take = r.have
		}
		r.have -= take
		served += take
	}
	r.bytes += served
	return served, nil
}

// Stats returns (logical reads, physical reads, logical bytes).
func (r *PrefetchReader) Stats() (logical, physical int, bytes int64) {
	return r.logicalReads, r.physicalReads, r.bytes
}
