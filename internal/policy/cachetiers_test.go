package policy

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"paragonio/internal/cache"
	"paragonio/internal/faults"
	"paragonio/internal/pablo"
)

func at(ev pablo.Event, start time.Duration) pablo.Event {
	ev.Start = start
	return ev
}

// TestAdviseEmptyProfile: a profile with no operations produces no
// advice of either kind, and an empty trace produces an empty plan.
func TestAdviseEmptyProfile(t *testing.T) {
	p := &Profile{File: "x"}
	if recs := Advise(p, Options{}); recs != nil {
		t.Fatalf("mode advice on empty profile: %v", recs)
	}
	if recs := AdviseCache(p, CacheOptions{}); recs != nil {
		t.Fatalf("cache advice on empty profile: %v", recs)
	}
	plan := AdviseTiers(map[string]*Profile{}, CacheOptions{})
	if len(plan.Recs) != 0 || len(plan.Notes) != 0 || plan.Tiers.Enabled() {
		t.Fatalf("non-empty plan from no profiles: %+v", plan)
	}
}

// TestAdviseSingleRequestFile: one operation is below every MinOps
// threshold — the advisor must stay quiet rather than extrapolate.
func TestAdviseSingleRequestFile(t *testing.T) {
	tr := pablo.NewTrace()
	tr.Record(mkRead(0, "once", 0, 100, "M_UNIX"))
	p := Classify(tr)["once"]
	if p == nil || p.Reads != 1 {
		t.Fatalf("profile = %+v", p)
	}
	if recs := Advise(p, Options{}); recs != nil {
		t.Fatalf("mode advice on single request: %v", recs)
	}
	if recs := AdviseCache(p, CacheOptions{}); recs != nil {
		t.Fatalf("cache advice on single request: %v", recs)
	}
}

// TestAdviseConflictingSmallWrites: a stream of small sequential writes
// qualifies for both request aggregation and write-behind. The mode
// advisor resolves the conflict in favor of write-behind (aggregation
// triggers on reads only), and the cache advisor agrees.
func TestAdviseConflictingSmallWrites(t *testing.T) {
	tr := pablo.NewTrace()
	off := int64(0)
	for i := 0; i < 10; i++ {
		tr.Record(mkWrite(0, "log", off, 2048, "M_UNIX"))
		off += 2048
	}
	p := Classify(tr)["log"]
	recs := Advise(p, Options{})
	kinds := map[Kind]int{}
	for _, r := range recs {
		kinds[r.Kind]++
	}
	if kinds[UseWriteBehind] != 1 {
		t.Fatalf("want exactly one use-write-behind, got %v", recs)
	}
	if kinds[AggregateRequests] != 0 {
		t.Fatalf("aggregation recommended for a write stream: %v", recs)
	}
	crecs := AdviseCache(p, CacheOptions{})
	if len(crecs) != 1 || crecs[0].Kind != CacheWriteBehind {
		t.Fatalf("cache advice = %v, want one cache-write-behind", crecs)
	}
	if crecs[0].Tiers == nil || crecs[0].Tiers.IONode == nil || !crecs[0].Tiers.IONode.WriteBehind {
		t.Fatalf("cache-write-behind carries no write-behind tiers: %+v", crecs[0].Tiers)
	}
}

// TestAdviseRewriteVetoesReadAhead: a file whose working set is
// rewritten and then re-read is the PRISM staging shape — write-behind
// pays, but read-ahead on the re-read stream would only evict the
// resident dirty blocks. The conflict must resolve to wb=on, ra=off.
func TestAdviseRewriteVetoesReadAhead(t *testing.T) {
	tr := pablo.NewTrace()
	// Node 0 writes ten 64 KB blocks twice over (rewrite trigger), then
	// node 1 reads them back sequentially (cold, sequential — the
	// read-ahead trigger shape, except the blocks are freshly written).
	for pass := 0; pass < 2; pass++ {
		for i := int64(0); i < 10; i++ {
			tr.Record(mkWrite(0, "stage", i*SignalBlock, SignalBlock, "M_ASYNC"))
		}
	}
	for i := int64(0); i < 10; i++ {
		tr.Record(mkRead(1, "stage", i*SignalBlock, SignalBlock, "M_ASYNC"))
	}
	p := Classify(tr)["stage"]
	if p.ReadAfterWriteFrac < 0.99 {
		t.Fatalf("ReadAfterWriteFrac = %g, want ~1", p.ReadAfterWriteFrac)
	}
	crecs := AdviseCache(p, CacheOptions{})
	kinds := map[Kind]int{}
	for _, r := range crecs {
		kinds[r.Kind]++
	}
	if kinds[CacheWriteBehind] != 1 || kinds[AvoidReadAhead] != 1 {
		t.Fatalf("want write-behind + avoid-read-ahead, got %v", crecs)
	}
	if kinds[CacheReadAhead] != 0 {
		t.Fatalf("read-ahead recommended over a freshly written stream: %v", crecs)
	}
	plan := AdviseTiers(map[string]*Profile{"stage": p}, CacheOptions{})
	ion := plan.Tiers.IONode
	if ion == nil || !ion.WriteBehind || ion.ReadAhead != 0 {
		t.Fatalf("merged tiers = %v, want wb=on ra=off", plan.Tiers)
	}
}

// TestAdviseClientTierFromReuse: per-node private returns to a block
// set recommend the client tier (with a TTL covering the whole reuse
// span — leases never renew locally) and argue against the I/O-node
// tier, which must stay off when nothing else wants it.
func TestAdviseClientTierFromReuse(t *testing.T) {
	tr := pablo.NewTrace()
	// Node 0 sweeps four blocks, computes for five minutes, sweeps again.
	for pass := 0; pass < 2; pass++ {
		base := time.Duration(pass) * 5 * time.Minute
		for i := int64(0); i < 4; i++ {
			tr.Record(at(mkRead(0, "quad", i*SignalBlock, SignalBlock, "M_RECORD"),
				base+time.Duration(i)*time.Second))
		}
	}
	p := Classify(tr)["quad"]
	if p.ReuseReadFrac < 0.25 || p.SharedReadFrac != 0 {
		t.Fatalf("reuse=%g shared=%g", p.ReuseReadFrac, p.SharedReadFrac)
	}
	if p.MaxReuseSpan < p.MaxReuseGap || p.MaxReuseSpan < 5*time.Minute {
		t.Fatalf("span=%v gap=%v", p.MaxReuseSpan, p.MaxReuseGap)
	}
	crecs := AdviseCache(p, CacheOptions{})
	kinds := map[Kind]int{}
	for _, r := range crecs {
		kinds[r.Kind]++
	}
	for _, k := range []Kind{CacheClientTier, CacheClientTTL, AvoidIONodeCache} {
		if kinds[k] != 1 {
			t.Fatalf("missing %v in %v", k, crecs)
		}
	}
	plan := AdviseTiers(map[string]*Profile{"quad": p}, CacheOptions{})
	if plan.Tiers.IONode != nil {
		t.Fatalf("I/O-node tier configured for node-private reuse: %v", plan.Tiers)
	}
	cl := plan.Tiers.Client
	if cl == nil {
		t.Fatalf("no client tier in %v", plan.Tiers)
	}
	if cl.LeaseTTL < p.MaxReuseSpan {
		t.Fatalf("lease %v does not cover the %v reuse span", cl.LeaseTTL, p.MaxReuseSpan)
	}
	if cl.CapacityBytes&(cl.CapacityBytes-1) != 0 || cl.CapacityBytes < 2*p.PerNodeReadWS {
		t.Fatalf("capacity %d not a power of two covering 2x%d", cl.CapacityBytes, p.PerNodeReadWS)
	}
}

// TestAdviseTiersDeterministicOrdering: recommendations come out sorted
// by file, and repeated calls over the same map produce identical
// output (map iteration order must not leak through).
func TestAdviseTiersDeterministicOrdering(t *testing.T) {
	tr := pablo.NewTrace()
	for _, f := range []string{"b", "c", "a"} {
		off := int64(0)
		for i := 0; i < 10; i++ {
			tr.Record(mkWrite(0, f, off, 2048, "M_UNIX"))
			off += 2048
		}
	}
	profs := Classify(tr)
	first := AdviseTiers(profs, CacheOptions{})
	for i := 0; i < 10; i++ {
		again := AdviseTiers(profs, CacheOptions{})
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("plan differs between calls:\n%+v\n%+v", first, again)
		}
	}
	files := make([]string, 0, len(first.Recs))
	for _, r := range first.Recs {
		files = append(files, r.File)
	}
	if !sort.StringsAreSorted(files) {
		t.Fatalf("recs not sorted by file: %v", files)
	}
	all := AdviseAll(profs, Options{})
	files = files[:0]
	for _, r := range all {
		files = append(files, r.File)
	}
	if !sort.StringsAreSorted(files) {
		t.Fatalf("AdviseAll not sorted by file: %v", files)
	}
}

// TestAdviseTiersFaultAware: the advisor trims its plan for the fault
// schedule the machine will run under. An array-side fault bounds
// write-behind exposure with a short flush deadline; a client flap caps
// the lease TTL at the default; a healthy plan changes nothing.
func TestAdviseTiersFaultAware(t *testing.T) {
	wbTrace := pablo.NewTrace()
	off := int64(0)
	for i := 0; i < 10; i++ {
		wbTrace.Record(mkWrite(0, "log", off, 2048, "M_UNIX"))
		off += 2048
	}
	wbProfs := Classify(wbTrace)

	healthy := AdviseTiers(wbProfs, CacheOptions{})
	if healthy.Tiers.IONode == nil || healthy.Tiers.IONode.FlushDeadline != 0 {
		t.Fatalf("healthy plan = %v, want wb=on with no flush deadline", healthy.Tiers)
	}

	for _, f := range []faults.Fault{
		{Kind: faults.DiskFail, At: time.Second, IONode: 0},
		{Kind: faults.NodeCrash, At: time.Second, IONode: 1},
		{Kind: faults.Straggler, At: time.Second, IONode: 0, Factor: 4},
	} {
		opt := CacheOptions{Faults: faults.Plan{Faults: []faults.Fault{f}}}
		plan := AdviseTiers(wbProfs, opt)
		ion := plan.Tiers.IONode
		if ion == nil || !ion.WriteBehind {
			t.Fatalf("%s: write-behind dropped: %v", f.Kind, plan.Tiers)
		}
		if ion.FlushDeadline != faultRiskFlushDeadline {
			t.Errorf("%s: flush deadline = %v, want %v", f.Kind, ion.FlushDeadline, faultRiskFlushDeadline)
		}
		if len(plan.Notes) == 0 {
			t.Errorf("%s: no note recorded for the tightened deadline", f.Kind)
		}
	}

	// A client flap alone must not touch the I/O-node tier.
	flapOnly := AdviseTiers(wbProfs, CacheOptions{Faults: faults.Plan{Faults: []faults.Fault{
		{Kind: faults.ClientFlap, At: time.Second, Node: 0}}}})
	if flapOnly.Tiers.IONode == nil || flapOnly.Tiers.IONode.FlushDeadline != 0 {
		t.Errorf("client flap tightened the I/O-node flusher: %v", flapOnly.Tiers)
	}

	clTrace := pablo.NewTrace()
	for pass := 0; pass < 2; pass++ {
		base := time.Duration(pass) * 5 * time.Minute
		for i := int64(0); i < 4; i++ {
			clTrace.Record(at(mkRead(0, "quad", i*SignalBlock, SignalBlock, "M_RECORD"),
				base+time.Duration(i)*time.Second))
		}
	}
	clProfs := Classify(clTrace)
	longLease := AdviseTiers(clProfs, CacheOptions{})
	if longLease.Tiers.Client == nil || longLease.Tiers.Client.LeaseTTL <= cache.DefaultClientTTL {
		t.Fatalf("reuse profile did not earn a long lease: %v", longLease.Tiers)
	}
	capped := AdviseTiers(clProfs, CacheOptions{Faults: faults.Plan{Faults: []faults.Fault{
		{Kind: faults.ClientFlap, At: time.Second, Node: 0}}}})
	if capped.Tiers.Client == nil || capped.Tiers.Client.LeaseTTL != cache.DefaultClientTTL {
		t.Errorf("flap plan left lease at %v, want cap %v", capped.Tiers.Client.LeaseTTL, cache.DefaultClientTTL)
	}
	if len(capped.Notes) == 0 {
		t.Error("no note recorded for the capped lease")
	}
	// Array-side faults leave the client tier's lease alone.
	unCapped := AdviseTiers(clProfs, CacheOptions{Faults: faults.Plan{Faults: []faults.Fault{
		{Kind: faults.DiskFail, At: time.Second, IONode: 0}}}})
	if unCapped.Tiers.Client == nil || unCapped.Tiers.Client.LeaseTTL != longLease.Tiers.Client.LeaseTTL {
		t.Errorf("disk-fail plan changed the client lease: %v", unCapped.Tiers)
	}
}

// TestTiersString pins the advisor's rendering of a merged plan — the
// string docs/ADVISOR.md shows and the CLIs print.
func TestTiersString(t *testing.T) {
	cases := []struct {
		tiers cache.Tiers
		want  string
	}{
		{cache.Tiers{}, "none (paper default)"},
		{cache.Tiers{IONode: &cache.Config{WriteBehind: true, CapacityBytes: 4 << 20}},
			"ionode{wb=on ra=off cap=4MB}"},
		{cache.Tiers{
			IONode: &cache.Config{ReadAhead: 4, CapacityBytes: 32 << 20, FlushDeadline: 100 * time.Millisecond},
			Client: &cache.ClientConfig{CapacityBytes: 8 << 20, LeaseTTL: 12 * time.Minute},
		}, "ionode{wb=off ra=4 cap=32MB deadline=100ms} + client{cap=8MB ttl=12m0s}"},
		{cache.Tiers{Client: &cache.ClientConfig{CapacityBytes: 1 << 20}},
			"client{cap=1MB ttl=500ms (default)}"},
	}
	for _, c := range cases {
		if got := c.tiers.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
