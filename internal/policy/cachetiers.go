package policy

// Cache-tier advice: the second half of the advisor. Advise maps access
// patterns to access modes (the paper's section 7 list); AdviseCache and
// AdviseTiers map the block-granular reuse signals (SignalBlock) to a
// concrete cache.Tiers configuration — write-behind, read-ahead depth,
// I/O-node capacity, client tier and lease TTL — including the negative
// calls: the PRISM restart stream where read-ahead pollutes a
// dirty-block-resident hot set, and the carbon-monoxide shape where a
// shared I/O-node cache loses outright and only a client tier wins.

import (
	"fmt"
	"sort"
	"time"

	"paragonio/internal/cache"
	"paragonio/internal/faults"
)

// CacheOptions tunes the cache advisor.
type CacheOptions struct {
	// IONodes is how many I/O nodes share the server tier; recommended
	// capacity is per I/O node (default 16, the paper's machine).
	IONodes int
	// MinOps: ignore files with fewer data operations (default 8).
	MinOps int
	// IONodeFloor/IONodeCeil clamp the recommended per-I/O-node
	// capacity (defaults 4 MB and 32 MB, the cachewhatif sweep range).
	IONodeFloor, IONodeCeil int64
	// ClientFloor/ClientCeil clamp the recommended per-client capacity
	// (defaults 1 MB and 16 MB, the clientcache sweep range).
	ClientFloor, ClientCeil int64
	// ReadAheadDepth is the depth recommended when prefetch pays
	// (default 4 blocks, the cachewhatif depth).
	ReadAheadDepth int
	// Faults is the fault plan the advised machine will run under; the
	// advisor trims its recommendation for a machine it knows will
	// degrade (see AdviseTiers). Empty means a healthy machine.
	Faults faults.Plan
}

func (o *CacheOptions) defaults() {
	if o.IONodes == 0 {
		o.IONodes = 16
	}
	if o.MinOps == 0 {
		o.MinOps = 8
	}
	if o.IONodeFloor == 0 {
		o.IONodeFloor = 4 << 20
	}
	if o.IONodeCeil == 0 {
		o.IONodeCeil = 32 << 20
	}
	if o.ClientFloor == 0 {
		o.ClientFloor = 1 << 20
	}
	if o.ClientCeil == 0 {
		o.ClientCeil = 16 << 20
	}
	if o.ReadAheadDepth == 0 {
		o.ReadAheadDepth = 4
	}
}

// cacheSignals is the per-file trigger evaluation shared by AdviseCache
// (which renders findings) and AdviseTiers (which merges them).
type cacheSignals struct {
	writeBehind bool // writes worth absorbing in an I/O-node cache
	rewrites    bool // ... because the file rewrites its working set
	capacity    bool // cross-node shared hot set worth holding server-side
	readAhead   bool // cold private sequential stream worth prefetching
	avoidRA     bool // read-ahead would pollute a resident set
	rawHeavy    bool // ... because reads land on just-written blocks
	client      bool // per-node private reuse worth a client tier
	ttl         time.Duration
	logTier     bool // write-dominated burst stream worth a host-side log
	avoidLog    bool // read-back would stall on the drain; keep the log off
}

// minLogBytes is the smallest written volume worth a host-side log: a
// stream below it fits in a single drain batch anyway, so the tier's
// append machinery buys nothing.
const minLogBytes = 4 << 20

func evalCacheSignals(p *Profile, opt CacheOptions) cacheSignals {
	var s cacheSignals
	if p.Writes >= opt.MinOps {
		s.rewrites = p.WriteWS > 0 && p.BytesWritten >= 2*p.WriteWS
		s.writeBehind = p.SmallWriteFrac >= 0.8 || s.rewrites
	}
	if p.Reads >= opt.MinOps {
		s.capacity = p.SharedReadFrac >= 0.5 && p.ReadOpsPerBlock >= 2
		s.rawHeavy = p.ReadAfterWriteFrac >= 0.5
		s.avoidRA = s.capacity || s.rawHeavy
		s.client = p.ReuseReadFrac >= 0.25 && p.SharedReadFrac < 0.5 &&
			p.PerNodeReadWS > 0
		s.readAhead = !s.avoidRA && !s.client &&
			p.SeqReadFrac >= 0.7 && p.SharedReadFrac < 0.5 &&
			p.ReuseReadFrac < 0.25 && p.ReadOpsPerBlock <= 2
		if s.client {
			s.ttl = leaseTTLFor(p)
		}
	}
	if p.Writes >= opt.MinOps && p.BytesWritten >= minLogBytes {
		// The log tier wants pure write bursts: enough volume to matter,
		// write time dominating, and (the hard requirement) no read-back
		// — every read overlapping an undrained record stalls on the
		// drain, so RAW streams belong to the block cache instead.
		if p.ReadAfterWriteFrac >= 0.5 && p.Reads >= opt.MinOps {
			s.avoidLog = true
		} else if p.ReadAfterWriteFrac < 0.25 && p.WriteTime >= 2*p.ReadTime {
			s.logTier = true
		}
	}
	return s
}

// leaseTTLFor sizes a client lease for a profile's observed reuse: the
// tier never renews a lease locally, so it must cover the whole span
// from first touch to last return, with one more gap as margin, rounded
// up to a whole minute.
func leaseTTLFor(p *Profile) time.Duration {
	need := p.MaxReuseSpan + p.MaxReuseGap
	if need <= 0 {
		return 0
	}
	return ((need + time.Minute - 1) / time.Minute) * time.Minute
}

// AdviseCache inspects one file's profile and returns its cache-tier
// findings, each carrying the cache.Tiers fragment it argues for (nil
// on the negative kinds). Use AdviseTiers to merge findings across a
// whole trace into one configuration.
func AdviseCache(p *Profile, opt CacheOptions) []Recommendation {
	opt.defaults()
	s := evalCacheSignals(p, opt)
	var out []Recommendation
	add := func(k Kind, t *cache.Tiers, reason string) {
		out = append(out, Recommendation{File: p.File, Kind: k, Reason: reason, Tiers: t})
	}
	if s.writeBehind {
		reason := fmt.Sprintf(
			"%.0f%% of writes below 4 KB; write-behind acknowledges them at memory-copy cost",
			100*p.SmallWriteFrac)
		if !(p.SmallWriteFrac >= 0.8) {
			reason = fmt.Sprintf(
				"file rewrites its %s working set %.1f times over; write-behind absorbs the rewrites in cache",
				cache.FormatSize(p.WriteWS), float64(p.BytesWritten)/float64(p.WriteWS))
		}
		add(CacheWriteBehind,
			&cache.Tiers{IONode: &cache.Config{WriteBehind: true}}, reason)
	}
	if s.capacity {
		capBytes := clampPow2(2*p.ReadWS/int64(opt.IONodes), opt.IONodeFloor, opt.IONodeCeil)
		add(CacheIONodeCapacity,
			&cache.Tiers{IONode: &cache.Config{CapacityBytes: capBytes}},
			fmt.Sprintf(
				"%.1f reads per distinct block, %.0f%% of touches on cross-node shared blocks; hold the %s hot set at the I/O nodes",
				p.ReadOpsPerBlock, 100*p.SharedReadFrac, cache.FormatSize(p.ReadWS)))
	}
	if s.avoidRA {
		reason := "the read stream is served from a resident shared hot set; speculative fills would only evict it"
		if s.rawHeavy {
			reason = fmt.Sprintf(
				"%.0f%% of read touches land on blocks this run wrote; with write-behind they are already resident and read-ahead only evicts them",
				100*p.ReadAfterWriteFrac)
		}
		add(AvoidReadAhead, nil, reason)
	}
	if s.readAhead {
		add(CacheReadAhead,
			&cache.Tiers{IONode: &cache.Config{ReadAhead: opt.ReadAheadDepth}},
			fmt.Sprintf(
				"%.0f%% sequential cold reads with no reuse behind them; read-ahead depth %d overlaps the disks with the stream",
				100*p.SeqReadFrac, opt.ReadAheadDepth))
	}
	if s.client {
		capBytes := clampPow2(2*p.PerNodeReadWS, opt.ClientFloor, opt.ClientCeil)
		add(CacheClientTier,
			&cache.Tiers{Client: &cache.ClientConfig{CapacityBytes: capBytes}},
			fmt.Sprintf(
				"%.0f%% of read touches return to node-private blocks (%s per node); a client tier serves them without any I/O-node trip",
				100*p.ReuseReadFrac, cache.FormatSize(p.PerNodeReadWS)))
		if s.ttl > cache.DefaultClientTTL {
			add(CacheClientTTL,
				&cache.Tiers{Client: &cache.ClientConfig{LeaseTTL: s.ttl}},
				fmt.Sprintf(
					"reuse spans %s per block and leases never renew locally; a %v lease keeps every return a hit",
					p.MaxReuseSpan.Round(time.Second), s.ttl))
		}
		add(AvoidIONodeCache, nil, fmt.Sprintf(
			"reads are node-private (%.0f%% shared); a server-side cache adds lookup cost with nothing to share",
			100*p.SharedReadFrac))
	}
	if s.logTier {
		capBytes := clampPow2(p.WriteWS, cache.DefaultLogCapacity, 64<<20)
		add(CacheLogTier,
			&cache.Tiers{Log: &cache.LogConfig{CapacityBytes: capBytes}},
			fmt.Sprintf(
				"%s written with %.0f%% read-back; a host-side log absorbs the bursts at memory speed and drains sequentially",
				cache.FormatSize(p.BytesWritten), 100*p.ReadAfterWriteFrac))
	}
	if s.avoidLog {
		add(AvoidLogTier, nil, fmt.Sprintf(
			"%.0f%% of read touches land on just-written blocks; logged records would stall every such read on the drain, while write-behind serves them from resident dirty blocks",
			100*p.ReadAfterWriteFrac))
	}
	return out
}

// TiersPlan is AdviseTiers' result: the per-file findings plus the one
// merged cache.Tiers the advisor would actually configure.
type TiersPlan struct {
	// Recs are the per-file cache findings, sorted by file then kind.
	Recs []Recommendation
	// Tiers is the merged machine configuration. The zero value (both
	// tiers nil) means "leave caching off" — itself a finding, and the
	// honest call for the carbon-monoxide I/O-node case.
	Tiers cache.Tiers
	// Notes records the merge rationale the per-file findings cannot
	// carry: which negative findings won and why, in input order.
	Notes []string
}

// AdviseTiers evaluates every profile's cache findings and merges them
// into one cache.Tiers for the whole machine. Files pull in different
// directions, so the merge weighs each finding by the time the file
// spent in the operations it would accelerate (or slow down): the
// I/O-node tier is enabled only when the read/write time behind the
// positive findings exceeds the read time of files that a shared cache
// would penalize, and one AvoidReadAhead finding vetoes read-ahead for
// the whole tier — prefetch pollution costs more than a cold stream
// gains (the PRISM restart lesson).
func AdviseTiers(profiles map[string]*Profile, opt CacheOptions) TiersPlan {
	opt.defaults()
	var plan TiersPlan

	files := make([]string, 0, len(profiles))
	for f := range profiles {
		files = append(files, f)
	}
	sort.Strings(files)

	var (
		pro, anti    time.Duration // I/O-node tier: for and against
		wbOn, capOn  bool
		raOn, raVeto bool
		clientOn     bool
		ionodeWS     int64 // working set the I/O-node tier must hold
		clientWS     int64 // summed per-node client working sets
		clientTTL    time.Duration
		antiFile     string // heaviest file arguing against the tier
		antiFileCost time.Duration
		logOn        bool
		logVeto      bool
		logWS        int64  // summed write working sets behind the log
		logVetoFile  string // heaviest RAW file vetoing the log tier
		logVetoCost  time.Duration
	)
	for _, f := range files {
		p := profiles[f]
		s := evalCacheSignals(p, opt)
		plan.Recs = append(plan.Recs, AdviseCache(p, opt)...)
		if s.writeBehind {
			wbOn = true
			pro += p.WriteTime
			ionodeWS += p.WriteWS
		}
		if s.capacity {
			capOn = true
			pro += p.ReadTime
			ionodeWS += p.ReadWS
		}
		if s.readAhead {
			raOn = true
			pro += p.ReadTime
		}
		if s.avoidRA {
			raVeto = true
		}
		if s.client {
			clientOn = true
			anti += p.ReadTime
			if p.ReadTime > antiFileCost {
				antiFileCost, antiFile = p.ReadTime, f
			}
			clientWS += p.PerNodeReadWS
			if s.ttl > clientTTL {
				clientTTL = s.ttl
			}
		}
		if s.logTier {
			logOn = true
			logWS += p.WriteWS
		}
		if s.avoidLog {
			logVeto = true
			logWS += p.WriteWS
			if p.ReadTime > logVetoCost {
				logVetoCost, logVetoFile = p.ReadTime, f
			}
		}
	}

	if wbOn || capOn || raOn {
		if pro > anti {
			cfg := &cache.Config{
				WriteBehind:   wbOn,
				CapacityBytes: clampPow2(2*ionodeWS/int64(opt.IONodes), opt.IONodeFloor, opt.IONodeCeil),
			}
			if raOn && !raVeto {
				cfg.ReadAhead = opt.ReadAheadDepth
			}
			plan.Tiers.IONode = cfg
			if raVeto {
				plan.Notes = append(plan.Notes,
					"read-ahead held at 0: staged or shared blocks are already resident, and speculative fills would evict them (the PRISM restart case)")
			}
		} else {
			plan.Notes = append(plan.Notes, fmt.Sprintf(
				"I/O-node tier left off: %v of node-private reads (heaviest: %s) outweigh %v of cacheable traffic (the carbon-monoxide case)",
				anti.Round(time.Second), antiFile, pro.Round(time.Second)))
		}
	}
	if clientOn {
		cc := &cache.ClientConfig{
			CapacityBytes: clampPow2(2*clientWS, opt.ClientFloor, opt.ClientCeil),
			LeaseTTL:      clientTTL,
		}
		plan.Tiers.Client = cc
	}
	if logOn || logVeto {
		// RAW read-back vetoes the log tier only on a machine without a
		// write-behind block cache: log-only forces every read-back to
		// the disks (or onto the drain barrier), while drains through a
		// write-behind tier leave the blocks resident — read-back then
		// costs the same as write-behind alone and appends still skip
		// the mesh round trip entirely.
		wb := plan.Tiers.IONode != nil && plan.Tiers.IONode.WriteBehind
		if logVeto && !wb {
			plan.Notes = append(plan.Notes, fmt.Sprintf(
				"log tier left off: %s reads back what it writes (%v of reads) and no block cache would hold the drained blocks, so every read-back pays disk or drain-barrier cost (the RAW-resident restart case)",
				logVetoFile, logVetoCost.Round(time.Second)))
		} else {
			plan.Tiers.Log = &cache.LogConfig{
				CapacityBytes: clampPow2(logWS, cache.DefaultLogCapacity, 64<<20),
			}
			if logVeto {
				plan.Notes = append(plan.Notes, fmt.Sprintf(
					"log tier enabled alongside write-behind: %s reads back what it writes, but drains land in the block cache so read-back stays resident while appends bypass the mesh",
					logVetoFile))
			}
		}
	}
	adviseFaults(&plan, opt)
	return plan
}

// faultRiskFlushDeadline bounds write-behind exposure on a machine that
// is scheduled to degrade: every acknowledged dirty block must reach
// the array within this window.
const faultRiskFlushDeadline = 50 * time.Millisecond

// adviseFaults trims the merged configuration for the fault plan the
// machine will run under (CacheOptions.Faults). Two adjustments, both
// defensive: with an array-side fault scheduled (disk-fail, node-crash,
// or straggler), write-behind still acknowledges at memory-copy cost
// but each acknowledged dirty block sits exposed in volatile cache
// while the array it must reach is broken or slow — the advisor bounds
// the exposure by switching the flusher to a short deadline. With a
// client-flap scheduled, leases are recalled wholesale mid-run, so the
// advisor caps the lease TTL at the default rather than sizing it to
// reuse spans the storm severs anyway.
func adviseFaults(plan *TiersPlan, opt CacheOptions) {
	if opt.Faults.Empty() {
		return
	}
	var arraySide, flap bool
	for _, f := range opt.Faults.Faults {
		switch f.Kind {
		case faults.DiskFail, faults.NodeCrash, faults.Straggler:
			arraySide = true
		case faults.ClientFlap:
			flap = true
		}
	}
	if arraySide && plan.Tiers.IONode != nil && plan.Tiers.IONode.WriteBehind &&
		(plan.Tiers.IONode.FlushDeadline == 0 || plan.Tiers.IONode.FlushDeadline > faultRiskFlushDeadline) {
		plan.Tiers.IONode.FlushDeadline = faultRiskFlushDeadline
		plan.Notes = append(plan.Notes, fmt.Sprintf(
			"flush deadline tightened to %v: the fault plan degrades the array, and every write-behind-acknowledged dirty block is exposure until it reaches the disks",
			faultRiskFlushDeadline))
	}
	if arraySide && plan.Tiers.Log != nil &&
		(plan.Tiers.Log.DrainDeadline == 0 || plan.Tiers.Log.DrainDeadline > faultRiskFlushDeadline) {
		// The log tier's default drain deadline already equals the
		// fault-risk bound, but an explicit value pins the exposure
		// argument in the plan (and survives future default changes).
		plan.Tiers.Log.DrainDeadline = faultRiskFlushDeadline
		plan.Notes = append(plan.Notes, fmt.Sprintf(
			"log drain deadline pinned at %v: the fault plan degrades the array, and every logged record is exposure until the drain lands it",
			faultRiskFlushDeadline))
	}
	if flap && plan.Tiers.Client != nil && plan.Tiers.Client.LeaseTTL > cache.DefaultClientTTL {
		plan.Tiers.Client.LeaseTTL = cache.DefaultClientTTL
		plan.Notes = append(plan.Notes, fmt.Sprintf(
			"client lease TTL capped at %v: the fault plan flaps a client, and long leases only widen each recall storm",
			cache.DefaultClientTTL))
	}
}

// clampPow2 rounds n up to a power of two and clamps it to [lo, hi]
// (lo and hi are assumed to be powers of two themselves).
func clampPow2(n, lo, hi int64) int64 {
	p := lo
	for p < n && p < hi {
		p <<= 1
	}
	return p
}
