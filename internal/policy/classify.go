// Package policy operationalizes the paper's conclusions (section 7):
// it classifies per-file access patterns from Pablo traces and recommends
// the file-system features — collective opens, access modes, request
// aggregation, prefetching, write-behind — that would serve each pattern,
// and provides client-side aggregation/prefetch wrappers to quantify what
// those policies buy.
//
// Run against the version A traces, the advisor reproduces the tuning
// decisions the application developers made by hand over eighteen months
// (broadcast-style global reads, M_ASYNC staging writes, M_RECORD
// reloads), which is exactly the paper's argument for smarter file
// systems.
package policy

import (
	"sort"

	"paragonio/internal/pablo"
)

// Profile summarizes one file's observed access pattern.
type Profile struct {
	File string

	Readers []int // nodes that read
	Writers []int // nodes that wrote

	Reads, Writes, Seeks, Opens, Gopens int

	BytesRead, BytesWritten int64

	// MeanReadSize and MeanWriteSize are in bytes (0 when no ops).
	MeanReadSize, MeanWriteSize float64

	// SmallReadFrac: fraction of reads below 2 KB (the paper's "small"
	// threshold). SmallWriteFrac: fraction of writes below 4 KB —
	// writes that cannot amortize positioning even within one stripe.
	SmallReadFrac, SmallWriteFrac float64

	// SeqReadFrac: fraction of a node's reads continuing at its previous
	// end offset, averaged over nodes.
	SeqReadFrac float64

	// IdenticalReads: every reading node issued the same (offset, size)
	// sequence — the signature of a broadcast-worthy global read.
	IdenticalReads bool

	// InterleavedWrites: multiple writers whose offsets interleave in a
	// regular node-strided pattern (the staging-write signature).
	InterleavedWrites bool

	// FixedReadSize is non-zero when >90% of non-trivial reads share one
	// size (an M_RECORD candidate when nodes read disjoint areas).
	FixedReadSize int64

	// SeeksPerWrite: seek ops per write op (pointer-repositioning load).
	SeeksPerWrite float64

	// Modes observed on the file's operations (all types), and on the
	// data operations specifically — mode changes mid-file (the PRISM
	// restart pattern) make the distinction matter.
	Modes      map[string]int
	ReadModes  map[string]int
	WriteModes map[string]int
}

// nodeKey identifies one node's stream against one file.
type nodeKey struct {
	file string
	node int
}

// Classify builds a Profile for each file in the trace, keyed by name.
func Classify(t *pablo.Trace) map[string]*Profile {
	out := make(map[string]*Profile)
	lastEnd := make(map[nodeKey]int64)
	seqHits := make(map[nodeKey]int)
	readsBy := make(map[nodeKey]int)
	readSeq := make(map[nodeKey][]pablo.Event)
	writeOffsets := make(map[string]map[int][]int64)
	readSizes := make(map[string]map[int64]int)

	get := func(file string) *Profile {
		p := out[file]
		if p == nil {
			p = &Profile{
				File:       file,
				Modes:      make(map[string]int),
				ReadModes:  make(map[string]int),
				WriteModes: make(map[string]int),
			}
			out[file] = p
		}
		return p
	}
	readerSet := make(map[string]map[int]bool)
	writerSet := make(map[string]map[int]bool)

	for _, ev := range t.Events() {
		if ev.File == "" {
			continue
		}
		p := get(ev.File)
		p.Modes[ev.Mode]++
		k := nodeKey{ev.File, ev.Node}
		switch ev.Op {
		case pablo.OpOpen:
			p.Opens++
		case pablo.OpGopen:
			p.Gopens++
		case pablo.OpSeek:
			p.Seeks++
		case pablo.OpRead:
			if ev.Size <= 0 {
				continue
			}
			p.Reads++
			p.ReadModes[ev.Mode]++
			p.BytesRead += ev.Size
			if ev.Size < 2048 {
				p.SmallReadFrac++ // normalized later
			}
			if readerSet[ev.File] == nil {
				readerSet[ev.File] = map[int]bool{}
			}
			readerSet[ev.File][ev.Node] = true
			if lastEnd[k] == ev.Offset && readsBy[k] > 0 {
				seqHits[k]++
			}
			readsBy[k]++
			lastEnd[k] = ev.Offset + ev.Size
			readSeq[k] = append(readSeq[k], ev)
			if readSizes[ev.File] == nil {
				readSizes[ev.File] = map[int64]int{}
			}
			readSizes[ev.File][ev.Size]++
		case pablo.OpWrite:
			if ev.Size <= 0 {
				continue
			}
			p.Writes++
			p.WriteModes[ev.Mode]++
			p.BytesWritten += ev.Size
			if ev.Size < 4096 {
				p.SmallWriteFrac++
			}
			if writerSet[ev.File] == nil {
				writerSet[ev.File] = map[int]bool{}
			}
			writerSet[ev.File][ev.Node] = true
			if writeOffsets[ev.File] == nil {
				writeOffsets[ev.File] = map[int][]int64{}
			}
			writeOffsets[ev.File][ev.Node] = append(writeOffsets[ev.File][ev.Node], ev.Offset)
		}
	}

	for file, p := range out {
		p.Readers = sortedNodes(readerSet[file])
		p.Writers = sortedNodes(writerSet[file])
		if p.Reads > 0 {
			p.MeanReadSize = float64(p.BytesRead) / float64(p.Reads)
			p.SmallReadFrac /= float64(p.Reads)
		}
		if p.Writes > 0 {
			p.MeanWriteSize = float64(p.BytesWritten) / float64(p.Writes)
			p.SmallWriteFrac /= float64(p.Writes)
			p.SeeksPerWrite = float64(p.Seeks) / float64(p.Writes)
		}
		// Sequentiality: average per-node fraction.
		var seqSum float64
		var nodes int
		for k, n := range readsBy {
			if k.file != file || n < 2 {
				continue
			}
			seqSum += float64(seqHits[k]) / float64(n-1)
			nodes++
		}
		if nodes > 0 {
			p.SeqReadFrac = seqSum / float64(nodes)
		}
		p.IdenticalReads = identicalReads(file, p.Readers, readSeq)
		p.InterleavedWrites = interleavedWrites(writeOffsets[file])
		p.FixedReadSize = dominantSize(readSizes[file], p.Reads)
	}
	return out
}

func sortedNodes(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// identicalReads reports whether every reading node issued the same
// (offset, size) sequence.
func identicalReads(file string, readers []int, seq map[nodeKey][]pablo.Event) bool {
	if len(readers) < 2 {
		return false
	}
	ref := seq[nodeKey{file, readers[0]}]
	for _, node := range readers[1:] {
		other := seq[nodeKey{file, node}]
		if len(other) != len(ref) {
			return false
		}
		for i := range ref {
			if ref[i].Offset != other[i].Offset || ref[i].Size != other[i].Size {
				return false
			}
		}
	}
	return len(ref) > 0
}

// interleavedWrites reports whether several writers wrote node-strided
// interleaved offsets (each node's successive offsets advance by the
// same stride, and nodes' bases differ).
func interleavedWrites(byNode map[int][]int64) bool {
	if len(byNode) < 2 {
		return false
	}
	var strides []int64
	for _, offs := range byNode {
		if len(offs) < 2 {
			return false
		}
		stride := offs[1] - offs[0]
		if stride <= 0 {
			return false
		}
		for i := 2; i < len(offs); i++ {
			if offs[i]-offs[i-1] != stride {
				return false
			}
		}
		strides = append(strides, stride)
	}
	for _, s := range strides[1:] {
		if s != strides[0] {
			return false
		}
	}
	return true
}

// dominantSize returns the request size covering >90% of reads, or 0.
func dominantSize(counts map[int64]int, total int) int64 {
	if total == 0 {
		return 0
	}
	for size, n := range counts {
		if float64(n) > 0.9*float64(total) {
			return size
		}
	}
	return 0
}
