// Package policy operationalizes the paper's conclusions (section 7):
// it classifies per-file access patterns from Pablo traces and recommends
// the file-system features — collective opens, access modes, request
// aggregation, prefetching, write-behind — that would serve each pattern,
// and provides client-side aggregation/prefetch wrappers to quantify what
// those policies buy.
//
// The package has three layers:
//
//   - Classify turns a trace into per-file Profiles (request sizes,
//     sequentiality, sharing, block-granular reuse at SignalBlock
//     granularity);
//   - Advise and AdviseCache read one Profile and emit Recommendations —
//     access-mode advice and cache-configuration advice respectively,
//     the latter carrying concrete cache.Tiers fragments (see
//     docs/ADVISOR.md for the full recommendation catalog);
//   - AdviseTiers merges the per-file cache findings into the single
//     cache.Tiers a run can actually be configured with, weighing
//     pro-cache traffic against the traffic a server tier would hurt,
//     and WriteAdvice renders everything for the CLI surfaces.
//
// The online counterpart is AdaptiveReader (and AdaptiveWriter), whose
// window/voting classification rules are documented on the type: epochs
// of `window` requests vote small-vs-large and sequential-vs-not, and a
// two-thirds-majority rule with hysteresis picks the service mode.
//
// Run against the version A traces, the advisor reproduces the tuning
// decisions the application developers made by hand over eighteen months
// (broadcast-style global reads, M_ASYNC staging writes, M_RECORD
// reloads), which is exactly the paper's argument for smarter file
// systems; the experiments package's advisor family replays the cache
// advice through the simulator and scores it against oracle-best sweeps.
package policy

import (
	"sort"
	"time"

	"paragonio/internal/pablo"
)

// Profile summarizes one file's observed access pattern.
type Profile struct {
	File string

	Readers []int // nodes that read
	Writers []int // nodes that wrote

	Reads, Writes, Seeks, Opens, Gopens int

	BytesRead, BytesWritten int64

	// MeanReadSize and MeanWriteSize are in bytes (0 when no ops).
	MeanReadSize, MeanWriteSize float64

	// SmallReadFrac: fraction of reads below 2 KB (the paper's "small"
	// threshold). SmallWriteFrac: fraction of writes below 4 KB —
	// writes that cannot amortize positioning even within one stripe.
	SmallReadFrac, SmallWriteFrac float64

	// SeqReadFrac: fraction of a node's reads continuing at its previous
	// end offset, averaged over nodes.
	SeqReadFrac float64

	// IdenticalReads: every reading node issued the same (offset, size)
	// sequence — the signature of a broadcast-worthy global read.
	IdenticalReads bool

	// InterleavedWrites: multiple writers whose offsets interleave in a
	// regular node-strided pattern (the staging-write signature).
	InterleavedWrites bool

	// FixedReadSize is non-zero when >90% of non-trivial reads share one
	// size (an M_RECORD candidate when nodes read disjoint areas).
	FixedReadSize int64

	// SeeksPerWrite: seek ops per write op (pointer-repositioning load).
	SeeksPerWrite float64

	// Modes observed on the file's operations (all types), and on the
	// data operations specifically — mode changes mid-file (the PRISM
	// restart pattern) make the distinction matter.
	Modes      map[string]int
	ReadModes  map[string]int
	WriteModes map[string]int

	// ReadTime and WriteTime are the summed durations of the file's data
	// operations — the advisor's weights when files pull a shared cache
	// configuration in different directions.
	ReadTime, WriteTime time.Duration

	// The remaining signals are block-granular (SignalBlock bytes) and
	// feed the cache advisor: they measure reuse, not request shape.

	// ReadWS and WriteWS are the distinct bytes read/written, rounded up
	// to whole blocks (the footprint a cache would need to hold). WriteWS
	// also bounds rewrite absorption: BytesWritten much larger than
	// WriteWS means the same blocks are overwritten again and again.
	ReadWS, WriteWS int64
	// PerNodeReadWS is the largest single node's distinct bytes read —
	// the footprint a per-client cache would need.
	PerNodeReadWS int64
	// ReadOpsPerBlock is read operations per distinct block read. Values
	// far above 1 mean the read stream is served from a small resident
	// set (the PRISM restart header: thousands of sub-block consults of
	// one block), which any cache collapses to memory copies.
	ReadOpsPerBlock float64
	// SharedReadFrac is the fraction of read block-touches landing on
	// blocks that at least two nodes read — reuse a shared (I/O-node)
	// cache can serve but a per-client cache would only duplicate.
	SharedReadFrac float64
	// ReuseReadFrac is the fraction of read block-touches that RETURN to
	// a block the same node touched before, excluding straight
	// continuation (the previous operation touching the same block).
	// This is per-client temporal reuse — the client-tier signal.
	ReuseReadFrac float64
	// MaxReuseGap is the longest virtual-time gap of such a return — a
	// client lease must outlive it for the reuse to hit.
	MaxReuseGap time.Duration
	// MaxReuseSpan is the longest first-touch-to-last-return interval of
	// such reuse on any (node, block). The client tier never renews a
	// lease locally — only a directory round-trip re-installs it — so a
	// lease taken at first touch must outlive the whole span, not just
	// the longest single gap, for every return to hit.
	MaxReuseSpan time.Duration
	// ReadAfterWriteFrac is the fraction of read block-touches landing on
	// blocks this trace wrote earlier — a staging pattern: with
	// write-behind those blocks are already resident, so read-ahead
	// would only pollute.
	ReadAfterWriteFrac float64
}

// SignalBlock is the block granularity (bytes) of the Profile's reuse
// signals — matched to the default PFS stripe unit, which is also the
// cache tiers' default block size.
const SignalBlock int64 = 64 * 1024

// nodeKey identifies one node's stream against one file.
type nodeKey struct {
	file string
	node int
}

// fileBlock is the per-(file, block) reuse bookkeeping for the cache
// signals: who read it first, whether it became shared, whether it was
// written before being read.
type fileBlock struct {
	readTouches int
	firstReader int
	shared      bool
	written     bool
	read        bool
}

// nodeTouch records one node's visits to one block.
type nodeTouch struct {
	lastIdx   int // index of the node's last data op touching this block
	lastTime  time.Duration
	firstTime time.Duration
}

// Classify builds a Profile for each file in the trace, keyed by name.
func Classify(t *pablo.Trace) map[string]*Profile {
	out := make(map[string]*Profile)
	lastEnd := make(map[nodeKey]int64)
	seqHits := make(map[nodeKey]int)
	readsBy := make(map[nodeKey]int)
	readSeq := make(map[nodeKey][]pablo.Event)
	writeOffsets := make(map[string]map[int][]int64)
	readSizes := make(map[string]map[int64]int)

	blocks := make(map[string]map[int64]*fileBlock) // per file
	nodeBlocks := make(map[nodeKey]map[int64]*nodeTouch)
	nodeOps := make(map[nodeKey]int) // data-op counter per (file, node)
	readTouches := make(map[string]int)
	reuseTouches := make(map[string]int)
	rawTouches := make(map[string]int) // read-after-write block touches

	fileBlocks := func(file string) map[int64]*fileBlock {
		m := blocks[file]
		if m == nil {
			m = make(map[int64]*fileBlock)
			blocks[file] = m
		}
		return m
	}

	get := func(file string) *Profile {
		p := out[file]
		if p == nil {
			p = &Profile{
				File:       file,
				Modes:      make(map[string]int),
				ReadModes:  make(map[string]int),
				WriteModes: make(map[string]int),
			}
			out[file] = p
		}
		return p
	}
	readerSet := make(map[string]map[int]bool)
	writerSet := make(map[string]map[int]bool)

	for _, ev := range t.Events() {
		if ev.File == "" {
			continue
		}
		p := get(ev.File)
		p.Modes[ev.Mode]++
		k := nodeKey{ev.File, ev.Node}
		switch ev.Op {
		case pablo.OpOpen:
			p.Opens++
		case pablo.OpGopen:
			p.Gopens++
		case pablo.OpSeek:
			p.Seeks++
		case pablo.OpRead:
			if ev.Size <= 0 {
				continue
			}
			p.Reads++
			p.ReadModes[ev.Mode]++
			p.BytesRead += ev.Size
			if ev.Size < 2048 {
				p.SmallReadFrac++ // normalized later
			}
			if readerSet[ev.File] == nil {
				readerSet[ev.File] = map[int]bool{}
			}
			readerSet[ev.File][ev.Node] = true
			if lastEnd[k] == ev.Offset && readsBy[k] > 0 {
				seqHits[k]++
			}
			readsBy[k]++
			lastEnd[k] = ev.Offset + ev.Size
			readSeq[k] = append(readSeq[k], ev)
			if readSizes[ev.File] == nil {
				readSizes[ev.File] = map[int64]int{}
			}
			readSizes[ev.File][ev.Size]++
			p.ReadTime += ev.Duration
			// Block-granular reuse signals.
			fb := fileBlocks(ev.File)
			nb := nodeBlocks[k]
			if nb == nil {
				nb = make(map[int64]*nodeTouch)
				nodeBlocks[k] = nb
			}
			idx := nodeOps[k]
			nodeOps[k] = idx + 1
			for b := ev.Offset / SignalBlock; b <= (ev.Offset+ev.Size-1)/SignalBlock; b++ {
				info := fb[b]
				if info == nil {
					info = &fileBlock{firstReader: -1}
					fb[b] = info
				}
				readTouches[ev.File]++
				info.readTouches++
				if !info.read {
					info.read = true
					info.firstReader = ev.Node
				} else if info.firstReader != ev.Node {
					info.shared = true
				}
				if info.written {
					rawTouches[ev.File]++
				}
				if nt := nb[b]; nt != nil {
					if nt.lastIdx < idx-1 {
						// A return to a block this node left — per-client
						// temporal reuse, not stream continuation.
						reuseTouches[ev.File]++
						if gap := ev.Start - nt.lastTime; gap > p.MaxReuseGap {
							p.MaxReuseGap = gap
						}
						if span := ev.Start - nt.firstTime; span > p.MaxReuseSpan {
							p.MaxReuseSpan = span
						}
					}
					nt.lastIdx, nt.lastTime = idx, ev.Start
				} else {
					nb[b] = &nodeTouch{lastIdx: idx, lastTime: ev.Start, firstTime: ev.Start}
				}
			}
		case pablo.OpWrite:
			if ev.Size <= 0 {
				continue
			}
			p.Writes++
			p.WriteModes[ev.Mode]++
			p.BytesWritten += ev.Size
			if ev.Size < 4096 {
				p.SmallWriteFrac++
			}
			if writerSet[ev.File] == nil {
				writerSet[ev.File] = map[int]bool{}
			}
			writerSet[ev.File][ev.Node] = true
			if writeOffsets[ev.File] == nil {
				writeOffsets[ev.File] = map[int][]int64{}
			}
			writeOffsets[ev.File][ev.Node] = append(writeOffsets[ev.File][ev.Node], ev.Offset)
			p.WriteTime += ev.Duration
			fb := fileBlocks(ev.File)
			idx := nodeOps[k]
			nodeOps[k] = idx + 1
			for b := ev.Offset / SignalBlock; b <= (ev.Offset+ev.Size-1)/SignalBlock; b++ {
				info := fb[b]
				if info == nil {
					info = &fileBlock{firstReader: -1}
					fb[b] = info
				}
				info.written = true
			}
		}
	}

	for file, p := range out {
		p.Readers = sortedNodes(readerSet[file])
		p.Writers = sortedNodes(writerSet[file])
		if p.Reads > 0 {
			p.MeanReadSize = float64(p.BytesRead) / float64(p.Reads)
			p.SmallReadFrac /= float64(p.Reads)
		}
		if p.Writes > 0 {
			p.MeanWriteSize = float64(p.BytesWritten) / float64(p.Writes)
			p.SmallWriteFrac /= float64(p.Writes)
			p.SeeksPerWrite = float64(p.Seeks) / float64(p.Writes)
		}
		// Sequentiality: average per-node fraction.
		var seqSum float64
		var nodes int
		for k, n := range readsBy {
			if k.file != file || n < 2 {
				continue
			}
			seqSum += float64(seqHits[k]) / float64(n-1)
			nodes++
		}
		if nodes > 0 {
			p.SeqReadFrac = seqSum / float64(nodes)
		}
		p.IdenticalReads = identicalReads(file, p.Readers, readSeq)
		p.InterleavedWrites = interleavedWrites(writeOffsets[file])
		p.FixedReadSize = dominantSize(readSizes[file], p.Reads)

		// Reuse signals from the block bookkeeping.
		var readBlocks, writeBlocks, sharedTouches int
		for _, info := range blocks[file] {
			if info.read {
				readBlocks++
				if info.shared {
					sharedTouches += info.readTouches
				}
			}
			if info.written {
				writeBlocks++
			}
		}
		p.ReadWS = int64(readBlocks) * SignalBlock
		p.WriteWS = int64(writeBlocks) * SignalBlock
		if readBlocks > 0 {
			p.ReadOpsPerBlock = float64(p.Reads) / float64(readBlocks)
		}
		if rt := readTouches[file]; rt > 0 {
			p.SharedReadFrac = float64(sharedTouches) / float64(rt)
			p.ReuseReadFrac = float64(reuseTouches[file]) / float64(rt)
			p.ReadAfterWriteFrac = float64(rawTouches[file]) / float64(rt)
		}
		for _, node := range p.Readers {
			if ws := int64(len(nodeBlocks[nodeKey{file, node}])) * SignalBlock; ws > p.PerNodeReadWS {
				p.PerNodeReadWS = ws
			}
		}
	}
	return out
}

func sortedNodes(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// identicalReads reports whether every reading node issued the same
// (offset, size) sequence.
func identicalReads(file string, readers []int, seq map[nodeKey][]pablo.Event) bool {
	if len(readers) < 2 {
		return false
	}
	ref := seq[nodeKey{file, readers[0]}]
	for _, node := range readers[1:] {
		other := seq[nodeKey{file, node}]
		if len(other) != len(ref) {
			return false
		}
		for i := range ref {
			if ref[i].Offset != other[i].Offset || ref[i].Size != other[i].Size {
				return false
			}
		}
	}
	return len(ref) > 0
}

// interleavedWrites reports whether several writers wrote node-strided
// interleaved offsets (each node's successive offsets advance by the
// same stride, and nodes' bases differ).
func interleavedWrites(byNode map[int][]int64) bool {
	if len(byNode) < 2 {
		return false
	}
	var strides []int64
	for _, offs := range byNode {
		if len(offs) < 2 {
			return false
		}
		stride := offs[1] - offs[0]
		if stride <= 0 {
			return false
		}
		for i := 2; i < len(offs); i++ {
			if offs[i]-offs[i-1] != stride {
				return false
			}
		}
		strides = append(strides, stride)
	}
	for _, s := range strides[1:] {
		if s != strides[0] {
			return false
		}
	}
	return true
}

// dominantSize returns the request size covering >90% of reads, or 0.
func dominantSize(counts map[int64]int, total int) int64 {
	if total == 0 {
		return 0
	}
	for size, n := range counts {
		if float64(n) > 0.9*float64(total) {
			return size
		}
	}
	return 0
}
