package policy

import (
	"testing"
	"time"

	"paragonio/internal/apps/escat"
	"paragonio/internal/apps/prism"
	"paragonio/internal/mesh"
	"paragonio/internal/pablo"
	"paragonio/internal/pfs"
	"paragonio/internal/sim"
)

func mkRead(node int, file string, off, size int64, mode string) pablo.Event {
	return pablo.Event{Node: node, Op: pablo.OpRead, File: file, Offset: off,
		Size: size, Duration: time.Millisecond, Mode: mode}
}

func mkWrite(node int, file string, off, size int64, mode string) pablo.Event {
	return pablo.Event{Node: node, Op: pablo.OpWrite, File: file, Offset: off,
		Size: size, Duration: time.Millisecond, Mode: mode}
}

func TestClassifyIdenticalReads(t *testing.T) {
	tr := pablo.NewTrace()
	for node := 0; node < 4; node++ {
		off := int64(0)
		for i := 0; i < 10; i++ {
			tr.Record(mkRead(node, "input", off, 100, "M_UNIX"))
			off += 100
		}
	}
	p := Classify(tr)["input"]
	if p == nil {
		t.Fatal("no profile")
	}
	if !p.IdenticalReads {
		t.Fatal("identical reads not detected")
	}
	if len(p.Readers) != 4 || p.Reads != 40 {
		t.Fatalf("readers %v, reads %d", p.Readers, p.Reads)
	}
	if p.SeqReadFrac < 0.99 {
		t.Fatalf("SeqReadFrac = %g", p.SeqReadFrac)
	}
}

func TestClassifyInterleavedWrites(t *testing.T) {
	tr := pablo.NewTrace()
	const nodes, size = 4, 2720
	for cyc := 0; cyc < 5; cyc++ {
		for node := 0; node < nodes; node++ {
			off := int64(cyc*nodes+node) * size
			tr.Record(pablo.Event{Node: node, Op: pablo.OpSeek, File: "quad", Offset: off, Mode: "M_UNIX"})
			tr.Record(mkWrite(node, "quad", off, size, "M_UNIX"))
		}
	}
	p := Classify(tr)["quad"]
	if !p.InterleavedWrites {
		t.Fatal("interleaved writes not detected")
	}
	if p.SeeksPerWrite != 1 {
		t.Fatalf("SeeksPerWrite = %g", p.SeeksPerWrite)
	}
}

func TestClassifyFixedReadSize(t *testing.T) {
	tr := pablo.NewTrace()
	for node := 0; node < 4; node++ {
		for round := 0; round < 5; round++ {
			off := int64(round*4+node) * 131072
			tr.Record(mkRead(node, "quad", off, 131072, "M_RECORD"))
		}
	}
	p := Classify(tr)["quad"]
	if p.FixedReadSize != 131072 {
		t.Fatalf("FixedReadSize = %d", p.FixedReadSize)
	}
	if p.IdenticalReads {
		t.Fatal("disjoint reads misclassified as identical")
	}
}

func TestAdviseGlobalRead(t *testing.T) {
	tr := pablo.NewTrace()
	for node := 0; node < 8; node++ {
		tr.Record(pablo.Event{Node: node, Op: pablo.OpOpen, File: "input", Mode: "M_UNIX"})
		off := int64(0)
		for i := 0; i < 20; i++ {
			tr.Record(mkRead(node, "input", off, 200, "M_UNIX"))
			off += 200
		}
	}
	recs := Advise(Classify(tr)["input"], Options{})
	if !hasKind(recs, UseGlobalRead) {
		t.Fatalf("no global-read advice in %v", recs)
	}
	if !hasKind(recs, UseGopen) {
		t.Fatalf("no gopen advice for 8 concurrent opens in %v", recs)
	}
	if !hasKind(recs, EnablePrefetch) {
		t.Fatalf("no prefetch advice for small sequential reads in %v", recs)
	}
}

func TestAdviseAsyncWrites(t *testing.T) {
	tr := pablo.NewTrace()
	const nodes, size = 8, 2720
	for cyc := 0; cyc < 4; cyc++ {
		for node := 0; node < nodes; node++ {
			off := int64(cyc*nodes+node) * size
			tr.Record(pablo.Event{Node: node, Op: pablo.OpSeek, File: "quad", Offset: off, Mode: "M_UNIX"})
			tr.Record(mkWrite(node, "quad", off, size, "M_UNIX"))
		}
	}
	recs := Advise(Classify(tr)["quad"], Options{})
	if !hasKind(recs, UseAsyncWrites) {
		t.Fatalf("no async-write advice in %v", recs)
	}
}

func TestAdviseRecordAndAlignment(t *testing.T) {
	tr := pablo.NewTrace()
	for node := 0; node < 4; node++ {
		for round := 0; round < 4; round++ {
			off := int64(round*4+node) * 100000
			tr.Record(mkRead(node, "data", off, 100000, "M_UNIX"))
		}
	}
	recs := Advise(Classify(tr)["data"], Options{})
	if !hasKind(recs, UseRecordReads) {
		t.Fatalf("no record advice in %v", recs)
	}
	if !hasKind(recs, AlignToStripe) {
		t.Fatalf("no alignment advice for 100000-byte records in %v", recs)
	}
}

func TestAdviseQuietOnTinyProfiles(t *testing.T) {
	tr := pablo.NewTrace()
	tr.Record(mkRead(0, "f", 0, 100, "M_UNIX"))
	if recs := Advise(Classify(tr)["f"], Options{}); recs != nil {
		t.Fatalf("advice on trivial profile: %v", recs)
	}
}

// TestAdvisorReproducesESCATTuning is the package's headline property:
// fed version A's trace, the advisor recommends the optimizations the
// developers applied by hand to reach versions B and C.
func TestAdvisorReproducesESCATTuning(t *testing.T) {
	d := escat.Ethylene()
	d.Nodes = 16
	d.HeaderReads = 30
	d.Cycles = 6
	d.CycleCompute = 2 * time.Second
	d.CycleJitter = 500 * time.Millisecond
	d.SetupCompute = time.Second
	d.EnergyCompute = time.Second
	res, err := escat.Run(d, escat.VersionA(), 1)
	if err != nil {
		t.Fatal(err)
	}
	recs := AdviseAll(Classify(res.Trace), Options{})
	// Input files: all nodes read identical data -> global read + gopen.
	if !hasFileKind(recs, "escat/input.0", UseGlobalRead) {
		t.Errorf("no global-read advice for input files; recs=%v", recs)
	}
	// Staging file: node-zero small writes -> write-behind/aggregation.
	if !hasFileKind(recs, "escat/quad.0", UseWriteBehind) {
		t.Errorf("no write-behind advice for staging writes; recs=%v", recs)
	}
}

// TestAdvisorReproducesPRISMBTuning: version B's staging pattern (the
// M_UNIX interleaved writes of ESCAT B) draws the M_ASYNC advice that
// became version C.
func TestAdvisorReproducesESCATBToC(t *testing.T) {
	d := escat.Ethylene()
	d.Nodes = 16
	d.HeaderReads = 30
	d.Cycles = 6
	d.CycleCompute = 2 * time.Second
	d.CycleJitter = 500 * time.Millisecond
	d.SetupCompute = time.Second
	d.EnergyCompute = time.Second
	res, err := escat.Run(d, escat.VersionB(), 1)
	if err != nil {
		t.Fatal(err)
	}
	recs := AdviseAll(Classify(res.Trace), Options{})
	if !hasFileKind(recs, "escat/quad.0", UseAsyncWrites) {
		t.Errorf("no M_ASYNC advice for B's staging writes; recs=%v", recs)
	}
}

func TestAdvisorOnPRISMVersionA(t *testing.T) {
	d := prism.TestProblem()
	d.Nodes = 8
	d.Steps = 20
	d.CheckpointEvery = 10
	d.StepCompute = 200 * time.Millisecond
	d.SetupCompute = time.Second
	d.PostCompute = time.Second
	res, err := prism.Run(d, prism.VersionA(), 1)
	if err != nil {
		t.Fatal(err)
	}
	recs := AdviseAll(Classify(res.Trace), Options{})
	if !hasFileKind(recs, "prism/params", UseGlobalRead) {
		t.Errorf("no global-read advice for the parameter file; recs=%v", recs)
	}
	if !hasFileKind(recs, "prism/measurements", UseWriteBehind) {
		t.Errorf("no write-behind advice for the measurement stream; recs=%v", recs)
	}
}

func hasKind(recs []Recommendation, k Kind) bool {
	for _, r := range recs {
		if r.Kind == k {
			return true
		}
	}
	return false
}

func hasFileKind(recs []Recommendation, file string, k Kind) bool {
	for _, r := range recs {
		if r.File == file && r.Kind == k {
			return true
		}
	}
	return false
}

// ---- wrapper tests ----

type rig struct {
	k  *sim.Kernel
	fs *pfs.FileSystem
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel()
	m := mesh.MustNew(mesh.DefaultConfig())
	fs, err := pfs.New(k, pfs.DefaultConfig(m), nil)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, fs: fs}
}

func TestAggWriterCoalesces(t *testing.T) {
	r := newRig(t)
	var logical, physical int
	r.k.Spawn("w", func(p *sim.Proc) {
		h, _ := r.fs.Open(p, 0, "out", pfs.MAsync)
		w := NewAggWriter(h, 0)
		for i := 0; i < 100; i++ {
			if err := w.Write(p, 2720); err != nil {
				t.Error(err)
			}
		}
		if err := w.Flush(p); err != nil {
			t.Error(err)
		}
		logical, physical, _ = w.Stats()
		h.Close(p)
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if logical != 100 {
		t.Fatalf("logical = %d", logical)
	}
	// 272000 bytes at 64KB threshold: 4 full + 1 remainder.
	if physical != 5 {
		t.Fatalf("physical = %d, want 5", physical)
	}
	if got := r.fs.FileSize("out"); got != 272000 {
		t.Fatalf("file size = %d", got)
	}
}

func TestAggWriterFasterThanRaw(t *testing.T) {
	run := func(agg bool) sim.Time {
		k := sim.NewKernel()
		m := mesh.MustNew(mesh.DefaultConfig())
		fs, err := pfs.New(k, pfs.DefaultConfig(m), nil)
		if err != nil {
			t.Fatal(err)
		}
		r := &rig{k: k, fs: fs}
		var loop sim.Time
		r.k.Spawn("w", func(p *sim.Proc) {
			h, _ := r.fs.Open(p, 0, "out", pfs.MAsync)
			t0 := p.Now()
			if agg {
				w := NewAggWriter(h, 0)
				for i := 0; i < 200; i++ {
					w.Write(p, 1000)
				}
				w.Flush(p)
			} else {
				for i := 0; i < 200; i++ {
					h.Write(p, 1000)
				}
			}
			loop = p.Now() - t0
			h.Close(p)
		})
		if err := r.k.Run(); err != nil {
			panic(err)
		}
		return loop
	}
	if a, raw := run(true), run(false); a*3 >= raw {
		t.Fatalf("aggregated writes (%v) not clearly faster than raw (%v)", a, raw)
	}
}

func TestPrefetchReaderReducesRequests(t *testing.T) {
	r := newRig(t)
	var logical, physical int
	r.k.Spawn("rd", func(p *sim.Proc) {
		r.fs.CreateFile("in", 1<<20)
		h, _ := r.fs.Open(p, 0, "in", pfs.MAsync)
		pr := NewPrefetchReader(h, 0)
		for i := 0; i < 256; i++ {
			if _, err := pr.Read(p, 1024); err != nil {
				t.Error(err)
			}
		}
		logical, physical, _ = pr.Stats()
		h.Close(p)
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if logical != 256 {
		t.Fatalf("logical = %d", logical)
	}
	// 256 KB through a 256 KB window: one physical read.
	if physical != 1 {
		t.Fatalf("physical = %d, want 1", physical)
	}
}

func TestPrefetchReaderEOF(t *testing.T) {
	r := newRig(t)
	var got int64
	r.k.Spawn("rd", func(p *sim.Proc) {
		r.fs.CreateFile("in", 1500)
		h, _ := r.fs.Open(p, 0, "in", pfs.MAsync)
		pr := NewPrefetchReader(h, 1024)
		n1, _ := pr.Read(p, 1000)
		n2, _ := pr.Read(p, 1000) // clamped to 500
		n3, _ := pr.Read(p, 1000) // EOF
		got = n1 + n2 + n3
		if n3 != 0 {
			t.Errorf("read past EOF returned %d", n3)
		}
		h.Close(p)
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1500 {
		t.Fatalf("total = %d, want 1500", got)
	}
}

func TestWrapperErrors(t *testing.T) {
	r := newRig(t)
	r.k.Spawn("w", func(p *sim.Proc) {
		h, _ := r.fs.Open(p, 0, "out", pfs.MAsync)
		w := NewAggWriter(h, 100)
		if err := w.Write(p, 0); err != pfs.ErrBadSize {
			t.Errorf("Write(0) err = %v", err)
		}
		pr := NewPrefetchReader(h, 100)
		if _, err := pr.Read(p, -1); err != pfs.ErrBadSize {
			t.Errorf("Read(-1) err = %v", err)
		}
		h.Close(p)
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
}
