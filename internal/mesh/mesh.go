// Package mesh models the Intel Paragon XP/S interconnect: a 2-D mesh of
// nodes with dimension-ordered (X then Y) wormhole routing. The model
// yields per-message transfer times from software overhead, per-hop
// latency, and link bandwidth, plus costs for the collective patterns the
// applications use (binomial-tree broadcast, global barrier).
//
// The Caltech machine in the paper is a 16x32 mesh (512 nodes) with 16
// I/O nodes; DefaultConfig reflects published Paragon XP/S figures.
package mesh

import (
	"fmt"
	"math/bits"
	"time"
)

// Config holds the interconnect parameters.
type Config struct {
	Rows, Cols int           // mesh dimensions; Rows*Cols nodes
	SWOverhead time.Duration // per-message software send+receive cost
	PerHop     time.Duration // per-hop router latency
	Bandwidth  float64       // link bandwidth, bytes/second
	IONodes    int           // I/O service nodes, placed along the last column
}

// DefaultConfig returns the Caltech Paragon XP/S configuration used in the
// paper: a 16x32 mesh with 16 I/O nodes. Latency and bandwidth reflect
// published OSF/1 NX message-passing figures (~60 us latency, ~80 MB/s
// realizable point-to-point bandwidth).
func DefaultConfig() Config {
	return Config{
		Rows:       16,
		Cols:       32,
		SWOverhead: 60 * time.Microsecond,
		PerHop:     200 * time.Nanosecond,
		Bandwidth:  80e6,
		IONodes:    16,
	}
}

// Mesh is an immutable interconnect model.
type Mesh struct {
	cfg Config
}

// New validates cfg and returns a mesh model.
func New(cfg Config) (*Mesh, error) {
	if cfg.Rows < 1 || cfg.Cols < 1 {
		return nil, fmt.Errorf("mesh: invalid dimensions %dx%d", cfg.Rows, cfg.Cols)
	}
	if cfg.Bandwidth <= 0 {
		return nil, fmt.Errorf("mesh: bandwidth must be positive, got %g", cfg.Bandwidth)
	}
	if cfg.IONodes < 0 || cfg.IONodes > cfg.Rows*cfg.Cols {
		return nil, fmt.Errorf("mesh: %d I/O nodes do not fit in a %dx%d mesh",
			cfg.IONodes, cfg.Rows, cfg.Cols)
	}
	if cfg.SWOverhead < 0 || cfg.PerHop < 0 {
		return nil, fmt.Errorf("mesh: negative latency parameter")
	}
	return &Mesh{cfg: cfg}, nil
}

// MustNew is New, panicking on error; for use with known-good configs.
func MustNew(cfg Config) *Mesh {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the mesh's configuration.
func (m *Mesh) Config() Config { return m.cfg }

// Nodes returns the total number of mesh positions.
func (m *Mesh) Nodes() int { return m.cfg.Rows * m.cfg.Cols }

// Coord maps a compute-node index (row-major) to mesh coordinates.
func (m *Mesh) Coord(node int) (row, col int) {
	return node / m.cfg.Cols, node % m.cfg.Cols
}

// IONodeCoord returns the mesh coordinates of I/O node io (0-based). I/O
// nodes fill the last column, one per row from the top; configurations
// with more I/O nodes than rows (scaled-up machines) continue into the
// next-to-last column, and so on — the Intel mesh's dedicated-I/O-column
// layout extended to multiple columns.
func (m *Mesh) IONodeCoord(io int) (row, col int) {
	return io % m.cfg.Rows, m.cfg.Cols - 1 - io/m.cfg.Rows
}

// Hops returns the dimension-ordered routing distance between two
// coordinates.
func (m *Mesh) Hops(r1, c1, r2, c2 int) int {
	return abs(r1-r2) + abs(c1-c2)
}

// Transfer returns the time to move size bytes between two compute nodes.
func (m *Mesh) Transfer(from, to, size int64) time.Duration {
	if from == to {
		// Local copy: software overhead plus a memory-speed copy
		// (approximated as 4x link bandwidth).
		return m.cfg.SWOverhead/2 + bwTime(float64(size), m.cfg.Bandwidth*4)
	}
	r1, c1 := m.Coord(int(from))
	r2, c2 := m.Coord(int(to))
	hops := m.Hops(r1, c1, r2, c2)
	return m.cfg.SWOverhead + time.Duration(hops)*m.cfg.PerHop +
		bwTime(float64(size), m.cfg.Bandwidth)
}

// TransferToIONode returns the time to move size bytes between compute
// node `node` and I/O node `io` (either direction).
func (m *Mesh) TransferToIONode(node, io int, size int64) time.Duration {
	r1, c1 := m.Coord(node)
	r2, c2 := m.IONodeCoord(io)
	hops := m.Hops(r1, c1, r2, c2)
	return m.cfg.SWOverhead + time.Duration(hops)*m.cfg.PerHop +
		bwTime(float64(size), m.cfg.Bandwidth)
}

// MinLatency returns the smallest possible virtual delay of any message
// through the mesh: the local-copy overhead if that is cheapest, else
// software overhead plus one router hop, with a zero-byte payload. It is
// the conservative lookahead a sharded simulation kernel may assume
// between the compute side and the I/O nodes (sim.Kernel.ConfigureShards):
// no cross-node interaction can take effect sooner.
func (m *Mesh) MinLatency() time.Duration {
	local := m.cfg.SWOverhead / 2
	remote := m.cfg.SWOverhead + m.cfg.PerHop
	if local < remote {
		return local
	}
	return remote
}

// Broadcast returns the time for one node to broadcast size bytes to n-1
// others via a binomial tree: ceil(log2 n) pipelined stages, each a full
// message transfer at the mesh's average hop distance.
func (m *Mesh) Broadcast(n int, size int64) time.Duration {
	if n <= 1 {
		return 0
	}
	stages := log2ceil(n)
	per := m.cfg.SWOverhead + time.Duration(m.avgHops())*m.cfg.PerHop +
		bwTime(float64(size), m.cfg.Bandwidth)
	return time.Duration(stages) * per
}

// Barrier returns the cost of a global synchronization among n nodes:
// a dissemination barrier of ceil(log2 n) small-message rounds.
func (m *Mesh) Barrier(n int) time.Duration {
	if n <= 1 {
		return 0
	}
	per := m.cfg.SWOverhead + time.Duration(m.avgHops())*m.cfg.PerHop
	return time.Duration(log2ceil(n)) * per
}

// AllReduce returns the cost of a combining all-reduce among n nodes
// (size bytes of payload per stage): recursive doubling, 2*ceil(log2 n)
// message stages — the per-step synchronization pattern of iterative
// solvers like PRISM's.
func (m *Mesh) AllReduce(n int, size int64) time.Duration {
	if n <= 1 {
		return 0
	}
	per := m.cfg.SWOverhead + time.Duration(m.avgHops())*m.cfg.PerHop +
		bwTime(float64(size), m.cfg.Bandwidth)
	return 2 * time.Duration(log2ceil(n)) * per
}

// Gather returns the time for n-1 nodes to send size bytes each to a
// root: a binomial tree where the root's inbound link is the bottleneck
// for the aggregate payload.
func (m *Mesh) Gather(n int, size int64) time.Duration {
	if n <= 1 {
		return 0
	}
	tree := time.Duration(log2ceil(n)) *
		(m.cfg.SWOverhead + time.Duration(m.avgHops())*m.cfg.PerHop)
	payload := bwTime(float64(size)*float64(n-1), m.cfg.Bandwidth)
	return tree + payload
}

// avgHops is the mean dimension-ordered distance between two uniformly
// random mesh positions: (Rows + Cols) / 3.
func (m *Mesh) avgHops() int {
	h := (m.cfg.Rows + m.cfg.Cols) / 3
	if h < 1 {
		h = 1
	}
	return h
}

func bwTime(bytes, bw float64) time.Duration {
	return time.Duration(bytes / bw * float64(time.Second))
}

func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
