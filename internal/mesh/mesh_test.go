package mesh

import (
	"testing"
	"testing/quick"
	"time"
)

func mustDefault(t *testing.T) *Mesh {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero rows", func(c *Config) { c.Rows = 0 }},
		{"zero cols", func(c *Config) { c.Cols = 0 }},
		{"zero bandwidth", func(c *Config) { c.Bandwidth = 0 }},
		{"negative bandwidth", func(c *Config) { c.Bandwidth = -1 }},
		{"too many io nodes", func(c *Config) { c.IONodes = c.Rows*c.Cols + 1 }},
		{"negative io nodes", func(c *Config) { c.IONodes = -1 }},
		{"negative overhead", func(c *Config) { c.SWOverhead = -time.Second }},
		{"negative perhop", func(c *Config) { c.PerHop = -time.Second }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatalf("New accepted invalid config %+v", cfg)
			}
		})
	}
}

func TestDefaultConfigIsPaperMachine(t *testing.T) {
	m := mustDefault(t)
	if m.Nodes() != 512 {
		t.Fatalf("Nodes = %d, want 512", m.Nodes())
	}
	if m.Config().IONodes != 16 {
		t.Fatalf("IONodes = %d, want 16", m.Config().IONodes)
	}
}

func TestCoordRoundTrip(t *testing.T) {
	m := mustDefault(t)
	for node := 0; node < m.Nodes(); node++ {
		r, c := m.Coord(node)
		if r < 0 || r >= 16 || c < 0 || c >= 32 {
			t.Fatalf("Coord(%d) = (%d,%d) out of range", node, r, c)
		}
		if r*32+c != node {
			t.Fatalf("Coord(%d) = (%d,%d) does not invert", node, r, c)
		}
	}
}

func TestIONodeCoords(t *testing.T) {
	m := mustDefault(t)
	for io := 0; io < 16; io++ {
		r, c := m.IONodeCoord(io)
		if c != 31 {
			t.Fatalf("I/O node %d at col %d, want last column", io, c)
		}
		if r != io {
			t.Fatalf("I/O node %d at row %d, want %d", io, r, io)
		}
	}
}

// TestIONodeCoordsMultiColumn pins the scaled-machine layout: more I/O
// nodes than rows wrap into the next-to-last column, with no two I/O
// nodes sharing a position.
func TestIONodeCoordsMultiColumn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols, cfg.IONodes = 128, 128, 256
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]bool{}
	for io := 0; io < 256; io++ {
		r, c := m.IONodeCoord(io)
		if r < 0 || r >= 128 || c < 0 || c >= 128 {
			t.Fatalf("I/O node %d at (%d,%d), outside the mesh", io, r, c)
		}
		wantCol := 127 - io/128
		if c != wantCol {
			t.Fatalf("I/O node %d at col %d, want %d", io, c, wantCol)
		}
		pos := [2]int{r, c}
		if seen[pos] {
			t.Fatalf("I/O nodes collide at (%d,%d)", r, c)
		}
		seen[pos] = true
	}
}

func TestHopsManhattan(t *testing.T) {
	m := mustDefault(t)
	if h := m.Hops(0, 0, 0, 0); h != 0 {
		t.Fatalf("self hops = %d", h)
	}
	if h := m.Hops(0, 0, 15, 31); h != 46 {
		t.Fatalf("corner-to-corner = %d, want 46", h)
	}
	if h := m.Hops(3, 7, 5, 2); h != 7 {
		t.Fatalf("hops = %d, want 7", h)
	}
}

func TestTransferGrowsWithSizeAndDistance(t *testing.T) {
	m := mustDefault(t)
	small := m.Transfer(0, 1, 100)
	large := m.Transfer(0, 1, 1<<20)
	if large <= small {
		t.Fatalf("1MB transfer (%v) not slower than 100B (%v)", large, small)
	}
	near := m.Transfer(0, 1, 1024)
	far := m.Transfer(0, 511, 1024)
	if far <= near {
		t.Fatalf("far transfer (%v) not slower than near (%v)", far, near)
	}
}

func TestLocalTransferCheaperThanRemote(t *testing.T) {
	m := mustDefault(t)
	if loc, rem := m.Transfer(5, 5, 1<<16), m.Transfer(5, 6, 1<<16); loc >= rem {
		t.Fatalf("local %v >= remote %v", loc, rem)
	}
}

func TestBroadcastScalesLogarithmically(t *testing.T) {
	m := mustDefault(t)
	b1 := m.Broadcast(1, 1024)
	b2 := m.Broadcast(2, 1024)
	b128 := m.Broadcast(128, 1024)
	b256 := m.Broadcast(256, 1024)
	if b1 != 0 {
		t.Fatalf("Broadcast(1) = %v, want 0", b1)
	}
	if b2 <= 0 {
		t.Fatalf("Broadcast(2) = %v, want > 0", b2)
	}
	// 128 -> 256 doubles the population but adds only one stage.
	if b256-b128 != b2 {
		t.Fatalf("stage increment %v, want %v", b256-b128, b2)
	}
	// Log growth: broadcast to 128 is 7 stages, not 127.
	if b128 != 7*b2 {
		t.Fatalf("Broadcast(128) = %v, want 7 stages of %v", b128, b2)
	}
}

func TestBarrierCosts(t *testing.T) {
	m := mustDefault(t)
	if m.Barrier(1) != 0 {
		t.Fatal("Barrier(1) should be free")
	}
	if m.Barrier(64) >= m.Barrier(128) && m.Barrier(128) != m.Barrier(64) {
		t.Fatalf("Barrier(128)=%v < Barrier(64)=%v", m.Barrier(128), m.Barrier(64))
	}
	if m.Barrier(128) <= 0 {
		t.Fatal("Barrier(128) should be positive")
	}
}

func TestGatherDominatedByRootLink(t *testing.T) {
	m := mustDefault(t)
	// Gathering 1 MB from each of 127 senders must cost at least the time
	// to move 127 MB over one link.
	g := m.Gather(128, 1<<20)
	floor := time.Duration(float64(127<<20) / m.Config().Bandwidth * float64(time.Second))
	if g < floor {
		t.Fatalf("Gather(128, 1MB) = %v, below root-link floor %v", g, floor)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 64: 6, 65: 7, 128: 7, 512: 9}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestTransferNonNegativeProperty(t *testing.T) {
	m := mustDefault(t)
	f := func(a, b uint16, size uint32) bool {
		from := int64(a) % 512
		to := int64(b) % 512
		return m.Transfer(from, to, int64(size)) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransferMonotoneInSizeProperty(t *testing.T) {
	m := mustDefault(t)
	f := func(a, b uint16, s1, s2 uint32) bool {
		from := int64(a) % 512
		to := int64(b) % 512
		lo, hi := int64(s1), int64(s2)
		if lo > hi {
			lo, hi = hi, lo
		}
		return m.Transfer(from, to, lo) <= m.Transfer(from, to, hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopsSymmetricProperty(t *testing.T) {
	m := mustDefault(t)
	f := func(r1, c1, r2, c2 uint8) bool {
		a, b := int(r1)%16, int(c1)%32
		c, d := int(r2)%16, int(c2)%32
		return m.Hops(a, b, c, d) == m.Hops(c, d, a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopsTriangleInequalityProperty(t *testing.T) {
	m := mustDefault(t)
	f := func(r1, c1, r2, c2, r3, c3 uint8) bool {
		a1, b1 := int(r1)%16, int(c1)%32
		a2, b2 := int(r2)%16, int(c2)%32
		a3, b3 := int(r3)%16, int(c3)%32
		return m.Hops(a1, b1, a3, b3) <= m.Hops(a1, b1, a2, b2)+m.Hops(a2, b2, a3, b3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceCosts(t *testing.T) {
	m := mustDefault(t)
	if m.AllReduce(1, 1024) != 0 {
		t.Fatal("AllReduce(1) should be free")
	}
	// Twice the one-way dissemination stages.
	if got, want := m.AllReduce(64, 0), 2*m.Barrier(64); got != want {
		t.Fatalf("AllReduce(64, 0) = %v, want %v", got, want)
	}
	if m.AllReduce(64, 1<<20) <= m.AllReduce(64, 64) {
		t.Fatal("payload should increase allreduce cost")
	}
}
