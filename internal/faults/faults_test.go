package faults

import (
	"strings"
	"testing"
	"time"
)

func plan(fs ...Fault) Plan { return Plan{Faults: fs} }

func TestValidateAcceptsCanonicalFaults(t *testing.T) {
	good := []Plan{
		{},
		plan(Fault{Kind: DiskFail, At: time.Second, IONode: 3}),
		plan(Fault{Kind: DiskFail, At: 0, Until: time.Second, IONode: 0}),
		plan(Fault{Kind: NodeCrash, At: time.Second, IONode: 15}),
		plan(Fault{Kind: Straggler, At: time.Second, IONode: 1, Factor: 4}),
		plan(Fault{Kind: ClientFlap, At: time.Second, Node: 7}),
		plan(Fault{Kind: ClientFlap, At: time.Second, Node: 0, Count: 5, Period: time.Second}),
		plan( // one of each, stacked
			Fault{Kind: DiskFail, At: time.Second, IONode: 0},
			Fault{Kind: NodeCrash, At: 2 * time.Second, IONode: 1},
			Fault{Kind: Straggler, At: 3 * time.Second, IONode: 2, Factor: 2},
			Fault{Kind: ClientFlap, At: 4 * time.Second, Node: 1}),
	}
	for i, p := range good {
		if err := p.Validate(16); err != nil {
			t.Errorf("plan %d rejected: %v", i, err)
		}
	}
}

func TestValidateRejectsMalformedFaults(t *testing.T) {
	bad := []struct {
		name string
		p    Plan
		want string
	}{
		{"unknown-kind", plan(Fault{Kind: "disk-melt", At: 0}), "unknown kind"},
		{"negative-at", plan(Fault{Kind: DiskFail, At: -time.Second}), "negative injection"},
		{"until-before-at", plan(Fault{Kind: DiskFail, At: 2 * time.Second, Until: time.Second}), "not after"},
		{"ionode-range", plan(Fault{Kind: DiskFail, IONode: 16}), "out of range"},
		{"ionode-negative", plan(Fault{Kind: NodeCrash, IONode: -1}), "out of range"},
		{"factor-on-disk", plan(Fault{Kind: DiskFail, Factor: 2}), "factor"},
		{"node-on-straggler", plan(Fault{Kind: Straggler, Factor: 2, Node: 3}), "client-flap"},
		{"straggler-factor-low", plan(Fault{Kind: Straggler, Factor: 1}), "need > 1"},
		{"flap-ionode", plan(Fault{Kind: ClientFlap, IONode: 2}), "I/O-node faults"},
		{"flap-negative-node", plan(Fault{Kind: ClientFlap, Node: -1}), "negative node"},
		{"flap-count-no-period", plan(Fault{Kind: ClientFlap, Count: 3}), "positive period"},
		{"flap-until", plan(Fault{Kind: ClientFlap, Until: time.Second}), "until"},
		{"double-crash", plan(
			Fault{Kind: NodeCrash, IONode: 0},
			Fault{Kind: NodeCrash, At: time.Second, IONode: 0}), "crashes twice"},
		{"all-crash", plan(
			Fault{Kind: NodeCrash, IONode: 0},
			Fault{Kind: NodeCrash, IONode: 1}), "must survive"},
	}
	for _, c := range bad {
		err := c.p.Validate(2)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestValidateWithoutTopologySkipsRangeChecks(t *testing.T) {
	p := plan(Fault{Kind: DiskFail, IONode: 4096})
	if err := p.Validate(0); err != nil {
		t.Errorf("shape-only validation rejected a large target: %v", err)
	}
	if err := p.Validate(16); err == nil {
		t.Error("topology validation accepted an out-of-range target")
	}
}

// TestPlanStringCanonical pins the canonical serialization ConfigKey
// hashes: stable, distinct per semantic change, empty for the healthy
// machine.
func TestPlanStringCanonical(t *testing.T) {
	if s := (Plan{}).String(); s != "" {
		t.Errorf("healthy plan serializes as %q, want empty", s)
	}
	cases := map[string]Plan{
		"disk-fail@1000000000,io=0": plan(Fault{Kind: DiskFail, At: time.Second, IONode: 0}),
		"disk-fail@1000000000-2000000000,io=0": plan(
			Fault{Kind: DiskFail, At: time.Second, Until: 2 * time.Second, IONode: 0}),
		"node-crash@1000000000,io=3": plan(Fault{Kind: NodeCrash, At: time.Second, IONode: 3}),
		"straggler@1000000000,io=1,x4": plan(
			Fault{Kind: Straggler, At: time.Second, IONode: 1, Factor: 4}),
		"client-flap@1000000000,node=2,period=500000000,count=5": plan(
			Fault{Kind: ClientFlap, At: time.Second, Node: 2, Period: 500 * time.Millisecond, Count: 5}),
		"disk-fail@0,io=0;node-crash@1000000000,io=1": plan(
			Fault{Kind: DiskFail, At: 0, IONode: 0},
			Fault{Kind: NodeCrash, At: time.Second, IONode: 1}),
	}
	seen := map[string]bool{}
	for want, p := range cases {
		if got := p.String(); got != want {
			t.Errorf("plan serializes as %q, want %q", got, want)
		}
		if seen[p.String()] {
			t.Errorf("duplicate serialization %q", p.String())
		}
		seen[p.String()] = true
	}
}

func TestFlapCountDefaults(t *testing.T) {
	if got := (Fault{Kind: ClientFlap}).FlapCount(); got != 1 {
		t.Errorf("zero Count flaps %d times, want 1", got)
	}
	if got := (Fault{Kind: ClientFlap, Count: 4}).FlapCount(); got != 4 {
		t.Errorf("Count 4 flaps %d times", got)
	}
}
