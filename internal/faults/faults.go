// Package faults is the simulator's injectable fault plane: a declarative
// Plan of degraded-mode scenarios — single-disk failures inside a RAID-3
// array, I/O-node crashes with stripe failover, slow-node stragglers, and
// flapping clients driving lease-recall storms — that the PFS arms as
// scheduled DES events before the run starts.
//
// Determinism contract. Every fault is an ordinary kernel event with a
// fixed virtual-time instant, armed in Plan order before any workload
// event is scheduled, so sequence numbers are allocated identically for
// every shard count. Fault state is mutated only on the lane that reads
// it: disk-level state (degraded mode, service-time factor) lives on the
// owning I/O node's lane and is flipped by events on that lane; routing
// tables, mesh multipliers, and client-tier recalls live on the
// sequential plane and are flipped by lane-0 events. Degraded runs are
// therefore bit-reproducible and carry their own golden trace digests,
// and an empty Plan is byte-identical to a healthy run.
package faults

import (
	"fmt"
	"strings"
	"time"
)

// Kind names one fault scenario.
type Kind string

const (
	// DiskFail marks one data drive of the target I/O node's RAID-3
	// array failed at At: reads and writes run in degraded mode — every
	// request pays a parity-reconstruction pass and the array's transfer
	// rate drops to the surviving data drives — until Until (0 = no
	// repair).
	DiskFail Kind = "disk-fail"
	// NodeCrash kills the target I/O node at At: stripes that map to it
	// re-route to the next surviving node in the ring (which absorbs the
	// doubled load through its FIFO queue and pays its own mesh
	// distance) until Until (0 = no failover back). Requests already in
	// flight at the crash instant drain on the old node.
	NodeCrash Kind = "node-crash"
	// Straggler multiplies the target I/O node's disk service times and
	// the mesh transfers addressed to it by Factor from At to Until
	// (0 = for the rest of the run).
	Straggler Kind = "straggler"
	// ClientFlap makes compute node Node renegotiate every open stream
	// Count times, Period apart, starting at At — each flap recalls all
	// valid leases through the client tier (cache.ClientTier), the
	// lease-recall storm a crash-looping client inflicts on its peers.
	// Requires the client cache tier to be configured.
	ClientFlap Kind = "client-flap"
)

// Kinds lists every fault kind in canonical order.
func Kinds() []Kind { return []Kind{DiskFail, NodeCrash, Straggler, ClientFlap} }

// Valid reports whether k names a known fault kind.
func (k Kind) Valid() bool {
	switch k {
	case DiskFail, NodeCrash, Straggler, ClientFlap:
		return true
	}
	return false
}

// Fault is one scheduled fault. Fields beyond Kind and At apply only to
// the kinds that document them; Validate rejects stray settings so a
// misdirected field is never silently ignored.
type Fault struct {
	Kind Kind
	// At is the injection instant in virtual time from the start of the
	// run.
	At time.Duration
	// Until, when positive, is the recovery instant (disk repaired, node
	// rejoined, straggler back to speed). It must be after At and does
	// not apply to ClientFlap.
	Until time.Duration
	// IONode is the target I/O node (DiskFail, NodeCrash, Straggler).
	IONode int
	// Node is the flapping compute node (ClientFlap).
	Node int
	// Factor is the straggler's latency multiplier (> 1).
	Factor float64
	// Period is the interval between flaps (ClientFlap with Count > 1).
	Period time.Duration
	// Count is how many flaps fire (ClientFlap; default 1).
	Count int
}

// Plan is an ordered list of faults for one run. The zero value is the
// healthy machine; arming order is Plan order, which fixes event
// sequence allocation and keeps degraded runs deterministic.
type Plan struct {
	Faults []Fault
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Faults) == 0 }

// Validate checks every fault against an I/O-node count (ioNodes <= 0
// skips the range checks — callers that don't know the topology yet can
// still validate shape). It also rejects plans whose NodeCrash faults
// could leave no surviving I/O node.
func (p Plan) Validate(ioNodes int) error {
	crashed := map[int]bool{}
	for i, f := range p.Faults {
		if err := f.validate(ioNodes); err != nil {
			return fmt.Errorf("faults: fault %d: %w", i, err)
		}
		if f.Kind == NodeCrash {
			if crashed[f.IONode] {
				return fmt.Errorf("faults: fault %d: I/O node %d crashes twice", i, f.IONode)
			}
			crashed[f.IONode] = true
		}
	}
	if ioNodes > 0 && len(crashed) >= ioNodes {
		return fmt.Errorf("faults: all %d I/O nodes crash; at least one must survive", ioNodes)
	}
	return nil
}

func (f Fault) validate(ioNodes int) error {
	if !f.Kind.Valid() {
		return fmt.Errorf("unknown kind %q (want disk-fail, node-crash, straggler, or client-flap)", string(f.Kind))
	}
	if f.At < 0 {
		return fmt.Errorf("%s: negative injection time %v", f.Kind, f.At)
	}
	if f.Until != 0 && f.Until <= f.At {
		return fmt.Errorf("%s: recovery at %v is not after injection at %v", f.Kind, f.Until, f.At)
	}
	targeted := f.Kind == DiskFail || f.Kind == NodeCrash || f.Kind == Straggler
	if targeted {
		if f.IONode < 0 || (ioNodes > 0 && f.IONode >= ioNodes) {
			return fmt.Errorf("%s: I/O node %d out of range [0,%d)", f.Kind, f.IONode, ioNodes)
		}
		if f.Node != 0 || f.Period != 0 || f.Count != 0 {
			return fmt.Errorf("%s: node/period/count apply only to client-flap", f.Kind)
		}
	}
	switch f.Kind {
	case Straggler:
		if f.Factor <= 1 {
			return fmt.Errorf("straggler: factor %g, need > 1", f.Factor)
		}
	case ClientFlap:
		if f.IONode != 0 || f.Factor != 0 {
			return fmt.Errorf("client-flap: ionode/factor apply only to I/O-node faults")
		}
		if f.Node < 0 {
			return fmt.Errorf("client-flap: negative node %d", f.Node)
		}
		if f.Count < 0 {
			return fmt.Errorf("client-flap: negative count %d", f.Count)
		}
		if f.Period < 0 {
			return fmt.Errorf("client-flap: negative period %v", f.Period)
		}
		if f.Count > 1 && f.Period <= 0 {
			return fmt.Errorf("client-flap: count %d needs a positive period", f.Count)
		}
		if f.Until != 0 {
			return fmt.Errorf("client-flap: until does not apply (use period and count)")
		}
	default:
		if f.Factor != 0 {
			return fmt.Errorf("%s: factor applies only to straggler", f.Kind)
		}
	}
	return nil
}

// FlapCount returns the number of flaps a ClientFlap fault fires
// (Count, defaulted to 1).
func (f Fault) FlapCount() int {
	if f.Count < 1 {
		return 1
	}
	return f.Count
}

// String renders the fault canonically — stable field order, only the
// fields its kind uses — so plans serialize deterministically into
// content addresses (experiments.ConfigKey).
func (f Fault) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%d", string(f.Kind), int64(f.At))
	if f.Until != 0 {
		fmt.Fprintf(&b, "-%d", int64(f.Until))
	}
	switch f.Kind {
	case DiskFail, NodeCrash:
		fmt.Fprintf(&b, ",io=%d", f.IONode)
	case Straggler:
		fmt.Fprintf(&b, ",io=%d,x%g", f.IONode, f.Factor)
	case ClientFlap:
		fmt.Fprintf(&b, ",node=%d,period=%d,count=%d", f.Node, int64(f.Period), f.FlapCount())
	}
	return b.String()
}

// String renders the plan canonically: faults in order, ";"-joined, ""
// for the healthy machine.
func (p Plan) String() string {
	if p.Empty() {
		return ""
	}
	parts := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ";")
}
