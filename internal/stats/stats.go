// Package stats provides the descriptive statistics used by the analysis
// layer: summaries, percentiles, empirical CDFs (optionally weighted, for
// the paper's "fraction of data transferred" curves), logarithmic
// histograms for request sizes, simple linear regression (as used by
// Pasquale & Polyzos's related studies), and burstiness measures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Std    float64 // population standard deviation
	Median float64
}

// Describe computes a Summary. An empty sample yields the zero Summary.
func Describe(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Percentile(sorted, 50)
	return s
}

// Percentile returns the p-th percentile (0..100) of an ascending-sorted
// sample by linear interpolation. It panics on an empty sample or an
// out-of-range p.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %g out of range", p))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CV returns the coefficient of variation (std/mean), a standard
// burstiness indicator for inter-arrival series. Zero-mean samples
// return 0.
func CV(xs []float64) float64 {
	s := Describe(xs)
	if s.Mean == 0 {
		return 0
	}
	return s.Std / s.Mean
}

// Point is one step of an empirical CDF: cumulative probability F at
// value X (i.e. P[V <= X] = F).
type Point struct {
	X float64
	F float64
}

// CDF is an empirical (optionally weighted) cumulative distribution.
type CDF struct {
	points []Point
}

// NewCDF builds the empirical CDF of a sample, each value with equal
// weight. An empty sample yields an empty CDF.
func NewCDF(values []float64) CDF {
	w := make([]float64, len(values))
	for i := range w {
		w[i] = 1
	}
	return NewWeightedCDF(values, w)
}

// NewWeightedCDF builds a CDF where each value contributes its weight —
// the paper's "fraction of data transferred by requests of size <= x"
// curves weight each request by its byte count. Negative weights panic;
// values and weights must have equal length.
func NewWeightedCDF(values, weights []float64) CDF {
	if len(values) != len(weights) {
		panic("stats: values and weights length mismatch")
	}
	if len(values) == 0 {
		return CDF{}
	}
	type vw struct{ v, w float64 }
	rows := make([]vw, len(values))
	var total float64
	for i := range values {
		if weights[i] < 0 {
			panic("stats: negative weight")
		}
		rows[i] = vw{values[i], weights[i]}
		total += weights[i]
	}
	if total == 0 {
		return CDF{}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].v < rows[j].v })
	var pts []Point
	var cum float64
	for i := 0; i < len(rows); {
		j := i
		var w float64
		for j < len(rows) && rows[j].v == rows[i].v {
			w += rows[j].w
			j++
		}
		cum += w
		pts = append(pts, Point{X: rows[i].v, F: cum / total})
		i = j
	}
	// Guard against float accumulation drift on the last point.
	pts[len(pts)-1].F = 1
	return CDF{points: pts}
}

// Points returns the CDF's steps in ascending X order.
func (c CDF) Points() []Point { return c.points }

// Empty reports whether the CDF has no mass.
func (c CDF) Empty() bool { return len(c.points) == 0 }

// At returns P[V <= x]. For x below the smallest value it returns 0.
func (c CDF) At(x float64) float64 {
	i := sort.Search(len(c.points), func(i int) bool { return c.points[i].X > x })
	if i == 0 {
		return 0
	}
	return c.points[i-1].F
}

// Quantile returns the smallest X with F(X) >= q (0 < q <= 1). It panics
// on an empty CDF or out-of-range q.
func (c CDF) Quantile(q float64) float64 {
	if c.Empty() {
		panic("stats: quantile of empty CDF")
	}
	if q <= 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %g out of range", q))
	}
	for _, p := range c.points {
		if p.F >= q-1e-12 {
			return p.X
		}
	}
	return c.points[len(c.points)-1].X
}

// LogHistogram counts values into power-of-two buckets — the natural
// shape for request-size distributions spanning bytes to megabytes.
type LogHistogram struct {
	Counts []int64 // Counts[i] covers [2^i, 2^(i+1))
	Under  int64   // values < 1
}

// NewLogHistogram buckets the values.
func NewLogHistogram(values []int64) *LogHistogram {
	h := &LogHistogram{}
	for _, v := range values {
		h.Add(v)
	}
	return h
}

// Add folds one value into the histogram.
func (h *LogHistogram) Add(v int64) {
	if v < 1 {
		h.Under++
		return
	}
	b := 0
	for vv := v; vv > 1; vv >>= 1 {
		b++
	}
	for len(h.Counts) <= b {
		h.Counts = append(h.Counts, 0)
	}
	h.Counts[b]++
}

// Total returns the number of bucketed values, including Under.
func (h *LogHistogram) Total() int64 {
	n := h.Under
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// BucketLo returns the inclusive lower bound of bucket i.
func (h *LogHistogram) BucketLo(i int) int64 { return 1 << uint(i) }

// Linear holds the result of a least-squares fit y = Slope*x + Intercept.
type Linear struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearRegression fits a line through (x[i], y[i]). It panics if the
// lengths differ or fewer than two points are given; a vertical-variance-
// free y yields R2 = 1 on an exact fit and 0 otherwise.
func LinearRegression(x, y []float64) Linear {
	if len(x) != len(y) {
		panic("stats: regression length mismatch")
	}
	if len(x) < 2 {
		panic("stats: regression needs at least two points")
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	var fit Linear
	if sxx == 0 {
		// Vertical line: undefined slope; report flat fit.
		fit.Slope = 0
		fit.Intercept = my
	} else {
		fit.Slope = sxy / sxx
		fit.Intercept = my - fit.Slope*mx
	}
	if syy == 0 {
		fit.R2 = 1
	} else {
		ssRes := syy - fit.Slope*sxy
		fit.R2 = 1 - ssRes/syy
	}
	return fit
}
