package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDescribe(t *testing.T) {
	s := Describe([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("N/Min/Max = %d/%g/%g", s.N, s.Min, s.Max)
	}
	if !near(s.Mean, 5) {
		t.Fatalf("Mean = %g", s.Mean)
	}
	if !near(s.Std, 2) {
		t.Fatalf("Std = %g", s.Std)
	}
	if !near(s.Median, 4.5) {
		t.Fatalf("Median = %g", s.Median)
	}
}

func TestDescribeEmptyAndSingle(t *testing.T) {
	if s := Describe(nil); s.N != 0 {
		t.Fatalf("empty: %+v", s)
	}
	s := Describe([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Std != 0 || s.Median != 3 {
		t.Fatalf("single: %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 25: 2, 50: 3, 75: 4, 100: 5, 90: 4.6}
	for p, want := range cases {
		if got := Percentile(xs, p); !near(got, want) {
			t.Errorf("P%g = %g, want %g", p, got, want)
		}
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCV(t *testing.T) {
	if got := CV([]float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("CV of constant = %g", got)
	}
	if got := CV([]float64{0, 0}); got != 0 {
		t.Fatalf("CV of zeros = %g", got)
	}
	if CV([]float64{1, 100}) <= CV([]float64{49, 51}) {
		t.Fatal("bursty sample should have higher CV")
	}
}

func TestNewCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 10})
	if c.Empty() {
		t.Fatal("non-empty sample gave empty CDF")
	}
	if got := c.At(0.5); got != 0 {
		t.Fatalf("At(0.5) = %g", got)
	}
	if got := c.At(1); !near(got, 0.25) {
		t.Fatalf("At(1) = %g", got)
	}
	if got := c.At(2); !near(got, 0.75) {
		t.Fatalf("At(2) = %g", got)
	}
	if got := c.At(9.99); !near(got, 0.75) {
		t.Fatalf("At(9.99) = %g", got)
	}
	if got := c.At(10); got != 1 {
		t.Fatalf("At(10) = %g", got)
	}
	if got := c.At(1e12); got != 1 {
		t.Fatalf("At(inf) = %g", got)
	}
}

func TestWeightedCDF(t *testing.T) {
	// Two small requests of 100 bytes, one of 1MB: by count small is
	// 2/3; by bytes small is ~0.02%.
	values := []float64{100, 100, 1 << 20}
	counts := NewCDF(values)
	data := NewWeightedCDF(values, values)
	if got := counts.At(100); !near(got, 2.0/3) {
		t.Fatalf("count CDF At(100) = %g", got)
	}
	if got := data.At(100); got > 0.001 {
		t.Fatalf("data CDF At(100) = %g, want tiny", got)
	}
	if got := data.At(1 << 20); got != 1 {
		t.Fatalf("data CDF At(max) = %g", got)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.Quantile(0.5); got != 2 {
		t.Fatalf("Quantile(0.5) = %g", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Fatalf("Quantile(1) = %g", got)
	}
	if got := c.Quantile(0.01); got != 1 {
		t.Fatalf("Quantile(0.01) = %g", got)
	}
}

func TestCDFEdgeCases(t *testing.T) {
	if !NewCDF(nil).Empty() {
		t.Fatal("empty sample should give empty CDF")
	}
	zero := NewWeightedCDF([]float64{1, 2}, []float64{0, 0})
	if !zero.Empty() {
		t.Fatal("zero-weight CDF should be empty")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative weight should panic")
			}
		}()
		NewWeightedCDF([]float64{1}, []float64{-1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("length mismatch should panic")
			}
		}()
		NewWeightedCDF([]float64{1}, []float64{1, 2})
	}()
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		c := NewCDF(vals)
		pts := c.Points()
		for i := 1; i < len(pts); i++ {
			if pts[i].X <= pts[i-1].X || pts[i].F < pts[i-1].F {
				return false
			}
		}
		return pts[len(pts)-1].F == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFAtMatchesDirectCountProperty(t *testing.T) {
	f := func(raw []uint16, probe uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		c := NewCDF(vals)
		var n int
		for _, v := range vals {
			if v <= float64(probe) {
				n++
			}
		}
		want := float64(n) / float64(len(vals))
		return math.Abs(c.At(float64(probe))-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram([]int64{0, 1, 2, 3, 4, 1024, 1 << 20})
	if h.Under != 1 {
		t.Fatalf("Under = %d", h.Under)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Counts[0] != 1 { // [1,2)
		t.Fatalf("bucket 0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 2 { // [2,4): 2,3
		t.Fatalf("bucket 1 = %d", h.Counts[1])
	}
	if h.Counts[2] != 1 { // [4,8)
		t.Fatalf("bucket 2 = %d", h.Counts[2])
	}
	if h.Counts[10] != 1 || h.Counts[20] != 1 {
		t.Fatalf("high buckets: %v", h.Counts)
	}
	if h.BucketLo(10) != 1024 {
		t.Fatalf("BucketLo(10) = %d", h.BucketLo(10))
	}
}

func TestLinearRegressionExactFit(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	fit := LinearRegression(x, y)
	if !near(fit.Slope, 2) || !near(fit.Intercept, 1) || !near(fit.R2, 1) {
		t.Fatalf("fit = %+v", fit)
	}
}

func TestLinearRegressionNoise(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{2, 1, 4, 3, 6, 5}
	fit := LinearRegression(x, y)
	if fit.Slope <= 0 {
		t.Fatalf("slope = %g, want positive trend", fit.Slope)
	}
	if fit.R2 <= 0 || fit.R2 >= 1 {
		t.Fatalf("R2 = %g, want in (0,1)", fit.R2)
	}
}

func TestLinearRegressionDegenerate(t *testing.T) {
	fit := LinearRegression([]float64{2, 2, 2}, []float64{1, 5, 9})
	if fit.Slope != 0 || !near(fit.Intercept, 5) {
		t.Fatalf("vertical fit = %+v", fit)
	}
	flat := LinearRegression([]float64{1, 2, 3}, []float64{7, 7, 7})
	if !near(flat.Slope, 0) || !near(flat.Intercept, 7) || flat.R2 != 1 {
		t.Fatalf("flat fit = %+v", flat)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short input should panic")
			}
		}()
		LinearRegression([]float64{1}, []float64{1})
	}()
}

func TestPercentileMatchesSortProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		sort.Float64s(vals)
		// P0 and P100 are exactly min and max.
		return Percentile(vals, 0) == vals[0] && Percentile(vals, 100) == vals[len(vals)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
