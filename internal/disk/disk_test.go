package disk

import (
	"testing"
	"testing/quick"
	"time"
)

func newDefault(t *testing.T) *Array {
	t.Helper()
	a, err := NewArray(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"no data disks", func(p *Params) { p.DataDisks = 0 }},
		{"zero bandwidth", func(p *Params) { p.DiskBW = 0 }},
		{"negative seek", func(p *Params) { p.AvgSeek = -time.Millisecond }},
		{"negative overhead", func(p *Params) { p.Overhead = -time.Millisecond }},
		{"track > avg seek", func(p *Params) { p.TrackSeek = p.AvgSeek + time.Millisecond }},
		{"zero capacity", func(p *Params) { p.CapacityGB = 0 }},
		{"negative capacity", func(p *Params) { p.CapacityGB = -4.8 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			tc.mut(&p)
			if err := p.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", p)
			}
		})
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestArrayBW(t *testing.T) {
	p := DefaultParams()
	if got, want := p.ArrayBW(), 4*2.5e6; got != want {
		t.Fatalf("ArrayBW = %g, want %g", got, want)
	}
}

func TestSequentialCheaperThanRandom(t *testing.T) {
	a := newDefault(t)
	first := a.Service("f", 0, 65536)     // cold: positioned
	seq := a.Service("f", 65536, 65536)   // sequential continuation
	rand := a.Service("f", 10<<20, 65536) // jump
	if seq >= first {
		t.Fatalf("sequential (%v) not cheaper than cold (%v)", seq, first)
	}
	if seq >= rand {
		t.Fatalf("sequential (%v) not cheaper than random (%v)", seq, rand)
	}
}

func TestStreamSwitchBreaksSequentiality(t *testing.T) {
	a := newDefault(t)
	a.Service("f", 0, 65536)
	other := a.Service("g", 65536, 65536) // same offset, different stream
	a2 := newDefault(t)
	a2.Service("f", 0, 65536)
	same := a2.Service("f", 65536, 65536)
	if other <= same {
		t.Fatalf("cross-stream request (%v) priced as sequential (%v)", other, same)
	}
}

func TestLargeRequestAmortizesPositioning(t *testing.T) {
	a := newDefault(t)
	small := a.Service("f", 1<<30, 512)
	a.Reset()
	large := a.Service("f", 1<<30, 1<<20)
	// Effective bandwidth of the large request must be far higher.
	smallBW := 512 / small.Seconds()
	largeBW := float64(1<<20) / large.Seconds()
	if largeBW < 20*smallBW {
		t.Fatalf("large-request bandwidth %.0f not >> small-request %.0f", largeBW, smallBW)
	}
}

func TestServiceTimeComponents(t *testing.T) {
	p := DefaultParams()
	a := MustNewArray(p)
	d := a.Service("f", 4096, 65536)
	want := p.Overhead + p.AvgSeek + p.Rotation/2 +
		time.Duration(65536/p.ArrayBW()*float64(time.Second))
	if d != want {
		t.Fatalf("Service = %v, want %v", d, want)
	}
	d2 := a.Service("f", 4096+65536, 65536)
	want2 := p.Overhead + p.TrackSeek/4 +
		time.Duration(65536/p.ArrayBW()*float64(time.Second))
	if d2 != want2 {
		t.Fatalf("sequential Service = %v, want %v", d2, want2)
	}
}

func TestStatsAccumulate(t *testing.T) {
	a := newDefault(t)
	a.Service("f", 0, 1000)
	a.Service("f", 1000, 1000)
	a.Service("g", 0, 500)
	s := a.Stats()
	if s.Requests != 3 {
		t.Fatalf("Requests = %d, want 3", s.Requests)
	}
	if s.SeqHits != 1 {
		t.Fatalf("SeqHits = %d, want 1", s.SeqHits)
	}
	if s.BytesMoved != 2500 {
		t.Fatalf("BytesMoved = %d, want 2500", s.BytesMoved)
	}
	if s.Busy <= 0 {
		t.Fatalf("Busy = %v", s.Busy)
	}
}

func TestReset(t *testing.T) {
	a := newDefault(t)
	a.Service("f", 0, 65536)
	a.Reset()
	if s := a.Stats(); s.Requests != 0 || s.BytesMoved != 0 || s.Busy != 0 {
		t.Fatalf("stats after Reset: %+v", s)
	}
	// After reset the head state is cold again.
	d := a.Service("f", 65536, 65536)
	p := a.Params()
	if d < p.AvgSeek {
		t.Fatalf("post-reset request priced as sequential: %v", d)
	}
}

func TestNonPositiveSizePanics(t *testing.T) {
	a := newDefault(t)
	for _, size := range []int64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Service(size=%d) did not panic", size)
				}
			}()
			a.Service("f", 0, size)
		}()
	}
}

func TestServicePositiveProperty(t *testing.T) {
	a := newDefault(t)
	f := func(off uint32, size uint16, seq bool) bool {
		s := int64(size) + 1
		var o int64
		if seq {
			o = a.lastEnd
		} else {
			o = int64(off)
		}
		return a.Service("f", o, s) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServiceMonotoneInSizeForColdRequests(t *testing.T) {
	f := func(s1, s2 uint32) bool {
		lo, hi := int64(s1)+1, int64(s2)+1
		if lo > hi {
			lo, hi = hi, lo
		}
		a1 := MustNewArray(DefaultParams())
		a2 := MustNewArray(DefaultParams())
		return a1.Service("f", 999, lo) <= a2.Service("f", 999, hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
