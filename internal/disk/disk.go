// Package disk models the storage hardware behind each Paragon I/O node:
// a RAID-3 disk array (byte-striped with a dedicated parity drive, so the
// array behaves like one large disk whose transfer rate is the sum of the
// data drives and whose positioning cost is that of a single actuator).
//
// The service-time model distinguishes sequential from non-sequential
// access: a request continuing where the previous one ended pays only
// transfer cost; any other request pays seek plus half-rotation before
// transferring. This is the mechanism behind the paper's central
// observation that large stripe-aligned requests achieve high transfer
// rates while small scattered requests are dominated by positioning.
package disk

import (
	"fmt"
	"time"
)

// Params describes one member drive and the array geometry.
type Params struct {
	AvgSeek    time.Duration // average actuator seek
	TrackSeek  time.Duration // track-to-track (near-sequential) seek
	Rotation   time.Duration // one full platter revolution
	DiskBW     float64       // sustained bytes/second per data drive
	Overhead   time.Duration // controller + SCSI per-request overhead
	DataDisks  int           // data drives in the RAID-3 group (parity excluded)
	CapacityGB float64       // usable capacity (sizes the optional I/O-node cache)
}

// DefaultParams returns parameters for the 4.8 GB RAID-3 arrays on the
// Caltech Paragon's I/O nodes: four data drives of early-90s SCSI disks
// (~12 ms seek, 4500 RPM, ~2.5 MB/s sustained each).
func DefaultParams() Params {
	return Params{
		AvgSeek:    12 * time.Millisecond,
		TrackSeek:  2 * time.Millisecond,
		Rotation:   13300 * time.Microsecond, // 4500 RPM
		DiskBW:     2.5e6,
		Overhead:   1 * time.Millisecond,
		DataDisks:  4,
		CapacityGB: 4.8,
	}
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	if p.DataDisks < 1 {
		return fmt.Errorf("disk: DataDisks = %d, need >= 1", p.DataDisks)
	}
	if p.DiskBW <= 0 {
		return fmt.Errorf("disk: DiskBW = %g, need > 0", p.DiskBW)
	}
	if p.AvgSeek < 0 || p.TrackSeek < 0 || p.Rotation < 0 || p.Overhead < 0 {
		return fmt.Errorf("disk: negative timing parameter")
	}
	if p.TrackSeek > p.AvgSeek {
		return fmt.Errorf("disk: TrackSeek %v exceeds AvgSeek %v", p.TrackSeek, p.AvgSeek)
	}
	if p.CapacityGB <= 0 {
		// Capacity used to be informational; the I/O-node buffer cache
		// now sizes itself relative to it, so it must be meaningful.
		return fmt.Errorf("disk: CapacityGB = %g, need > 0", p.CapacityGB)
	}
	return nil
}

// ArrayBW returns the aggregate data bandwidth of the array in
// bytes/second.
func (p Params) ArrayBW() float64 { return p.DiskBW * float64(p.DataDisks) }

// Array is the stateful service-time model for one RAID-3 array. It
// remembers the head position (as the end of the last request, tagged by
// stream) to price sequentiality. Array is not safe for concurrent use;
// in the simulator each array sits behind a FIFO resource.
type Array struct {
	p Params

	lastStream string // stream tag of the previous request ("" = none)
	lastEnd    int64  // byte offset where the previous request ended

	// accumulated statistics
	requests   uint64
	seqHits    uint64
	bytesMoved int64
	busy       time.Duration
}

// NewArray returns an array model with the given parameters.
func NewArray(p Params) (*Array, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Array{p: p}, nil
}

// MustNewArray is NewArray, panicking on invalid parameters.
func MustNewArray(p Params) *Array {
	a, err := NewArray(p)
	if err != nil {
		panic(err)
	}
	return a
}

// Params returns the array's parameters.
func (a *Array) Params() Params { return a.p }

// Service returns the time to serve a request of size bytes at offset
// within the named stream (a stream identifies one file's extent on this
// array, so sequentiality is only recognized within a stream). It updates
// the head-position state and statistics. size must be positive.
func (a *Array) Service(stream string, offset, size int64) time.Duration {
	if size <= 0 {
		panic(fmt.Sprintf("disk: non-positive request size %d", size))
	}
	d := a.p.Overhead
	if a.lastStream == stream && a.lastEnd == offset && stream != "" {
		// Sequential continuation: near-free positioning.
		d += a.p.TrackSeek / 4
		a.seqHits++
	} else {
		d += a.p.AvgSeek + a.p.Rotation/2
	}
	d += time.Duration(float64(size) / a.p.ArrayBW() * float64(time.Second))
	a.lastStream = stream
	a.lastEnd = offset + size
	a.requests++
	a.bytesMoved += size
	a.busy += d
	return d
}

// Stats is a snapshot of accumulated array activity.
type Stats struct {
	Requests   uint64
	SeqHits    uint64        // requests priced as sequential continuations
	BytesMoved int64         // total payload bytes
	Busy       time.Duration // total service time
}

// Stats returns the array's accumulated statistics.
func (a *Array) Stats() Stats {
	return Stats{
		Requests:   a.requests,
		SeqHits:    a.seqHits,
		BytesMoved: a.bytesMoved,
		Busy:       a.busy,
	}
}

// Reset clears head position and statistics.
func (a *Array) Reset() {
	a.lastStream = ""
	a.lastEnd = 0
	a.requests = 0
	a.seqHits = 0
	a.bytesMoved = 0
	a.busy = 0
}
