// Package disk models the storage hardware behind each Paragon I/O node:
// a RAID-3 disk array (byte-striped with a dedicated parity drive, so the
// array behaves like one large disk whose transfer rate is the sum of the
// data drives and whose positioning cost is that of a single actuator).
//
// The service-time model distinguishes sequential from non-sequential
// access: a request continuing where the previous one ended pays only
// transfer cost; any other request pays seek plus half-rotation before
// transferring. This is the mechanism behind the paper's central
// observation that large stripe-aligned requests achieve high transfer
// rates while small scattered requests are dominated by positioning.
package disk

import (
	"fmt"
	"time"
)

// Params describes one member drive and the array geometry.
type Params struct {
	AvgSeek    time.Duration // average actuator seek
	TrackSeek  time.Duration // track-to-track (near-sequential) seek
	Rotation   time.Duration // one full platter revolution
	DiskBW     float64       // sustained bytes/second per data drive
	Overhead   time.Duration // controller + SCSI per-request overhead
	DataDisks  int           // data drives in the RAID-3 group (parity excluded)
	CapacityGB float64       // usable capacity (sizes the optional I/O-node cache)
}

// DefaultParams returns parameters for the 4.8 GB RAID-3 arrays on the
// Caltech Paragon's I/O nodes: four data drives of early-90s SCSI disks
// (~12 ms seek, 4500 RPM, ~2.5 MB/s sustained each).
func DefaultParams() Params {
	return Params{
		AvgSeek:    12 * time.Millisecond,
		TrackSeek:  2 * time.Millisecond,
		Rotation:   13300 * time.Microsecond, // 4500 RPM
		DiskBW:     2.5e6,
		Overhead:   1 * time.Millisecond,
		DataDisks:  4,
		CapacityGB: 4.8,
	}
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	if p.DataDisks < 1 {
		return fmt.Errorf("disk: DataDisks = %d, need >= 1", p.DataDisks)
	}
	if p.DiskBW <= 0 {
		return fmt.Errorf("disk: DiskBW = %g, need > 0", p.DiskBW)
	}
	if p.AvgSeek < 0 || p.TrackSeek < 0 || p.Rotation < 0 || p.Overhead < 0 {
		return fmt.Errorf("disk: negative timing parameter")
	}
	if p.TrackSeek > p.AvgSeek {
		return fmt.Errorf("disk: TrackSeek %v exceeds AvgSeek %v", p.TrackSeek, p.AvgSeek)
	}
	if p.CapacityGB <= 0 {
		// Capacity used to be informational; the I/O-node buffer cache
		// now sizes itself relative to it, so it must be meaningful.
		return fmt.Errorf("disk: CapacityGB = %g, need > 0", p.CapacityGB)
	}
	return nil
}

// ArrayBW returns the aggregate data bandwidth of the array in
// bytes/second.
func (p Params) ArrayBW() float64 { return p.DiskBW * float64(p.DataDisks) }

// Array is the stateful service-time model for one RAID-3 array. It
// remembers the head position (as the end of the last request, tagged by
// stream) to price sequentiality. Array is not safe for concurrent use;
// in the simulator each array sits behind a FIFO resource.
type Array struct {
	p Params

	lastStream string // stream tag of the previous request ("" = none)
	lastEnd    int64  // byte offset where the previous request ended

	// fault-plane state (see internal/faults): degraded marks one data
	// drive failed, slow is a straggler service-time multiplier (1 =
	// nominal). Both are flipped by scheduled DES events on the owning
	// I/O node's lane.
	degraded bool
	slow     float64

	// accumulated statistics
	requests    uint64
	seqHits     uint64
	degradedOps uint64
	bytesMoved  int64
	busy        time.Duration
}

// NewArray returns an array model with the given parameters.
func NewArray(p Params) (*Array, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Array{p: p, slow: 1}, nil
}

// MustNewArray is NewArray, panicking on invalid parameters.
func MustNewArray(p Params) *Array {
	a, err := NewArray(p)
	if err != nil {
		panic(err)
	}
	return a
}

// Params returns the array's parameters.
func (a *Array) Params() Params { return a.p }

// SetDegraded switches the array into (or out of) single-disk-failure
// degraded mode. In RAID-3 a lost data drive is reconstructed on the fly
// from the survivors plus parity, so the array keeps serving — but every
// request pays an extra reconstruction pass and the aggregate transfer
// rate drops to the surviving data drives.
func (a *Array) SetDegraded(on bool) { a.degraded = on }

// Degraded reports whether the array is in degraded mode.
func (a *Array) Degraded() bool { return a.degraded }

// SetSlow installs a straggler service-time multiplier (>= 1; 1 restores
// nominal speed). It panics on factors below 1 — a "fast fault" would
// break the FIFO resource's non-negative hold invariant.
func (a *Array) SetSlow(factor float64) {
	if factor < 1 {
		panic(fmt.Sprintf("disk: slow factor %g < 1", factor))
	}
	a.slow = factor
}

// Service returns the time to serve a request of size bytes at offset
// within the named stream (a stream identifies one file's extent on this
// array, so sequentiality is only recognized within a stream). It updates
// the head-position state and statistics. size must be positive.
func (a *Array) Service(stream string, offset, size int64) time.Duration {
	if size <= 0 {
		panic(fmt.Sprintf("disk: non-positive request size %d", size))
	}
	d := a.p.Overhead
	if a.lastStream == stream && a.lastEnd == offset && stream != "" {
		// Sequential continuation: near-free positioning.
		d += a.p.TrackSeek / 4
		a.seqHits++
	} else {
		d += a.p.AvgSeek + a.p.Rotation/2
	}
	bw := a.p.ArrayBW()
	if a.degraded {
		// Degraded RAID-3: reconstruct the lost drive's bytes from the
		// survivors plus parity. One extra controller pass per request,
		// and the aggregate rate falls to the surviving data drives
		// (with one data drive the parity drive stands in, so the rate
		// holds).
		d += a.p.Overhead
		if a.p.DataDisks > 1 {
			bw = a.p.DiskBW * float64(a.p.DataDisks-1)
		}
		a.degradedOps++
	}
	d += time.Duration(float64(size) / bw * float64(time.Second))
	if a.slow > 1 {
		d = time.Duration(float64(d) * a.slow)
	}
	a.lastStream = stream
	a.lastEnd = offset + size
	a.requests++
	a.bytesMoved += size
	a.busy += d
	return d
}

// Stats is a snapshot of accumulated array activity.
type Stats struct {
	Requests   uint64
	SeqHits    uint64        // requests priced as sequential continuations
	Degraded   uint64        // requests served in degraded (reconstruction) mode
	BytesMoved int64         // total payload bytes
	Busy       time.Duration // total service time
}

// Stats returns the array's accumulated statistics.
func (a *Array) Stats() Stats {
	return Stats{
		Requests:   a.requests,
		SeqHits:    a.seqHits,
		Degraded:   a.degradedOps,
		BytesMoved: a.bytesMoved,
		Busy:       a.busy,
	}
}

// Reset clears head position and statistics (fault state persists —
// repair is the fault plane's business, not the workload's).
func (a *Array) Reset() {
	a.lastStream = ""
	a.lastEnd = 0
	a.requests = 0
	a.seqHits = 0
	a.degradedOps = 0
	a.bytesMoved = 0
	a.busy = 0
}
