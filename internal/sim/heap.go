package sim

// eventHeap is an index-based 4-ary min-heap over a flat slice of event
// values, ordered by (time, sequence number). The sequence tiebreak makes
// same-instant events fire in scheduling order, which is what makes the
// kernel deterministic.
//
// Compared with container/heap over *event pointers, the flat value
// layout avoids interface boxing on every push/pop and per-event pointer
// allocations entirely, and the 4-ary shape halves the tree depth (fewer
// cache lines touched per sift) at the cost of up to three extra
// comparisons per level — a good trade for the kernel's push/pop-heavy
// access pattern.
type eventHeap struct {
	ev []event
}

// less orders events by (at, seq).
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) len() int { return len(h.ev) }

// min returns the earliest event without removing it. It must not be
// called on an empty heap.
func (h *eventHeap) min() *event { return &h.ev[0] }

// push inserts e, sifting it up to its (at, seq) position.
func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	ev := h.ev
	i := len(ev) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !less(&e, &ev[parent]) {
			break
		}
		ev[i] = ev[parent]
		i = parent
	}
	ev[i] = e
}

// pop removes and returns the earliest event. It must not be called on an
// empty heap.
func (h *eventHeap) pop() event {
	ev := h.ev
	top := ev[0]
	n := len(ev) - 1
	last := ev[n]
	ev[n] = event{} // drop proc/fn references so the GC can collect them
	h.ev = ev[:n]
	if n > 0 {
		h.siftDown(last)
	}
	return top
}

// siftDown places e starting from the root, moving smaller children up.
func (h *eventHeap) siftDown(e event) {
	ev := h.ev
	n := len(ev)
	i := 0
	for {
		c := i<<2 + 1 // first child
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if less(&ev[j], &ev[m]) {
				m = j
			}
		}
		if !less(&ev[m], &e) {
			break
		}
		ev[i] = ev[m]
		i = m
	}
	ev[i] = e
}
