package sim

import "fmt"

// Proc is a simulated process: a goroutine that runs under the kernel's
// strict handoff protocol. Exactly one process runs at a time; all Proc
// methods must be called from the process's own body function.
type Proc struct {
	k      *Kernel
	name   string
	id     int
	lane   int32 // home compute lane for wake events; 0 = lane 0
	resume chan struct{}
	done   bool
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// ID returns the process's unique spawn-ordered identifier (1-based).
func (p *Proc) ID() int { return p.id }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("proc %d (%s)", p.id, p.name) }

// Wait suspends the process for d of virtual time. A zero wait yields to
// other events scheduled at the same instant.
func (p *Proc) Wait(d Time) {
	if d < 0 {
		panic("sim: negative wait on " + p.name)
	}
	p.k.schedule(p.k.now+d, p, nil)
	p.park("")
}

// WaitUntil suspends the process until absolute virtual time t. If t is
// not after Now, it behaves like Wait(0).
func (p *Proc) WaitUntil(t Time) {
	if t < p.k.now {
		t = p.k.now
	}
	p.k.schedule(t, p, nil)
	p.park("")
}

// Suspend parks the process until another event resumes it via
// Shard.Resume or Kernel.Resume. reason appears in deadlock diagnostics
// should the resume never arrive.
func (p *Proc) Suspend(reason string) {
	if reason == "" {
		reason = "suspended"
	}
	p.park(reason)
}

// park yields control to the kernel until some event resumes this process.
// reason, if non-empty, records why the process is blocked (for deadlock
// diagnostics); parks with a pending wake event pass "".
//
// While the kernel aborts a cancelled run, park panics with procAbort
// instead of blocking: the resume that woke the process was the abort
// sweep, and any park reached afterwards (e.g. from a deferred close
// running during the unwind) must not re-enter the handoff protocol.
func (p *Proc) park(reason string) {
	if p.k.aborting {
		panic(procAbort{})
	}
	if reason != "" {
		p.k.blocked[p] = reason
	}
	p.k.parked <- struct{}{}
	<-p.resume
	if p.k.aborting {
		panic(procAbort{})
	}
}
