// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel.
//
// The kernel advances a virtual clock by processing a time-ordered event
// queue. Simulated activities are written as ordinary Go functions running
// in "processes" (goroutines under strict kernel handoff: exactly one
// process executes at a time, so runs are bit-reproducible). Processes
// block on virtual-time waits and on synchronization primitives (Resource,
// Barrier, Mailbox); the kernel resumes them when the corresponding event
// fires.
//
// Events scheduled for the same instant are processed in scheduling order
// (FIFO by sequence number), which — together with the single-runner
// handoff protocol — makes the simulation fully deterministic regardless
// of Go's goroutine scheduling.
//
// Two dispatch paths exist. Process resumption goes through the goroutine
// handoff protocol (two channel rendezvous, i.e. four scheduler context
// switches per event). Callback events run inline in the kernel loop with
// no goroutine round-trip; the synchronization primitives expose
// callback-shaped variants (Resource.UseFn, Mailbox.RecvFn,
// Barrier.AwaitFn) so hot non-process-shaped work can take the fast path.
// See docs/PERFORMANCE.md for the cost model.
package sim

import (
	"fmt"
	"sort"
	"time"
)

// Time is a virtual timestamp measured from the start of the simulation.
type Time = time.Duration

// maxRetainedEvents caps the event storage (queue backing array and the
// same-timestamp batch buffer) a kernel keeps after its queue drains, so
// a kernel that peaked at hundreds of thousands of pending events does
// not pin that memory for its remaining lifetime.
const maxRetainedEvents = 4096

// event is a scheduled occurrence: either the resumption of a parked
// process or an inline callback. An event does not carry its lane: on a
// sharded kernel lane identity is the queue the event sits in (k.queue
// is lane 0, k.laneQ[i] is lane i+1), and the merge path tags popped
// events with laneEvent (see shard.go). Keeping the struct at five
// words matters — every heap sift copies it.
type event struct {
	at   Time
	seq  uint64
	proc *Proc  // resume this process, if non-nil
	fn   func() // otherwise run this callback inline
}

// Kernel is a discrete-event simulation engine. A Kernel must be driven
// from a single goroutine; processes it spawns are coordinated internally.
//
// The zero value is not usable; call NewKernel.
type Kernel struct {
	now    Time
	queue  eventHeap
	seq    uint64
	parked chan struct{} // handoff: signaled when the running process yields

	procSeq   int
	live      int // processes spawned and not yet finished
	processed uint64

	// batch is scratch for same-timestamp dispatch runs (see runBatch).
	batch []event

	// blocked tracks processes parked with no pending wake event
	// (i.e. waiting on a synchronization primitive), for deadlock
	// reporting.
	blocked map[*Proc]string

	// Sharded-mode state (see shard.go). All fields stay zero on an
	// unsharded kernel except lane0, the handle every Lane() call
	// resolves to.
	lane0        *Shard
	lanes        []*Shard    // shard lane handles; index i is lane i+1
	laneQ        []eventHeap // per-shard-lane queues, parallel to lanes
	ioLanes      int         // lanes[0:ioLanes] are I/O LPs, the rest compute LPs
	lookahead    Time
	window       Time // sync-window width, (0, lookahead]
	fencePeriods []Time
	inStage      bool // phase A is executing; unrouted schedules panic
	replayEnd    Time // nonzero while a window replays; guards in-window cross-LP schedules
	stageMin     int
	observer     func(at Time, seq uint64, lane int)

	// Scratch reused across windows and sequential instants.
	merged []laneEvent
	wins   []laneWin

	// cancelCheck, when non-nil, is polled between dispatch batches (and
	// between sync windows on a sharded kernel). A non-nil return aborts
	// the run: every live process is unwound deterministically and
	// Run/RunUntil return the error. See SetCancel.
	cancelCheck func() error
	// aborting is set while abort unwinds parked processes; park points
	// observe it and panic with procAbort so process stacks (and their
	// defers) unwind instead of blocking forever.
	aborting bool
}

// NewKernel returns a kernel with the clock at zero and no pending events.
func NewKernel() *Kernel {
	k := &Kernel{
		parked:  make(chan struct{}),
		blocked: make(map[*Proc]string),
	}
	k.lane0 = &Shard{k: k}
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// EventsProcessed returns the number of events the kernel has dispatched.
func (k *Kernel) EventsProcessed() uint64 { return k.processed }

// LiveProcs returns the number of spawned processes that have not finished.
func (k *Kernel) LiveProcs() int { return k.live }

// schedule enqueues an event at the given absolute time on lane 0 — or,
// for the wakeup of a process that lives on a compute lane, on that
// lane's queue. The queue only decides where the event waits; dispatch
// order is the global (at, seq) merge either way.
func (k *Kernel) schedule(at Time, p *Proc, fn func()) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at=%v now=%v", at, k.now))
	}
	if k.inStage {
		panic("sim: unrouted schedule from inside a window worker (use the lane's Shard handle)")
	}
	k.seq++
	ev := event{at: at, seq: k.seq, proc: p, fn: fn}
	if p != nil && p.lane != 0 {
		k.laneQ[p.lane-1].push(ev)
		return
	}
	k.queue.push(ev)
}

// After schedules fn to run at Now()+d. It may be called from process
// context or from event callbacks.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	k.schedule(k.now+d, nil, fn)
}

// Spawn creates a new process executing body and schedules it to start at
// the current virtual time. It may be called before Run or from within a
// running process or callback.
func (k *Kernel) Spawn(name string, body func(*Proc)) *Proc {
	return k.spawn(0, name, 0, body)
}

// SpawnOn is Spawn with a home lane: the process's wake events queue on
// sh's lane instead of the shared lane-0 heap. Only compute lanes
// partition processes — an I/O-lane or lane-0 handle leaves the process
// on lane 0. The home lane changes which queue wakeups wait in, never
// their (at, seq) dispatch order, so it is trace-invisible.
func (k *Kernel) SpawnOn(sh *Shard, name string, body func(*Proc)) *Proc {
	var lane int32
	if sh != nil && sh.k == k && !k.isIOLane(sh.lane) {
		lane = sh.lane
	}
	return k.spawn(0, name, lane, body)
}

// SpawnAt is like Spawn but delays the process start by d.
func (k *Kernel) SpawnAt(d Time, name string, body func(*Proc)) *Proc {
	if d < 0 {
		panic("sim: negative delay")
	}
	return k.spawn(d, name, 0, body)
}

func (k *Kernel) spawn(d Time, name string, lane int32, body func(*Proc)) *Proc {
	k.procSeq++
	p := &Proc{
		k:      k,
		name:   name,
		id:     k.procSeq,
		lane:   lane,
		resume: make(chan struct{}),
	}
	k.live++
	k.schedule(k.now+d, p, nil)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procAbort); !ok {
					panic(r) // real failure: re-raise with the stack intact
				}
			}
			p.done = true
			k.live--
			k.parked <- struct{}{} // final yield back to the kernel
		}()
		<-p.resume // wait for first dispatch
		if k.aborting {
			return // cancelled before the body ever ran
		}
		body(p)
	}()
	return p
}

// DeadlockError reports that the event queue drained while processes were
// still blocked on synchronization primitives.
type DeadlockError struct {
	Now     Time
	Blocked []string // "proc-name: reason", sorted
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v: %d process(es) blocked: %v",
		e.Now, len(e.Blocked), e.Blocked)
}

// deadlockError builds the diagnosis for a drained queue with live
// processes still blocked.
func (k *Kernel) deadlockError() *DeadlockError {
	var blocked []string
	for p, reason := range k.blocked {
		blocked = append(blocked, p.name+": "+reason)
	}
	sort.Strings(blocked)
	return &DeadlockError{Now: k.now, Blocked: blocked}
}

// SetCancel installs a cancellation check the run loop polls between
// dispatch batches (between sync windows on a sharded kernel). The first
// non-nil error aborts the run: pending events are dropped, every live
// process is unwound in spawn order (its deferred functions run), and
// Run/RunUntil return the error. The canonical check wraps a
// context.Context: k.SetCancel(ctx.Err). A nil check (the default)
// disables polling; runs that never cancel are unaffected either way —
// the check runs between batches, never between events of one instant,
// so it cannot perturb event order.
func (k *Kernel) SetCancel(check func() error) {
	k.cancelCheck = check
}

// checkCancel polls the installed cancellation check.
func (k *Kernel) checkCancel() error {
	if k.cancelCheck == nil {
		return nil
	}
	return k.cancelCheck()
}

// procAbort is the sentinel a parked process panics with while the
// kernel aborts; the spawn wrapper recovers it and retires the process.
type procAbort struct{}

// abort unwinds every live process after a cancelled run and returns
// err. Parked processes are found in the blocked map (waiting on a
// synchronization primitive) and the event queues (waiting on a pending
// wake), then resumed one at a time in spawn order; the abort flag makes
// each park point panic with procAbort, so the process's stack — and any
// defers on it — unwinds and its goroutine exits before the next one is
// woken. The kernel is not reusable afterwards.
func (k *Kernel) abort(err error) error {
	k.aborting = true
	seen := make(map[*Proc]bool)
	var parked []*Proc
	add := func(p *Proc) {
		if p != nil && !p.done && !seen[p] {
			seen[p] = true
			parked = append(parked, p)
		}
	}
	for p := range k.blocked {
		add(p)
	}
	for i := range k.queue.ev {
		add(k.queue.ev[i].proc)
	}
	for qi := range k.laneQ {
		for i := range k.laneQ[qi].ev {
			add(k.laneQ[qi].ev[i].proc)
		}
	}
	sort.Slice(parked, func(i, j int) bool { return parked[i].id < parked[j].id })
	for _, p := range parked {
		delete(k.blocked, p)
		p.resume <- struct{}{}
		<-k.parked
	}
	k.queue.ev = nil
	for i := range k.laneQ {
		k.laneQ[i].ev = nil
	}
	k.trim()
	return err
}

// Run processes events until the queue is empty. It returns a
// *DeadlockError if any spawned process is still blocked when the queue
// drains, the cancellation error if an installed SetCancel check fired,
// and nil otherwise.
func (k *Kernel) Run() error {
	if len(k.lanes) == 0 {
		for k.queue.len() > 0 {
			if err := k.checkCancel(); err != nil {
				return k.abort(err)
			}
			k.runBatch(k.queue.min().at)
		}
	} else {
		if err := k.runSharded(0, false); err != nil {
			return k.abort(err)
		}
	}
	k.trim()
	if k.live > 0 {
		return k.deadlockError()
	}
	return nil
}

// RunUntil processes events with timestamps <= deadline and then stops,
// leaving later events queued. It returns the same deadlock diagnosis as
// Run when the queue drains early.
func (k *Kernel) RunUntil(deadline Time) error {
	if len(k.lanes) == 0 {
		for k.queue.len() > 0 && k.queue.min().at <= deadline {
			if err := k.checkCancel(); err != nil {
				return k.abort(err)
			}
			k.runBatch(k.queue.min().at)
		}
		if k.queue.len() == 0 && k.live > 0 {
			return k.deadlockError()
		}
		return nil
	}
	if err := k.runSharded(deadline, true); err != nil {
		return k.abort(err)
	}
	if _, ok := k.minNext(); !ok && k.live > 0 {
		return k.deadlockError()
	}
	return nil
}

// runBatch advances the clock to at and dispatches, in sequence order,
// every event already queued for that instant. Draining the instant in
// one pass amortizes heap fix-ups: pops happen back to back while the
// root region is hot, and events the batch itself schedules (which carry
// higher sequence numbers, including same-instant wakeups) sift against
// the heap once instead of racing each dispatch. Exact (at, seq) order is
// preserved: batched events hold the smallest sequence numbers at this
// instant, and later arrivals are picked up by the next batch.
func (k *Kernel) runBatch(at Time) {
	batch := k.batch[:0]
	for k.queue.len() > 0 && k.queue.min().at == at {
		batch = append(batch, k.queue.pop())
	}
	k.now = at
	for i := range batch {
		k.processed++
		if k.observer != nil {
			k.observer(batch[i].at, batch[i].seq, 0)
		}
		if p := batch[i].proc; p != nil {
			k.dispatch(p)
		} else if fn := batch[i].fn; fn != nil {
			fn()
		}
		batch[i] = event{} // drop proc/fn references held by the scratch buffer
	}
	k.batch = batch[:0]
}

// trim releases oversized event storage once a run completes.
func (k *Kernel) trim() {
	if cap(k.queue.ev) > maxRetainedEvents {
		k.queue.ev = nil
	}
	if cap(k.batch) > maxRetainedEvents {
		k.batch = nil
	}
	for i := range k.laneQ {
		if cap(k.laneQ[i].ev) > maxRetainedEvents {
			k.laneQ[i].ev = nil
		}
	}
	if cap(k.merged) > maxRetainedEvents {
		k.merged = nil
	}
	for i := range k.wins {
		w := &k.wins[i]
		if cap(w.slice) > maxRetainedEvents {
			w.slice = nil
		}
		if cap(w.recs) > maxRetainedEvents {
			w.recs = nil
		}
		if cap(w.entries) > maxRetainedEvents {
			w.entries = nil
		}
		if cap(w.heap.ev) > maxRetainedEvents {
			w.heap.ev = nil
		}
		if cap(w.ordSeq) > maxRetainedEvents {
			w.ordSeq = nil
		}
	}
}

// dispatch hands control to p and waits for it to yield back.
func (k *Kernel) dispatch(p *Proc) {
	delete(k.blocked, p)
	p.resume <- struct{}{}
	<-k.parked
}

// wake schedules p to resume at the current time (used by synchronization
// primitives releasing a waiter).
func (k *Kernel) wake(p *Proc) {
	k.schedule(k.now, p, nil)
}

// Resume schedules a process parked with Proc.Suspend to continue at the
// current instant. From a shard-lane handler use Shard.Resume instead.
func (k *Kernel) Resume(p *Proc) {
	k.wake(p)
}
