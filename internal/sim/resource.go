package sim

import "fmt"

// Resource is a FIFO server with fixed capacity: up to Capacity processes
// hold it simultaneously; further acquirers queue in arrival order. It
// models contended servers such as a disk, a metadata service, or a file
// token.
//
// Resource collects utilization and queueing statistics for analysis.
type Resource struct {
	k        *Kernel
	name     string
	capacity int
	busy     int
	waiters  []*Proc

	// statistics
	acquisitions uint64
	totalQueue   Time // summed time spent waiting to acquire
	totalHold    Time // summed time between acquire and release
	maxQueueLen  int
	enqueueAt    map[*Proc]Time
	holdSince    map[*Proc]Time
}

// NewResource creates a resource with the given capacity (number of
// concurrent holders). Capacity must be >= 1.
func NewResource(k *Kernel, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{
		k:         k,
		name:      name,
		capacity:  capacity,
		enqueueAt: make(map[*Proc]Time),
		holdSince: make(map[*Proc]Time),
	}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// InUse returns the number of current holders.
func (r *Resource) InUse() int { return r.busy }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquire blocks p until a slot is free, FIFO with respect to other
// acquirers.
func (r *Resource) Acquire(p *Proc) {
	r.enqueueAt[p] = r.k.now
	if r.busy < r.capacity && len(r.waiters) == 0 {
		r.grant(p)
		return
	}
	r.waiters = append(r.waiters, p)
	if len(r.waiters) > r.maxQueueLen {
		r.maxQueueLen = len(r.waiters)
	}
	p.park("acquire " + r.name)
	// When we are resumed, release() has already granted us the slot.
}

// TryAcquire acquires the resource if a slot is immediately free and
// returns whether it did. It never blocks.
func (r *Resource) TryAcquire(p *Proc) bool {
	if r.busy < r.capacity && len(r.waiters) == 0 {
		r.enqueueAt[p] = r.k.now
		r.grant(p)
		return true
	}
	return false
}

// grant marks p as a holder and records statistics.
func (r *Resource) grant(p *Proc) {
	r.busy++
	r.acquisitions++
	r.totalQueue += r.k.now - r.enqueueAt[p]
	delete(r.enqueueAt, p)
	r.holdSince[p] = r.k.now
}

// Release frees the slot held by p, waking the longest-waiting acquirer,
// if any. Releasing a resource p does not hold panics.
func (r *Resource) Release(p *Proc) {
	since, ok := r.holdSince[p]
	if !ok {
		panic(fmt.Sprintf("sim: %s releasing %s it does not hold", p, r.name))
	}
	r.totalHold += r.k.now - since
	delete(r.holdSince, p)
	r.busy--
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.grant(next)
		r.k.wake(next)
	}
}

// Use acquires the resource, holds it for d of virtual time, and releases
// it. It is the common "request service" idiom.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Wait(d)
	r.Release(p)
}

// ResourceStats is a snapshot of a resource's accumulated statistics.
type ResourceStats struct {
	Name         string
	Acquisitions uint64
	TotalQueue   Time // total time spent by all processes waiting
	TotalHold    Time // total time slots were held
	MaxQueueLen  int
}

// Stats returns a snapshot of accumulated statistics.
func (r *Resource) Stats() ResourceStats {
	return ResourceStats{
		Name:         r.name,
		Acquisitions: r.acquisitions,
		TotalQueue:   r.totalQueue,
		TotalHold:    r.totalHold,
		MaxQueueLen:  r.maxQueueLen,
	}
}
