package sim

import "fmt"

// Resource is a FIFO server with fixed capacity: up to Capacity processes
// hold it simultaneously; further acquirers queue in arrival order. It
// models contended servers such as a disk, a metadata service, or a file
// token.
//
// Acquirers come in two shapes, freely mixed in one FIFO queue:
// process-shaped (Acquire/Release/Use, blocking a *Proc) and
// callback-shaped (UseFn), which takes the kernel's inline dispatch fast
// path — no goroutine round-trip per grant. Both shapes produce the same
// event sequence, virtual timing, and statistics.
//
// Resource collects utilization and queueing statistics for analysis.
type Resource struct {
	sh       *Shard
	k        *Kernel // == sh.k, cached to keep the hot path one deref deep
	name     string
	capacity int
	busy     int
	waiters  fifo[resWaiter]

	// statistics
	acquisitions uint64
	totalQueue   Time // summed time spent waiting to acquire
	totalHold    Time // summed time between acquire and release
	maxQueueLen  int
	enqueueAt    map[*Proc]Time
	holdSince    map[*Proc]Time
}

// resWaiter is one queued acquirer: a parked process, or a callback-shaped
// holder carrying its hold-pricing and continuation functions.
type resWaiter struct {
	p    *Proc
	hold func() Time
	then func()
	enq  Time
}

// NewResource creates a resource with the given capacity (number of
// concurrent holders) on the kernel's compute lane. Capacity must be
// >= 1.
func NewResource(k *Kernel, name string, capacity int) *Resource {
	return NewResourceOn(k.lane0, name, capacity)
}

// NewResourceOn creates a resource bound to a shard lane: its release
// events and callback-shaped grants are scheduled through sh, so on a
// sharded kernel they dispatch on that lane — possibly in parallel with
// other lanes. The resource's state must then only be touched from that
// lane (or from lane-0 events, which never overlap stages). Process
// wakeups always route to the compute lane.
func NewResourceOn(sh *Shard, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{
		sh:        sh,
		k:         sh.k,
		name:      name,
		capacity:  capacity,
		enqueueAt: make(map[*Proc]Time),
		holdSince: make(map[*Proc]Time),
	}
}

// Lane returns the shard handle the resource schedules through.
func (r *Resource) Lane() *Shard { return r.sh }

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// InUse returns the number of current holders.
func (r *Resource) InUse() int { return r.busy }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return r.waiters.len() }

// Acquire blocks p until a slot is free, FIFO with respect to other
// acquirers.
func (r *Resource) Acquire(p *Proc) {
	r.enqueueAt[p] = r.sh.Now()
	if r.busy < r.capacity && r.waiters.len() == 0 {
		r.grant(p)
		return
	}
	r.enqueue(resWaiter{p: p})
	p.park("acquire " + r.name)
	// When we are resumed, release() has already granted us the slot.
}

// TryAcquire acquires the resource if a slot is immediately free and
// returns whether it did. It never blocks.
func (r *Resource) TryAcquire(p *Proc) bool {
	if r.busy < r.capacity && r.waiters.len() == 0 {
		r.enqueueAt[p] = r.sh.Now()
		r.grant(p)
		return true
	}
	return false
}

// enqueue appends a waiter and tracks the queue-length high-water mark.
func (r *Resource) enqueue(w resWaiter) {
	r.waiters.push(w)
	if n := r.waiters.len(); n > r.maxQueueLen {
		r.maxQueueLen = n
	}
}

// grant marks p as a holder and records statistics.
func (r *Resource) grant(p *Proc) {
	r.busy++
	r.acquisitions++
	r.totalQueue += r.sh.Now() - r.enqueueAt[p]
	delete(r.enqueueAt, p)
	r.holdSince[p] = r.sh.Now()
}

// grantFn records the grant of a slot to a callback-shaped holder that
// enqueued at enq.
func (r *Resource) grantFn(enq Time) {
	r.busy++
	r.acquisitions++
	r.totalQueue += r.sh.Now() - enq
}

// UseFn acquires a slot as a callback-shaped holder — FIFO with every
// other acquirer — holds it, releases it, and then runs then (which may
// be nil). hold is invoked once, at grant time, to price the hold
// duration; state-dependent costs (e.g. disk head movement) are therefore
// computed in exactly the same order as with process-shaped Use.
//
// UseFn is the fast-path equivalent of Spawn + Acquire + Wait + Release:
// the whole interaction dispatches inline in the kernel loop with no
// goroutine round-trips.
func (r *Resource) UseFn(hold func() Time, then func()) {
	if r.busy < r.capacity && r.waiters.len() == 0 {
		r.grantFn(r.sh.Now())
		r.holdFn(hold, then)
		return
	}
	r.enqueue(resWaiter{hold: hold, then: then, enq: r.sh.Now()})
}

// holdFn runs at grant time for a callback-shaped holder: it prices the
// hold and schedules the release and continuation.
func (r *Resource) holdFn(hold func() Time, then func()) {
	since := r.sh.Now()
	d := hold()
	if d < 0 {
		panic("sim: negative hold on " + r.name)
	}
	r.sh.schedule(r.sh.Now()+d, nil, func() {
		r.totalHold += r.sh.Now() - since
		r.busy--
		r.wakeNext()
		if then != nil {
			then()
		}
	})
}

// Release frees the slot held by p, waking the longest-waiting acquirer,
// if any. Releasing a resource p does not hold panics.
func (r *Resource) Release(p *Proc) {
	since, ok := r.holdSince[p]
	if !ok {
		panic(fmt.Sprintf("sim: %s releasing %s it does not hold", p, r.name))
	}
	r.totalHold += r.sh.Now() - since
	delete(r.holdSince, p)
	r.busy--
	r.wakeNext()
}

// wakeNext grants the freed slot to the longest-waiting acquirer, if any.
// Process-shaped waiters are woken through the scheduler; callback-shaped
// waiters get an equivalent same-instant event so both shapes resume at
// identical (at, seq) positions.
func (r *Resource) wakeNext() {
	if r.waiters.len() == 0 {
		return
	}
	next := r.waiters.pop()
	if next.p != nil {
		r.grant(next.p)
		r.sh.Resume(next.p)
		return
	}
	r.grantFn(next.enq)
	r.sh.schedule(r.sh.Now(), nil, func() { r.holdFn(next.hold, next.then) })
}

// Use acquires the resource, holds it for d of virtual time, and releases
// it. It is the common "request service" idiom.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Wait(d)
	r.Release(p)
}

// ResourceStats is a snapshot of a resource's accumulated statistics.
type ResourceStats struct {
	Name         string
	Acquisitions uint64
	TotalQueue   Time // total time spent by all processes waiting
	TotalHold    Time // total time slots were held
	MaxQueueLen  int
}

// Stats returns a snapshot of accumulated statistics.
func (r *Resource) Stats() ResourceStats {
	return ResourceStats{
		Name:         r.name,
		Acquisitions: r.acquisitions,
		TotalQueue:   r.totalQueue,
		TotalHold:    r.totalHold,
		MaxQueueLen:  r.maxQueueLen,
	}
}
