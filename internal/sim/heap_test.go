package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// popAll drains the heap, returning events in pop order.
func popAll(h *eventHeap) []event {
	out := make([]event, 0, h.len())
	for h.len() > 0 {
		out = append(out, h.pop())
	}
	return out
}

// TestHeapOrderProperty pushes arbitrary (at, seq) schedules — pairs of
// uint16 so equal-timestamp collisions are common — and requires pops in
// exactly the order a stable sort oracle produces.
func TestHeapOrderProperty(t *testing.T) {
	prop := func(pairs []struct{ At, Seq uint16 }) bool {
		var h eventHeap
		oracle := make([]event, 0, len(pairs))
		for _, p := range pairs {
			e := event{at: Time(p.At), seq: uint64(p.Seq)}
			h.push(e)
			oracle = append(oracle, e)
		}
		sort.Slice(oracle, func(i, j int) bool { return less(&oracle[i], &oracle[j]) })
		got := popAll(&h)
		for i := range oracle {
			if got[i].at != oracle[i].at || got[i].seq != oracle[i].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestHeapInterleavedPushPop mixes pushes and pops the way the kernel
// does (pop a batch, schedule follow-ups) and checks the pop sequence is
// globally non-decreasing in (at, seq) at every step.
func TestHeapInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h eventHeap
	seq := uint64(0)
	push := func(at Time) {
		seq++
		h.push(event{at: at, seq: seq})
	}
	for i := 0; i < 64; i++ {
		push(Time(rng.Intn(8)))
	}
	var prev event
	popped := 0
	for h.len() > 0 {
		e := h.pop()
		if popped > 0 && less(&e, &prev) {
			t.Fatalf("pop %d: (%d,%d) after (%d,%d)", popped, e.at, e.seq, prev.at, prev.seq)
		}
		prev = e
		popped++
		// Model same-instant follow-up scheduling: new events at the
		// current or a later instant, never in the past.
		for rng.Intn(4) == 0 && popped < 5000 {
			push(e.at + Time(rng.Intn(3)))
		}
	}
	if popped < 64 {
		t.Fatalf("popped %d events, pushed at least 64", popped)
	}
}

// TestHeapEqualTimestampBatch is the dispatch-batching edge case: a large
// block of same-instant events must pop in exact seq order even when
// interleaved with earlier and later instants.
func TestHeapEqualTimestampBatch(t *testing.T) {
	var h eventHeap
	const batch = 1000
	// Push the batch shuffled so the heap has to restore seq order itself.
	perm := rand.New(rand.NewSource(7)).Perm(batch)
	for _, i := range perm {
		h.push(event{at: 5, seq: uint64(i)})
	}
	h.push(event{at: 9, seq: batch})
	h.push(event{at: 1, seq: batch + 1})

	if e := h.pop(); e.at != 1 {
		t.Fatalf("first pop at=%d, want 1", e.at)
	}
	for i := 0; i < batch; i++ {
		e := h.pop()
		if e.at != 5 || e.seq != uint64(i) {
			t.Fatalf("batch pop %d: (at=%d seq=%d)", i, e.at, e.seq)
		}
	}
	if e := h.pop(); e.at != 9 {
		t.Fatalf("last pop at=%d, want 9", e.at)
	}
	if h.len() != 0 {
		t.Fatalf("heap not drained: %d left", h.len())
	}
}
