package sim

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestCancelAbortsRun installs a context-backed cancellation check,
// cancels after a few dispatched batches, and requires Run to return the
// context error with every process unwound (their defers run, no live
// processes left).
func TestCancelAbortsRun(t *testing.T) {
	k := NewKernel()
	ctx, cancel := context.WithCancel(context.Background())
	k.SetCancel(ctx.Err)

	unwound := make([]string, 0, 3)
	batches := 0
	k.SetObserver(func(at Time, seq uint64, lane int) {
		batches++
		if batches == 10 {
			cancel()
		}
	})
	// Three processes: one ticking forever, one blocked on a mailbox that
	// never fills, one that finishes before the cancel.
	mb := NewMailbox(k, "never")
	k.Spawn("ticker", func(p *Proc) {
		defer func() { unwound = append(unwound, "ticker") }()
		for {
			p.Wait(time.Millisecond)
		}
	})
	k.Spawn("receiver", func(p *Proc) {
		defer func() { unwound = append(unwound, "receiver") }()
		mb.Recv(p)
	})
	k.Spawn("done-early", func(p *Proc) {
		p.Wait(time.Microsecond)
	})

	err := k.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run() = %v, want context.Canceled", err)
	}
	if k.LiveProcs() != 0 {
		t.Errorf("LiveProcs() = %d after abort, want 0", k.LiveProcs())
	}
	if len(unwound) != 2 {
		t.Errorf("unwound defers = %v, want ticker and receiver", unwound)
	}
}

// TestCancelBeforeRun cancels the context before Run starts: the first
// poll aborts, and processes that never ran still unwind.
func TestCancelBeforeRun(t *testing.T) {
	k := NewKernel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	k.SetCancel(ctx.Err)
	ran := false
	k.Spawn("never-runs", func(p *Proc) { ran = true })
	if err := k.Run(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run() = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("process body ran despite pre-cancelled context")
	}
	if k.LiveProcs() != 0 {
		t.Errorf("LiveProcs() = %d, want 0", k.LiveProcs())
	}
}

// TestCancelShardedRun aborts a sharded kernel between windows: lane
// timers stop rescheduling and the lane-0 process parked on a wait
// unwinds exactly like the single-threaded path.
func TestCancelShardedRun(t *testing.T) {
	const lookahead = 30 * time.Microsecond
	k := NewKernel()
	if err := k.ConfigureLanes(2, 0, lookahead); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	k.SetCancel(ctx.Err)
	var fired atomic.Int64
	k.SetObserver(func(at Time, seq uint64, lane int) {
		if fired.Add(1) == 16 {
			cancel() // observer may run on a window worker; cancel is thread-safe
		}
	})
	// Flusher-shaped self-rescheduling timers, one per I/O lane, that
	// never stop on their own.
	for i := 0; i < 2; i++ {
		sh := k.IOLane(i)
		var tick func()
		tick = func() { sh.After(7*time.Microsecond, tick) }
		sh.After(lookahead, tick)
	}
	k.Spawn("waiter", func(p *Proc) {
		for {
			p.Wait(5 * time.Microsecond)
		}
	})
	err := k.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sharded Run() = %v, want context.Canceled", err)
	}
	if k.LiveProcs() != 0 {
		t.Errorf("LiveProcs() = %d after sharded abort, want 0", k.LiveProcs())
	}
}

// TestNoCancelCheckUnchanged pins that a kernel without SetCancel runs to
// completion exactly as before (the poll is skipped entirely).
func TestNoCancelCheckUnchanged(t *testing.T) {
	k := NewKernel()
	n := 0
	k.Spawn("worker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Wait(time.Microsecond)
			n++
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("worker ran %d iterations, want 100", n)
	}
}
