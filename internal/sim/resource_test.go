package sim

import (
	"testing"
	"time"
)

func TestResourceSerializes(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "disk", 1)
	var finish []Time
	for i := 0; i < 4; i++ {
		k.Spawn("p", func(p *Proc) {
			r.Use(p, time.Second)
			finish = append(finish, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{1 * time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second}
	if len(finish) != len(want) {
		t.Fatalf("finish = %v", finish)
	}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceCapacityParallelism(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "array", 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		k.Spawn("p", func(p *Proc) {
			r.Use(p, time.Second)
			finish = append(finish, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Two at a time: finishes at 1,1,2,2.
	want := []Time{time.Second, time.Second, 2 * time.Second, 2 * time.Second}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "lock", 1)
	var order []int
	for i := 0; i < 6; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			p.Wait(Time(i) * time.Millisecond) // arrive in index order
			r.Acquire(p)
			order = append(order, i)
			p.Wait(10 * time.Millisecond)
			r.Release(p)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("service order %v, want FIFO", order)
		}
	}
}

func TestTryAcquire(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "lock", 1)
	var got []bool
	k.Spawn("a", func(p *Proc) {
		if !r.TryAcquire(p) {
			t.Error("first TryAcquire failed")
		}
		p.Wait(2 * time.Second)
		r.Release(p)
	})
	k.Spawn("b", func(p *Proc) {
		p.Wait(time.Second)
		got = append(got, r.TryAcquire(p)) // busy: false
		p.Wait(2 * time.Second)
		got = append(got, r.TryAcquire(p)) // free at t=3: true
		r.Release(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] || !got[1] {
		t.Fatalf("TryAcquire results = %v, want [false true]", got)
	}
}

func TestResourceStats(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "svc", 1)
	for i := 0; i < 3; i++ {
		k.Spawn("p", func(p *Proc) { r.Use(p, time.Second) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.Acquisitions != 3 {
		t.Fatalf("Acquisitions = %d, want 3", s.Acquisitions)
	}
	if s.TotalHold != 3*time.Second {
		t.Fatalf("TotalHold = %v, want 3s", s.TotalHold)
	}
	// Arrivals all at t=0; service at 0,1,2 → queue delays 0+1+2 = 3s.
	if s.TotalQueue != 3*time.Second {
		t.Fatalf("TotalQueue = %v, want 3s", s.TotalQueue)
	}
	if s.MaxQueueLen != 2 {
		t.Fatalf("MaxQueueLen = %d, want 2", s.MaxQueueLen)
	}
}

func TestReleaseWithoutHoldPanics(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "lock", 1)
	var panicked bool
	k.Spawn("p", func(p *Proc) {
		defer func() { panicked = recover() != nil }()
		r.Release(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("Release without hold did not panic")
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(k, "sync", 3)
	var times []Time
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			p.Wait(Time(i) * time.Second)
			b.Await(p)
			times = append(times, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, at := range times {
		if at != 2*time.Second {
			t.Fatalf("release times %v, want all 2s", times)
		}
	}
	if b.Epochs() != 1 {
		t.Fatalf("Epochs = %d, want 1", b.Epochs())
	}
	// Skew: procs 0 and 1 waited 2s and 1s.
	if b.WaitTotal() != 3*time.Second {
		t.Fatalf("WaitTotal = %v, want 3s", b.WaitTotal())
	}
}

func TestBarrierCyclic(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(k, "sync", 4)
	const rounds = 5
	counts := make([]int, rounds)
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				p.Wait(Time(i+1) * time.Millisecond)
				b.Await(p)
				counts[r]++
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for r, c := range counts {
		if c != 4 {
			t.Fatalf("round %d count = %d, want 4", r, c)
		}
	}
	if b.Epochs() != rounds {
		t.Fatalf("Epochs = %d, want %d", b.Epochs(), rounds)
	}
}

func TestBarrierOfOne(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(k, "solo", 1)
	var passed bool
	k.Spawn("p", func(p *Proc) {
		b.Await(p)
		passed = true
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !passed {
		t.Fatal("single-party barrier blocked")
	}
}

func TestMailboxFIFO(t *testing.T) {
	k := NewKernel()
	m := NewMailbox(k, "mb")
	var got []int
	k.Spawn("sender", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Wait(time.Millisecond)
			m.Send(i)
		}
	})
	k.Spawn("recv", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, m.Recv(p).(int))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("received %v, want ascending", got)
		}
	}
	if m.Sent() != 5 || m.Received() != 5 {
		t.Fatalf("sent/received = %d/%d", m.Sent(), m.Received())
	}
}

func TestMailboxSendAfterLatency(t *testing.T) {
	k := NewKernel()
	m := NewMailbox(k, "mb")
	var at Time
	k.Spawn("sender", func(p *Proc) {
		m.SendAfter(5*time.Second, "hello")
	})
	k.Spawn("recv", func(p *Proc) {
		if v := m.Recv(p); v != "hello" {
			t.Errorf("got %v", v)
		}
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5*time.Second {
		t.Fatalf("delivered at %v, want 5s", at)
	}
}

func TestMailboxTryRecv(t *testing.T) {
	k := NewKernel()
	m := NewMailbox(k, "mb")
	k.Spawn("p", func(p *Proc) {
		if _, ok := m.TryRecv(); ok {
			t.Error("TryRecv on empty mailbox returned ok")
		}
		m.Send(42)
		v, ok := m.TryRecv()
		if !ok || v.(int) != 42 {
			t.Errorf("TryRecv = %v %v", v, ok)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMailboxMultipleReceiversFIFO(t *testing.T) {
	k := NewKernel()
	m := NewMailbox(k, "mb")
	var by []int
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("recv", func(p *Proc) {
			p.Wait(Time(i) * time.Millisecond) // receivers queue in index order
			m.Recv(p)
			by = append(by, i)
		})
	}
	k.Spawn("sender", func(p *Proc) {
		p.Wait(10 * time.Millisecond)
		for i := 0; i < 3; i++ {
			m.Send(i)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range by {
		if v != i {
			t.Fatalf("delivery order %v, want FIFO by receiver arrival", by)
		}
	}
}
