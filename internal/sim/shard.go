package sim

import (
	"fmt"
	"sort"
	"sync"
)

// Conservative intra-run sharding with multi-instant sync windows.
//
// A sharded kernel partitions its event queue into lanes. Lane 0 is the
// dispatcher plane (client-side callbacks, mailboxes, barriers). Lanes
// 1..io are I/O logical processes (LPs) whose callback events touch only
// state confined to that lane — an I/O node's FIFO server, disk array,
// and cache. Lanes io+1..io+c are compute LPs: they partition process
// wakeups and compute-side staging events off the shared lane-0 heap, but
// their events always dispatch on the dispatcher goroutine (process
// bodies share the PFS client plane and the trace, so they can never run
// concurrently — see docs/DESIGN.md, "The compute/I-O LP boundary").
//
// Cross-LP interactions must traverse the mesh, whose minimum message
// latency — the lookahead passed to ConfigureShards — is strictly
// positive. Therefore a window of virtual time [W, W+L), with L bounded
// by the lookahead, is causally closed per I/O lane: no event one lane
// executes inside the window can affect another lane before the window
// ends. That is the classic conservative (Chandy-Misra style) safe
// window; earlier revisions specialized it to "one instant at a time",
// this kernel advances each I/O LP through the whole window between
// barriers.
//
// A window executes in two phases. Phase A: one worker per active I/O
// lane drains the lane's events with at < windowEnd in (at, seq) order
// under a lane-local virtual clock (Shard.Now), appending every side
// effect — schedules, process wakeups, deferred calls — to a per-lane
// effect log instead of touching the kernel. Events a handler schedules
// onto its own lane inside the window are executed in the same walk (a
// lane-local heap orders them); everything else is logged. Phase B: the
// dispatcher replays the per-lane execution records interleaved with the
// live lane-0 and compute-lane queues in exact global (at, seq) order,
// allocating sequence numbers for logged schedules at precisely the
// positions the single-threaded kernel would have allocated them, and
// dispatching processes, wakes, and deferred calls inline. The replayed
// run's event sequence — and hence its traces — is therefore
// bit-identical to the unsharded run by construction, for every lane
// count and window width.
//
// Subsystems that read state across lanes at an instant (the PFS
// sampler) register that instant's period with Kernel.FenceEvery; fence
// instants dispatch sequentially on the dispatcher, outside any window,
// so cross-lane reads observe exactly the state a sequential kernel
// would show.

// Entry kinds of the phase-A effect log.
const (
	entrySchedule = iota // allocate a seq and enqueue on entry.lane
	entryLocal           // bind a seq to a window-local event (consumed in phase A)
	entryCall            // dispatch a wake / run a deferred call inline
)

// stageEntry is one logged side effect of an event executed in phase A.
type stageEntry struct {
	at   Time
	lane int32
	ord  int32
	kind uint8
	proc *Proc
	fn   func()
}

// localEv is an event created and consumed inside the same window on the
// same lane. It has no sequence number yet — phase B assigns one when it
// replays the creator's log — so phase A orders it by creation order,
// which provably matches the eventual seq order.
type localEv struct {
	at  Time
	ord int32
	fn  func()
}

// localHeap is a min-heap of window-local events ordered by (at, ord).
type localHeap struct {
	ev []localEv
}

func localLess(a, b *localEv) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.ord < b.ord
}

func (h *localHeap) len() int      { return len(h.ev) }
func (h *localHeap) min() *localEv { return &h.ev[0] }
func (h *localHeap) push(e localEv) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) >> 1
		if !localLess(&e, &h.ev[parent]) {
			break
		}
		h.ev[i] = h.ev[parent]
		i = parent
	}
	h.ev[i] = e
}

func (h *localHeap) pop() localEv {
	ev := h.ev
	top := ev[0]
	n := len(ev) - 1
	last := ev[n]
	ev[n] = localEv{}
	h.ev = ev[:n]
	i := 0
	for {
		c := i<<1 + 1
		if c >= n {
			break
		}
		if c+1 < n && localLess(&ev[c+1], &ev[c]) {
			c++
		}
		if !localLess(&ev[c], &last) {
			break
		}
		ev[i] = ev[c]
		i = c
	}
	if n > 0 {
		ev[i] = last
	}
	return top
}

// laneRec is one event executed by a phase-A worker, in execution order.
// Pre-existing events carry their seq; window-created events carry their
// creation ord instead and resolve the seq their creator's replayed log
// entry bound (laneWin.ordSeq).
type laneRec struct {
	at       Time
	seq      uint64
	ord      int32
	entEnd   int32 // end offset of this record's slice of laneWin.entries
	panicked bool
	pval     any
}

// laneWin is the phase-A execution state and phase-B replay cursor of one
// I/O lane for one window. Reused across windows.
type laneWin struct {
	end     Time
	slice   []event // the lane's pre-existing in-window events, (at, seq) order
	heap    localHeap
	ord     int32
	recs    []laneRec
	entries []stageEntry
	ordSeq  []uint64
	ri      int   // phase-B record cursor
	ei      int32 // phase-B entries cursor
}

func (w *laneWin) reset(end Time) {
	w.end = end
	w.slice = w.slice[:0]
	w.recs = w.recs[:0]
	w.entries = w.entries[:0]
	w.ord = 0
	w.ri, w.ei = 0, 0
}

// clear drops proc/fn references once a window is fully replayed.
func (w *laneWin) clear() {
	for i := range w.slice {
		w.slice[i] = event{}
	}
	for i := range w.recs {
		w.recs[i].pval = nil
	}
	// entries are zeroed as they replay.
	w.slice = w.slice[:0]
	w.recs = w.recs[:0]
	w.entries = w.entries[:0]
}

// Shard is the scheduling handle of one lane. Lane-confined subsystems
// (the PFS I/O-node path, the cache flusher) route their timers and
// continuations through their Shard so the kernel can tag the resulting
// events with the lane and, during phase A of a window, defer them into
// the lane's effect log. On an unsharded kernel every handle is the
// lane-0 handle and all methods degenerate to the direct kernel calls.
type Shard struct {
	k    *Kernel
	lane int32

	// win/now are the phase-A state: win routes effects into the lane's
	// log while its worker runs (nil in direct mode), now is the
	// lane-local virtual clock. Only the lane's worker touches these.
	win *laneWin
	now Time
}

// Kernel returns the kernel this shard belongs to.
func (sh *Shard) Kernel() *Kernel { return sh.k }

// Lane returns the lane index (0 = dispatcher lane).
func (sh *Shard) Lane() int { return int(sh.lane) }

// Now returns the lane's current virtual time: the lane-local clock
// while the lane executes inside a sync window, the kernel clock
// otherwise. Lane-confined subsystems must price time through their
// Shard (or a Resource bound to it), never through Kernel.Now.
func (sh *Shard) Now() Time {
	if sh.win != nil {
		return sh.now
	}
	return sh.k.now
}

// After schedules fn on this lane at Now()+d.
func (sh *Shard) After(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	sh.schedule(sh.Now()+d, nil, fn)
}

// Resume schedules parked process p to continue at the current instant.
// It is the routed equivalent of the wakeup a synchronization primitive
// issues, safe to call from a lane handler.
func (sh *Shard) Resume(p *Proc) {
	sh.schedule(sh.Now(), p, nil)
}

// Wake resumes a process parked with Proc.Suspend inline, within the
// current event's dispatch position: immediately in direct mode, or at
// replay time when called from a window worker. Unlike Resume it adds no
// event — the process continuation nests inside the waking event exactly
// as if the process itself had been executing it, which is what keeps a
// callback-shaped completion bit-identical to the process-shaped code it
// replaces. Both modes are allocation-free.
func (sh *Shard) Wake(p *Proc) {
	if w := sh.win; w != nil {
		w.entries = append(w.entries, stageEntry{kind: entryCall, proc: p})
		return
	}
	sh.k.dispatch(p)
}

// Call runs fn on the dispatcher goroutine: immediately when the lane is
// in direct mode, or at replay time — in this event's dispatch position —
// when the lane is executing inside a window. Cross-lane continuations
// (mailbox sends, bookkeeping on shared state) must go through Call so
// they never run concurrently with other lanes.
func (sh *Shard) Call(fn func()) {
	if w := sh.win; w != nil {
		w.entries = append(w.entries, stageEntry{kind: entryCall, fn: fn})
		return
	}
	fn()
}

// Deferred returns a callback equivalent to func() { sh.Call(fn) }. On an
// unsharded kernel it returns fn itself, so hot paths that hand a
// completion to a lane-confined subsystem (the PFS striped fan-out) pay
// no wrapper allocation unless sharding is actually on.
func (sh *Shard) Deferred(fn func()) func() {
	if len(sh.k.lanes) == 0 {
		return fn
	}
	return func() { sh.Call(fn) }
}

// schedule enqueues an event on this lane (the owning process's lane for
// process wakeups — processes dispatch on the sequential plane), logging
// it when the lane is executing inside a window. The lane-0 handle takes
// the kernel's direct path unconditionally, which keeps the unsharded
// kernel's schedule cost identical to the pre-sharding kernel.
func (sh *Shard) schedule(at Time, p *Proc, fn func()) {
	if sh.lane == 0 {
		sh.k.schedule(at, p, fn)
		return
	}
	w := sh.win
	if w == nil {
		lane := sh.lane
		if p != nil {
			lane = p.lane
		}
		sh.k.scheduleLane(lane, at, p, fn)
		return
	}
	// Phase A: log the effect. sh.now is the lane-local clock.
	if at < sh.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at=%v now=%v", at, sh.now))
	}
	if p != nil {
		w.entries = append(w.entries, stageEntry{kind: entrySchedule, at: at, lane: p.lane, proc: p})
		return
	}
	if at < w.end {
		// Window-local: executed later in this same phase-A walk; phase B
		// binds its seq when it replays this log entry.
		ord := w.ord
		w.ord++
		w.heap.push(localEv{at: at, ord: ord, fn: fn})
		w.entries = append(w.entries, stageEntry{kind: entryLocal, at: at, ord: ord})
		return
	}
	w.entries = append(w.entries, stageEntry{kind: entrySchedule, at: at, lane: sh.lane, fn: fn})
}

// defaultStageMin is the smallest pending I/O-lane backlog worth fanning
// a window out to worker goroutines; below it the synchronization
// overhead exceeds the win and the window dispatches inline.
const defaultStageMin = 8

// DefaultStageMin is the fan-out threshold newly sharded kernels adopt
// (see SetStageMin). Determinism and race tests lower it to force the
// parallel path onto workloads whose windows would otherwise dispatch
// inline; results must not depend on it.
var DefaultStageMin = defaultStageMin

// ConfigureShards partitions the kernel into lanes I/O lanes (plus the
// implicit dispatcher lane 0) synchronized conservatively with the given
// lookahead — the minimum virtual latency of any cross-lane interaction,
// typically mesh.MinLatency(). It must be called on a fresh kernel,
// before any event is scheduled. lanes < 2 leaves the kernel unsharded;
// lookahead must be positive for any actual sharding, since a zero
// lookahead would allow same-window cross-lane causality and break the
// safe-window argument.
func (k *Kernel) ConfigureShards(lanes int, lookahead Time) error {
	return k.ConfigureLanes(lanes, 0, lookahead)
}

// ConfigureLanes is ConfigureShards with an explicit lane partition:
// ioLanes I/O LPs that execute windows in parallel, plus computeLanes
// compute LPs that partition process wakeups and compute-side staging
// events off the shared lane-0 heap (their events always dispatch
// sequentially; see the package comment). ioLanes+computeLanes < 2
// leaves the kernel unsharded.
func (k *Kernel) ConfigureLanes(ioLanes, computeLanes int, lookahead Time) error {
	if ioLanes < 0 || computeLanes < 0 {
		return fmt.Errorf("sim: negative lane count")
	}
	total := ioLanes + computeLanes
	if total < 2 {
		return nil
	}
	if ioLanes < 1 {
		return fmt.Errorf("sim: sharding requires at least one I/O lane")
	}
	if lookahead <= 0 {
		return fmt.Errorf("sim: sharding requires positive lookahead, got %v", lookahead)
	}
	if k.seq != 0 || k.processed != 0 {
		return fmt.Errorf("sim: ConfigureShards called after events were scheduled")
	}
	if k.lanes != nil {
		return fmt.Errorf("sim: shards already configured")
	}
	k.lookahead = lookahead
	k.window = lookahead
	k.ioLanes = ioLanes
	k.lanes = make([]*Shard, total)
	k.laneQ = make([]eventHeap, total)
	for i := range k.lanes {
		k.lanes[i] = &Shard{k: k, lane: int32(i + 1)}
	}
	k.stageMin = DefaultStageMin
	return nil
}

// ShardCount returns the total number of shard lanes (0 when unsharded).
func (k *Kernel) ShardCount() int { return len(k.lanes) }

// IOLaneCount returns the number of I/O lanes (0 when unsharded).
func (k *Kernel) IOLaneCount() int {
	if len(k.lanes) == 0 {
		return 0
	}
	return k.ioLanes
}

// ComputeLaneCount returns the number of compute lanes.
func (k *Kernel) ComputeLaneCount() int {
	if len(k.lanes) == 0 {
		return 0
	}
	return len(k.lanes) - k.ioLanes
}

// Lookahead returns the conservative lookahead (0 when unsharded).
func (k *Kernel) Lookahead() Time { return k.lookahead }

// Window returns the sync-window width (0 when unsharded).
func (k *Kernel) Window() Time {
	if len(k.lanes) == 0 {
		return 0
	}
	return k.window
}

// SetWindow overrides the sync-window width. Widths above the lookahead
// are clamped to it — the safe-window argument does not hold past the
// lookahead — and w <= 0 restores the default (the lookahead itself).
// Results must not depend on the width; tests randomize it.
func (k *Kernel) SetWindow(w Time) {
	if len(k.lanes) == 0 {
		return
	}
	if w <= 0 || w > k.lookahead {
		w = k.lookahead
	}
	k.window = w
}

// Lane returns the scheduling handle for shard lane i (mod the total
// lane count). On an unsharded kernel every index maps to lane 0, so
// lane-confined subsystems can bind a handle unconditionally.
func (k *Kernel) Lane(i int) *Shard {
	if len(k.lanes) == 0 {
		return k.lane0
	}
	return k.lanes[i%len(k.lanes)]
}

// IOLane returns the handle for I/O lane i (mod the I/O lane count), the
// lane-0 handle when unsharded.
func (k *Kernel) IOLane(i int) *Shard {
	if len(k.lanes) == 0 || k.ioLanes == 0 {
		return k.lane0
	}
	return k.lanes[i%k.ioLanes]
}

// ComputeLane returns the compute-LP handle for compute node i
// (round-robin over the compute lanes), or the lane-0 handle when the
// kernel has no compute lanes. Events scheduled through it dispatch
// sequentially, but queue on the lane's own heap.
func (k *Kernel) ComputeLane(i int) *Shard {
	n := len(k.lanes) - k.ioLanes
	if n <= 0 {
		return k.lane0
	}
	return k.lanes[k.ioLanes+i%n]
}

// isIOLane reports whether lane (1-based) is a phase-A I/O lane.
func (k *Kernel) isIOLane(lane int32) bool {
	return lane >= 1 && int(lane) <= k.ioLanes
}

// FenceEvery registers a fence period: every multiple of d dispatches as
// a sequential instant outside any sync window, so handlers running
// there (the PFS sampler) may read state across lanes and observe
// exactly what a sequential kernel would show. Periods are deduplicated;
// d must be positive.
func (k *Kernel) FenceEvery(d Time) {
	if d <= 0 {
		panic("sim: fence period must be positive")
	}
	for _, p := range k.fencePeriods {
		if p == d {
			return
		}
	}
	k.fencePeriods = append(k.fencePeriods, d)
}

// isFence reports whether t is a fence instant.
func (k *Kernel) isFence(t Time) bool {
	for _, p := range k.fencePeriods {
		if t%p == 0 {
			return true
		}
	}
	return false
}

// nextFence returns the earliest fence instant strictly after t.
func (k *Kernel) nextFence(t Time) (Time, bool) {
	var next Time
	ok := false
	for _, p := range k.fencePeriods {
		f := (t/p + 1) * p
		if !ok || f < next {
			next, ok = f, true
		}
	}
	return next, ok
}

// SetStageMin overrides the minimum pending I/O-lane backlog that fans a
// window out to worker goroutines. Tests force it to 2 to exercise the
// parallel path on small workloads; 0 or negative restores the default.
func (k *Kernel) SetStageMin(n int) {
	if n <= 0 {
		n = defaultStageMin
	}
	k.stageMin = n
}

// SetObserver installs a hook called for every dispatched event, in
// dispatch order, with its (at, seq, lane). Property tests use it to
// compare a sharded run's dispatch sequence against the single-threaded
// oracle. A nil fn removes the hook.
func (k *Kernel) SetObserver(fn func(at Time, seq uint64, lane int)) {
	k.observer = fn
}

// laneEvent is an event tagged with the lane whose queue it was popped
// from — only the sequential merge path materializes these; queued
// events stay five words.
type laneEvent struct {
	event
	lp int32
}

// scheduleLane enqueues an event on the given lane. Process wakeups are
// forced onto the owning process's lane: processes run under the
// dispatcher's handoff protocol and never inside a phase-A worker.
func (k *Kernel) scheduleLane(lane int32, at Time, p *Proc, fn func()) {
	if p != nil {
		lane = p.lane
	}
	if lane == 0 {
		k.schedule(at, p, fn)
		return
	}
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at=%v now=%v", at, k.now))
	}
	if k.inStage {
		panic("sim: unrouted schedule from inside a window worker (use the lane's Shard handle)")
	}
	if k.replayEnd > 0 && at < k.replayEnd && k.isIOLane(lane) {
		panic(fmt.Sprintf("sim: cross-LP schedule lands inside the open sync window: at=%v window end=%v lane=%d (delay must be >= the window width; route zero-delay staging through a compute lane)", at, k.replayEnd, lane))
	}
	k.seq++
	k.laneQ[lane-1].push(event{at: at, seq: k.seq, proc: p, fn: fn})
}

// minNext returns the earliest pending timestamp across all lanes.
func (k *Kernel) minNext() (Time, bool) {
	var at Time
	ok := false
	if k.queue.len() > 0 {
		at, ok = k.queue.min().at, true
	}
	for i := range k.laneQ {
		if k.laneQ[i].len() > 0 && (!ok || k.laneQ[i].min().at < at) {
			at, ok = k.laneQ[i].min().at, true
		}
	}
	return at, ok
}

// runSharded is the sharded main loop: fence instants dispatch
// sequentially, everything else advances window by window. When bounded,
// events after deadline stay queued. A firing cancellation check stops
// the loop between windows; the caller aborts.
func (k *Kernel) runSharded(deadline Time, bounded bool) error {
	for {
		if err := k.checkCancel(); err != nil {
			return err
		}
		at, ok := k.minNext()
		if !ok || (bounded && at > deadline) {
			break
		}
		if len(k.fencePeriods) > 0 && k.isFence(at) {
			k.runInstantSeq(at)
			continue
		}
		end := at + k.window
		if f, ok2 := k.nextFence(at); ok2 && f < end {
			end = f
		}
		if bounded && deadline+1 < end {
			end = deadline + 1
		}
		k.runWindow(at, end)
	}
	return nil
}

// runWindow dispatches every event with timestamp in [at, end). Windows
// with fewer than two active I/O lanes, or a pending I/O backlog below
// stageMin, dispatch inline instant by instant — identical semantics, no
// synchronization; otherwise the window fans out (runWindowParallel).
func (k *Kernel) runWindow(at, end Time) {
	active, pend := 0, 0
	for i := 0; i < k.ioLanes; i++ {
		q := &k.laneQ[i]
		if q.len() > 0 {
			pend += q.len()
			if q.min().at < end {
				active++
			}
		}
	}
	if active < 2 || pend < k.stageMin {
		for {
			t, ok := k.minNext()
			if !ok || t >= end {
				return
			}
			k.runInstantSeq(t)
		}
	}
	k.runWindowParallel(end)
}

// runInstantSeq advances the clock to at and dispatches, in global
// (at, seq) order, every event queued for that instant across all lanes
// — including events the instant itself schedules. This is the
// sequential dispatch path: fence instants and inline windows use it,
// and it is trivially equivalent to the unsharded kernel.
func (k *Kernel) runInstantSeq(at Time) {
	k.now = at
	for {
		m := k.merged[:0]
		sources := 0
		if k.queue.len() > 0 && k.queue.min().at == at {
			sources++
			for k.queue.len() > 0 && k.queue.min().at == at {
				m = append(m, laneEvent{event: k.queue.pop()})
			}
		}
		for i := range k.laneQ {
			if k.laneQ[i].len() > 0 && k.laneQ[i].min().at == at {
				sources++
				for k.laneQ[i].len() > 0 && k.laneQ[i].min().at == at {
					m = append(m, laneEvent{event: k.laneQ[i].pop(), lp: int32(i + 1)})
				}
			}
		}
		if len(m) == 0 {
			k.merged = m
			return
		}
		if sources > 1 {
			// Per-lane pops are already seq-sorted; restore global order.
			sort.Slice(m, func(i, j int) bool { return m[i].seq < m[j].seq })
		}
		for i := range m {
			k.processed++
			if k.observer != nil {
				k.observer(m[i].at, m[i].seq, int(m[i].lp))
			}
			if p := m[i].proc; p != nil {
				k.dispatch(p)
			} else if fn := m[i].fn; fn != nil {
				fn()
			}
			m[i] = laneEvent{}
		}
		k.merged = m[:0]
	}
}

// runWindowParallel executes one sync window: phase A fans the active
// I/O lanes out to workers, phase B replays their effect logs merged
// with the live sequential-plane queues in exact (at, seq) order.
func (k *Kernel) runWindowParallel(end Time) {
	if cap(k.wins) < k.ioLanes {
		k.wins = make([]laneWin, k.ioLanes)
	}
	wins := k.wins[:k.ioLanes]
	for i := 0; i < k.ioLanes; i++ {
		w := &wins[i]
		w.reset(end)
		q := &k.laneQ[i]
		for q.len() > 0 && q.min().at < end {
			w.slice = append(w.slice, q.pop())
		}
	}

	// Phase A: eager lane-local execution with logged effects.
	k.inStage = true
	var wg sync.WaitGroup
	for i := 0; i < k.ioLanes; i++ {
		if len(wins[i].slice) == 0 {
			continue
		}
		sh := k.lanes[i]
		w := &wins[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh.runPhaseA(w)
		}()
	}
	wg.Wait()
	k.inStage = false

	// Phase B: deterministic replay.
	k.replayEnd = end
	k.replayWindow(end, wins)
	k.replayEnd = 0
	for i := range wins {
		wins[i].clear()
	}
}

// runPhaseA drains one lane's window slice — interleaved with the
// window-local events it creates — in the lane's (at, seq | creation)
// order, recording execution and logging effects.
func (sh *Shard) runPhaseA(w *laneWin) {
	sh.win = w
	si := 0
	for {
		useHeap := false
		var at Time
		have := false
		if si < len(w.slice) {
			at, have = w.slice[si].at, true
		}
		if w.heap.len() > 0 {
			if h := w.heap.min(); !have || h.at < at {
				at, useHeap, have = h.at, true, true
			}
		}
		if !have {
			break
		}
		var fn func()
		var rec laneRec
		if useHeap {
			it := w.heap.pop()
			fn = it.fn
			rec = laneRec{at: it.at, ord: it.ord}
		} else {
			ev := &w.slice[si]
			si++
			if ev.proc != nil {
				panic("sim: process event queued on an I/O lane")
			}
			fn = ev.fn
			rec = laneRec{at: ev.at, seq: ev.seq}
		}
		w.recs = append(w.recs, rec)
		cur := len(w.recs) - 1
		sh.now = rec.at
		func() {
			defer func() {
				if v := recover(); v != nil {
					w.recs[cur].panicked = true
					w.recs[cur].pval = v
				}
			}()
			if fn != nil {
				fn()
			}
		}()
		w.recs[cur].entEnd = int32(len(w.entries))
	}
	sh.win = nil
}

// replayWindow merges the phase-A execution records with the live
// sequential-plane queues (lane 0 and the compute lanes) in global
// (at, seq) order, firing the observer, counting events, allocating
// sequence numbers for logged schedules, and dispatching processes,
// wakes, and deferred calls inline. A record that panicked in phase A
// re-panics at its dispatch position — the failure the sequential kernel
// would have hit first.
func (k *Kernel) replayWindow(end Time, wins []laneWin) {
	for i := range wins {
		w := &wins[i]
		if n := int(w.ord); n > 0 && cap(w.ordSeq) < n {
			w.ordSeq = make([]uint64, n)
		}
	}
	for {
		var bestAt Time
		var bestSeq uint64
		bestQ, bestRec := -1, -1
		found := false
		if k.queue.len() > 0 && k.queue.min().at < end {
			ev := k.queue.min()
			bestAt, bestSeq, bestQ, found = ev.at, ev.seq, 0, true
		}
		for j := k.ioLanes; j < len(k.laneQ); j++ {
			q := &k.laneQ[j]
			if q.len() == 0 {
				continue
			}
			ev := q.min()
			if ev.at >= end {
				continue
			}
			if !found || ev.at < bestAt || (ev.at == bestAt && ev.seq < bestSeq) {
				bestAt, bestSeq, bestQ, bestRec, found = ev.at, ev.seq, j+1, -1, true
			}
		}
		for li := range wins {
			w := &wins[li]
			if w.ri >= len(w.recs) {
				continue
			}
			r := &w.recs[w.ri]
			seq := r.seq
			if seq == 0 {
				seq = w.ordSeq[:cap(w.ordSeq)][r.ord]
			}
			if !found || r.at < bestAt || (r.at == bestAt && seq < bestSeq) {
				bestAt, bestSeq, bestQ, bestRec, found = r.at, seq, -1, li, true
			}
		}
		if !found {
			return
		}
		k.now = bestAt
		if bestRec < 0 {
			var ev event
			if bestQ == 0 {
				ev = k.queue.pop()
			} else {
				ev = k.laneQ[bestQ-1].pop()
			}
			k.processed++
			if k.observer != nil {
				k.observer(ev.at, ev.seq, bestQ)
			}
			if ev.proc != nil {
				k.dispatch(ev.proc)
			} else if ev.fn != nil {
				ev.fn()
			}
			continue
		}
		w := &wins[bestRec]
		r := &w.recs[w.ri]
		w.ri++
		k.processed++
		if k.observer != nil {
			k.observer(r.at, bestSeq, bestRec+1)
		}
		if r.panicked {
			panic(r.pval)
		}
		ordSeq := w.ordSeq[:cap(w.ordSeq)]
		for ; w.ei < r.entEnd; w.ei++ {
			e := &w.entries[w.ei]
			switch e.kind {
			case entryCall:
				if e.proc != nil {
					k.dispatch(e.proc)
				} else {
					e.fn()
				}
			case entryLocal:
				k.seq++
				ordSeq[e.ord] = k.seq
			default: // entrySchedule
				k.seq++
				if e.lane != 0 && e.at < end && k.isIOLane(e.lane) {
					panic(fmt.Sprintf("sim: cross-LP schedule lands inside the open sync window: at=%v window end=%v lane=%d", e.at, end, e.lane))
				}
				ev := event{at: e.at, seq: k.seq, proc: e.proc, fn: e.fn}
				if e.lane == 0 {
					k.queue.push(ev)
				} else {
					k.laneQ[e.lane-1].push(ev)
				}
			}
			*e = stageEntry{}
		}
	}
}
