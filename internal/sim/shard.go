package sim

import (
	"fmt"
	"sort"
	"sync"
)

// Conservative intra-run sharding.
//
// A sharded kernel partitions its event queue into lanes: lane 0 is the
// compute-side logical process (all process resumptions and client-side
// callbacks), lanes 1..n belong to shard LPs whose callback events touch
// only state confined to that lane (an I/O node's FIFO server, disk array,
// and cache). Cross-lane interactions must traverse the mesh, whose
// minimum message latency — the lookahead passed to ConfigureShards — is
// strictly positive; therefore every event queued for one instant was
// scheduled at an earlier instant, and shard-lane events of a single
// instant are causally closed: none can affect another lane at the same
// instant. That is the classic conservative (Chandy-Misra style) safe
// window, specialized to "one instant at a time".
//
// Within an instant the kernel merges the per-lane queues in global
// (at, seq) order and walks the merged batch: lane-0 events dispatch
// sequentially exactly as in the unsharded kernel, while maximal runs of
// shard-lane events form a stage that executes in parallel — one worker
// per lane, events of one lane in seq order. While a stage runs, every
// side effect a handler produces (schedule, After, proc wakeup, deferred
// Call) is appended to a per-event buffer instead of reaching the kernel;
// after the stage joins, the buffers are committed in the events'
// dispatch order. Sequence numbers are therefore allocated in exactly the
// order the single-threaded kernel would allocate them, which makes the
// sharded run's event sequence — and hence its traces — bit-identical to
// the unsharded run by construction, for every lane count.
//
// Handlers running inside a stage must confine themselves to their lane's
// state; effects on other lanes go through Shard.Call, which runs the
// closure at commit time on the dispatcher goroutine. Unrouted access to
// the kernel (Kernel.After, Spawn, mailbox sends) from a stage worker
// panics via the inStage guard.

// stageEntry is one deferred effect captured while a shard lane executes
// inside a parallel stage: a schedule (at, lane, proc/fn) or a deferred
// cross-lane call.
type stageEntry struct {
	at   Time
	lane int32
	proc *Proc
	fn   func()
	call bool
}

// stageBuf collects the deferred effects of one event dispatched in a
// parallel stage.
type stageBuf struct {
	entries []stageEntry
}

// stagePanic records a panic raised by a stage worker, tagged with the
// batch index of the event that raised it so re-panics are deterministic.
type stagePanic struct {
	idx int
	val any
}

// Shard is the scheduling handle of one lane. Lane-confined subsystems
// (the PFS I/O-node path, the cache flusher) route their timers and
// continuations through their Shard so the kernel can tag the resulting
// events with the lane and, during a parallel stage, defer them into the
// running event's buffer. On an unsharded kernel every handle is the
// lane-0 handle and all methods degenerate to the direct kernel calls.
type Shard struct {
	k    *Kernel
	lane int32

	// bufs/cur route effects into per-event buffers while this lane runs
	// inside a parallel stage; bufs is nil in direct mode. Only the
	// lane's stage worker touches these.
	bufs []stageBuf
	cur  int
}

// Kernel returns the kernel this shard belongs to.
func (sh *Shard) Kernel() *Kernel { return sh.k }

// Lane returns the lane index (0 = compute lane).
func (sh *Shard) Lane() int { return int(sh.lane) }

// Now returns the current virtual time.
func (sh *Shard) Now() Time { return sh.k.now }

// After schedules fn on this lane at Now()+d.
func (sh *Shard) After(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	sh.schedule(sh.k.now+d, nil, fn)
}

// Resume schedules parked process p to continue at the current instant.
// It is the routed equivalent of the wakeup a synchronization primitive
// issues, safe to call from a stage handler.
func (sh *Shard) Resume(p *Proc) {
	sh.schedule(sh.k.now, p, nil)
}

// Wake resumes a process parked with Proc.Suspend inline, within the
// current event's dispatch position: immediately in direct mode, or at
// commit time when called from a stage worker. Unlike Resume it adds no
// event — the process continuation nests inside the waking event exactly
// as if the process itself had been executing it, which is what keeps a
// callback-shaped completion bit-identical to the process-shaped code it
// replaces. Both modes are allocation-free.
func (sh *Shard) Wake(p *Proc) {
	if sh.bufs == nil {
		sh.k.dispatch(p)
		return
	}
	b := &sh.bufs[sh.cur]
	b.entries = append(b.entries, stageEntry{proc: p, call: true})
}

// Call runs fn on the dispatcher goroutine: immediately when the lane is
// in direct mode, or at commit time — in this event's dispatch position —
// when the lane is executing inside a parallel stage. Cross-lane
// continuations (mailbox sends, bookkeeping on shared state) must go
// through Call so they never run concurrently with other lanes.
func (sh *Shard) Call(fn func()) {
	if sh.bufs == nil {
		fn()
		return
	}
	b := &sh.bufs[sh.cur]
	b.entries = append(b.entries, stageEntry{fn: fn, call: true})
}

// Deferred returns a callback equivalent to func() { sh.Call(fn) }. On an
// unsharded kernel it returns fn itself, so hot paths that hand a
// completion to a lane-confined subsystem (the PFS striped fan-out) pay
// no wrapper allocation unless sharding is actually on.
func (sh *Shard) Deferred(fn func()) func() {
	if len(sh.k.lanes) == 0 {
		return fn
	}
	return func() { sh.Call(fn) }
}

// schedule enqueues an event on this lane (lane 0 for process wakeups —
// processes always dispatch on the compute lane), deferring into the
// stage buffer when a stage is running. The compute-lane handle takes
// the kernel's direct path unconditionally: stages execute shard lanes
// only, so lane 0 never defers — this keeps the unsharded kernel's
// schedule cost identical to the pre-sharding kernel.
func (sh *Shard) schedule(at Time, p *Proc, fn func()) {
	if sh.lane == 0 {
		sh.k.schedule(at, p, fn)
		return
	}
	lane := sh.lane
	if p != nil {
		lane = 0
	}
	if sh.bufs == nil {
		sh.k.scheduleLane(lane, at, p, fn)
		return
	}
	if at < sh.k.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at=%v now=%v", at, sh.k.now))
	}
	b := &sh.bufs[sh.cur]
	b.entries = append(b.entries, stageEntry{at: at, lane: lane, proc: p, fn: fn})
}

// defaultStageMin is the smallest multi-lane run worth fanning out to
// worker goroutines; below it the synchronization overhead exceeds the
// win and the run dispatches inline.
const defaultStageMin = 8

// DefaultStageMin is the stage-length threshold newly sharded kernels
// adopt (see SetStageMin). Determinism and race tests lower it to force
// the parallel path onto workloads whose instants would otherwise
// dispatch inline; results must not depend on it.
var DefaultStageMin = defaultStageMin

// ConfigureShards partitions the kernel into lanes shard lanes (plus the
// implicit compute lane 0) synchronized conservatively with the given
// lookahead — the minimum virtual latency of any cross-lane interaction,
// typically mesh.MinLatency(). It must be called on a fresh kernel,
// before any event is scheduled. lanes < 2 leaves the kernel unsharded;
// lookahead must be positive for any actual sharding, since a zero
// lookahead would allow same-instant cross-lane causality and break the
// safe-window argument.
func (k *Kernel) ConfigureShards(lanes int, lookahead Time) error {
	if lanes < 2 {
		return nil
	}
	if lookahead <= 0 {
		return fmt.Errorf("sim: sharding requires positive lookahead, got %v", lookahead)
	}
	if k.seq != 0 || k.processed != 0 {
		return fmt.Errorf("sim: ConfigureShards called after events were scheduled")
	}
	if k.lanes != nil {
		return fmt.Errorf("sim: shards already configured")
	}
	k.lookahead = lookahead
	k.lanes = make([]*Shard, lanes)
	k.laneQ = make([]eventHeap, lanes)
	for i := range k.lanes {
		k.lanes[i] = &Shard{k: k, lane: int32(i + 1)}
	}
	k.stageMin = DefaultStageMin
	return nil
}

// ShardCount returns the number of shard lanes (0 when unsharded).
func (k *Kernel) ShardCount() int { return len(k.lanes) }

// Lookahead returns the conservative lookahead (0 when unsharded).
func (k *Kernel) Lookahead() Time { return k.lookahead }

// Lane returns the scheduling handle for shard lane i (mod the lane
// count). On an unsharded kernel every index maps to the compute lane, so
// lane-confined subsystems can bind a handle unconditionally.
func (k *Kernel) Lane(i int) *Shard {
	if len(k.lanes) == 0 {
		return k.lane0
	}
	return k.lanes[i%len(k.lanes)]
}

// SetStageMin overrides the minimum multi-lane run length that fans out
// to worker goroutines. Tests force it to 2 to exercise the parallel
// path on small workloads; 0 or negative restores the default.
func (k *Kernel) SetStageMin(n int) {
	if n <= 0 {
		n = defaultStageMin
	}
	k.stageMin = n
}

// SetObserver installs a hook called for every dispatched event, in
// dispatch order, with its (at, seq, lane). Property tests use it to
// compare a sharded run's dispatch sequence against the single-threaded
// oracle. A nil fn removes the hook.
func (k *Kernel) SetObserver(fn func(at Time, seq uint64, lane int)) {
	k.observer = fn
}

// laneEvent is an event tagged with the lane whose queue it was popped
// from — only the sharded merge path materializes these; queued events
// stay five words.
type laneEvent struct {
	event
	lp int32
}

// scheduleLane enqueues an event on the given lane. Process wakeups are
// forced onto lane 0: processes run under the dispatcher's handoff
// protocol and never inside a stage.
func (k *Kernel) scheduleLane(lane int32, at Time, p *Proc, fn func()) {
	if p != nil {
		lane = 0
	}
	if lane == 0 {
		k.schedule(at, p, fn)
		return
	}
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at=%v now=%v", at, k.now))
	}
	if k.inStage {
		panic("sim: unrouted schedule from inside a parallel stage (use the lane's Shard handle)")
	}
	k.seq++
	k.laneQ[lane-1].push(event{at: at, seq: k.seq, proc: p, fn: fn})
}

// minNext returns the earliest pending timestamp across all lanes.
func (k *Kernel) minNext() (Time, bool) {
	var at Time
	ok := false
	if k.queue.len() > 0 {
		at, ok = k.queue.min().at, true
	}
	for i := range k.laneQ {
		if k.laneQ[i].len() > 0 && (!ok || k.laneQ[i].min().at < at) {
			at, ok = k.laneQ[i].min().at, true
		}
	}
	return at, ok
}

// runBatchSharded advances the clock to at and dispatches every event
// already queued for that instant across all lanes, in global (at, seq)
// order. Maximal runs of shard-lane events execute as parallel stages;
// lane-0 events dispatch sequentially between them.
func (k *Kernel) runBatchSharded(at Time) {
	m := k.merged[:0]
	sources := 0
	if k.queue.len() > 0 && k.queue.min().at == at {
		sources++
		for k.queue.len() > 0 && k.queue.min().at == at {
			m = append(m, laneEvent{event: k.queue.pop()})
		}
	}
	for i := range k.laneQ {
		if k.laneQ[i].len() > 0 && k.laneQ[i].min().at == at {
			sources++
			for k.laneQ[i].len() > 0 && k.laneQ[i].min().at == at {
				m = append(m, laneEvent{event: k.laneQ[i].pop(), lp: int32(i + 1)})
			}
		}
	}
	if sources > 1 {
		// Per-lane pops are already seq-sorted; restore the global order.
		sort.Slice(m, func(i, j int) bool { return m[i].seq < m[j].seq })
	}
	k.now = at
	i := 0
	for i < len(m) {
		if m[i].lp == 0 {
			k.processed++
			if k.observer != nil {
				k.observer(m[i].at, m[i].seq, 0)
			}
			if p := m[i].proc; p != nil {
				k.dispatch(p)
			} else if fn := m[i].fn; fn != nil {
				fn()
			}
			m[i] = laneEvent{}
			i++
			continue
		}
		j := i + 1
		for j < len(m) && m[j].lp != 0 {
			j++
		}
		k.runStage(m[i:j])
		for x := i; x < j; x++ {
			m[x] = laneEvent{}
		}
		i = j
	}
	k.merged = m[:0]
}

// runStage dispatches one maximal run of shard-lane events. Single-lane
// or short runs execute inline (identical semantics, no synchronization);
// otherwise each lane's events run on a worker goroutine with side
// effects deferred, and the buffers commit in dispatch order afterwards.
func (k *Kernel) runStage(run []laneEvent) {
	if k.observer != nil {
		for i := range run {
			k.observer(run[i].at, run[i].seq, int(run[i].lp))
		}
	}
	multi := false
	for i := 1; i < len(run); i++ {
		if run[i].lp != run[0].lp {
			multi = true
			break
		}
	}
	if !multi || len(run) < k.stageMin {
		for i := range run {
			k.processed++
			run[i].fn()
		}
		return
	}

	// Group event indices by lane, preserving per-lane seq order.
	if cap(k.groups) < len(k.lanes)+1 {
		k.groups = make([][]int, len(k.lanes)+1)
	}
	groups := k.groups[:len(k.lanes)+1]
	active := k.activeLanes[:0]
	for i := range run {
		lp := run[i].lp
		if len(groups[lp]) == 0 {
			active = append(active, lp)
		}
		groups[lp] = append(groups[lp], i)
	}

	// Per-event deferred-effect buffers, reused across stages.
	if cap(k.bufs) < len(run) {
		k.bufs = make([]stageBuf, len(run))
	}
	bufs := k.bufs[:len(run)]

	panics := k.panicScratch[:0]
	var panicMu sync.Mutex

	k.inStage = true
	var wg sync.WaitGroup
	for _, lp := range active {
		sh := k.lanes[lp-1]
		idxs := groups[lp]
		wg.Add(1)
		go func(sh *Shard, idxs []int) {
			defer wg.Done()
			sh.bufs = bufs
			for _, ix := range idxs {
				sh.cur = ix
				func() {
					defer func() {
						if v := recover(); v != nil {
							panicMu.Lock()
							panics = append(panics, stagePanic{idx: ix, val: v})
							panicMu.Unlock()
						}
					}()
					run[ix].fn()
				}()
			}
			sh.bufs = nil
		}(sh, idxs)
	}
	wg.Wait()
	k.inStage = false
	k.processed += uint64(len(run))
	for _, lp := range active {
		groups[lp] = groups[lp][:0]
		if cap(groups[lp]) > maxRetainedEvents {
			groups[lp] = nil
		}
	}
	k.activeLanes = active[:0]

	if len(panics) > 0 {
		// Re-panic deterministically: the failure the sequential kernel
		// would have hit first.
		first := panics[0]
		for _, p := range panics[1:] {
			if p.idx < first.idx {
				first = p
			}
		}
		k.panicScratch = nil
		panic(first.val)
	}
	k.panicScratch = panics[:0]

	// Commit deferred effects in dispatch order — this reproduces the
	// sequence-number allocation of a sequential dispatch exactly.
	for i := range bufs {
		entries := bufs[i].entries
		for j := range entries {
			e := &entries[j]
			if e.call {
				if e.proc != nil { // deferred Wake: continue inline
					k.dispatch(e.proc)
				} else {
					e.fn()
				}
			} else {
				k.scheduleLane(e.lane, e.at, e.proc, e.fn)
			}
			entries[j] = stageEntry{}
		}
		bufs[i].entries = entries[:0]
	}
}
