package sim

import "fmt"

// Barrier synchronizes a fixed group of n parties: each caller of Await
// (process-shaped) or AwaitFn (callback-shaped) blocks until all n have
// arrived, then all are released at the same virtual instant. The barrier
// is cyclic and may be reused for successive phases.
type Barrier struct {
	k       *Kernel
	name    string
	n       int
	arrived []barWaiter
	epochs  uint64
	// waitTotal accumulates, across all epochs, the time each party
	// spent waiting at the barrier (skew cost).
	waitTotal Time
	arriveAt  map[*Proc]Time
}

// barWaiter is one party waiting at the barrier: a parked process or a
// release callback, with its arrival time.
type barWaiter struct {
	p  *Proc
	fn func()
	at Time
}

// NewBarrier creates a barrier for a party of n processes (n >= 1).
func NewBarrier(k *Kernel, name string, n int) *Barrier {
	if n < 1 {
		panic("sim: barrier party must be >= 1")
	}
	return &Barrier{k: k, name: name, n: n, arriveAt: make(map[*Proc]Time)}
}

// Name returns the barrier's name.
func (b *Barrier) Name() string { return b.name }

// Party returns the number of processes the barrier synchronizes.
func (b *Barrier) Party() int { return b.n }

// Epochs returns how many times the barrier has completed.
func (b *Barrier) Epochs() uint64 { return b.epochs }

// WaitTotal returns the accumulated skew time spent blocked at the
// barrier, summed over all processes and epochs.
func (b *Barrier) WaitTotal() Time { return b.waitTotal }

// Await blocks p until all n parties have arrived for this epoch.
func (b *Barrier) Await(p *Proc) {
	if _, dup := b.arriveAt[p]; dup {
		panic(fmt.Sprintf("sim: %s awaited barrier %s twice in one epoch", p, b.name))
	}
	b.arriveAt[p] = b.k.now
	if len(b.arrived)+1 < b.n {
		b.arrived = append(b.arrived, barWaiter{p: p, at: b.k.now})
		p.park("barrier " + b.name)
		return
	}
	b.release()
	delete(b.arriveAt, p)
}

// AwaitFn registers a callback-shaped party: fn runs when all n parties
// have arrived. A non-final arrival is released through a same-instant
// event, like a process wakeup; the final arrival's fn runs inline, like
// the final Await caller continuing past the barrier. It is the fast-path
// equivalent of a process that Awaits once — no goroutine round-trip.
func (b *Barrier) AwaitFn(fn func()) {
	if len(b.arrived)+1 < b.n {
		b.arrived = append(b.arrived, barWaiter{fn: fn, at: b.k.now})
		return
	}
	b.release()
	if fn != nil {
		fn()
	}
}

// release completes the epoch: every earlier arrival is woken at the
// current instant and charged its skew time.
func (b *Barrier) release() {
	b.epochs++
	for i, w := range b.arrived {
		b.waitTotal += b.k.now - w.at
		if w.p != nil {
			delete(b.arriveAt, w.p)
			b.k.wake(w.p)
		} else {
			fn := w.fn
			b.k.schedule(b.k.now, nil, fn)
		}
		b.arrived[i] = barWaiter{}
	}
	b.arrived = b.arrived[:0]
}
