package sim

import "fmt"

// Barrier synchronizes a fixed group of n processes: each caller of Await
// blocks until all n have arrived, then all are released at the same
// virtual instant. The barrier is cyclic and may be reused for successive
// phases.
type Barrier struct {
	k       *Kernel
	name    string
	n       int
	arrived []*Proc
	epochs  uint64
	// waitTotal accumulates, across all epochs, the time each process
	// spent waiting at the barrier (skew cost).
	waitTotal Time
	arriveAt  map[*Proc]Time
}

// NewBarrier creates a barrier for a party of n processes (n >= 1).
func NewBarrier(k *Kernel, name string, n int) *Barrier {
	if n < 1 {
		panic("sim: barrier party must be >= 1")
	}
	return &Barrier{k: k, name: name, n: n, arriveAt: make(map[*Proc]Time)}
}

// Name returns the barrier's name.
func (b *Barrier) Name() string { return b.name }

// Party returns the number of processes the barrier synchronizes.
func (b *Barrier) Party() int { return b.n }

// Epochs returns how many times the barrier has completed.
func (b *Barrier) Epochs() uint64 { return b.epochs }

// WaitTotal returns the accumulated skew time spent blocked at the
// barrier, summed over all processes and epochs.
func (b *Barrier) WaitTotal() Time { return b.waitTotal }

// Await blocks p until all n parties have called Await for this epoch.
func (b *Barrier) Await(p *Proc) {
	if _, dup := b.arriveAt[p]; dup {
		panic(fmt.Sprintf("sim: %s awaited barrier %s twice in one epoch", p, b.name))
	}
	b.arriveAt[p] = b.k.now
	if len(b.arrived)+1 < b.n {
		b.arrived = append(b.arrived, p)
		p.park("barrier " + b.name)
		return
	}
	// Last arrival: release everyone.
	b.epochs++
	for _, q := range b.arrived {
		b.waitTotal += b.k.now - b.arriveAt[q]
		delete(b.arriveAt, q)
		b.k.wake(q)
	}
	delete(b.arriveAt, p)
	b.arrived = b.arrived[:0]
}
