package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// shardReq is one precomputed client request of the randomized workload.
// All randomness is drawn up front so handlers stay deterministic and
// lane-confined no matter how stages interleave.
type shardReq struct {
	think   Time
	latency Time
	hold    Time
	lane    int
	lane2   int // second lane for fan-out requests, -1 otherwise
	barrier bool
}

// buildShardWorkload precomputes a mixed process/callback workload:
// clients issuing FIFO requests to per-lane resources (PFS-shaped:
// After(latency) -> UseFn -> Wake/Call), periodic barrier alignment so
// arrivals collide at shared instants, and self-rescheduling per-lane
// timers (flusher-shaped).
func buildShardWorkload(seed int64, lanes, clients int) [][]shardReq {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([][]shardReq, clients)
	quantum := 5 * time.Microsecond
	for c := range reqs {
		n := 20 + rng.Intn(30)
		list := make([]shardReq, n)
		for i := range list {
			r := shardReq{
				think:   time.Duration(rng.Intn(4)) * quantum,
				latency: time.Duration(1+rng.Intn(3)) * quantum,
				hold:    time.Duration(rng.Intn(20)) * time.Microsecond,
				lane:    rng.Intn(lanes),
				lane2:   -1,
				barrier: rng.Intn(8) == 0,
			}
			if rng.Intn(4) == 0 {
				r.lane2 = rng.Intn(lanes)
			}
			list[i] = r
		}
		reqs[c] = list
	}
	return reqs
}

// runShardWorkload executes the precomputed workload on a fresh kernel —
// sharded or not — and returns the dispatched (at, seq) sequence, the
// final clock, and the processed-event count.
func runShardWorkload(t *testing.T, reqs [][]shardReq, lanes int, shard bool) ([][2]uint64, Time, uint64) {
	t.Helper()
	k := NewKernel()
	lookahead := time.Microsecond
	if shard {
		if err := k.ConfigureShards(lanes, lookahead); err != nil {
			t.Fatalf("ConfigureShards: %v", err)
		}
		k.SetStageMin(2)
	}
	var rec [][2]uint64
	k.SetObserver(func(at Time, seq uint64, lane int) {
		rec = append(rec, [2]uint64{uint64(at), seq})
	})
	res := make([]*Resource, lanes)
	for i := range res {
		res[i] = NewResourceOn(k.Lane(i), fmt.Sprintf("lane-res-%d", i), 1)
	}
	// Flusher-shaped self-rescheduling timers, one per lane.
	for i := 0; i < lanes; i++ {
		sh := k.Lane(i)
		remaining := 40
		var tick func()
		tick = func() {
			if remaining > 0 {
				remaining--
				sh.After(7*time.Microsecond, tick)
			}
		}
		sh.After(lookahead, tick)
	}
	bar := NewBarrier(k, "align", len(reqs))
	barriers := 0
	for _, list := range reqs {
		for _, r := range list {
			if r.barrier {
				barriers++
				break
			}
		}
	}
	_ = barriers
	for c := range reqs {
		list := reqs[c]
		k.Spawn(fmt.Sprintf("client-%d", c), func(p *Proc) {
			for _, r := range list {
				p.Wait(r.think)
				sh := k.Lane(r.lane)
				if r.lane2 >= 0 {
					// Fan-out: a second lane serves in parallel; the
					// completion crosses back through Call to a mailbox.
					mb := NewMailbox(k, "join")
					sh2 := k.Lane(r.lane2)
					r2 := res[r.lane2]
					hold2 := r.hold / 2
					sh2.After(r.latency, func() {
						r2.UseFn(func() Time { return hold2 }, func() { sh2.Call(func() { mb.Send(1) }) })
					})
					rr := res[r.lane]
					hold := r.hold
					sh.After(r.latency, func() {
						rr.UseFn(func() Time { return hold }, func() { sh.Wake(p) })
					})
					p.Suspend("request")
					mb.Recv(p)
					continue
				}
				rr := res[r.lane]
				hold := r.hold
				sh.After(r.latency, func() {
					rr.UseFn(func() Time { return hold }, func() { sh.Wake(p) })
				})
				p.Suspend("request")
			}
			// Every client re-aligns at the end of its run so barrier
			// release storms also cross the sharded dispatch path.
			bar.Await(p)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run (shard=%v): %v", shard, err)
	}
	return rec, k.Now(), k.EventsProcessed()
}

// TestShardedDispatchMatchesOracle is the randomized property test: for
// mixed process/callback workloads and 2-16 shards, the sharded kernel
// must dispatch exactly the (at, seq) sequence of the single-threaded
// oracle, end at the same virtual time, and process the same event count.
func TestShardedDispatchMatchesOracle(t *testing.T) {
	for _, lanes := range []int{2, 3, 4, 8, 16} {
		for seed := int64(1); seed <= 3; seed++ {
			reqs := buildShardWorkload(seed, lanes, 8)
			oracle, oEnd, oN := runShardWorkload(t, reqs, lanes, false)
			got, gEnd, gN := runShardWorkload(t, reqs, lanes, true)
			if gEnd != oEnd {
				t.Fatalf("lanes=%d seed=%d: end %v, oracle %v", lanes, seed, gEnd, oEnd)
			}
			if gN != oN {
				t.Fatalf("lanes=%d seed=%d: %d events, oracle %d", lanes, seed, gN, oN)
			}
			if len(got) != len(oracle) {
				t.Fatalf("lanes=%d seed=%d: %d dispatches, oracle %d", lanes, seed, len(got), len(oracle))
			}
			for i := range got {
				if got[i] != oracle[i] {
					t.Fatalf("lanes=%d seed=%d: dispatch %d is (at=%d, seq=%d), oracle (at=%d, seq=%d)",
						lanes, seed, i, got[i][0], got[i][1], oracle[i][0], oracle[i][1])
				}
			}
		}
	}
}

// TestConfigureShardsValidation pins the preconditions: positive
// lookahead, fresh kernel, single configuration; lanes < 2 is a no-op.
func TestConfigureShardsValidation(t *testing.T) {
	k := NewKernel()
	if err := k.ConfigureShards(1, 0); err != nil {
		t.Fatalf("lanes<2 must be a no-op, got %v", err)
	}
	if k.ShardCount() != 0 {
		t.Fatalf("lanes<2 configured %d lanes", k.ShardCount())
	}
	if err := k.ConfigureShards(4, 0); err == nil {
		t.Fatal("zero lookahead must be rejected")
	}
	k.After(time.Millisecond, func() {})
	if err := k.ConfigureShards(4, time.Microsecond); err == nil {
		t.Fatal("configuring after events are scheduled must be rejected")
	}

	k2 := NewKernel()
	if err := k2.ConfigureShards(4, time.Microsecond); err != nil {
		t.Fatalf("ConfigureShards: %v", err)
	}
	if err := k2.ConfigureShards(4, time.Microsecond); err == nil {
		t.Fatal("double configuration must be rejected")
	}
	if k2.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d, want 4", k2.ShardCount())
	}
	if k2.Lookahead() != time.Microsecond {
		t.Fatalf("Lookahead = %v, want 1us", k2.Lookahead())
	}
	if k2.Lane(0) == k2.Lane(1) {
		t.Fatal("distinct lanes must have distinct handles")
	}
	if k2.Lane(0) != k2.Lane(4) {
		t.Fatal("Lane must wrap modulo the lane count")
	}

	k3 := NewKernel()
	if k3.Lane(0) != k3.Lane(7) {
		t.Fatal("unsharded kernel must map every index to the compute lane")
	}
}

// TestSuspendWake exercises the Suspend/Wake pair: the waking event's
// handler continues the process inline, so work the process does after
// waking is observed before the next queued event dispatches.
func TestSuspendWake(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("sleeper", func(p *Proc) {
		sh := k.Lane(0)
		sh.After(time.Millisecond, func() {
			order = append(order, "wake-event")
			// Queued before the wake, at the same instant — yet the
			// process continuation must run first, inline.
			sh.After(0, func() { order = append(order, "later-event") })
			sh.Wake(p)
			order = append(order, "after-wake")
		})
		p.Suspend("test")
		order = append(order, "resumed")
		p.Wait(0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"wake-event", "resumed", "after-wake", "later-event"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestSuspendDeadlockDiagnosis checks a never-woken Suspend surfaces in
// the deadlock report with its reason.
func TestSuspendDeadlockDiagnosis(t *testing.T) {
	k := NewKernel()
	k.Spawn("stuck", func(p *Proc) { p.Suspend("waiting for nothing") })
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "stuck: waiting for nothing" {
		t.Fatalf("blocked = %v", de.Blocked)
	}
}

// TestStagePanicPropagates checks a panic inside a parallel stage reaches
// the Run caller (re-raised deterministically on the dispatcher).
func TestStagePanicPropagates(t *testing.T) {
	k := NewKernel()
	if err := k.ConfigureShards(2, time.Microsecond); err != nil {
		t.Fatal(err)
	}
	k.SetStageMin(2)
	for i := 0; i < 2; i++ {
		i := i
		k.Lane(i).After(time.Microsecond, func() {
			if i == 1 {
				panic("lane boom")
			}
		})
	}
	defer func() {
		if v := recover(); v != "lane boom" {
			t.Fatalf("recovered %v, want \"lane boom\"", v)
		}
	}()
	k.Run()
	t.Fatal("Run returned without panicking")
}

// TestUnroutedScheduleFromStagePanics pins the safety guard: kernel-level
// scheduling from inside a stage worker is a bug and must panic rather
// than silently race.
func TestUnroutedScheduleFromStagePanics(t *testing.T) {
	k := NewKernel()
	if err := k.ConfigureShards(2, time.Microsecond); err != nil {
		t.Fatal(err)
	}
	k.SetStageMin(2)
	for i := 0; i < 2; i++ {
		k.Lane(i).After(time.Microsecond, func() {
			k.After(0, func() {}) // unrouted: must panic
		})
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unrouted schedule inside a stage did not panic")
		}
	}()
	k.Run()
}
