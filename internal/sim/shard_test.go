package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// shardReq is one precomputed client request of the randomized workload.
// All randomness is drawn up front so handlers stay deterministic and
// lane-confined no matter how stages interleave.
type shardReq struct {
	think   Time
	latency Time
	hold    Time
	lane    int
	lane2   int // second lane for fan-out requests, -1 otherwise
	barrier bool
}

// buildShardWorkload precomputes a mixed process/callback workload:
// clients issuing FIFO requests to per-lane resources (PFS-shaped:
// After(latency) -> UseFn -> Wake/Call), periodic barrier alignment so
// arrivals collide at shared instants, and self-rescheduling per-lane
// timers (flusher-shaped).
func buildShardWorkload(seed int64, lanes, clients int) [][]shardReq {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([][]shardReq, clients)
	quantum := 5 * time.Microsecond
	for c := range reqs {
		n := 20 + rng.Intn(30)
		list := make([]shardReq, n)
		for i := range list {
			r := shardReq{
				think:   time.Duration(rng.Intn(4)) * quantum,
				latency: time.Duration(1+rng.Intn(3)) * quantum,
				hold:    time.Duration(rng.Intn(20)) * time.Microsecond,
				lane:    rng.Intn(lanes),
				lane2:   -1,
				barrier: rng.Intn(8) == 0,
			}
			if rng.Intn(4) == 0 {
				r.lane2 = rng.Intn(lanes)
			}
			list[i] = r
		}
		reqs[c] = list
	}
	return reqs
}

// shardRunOpts configures one runShardWorkload execution.
type shardRunOpts struct {
	shard        bool
	window       Time // sync-window width override (0 = lookahead)
	computeLanes int  // compute LPs; clients spawn round-robin onto them
}

// workloadLookahead is the sharded workload's true lookahead: the
// smallest cross-lane delay any handler or process issues is one
// 5 µs quantum, so windows up to that width are safe — and, unlike the
// workload's 1 µs-granular event spacing, wide enough that a window
// genuinely spans many instants.
const workloadLookahead = 5 * time.Microsecond

// runShardWorkload executes the precomputed workload on a fresh kernel —
// sharded or not — and returns the dispatched (at, seq) sequence, the
// final clock, and the processed-event count.
func runShardWorkload(t *testing.T, reqs [][]shardReq, lanes int, opts shardRunOpts) ([][2]uint64, Time, uint64) {
	t.Helper()
	k := NewKernel()
	lookahead := workloadLookahead
	if opts.shard {
		if err := k.ConfigureLanes(lanes, opts.computeLanes, lookahead); err != nil {
			t.Fatalf("ConfigureLanes: %v", err)
		}
		k.SetStageMin(2)
		k.SetWindow(opts.window)
	}
	var rec [][2]uint64
	k.SetObserver(func(at Time, seq uint64, lane int) {
		rec = append(rec, [2]uint64{uint64(at), seq})
	})
	res := make([]*Resource, lanes)
	for i := range res {
		res[i] = NewResourceOn(k.Lane(i), fmt.Sprintf("lane-res-%d", i), 1)
	}
	// Flusher-shaped self-rescheduling timers, one per lane.
	for i := 0; i < lanes; i++ {
		sh := k.Lane(i)
		remaining := 40
		var tick func()
		tick = func() {
			if remaining > 0 {
				remaining--
				sh.After(7*time.Microsecond, tick)
			}
		}
		sh.After(lookahead, tick)
	}
	bar := NewBarrier(k, "align", len(reqs))
	barriers := 0
	for _, list := range reqs {
		for _, r := range list {
			if r.barrier {
				barriers++
				break
			}
		}
	}
	_ = barriers
	for c := range reqs {
		list := reqs[c]
		k.SpawnOn(k.ComputeLane(c), fmt.Sprintf("client-%d", c), func(p *Proc) {
			for _, r := range list {
				p.Wait(r.think)
				sh := k.Lane(r.lane)
				if r.lane2 >= 0 {
					// Fan-out: a second lane serves in parallel; the
					// completion crosses back through Call to a mailbox.
					mb := NewMailbox(k, "join")
					sh2 := k.Lane(r.lane2)
					r2 := res[r.lane2]
					hold2 := r.hold / 2
					sh2.After(r.latency, func() {
						r2.UseFn(func() Time { return hold2 }, func() { sh2.Call(func() { mb.Send(1) }) })
					})
					rr := res[r.lane]
					hold := r.hold
					sh.After(r.latency, func() {
						rr.UseFn(func() Time { return hold }, func() { sh.Wake(p) })
					})
					p.Suspend("request")
					mb.Recv(p)
					continue
				}
				rr := res[r.lane]
				hold := r.hold
				sh.After(r.latency, func() {
					rr.UseFn(func() Time { return hold }, func() { sh.Wake(p) })
				})
				p.Suspend("request")
			}
			// Every client re-aligns at the end of its run so barrier
			// release storms also cross the sharded dispatch path.
			bar.Await(p)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run (%+v): %v", opts, err)
	}
	return rec, k.Now(), k.EventsProcessed()
}

// TestShardedDispatchMatchesOracle is the randomized property test: for
// mixed process/callback workloads, 2-16 shards, randomized multi-instant
// sync-window widths, and with or without compute-LP process
// partitioning, the sharded kernel must dispatch exactly the (at, seq)
// sequence of the single-threaded oracle, end at the same virtual time,
// and process the same event count.
func TestShardedDispatchMatchesOracle(t *testing.T) {
	for _, lanes := range []int{2, 3, 4, 8, 16} {
		for seed := int64(1); seed <= 3; seed++ {
			reqs := buildShardWorkload(seed, lanes, 8)
			oracle, oEnd, oN := runShardWorkload(t, reqs, lanes, shardRunOpts{})
			// Window widths: per-instant-ish (1 µs), a deliberately odd
			// width that slices instants unevenly, the full lookahead,
			// and two randomized widths in (0, lookahead].
			wrng := rand.New(rand.NewSource(seed * 1031))
			widths := []Time{time.Microsecond, 1700 * time.Nanosecond, workloadLookahead}
			for i := 0; i < 2; i++ {
				widths = append(widths, Time(1+wrng.Intn(int(workloadLookahead))))
			}
			for wi, width := range widths {
				for _, computeLanes := range []int{0, 3} {
					opts := shardRunOpts{shard: true, window: width, computeLanes: computeLanes}
					got, gEnd, gN := runShardWorkload(t, reqs, lanes, opts)
					if gEnd != oEnd {
						t.Fatalf("lanes=%d seed=%d w=%v c=%d: end %v, oracle %v", lanes, seed, width, computeLanes, gEnd, oEnd)
					}
					if gN != oN {
						t.Fatalf("lanes=%d seed=%d w=%v c=%d: %d events, oracle %d", lanes, seed, width, computeLanes, gN, oN)
					}
					if len(got) != len(oracle) {
						t.Fatalf("lanes=%d seed=%d w=%v c=%d: %d dispatches, oracle %d", lanes, seed, width, computeLanes, len(got), len(oracle))
					}
					for i := range got {
						if got[i] != oracle[i] {
							t.Fatalf("lanes=%d seed=%d w[%d]=%v c=%d: dispatch %d is (at=%d, seq=%d), oracle (at=%d, seq=%d)",
								lanes, seed, wi, width, computeLanes, i, got[i][0], got[i][1], oracle[i][0], oracle[i][1])
						}
					}
				}
			}
		}
	}
}

// TestConfigureShardsValidation pins the preconditions: positive
// lookahead, fresh kernel, single configuration; lanes < 2 is a no-op.
func TestConfigureShardsValidation(t *testing.T) {
	k := NewKernel()
	if err := k.ConfigureShards(1, 0); err != nil {
		t.Fatalf("lanes<2 must be a no-op, got %v", err)
	}
	if k.ShardCount() != 0 {
		t.Fatalf("lanes<2 configured %d lanes", k.ShardCount())
	}
	if err := k.ConfigureShards(4, 0); err == nil {
		t.Fatal("zero lookahead must be rejected")
	}
	k.After(time.Millisecond, func() {})
	if err := k.ConfigureShards(4, time.Microsecond); err == nil {
		t.Fatal("configuring after events are scheduled must be rejected")
	}

	k2 := NewKernel()
	if err := k2.ConfigureShards(4, time.Microsecond); err != nil {
		t.Fatalf("ConfigureShards: %v", err)
	}
	if err := k2.ConfigureShards(4, time.Microsecond); err == nil {
		t.Fatal("double configuration must be rejected")
	}
	if k2.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d, want 4", k2.ShardCount())
	}
	if k2.Lookahead() != time.Microsecond {
		t.Fatalf("Lookahead = %v, want 1us", k2.Lookahead())
	}
	if k2.Lane(0) == k2.Lane(1) {
		t.Fatal("distinct lanes must have distinct handles")
	}
	if k2.Lane(0) != k2.Lane(4) {
		t.Fatal("Lane must wrap modulo the lane count")
	}

	k3 := NewKernel()
	if k3.Lane(0) != k3.Lane(7) {
		t.Fatal("unsharded kernel must map every index to the compute lane")
	}
}

// TestSuspendWake exercises the Suspend/Wake pair: the waking event's
// handler continues the process inline, so work the process does after
// waking is observed before the next queued event dispatches.
func TestSuspendWake(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("sleeper", func(p *Proc) {
		sh := k.Lane(0)
		sh.After(time.Millisecond, func() {
			order = append(order, "wake-event")
			// Queued before the wake, at the same instant — yet the
			// process continuation must run first, inline.
			sh.After(0, func() { order = append(order, "later-event") })
			sh.Wake(p)
			order = append(order, "after-wake")
		})
		p.Suspend("test")
		order = append(order, "resumed")
		p.Wait(0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"wake-event", "resumed", "after-wake", "later-event"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestSuspendDeadlockDiagnosis checks a never-woken Suspend surfaces in
// the deadlock report with its reason.
func TestSuspendDeadlockDiagnosis(t *testing.T) {
	k := NewKernel()
	k.Spawn("stuck", func(p *Proc) { p.Suspend("waiting for nothing") })
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "stuck: waiting for nothing" {
		t.Fatalf("blocked = %v", de.Blocked)
	}
}

// TestFenceVisibility pins the fence contract: a lane-0 process that
// reads lane-confined state at registered fence instants must observe
// exactly the values a sequential kernel would show, even when windows
// would otherwise let a lane execute past the reader's instant.
func TestFenceVisibility(t *testing.T) {
	run := func(shard bool) []int {
		k := NewKernel()
		lookahead := 40 * time.Microsecond
		if shard {
			if err := k.ConfigureShards(2, lookahead); err != nil {
				t.Fatal(err)
			}
			k.SetStageMin(2)
		}
		// Each lane increments its counter every 3 µs; 40 µs windows would
		// let phase A run far past a sampler's instant without the fence.
		counters := make([]int, 2)
		for i := 0; i < 2; i++ {
			i := i
			sh := k.Lane(i)
			remaining := 200
			var tick func()
			tick = func() {
				counters[i]++
				if remaining > 0 {
					remaining--
					sh.After(3*time.Microsecond, tick)
				}
			}
			sh.After(3*time.Microsecond, tick)
		}
		interval := 10 * time.Microsecond
		k.FenceEvery(interval)
		var samples []int
		k.Spawn("sampler", func(p *Proc) {
			for s := 0; s < 20; s++ {
				p.Wait(interval)
				samples = append(samples, counters[0]+counters[1])
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return samples
	}
	oracle := run(false)
	got := run(true)
	if fmt.Sprint(got) != fmt.Sprint(oracle) {
		t.Fatalf("fenced samples %v, oracle %v", got, oracle)
	}
}

// TestInWindowCrossLPSchedulePanics pins the window-safety guard: a
// dispatcher-context schedule that targets an I/O lane and lands inside
// the open sync window (delay below the window width) must panic rather
// than execute out of lane order.
func TestInWindowCrossLPSchedulePanics(t *testing.T) {
	k := NewKernel()
	lookahead := 10 * time.Microsecond
	if err := k.ConfigureShards(2, lookahead); err != nil {
		t.Fatal(err)
	}
	k.SetStageMin(2)
	// Both lanes have events at 10 µs, so the window [10 µs, 20 µs) fans
	// out; a lane-0 event at the same instant then schedules onto an I/O
	// lane with a 1 µs delay — inside the open window.
	for i := 0; i < 2; i++ {
		k.Lane(i).After(10*time.Microsecond, func() {})
	}
	k.After(10*time.Microsecond, func() {
		k.Lane(0).After(time.Microsecond, func() {})
	})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("in-window cross-LP schedule did not panic")
		}
		if s := fmt.Sprint(v); !contains(s, "sync window") {
			t.Fatalf("unexpected panic: %v", v)
		}
	}()
	k.Run()
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestLanePartition pins the I/O / compute lane split: handle mapping,
// counts, and process homing via SpawnOn.
func TestLanePartition(t *testing.T) {
	k := NewKernel()
	if err := k.ConfigureLanes(3, 2, time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if k.ShardCount() != 5 || k.IOLaneCount() != 3 || k.ComputeLaneCount() != 2 {
		t.Fatalf("counts = %d/%d/%d, want 5/3/2", k.ShardCount(), k.IOLaneCount(), k.ComputeLaneCount())
	}
	if k.IOLane(0).Lane() != 1 || k.IOLane(3).Lane() != 1 || k.IOLane(2).Lane() != 3 {
		t.Fatal("IOLane must wrap modulo the I/O lane count")
	}
	if k.ComputeLane(0).Lane() != 4 || k.ComputeLane(1).Lane() != 5 || k.ComputeLane(2).Lane() != 4 {
		t.Fatal("ComputeLane must wrap modulo the compute lane count")
	}
	p := k.SpawnOn(k.ComputeLane(0), "homed", func(p *Proc) { p.Wait(time.Millisecond) })
	if p.lane != 4 {
		t.Fatalf("process homed on lane %d, want 4", p.lane)
	}
	if q := k.SpawnOn(k.IOLane(0), "not-homed", func(p *Proc) {}); q.lane != 0 {
		t.Fatalf("I/O-lane SpawnOn homed process on lane %d, want 0", q.lane)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	k2 := NewKernel()
	if err := k2.ConfigureLanes(0, 2, time.Microsecond); err == nil {
		t.Fatal("sharding without an I/O lane must be rejected")
	}
	if k2.ComputeLane(3) != k2.lane0 {
		t.Fatal("unsharded ComputeLane must map to lane 0")
	}
}

// TestStagePanicPropagates checks a panic inside a parallel stage reaches
// the Run caller (re-raised deterministically on the dispatcher).
func TestStagePanicPropagates(t *testing.T) {
	k := NewKernel()
	if err := k.ConfigureShards(2, time.Microsecond); err != nil {
		t.Fatal(err)
	}
	k.SetStageMin(2)
	for i := 0; i < 2; i++ {
		i := i
		k.Lane(i).After(time.Microsecond, func() {
			if i == 1 {
				panic("lane boom")
			}
		})
	}
	defer func() {
		if v := recover(); v != "lane boom" {
			t.Fatalf("recovered %v, want \"lane boom\"", v)
		}
	}()
	k.Run()
	t.Fatal("Run returned without panicking")
}

// TestUnroutedScheduleFromStagePanics pins the safety guard: kernel-level
// scheduling from inside a stage worker is a bug and must panic rather
// than silently race.
func TestUnroutedScheduleFromStagePanics(t *testing.T) {
	k := NewKernel()
	if err := k.ConfigureShards(2, time.Microsecond); err != nil {
		t.Fatal(err)
	}
	k.SetStageMin(2)
	for i := 0; i < 2; i++ {
		k.Lane(i).After(time.Microsecond, func() {
			k.After(0, func() {}) // unrouted: must panic
		})
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unrouted schedule inside a stage did not panic")
		}
	}()
	k.Run()
}
