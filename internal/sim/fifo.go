package sim

// fifo is an allocation-friendly FIFO queue: pop advances a head index
// instead of reslicing the backing array away, so a queue that cycles
// through push/pop (the steady state of every synchronization primitive)
// stops allocating once the array has grown to the high-water mark.
type fifo[T any] struct {
	buf  []T
	head int
}

// len returns the number of queued elements.
func (q *fifo[T]) len() int { return len(q.buf) - q.head }

// push appends v to the tail.
func (q *fifo[T]) push(v T) { q.buf = append(q.buf, v) }

// pop removes and returns the head element. It must not be called on an
// empty queue.
func (q *fifo[T]) pop() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // drop references so the GC can collect them
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return v
}
