package sim

import (
	"errors"
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
}

func TestWaitAdvancesClock(t *testing.T) {
	k := NewKernel()
	var at Time
	k.Spawn("w", func(p *Proc) {
		p.Wait(3 * time.Second)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 3*time.Second {
		t.Fatalf("woke at %v, want 3s", at)
	}
}

func TestSequentialWaitsAccumulate(t *testing.T) {
	k := NewKernel()
	var at Time
	k.Spawn("w", func(p *Proc) {
		p.Wait(time.Second)
		p.Wait(2 * time.Second)
		p.Wait(500 * time.Millisecond)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if want := 3500 * time.Millisecond; at != want {
		t.Fatalf("final time %v, want %v", at, want)
	}
}

func TestWaitUntil(t *testing.T) {
	k := NewKernel()
	var at Time
	k.Spawn("w", func(p *Proc) {
		p.WaitUntil(5 * time.Second)
		p.WaitUntil(2 * time.Second) // in the past: no-op wait
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5*time.Second {
		t.Fatalf("final time %v, want 5s", at)
	}
}

func TestSameInstantEventsFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			p.Wait(time.Second) // all wake at the same instant
			order = append(order, i)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var log []string
		k.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Wait(2 * time.Second)
				log = append(log, "a")
			}
		})
		k.Spawn("b", func(p *Proc) {
			for i := 0; i < 2; i++ {
				p.Wait(3 * time.Second)
				log = append(log, "b")
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	// t=2,3,4,6,6; at t=6 b's wake was scheduled earlier (t=3) than a's
	// (t=4), so b fires first.
	want := []string{"a", "b", "a", "b", "a"}
	if len(first) != len(want) {
		t.Fatalf("log = %v, want %v", first, want)
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("log = %v, want %v", first, want)
		}
	}
	for trial := 0; trial < 20; trial++ {
		got := run()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: nondeterministic log %v", trial, got)
			}
		}
	}
}

func TestAfterCallback(t *testing.T) {
	k := NewKernel()
	var fired Time = -1
	k.Spawn("p", func(p *Proc) {
		p.Kernel().After(4*time.Second, func() { fired = k.Now() })
		p.Wait(10 * time.Second)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 4*time.Second {
		t.Fatalf("callback at %v, want 4s", fired)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := NewKernel()
	var childAt Time
	k.Spawn("parent", func(p *Proc) {
		p.Wait(time.Second)
		k.Spawn("child", func(c *Proc) {
			c.Wait(2 * time.Second)
			childAt = c.Now()
		})
		p.Wait(5 * time.Second)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 3*time.Second {
		t.Fatalf("child finished at %v, want 3s", childAt)
	}
}

func TestSpawnAt(t *testing.T) {
	k := NewKernel()
	var start Time
	k.SpawnAt(7*time.Second, "late", func(p *Proc) { start = p.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if start != 7*time.Second {
		t.Fatalf("started at %v, want 7s", start)
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	k := NewKernel()
	var count int
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Wait(time.Second)
			count++
		}
	})
	if err := k.RunUntil(4 * time.Second); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("count = %d after RunUntil(4s), want 4", count)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d after Run, want 10", count)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "lock", 1)
	k.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		// never releases, never waits again — finishes holding the lock
	})
	k.Spawn("waiter", func(p *Proc) {
		p.Wait(time.Second)
		r.Acquire(p) // blocks forever
	})
	err := k.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run() err = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 || dl.Blocked[0] != "waiter: acquire lock" {
		t.Fatalf("Blocked = %v", dl.Blocked)
	}
}

func TestLiveProcsAccounting(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 5; i++ {
		k.Spawn("p", func(p *Proc) { p.Wait(time.Second) })
	}
	if k.LiveProcs() != 5 {
		t.Fatalf("LiveProcs = %d before run, want 5", k.LiveProcs())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d after run, want 0", k.LiveProcs())
	}
}

func TestEventsProcessedCounts(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		p.Wait(time.Second)
		p.Wait(time.Second)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// start event + two wake events
	if k.EventsProcessed() != 3 {
		t.Fatalf("EventsProcessed = %d, want 3", k.EventsProcessed())
	}
}

func TestNegativeWaitPanics(t *testing.T) {
	k := NewKernel()
	panicked := make(chan bool, 1)
	k.Spawn("p", func(p *Proc) {
		defer func() {
			panicked <- recover() != nil
			// Re-park forever so the kernel isn't left hanging; instead,
			// end cleanly by letting body return after recover.
		}()
		p.Wait(-time.Second)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !<-panicked {
		t.Fatal("negative Wait did not panic")
	}
}

func TestProcIdentity(t *testing.T) {
	k := NewKernel()
	p1 := k.Spawn("alpha", func(p *Proc) {})
	p2 := k.Spawn("beta", func(p *Proc) {})
	if p1.Name() != "alpha" || p2.Name() != "beta" {
		t.Fatalf("names: %q %q", p1.Name(), p2.Name())
	}
	if p1.ID() == p2.ID() {
		t.Fatal("IDs not unique")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcessesStress(t *testing.T) {
	k := NewKernel()
	const n = 500
	var finished int
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			for j := 0; j < 10; j++ {
				p.Wait(Time(i+1) * time.Millisecond)
			}
			finished++
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != n {
		t.Fatalf("finished = %d, want %d", finished, n)
	}
	if k.Now() != 10*Time(n)*time.Millisecond {
		t.Fatalf("final time %v, want %v", k.Now(), 10*Time(n)*time.Millisecond)
	}
}
