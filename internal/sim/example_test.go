package sim_test

import (
	"fmt"
	"time"

	"paragonio/internal/sim"
)

// Example shows the kernel's process model: two processes interleave in
// virtual time, synchronized by a FIFO resource.
func Example() {
	k := sim.NewKernel()
	disk := sim.NewResource(k, "disk", 1)
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn(fmt.Sprintf("worker-%d", i), func(p *sim.Proc) {
			disk.Use(p, 10*time.Millisecond) // queue + hold
			fmt.Printf("worker-%d served at %v\n", i, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		panic(err)
	}
	// Output:
	// worker-0 served at 10ms
	// worker-1 served at 20ms
}

// ExampleBarrier shows a cyclic barrier releasing all parties at the
// last arrival's time.
func ExampleBarrier() {
	k := sim.NewKernel()
	b := sim.NewBarrier(k, "sync", 3)
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("p", func(p *sim.Proc) {
			p.Wait(time.Duration(i+1) * time.Second)
			b.Await(p)
			if i == 0 {
				fmt.Printf("released together at %v\n", p.Now())
			}
		})
	}
	if err := k.Run(); err != nil {
		panic(err)
	}
	// Output:
	// released together at 3s
}
