package sim

// Mailbox is an unbounded FIFO message queue between processes. Send never
// blocks; Recv blocks until a message is available. Messages are delivered
// in send order, and blocked receivers are served in arrival order.
//
// Mailboxes model point-to-point message delivery; transit latency is the
// sender's concern (wait, then Send, or use Kernel.After).
type Mailbox struct {
	k        *Kernel
	name     string
	queue    []any
	waiters  []*Proc
	pending  map[*Proc]any
	sent     uint64
	received uint64
}

// NewMailbox creates an empty mailbox.
func NewMailbox(k *Kernel, name string) *Mailbox {
	return &Mailbox{k: k, name: name, pending: make(map[*Proc]any)}
}

// Name returns the mailbox's name.
func (m *Mailbox) Name() string { return m.name }

// Len returns the number of queued (sent but not yet received) messages.
func (m *Mailbox) Len() int { return len(m.queue) }

// Sent returns the total number of messages sent.
func (m *Mailbox) Sent() uint64 { return m.sent }

// Received returns the total number of messages received.
func (m *Mailbox) Received() uint64 { return m.received }

// Send enqueues v, waking the longest-blocked receiver if any. It may be
// called from process context or from event callbacks.
func (m *Mailbox) Send(v any) {
	m.sent++
	if len(m.waiters) > 0 {
		p := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.pending[p] = v
		m.k.wake(p)
		return
	}
	m.queue = append(m.queue, v)
}

// SendAfter enqueues v after d of virtual time, modeling transit latency
// without blocking the caller.
func (m *Mailbox) SendAfter(d Time, v any) {
	m.k.After(d, func() { m.Send(v) })
}

// Recv blocks p until a message is available and returns it.
func (m *Mailbox) Recv(p *Proc) any {
	if len(m.queue) > 0 {
		v := m.queue[0]
		m.queue = m.queue[1:]
		m.received++
		return v
	}
	m.waiters = append(m.waiters, p)
	p.park("recv " + m.name)
	v := m.pending[p]
	delete(m.pending, p)
	m.received++
	return v
}

// TryRecv returns (message, true) if one is queued, without blocking.
func (m *Mailbox) TryRecv() (any, bool) {
	if len(m.queue) == 0 {
		return nil, false
	}
	v := m.queue[0]
	m.queue = m.queue[1:]
	m.received++
	return v, true
}
