package sim

// Mailbox is an unbounded FIFO message queue between processes. Send never
// blocks; Recv blocks until a message is available. Messages are delivered
// in send order, and blocked receivers — process-shaped (Recv) and
// callback-shaped (RecvFn) alike — are served in arrival order.
//
// Mailboxes model point-to-point message delivery; transit latency is the
// sender's concern (wait, then Send, or use Kernel.After).
type Mailbox struct {
	k        *Kernel
	name     string
	queue    fifo[any]
	waiters  fifo[mboxWaiter]
	pending  map[*Proc]any
	sent     uint64
	received uint64
}

// mboxWaiter is one blocked receiver: a parked process or a delivery
// callback.
type mboxWaiter struct {
	p  *Proc
	fn func(v any)
}

// NewMailbox creates an empty mailbox.
func NewMailbox(k *Kernel, name string) *Mailbox {
	return &Mailbox{k: k, name: name, pending: make(map[*Proc]any)}
}

// Name returns the mailbox's name.
func (m *Mailbox) Name() string { return m.name }

// Len returns the number of queued (sent but not yet received) messages.
func (m *Mailbox) Len() int { return m.queue.len() }

// Sent returns the total number of messages sent.
func (m *Mailbox) Sent() uint64 { return m.sent }

// Received returns the total number of messages received.
func (m *Mailbox) Received() uint64 { return m.received }

// Send enqueues v, waking the longest-blocked receiver if any. It may be
// called from process context or from event callbacks.
func (m *Mailbox) Send(v any) {
	m.sent++
	if m.waiters.len() > 0 {
		w := m.waiters.pop()
		if w.p != nil {
			m.pending[w.p] = v
			m.k.wake(w.p)
			return
		}
		// Deliver to the callback receiver through a same-instant event,
		// mirroring the wakeup a process receiver would get so both
		// shapes resume at identical (at, seq) positions.
		m.k.schedule(m.k.now, nil, func() {
			m.received++
			w.fn(v)
		})
		return
	}
	m.queue.push(v)
}

// SendAfter enqueues v after d of virtual time, modeling transit latency
// without blocking the caller.
func (m *Mailbox) SendAfter(d Time, v any) {
	m.k.After(d, func() { m.Send(v) })
}

// Recv blocks p until a message is available and returns it.
func (m *Mailbox) Recv(p *Proc) any {
	if m.queue.len() > 0 {
		m.received++
		return m.queue.pop()
	}
	m.waiters.push(mboxWaiter{p: p})
	p.park("recv " + m.name)
	v := m.pending[p]
	delete(m.pending, p)
	m.received++
	return v
}

// RecvFn delivers the next message to fn: immediately if one is queued,
// otherwise when a message arrives, FIFO with blocked process receivers.
// It is the fast-path equivalent of spawning a process that Recvs once —
// no goroutine round-trip per delivery.
func (m *Mailbox) RecvFn(fn func(v any)) {
	if m.queue.len() > 0 {
		m.received++
		fn(m.queue.pop())
		return
	}
	m.waiters.push(mboxWaiter{fn: fn})
}

// TryRecv returns (message, true) if one is queued, without blocking.
func (m *Mailbox) TryRecv() (any, bool) {
	if m.queue.len() == 0 {
		return nil, false
	}
	m.received++
	return m.queue.pop(), true
}
