package sim

import (
	"testing"
	"time"
)

// The fast-path tests pin the contract that makes serveIONodeFn-style
// conversions safe: a callback-shaped interaction (UseFn, RecvFn,
// AwaitFn) must produce the same virtual timing and the same statistics
// as the process-shaped interaction it replaces.

// TestUseFnMatchesUse runs the same contended-server workload twice —
// once with processes calling Use, once with callback holders — and
// requires identical completion times and resource statistics.
func TestUseFnMatchesUse(t *testing.T) {
	const n = 5
	hold := 2 * time.Second

	runProc := func() (Time, ResourceStats) {
		k := NewKernel()
		r := NewResource(k, "srv", 1)
		var last Time
		for i := 0; i < n; i++ {
			k.Spawn("u", func(p *Proc) {
				r.Use(p, hold)
				last = p.Now()
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return last, r.Stats()
	}

	runFn := func() (Time, ResourceStats) {
		k := NewKernel()
		r := NewResource(k, "srv", 1)
		var last Time
		for i := 0; i < n; i++ {
			k.After(0, func() {
				r.UseFn(func() Time { return hold }, func() { last = k.Now() })
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return last, r.Stats()
	}

	procLast, procStats := runProc()
	fnLast, fnStats := runFn()
	if procLast != Time(n)*Time(hold) {
		t.Fatalf("proc run finished at %v, want %v", procLast, Time(n)*Time(hold))
	}
	if fnLast != procLast {
		t.Errorf("UseFn finished at %v, Use at %v", fnLast, procLast)
	}
	if fnStats != procStats {
		t.Errorf("stats differ:\n  UseFn: %+v\n  Use:   %+v", fnStats, procStats)
	}
}

// TestUseFnFIFOWithProcs interleaves process and callback acquirers and
// checks grants happen in arrival order regardless of shape.
func TestUseFnFIFOWithProcs(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "srv", 1)
	var order []string
	// Arrivals at t=0 in order: proc p0, callback c1, proc p2, callback c3.
	k.Spawn("p0", func(p *Proc) {
		r.Acquire(p)
		p.Wait(time.Second)
		order = append(order, "p0")
		r.Release(p)
	})
	k.After(0, func() {
		r.UseFn(func() Time { return time.Second }, func() { order = append(order, "c1") })
	})
	k.Spawn("p2", func(p *Proc) {
		r.Use(p, time.Second)
		order = append(order, "p2")
	})
	k.After(0, func() {
		r.UseFn(func() Time { return time.Second }, func() { order = append(order, "c3") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"p0", "c1", "p2", "c3"}
	if len(order) != len(want) {
		t.Fatalf("completions = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completions = %v, want %v (FIFO broken across shapes)", order, want)
		}
	}
	if k.Now() != 4*Time(time.Second) {
		t.Errorf("finished at %v, want 4s", k.Now())
	}
}

// TestUseFnPricesHoldAtGrantTime verifies hold() runs when the slot is
// granted, not when UseFn is called — the property that keeps
// state-dependent service costs (disk head position) in FIFO order.
func TestUseFnPricesHoldAtGrantTime(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "srv", 1)
	var pricedAt []Time
	k.After(0, func() {
		r.UseFn(func() Time { pricedAt = append(pricedAt, k.Now()); return 3 * Time(time.Second) }, nil)
		r.UseFn(func() Time { pricedAt = append(pricedAt, k.Now()); return time.Duration(0) }, nil)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(pricedAt) != 2 {
		t.Fatalf("hold priced %d times, want 2", len(pricedAt))
	}
	if pricedAt[0] != 0 || pricedAt[1] != 3*Time(time.Second) {
		t.Errorf("priced at %v, want [0s 3s]", pricedAt)
	}
}

// TestRecvFnMatchesRecv checks callback receivers see the same values,
// delivery order, and statistics as blocked process receivers.
func TestRecvFnMatchesRecv(t *testing.T) {
	run := func(callback bool) ([]int, Time, uint64) {
		k := NewKernel()
		m := NewMailbox(k, "mb")
		var got []int
		var at Time
		recv := func() {
			if callback {
				m.RecvFn(func(v any) { got = append(got, v.(int)); at = k.Now() })
			} else {
				k.Spawn("r", func(p *Proc) {
					got = append(got, m.Recv(p).(int))
					at = p.Now()
				})
			}
		}
		recv()
		recv()
		k.After(time.Second, func() { m.Send(1) })
		k.After(2*time.Second, func() { m.Send(2) })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return got, at, m.Received()
	}

	pv, pAt, pRecv := run(false)
	cv, cAt, cRecv := run(true)
	if len(pv) != 2 || pv[0] != 1 || pv[1] != 2 {
		t.Fatalf("proc receivers got %v", pv)
	}
	if len(cv) != 2 || cv[0] != pv[0] || cv[1] != pv[1] {
		t.Errorf("RecvFn got %v, Recv got %v", cv, pv)
	}
	if cAt != pAt || cAt != 2*Time(time.Second) {
		t.Errorf("last delivery at %v (callback) vs %v (proc), want 2s", cAt, pAt)
	}
	if cRecv != pRecv {
		t.Errorf("received count %d (callback) vs %d (proc)", cRecv, pRecv)
	}
}

// TestRecvFnDrainsQueuedMessageInline checks an already-queued message is
// delivered synchronously, matching Recv's no-block path.
func TestRecvFnDrainsQueuedMessageInline(t *testing.T) {
	k := NewKernel()
	m := NewMailbox(k, "mb")
	delivered := false
	k.After(0, func() {
		m.Send("x")
		m.RecvFn(func(v any) { delivered = v == "x" })
		if !delivered {
			t.Error("queued message not delivered inline")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 || m.Received() != 1 {
		t.Errorf("len=%d received=%d after drain", m.Len(), m.Received())
	}
}

// TestAwaitFnMatchesAwait releases a mixed party — processes and
// callbacks — at the same instant with identical skew accounting.
func TestAwaitFnMatchesAwait(t *testing.T) {
	run := func(callback bool) (Time, Time, uint64) {
		k := NewKernel()
		b := NewBarrier(k, "bar", 3)
		var released Time
		arrive := func(after Time) {
			if callback {
				k.After(after, func() { b.AwaitFn(func() { released = k.Now() }) })
			} else {
				k.Spawn("w", func(p *Proc) {
					p.Wait(after)
					b.Await(p)
					released = p.Now()
				})
			}
		}
		arrive(0)
		arrive(time.Second)
		arrive(3 * time.Second)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return released, b.WaitTotal(), b.Epochs()
	}

	pRel, pSkew, pEp := run(false)
	cRel, cSkew, cEp := run(true)
	if pRel != 3*Time(time.Second) || pSkew != 5*Time(time.Second) || pEp != 1 {
		t.Fatalf("proc barrier: released %v skew %v epochs %d", pRel, pSkew, pEp)
	}
	if cRel != pRel || cSkew != pSkew || cEp != pEp {
		t.Errorf("AwaitFn: released %v skew %v epochs %d; Await: %v %v %d",
			cRel, cSkew, cEp, pRel, pSkew, pEp)
	}
}
