package report

import (
	"strings"
	"testing"
)

func TestTableAlignsColumns(t *testing.T) {
	var b strings.Builder
	err := Table(&b, "Demo", []string{"Operation", "A", "B"}, [][]string{
		{"open", "53.68", "0.00"},
		{"read", "42.64", "0.24"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Demo") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, rule, header, rule, two rows.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Column starts must align between header and rows.
	hdr := lines[2]
	row := lines[4]
	if strings.Index(hdr, "A") != strings.Index(row, "53.68") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	var b strings.Builder
	err := Table(&b, "", []string{"x"}, [][]string{{"1", "2", "3"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "3") {
		t.Fatal("extra cells dropped")
	}
}

func TestCSVQuoting(t *testing.T) {
	var b strings.Builder
	err := CSV(&b, []string{"name", "value"}, [][]string{
		{"plain", "1"},
		{"with,comma", "2"},
		{`with"quote`, "3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"with,comma"`) {
		t.Fatalf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"with""quote"`) {
		t.Fatalf("quote cell not escaped:\n%s", out)
	}
	if !strings.HasPrefix(out, "name,value\n") {
		t.Fatalf("header wrong:\n%s", out)
	}
}

func TestPlotRenderScatter(t *testing.T) {
	var b strings.Builder
	p := Plot{Title: "sizes", XLabel: "time (s)", YLabel: "bytes", Width: 40, Height: 10, YLog: true}
	err := p.Render(&b, []Series{
		{Name: "version A", Glyph: 'a', Points: []Point{{0, 100}, {10, 100000}, {20, 100}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "sizes") || !strings.Contains(out, "a = version A") {
		t.Fatalf("missing title or legend:\n%s", out)
	}
	if strings.Count(out, "a") < 3 { // at least the 3 marks (legend adds more)
		t.Fatalf("marks missing:\n%s", out)
	}
	if !strings.Contains(out, "time (s)") {
		t.Fatalf("missing x label:\n%s", out)
	}
}

func TestPlotRenderEmpty(t *testing.T) {
	var b strings.Builder
	p := Plot{Title: "empty"}
	if err := p.Render(&b, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "(no data)") {
		t.Fatalf("empty plot output: %q", b.String())
	}
}

func TestPlotLogAxisDropsNonPositive(t *testing.T) {
	var b strings.Builder
	p := Plot{Width: 20, Height: 5, XLog: true}
	err := p.Render(&b, []Series{{Name: "s", Glyph: '*', Points: []Point{{0, 1}, {-5, 2}}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "(no data)") {
		t.Fatalf("non-positive log-x points should be dropped:\n%s", b.String())
	}
}

func TestPlotLineInterpolates(t *testing.T) {
	render := func(line bool) string {
		var b strings.Builder
		p := Plot{Width: 40, Height: 10}
		p.Render(&b, []Series{{Name: "s", Glyph: '*', Line: line,
			Points: []Point{{0, 0}, {1, 1}}}})
		return b.String()
	}
	if strings.Count(render(true), "*") <= strings.Count(render(false), "*") {
		t.Fatal("line mode should add interpolated marks")
	}
}

func TestPlotSinglePointDegenerateRange(t *testing.T) {
	var b strings.Builder
	p := Plot{Width: 20, Height: 5}
	if err := p.Render(&b, []Series{{Name: "s", Glyph: '#', Points: []Point{{5, 5}}}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "#") {
		t.Fatalf("single point not rendered:\n%s", b.String())
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("SortedKeys = %v", got)
	}
}

func TestFmtAxis(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1500000: "1.5e+06",
		250:     "250",
		3.25:    "3.25",
		0.004:   "0.004",
	}
	for v, want := range cases {
		if got := fmtAxis(v); got != want {
			t.Errorf("fmtAxis(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestHBar(t *testing.T) {
	var b strings.Builder
	err := HBar(&b, "load", []string{"io0", "io1", "io2"}, []float64{10, 5, 0}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if strings.Count(lines[1], "#") != 20 {
		t.Fatalf("max bar not full width:\n%s", out)
	}
	if strings.Count(lines[2], "#") != 10 {
		t.Fatalf("half bar wrong:\n%s", out)
	}
	if strings.Count(lines[3], "#") != 0 {
		t.Fatalf("zero bar drawn:\n%s", out)
	}
}

func TestHBarErrors(t *testing.T) {
	var b strings.Builder
	if err := HBar(&b, "", []string{"a"}, []float64{1, 2}, 10); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := HBar(&b, "", []string{"a"}, []float64{-5}, 10); err != nil {
		t.Fatal(err)
	}
}
