// Package report renders analysis results as fixed-width text: aligned
// tables (for the paper's Tables 1-5), axis-labelled character-grid
// plots (scatter timelines and CDFs for Figures 1-9), and CSV for
// external plotting.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table writes an aligned text table with a title, header row, and rule
// lines. Ragged rows are padded with empty cells.
func Table(w io.Writer, title string, headers []string, rows [][]string) error {
	cols := len(headers)
	for _, r := range rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	pad := func(row []string) []string {
		out := make([]string, cols)
		copy(out, row)
		return out
	}
	hdr := pad(headers)
	all := make([][]string, 0, len(rows)+1)
	all = append(all, hdr)
	for _, r := range rows {
		all = append(all, pad(r))
	}
	for _, r := range all {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var total int
	for _, wd := range widths {
		total += wd + 2
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", max(total, len(title)))); err != nil {
			return err
		}
	}
	writeRow := func(r []string) error {
		var b strings.Builder
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(hdr); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, r := range all[1:] {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes headers and rows as comma-separated values, quoting cells
// that contain commas, quotes, or newlines.
func CSV(w io.Writer, headers []string, rows [][]string) error {
	writeLine := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			out[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeLine(headers); err != nil {
		return err
	}
	for _, r := range rows {
		if err := writeLine(r); err != nil {
			return err
		}
	}
	return nil
}

// Point is one mark of a plot.
type Point struct {
	X, Y float64
}

// Series is a named, glyph-tagged point set.
type Series struct {
	Name   string
	Glyph  rune
	Points []Point
	// Line connects consecutive points with interpolated marks (for
	// CDF step curves); scatter otherwise.
	Line bool
}

// Plot is a character-grid plot specification.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int  // grid columns (default 72)
	Height int  // grid rows (default 20)
	XLog   bool // logarithmic x axis (sizes)
	YLog   bool // logarithmic y axis (sizes vs time plots)
}

// Render draws the series onto a grid with axis annotations. Log axes
// drop non-positive coordinates (matching the paper's log-scale size
// plots, which start at 1).
func (p Plot) Render(w io.Writer, series []Series) error {
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	tx := func(v float64) (float64, bool) {
		if p.XLog {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}
	ty := func(v float64) (float64, bool) {
		if p.YLog {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	type tpoint struct {
		x, y  float64
		glyph rune
	}
	var pts []tpoint
	for _, s := range series {
		var prev *tpoint
		for _, pt := range s.Points {
			x, okx := tx(pt.X)
			y, oky := ty(pt.Y)
			if !okx || !oky {
				continue
			}
			cur := tpoint{x, y, s.Glyph}
			if s.Line && prev != nil {
				// Interpolate a few marks between points.
				const steps = 8
				for i := 1; i < steps; i++ {
					f := float64(i) / steps
					pts = append(pts, tpoint{
						x:     prev.x + (cur.x-prev.x)*f,
						y:     prev.y + (cur.y-prev.y)*f,
						glyph: s.Glyph,
					})
				}
			}
			pts = append(pts, cur)
			prev = &cur
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
	}
	if len(pts) == 0 {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", p.Title)
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	for _, pt := range pts {
		col := int((pt.x - minX) / (maxX - minX) * float64(width-1))
		row := int((pt.y - minY) / (maxY - minY) * float64(height-1))
		r := height - 1 - row
		grid[r][col] = pt.glyph
	}
	if p.Title != "" {
		if _, err := fmt.Fprintln(w, p.Title); err != nil {
			return err
		}
	}
	inv := func(v float64, log bool) float64 {
		if log {
			return math.Pow(10, v)
		}
		return v
	}
	topLabel := fmtAxis(inv(maxY, p.YLog))
	botLabel := fmtAxis(inv(minY, p.YLog))
	labelW := max(len(topLabel), len(botLabel))
	for i, row := range grid {
		label := strings.Repeat(" ", labelW)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", labelW, topLabel)
		case height - 1:
			label = fmt.Sprintf("%*s", labelW, botLabel)
		case height / 2:
			if p.YLabel != "" {
				l := p.YLabel
				if len(l) > labelW {
					l = l[:labelW]
				}
				label = fmt.Sprintf("%*s", labelW, l)
			}
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, strings.TrimRight(string(row), " ")); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", width)); err != nil {
		return err
	}
	lo, hi := fmtAxis(inv(minX, p.XLog)), fmtAxis(inv(maxX, p.XLog))
	gap := width - len(lo) - len(hi)
	if gap < 1 {
		gap = 1
	}
	if _, err := fmt.Fprintf(w, "%s %s%s%s  %s\n",
		strings.Repeat(" ", labelW), lo, strings.Repeat(" ", gap), hi, p.XLabel); err != nil {
		return err
	}
	// Legend.
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "%s  %c = %s\n", strings.Repeat(" ", labelW), s.Glyph, s.Name); err != nil {
			return err
		}
	}
	return nil
}

// fmtAxis formats an axis bound compactly.
func fmtAxis(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.3g", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

// SortedKeys returns the sorted keys of a string-keyed map — a helper
// for deterministic report emission.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// HBar renders a horizontal bar chart: one row per label, bars scaled to
// the maximum value, with the numeric value appended. Negative values
// are clamped to zero.
func HBar(w io.Writer, title string, labels []string, values []float64, width int) error {
	if len(labels) != len(values) {
		return fmt.Errorf("report: HBar labels/values length mismatch: %d vs %d",
			len(labels), len(values))
	}
	if width <= 0 {
		width = 40
	}
	var maxV float64
	labelW := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	for i, v := range values {
		if v < 0 {
			v = 0
		}
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(width))
		}
		if _, err := fmt.Fprintf(w, "%-*s |%-*s %.6g\n",
			labelW, labels[i], width, strings.Repeat("#", n), values[i]); err != nil {
			return err
		}
	}
	return nil
}
